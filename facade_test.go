// Tests for the facade's cancellation and failure paths: context cancelled
// mid-run, deadline expiry, body errors, Values.Fail, recovered body panics,
// released waiters under every wait strategy — and, after every abort, that
// the runtime and its worker pool remain fully reusable. CI runs this file
// under -race.
package doacross_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"doacross"
)

// chainLoop builds the loop y[i] = y[i-1] + 1 (a pure dependency chain).
func chainLoop(n int) *doacross.Loop {
	loop, err := doacross.NewLoop(n, n).
		Writes(func(i int) []int { return []int{i} }).
		Body(func(i int, v *doacross.Values) {
			if i == 0 {
				v.Store(0, 1)
				return
			}
			v.Store(i, v.Load(i-1)+1)
		}).
		Build()
	if err != nil {
		panic(err)
	}
	return loop
}

// checkReusable verifies the paper's reuse invariant after an aborted run:
// the scratch state is pristine and a full clean run on the same runtime
// produces the sequential result.
func checkReusable(t *testing.T, rt *doacross.Runtime, n int) {
	t.Helper()
	if !rt.ScratchClean() {
		t.Fatal("scratch state not restored after aborted run")
	}
	loop := chainLoop(n)
	y := make([]float64, n)
	if _, err := rt.Run(context.Background(), loop, y); err != nil {
		t.Fatalf("runtime not reusable after abort: %v", err)
	}
	for i := range y {
		if y[i] != float64(i+1) {
			t.Fatalf("post-abort run wrong: y[%d] = %v, want %v", i, y[i], i+1)
		}
	}
}

func TestRunContextCancelledMidRun(t *testing.T) {
	const n = 4096
	release := make(chan struct{})
	loop, err := doacross.NewLoop(n, n).
		Writes(func(i int) []int { return []int{i} }).
		Body(func(i int, v *doacross.Values) {
			if i == 0 {
				<-release // hold the run open until the test has cancelled
			}
			v.Store(i, 1)
		}).
		Build()
	if err != nil {
		t.Fatal(err)
	}

	rt, err := doacross.New(n,
		doacross.WithWorkers(4),
		doacross.WithPolicy(doacross.Dynamic),
		doacross.WithChunk(16),
		doacross.WithWaitStrategy(doacross.WaitSpinYield),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	y := make([]float64, n)
	go func() {
		_, err := rt.Run(ctx, loop, y)
		done <- err
	}()
	cancel()
	// Give the context watcher time to flag the abort before the blocked
	// iteration is released; the run cannot finish until release closes, so
	// this only orders the abort ahead of iteration 0's completion.
	time.Sleep(50 * time.Millisecond)
	close(release)

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled run did not return: pool or barrier leaked")
	}
	checkReusable(t, rt, n)
}

func TestRunDeadlineExceeded(t *testing.T) {
	const n = 64
	loop, err := doacross.NewLoop(n, n).
		Writes(func(i int) []int { return []int{i} }).
		Body(func(i int, v *doacross.Values) {
			if i == 0 {
				time.Sleep(200 * time.Millisecond)
			}
			v.Store(i, 1)
		}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	rt, err := doacross.New(n, doacross.WithWorkers(2), doacross.WithWaitStrategy(doacross.WaitSpinYield))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := rt.Run(ctx, loop, make([]float64, n)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run returned %v, want context.DeadlineExceeded", err)
	}
	checkReusable(t, rt, n)
}

func TestRunPreCancelledContext(t *testing.T) {
	const n = 16
	rt, err := doacross.New(n, doacross.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := rt.Run(ctx, chainLoop(n), make([]float64, n)); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	checkReusable(t, rt, n)
}

func TestBodyErrAbortsRun(t *testing.T) {
	const n = 2048
	sentinel := errors.New("iteration 137 failed")
	loop, err := doacross.NewLoop(n, n).
		Writes(func(i int) []int { return []int{i} }).
		BodyErr(func(i int, v *doacross.Values) error {
			if i == 137 {
				return sentinel
			}
			v.Store(i, 1)
			return nil
		}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	rt, err := doacross.New(n,
		doacross.WithWorkers(4),
		doacross.WithPolicy(doacross.Dynamic),
		doacross.WithChunk(32),
		doacross.WithWaitStrategy(doacross.WaitSpinYield),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if _, err := rt.Run(context.Background(), loop, make([]float64, n)); !errors.Is(err, sentinel) {
		t.Fatalf("Run returned %v, want the body error", err)
	}
	checkReusable(t, rt, n)
}

func TestValuesFailAbortsRun(t *testing.T) {
	const n = 1024
	sentinel := errors.New("negative pivot")
	loop, err := doacross.NewLoop(n, n).
		Writes(func(i int) []int { return []int{i} }).
		Body(func(i int, v *doacross.Values) {
			if i == 511 {
				v.Fail(sentinel)
				return
			}
			v.Store(i, 1)
		}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	rt, err := doacross.New(n, doacross.WithWorkers(4), doacross.WithWaitStrategy(doacross.WaitSpinYield))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if _, err := rt.Run(context.Background(), loop, make([]float64, n)); !errors.Is(err, sentinel) {
		t.Fatalf("Run returned %v, want the Fail error", err)
	}
	checkReusable(t, rt, n)
}

func TestBodyPanicRecovered(t *testing.T) {
	const n = 1024
	loop, err := doacross.NewLoop(n, n).
		Writes(func(i int) []int { return []int{i} }).
		Body(func(i int, v *doacross.Values) {
			if i == 42 {
				panic("boom at 42")
			}
			v.Store(i, 1)
		}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	rt, err := doacross.New(n,
		doacross.WithWorkers(4),
		doacross.WithPolicy(doacross.Cyclic),
		doacross.WithWaitStrategy(doacross.WaitSpinYield),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	_, err = rt.Run(context.Background(), loop, make([]float64, n))
	if err == nil || !strings.Contains(err.Error(), "panicked") || !strings.Contains(err.Error(), "boom at 42") {
		t.Fatalf("Run returned %v, want a recovered panic error", err)
	}
	checkReusable(t, rt, n)
}

// TestWritesPanicRecovered checks that a panic in the user's Writes closure
// during the inspector phase is recovered into an error too, not just panics
// in the executor body.
func TestWritesPanicRecovered(t *testing.T) {
	const n = 256
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	loop := &doacross.Loop{
		N:    n,
		Data: n,
		Writes: func(i int) []int {
			if i == 99 {
				panic("broken Writes")
			}
			return ids[i : i+1]
		},
		Body: func(i int, v *doacross.Values) { v.Store(i, 1) },
	}
	rt, err := doacross.New(n, doacross.WithWorkers(4), doacross.WithWaitStrategy(doacross.WaitSpinYield))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	_, err = rt.Run(context.Background(), loop, make([]float64, n))
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("Run returned %v, want a recovered Writes panic", err)
	}
}

// TestUpperFactorUnsupportedKinds checks that asking an upper factor for an
// executor that only exists for forward substitution fails loudly instead of
// silently running a different algorithm.
func TestUpperFactorUnsupportedKinds(t *testing.T) {
	upper := &doacross.Triangular{N: 2, Lower: false, UnitDiag: true, RowPtr: []int{0, 0, 0}}
	rhs := []float64{1, 1}
	for _, kind := range []doacross.SolverKind{doacross.SolverLinear, doacross.SolverLevelScheduled} {
		if _, _, err := doacross.SolveTriangular(kind, upper, rhs); err == nil || !strings.Contains(err.Error(), "not supported") {
			t.Errorf("%v on an upper factor: got %v, want an unsupported-executor error", kind, err)
		}
	}
	if _, _, err := doacross.SolveTriangular(doacross.SolverDoacross, upper, rhs, doacross.WithWorkers(2)); err != nil {
		t.Errorf("SolverDoacross on an upper factor failed: %v", err)
	}
}

// TestSequentialShortData checks RunSequential's up-front length validation.
func TestSequentialShortData(t *testing.T) {
	loop := chainLoop(16)
	if err := doacross.RunSequential(loop, make([]float64, 8)); err == nil || !strings.Contains(err.Error(), "shorter") {
		t.Fatalf("RunSequential accepted a short data slice: %v", err)
	}
}

// TestAbortReleasesWaiters forces one worker to wait on an element whose
// writing iteration fails, under every wait strategy (including the parked
// notify waiter and the epoch-table ablation): the abort must release the
// waiter instead of deadlocking the run.
func TestAbortReleasesWaiters(t *testing.T) {
	cases := []struct {
		name string
		opts []doacross.Option
	}{
		{"spin", []doacross.Option{doacross.WithWaitStrategy(doacross.WaitSpin)}},
		{"spin-yield", []doacross.Option{doacross.WithWaitStrategy(doacross.WaitSpinYield)}},
		{"notify", []doacross.Option{doacross.WithWaitStrategy(doacross.WaitNotify)}},
		{"spin-yield-epoch", []doacross.Option{doacross.WithWaitStrategy(doacross.WaitSpinYield), doacross.WithEpochTables()}},
		{"notify-epoch", []doacross.Option{doacross.WithWaitStrategy(doacross.WaitNotify), doacross.WithEpochTables()}},
	}
	sentinel := errors.New("writer failed")
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			const n = 2
			loop, err := doacross.NewLoop(n, n).
				Writes(func(i int) []int { return []int{i} }).
				BodyErr(func(i int, v *doacross.Values) error {
					if i == 0 {
						// Let iteration 1 reach its wait on element 0 first.
						time.Sleep(20 * time.Millisecond)
						return sentinel
					}
					v.Store(1, v.Load(0)+1)
					return nil
				}).
				Build()
			if err != nil {
				t.Fatal(err)
			}
			opts := append([]doacross.Option{doacross.WithWorkers(2), doacross.WithPolicy(doacross.Block)}, tc.opts...)
			rt, err := doacross.New(n, opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer rt.Close()

			done := make(chan error, 1)
			go func() {
				_, err := rt.Run(context.Background(), loop, make([]float64, n))
				done <- err
			}()
			select {
			case err := <-done:
				if !errors.Is(err, sentinel) {
					t.Fatalf("Run returned %v, want the writer's error", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("run deadlocked: abort did not release the waiting iteration")
			}
			checkReusable(t, rt, n)
		})
	}
}

// TestShortDataValidation checks the up-front length validation of every run
// variant: a y shorter than the loop's data length must yield a descriptive
// error, not an index panic inside a worker.
func TestShortDataValidation(t *testing.T) {
	const n = 64
	loop := chainLoop(n)
	rt, err := doacross.New(n, doacross.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	short := make([]float64, n-1)

	if _, err := rt.Run(context.Background(), loop, short); err == nil || !strings.Contains(err.Error(), "shorter") {
		t.Fatalf("Run accepted a short data slice: %v", err)
	}
	if _, err := rt.RunBlocked(context.Background(), loop, short, 16); err == nil || !strings.Contains(err.Error(), "shorter") {
		t.Fatalf("RunBlocked accepted a short data slice: %v", err)
	}
	if _, err := rt.RunDoall(loop, short); err == nil || !strings.Contains(err.Error(), "shorter") {
		t.Fatalf("RunDoall accepted a short data slice: %v", err)
	}
	if _, err := rt.RunLinear(loop, short, doacross.LinearSubscript{C: 1}); err == nil || !strings.Contains(err.Error(), "shorter") {
		t.Fatalf("RunLinear accepted a short data slice: %v", err)
	}
}

// TestSolverContextCancellation checks cancellation through the triangular
// solver surface: a pre-cancelled context aborts SolveContext and leaves the
// solver reusable.
func TestSolverContextCancellation(t *testing.T) {
	const n = 256
	// A bidiagonal lower factor: row i depends on row i-1.
	rowPtr := make([]int, n+1)
	var col []int
	var val []float64
	for i := 1; i < n; i++ {
		col = append(col, i-1)
		val = append(val, 0.5)
		rowPtr[i+1] = len(col)
	}
	rowPtr[1] = 0
	tmat := &doacross.Triangular{N: n, Lower: true, UnitDiag: true, RowPtr: rowPtr, Col: col, Val: val}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = 1
	}

	s, err := doacross.NewSolver(tmat, doacross.WithWorkers(2), doacross.WithWaitStrategy(doacross.WaitSpinYield))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.SolveContext(ctx, rhs, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveContext returned %v, want context.Canceled", err)
	}

	want := doacross.SolveSequential(tmat, rhs)
	got, _, err := s.Solve(rhs, nil)
	if err != nil {
		t.Fatalf("solver not reusable after cancelled solve: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-cancel solve wrong at %d: %v != %v", i, got[i], want[i])
		}
	}
}

// TestOptionValidation checks that invalid functional options surface as
// construction errors.
func TestOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []doacross.Option
	}{
		{"zero workers", []doacross.Option{doacross.WithWorkers(0)}},
		{"negative chunk", []doacross.Option{doacross.WithChunk(-1)}},
		{"bad policy", []doacross.Option{doacross.WithPolicy(doacross.Policy(99))}},
		{"bad wait strategy", []doacross.Option{doacross.WithWaitStrategy(doacross.WaitStrategy(99))}},
		{"non-permutation order", []doacross.Option{doacross.WithOrder([]int{0, 0, 1})}},
	}
	for _, tc := range cases {
		if _, err := doacross.New(8, tc.opts...); err == nil {
			t.Errorf("%s: New accepted the invalid option", tc.name)
		}
	}
	if _, err := doacross.New(-1); err == nil {
		t.Error("New accepted a negative data length")
	}
}

// TestLoopBuilderValidation checks the builder's validation: both body
// variants set, neither set, and an out-of-range write are all rejected.
func TestLoopBuilderValidation(t *testing.T) {
	writes := func(i int) []int { return []int{i} }
	body := func(i int, v *doacross.Values) {}
	bodyErr := func(i int, v *doacross.Values) error { return nil }

	if _, err := doacross.NewLoop(4, 4).Writes(writes).Body(body).BodyErr(bodyErr).Build(); err == nil {
		t.Error("builder accepted both Body and BodyErr")
	}
	if _, err := doacross.NewLoop(4, 4).Writes(writes).Build(); err == nil {
		t.Error("builder accepted a loop with no body")
	}
	if _, err := doacross.NewLoop(4, 2).Writes(writes).Body(body).Build(); err == nil {
		t.Error("builder accepted an out-of-range write")
	}
	if _, err := doacross.NewLoop(4, 4).Writes(func(i int) []int { return []int{0} }).Body(body).Build(); err == nil {
		t.Error("builder accepted an output dependency")
	}
	if _, err := doacross.NewLoop(4, 4).Writes(writes).Body(body).Build(); err != nil {
		t.Errorf("builder rejected a valid loop: %v", err)
	}
}

// TestSequentialBodyErr checks that RunSequential stops at the first failing
// iteration.
func TestSequentialBodyErr(t *testing.T) {
	const n = 16
	sentinel := fmt.Errorf("stop at 5")
	var ran int
	loop, err := doacross.NewLoop(n, n).
		Writes(func(i int) []int { return []int{i} }).
		BodyErr(func(i int, v *doacross.Values) error {
			if i == 5 {
				return sentinel
			}
			ran++ //doavet:ignore bodycapture -- only ever run sequentially
			v.Store(i, 1)
			return nil
		}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := doacross.RunSequential(loop, make([]float64, n)); !errors.Is(err, sentinel) {
		t.Fatalf("RunSequential returned %v, want the body error", err)
	}
	if ran != 5 {
		t.Fatalf("RunSequential ran %d iterations after the failure, want 5 total", ran)
	}
}
