// Integration tests that exercise the full stack — problem generators,
// ILU(0), dependency analysis, doconsider reordering, the doacross runtime,
// the machine simulator and the experiment harness — together, through the
// public doacross facade, the way external programs use it.
package doacross_test

import (
	"context"
	"strings"
	"testing"

	"doacross"
	"doacross/internal/experiments"
	"doacross/internal/krylov"
	"doacross/internal/machine"
	"doacross/internal/sched"
	"doacross/internal/sparse"
	"doacross/internal/stencil"
	"doacross/internal/testloop"
)

func solverOptions(workers int) []doacross.Option {
	return []doacross.Option{
		doacross.WithWorkers(workers),
		doacross.WithPolicy(doacross.Dynamic),
		doacross.WithChunk(32),
		doacross.WithWaitStrategy(doacross.WaitSpinYield),
	}
}

// TestIntegrationAllProblemsAllSolvers builds every Table 1 problem, factors
// it, and checks that every parallel triangular-solve executor reproduces the
// sequential substitution exactly.
func TestIntegrationAllProblemsAllSolvers(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short mode")
	}
	for _, prob := range stencil.Problems {
		prob := prob
		t.Run(prob.String(), func(t *testing.T) {
			l, u, err := stencil.LowerFactor(prob, 1)
			if err != nil {
				t.Fatal(err)
			}
			if err := l.Validate(); err != nil {
				t.Fatal(err)
			}
			rhs := stencil.RHS(l.N, 99)
			want := doacross.SolveSequential(l, rhs)
			for _, kind := range []doacross.SolverKind{
				doacross.SolverDoacross, doacross.SolverReordered, doacross.SolverLinear, doacross.SolverLevelScheduled,
			} {
				got, _, err := doacross.SolveTriangular(kind, l, rhs, solverOptions(4)...)
				if err != nil {
					t.Fatalf("%v: %v", kind, err)
				}
				if d := sparse.VecMaxDiff(got, want); d > 1e-10 {
					t.Fatalf("%v: differs from sequential by %v", kind, d)
				}
			}
			// Backward substitution on the upper factor.
			wantU := u.Solve(rhs, nil)
			gotU, _, err := doacross.SolveTriangular(doacross.SolverDoacross, u, rhs, solverOptions(4)...)
			if err != nil {
				t.Fatal(err)
			}
			if d := sparse.VecMaxDiff(gotU, wantU); d > 1e-10 {
				t.Fatalf("upper doacross differs from sequential by %v", d)
			}
		})
	}
}

// TestIntegrationDependencyAnalysisConsistency cross-checks three independent
// views of the same dependency structure: the dependency graph, the executor
// counters and the machine simulator.
func TestIntegrationDependencyAnalysisConsistency(t *testing.T) {
	tc := testloop.Config{N: 3000, M: 5, L: 12}
	g := tc.Graph()
	loop := tc.Loop()

	// The executor must observe exactly as many true dependencies as the
	// dependency graph contains edges (the Figure 4 loop reads each
	// dependent element once per edge).
	rt, err := doacross.New(loop.Data,
		doacross.WithWorkers(4), doacross.WithWaitStrategy(doacross.WaitSpinYield))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	y := tc.InitialData()
	rep, err := rt.Run(context.Background(), loop, y)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TrueDeps != int64(g.Edges) {
		t.Fatalf("executor saw %d true dependencies, dependency graph has %d edges", rep.TrueDeps, g.Edges)
	}

	// The simulator must agree with the graph on the amount of work (T_seq).
	cm := experiments.Figure6CostModel(tc.M)
	sim, err := machine.Simulate(g, machine.Config{Processors: 16, Policy: sched.Cyclic}, cm)
	if err != nil {
		t.Fatal(err)
	}
	wantTSeq := machine.SimulateSequential(tc.N, cm)
	if diff := sim.TSeq - wantTSeq; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("simulator T_seq %v != %v", sim.TSeq, wantTSeq)
	}
}

// TestIntegrationReorderingConsistency checks that the two implementations of
// the doconsider transformation — reordering the execution schedule and
// renumbering the matrix — agree with each other and with the sequential
// solve on a paper problem.
func TestIntegrationReorderingConsistency(t *testing.T) {
	l, _, err := stencil.LowerFactor(stencil.NinePoint, 1)
	if err != nil {
		t.Fatal(err)
	}
	rhs := stencil.RHS(l.N, 17)
	want := doacross.SolveSequential(l, rhs)
	scheduled, _, err := doacross.SolveTriangular(doacross.SolverReordered, l, rhs, solverOptions(4)...)
	if err != nil {
		t.Fatal(err)
	}
	renumbered, _, err := doacross.SolveRenumbered(l, rhs, doacross.ReorderLevel, solverOptions(4)...)
	if err != nil {
		t.Fatal(err)
	}
	if d := sparse.VecMaxDiff(scheduled, want); d > 1e-10 {
		t.Fatalf("schedule-reordered solve differs by %v", d)
	}
	if d := sparse.VecMaxDiff(renumbered, want); d > 1e-10 {
		t.Fatalf("renumbered solve differs by %v", d)
	}
}

// TestIntegrationKrylovEndToEnd runs the motivating application end to end on
// a nonsymmetric operator: ILU(0)-preconditioned BiCGSTAB with both
// triangular substitutions executed by the preprocessed doacross.
func TestIntegrationKrylovEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short mode")
	}
	a, err := stencil.BlockSevenPoint(5, 4, 3, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	xTrue := make([]float64, a.Rows)
	for i := range xTrue {
		xTrue[i] = 1 + 0.25*float64(i%7)
	}
	b := a.MulVec(xTrue, nil)
	x, res, err := krylov.SolveNonsymmetricWithILU(a, b, func(p *sparse.ILUPreconditioner) {
		// Both substitutions run on two persistent doacross runtimes reused
		// across every BiCGSTAB iteration (two Applies per iteration).
		release, e := doacross.UseDoacrossILU(p, solverOptions(4)...)
		if e != nil {
			t.Fatal(e)
		}
		t.Cleanup(release)
	}, krylov.Options{Tolerance: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("BiCGSTAB with doacross preconditioning did not converge: %v", res)
	}
	if d := sparse.VecMaxDiff(x, xTrue); d > 1e-5 {
		t.Fatalf("solution error %v", d)
	}
}

// TestIntegrationPaperShapeChecks runs the reduced-size experiment harness
// end to end and asserts every qualitative claim of the paper holds, which is
// the same gate `doabench -check` applies to the full-size runs.
func TestIntegrationPaperShapeChecks(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short mode")
	}
	figCfg := experiments.DefaultFigure6Config()
	figCfg.N = 3000
	fig, err := experiments.RunFigure6(figCfg)
	if err != nil {
		t.Fatal(err)
	}
	if problems := fig.CheckShape(); len(problems) > 0 {
		t.Errorf("Figure 6 shape violations:\n%s", strings.Join(problems, "\n"))
	}
	tabCfg := experiments.DefaultTable1Config()
	tabCfg.Problems = []stencil.Problem{stencil.SPE2, stencil.FivePoint, stencil.SevenPoint}
	tab, err := experiments.RunTable1(tabCfg)
	if err != nil {
		t.Fatal(err)
	}
	if problems := tab.CheckShape(); len(problems) > 0 {
		t.Errorf("Table 1 shape violations:\n%s", strings.Join(problems, "\n"))
	}
	if err := tab.AsTable().Validate(); err != nil {
		t.Error(err)
	}
}
