// Tests for the observability surface of the facade: the WithMetrics hook,
// the plan snapshot/export round trip, and the serving front end's combined
// stats. CI runs this file under -race.
package doacross_test

import (
	"bytes"
	"context"
	"testing"

	"doacross"
)

// readsChain declares the chain loop's read pattern so the wavefront
// executors (and plan snapshots) can build the dependency graph.
func chainLoopWithReads(n int) *doacross.Loop {
	l, err := doacross.NewLoop(n, n).
		Writes(func(i int) []int { return []int{i} }).
		Reads(func(i int) []int {
			if i == 0 {
				return nil
			}
			return []int{i - 1}
		}).
		Body(func(i int, v *doacross.Values) {
			x := 1.0
			if i > 0 {
				x = v.Load(i-1) + 1
			}
			v.Store(i, x)
		}).
		Build()
	if err != nil {
		panic(err)
	}
	return l
}

// TestWithMetricsNil pins the option's validation: a nil sink is a
// construction error, not a latent panic.
func TestWithMetricsNil(t *testing.T) {
	if _, err := doacross.New(8, doacross.WithMetrics(nil)); err == nil {
		t.Error("New accepted a nil metrics sink")
	}
}

// TestWithMetricsFacade drives a runtime built through the facade and checks
// the collector sees the runs and the plan-cache transitions.
func TestWithMetricsFacade(t *testing.T) {
	c := doacross.NewMetricsCollector()
	rt, err := doacross.New(32,
		doacross.WithWorkers(2),
		doacross.WithExecutor(doacross.Wavefront),
		doacross.WithMetrics(c))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	l := chainLoopWithReads(32)
	y := make([]float64, 32)
	for r := 0; r < 3; r++ {
		if _, err := rt.Run(context.Background(), l, y); err != nil {
			t.Fatal(err)
		}
	}
	snap := c.Snapshot()
	if snap.Runs != 3 || snap.Errors != 0 {
		t.Errorf("runs/errors = %d/%d, want 3/0", snap.Runs, snap.Errors)
	}
	if snap.PlanMisses != 1 || snap.PlanHits != 2 {
		t.Errorf("misses/hits = %d/%d, want 1/2", snap.PlanMisses, snap.PlanHits)
	}
	em, ok := snap.Executors["wavefront"]
	if !ok || em.Runs != 3 {
		t.Errorf("wavefront executor metrics missing or wrong: %+v", snap.Executors)
	}
	if snap.String() == "" {
		t.Error("snapshot String() is empty")
	}
}

// TestPlanExportFacade round-trips a plan through the facade surface:
// Runtime.PlanSnapshot → ExportPlan → EncodePlan → DecodePlan →
// PlanDoc.Snapshot, with byte-identical re-encoding.
func TestPlanExportFacade(t *testing.T) {
	rt, err := doacross.New(16,
		doacross.WithWorkers(2),
		doacross.WithExecutor(doacross.Wavefront))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	snap, err := rt.PlanSnapshot(chainLoopWithReads(16))
	if err != nil {
		t.Fatal(err)
	}
	doc := doacross.ExportPlan("chain16", snap)
	if doc.Schema != doacross.PlanSchemaVersion {
		t.Errorf("schema = %d, want %d", doc.Schema, doacross.PlanSchemaVersion)
	}

	var buf bytes.Buffer
	if err := doacross.EncodePlan(&buf, doc); err != nil {
		t.Fatal(err)
	}
	decoded, err := doacross.DecodePlan(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	back, err := decoded.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if back.Iterations != snap.Iterations || back.Workers != snap.Workers {
		t.Errorf("rebuilt snapshot differs: %d/%d vs %d/%d", back.Iterations, back.Workers, snap.Iterations, snap.Workers)
	}
	var again bytes.Buffer
	if err := doacross.EncodePlan(&again, decoded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("re-encoding the decoded document changed the bytes")
	}
	if decoded.DOT() == "" {
		t.Error("DOT render is empty")
	}
}

// TestServiceRuntimeStats checks the serving front end surfaces the
// runtime-level metrics: a solver built with WithMetrics and a service given
// the same collector report the runs and cache hits behind the batches.
func TestServiceRuntimeStats(t *testing.T) {
	const n = 12
	tri := &doacross.Triangular{
		N:      n,
		Lower:  true,
		RowPtr: make([]int, n+1),
		Diag:   make([]float64, n),
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			tri.Col = append(tri.Col, i-1)
			tri.Val = append(tri.Val, -1)
		}
		tri.RowPtr[i+1] = len(tri.Col)
		tri.Diag[i] = 2
	}

	c := doacross.NewMetricsCollector()
	solver, err := doacross.NewSolver(tri,
		doacross.WithWorkers(2),
		doacross.WithExecutor(doacross.Wavefront),
		doacross.WithMetrics(c))
	if err != nil {
		t.Fatal(err)
	}
	defer solver.Close()
	svc, err := doacross.NewSolveService(solver, doacross.ServeOptions{Metrics: c})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = 1
	}
	for r := 0; r < 4; r++ {
		if _, err := svc.Solve(context.Background(), rhs); err != nil {
			t.Fatal(err)
		}
	}

	st := svc.Stats()
	if st.Solves != 4 {
		t.Errorf("service answered %d solves, want 4", st.Solves)
	}
	if st.Runtime == nil {
		t.Fatal("Stats.Runtime is nil with ServeOptions.Metrics set")
	}
	if st.Runtime.Runs != 4 {
		t.Errorf("runtime recorded %d runs behind 4 solo batches, want 4", st.Runtime.Runs)
	}
	if st.Runtime.PlanMisses != 1 || st.Runtime.PlanHits != 3 {
		t.Errorf("misses/hits = %d/%d, want 1/3", st.Runtime.PlanMisses, st.Runtime.PlanHits)
	}

	// Without a collector the runtime slice of the stats stays nil.
	bare, err := doacross.NewSolveService(solver, doacross.ServeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	if bare.Stats().Runtime != nil {
		t.Error("Stats.Runtime non-nil without ServeOptions.Metrics")
	}
}
