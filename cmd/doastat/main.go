// Command doastat diagnoses the execution-time dependency structure of a
// workload the way the runtime's inspector sees it: given the Figure 4 test
// loop, one of the Table 1 triangular solves, a MatrixMarket matrix, or a
// previously exported plan document, it reports wavefront levels, widths,
// critical path, stall weight, read imbalance, the incremental-repair
// break-even cone, the cost model's three per-executor predictions and
// Auto's pick — the information needed to predict whether (and how) a
// preprocessed doacross will pay off. Plans can also be exported as a
// versioned JSON document or rendered as Graphviz DOT.
//
// Usage:
//
//	doastat -kind testloop -n 10000 -m 5 -l 12
//	doastat -kind trisolve -problem 7-PT
//	doastat -kind matrix -matrix system.mtx -tri lower
//	doastat -kind trisolve -problem 5-PT -format json > plan.json
//	doastat -kind plan -plan plan.json
//	doastat -kind testloop -n 20 -m 1 -l 4 -format dot
package main

import (
	"os"

	"doacross/internal/doastat"
)

func main() {
	os.Exit(doastat.Main(os.Args[1:], os.Stdout, os.Stderr))
}
