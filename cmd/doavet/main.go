// Command doavet is the doacross contract checker: a multichecker over the
// internal/analyze suite (bodycapture, staleplan, runtimeclose, reportcheck).
// It runs in two modes.
//
// Direct mode loads, type-checks and analyzes packages itself:
//
//	doavet ./...
//	doavet -tests -checks bodycapture,staleplan ./...
//
// Vet-tool mode speaks the protocol `go vet -vettool` expects (-V=full,
// -flags, and a JSON .cfg describing one compilation unit), so the suite can
// ride the go command's build graph and caching:
//
//	go vet -vettool=$(pwd)/doavet ./...
//
// Both modes exit 0 when the tree is clean, 1 when diagnostics were reported,
// and 2 on a load or type-check failure. Findings print as
// file:line:col: message [analyzer]; a finding is suppressed by a
// //doavet:ignore [analyzer...] comment on the same or the preceding line.
//
// The tool is built only on the standard library: packages are listed and
// compiled through the go command and type-checked from export data, so
// doavet works in the same hermetic environment as the runtime it polices.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"doacross/internal/analyze"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("doavet", flag.ExitOnError)
	version := fs.String("V", "", "print version and exit (-V=full, for the go vet protocol)")
	printFlags := fs.Bool("flags", false, "print flag descriptions in JSON (for the go vet protocol)")
	tests := fs.Bool("tests", false, "also analyze test files (direct mode)")
	checks := fs.String("checks", "", "comma-separated analyzer names to run (default all: "+strings.Join(analyze.Names(), ",")+")")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: doavet [-tests] [-checks names] [packages]\n       go vet -vettool=doavet [packages]\n\nAnalyzers:\n")
		for _, a := range analyze.All() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *version != "" {
		return printVersion(*version)
	}
	if *printFlags {
		// Tell go vet which flags the tool accepts.
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		flags := []jsonFlag{
			{"tests", true, "also analyze test files"},
			{"checks", false, "comma-separated analyzer names to run"},
		}
		data, _ := json.MarshalIndent(flags, "", "\t")
		os.Stdout.Write(data)
		return 0
	}

	analyzers, err := analyze.ByName(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runUnit(rest[0], analyzers)
	}
	return runDirect(rest, *tests, analyzers)
}

// printVersion implements the -V=full handshake: go vet folds the line into
// its build cache key, so it must identify this executable's exact contents.
func printVersion(mode string) int {
	if mode != "full" {
		fmt.Fprintf(os.Stderr, "doavet: unsupported flag value: -V=%s (use -V=full)\n", mode)
		return 2
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "doavet:", err)
		return 2
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doavet:", err)
		return 2
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, "doavet:", err)
		return 2
	}
	fmt.Printf("%s version devel doavet buildID=%02x\n", exe, string(h.Sum(nil)))
	return 0
}

// runDirect loads packages through the go command and analyzes them all.
func runDirect(patterns []string, tests bool, analyzers []*analyze.Analyzer) int {
	pkgs, err := analyze.Load("", tests, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doavet:", err)
		return 2
	}
	found := false
	for _, pkg := range pkgs {
		diags, err := analyze.RunPackage(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doavet:", err)
			return 2
		}
		for _, d := range diags {
			found = true
			fmt.Fprintln(os.Stderr, d)
		}
	}
	if found {
		return 1
	}
	return 0
}

// vetConfig is the JSON compilation-unit description `go vet` hands a
// -vettool (the unitchecker protocol): the file list, the import map and the
// export data of every dependency, plus the facts plumbing.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes the single compilation unit described by a .cfg file, the
// way go vet drives a vettool once per package.
func runUnit(cfgFile string, analyzers []*analyze.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doavet:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "doavet: cannot decode config file %s: %v\n", cfgFile, err)
		return 2
	}

	// The go command always expects the facts file, even from a tool that
	// records none; writing it first keeps every exit path below valid.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "doavet:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		// Dependency passes exist only to propagate facts; doavet keeps none.
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "doavet:", err)
			return 2
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImporter.Import(path)
	})
	conf := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(cfg.Compiler, build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Instances:    make(map[*ast.Ident]types.Instance),
		Scopes:       make(map[ast.Node]*types.Scope),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		FileVersions: make(map[*ast.File]string),
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "doavet:", err)
		return 2
	}

	pkg := &analyze.Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	diags, err := analyze.RunPackage(pkg, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doavet:", err)
		return 2
	}
	for _, d := range diags {
		// go vet's plain-diagnostic format: position, message, no analyzer
		// suffix games it cannot parse.
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
