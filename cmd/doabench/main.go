// Command doabench regenerates every table and figure of the paper's
// evaluation section, plus the design-choice ablations described in
// DESIGN.md.
//
// Usage:
//
//	doabench -experiment fig6        # Figure 6: test-loop efficiency vs. L
//	doabench -experiment table1      # Table 1: sparse triangular solves
//	doabench -experiment overhead    # Ablation A: runtime overhead decomposition
//	doabench -experiment blocked     # Ablation B: strip-mined doacross
//	doabench -experiment linear      # Ablation C: linear-subscript variant
//	doabench -experiment ordering    # Ablation E: doconsider ordering strategies
//	doabench -experiment sweep       # Ablation F: processor-count sweep (extension)
//	doabench -experiment executors   # live executor sweep: doacross vs wavefront vs wavefront-dynamic
//	doabench -experiment live        # live goroutine measurements on this host
//	doabench -experiment serving     # serving throughput: K concurrent callers through the coalescing SolveService
//	doabench -experiment repair      # incremental plan repair vs cold re-inspection across edit-cone sizes
//	doabench -experiment tuning      # online self-tuning Auto: mis-seeded recovery by measured feedback
//	doabench -experiment all         # everything above
//
// The -experiment flag also accepts a comma-separated subset
// (e.g. -experiment executors,serving), useful when one invocation should
// emit a single machine-readable file covering several experiments.
//
// Flags -procs, -n and -seed override the simulated processor count, the
// Figure 6 iteration count and the SPE perturbation seed. The -check flag
// verifies the paper's qualitative claims and exits non-zero when a claim is
// violated. The -format flag renders the fig6/table1/sweep tables as text,
// Markdown or CSV. The -executors flag restricts the executors experiment to
// a comma-separated subset of doacross, wavefront, wavefront-dynamic, auto
// (default all); unknown experiment or executor names are rejected with the
// valid set spelled out.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"doacross/internal/experiments"
	"doacross/internal/stencil"
	"doacross/internal/testloop"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "comma-separated subset of fig6 | table1 | overhead | blocked | linear | ordering | sweep | executors | live | serving | repair | tuning | all")
		procs      = flag.Int("procs", experiments.PaperProcessors, "simulated processor count")
		n          = flag.Int("n", 10000, "Figure 6 outer iteration count")
		seed       = flag.Int64("seed", 1, "seed for the synthetic SPE operators")
		check      = flag.Bool("check", false, "verify the paper's qualitative claims and fail if violated")
		liveReps   = flag.Int("live-reps", 3, "repetitions for live measurements")
		format     = flag.String("format", "text", "output format for fig6/table1/sweep: text | markdown | csv")
		// The default deliberately differs from the committed baseline
		// (BENCH_results.json) so a partial experiment run cannot silently
		// clobber it; regenerating the baseline is an explicit -json.
		jsonPath    = flag.String("json", "BENCH_results.new.json", "write machine-readable results of the live/executors experiments here (empty disables)")
		liveWorkers = flag.String("workers", "", "comma-separated worker counts for the executors sweep (first entry also pins the serving solver; default: derived from GOMAXPROCS)")
		executors   = flag.String("executors", "", "comma-separated executors for the executors sweep: doacross | wavefront | wavefront-dynamic | auto (default: all)")
		callers     = flag.String("callers", "4,16", "comma-separated concurrent caller counts for the serving experiment")
	)
	flag.Parse()

	validExperiments := []string{"fig6", "table1", "overhead", "blocked", "linear", "ordering", "sweep", "executors", "live", "serving", "repair", "tuning", "all"}
	selected := make(map[string]bool)
	for _, raw := range strings.Split(*experiment, ",") {
		name := strings.TrimSpace(raw)
		known := false
		for _, valid := range validExperiments {
			if name == valid {
				known = true
				break
			}
		}
		if !known {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (valid: %s)\n", name, strings.Join(validExperiments, ", "))
			os.Exit(1)
		}
		selected[name] = true
	}

	failures := 0
	var benchRecords []experiments.BenchRecord
	run := func(name string, f func() (string, []string, error)) {
		if !selected["all"] && !selected[name] {
			return
		}
		out, problems, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		if *check {
			if len(problems) == 0 {
				fmt.Printf("[check] %s: all qualitative claims reproduced\n\n", name)
			} else {
				for _, p := range problems {
					fmt.Printf("[check] %s: VIOLATION: %s\n", name, p)
				}
				fmt.Println()
				failures += len(problems)
			}
		}
	}

	run("fig6", func() (string, []string, error) {
		cfg := experiments.DefaultFigure6Config()
		cfg.N = *n
		cfg.Processors = *procs
		res, err := experiments.RunFigure6(cfg)
		if err != nil {
			return "", nil, err
		}
		out, err := res.AsTable().Format(*format)
		if err != nil {
			return "", nil, err
		}
		return out, res.CheckShape(), nil
	})

	run("table1", func() (string, []string, error) {
		cfg := experiments.DefaultTable1Config()
		cfg.Processors = *procs
		cfg.Seed = *seed
		res, err := experiments.RunTable1(cfg)
		if err != nil {
			return "", nil, err
		}
		out, err := res.AsTable().Format(*format)
		if err != nil {
			return "", nil, err
		}
		return out, res.CheckShape(), nil
	})

	run("overhead", func() (string, []string, error) {
		rows, err := experiments.RunOverheadAblation(*n, []int{1, 5}, *procs)
		if err != nil {
			return "", nil, err
		}
		return experiments.FormatOverhead(rows), nil, nil
	})

	run("blocked", func() (string, []string, error) {
		tc := testloop.Config{N: *n, M: 1, L: 12}
		rows, err := experiments.RunBlockedAblation(tc, []int{125, 250, 500, 1000, 2500, 5000, *n}, *procs)
		if err != nil {
			return "", nil, err
		}
		return experiments.FormatBlocked(rows), nil, nil
	})

	run("linear", func() (string, []string, error) {
		rows, err := experiments.RunLinearAblation(*n, 1, []int{1, 4, 8, 12, 14}, *procs)
		if err != nil {
			return "", nil, err
		}
		return experiments.FormatLinear(rows), nil, nil
	})

	run("ordering", func() (string, []string, error) {
		rows, err := experiments.RunOrderingAblation(stencil.Problems, *procs, *seed)
		if err != nil {
			return "", nil, err
		}
		return experiments.FormatOrdering(rows), nil, nil
	})

	run("sweep", func() (string, []string, error) {
		var out strings.Builder
		var problems []string
		emit := func(s experiments.SweepResult) error {
			rendered, err := s.AsTable().Format(*format)
			if err != nil {
				return err
			}
			out.WriteString(rendered)
			out.WriteByte('\n')
			problems = append(problems, s.CheckShape()...)
			return nil
		}
		loopSweep, err := experiments.RunProcessorSweepTestLoop(testloop.Config{N: *n, M: 5, L: 12}, experiments.DefaultSweepProcessors)
		if err != nil {
			return "", nil, err
		}
		if err := emit(loopSweep); err != nil {
			return "", nil, err
		}
		for _, prob := range []stencil.Problem{stencil.FivePoint, stencil.SevenPoint} {
			s, err := experiments.RunProcessorSweepTrisolve(prob, experiments.DefaultSweepProcessors, *seed)
			if err != nil {
				return "", nil, err
			}
			if err := emit(s); err != nil {
				return "", nil, err
			}
		}
		return out.String(), problems, nil
	})

	run("executors", func() (string, []string, error) {
		workers := experiments.DefaultLiveWorkers()
		sweep := []int{workers}
		if workers > 2 {
			sweep = []int{2, workers}
		}
		if *liveWorkers != "" {
			sweep = nil
			for _, s := range strings.Split(*liveWorkers, ",") {
				w, err := strconv.Atoi(strings.TrimSpace(s))
				if err != nil || w < 1 {
					return "", nil, fmt.Errorf("invalid -workers entry %q", s)
				}
				sweep = append(sweep, w)
			}
		}
		var execNames []string
		if *executors != "" {
			for _, s := range strings.Split(*executors, ",") {
				execNames = append(execNames, strings.TrimSpace(s))
			}
		}
		rows, err := experiments.RunExecutorSweep(
			[]stencil.Problem{stencil.SPE2, stencil.FivePoint, stencil.SevenPoint}, sweep, *liveReps, execNames...)
		if err != nil {
			return "", nil, err
		}
		benchRecords = append(benchRecords, experiments.ExecutorBenchRecords(rows)...)
		return experiments.FormatExecutorSweep(rows), experiments.CheckExecutorSweep(rows), nil
	})

	run("live", func() (string, []string, error) {
		workers := experiments.DefaultLiveWorkers()
		var results []experiments.LiveResult
		for _, tc := range []testloop.Config{
			{N: *n, M: 5, L: 1},
			{N: *n, M: 5, L: 14},
			// WorkPerTerm restores the paper's work-to-overhead regime (a
			// Multimax iteration cost microseconds); these rows show the live
			// runtime scaling on this host.
			{N: *n, M: 5, L: 1, WorkPerTerm: 400},
			{N: *n, M: 5, L: 14, WorkPerTerm: 400},
		} {
			r, err := experiments.RunLiveTestLoop(tc, workers, *liveReps)
			if err != nil {
				return "", nil, err
			}
			results = append(results, r)
		}
		for _, prob := range []stencil.Problem{stencil.FivePoint, stencil.SevenPoint} {
			for _, variant := range experiments.TrisolveVariants {
				r, err := experiments.RunLiveTrisolve(prob, workers, *liveReps, variant)
				if err != nil {
					return "", nil, err
				}
				results = append(results, r)
			}
		}
		// The motivating application: preconditioned CG with reusable
		// doacross triangular solvers (persistent pool reuse end to end).
		r, err := experiments.RunLiveKrylovReuse(workers, *liveReps)
		if err != nil {
			return "", nil, err
		}
		results = append(results, r)
		benchRecords = append(benchRecords, experiments.LiveBenchRecords(results)...)
		return experiments.FormatLive(results), nil, nil
	})

	run("serving", func() (string, []string, error) {
		workers := experiments.DefaultLiveWorkers()
		if *liveWorkers != "" {
			first := strings.Split(*liveWorkers, ",")[0]
			w, err := strconv.Atoi(strings.TrimSpace(first))
			if err != nil || w < 1 {
				return "", nil, fmt.Errorf("invalid -workers entry %q", first)
			}
			workers = w
		}
		var ks []int
		for _, s := range strings.Split(*callers, ",") {
			k, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || k < 1 {
				return "", nil, fmt.Errorf("invalid -callers entry %q", s)
			}
			ks = append(ks, k)
		}
		var results []experiments.ServingResult
		for _, k := range ks {
			cfg := experiments.DefaultServingConfig(stencil.FivePoint, workers, k)
			cfg.Repeat = *liveReps
			rows, err := experiments.RunServing(cfg)
			if err != nil {
				return "", nil, err
			}
			results = append(results, rows...)
		}
		benchRecords = append(benchRecords, experiments.ServingBenchRecords(results)...)
		return experiments.FormatServing(results), experiments.CheckServing(results), nil
	})

	run("repair", func() (string, []string, error) {
		workers := experiments.DefaultLiveWorkers()
		sweep := []int{workers}
		if workers > 1 {
			sweep = []int{1, workers}
		}
		if *liveWorkers != "" {
			sweep = nil
			for _, s := range strings.Split(*liveWorkers, ",") {
				w, err := strconv.Atoi(strings.TrimSpace(s))
				if err != nil || w < 1 {
					return "", nil, fmt.Errorf("invalid -workers entry %q", s)
				}
				sweep = append(sweep, w)
			}
		}
		rows, err := experiments.RunRepairExperiment(
			[]stencil.Problem{stencil.SPE2, stencil.FivePoint}, sweep, []int{1, 4, 16}, *liveReps)
		if err != nil {
			return "", nil, err
		}
		benchRecords = append(benchRecords, experiments.RepairBenchRecords(rows)...)
		return experiments.FormatRepair(rows), experiments.CheckRepair(rows), nil
	})

	run("tuning", func() (string, []string, error) {
		workers := experiments.DefaultLiveWorkers()
		if workers > 4 {
			// A chain run under the busy-wait doacross spins every worker; past
			// a few the oversubscription noise drowns the comparison without
			// changing its direction.
			workers = 4
		}
		if *liveWorkers != "" {
			first := strings.Split(*liveWorkers, ",")[0]
			w, err := strconv.Atoi(strings.TrimSpace(first))
			if err != nil || w < 1 {
				return "", nil, fmt.Errorf("invalid -workers entry %q", first)
			}
			workers = w
		}
		truthReps := *liveReps
		if truthReps < 3 {
			truthReps = 3
		}
		rows, err := experiments.RunTuningExperiment(workers, 30, truthReps)
		if err != nil {
			return "", nil, err
		}
		benchRecords = append(benchRecords, experiments.TuningBenchRecords(rows)...)
		return experiments.FormatTuning(rows), experiments.CheckTuning(rows), nil
	})

	if *jsonPath != "" && len(benchRecords) > 0 {
		if err := experiments.WriteBenchJSON(*jsonPath, benchRecords); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d machine-readable records to %s\n", len(benchRecords), *jsonPath)
	}

	if *check && failures > 0 {
		fmt.Fprintf(os.Stderr, "%d qualitative claims violated\n", failures)
		os.Exit(2)
	}
}
