// Command benchdiff compares two BENCH_results.json files (written by
// doabench -json) and fails when any workload's ns/op regressed beyond a
// threshold. It is the CI gate that keeps the repo's performance trajectory
// visible run over run:
//
//	benchdiff -old BENCH_results.json -new BENCH_results.new.json -threshold 0.20
//
// Workloads are matched by (experiment, name, workers, executor); records
// present in only one file are reported but never fail the comparison, so
// adding or retiring experiments does not break the gate. A comparison that
// matches nothing at all while both sides have records is an error — a
// silent configuration mismatch must not pass as a green gate. Exit status
// is 2 when at least one matched workload is more than threshold slower, 1
// on usage or I/O errors or a vacuous comparison, 0 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"

	"doacross/internal/experiments"
)

func main() {
	var (
		oldPath   = flag.String("old", "BENCH_results.json", "baseline results file")
		newPath   = flag.String("new", "BENCH_results.new.json", "current results file")
		threshold = flag.Float64("threshold", 0.20, "allowed fractional ns/op slowdown before failing")
	)
	flag.Parse()
	if *threshold < 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: threshold must be non-negative")
		os.Exit(1)
	}
	oldFile, err := experiments.ReadBenchJSON(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	newFile, err := experiments.ReadBenchJSON(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	cmp := experiments.CompareBenchRecords(oldFile.Records, newFile.Records, *threshold)
	fmt.Print(cmp.Format())
	if cmp.Vacuous() {
		fmt.Fprintln(os.Stderr, "benchdiff: no workload matched between baseline and current — the gate checked nothing (mismatched worker counts or experiment sets?)")
		os.Exit(1)
	}
	if len(cmp.Regressions()) > 0 {
		os.Exit(2)
	}
}
