// Command loopstat is the deprecated name of doastat, kept as an alias so
// existing scripts keep working: it accepts exactly the same flags (the old
// -dot flag maps to -format dot) and produces the same report. New scripts
// should invoke doastat; see that command for documentation.
package main

import (
	"os"

	"doacross/internal/doastat"
)

func main() {
	os.Exit(doastat.Main(os.Args[1:], os.Stdout, os.Stderr))
}
