// Command loopstat analyses the execution-time dependency structure of the
// workloads used in the paper: the Figure 4 test loop for a given (N, M, L)
// and the triangular solves of Table 1. It reports the dependency graph's
// levels, critical path and maximum achievable speedup, the incremental
// plan-repair break-even point, and the effect of the doconsider orderings —
// the information a user needs to predict whether a preprocessed doacross
// will pay off.
//
// Usage:
//
//	loopstat -kind testloop -n 10000 -m 5 -l 12
//	loopstat -kind trisolve -problem 7-PT
//	loopstat -kind testloop -n 20 -m 1 -l 4 -dot    # emit Graphviz DOT
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"doacross"
	"doacross/internal/doconsider"
	"doacross/internal/machine"
	"doacross/internal/stencil"
	"doacross/internal/testloop"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole program behind a testable seam: flags in, report out,
// process exit code returned.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("loopstat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kind    = fs.String("kind", "testloop", "testloop | trisolve")
		n       = fs.Int("n", 10000, "test loop outer iteration count")
		m       = fs.Int("m", 5, "test loop inner length M")
		l       = fs.Int("l", 12, "test loop parameter L")
		problem = fs.String("problem", "5-PT", "trisolve problem: SPE2, SPE5, 5-PT, 7-PT, 9-PT")
		seed    = fs.Int64("seed", 1, "seed for synthetic SPE operators")
		dot     = fs.Bool("dot", false, "emit the dependency graph in Graphviz DOT format (small graphs only)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var g *doacross.DepGraph
	var title string
	switch *kind {
	case "testloop":
		tc := testloop.Config{N: *n, M: *m, L: *l}
		if err := tc.Validate(); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		g = tc.Graph()
		title = fmt.Sprintf("Figure 4 test loop N=%d M=%d L=%d", *n, *m, *l)
	case "trisolve":
		var prob stencil.Problem
		found := false
		for _, p := range stencil.Problems {
			if strings.EqualFold(p.String(), *problem) {
				prob, found = p, true
			}
		}
		if !found {
			fmt.Fprintf(stderr, "unknown problem %q\n", *problem)
			return 1
		}
		lower, _, err := stencil.LowerFactor(prob, *seed)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		g = doacross.TrisolveGraph(lower)
		title = fmt.Sprintf("forward substitution for the ILU(0) factor of %v (%d equations)", prob, lower.N)
	default:
		fmt.Fprintf(stderr, "unknown kind %q\n", *kind)
		return 1
	}

	if *dot {
		if g.N > 200 {
			fmt.Fprintf(stderr, "graph has %d nodes; DOT output is limited to 200\n", g.N)
			return 1
		}
		fmt.Fprint(stdout, g.DOT(*kind))
		return 0
	}

	st := g.Analyze()
	fmt.Fprintf(stdout, "Dependency structure of %s\n", title)
	fmt.Fprintf(stdout, "  iterations        %d\n", st.Iterations)
	fmt.Fprintf(stdout, "  dependency edges  %d\n", st.Edges)
	fmt.Fprintf(stdout, "  wavefront levels  %d\n", st.Levels)
	fmt.Fprintf(stdout, "  widest level      %d iterations\n", st.MaxLevelWidth)
	fmt.Fprintf(stdout, "  mean level width  %.1f iterations\n", st.MeanLevelWidth)
	fmt.Fprintf(stdout, "  critical path     %d iterations\n", st.CriticalPathLen)
	fmt.Fprintf(stdout, "  max speedup       %.1fx (unit cost, unbounded processors)\n", st.MaxSpeedup)
	if st.Independent {
		fmt.Fprintln(stdout, "  the loop is fully independent: a doall would suffice")
	}

	// The repair break-even report is purely a function of the graph's size
	// and the default cost-model ratios, so it is deterministic across hosts:
	// it tells the user how large an edit's dirty cone may grow before
	// RepairPlans' gate falls back to a cold re-inspection.
	rc := machine.DefaultRepairCosts
	breakEven := rc.BreakEvenCone(st.Iterations, st.Edges)
	fmt.Fprintln(stdout, "\nIncremental plan repair (cost-model units):")
	fmt.Fprintf(stdout, "  cold inspection   %.0f units\n", rc.ColdInspect(st.Iterations, st.Edges))
	if breakEven >= st.Iterations {
		// A dense enough graph makes the cold inspection so expensive that
		// even a whole-loop dirty cone repairs cheaper.
		fmt.Fprintln(stdout, "  break-even cone   whole loop (every edit repairs, none falls back cold)")
	} else {
		fmt.Fprintf(stdout, "  break-even cone   %d iterations (%.1f%% of the loop)\n",
			breakEven, 100*float64(breakEven)/float64(st.Iterations))
	}

	fmt.Fprintln(stdout, "\nDoconsider orderings (mean positions between dependent iterations — larger is more slack):")
	for _, s := range doconsider.Strategies {
		plan := doconsider.NewPlan(g, s)
		fmt.Fprintf(stdout, "  %-18s mean wait distance %8.1f\n", s.String(), plan.MeanWaitDistance)
	}

	profile := g.ParallelismProfile()
	if len(profile) > 0 {
		fmt.Fprintln(stdout, "\nParallelism profile (iterations per wavefront level, first 20 levels):")
		limit := len(profile)
		if limit > 20 {
			limit = 20
		}
		for lvl := 0; lvl < limit; lvl++ {
			fmt.Fprintf(stdout, "  level %3d: %d\n", lvl, profile[lvl])
		}
		if len(profile) > limit {
			fmt.Fprintf(stdout, "  ... (%d more levels)\n", len(profile)-limit)
		}
	}
	return 0
}
