package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current output")

// golden runs loopstat with args and compares its stdout against the golden
// file, rewriting it under -update.
func golden(t *testing.T, name string, args []string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("run(%v) = %d, stderr: %s", args, code, stderr.String())
	}
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, stdout.Bytes(), 0o666); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s--- want ---\n%s", path, stdout.Bytes(), want)
	}
}

// TestGoldenTrisolve5PT pins the analysis report for the fixed 5-point
// stencil substitution — a fully deterministic workload, so any output drift
// is a real behaviour change in the graph analysis or the report format.
func TestGoldenTrisolve5PT(t *testing.T) {
	golden(t, "trisolve_5pt.golden", []string{"-kind", "trisolve", "-problem", "5-PT"})
}

// TestGoldenTestloop pins the report for a small Figure 4 test loop,
// including the doconsider ordering table and the parallelism profile.
func TestGoldenTestloop(t *testing.T) {
	golden(t, "testloop_n200_m3_l6.golden", []string{"-kind", "testloop", "-n", "200", "-m", "3", "-l", "6"})
}

// TestBadFlags pins the error paths: unknown kind and unknown problem exit
// nonzero without touching stdout.
func TestBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-kind", "nosuch"},
		{"-kind", "trisolve", "-problem", "nosuch"},
		{"-kind", "testloop", "-n", "-3"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code == 0 {
			t.Errorf("run(%v) succeeded, want failure", args)
		}
		if stdout.Len() != 0 {
			t.Errorf("run(%v) wrote to stdout on failure: %q", args, stdout.String())
		}
	}
}
