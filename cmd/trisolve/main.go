// Command trisolve generates one of the paper's five test triangular systems
// and solves it with the executors compared in Table 1, reporting wall-clock
// times on the host and verifying all solutions against the sequential
// substitution. All solves go through the public doacross facade.
//
// Usage:
//
//	trisolve -problem 5-PT -workers 8 -solver all
//	trisolve -problem SPE2 -solver doacross-reordered
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"doacross"
	"doacross/internal/sparse"
	"doacross/internal/stencil"
	"doacross/internal/trace"
)

func problemByName(name string) (stencil.Problem, error) {
	for _, p := range stencil.Problems {
		if strings.EqualFold(p.String(), name) {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown problem %q (choose from SPE2, SPE5, 5-PT, 7-PT, 9-PT)", name)
}

var solverKinds = map[string]doacross.SolverKind{
	"sequential":                 doacross.SolverSequential,
	"doacross":                   doacross.SolverDoacross,
	"doacross-reordered":         doacross.SolverReordered,
	"doacross-linear":            doacross.SolverLinear,
	"level-scheduled":            doacross.SolverLevelScheduled,
	"doacross-wavefront":         doacross.SolverWavefront,
	"doacross-wavefront-dynamic": doacross.SolverWavefrontDynamic,
}

func main() {
	var (
		problem   = flag.String("problem", "5-PT", "test system: SPE2, SPE5, 5-PT, 7-PT or 9-PT")
		workers   = flag.Int("workers", 4, "number of workers for the parallel solvers")
		solver    = flag.String("solver", "all", "sequential | doacross | doacross-reordered | doacross-linear | level-scheduled | doacross-wavefront | doacross-wavefront-dynamic | all")
		repeat    = flag.Int("repeat", 3, "timing repetitions (best is reported)")
		seed      = flag.Int64("seed", 1, "seed for the synthetic SPE operators")
		showTrace = flag.Bool("trace", false, "print a per-worker execution trace summary of the doacross solve")
	)
	flag.Parse()

	prob, err := problemByName(*problem)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("Building %v (%d equations) and its ILU(0) lower factor...\n", prob, prob.Equations())
	l, _, err := stencil.LowerFactor(prob, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rhs := stencil.RHS(l.N, 7)
	g := doacross.TrisolveGraph(l)
	st := g.Analyze()
	fmt.Printf("Dependency structure: %s\n\n", st)

	reference := doacross.SolveSequential(l, rhs)
	opts := []doacross.Option{
		doacross.WithWorkers(*workers),
		doacross.WithPolicy(doacross.Dynamic),
		doacross.WithChunk(32),
		doacross.WithWaitStrategy(doacross.WaitSpinYield),
	}

	names := []string{"sequential", "doacross", "doacross-reordered", "doacross-linear", "level-scheduled", "doacross-wavefront", "doacross-wavefront-dynamic"}
	if _, ok := solverKinds[*solver]; !ok && *solver != "all" {
		// An unknown solver name used to fall through the loop below and
		// silently solve nothing; reject it with the valid set instead.
		fmt.Fprintf(os.Stderr, "unknown solver %q (valid: %s, all)\n", *solver, strings.Join(names, ", "))
		os.Exit(1)
	}
	fmt.Printf("%-20s %12s %10s %10s  %s\n", "solver", "time", "speedup", "eff", "check")
	var seqTime time.Duration
	for _, name := range names {
		if *solver != "all" && *solver != name {
			continue
		}
		kind := solverKinds[name]
		var out []float64
		sample := trace.Measure(*repeat, func() {
			var solveErr error
			out, _, solveErr = doacross.SolveTriangular(kind, l, rhs, opts...)
			if solveErr != nil {
				fmt.Fprintln(os.Stderr, solveErr)
				os.Exit(1)
			}
		})
		best := sample.Min()
		if name == "sequential" {
			seqTime = best
		}
		check := "ok"
		if d := sparse.VecMaxDiff(out, reference); d > 1e-9 {
			check = fmt.Sprintf("MISMATCH %.2e", d)
		}
		speedup, eff := 0.0, 0.0
		if seqTime > 0 && name != "sequential" {
			speedup = trace.Speedup(seqTime, best)
			eff = trace.Efficiency(seqTime, best, *workers)
		}
		fmt.Printf("%-20s %12v %10.2f %10.2f  %s\n", name, best, speedup, eff, check)
	}

	if *showTrace {
		// A traced solver: one extra solve with per-iteration tracing on.
		tracedOpts := append(opts[:len(opts):len(opts)], doacross.WithTrace())
		s, err := doacross.NewSolver(l, tracedOpts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer s.Close()
		if _, _, err := s.Solve(rhs, nil); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(s.Trace().Summarize())
	}
}
