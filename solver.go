package doacross

import (
	"fmt"

	"doacross/internal/depgraph"
	"doacross/internal/doconsider"
	"doacross/internal/sparse"
	"doacross/internal/trisolve"
)

// Triangular is a sparse triangular matrix in the compressed row form the
// solvers consume (lower or upper, selected by its Lower field).
type Triangular = sparse.Triangular

// ILUPreconditioner is an incomplete-LU preconditioner whose two triangular
// substitutions can be rewired onto doacross solvers with UseDoacrossILU.
type ILUPreconditioner = sparse.ILUPreconditioner

// Solver binds a reusable doacross runtime to one triangular matrix: the
// scratch state, worker pool and (for reordered solvers) the reordering plan
// are built once and reused by every Solve, the access pattern of iterative
// Krylov drivers. A Solver is not safe for concurrent use; Close releases
// its worker pool.
type Solver = trisolve.Solver

// SolverKind identifies one of the triangular-solve executors compared in
// the paper's Table 1.
type SolverKind = trisolve.SolverKind

// Triangular-solve executors.
const (
	// SolverSequential is the ordinary sequential substitution.
	SolverSequential SolverKind = trisolve.Sequential
	// SolverDoacross is the plain preprocessed doacross.
	SolverDoacross SolverKind = trisolve.Doacross
	// SolverReordered is the doacross with doconsider-reordered iterations.
	SolverReordered SolverKind = trisolve.DoacrossReordered
	// SolverLinear is the linear-subscript doacross (no inspector).
	SolverLinear SolverKind = trisolve.LinearSubscript
	// SolverLevelScheduled is the wavefront (level-scheduled) baseline that
	// rebuilds its level sets on every call.
	SolverLevelScheduled SolverKind = trisolve.LevelScheduled
	// SolverWavefront is the preprocessed runtime with its wavefront
	// executor: pre-scheduled level-set execution with the decomposition and
	// static schedule cached across solves. Equivalent to SolverDoacross
	// with WithExecutor(Wavefront).
	SolverWavefront SolverKind = trisolve.DoacrossWavefront
	// SolverWavefrontDynamic is the preprocessed runtime with its dynamic
	// wavefront executor: the same cached level decomposition, with each
	// level self-scheduled so heavy rows inside a wavefront no longer stall
	// the level barrier behind one statically unlucky worker. Equivalent to
	// SolverDoacross with WithExecutor(WavefrontDynamic).
	SolverWavefrontDynamic SolverKind = trisolve.DoacrossWavefrontDynamic
)

// ReorderStrategy selects how the doconsider transformation derives a new
// iteration order from the dependency graph.
type ReorderStrategy = doconsider.Strategy

// Reordering strategies.
const (
	// ReorderNatural keeps the original iteration order.
	ReorderNatural ReorderStrategy = doconsider.Natural
	// ReorderLevel orders iterations by wavefront level.
	ReorderLevel ReorderStrategy = doconsider.Level
	// ReorderLevelInterleaved orders by wavefront, round-robining levels.
	ReorderLevelInterleaved ReorderStrategy = doconsider.LevelInterleaved
	// ReorderCriticalPath schedules critical-path iterations first.
	ReorderCriticalPath ReorderStrategy = doconsider.CriticalPath
)

// DepGraph is the true-dependency graph of a loop, the input to the
// reordering strategies and the dependency-structure analyses.
type DepGraph = depgraph.Graph

// TrisolveLoop returns the doacross Loop description of the substitution on
// t with the given right-hand side: the forward substitution for a lower
// triangular matrix, the backward one (with iteration indices reversed so
// dependencies point forward) for an upper. It is the loop the Solver kinds
// run internally, exposed so callers can Inspect a solve's dependency
// structure or drive Runtime.Run themselves.
func TrisolveLoop(t *Triangular, rhs []float64) (*Loop, error) {
	if t.Lower {
		return trisolve.Loop(t, rhs)
	}
	return trisolve.UpperLoop(t, rhs)
}

// TrisolveGraph builds the true-dependency graph of the triangular solve on
// t (forward substitution for a lower factor, backward for an upper one).
func TrisolveGraph(t *Triangular) *DepGraph {
	if t.Lower {
		return trisolve.Graph(t)
	}
	return trisolve.UpperGraph(t)
}

// NewSolver builds a reusable doacross solver for the triangular matrix t,
// choosing forward or backward substitution from t.Lower. The loop is
// validated once at construction.
func NewSolver(t *Triangular, opts ...Option) (*Solver, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	return trisolve.NewSolver(t, o)
}

// NewReorderedSolver builds a reusable doacross solver whose iterations are
// rearranged once with the given doconsider strategy; every subsequent Solve
// reuses the plan.
func NewReorderedSolver(t *Triangular, strategy ReorderStrategy, opts ...Option) (*Solver, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	return trisolve.NewReorderedSolver(t, strategy, o)
}

// SolveTriangular solves T*y = rhs once with the executor identified by
// kind. For repeated solves on the same matrix build a Solver instead, which
// reuses the runtime across calls.
func SolveTriangular(kind SolverKind, t *Triangular, rhs []float64, opts ...Option) ([]float64, Report, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, Report{}, err
	}
	if t.Lower {
		return trisolve.Solve(kind, t, rhs, o)
	}
	// Backward substitution supports a subset of the executors; asking for
	// one of the others must fail loudly rather than silently running a
	// different algorithm under the requested name.
	switch kind {
	case SolverSequential:
		return trisolve.SolveSequential(t, rhs), Report{Workers: 1, Iterations: t.N, Order: "sequential"}, nil
	case SolverDoacross:
		return trisolve.SolveUpperDoacross(t, rhs, o)
	case SolverReordered:
		return trisolve.SolveUpperDoacrossReordered(t, rhs, doconsider.Level, o)
	case SolverWavefront:
		o.Executor = Wavefront
		return trisolve.SolveUpperDoacross(t, rhs, o)
	case SolverWavefrontDynamic:
		o.Executor = WavefrontDynamic
		return trisolve.SolveUpperDoacross(t, rhs, o)
	default:
		return nil, Report{}, fmt.Errorf("doacross: executor %v is not supported for upper (backward-substitution) factors", kind)
	}
}

// SolveSequential solves T*y = rhs with the ordinary sequential
// substitution, the reference all parallel executors are verified against.
func SolveSequential(t *Triangular, rhs []float64) []float64 {
	return trisolve.SolveSequential(t, rhs)
}

// SolveRenumbered solves T*y = rhs by renumbering the unknowns with the
// doconsider ordering (a symmetric permutation of the matrix and right-hand
// side) and running the doacross in natural order on the renumbered system —
// the "transform the data" alternative to SolverReordered's "transform the
// schedule". Both produce identical results; comparing them isolates whether
// the reordering benefit comes from the iteration order alone.
func SolveRenumbered(t *Triangular, rhs []float64, strategy ReorderStrategy, opts ...Option) ([]float64, Report, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, Report{}, err
	}
	return trisolve.SolveRenumbered(t, rhs, strategy, o)
}

// UseDoacrossILU replaces both triangular substitutions of the ILU
// preconditioner with reusable preprocessed-doacross solvers (forward for L,
// backward for U), so an iterative Krylov solve reuses two persistent worker
// pools across every preconditioner application. It returns a release
// function that retires both pools; call it when the preconditioner is no
// longer needed.
func UseDoacrossILU(p *ILUPreconditioner, opts ...Option) (release func(), err error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	return trisolve.UseDoacrossILU(p, o)
}

// UseDoacrossILUReordered is UseDoacrossILU with each factor's iterations
// rearranged once by the given doconsider strategy.
func UseDoacrossILUReordered(p *ILUPreconditioner, strategy ReorderStrategy, opts ...Option) (release func(), err error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	return trisolve.UseDoacrossILUReordered(p, strategy, o)
}
