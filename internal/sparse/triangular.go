package sparse

import "fmt"

// Triangular is a sparse triangular matrix in CSR layout, specialized for the
// forward/backward substitution loops of Section 3.2 (the paper's Figure 7).
// For a lower triangular matrix, row i stores its strictly-lower entries in
// Col/Val between RowPtr[i] and RowPtr[i+1]; the diagonal is held separately
// in Diag. Upper triangular matrices store strictly-upper entries the same
// way.
type Triangular struct {
	N      int
	Lower  bool // true: lower triangular (forward solve); false: upper
	RowPtr []int
	Col    []int
	Val    []float64
	// Diag holds the diagonal entries; a unit-diagonal factor stores 1s.
	Diag []float64
	// UnitDiag records that the diagonal is implicitly one (no division
	// needed in the solve), which matches the paper's Figure 7 loop.
	UnitDiag bool
}

// LowerTriangle extracts the lower triangle of A (strictly lower + diagonal)
// as a Triangular matrix. Missing diagonal entries are treated as zero.
func LowerTriangle(a *CSR) *Triangular {
	t := &Triangular{N: a.Rows, Lower: true, RowPtr: make([]int, a.Rows+1), Diag: make([]float64, a.Rows)}
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.Col[k]
			switch {
			case j < i:
				t.Col = append(t.Col, j)
				t.Val = append(t.Val, a.Val[k])
			case j == i:
				t.Diag[i] = a.Val[k]
			}
		}
		t.RowPtr[i+1] = len(t.Col)
	}
	return t
}

// UpperTriangle extracts the upper triangle of A (diagonal + strictly upper)
// as a Triangular matrix.
func UpperTriangle(a *CSR) *Triangular {
	t := &Triangular{N: a.Rows, Lower: false, RowPtr: make([]int, a.Rows+1), Diag: make([]float64, a.Rows)}
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.Col[k]
			switch {
			case j > i:
				t.Col = append(t.Col, j)
				t.Val = append(t.Val, a.Val[k])
			case j == i:
				t.Diag[i] = a.Val[k]
			}
		}
		t.RowPtr[i+1] = len(t.Col)
	}
	return t
}

// SetRow replaces row i's off-diagonal entries with the given column/value
// pairs and its diagonal with diag, splicing the CSR arrays in place. The
// columns must be strictly below the diagonal for a lower triangular matrix
// (strictly above for upper), in range, and free of duplicates; diag must be
// non-zero unless the matrix is unit-diagonal (then it is ignored). On error
// the matrix is unchanged. cols and vals are copied, never retained.
//
// SetRow is the mutation half of a dynamic-sparsity update (mesh refinement,
// ILU fill-in): after it, any cached doacross plan for a loop reading this
// matrix is stale for row i — pair it with Solver.UpdateRow (or
// Runtime.RepairPlans directly) to patch the plan instead of rebuilding it.
func (t *Triangular) SetRow(i int, cols []int, vals []float64, diag float64) error {
	if i < 0 || i >= t.N {
		return fmt.Errorf("sparse: SetRow row %d out of range [0, %d)", i, t.N)
	}
	if len(cols) != len(vals) {
		return fmt.Errorf("sparse: SetRow row %d has %d columns for %d values", i, len(cols), len(vals))
	}
	seen := make(map[int]bool, len(cols))
	for _, j := range cols {
		if j < 0 || j >= t.N {
			return fmt.Errorf("sparse: SetRow row %d column %d out of range [0, %d)", i, j, t.N)
		}
		if t.Lower && j >= i {
			return fmt.Errorf("sparse: SetRow lower triangular row %d cannot hold column %d", i, j)
		}
		if !t.Lower && j <= i {
			return fmt.Errorf("sparse: SetRow upper triangular row %d cannot hold column %d", i, j)
		}
		if seen[j] {
			return fmt.Errorf("sparse: SetRow row %d lists column %d twice", i, j)
		}
		seen[j] = true
	}
	if !t.UnitDiag && diag == 0 {
		return fmt.Errorf("sparse: SetRow row %d of a non-unit triangular matrix needs a non-zero diagonal", i)
	}

	lo, hi := t.RowPtr[i], t.RowPtr[i+1]
	old := hi - lo
	delta := len(cols) - old
	switch {
	case delta > 0:
		t.Col = append(t.Col, make([]int, delta)...)
		t.Val = append(t.Val, make([]float64, delta)...)
		copy(t.Col[hi+delta:], t.Col[hi:len(t.Col)-delta])
		copy(t.Val[hi+delta:], t.Val[hi:len(t.Val)-delta])
	case delta < 0:
		copy(t.Col[hi+delta:], t.Col[hi:])
		copy(t.Val[hi+delta:], t.Val[hi:])
		t.Col = t.Col[:len(t.Col)+delta]
		t.Val = t.Val[:len(t.Val)+delta]
	}
	copy(t.Col[lo:lo+len(cols)], cols)
	copy(t.Val[lo:lo+len(vals)], vals)
	if delta != 0 {
		for k := i + 1; k <= t.N; k++ {
			t.RowPtr[k] += delta
		}
	}
	if !t.UnitDiag {
		t.Diag[i] = diag
	}
	return nil
}

// NNZ returns the number of stored off-diagonal nonzeros.
func (t *Triangular) NNZ() int { return len(t.Col) }

// RowNNZ returns the number of off-diagonal nonzeros in row i.
func (t *Triangular) RowNNZ(i int) int { return t.RowPtr[i+1] - t.RowPtr[i] }

// Validate checks structural invariants: off-diagonal entries on the correct
// side of the diagonal and non-zero diagonal unless unit.
func (t *Triangular) Validate() error {
	for i := 0; i < t.N; i++ {
		for k := t.RowPtr[i]; k < t.RowPtr[i+1]; k++ {
			j := t.Col[k]
			if t.Lower && j >= i {
				return fmt.Errorf("sparse: lower triangular row %d has entry in column %d", i, j)
			}
			if !t.Lower && j <= i {
				return fmt.Errorf("sparse: upper triangular row %d has entry in column %d", i, j)
			}
			if j < 0 || j >= t.N {
				return fmt.Errorf("sparse: row %d column %d out of range", i, j)
			}
		}
		if !t.UnitDiag && t.Diag[i] == 0 {
			return fmt.Errorf("sparse: zero diagonal at row %d of non-unit triangular matrix", i)
		}
	}
	return nil
}

// Solve performs the sequential substitution (forward for lower, backward for
// upper): it solves T*y = rhs and returns y. This is the paper's sequential
// baseline (Figure 7) against which the parallel doacross solves are
// compared.
func (t *Triangular) Solve(rhs []float64, y []float64) []float64 {
	if y == nil {
		y = make([]float64, t.N)
	}
	if t.Lower {
		for i := 0; i < t.N; i++ {
			s := rhs[i]
			for k := t.RowPtr[i]; k < t.RowPtr[i+1]; k++ {
				s -= t.Val[k] * y[t.Col[k]]
			}
			if !t.UnitDiag {
				s /= t.Diag[i]
			}
			y[i] = s
		}
	} else {
		for i := t.N - 1; i >= 0; i-- {
			s := rhs[i]
			for k := t.RowPtr[i]; k < t.RowPtr[i+1]; k++ {
				s -= t.Val[k] * y[t.Col[k]]
			}
			if !t.UnitDiag {
				s /= t.Diag[i]
			}
			y[i] = s
		}
	}
	return y
}

// MulVec computes y = T*x including the diagonal, used by tests to verify
// solves by residual.
func (t *Triangular) MulVec(x []float64, y []float64) []float64 {
	if y == nil {
		y = make([]float64, t.N)
	}
	for i := 0; i < t.N; i++ {
		d := t.Diag[i]
		if t.UnitDiag {
			d = 1
		}
		s := d * x[i]
		for k := t.RowPtr[i]; k < t.RowPtr[i+1]; k++ {
			s += t.Val[k] * x[t.Col[k]]
		}
		y[i] = s
	}
	return y
}

// ToCSR converts the triangular matrix (including its diagonal) back to
// general CSR form.
func (t *Triangular) ToCSR() *CSR {
	m := NewCSR(t.N, t.N, t.NNZ()+t.N)
	for i := 0; i < t.N; i++ {
		if t.Lower {
			for k := t.RowPtr[i]; k < t.RowPtr[i+1]; k++ {
				m.Col = append(m.Col, t.Col[k])
				m.Val = append(m.Val, t.Val[k])
			}
			d := t.Diag[i]
			if t.UnitDiag {
				d = 1
			}
			m.Col = append(m.Col, i)
			m.Val = append(m.Val, d)
		} else {
			d := t.Diag[i]
			if t.UnitDiag {
				d = 1
			}
			m.Col = append(m.Col, i)
			m.Val = append(m.Val, d)
			for k := t.RowPtr[i]; k < t.RowPtr[i+1]; k++ {
				m.Col = append(m.Col, t.Col[k])
				m.Val = append(m.Val, t.Val[k])
			}
		}
		m.RowPtr[i+1] = len(m.Col)
	}
	return m
}
