package sparse

import "fmt"

// Triangular is a sparse triangular matrix in CSR layout, specialized for the
// forward/backward substitution loops of Section 3.2 (the paper's Figure 7).
// For a lower triangular matrix, row i stores its strictly-lower entries in
// Col/Val between RowPtr[i] and RowPtr[i+1]; the diagonal is held separately
// in Diag. Upper triangular matrices store strictly-upper entries the same
// way.
type Triangular struct {
	N      int
	Lower  bool // true: lower triangular (forward solve); false: upper
	RowPtr []int
	Col    []int
	Val    []float64
	// Diag holds the diagonal entries; a unit-diagonal factor stores 1s.
	Diag []float64
	// UnitDiag records that the diagonal is implicitly one (no division
	// needed in the solve), which matches the paper's Figure 7 loop.
	UnitDiag bool
}

// LowerTriangle extracts the lower triangle of A (strictly lower + diagonal)
// as a Triangular matrix. Missing diagonal entries are treated as zero.
func LowerTriangle(a *CSR) *Triangular {
	t := &Triangular{N: a.Rows, Lower: true, RowPtr: make([]int, a.Rows+1), Diag: make([]float64, a.Rows)}
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.Col[k]
			switch {
			case j < i:
				t.Col = append(t.Col, j)
				t.Val = append(t.Val, a.Val[k])
			case j == i:
				t.Diag[i] = a.Val[k]
			}
		}
		t.RowPtr[i+1] = len(t.Col)
	}
	return t
}

// UpperTriangle extracts the upper triangle of A (diagonal + strictly upper)
// as a Triangular matrix.
func UpperTriangle(a *CSR) *Triangular {
	t := &Triangular{N: a.Rows, Lower: false, RowPtr: make([]int, a.Rows+1), Diag: make([]float64, a.Rows)}
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.Col[k]
			switch {
			case j > i:
				t.Col = append(t.Col, j)
				t.Val = append(t.Val, a.Val[k])
			case j == i:
				t.Diag[i] = a.Val[k]
			}
		}
		t.RowPtr[i+1] = len(t.Col)
	}
	return t
}

// NNZ returns the number of stored off-diagonal nonzeros.
func (t *Triangular) NNZ() int { return len(t.Col) }

// RowNNZ returns the number of off-diagonal nonzeros in row i.
func (t *Triangular) RowNNZ(i int) int { return t.RowPtr[i+1] - t.RowPtr[i] }

// Validate checks structural invariants: off-diagonal entries on the correct
// side of the diagonal and non-zero diagonal unless unit.
func (t *Triangular) Validate() error {
	for i := 0; i < t.N; i++ {
		for k := t.RowPtr[i]; k < t.RowPtr[i+1]; k++ {
			j := t.Col[k]
			if t.Lower && j >= i {
				return fmt.Errorf("sparse: lower triangular row %d has entry in column %d", i, j)
			}
			if !t.Lower && j <= i {
				return fmt.Errorf("sparse: upper triangular row %d has entry in column %d", i, j)
			}
			if j < 0 || j >= t.N {
				return fmt.Errorf("sparse: row %d column %d out of range", i, j)
			}
		}
		if !t.UnitDiag && t.Diag[i] == 0 {
			return fmt.Errorf("sparse: zero diagonal at row %d of non-unit triangular matrix", i)
		}
	}
	return nil
}

// Solve performs the sequential substitution (forward for lower, backward for
// upper): it solves T*y = rhs and returns y. This is the paper's sequential
// baseline (Figure 7) against which the parallel doacross solves are
// compared.
func (t *Triangular) Solve(rhs []float64, y []float64) []float64 {
	if y == nil {
		y = make([]float64, t.N)
	}
	if t.Lower {
		for i := 0; i < t.N; i++ {
			s := rhs[i]
			for k := t.RowPtr[i]; k < t.RowPtr[i+1]; k++ {
				s -= t.Val[k] * y[t.Col[k]]
			}
			if !t.UnitDiag {
				s /= t.Diag[i]
			}
			y[i] = s
		}
	} else {
		for i := t.N - 1; i >= 0; i-- {
			s := rhs[i]
			for k := t.RowPtr[i]; k < t.RowPtr[i+1]; k++ {
				s -= t.Val[k] * y[t.Col[k]]
			}
			if !t.UnitDiag {
				s /= t.Diag[i]
			}
			y[i] = s
		}
	}
	return y
}

// MulVec computes y = T*x including the diagonal, used by tests to verify
// solves by residual.
func (t *Triangular) MulVec(x []float64, y []float64) []float64 {
	if y == nil {
		y = make([]float64, t.N)
	}
	for i := 0; i < t.N; i++ {
		d := t.Diag[i]
		if t.UnitDiag {
			d = 1
		}
		s := d * x[i]
		for k := t.RowPtr[i]; k < t.RowPtr[i+1]; k++ {
			s += t.Val[k] * x[t.Col[k]]
		}
		y[i] = s
	}
	return y
}

// ToCSR converts the triangular matrix (including its diagonal) back to
// general CSR form.
func (t *Triangular) ToCSR() *CSR {
	m := NewCSR(t.N, t.N, t.NNZ()+t.N)
	for i := 0; i < t.N; i++ {
		if t.Lower {
			for k := t.RowPtr[i]; k < t.RowPtr[i+1]; k++ {
				m.Col = append(m.Col, t.Col[k])
				m.Val = append(m.Val, t.Val[k])
			}
			d := t.Diag[i]
			if t.UnitDiag {
				d = 1
			}
			m.Col = append(m.Col, i)
			m.Val = append(m.Val, d)
		} else {
			d := t.Diag[i]
			if t.UnitDiag {
				d = 1
			}
			m.Col = append(m.Col, i)
			m.Val = append(m.Val, d)
			for k := t.RowPtr[i]; k < t.RowPtr[i+1]; k++ {
				m.Col = append(m.Col, t.Col[k])
				m.Val = append(m.Val, t.Val[k])
			}
		}
		m.RowPtr[i+1] = len(m.Col)
	}
	return m
}
