package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadMatrixMarket parses a sparse matrix in MatrixMarket coordinate format —
// the interchange format real sparse-matrix collections (SuiteSparse, the
// Harwell-Boeing successors) ship in, and the fixture format doastat accepts.
//
// Supported headers: object "matrix", format "coordinate", field "real",
// "integer" or "pattern" (pattern entries get value 1), symmetry "general",
// "symmetric" or "skew-symmetric" (symmetric storage is expanded: each
// off-diagonal entry (i, j) also yields (j, i), negated for skew). Array
// (dense) format and complex fields are rejected. Indices are 1-based in the
// file, 0-based in the returned CSR; duplicate entries sum, as in
// FromTriplets.
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("sparse: reading MatrixMarket header: %w", err)
		}
		return nil, fmt.Errorf("sparse: empty MatrixMarket input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) != 5 || header[0] != "%%matrixmarket" {
		return nil, fmt.Errorf("sparse: malformed MatrixMarket banner %q", sc.Text())
	}
	object, format, field, symmetry := header[1], header[2], header[3], header[4]
	if object != "matrix" {
		return nil, fmt.Errorf("sparse: MatrixMarket object %q not supported (only matrix)", object)
	}
	if format != "coordinate" {
		return nil, fmt.Errorf("sparse: MatrixMarket format %q not supported (only coordinate)", format)
	}
	switch field {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("sparse: MatrixMarket field %q not supported (real, integer or pattern)", field)
	}
	switch symmetry {
	case "general", "symmetric", "skew-symmetric":
	default:
		return nil, fmt.Errorf("sparse: MatrixMarket symmetry %q not supported (general, symmetric or skew-symmetric)", symmetry)
	}

	// Size line: first non-comment, non-blank line after the banner.
	var rows, cols, nnz int
	sized := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 3 {
			return nil, fmt.Errorf("sparse: malformed MatrixMarket size line %q", line)
		}
		var err error
		if rows, err = strconv.Atoi(f[0]); err == nil {
			if cols, err = strconv.Atoi(f[1]); err == nil {
				nnz, err = strconv.Atoi(f[2])
			}
		}
		if err != nil {
			return nil, fmt.Errorf("sparse: malformed MatrixMarket size line %q", line)
		}
		sized = true
		break
	}
	if !sized {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("sparse: reading MatrixMarket size line: %w", err)
		}
		return nil, fmt.Errorf("sparse: MatrixMarket input has no size line")
	}
	if rows < 0 || cols < 0 || nnz < 0 {
		return nil, fmt.Errorf("sparse: negative MatrixMarket dimensions %dx%d nnz=%d", rows, cols, nnz)
	}

	ts := make([]Triplet, 0, nnz)
	read := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		want := 3
		if field == "pattern" {
			want = 2
		}
		if len(f) < want {
			return nil, fmt.Errorf("sparse: malformed MatrixMarket entry %q", line)
		}
		i, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("sparse: malformed MatrixMarket entry %q", line)
		}
		j, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("sparse: malformed MatrixMarket entry %q", line)
		}
		v := 1.0
		if field != "pattern" {
			if v, err = strconv.ParseFloat(f[2], 64); err != nil {
				return nil, fmt.Errorf("sparse: malformed MatrixMarket entry %q", line)
			}
		}
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, fmt.Errorf("sparse: MatrixMarket entry (%d, %d) outside %dx%d matrix", i, j, rows, cols)
		}
		ts = append(ts, Triplet{Row: i - 1, Col: j - 1, Val: v})
		if symmetry != "general" && i != j {
			mv := v
			if symmetry == "skew-symmetric" {
				mv = -v
			}
			ts = append(ts, Triplet{Row: j - 1, Col: i - 1, Val: mv})
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sparse: reading MatrixMarket entries: %w", err)
	}
	if read != nnz {
		return nil, fmt.Errorf("sparse: MatrixMarket input has %d entries, size line promised %d", read, nnz)
	}
	return FromTriplets(rows, cols, ts)
}

// WriteMatrixMarket writes the matrix in MatrixMarket coordinate real general
// format, entries in row-major order with 1-based indices — readable back by
// ReadMatrixMarket, and deterministic for a given matrix.
func WriteMatrixMarket(w io.Writer, m *CSR) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "%%MatrixMarket matrix coordinate real general")
	fmt.Fprintf(bw, "%d %d %d\n", m.Rows, m.Cols, m.NNZ())
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			fmt.Fprintf(bw, "%d %d %.17g\n", i+1, m.Col[k]+1, m.Val[k])
		}
	}
	return bw.Flush()
}
