package sparse

import (
	"math/rand"
	"reflect"
	"testing"
)

func lower3() *Triangular {
	// [2 . .; 1 3 .; . 4 5]
	return &Triangular{
		N:      3,
		Lower:  true,
		RowPtr: []int{0, 0, 1, 2},
		Col:    []int{0, 1},
		Val:    []float64{1, 4},
		Diag:   []float64{2, 3, 5},
	}
}

func TestSetRowGrowShrink(t *testing.T) {
	tr := lower3()
	// Grow row 2 from one off-diagonal to two.
	if err := tr.SetRow(2, []int{0, 1}, []float64{7, 8}, 9); err != nil {
		t.Fatalf("SetRow grow: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("after grow: %v", err)
	}
	if !reflect.DeepEqual(tr.Col, []int{0, 0, 1}) || !reflect.DeepEqual(tr.RowPtr, []int{0, 0, 1, 3}) {
		t.Fatalf("grow splice wrong: Col=%v RowPtr=%v", tr.Col, tr.RowPtr)
	}
	if tr.Val[1] != 7 || tr.Val[2] != 8 || tr.Diag[2] != 9 {
		t.Fatalf("grow values wrong: Val=%v Diag=%v", tr.Val, tr.Diag)
	}
	// Shrink row 1 to empty; row 2's entries must shift down intact.
	if err := tr.SetRow(1, nil, nil, 3); err != nil {
		t.Fatalf("SetRow shrink: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("after shrink: %v", err)
	}
	if !reflect.DeepEqual(tr.Col, []int{0, 1}) || !reflect.DeepEqual(tr.RowPtr, []int{0, 0, 0, 2}) {
		t.Fatalf("shrink splice wrong: Col=%v RowPtr=%v", tr.Col, tr.RowPtr)
	}
	if tr.Val[0] != 7 || tr.Val[1] != 8 {
		t.Fatalf("shrink dropped row 2's values: %v", tr.Val)
	}
}

func TestSetRowRejectsInvalid(t *testing.T) {
	tr := lower3()
	before := &Triangular{
		N: tr.N, Lower: tr.Lower, UnitDiag: tr.UnitDiag,
		RowPtr: append([]int(nil), tr.RowPtr...),
		Col:    append([]int(nil), tr.Col...),
		Val:    append([]float64(nil), tr.Val...),
		Diag:   append([]float64(nil), tr.Diag...),
	}
	cases := []struct {
		name string
		call func() error
	}{
		{"row out of range", func() error { return tr.SetRow(3, nil, nil, 1) }},
		{"negative row", func() error { return tr.SetRow(-1, nil, nil, 1) }},
		{"length mismatch", func() error { return tr.SetRow(2, []int{0}, nil, 1) }},
		{"column out of range", func() error { return tr.SetRow(2, []int{5}, []float64{1}, 1) }},
		{"diagonal column", func() error { return tr.SetRow(2, []int{2}, []float64{1}, 1) }},
		{"upper column in lower", func() error { return tr.SetRow(1, []int{2}, []float64{1}, 1) }},
		{"duplicate column", func() error { return tr.SetRow(2, []int{0, 0}, []float64{1, 2}, 1) }},
		{"zero diagonal", func() error { return tr.SetRow(2, []int{0}, []float64{1}, 0) }},
	}
	for _, c := range cases {
		if err := c.call(); err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
		if !reflect.DeepEqual(tr, before) {
			t.Fatalf("%s: matrix mutated by rejected SetRow", c.name)
		}
	}
}

func TestSetRowUpperAndUnitDiag(t *testing.T) {
	u := &Triangular{
		N:      3,
		Lower:  false,
		RowPtr: []int{0, 1, 2, 2},
		Col:    []int{1, 2},
		Val:    []float64{1, 2},
		Diag:   []float64{1, 1, 1},
	}
	if err := u.SetRow(0, []int{2, 1}, []float64{5, 6}, 7); err != nil {
		t.Fatalf("SetRow upper: %v", err)
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	if u.Diag[0] != 7 {
		t.Fatalf("upper diagonal not updated: %v", u.Diag)
	}
	if err := u.SetRow(2, []int{1}, []float64{1}, 1); err == nil {
		t.Fatal("lower column accepted in upper matrix")
	}
	u.UnitDiag = true
	if err := u.SetRow(0, nil, nil, 0); err != nil {
		t.Fatalf("unit-diagonal SetRow rejected a zero diag: %v", err)
	}
	if u.Diag[0] != 7 {
		t.Fatal("unit-diagonal SetRow overwrote the stored diagonal")
	}
}

// TestSetRowMatchesRebuild splices random row updates and checks the result
// is identical to a matrix rebuilt from scratch with the same rows.
func TestSetRowMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 40
	cols := make([][]int, n)
	vals := make([][]float64, n)
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		diag[i] = 1 + rng.Float64()
		seen := map[int]bool{}
		for k := 0; k < rng.Intn(4) && i > 0; k++ {
			j := rng.Intn(i)
			if !seen[j] {
				seen[j] = true
				cols[i] = append(cols[i], j)
				vals[i] = append(vals[i], rng.NormFloat64())
			}
		}
	}
	build := func() *Triangular {
		tr := &Triangular{N: n, Lower: true, RowPtr: make([]int, n+1), Diag: append([]float64(nil), diag...)}
		for i := 0; i < n; i++ {
			tr.Col = append(tr.Col, cols[i]...)
			tr.Val = append(tr.Val, vals[i]...)
			tr.RowPtr[i+1] = len(tr.Col)
		}
		return tr
	}
	tr := build()
	for step := 0; step < 60; step++ {
		i := 1 + rng.Intn(n-1)
		cols[i], vals[i] = nil, nil
		seen := map[int]bool{}
		for k := 0; k < rng.Intn(5); k++ {
			j := rng.Intn(i)
			if !seen[j] {
				seen[j] = true
				cols[i] = append(cols[i], j)
				vals[i] = append(vals[i], rng.NormFloat64())
			}
		}
		diag[i] = 1 + rng.Float64()
		if err := tr.SetRow(i, cols[i], vals[i], diag[i]); err != nil {
			t.Fatalf("step %d: SetRow: %v", step, err)
		}
		want := build()
		if !reflect.DeepEqual(tr.RowPtr, want.RowPtr) || !reflect.DeepEqual(tr.Col, want.Col) ||
			!reflect.DeepEqual(tr.Val, want.Val) || !reflect.DeepEqual(tr.Diag, want.Diag) {
			t.Fatalf("step %d: spliced matrix diverges from rebuild", step)
		}
	}
}
