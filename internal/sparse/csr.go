// Package sparse is the sparse linear-algebra substrate used by the paper's
// Section 3.2 experiments: compressed sparse row matrices, sparse
// matrix-vector products, incomplete LU factorization, and sequential
// triangular solves that serve as the baseline for the parallel (preprocessed
// doacross) solves in package trisolve.
package sparse

import (
	"fmt"
	"math"
	"sort"
)

// CSR is a sparse matrix in compressed sparse row format: row i's nonzeros
// occupy positions RowPtr[i] .. RowPtr[i+1)-1 of Col and Val, with column
// indices in strictly increasing order within each row.
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	Col        []int
	Val        []float64
}

// Triplet is a single (row, col, value) matrix entry used when assembling a
// matrix from unordered contributions.
type Triplet struct {
	Row, Col int
	Val      float64
}

// NewCSR allocates an empty matrix of the given shape with capacity for nnz
// nonzeros.
func NewCSR(rows, cols, nnz int) *CSR {
	return &CSR{
		Rows:   rows,
		Cols:   cols,
		RowPtr: make([]int, rows+1),
		Col:    make([]int, 0, nnz),
		Val:    make([]float64, 0, nnz),
	}
}

// FromTriplets assembles a CSR matrix from triplets. Duplicate entries for
// the same (row, col) position are summed. Entries are sorted by row and then
// column.
func FromTriplets(rows, cols int, ts []Triplet) (*CSR, error) {
	for _, t := range ts {
		if t.Row < 0 || t.Row >= rows || t.Col < 0 || t.Col >= cols {
			return nil, fmt.Errorf("sparse: triplet (%d,%d) outside %dx%d matrix", t.Row, t.Col, rows, cols)
		}
	}
	sorted := make([]Triplet, len(ts))
	copy(sorted, ts)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].Row != sorted[b].Row {
			return sorted[a].Row < sorted[b].Row
		}
		return sorted[a].Col < sorted[b].Col
	})
	m := NewCSR(rows, cols, len(sorted))
	row := 0
	for k := 0; k < len(sorted); {
		t := sorted[k]
		v := t.Val
		k++
		for k < len(sorted) && sorted[k].Row == t.Row && sorted[k].Col == t.Col {
			v += sorted[k].Val
			k++
		}
		for row < t.Row {
			row++
			m.RowPtr[row] = len(m.Col)
		}
		m.Col = append(m.Col, t.Col)
		m.Val = append(m.Val, v)
	}
	for row < rows {
		row++
		m.RowPtr[row] = len(m.Col)
	}
	return m, nil
}

// FromDense converts a dense row-major matrix to CSR, dropping exact zeros.
func FromDense(d [][]float64) *CSR {
	rows := len(d)
	cols := 0
	if rows > 0 {
		cols = len(d[0])
	}
	m := NewCSR(rows, cols, 0)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if d[i][j] != 0 {
				m.Col = append(m.Col, j)
				m.Val = append(m.Val, d[i][j])
			}
		}
		m.RowPtr[i+1] = len(m.Col)
	}
	return m
}

// ToDense converts the matrix to a dense row-major representation (intended
// for tests and small examples).
func (m *CSR) ToDense() [][]float64 {
	d := make([][]float64, m.Rows)
	for i := range d {
		d[i] = make([]float64, m.Cols)
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			d[i][m.Col[k]] = m.Val[k]
		}
	}
	return d
}

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.Col) }

// RowNNZ returns the number of stored nonzeros in row i.
func (m *CSR) RowNNZ(i int) int { return m.RowPtr[i+1] - m.RowPtr[i] }

// At returns the value at (i, j), or 0 if the position is not stored.
func (m *CSR) At(i, j int) float64 {
	for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
		if m.Col[k] == j {
			return m.Val[k]
		}
		if m.Col[k] > j {
			break
		}
	}
	return 0
}

// Clone returns a deep copy of the matrix.
func (m *CSR) Clone() *CSR {
	c := &CSR{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: append([]int(nil), m.RowPtr...),
		Col:    append([]int(nil), m.Col...),
		Val:    append([]float64(nil), m.Val...),
	}
	return c
}

// MulVec computes y = A*x. The destination slice is allocated when nil.
func (m *CSR) MulVec(x []float64, y []float64) []float64 {
	if y == nil {
		y = make([]float64, m.Rows)
	}
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Val[k] * x[m.Col[k]]
		}
		y[i] = s
	}
	return y
}

// Transpose returns the transposed matrix in CSR form.
func (m *CSR) Transpose() *CSR {
	t := NewCSR(m.Cols, m.Rows, m.NNZ())
	counts := make([]int, m.Cols+1)
	for _, c := range m.Col {
		counts[c+1]++
	}
	for j := 0; j < m.Cols; j++ {
		counts[j+1] += counts[j]
	}
	t.RowPtr = counts
	t.Col = make([]int, m.NNZ())
	t.Val = make([]float64, m.NNZ())
	next := append([]int(nil), t.RowPtr...)
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.Col[k]
			p := next[j]
			t.Col[p] = i
			t.Val[p] = m.Val[k]
			next[j]++
		}
	}
	return t
}

// Stats summarizes a sparse matrix for reporting.
type Stats struct {
	Rows, Cols int
	NNZ        int
	MeanRowNNZ float64
	MaxRowNNZ  int
	Bandwidth  int // max |i - j| over stored entries
	Symmetric  bool
}

// Analyze computes summary statistics.
func (m *CSR) Analyze() Stats {
	st := Stats{Rows: m.Rows, Cols: m.Cols, NNZ: m.NNZ()}
	for i := 0; i < m.Rows; i++ {
		n := m.RowNNZ(i)
		if n > st.MaxRowNNZ {
			st.MaxRowNNZ = n
		}
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if d := abs(i - m.Col[k]); d > st.Bandwidth {
				st.Bandwidth = d
			}
		}
	}
	if m.Rows > 0 {
		st.MeanRowNNZ = float64(st.NNZ) / float64(m.Rows)
	}
	st.Symmetric = m.IsStructurallySymmetric()
	return st
}

// IsStructurallySymmetric reports whether the sparsity pattern is symmetric
// (entry (i,j) stored whenever (j,i) is). Values are not compared.
func (m *CSR) IsStructurallySymmetric() bool {
	if m.Rows != m.Cols {
		return false
	}
	t := m.Transpose()
	for i := 0; i <= m.Rows; i++ {
		if m.RowPtr[i] != t.RowPtr[i] {
			return false
		}
	}
	for k := range m.Col {
		if m.Col[k] != t.Col[k] {
			return false
		}
	}
	return true
}

// String renders the statistics compactly.
func (s Stats) String() string {
	return fmt.Sprintf("%dx%d nnz=%d meanRow=%.2f maxRow=%d bw=%d sym=%v",
		s.Rows, s.Cols, s.NNZ, s.MeanRowNNZ, s.MaxRowNNZ, s.Bandwidth, s.Symmetric)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// VecNorm2 returns the Euclidean norm of x.
func VecNorm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// VecDot returns the dot product of x and y.
func VecDot(x, y []float64) float64 {
	s := 0.0
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// VecAXPY computes y += alpha*x in place.
func VecAXPY(alpha float64, x, y []float64) {
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// VecMaxDiff returns the maximum absolute componentwise difference between x
// and y.
func VecMaxDiff(x, y []float64) float64 {
	d := 0.0
	for i := range x {
		if v := math.Abs(x[i] - y[i]); v > d {
			d = v
		}
	}
	return d
}
