package sparse

import "fmt"

// Permutation represents a renumbering of the unknowns of a linear system:
// NewIndex[old] is the new index of old unknown `old`, and OldIndex[new] is
// its inverse. The doconsider transformation can either reorder the execution
// of the solve loop (core.Options.Order) or, equivalently, renumber the
// matrix itself with a Permutation and run the loop in natural order; package
// doconsider produces the orderings, this type applies them to matrices and
// vectors.
type Permutation struct {
	NewIndex []int
	OldIndex []int
}

// NewPermutationFromOrder builds a Permutation from an execution order as
// produced by doconsider.Order: order[k] is the old index executed at
// position k, so the old unknown order[k] receives new index k.
func NewPermutationFromOrder(order []int) (*Permutation, error) {
	n := len(order)
	p := &Permutation{NewIndex: make([]int, n), OldIndex: make([]int, n)}
	seen := make([]bool, n)
	for newIdx, old := range order {
		if old < 0 || old >= n {
			return nil, fmt.Errorf("sparse: order entry %d out of range [0,%d)", old, n)
		}
		if seen[old] {
			return nil, fmt.Errorf("sparse: order repeats index %d", old)
		}
		seen[old] = true
		p.OldIndex[newIdx] = old
		p.NewIndex[old] = newIdx
	}
	return p, nil
}

// Identity returns the identity permutation of size n.
func Identity(n int) *Permutation {
	p := &Permutation{NewIndex: make([]int, n), OldIndex: make([]int, n)}
	for i := 0; i < n; i++ {
		p.NewIndex[i] = i
		p.OldIndex[i] = i
	}
	return p
}

// Len returns the number of unknowns covered by the permutation.
func (p *Permutation) Len() int { return len(p.NewIndex) }

// PermuteVector returns the vector renumbered into the new ordering:
// out[new] = x[old].
func (p *Permutation) PermuteVector(x []float64) []float64 {
	out := make([]float64, len(x))
	for newIdx, old := range p.OldIndex {
		out[newIdx] = x[old]
	}
	return out
}

// UnpermuteVector maps a vector in the new ordering back to the original
// ordering: out[old] = x[new].
func (p *Permutation) UnpermuteVector(x []float64) []float64 {
	out := make([]float64, len(x))
	for newIdx, old := range p.OldIndex {
		out[old] = x[newIdx]
	}
	return out
}

// PermuteSymmetric returns P*A*P', the matrix with both rows and columns
// renumbered, so that solving the permuted system with a permuted right-hand
// side yields the permuted solution.
func (p *Permutation) PermuteSymmetric(a *CSR) (*CSR, error) {
	if a.Rows != a.Cols || a.Rows != p.Len() {
		return nil, fmt.Errorf("sparse: permutation of size %d cannot renumber %dx%d matrix", p.Len(), a.Rows, a.Cols)
	}
	ts := make([]Triplet, 0, a.NNZ())
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			ts = append(ts, Triplet{
				Row: p.NewIndex[i],
				Col: p.NewIndex[a.Col[k]],
				Val: a.Val[k],
			})
		}
	}
	return FromTriplets(a.Rows, a.Cols, ts)
}

// PermuteTriangular renumbers a triangular matrix with a permutation that is
// consistent with its dependency order (i.e. a topological order of its
// solve graph, such as a doconsider ordering): the result is again triangular
// of the same kind. It fails if the permutation would move an entry to the
// wrong side of the diagonal.
func (p *Permutation) PermuteTriangular(t *Triangular) (*Triangular, error) {
	if t.N != p.Len() {
		return nil, fmt.Errorf("sparse: permutation of size %d cannot renumber %d-row triangular matrix", p.Len(), t.N)
	}
	full := t.ToCSR()
	permuted, err := p.PermuteSymmetric(full)
	if err != nil {
		return nil, err
	}
	var out *Triangular
	if t.Lower {
		out = LowerTriangle(permuted)
	} else {
		out = UpperTriangle(permuted)
	}
	out.UnitDiag = t.UnitDiag
	if t.UnitDiag {
		for i := range out.Diag {
			out.Diag[i] = 1
		}
	}
	// Count check: if any entry landed on the wrong side of the diagonal it
	// was silently dropped by the triangle extraction; reject that.
	if out.NNZ() != t.NNZ() {
		return nil, fmt.Errorf("sparse: permutation is not a topological renumbering of the triangular matrix (%d of %d off-diagonal entries preserved)", out.NNZ(), t.NNZ())
	}
	return out, nil
}
