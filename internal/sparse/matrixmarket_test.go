package sparse

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestMatrixMarketRoundTrip writes a matrix and reads it back, entry for
// entry, then re-writes the result and demands identical bytes (the writer's
// determinism).
func TestMatrixMarketRoundTrip(t *testing.T) {
	m, err := FromTriplets(3, 4, []Triplet{
		{Row: 0, Col: 0, Val: 1.5},
		{Row: 0, Col: 3, Val: -2.25},
		{Row: 1, Col: 1, Val: 1e-17},
		{Row: 2, Col: 0, Val: math.Pi},
		{Row: 2, Col: 2, Val: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrixMarket(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	equalCSR(t, m, got)

	var again bytes.Buffer
	if err := WriteMatrixMarket(&again, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("re-writing the read-back matrix changed the bytes")
	}
}

func equalCSR(t *testing.T, want, got *CSR) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols || got.NNZ() != want.NNZ() {
		t.Fatalf("shape %dx%d nnz=%d, want %dx%d nnz=%d", got.Rows, got.Cols, got.NNZ(), want.Rows, want.Cols, want.NNZ())
	}
	for i := 0; i < want.Rows; i++ {
		if got.RowPtr[i+1]-got.RowPtr[i] != want.RowPtr[i+1]-want.RowPtr[i] {
			t.Fatalf("row %d has %d entries, want %d", i, got.RowPtr[i+1]-got.RowPtr[i], want.RowPtr[i+1]-want.RowPtr[i])
		}
		for k := want.RowPtr[i]; k < want.RowPtr[i+1]; k++ {
			dk := got.RowPtr[i] - want.RowPtr[i]
			if got.Col[k+dk] != want.Col[k] || got.Val[k+dk] != want.Val[k] {
				t.Errorf("row %d entry %d: (%d, %g), want (%d, %g)", i, k-want.RowPtr[i], got.Col[k+dk], got.Val[k+dk], want.Col[k], want.Val[k])
			}
		}
	}
}

// TestMatrixMarketVariants covers the header dialects: pattern entries get
// value 1, symmetric storage expands off-diagonal entries, skew-symmetric
// expansion negates them, comments and blank lines are skipped, and the
// banner is case-insensitive.
func TestMatrixMarketVariants(t *testing.T) {
	at := func(m *CSR, i, j int) float64 {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if m.Col[k] == j {
				return m.Val[k]
			}
		}
		return 0
	}

	t.Run("pattern", func(t *testing.T) {
		m, err := ReadMatrixMarket(strings.NewReader(
			"%%MatrixMarket matrix coordinate pattern general\n2 2 3\n1 1\n2 1\n2 2\n"))
		if err != nil {
			t.Fatal(err)
		}
		if m.NNZ() != 3 || at(m, 1, 0) != 1 {
			t.Errorf("pattern entries not read as ones: nnz=%d a(1,0)=%g", m.NNZ(), at(m, 1, 0))
		}
	})
	t.Run("symmetric", func(t *testing.T) {
		m, err := ReadMatrixMarket(strings.NewReader(
			"%%matrixmarket MATRIX coordinate real SYMMETRIC\n% lower storage\n\n3 3 3\n1 1 2.0\n3 1 5.0\n3 3 1.0\n"))
		if err != nil {
			t.Fatal(err)
		}
		if m.NNZ() != 4 {
			t.Fatalf("symmetric expansion gave %d entries, want 4", m.NNZ())
		}
		if at(m, 0, 2) != 5 || at(m, 2, 0) != 5 {
			t.Errorf("mirrored entry wrong: a(0,2)=%g a(2,0)=%g", at(m, 0, 2), at(m, 2, 0))
		}
	})
	t.Run("skew-symmetric", func(t *testing.T) {
		m, err := ReadMatrixMarket(strings.NewReader(
			"%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 3.0\n"))
		if err != nil {
			t.Fatal(err)
		}
		if at(m, 1, 0) != 3 || at(m, 0, 1) != -3 {
			t.Errorf("skew mirror wrong: a(1,0)=%g a(0,1)=%g", at(m, 1, 0), at(m, 0, 1))
		}
	})
	t.Run("integer", func(t *testing.T) {
		m, err := ReadMatrixMarket(strings.NewReader(
			"%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 7\n"))
		if err != nil {
			t.Fatal(err)
		}
		if at(m, 0, 0) != 7 {
			t.Errorf("integer entry read as %g, want 7", at(m, 0, 0))
		}
	})
	t.Run("duplicates-sum", func(t *testing.T) {
		m, err := ReadMatrixMarket(strings.NewReader(
			"%%MatrixMarket matrix coordinate real general\n1 1 2\n1 1 2.0\n1 1 3.0\n"))
		if err != nil {
			t.Fatal(err)
		}
		if at(m, 0, 0) != 5 {
			t.Errorf("duplicate entries summed to %g, want 5", at(m, 0, 0))
		}
	})
}

// TestMatrixMarketRejects pins the reader's error paths.
func TestMatrixMarketRejects(t *testing.T) {
	for name, input := range map[string]string{
		"empty":             "",
		"bad-banner":        "%MatrixMarket matrix coordinate real general\n1 1 0\n",
		"short-banner":      "%%MatrixMarket matrix coordinate\n1 1 0\n",
		"vector-object":     "%%MatrixMarket vector coordinate real general\n1 1 0\n",
		"array-format":      "%%MatrixMarket matrix array real general\n1 1\n1.0\n",
		"complex-field":     "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1.0 0.0\n",
		"hermitian":         "%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1.0\n",
		"no-size":           "%%MatrixMarket matrix coordinate real general\n% only comments\n",
		"bad-size":          "%%MatrixMarket matrix coordinate real general\n1 1\n",
		"bad-entry":         "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 x 1.0\n",
		"short-entry":       "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1\n",
		"out-of-range":      "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n",
		"zero-index":        "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n",
		"entry-count-short": "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n",
		"entry-count-long":  "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 1.0\n1 1 2.0\n",
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadMatrixMarket(strings.NewReader(input)); err == nil {
				t.Errorf("accepted %q", input)
			}
		})
	}
}
