package sparse

import (
	"math"
	"testing"
)

// laplace1D builds the tridiagonal 1-D Laplacian of size n.
func laplace1D(n int) *CSR {
	var ts []Triplet
	for i := 0; i < n; i++ {
		ts = append(ts, Triplet{i, i, 2})
		if i > 0 {
			ts = append(ts, Triplet{i, i - 1, -1})
		}
		if i < n-1 {
			ts = append(ts, Triplet{i, i + 1, -1})
		}
	}
	m, _ := FromTriplets(n, n, ts)
	return m
}

func TestILU0TridiagonalIsExact(t *testing.T) {
	// For a tridiagonal matrix, ILU(0) has no dropped fill, so L*U == A.
	a := laplace1D(20)
	l, u, err := ILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	if !l.UnitDiag {
		t.Error("L should be unit diagonal")
	}
	lc := l.ToCSR()
	uc := u.ToCSR()
	// Compare L*U with A entrywise on A's pattern (exact here).
	x := make([]float64, a.Rows)
	for trial := 0; trial < 3; trial++ {
		for i := range x {
			x[i] = float64((i*7+trial*13)%5) - 2
		}
		ax := a.MulVec(x, nil)
		lux := lc.MulVec(uc.MulVec(x, nil), nil)
		if VecMaxDiff(ax, lux) > 1e-10 {
			t.Fatalf("L*U != A for tridiagonal: diff %v", VecMaxDiff(ax, lux))
		}
	}
}

func TestILU0SolvePreconditioner(t *testing.T) {
	a := laplace1D(50)
	p, err := NewILUPreconditioner(a)
	if err != nil {
		t.Fatal(err)
	}
	r := make([]float64, 50)
	for i := range r {
		r[i] = 1
	}
	z := p.Apply(r, nil)
	// For the tridiagonal case ILU is exact, so A*z == r.
	az := a.MulVec(z, nil)
	if VecMaxDiff(az, r) > 1e-8 {
		t.Fatalf("preconditioner not exact for tridiagonal: max diff %v", VecMaxDiff(az, r))
	}
}

func TestILU0CustomSolvers(t *testing.T) {
	a := laplace1D(10)
	p, err := NewILUPreconditioner(a)
	if err != nil {
		t.Fatal(err)
	}
	lowerCalled, upperCalled := false, false
	p.SolveLower = func(tr *Triangular, rhs, y []float64) []float64 {
		lowerCalled = true
		return tr.Solve(rhs, y)
	}
	p.SolveUpper = func(tr *Triangular, rhs, y []float64) []float64 {
		upperCalled = true
		return tr.Solve(rhs, y)
	}
	r := make([]float64, 10)
	r[0] = 1
	p.Apply(r, nil)
	if !lowerCalled || !upperCalled {
		t.Error("custom solvers not invoked")
	}
}

func TestILU0Errors(t *testing.T) {
	rect, _ := FromTriplets(2, 3, []Triplet{{0, 0, 1}})
	if _, _, err := ILU0(rect); err == nil {
		t.Error("non-square matrix accepted")
	}
	noDiag, _ := FromTriplets(2, 2, []Triplet{{0, 1, 1}, {1, 0, 1}})
	if _, _, err := ILU0(noDiag); err == nil {
		t.Error("missing diagonal accepted")
	}
	zeroPivot, _ := FromTriplets(2, 2, []Triplet{{0, 0, 0}, {0, 1, 1}, {1, 0, 1}, {1, 1, 1}})
	if _, _, err := ILU0(zeroPivot); err == nil {
		t.Error("zero pivot accepted")
	}
}

func TestILU0DoesNotModifyInput(t *testing.T) {
	a := laplace1D(8)
	before := append([]float64(nil), a.Val...)
	if _, _, err := ILU0(a); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if math.Abs(before[i]-a.Val[i]) > 0 {
			t.Fatal("ILU0 modified its input matrix")
		}
	}
}

func TestILU0PreconditionerReducesResidual(t *testing.T) {
	// For a 2-D-like pattern ILU(0) is not exact, but applying it to the
	// residual should shrink the error substantially compared with doing
	// nothing (sanity check on factor quality).
	n := 16
	var ts []Triplet
	// 2-D 4x4 grid 5-point Laplacian.
	idx := func(i, j int) int { return i*4 + j }
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			r := idx(i, j)
			ts = append(ts, Triplet{r, r, 4})
			if i > 0 {
				ts = append(ts, Triplet{r, idx(i-1, j), -1})
			}
			if i < 3 {
				ts = append(ts, Triplet{r, idx(i+1, j), -1})
			}
			if j > 0 {
				ts = append(ts, Triplet{r, idx(i, j-1), -1})
			}
			if j < 3 {
				ts = append(ts, Triplet{r, idx(i, j+1), -1})
			}
		}
	}
	a, _ := FromTriplets(n, n, ts)
	p, err := NewILUPreconditioner(a)
	if err != nil {
		t.Fatal(err)
	}
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = float64(i%3) - 1
	}
	b := a.MulVec(xTrue, nil)
	z := p.Apply(b, nil)
	// ||x_true - M^{-1} b|| should be much smaller than ||x_true||.
	diff := make([]float64, n)
	for i := range diff {
		diff[i] = xTrue[i] - z[i]
	}
	if VecNorm2(diff) > 0.5*VecNorm2(xTrue) {
		t.Fatalf("ILU(0) preconditioner too inaccurate: err %v vs %v", VecNorm2(diff), VecNorm2(xTrue))
	}
}
