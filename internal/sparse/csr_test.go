package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromTripletsBasic(t *testing.T) {
	m, err := FromTriplets(3, 3, []Triplet{
		{0, 0, 2}, {0, 2, 1}, {1, 1, 3}, {2, 0, -1}, {2, 2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 5 {
		t.Fatalf("nnz = %d, want 5", m.NNZ())
	}
	if m.At(0, 0) != 2 || m.At(0, 2) != 1 || m.At(1, 1) != 3 || m.At(2, 0) != -1 || m.At(2, 2) != 4 {
		t.Fatalf("dense = %v", m.ToDense())
	}
	if m.At(0, 1) != 0 || m.At(1, 0) != 0 {
		t.Error("missing entries should read as zero")
	}
}

func TestFromTripletsSumsDuplicates(t *testing.T) {
	m, err := FromTriplets(2, 2, []Triplet{{0, 0, 1}, {0, 0, 2.5}, {1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 2 {
		t.Fatalf("nnz = %d, want 2 (duplicates summed)", m.NNZ())
	}
	if m.At(0, 0) != 3.5 {
		t.Fatalf("At(0,0) = %v, want 3.5", m.At(0, 0))
	}
}

func TestFromTripletsRejectsOutOfRange(t *testing.T) {
	if _, err := FromTriplets(2, 2, []Triplet{{2, 0, 1}}); err == nil {
		t.Error("row out of range not rejected")
	}
	if _, err := FromTriplets(2, 2, []Triplet{{0, -1, 1}}); err == nil {
		t.Error("negative column not rejected")
	}
}

func TestFromTripletsEmptyRows(t *testing.T) {
	m, err := FromTriplets(4, 4, []Triplet{{3, 3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if m.RowNNZ(i) != 0 {
			t.Fatalf("row %d nnz = %d, want 0", i, m.RowNNZ(i))
		}
	}
	if m.RowNNZ(3) != 1 {
		t.Fatal("row 3 should have one entry")
	}
}

func TestFromDenseToDenseRoundTrip(t *testing.T) {
	d := [][]float64{{1, 0, 2}, {0, 0, 0}, {3, 4, 0}}
	m := FromDense(d)
	if m.NNZ() != 4 {
		t.Fatalf("nnz = %d, want 4", m.NNZ())
	}
	back := m.ToDense()
	for i := range d {
		for j := range d[i] {
			if d[i][j] != back[i][j] {
				t.Fatalf("round trip mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	m := FromDense([][]float64{{1, 2}, {3, 4}})
	y := m.MulVec([]float64{1, 1}, nil)
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("MulVec = %v, want [3 7]", y)
	}
	// Reuse destination.
	y2 := make([]float64, 2)
	m.MulVec([]float64{2, 0}, y2)
	if y2[0] != 2 || y2[1] != 6 {
		t.Fatalf("MulVec reuse = %v, want [2 6]", y2)
	}
}

func TestTranspose(t *testing.T) {
	m := FromDense([][]float64{{1, 2, 0}, {0, 3, 4}})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose shape %dx%d, want 3x2", tr.Rows, tr.Cols)
	}
	want := [][]float64{{1, 0}, {2, 3}, {0, 4}}
	got := tr.ToDense()
	for i := range want {
		for j := range want[i] {
			if want[i][j] != got[i][j] {
				t.Fatalf("transpose mismatch at (%d,%d): %v vs %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	// Property: transposing twice returns the original matrix.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 3+rng.Intn(6), 3+rng.Intn(6)
		var ts []Triplet
		for k := 0; k < rows*cols/3; k++ {
			ts = append(ts, Triplet{rng.Intn(rows), rng.Intn(cols), rng.NormFloat64()})
		}
		m, err := FromTriplets(rows, cols, ts)
		if err != nil {
			return false
		}
		tt := m.Transpose().Transpose()
		if tt.Rows != m.Rows || tt.Cols != m.Cols || tt.NNZ() != m.NNZ() {
			return false
		}
		for i := 0; i < m.Rows; i++ {
			for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
				if math.Abs(tt.At(i, m.Col[k])-m.Val[k]) > 1e-15 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := FromDense([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Val[0] = 99
	if m.Val[0] == 99 {
		t.Error("Clone shares value storage with original")
	}
}

func TestAnalyzeStats(t *testing.T) {
	m := FromDense([][]float64{
		{2, -1, 0},
		{-1, 2, -1},
		{0, -1, 2},
	})
	st := m.Analyze()
	if st.NNZ != 7 || st.MaxRowNNZ != 3 || st.Bandwidth != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if !st.Symmetric {
		t.Error("tridiagonal pattern should be symmetric")
	}
	if st.String() == "" {
		t.Error("empty Stats.String")
	}

	asym := FromDense([][]float64{{1, 1}, {0, 1}})
	if asym.Analyze().Symmetric {
		t.Error("asymmetric pattern reported symmetric")
	}
	rect := FromDense([][]float64{{1, 2, 3}})
	if rect.IsStructurallySymmetric() {
		t.Error("rectangular matrix cannot be symmetric")
	}
}

func TestVecHelpers(t *testing.T) {
	x := []float64{3, 4}
	if VecNorm2(x) != 5 {
		t.Errorf("VecNorm2 = %v, want 5", VecNorm2(x))
	}
	if VecDot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Error("VecDot wrong")
	}
	y := []float64{1, 1}
	VecAXPY(2, []float64{1, 2}, y)
	if y[0] != 3 || y[1] != 5 {
		t.Errorf("VecAXPY = %v", y)
	}
	if VecMaxDiff([]float64{1, 2}, []float64{1, 4}) != 2 {
		t.Error("VecMaxDiff wrong")
	}
}

func TestLowerUpperTriangleExtraction(t *testing.T) {
	a := FromDense([][]float64{
		{4, -1, 0},
		{-2, 5, -1},
		{1, -3, 6},
	})
	l := LowerTriangle(a)
	u := UpperTriangle(a)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.NNZ() != 3 {
		t.Fatalf("lower nnz = %d, want 3", l.NNZ())
	}
	if u.NNZ() != 2 {
		t.Fatalf("upper nnz = %d, want 2", u.NNZ())
	}
	if l.Diag[0] != 4 || u.Diag[2] != 6 {
		t.Error("diagonal extraction wrong")
	}
	// ToCSR of lower triangle reproduces lower part including diagonal.
	lc := l.ToCSR()
	if lc.At(1, 0) != -2 || lc.At(1, 1) != 5 || lc.At(0, 1) != 0 {
		t.Errorf("lower ToCSR dense = %v", lc.ToDense())
	}
	uc := u.ToCSR()
	if uc.At(0, 1) != -1 || uc.At(1, 0) != 0 || uc.At(2, 2) != 6 {
		t.Errorf("upper ToCSR dense = %v", uc.ToDense())
	}
}

func TestTriangularValidateErrors(t *testing.T) {
	bad := &Triangular{N: 2, Lower: true, RowPtr: []int{0, 0, 1}, Col: []int{1}, Val: []float64{1}, Diag: []float64{1, 1}}
	if err := bad.Validate(); err == nil {
		t.Error("upper entry in lower triangular not detected")
	}
	badU := &Triangular{N: 2, Lower: false, RowPtr: []int{0, 1, 1}, Col: []int{0}, Val: []float64{1}, Diag: []float64{1, 1}}
	if err := badU.Validate(); err == nil {
		t.Error("lower entry in upper triangular not detected")
	}
	zeroDiag := &Triangular{N: 1, Lower: true, RowPtr: []int{0, 0}, Diag: []float64{0}}
	if err := zeroDiag.Validate(); err == nil {
		t.Error("zero diagonal not detected")
	}
	zeroDiag.UnitDiag = true
	if err := zeroDiag.Validate(); err != nil {
		t.Error("unit diagonal should not require stored diagonal")
	}
}

func TestTriangularSolveLower(t *testing.T) {
	a := FromDense([][]float64{
		{2, 0, 0},
		{-1, 3, 0},
		{4, -2, 5},
	})
	l := LowerTriangle(a)
	rhs := []float64{2, 2, 7}
	y := l.Solve(rhs, nil)
	// Verify by multiplying back.
	back := l.MulVec(y, nil)
	if VecMaxDiff(back, rhs) > 1e-12 {
		t.Fatalf("forward solve residual too large: y=%v back=%v", y, back)
	}
}

func TestTriangularSolveUpper(t *testing.T) {
	a := FromDense([][]float64{
		{2, 1, -1},
		{0, 3, 2},
		{0, 0, 4},
	})
	u := UpperTriangle(a)
	rhs := []float64{1, 2, 3}
	y := u.Solve(rhs, nil)
	back := u.MulVec(y, nil)
	if VecMaxDiff(back, rhs) > 1e-12 {
		t.Fatalf("backward solve residual too large: y=%v back=%v", y, back)
	}
}

func TestTriangularSolveUnitDiag(t *testing.T) {
	l := &Triangular{
		N: 3, Lower: true, UnitDiag: true,
		RowPtr: []int{0, 0, 1, 3},
		Col:    []int{0, 0, 1},
		Val:    []float64{0.5, 0.25, -1},
		Diag:   []float64{1, 1, 1},
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	rhs := []float64{2, 3, 1}
	y := l.Solve(rhs, nil)
	want := []float64{2, 3 - 0.5*2, 1 - 0.25*2 + 1*2}
	if VecMaxDiff(y, want) > 1e-12 {
		t.Fatalf("unit diag solve = %v, want %v", y, want)
	}
}

func TestSolveRandomLowerTriangularProperty(t *testing.T) {
	// Property: for random well-conditioned lower triangular systems,
	// Solve(MulVec(x)) recovers x.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		var ts []Triplet
		for i := 0; i < n; i++ {
			ts = append(ts, Triplet{i, i, 2 + rng.Float64()})
			for k := 0; k < rng.Intn(3) && i > 0; k++ {
				ts = append(ts, Triplet{i, rng.Intn(i), rng.NormFloat64() * 0.3})
			}
		}
		a, err := FromTriplets(n, n, ts)
		if err != nil {
			return false
		}
		l := LowerTriangle(a)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		rhs := l.MulVec(x, nil)
		got := l.Solve(rhs, nil)
		return VecMaxDiff(got, x) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
