package sparse

import "fmt"

// ILU0 computes the incomplete LU factorization with zero fill-in of A: the
// factors L (unit lower triangular) and U (upper triangular) have exactly the
// sparsity pattern of the lower and upper triangles of A. The triangular
// systems the paper solves in Section 3.2 come from exactly this kind of
// incomplete factorization of discretized PDE operators.
//
// The factorization follows the standard IKJ formulation restricted to the
// pattern of A. It fails if a zero pivot is encountered.
func ILU0(a *CSR) (l, u *Triangular, err error) {
	if a.Rows != a.Cols {
		return nil, nil, fmt.Errorf("sparse: ILU0 requires a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	// Work on a copy of the values; pattern is unchanged.
	f := a.Clone()

	// colIndex[j] = position of column j in the current working row, or -1.
	colIndex := make([]int, n)
	for j := range colIndex {
		colIndex[j] = -1
	}
	diagPos := make([]int, n)
	for i := 0; i < n; i++ {
		diagPos[i] = -1
		for k := f.RowPtr[i]; k < f.RowPtr[i+1]; k++ {
			if f.Col[k] == i {
				diagPos[i] = k
			}
		}
		if diagPos[i] == -1 {
			return nil, nil, fmt.Errorf("sparse: ILU0 requires stored diagonal, missing at row %d", i)
		}
	}

	for i := 0; i < n; i++ {
		// Register the positions of row i.
		for k := f.RowPtr[i]; k < f.RowPtr[i+1]; k++ {
			colIndex[f.Col[k]] = k
		}
		// Eliminate using previous rows that appear in the strictly lower
		// part of row i.
		for k := f.RowPtr[i]; k < f.RowPtr[i+1]; k++ {
			j := f.Col[k]
			if j >= i {
				break
			}
			pivot := f.Val[diagPos[j]]
			if pivot == 0 {
				return nil, nil, fmt.Errorf("sparse: ILU0 zero pivot at row %d", j)
			}
			f.Val[k] /= pivot
			lij := f.Val[k]
			// Update the remainder of row i restricted to its own pattern.
			for kk := diagPos[j] + 1; kk < f.RowPtr[j+1]; kk++ {
				jj := f.Col[kk]
				if p := colIndex[jj]; p >= 0 {
					f.Val[p] -= lij * f.Val[kk]
				}
			}
		}
		if f.Val[diagPos[i]] == 0 {
			return nil, nil, fmt.Errorf("sparse: ILU0 zero pivot at row %d", i)
		}
		// Clear the registration.
		for k := f.RowPtr[i]; k < f.RowPtr[i+1]; k++ {
			colIndex[f.Col[k]] = -1
		}
	}

	l = LowerTriangle(f)
	l.UnitDiag = true
	for i := range l.Diag {
		l.Diag[i] = 1
	}
	u = UpperTriangle(f)
	return l, u, nil
}

// ILUPreconditioner applies the ILU(0) factors as a preconditioner:
// z = U^{-1} L^{-1} r, using the provided triangular solver functions so the
// parallel (doacross) solvers can be plugged in.
type ILUPreconditioner struct {
	L, U *Triangular
	// SolveLower and SolveUpper perform the two substitutions. When nil the
	// sequential Triangular.Solve is used.
	SolveLower func(t *Triangular, rhs, y []float64) []float64
	SolveUpper func(t *Triangular, rhs, y []float64) []float64
	scratch    []float64
}

// NewILUPreconditioner builds the preconditioner from a matrix by running
// ILU0.
func NewILUPreconditioner(a *CSR) (*ILUPreconditioner, error) {
	l, u, err := ILU0(a)
	if err != nil {
		return nil, err
	}
	return &ILUPreconditioner{L: l, U: u}, nil
}

// Apply computes z = U^{-1} L^{-1} r.
func (p *ILUPreconditioner) Apply(r []float64, z []float64) []float64 {
	if z == nil {
		z = make([]float64, len(r))
	}
	if cap(p.scratch) < len(r) {
		p.scratch = make([]float64, len(r))
	}
	w := p.scratch[:len(r)]
	if p.SolveLower != nil {
		w = p.SolveLower(p.L, r, w)
	} else {
		w = p.L.Solve(r, w)
	}
	if p.SolveUpper != nil {
		z = p.SolveUpper(p.U, w, z)
	} else {
		z = p.U.Solve(w, z)
	}
	return z
}
