package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPermutationFromOrder(t *testing.T) {
	p, err := NewPermutationFromOrder([]int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 {
		t.Fatal("wrong length")
	}
	// Old unknown 2 is executed first, so its new index is 0.
	if p.NewIndex[2] != 0 || p.OldIndex[0] != 2 {
		t.Errorf("permutation wrong: %+v", p)
	}
	if _, err := NewPermutationFromOrder([]int{0, 0, 1}); err == nil {
		t.Error("duplicate order accepted")
	}
	if _, err := NewPermutationFromOrder([]int{0, 3, 1}); err == nil {
		t.Error("out-of-range order accepted")
	}
}

func TestIdentityPermutation(t *testing.T) {
	p := Identity(4)
	x := []float64{1, 2, 3, 4}
	if VecMaxDiff(p.PermuteVector(x), x) != 0 {
		t.Error("identity permutation changed the vector")
	}
}

func TestPermuteUnpermuteRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		order := rng.Perm(n)
		p, err := NewPermutationFromOrder(order)
		if err != nil {
			return false
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		back := p.UnpermuteVector(p.PermuteVector(x))
		return VecMaxDiff(back, x) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPermuteSymmetricPreservesSolution(t *testing.T) {
	// If A x = b, then (PAP') (Px) = P b.
	rng := rand.New(rand.NewSource(11))
	n := 12
	var ts []Triplet
	for i := 0; i < n; i++ {
		ts = append(ts, Triplet{i, i, 4})
		if i > 0 {
			ts = append(ts, Triplet{i, i - 1, -1})
			ts = append(ts, Triplet{i - 1, i, -1})
		}
	}
	a, _ := FromTriplets(n, n, ts)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b := a.MulVec(x, nil)

	p, err := NewPermutationFromOrder(rng.Perm(n))
	if err != nil {
		t.Fatal(err)
	}
	pa, err := p.PermuteSymmetric(a)
	if err != nil {
		t.Fatal(err)
	}
	pb := pa.MulVec(p.PermuteVector(x), nil)
	if VecMaxDiff(pb, p.PermuteVector(b)) > 1e-12 {
		t.Fatal("permuted system does not preserve the solution relation")
	}

	rect := FromDense([][]float64{{1, 2, 3}})
	if _, err := p.PermuteSymmetric(rect); err == nil {
		t.Error("rectangular matrix accepted")
	}
}

func TestPermuteTriangularTopological(t *testing.T) {
	// A lower triangular matrix whose solve DAG is a diamond: 1 and 2 depend
	// on 0, 3 depends on 1 and 2. The order {0,2,1,3} is topological, so the
	// renumbered matrix must stay lower triangular and solve to the permuted
	// solution.
	a := FromDense([][]float64{
		{2, 0, 0, 0},
		{-1, 2, 0, 0},
		{-1, 0, 2, 0},
		{0, -1, -1, 2},
	})
	l := LowerTriangle(a)
	rhs := []float64{2, 1, 3, 4}
	want := l.Solve(rhs, nil)

	p, err := NewPermutationFromOrder([]int{0, 2, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := p.PermuteTriangular(l)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	got := pl.Solve(p.PermuteVector(rhs), nil)
	if VecMaxDiff(got, p.PermuteVector(want)) > 1e-12 {
		t.Fatal("renumbered triangular solve gives a different solution")
	}

	// A non-topological order (3 before its dependencies) must be rejected.
	bad, err := NewPermutationFromOrder([]int{3, 0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.PermuteTriangular(l); err == nil {
		t.Error("non-topological renumbering accepted")
	}

	short := Identity(2)
	if _, err := short.PermuteTriangular(l); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestPermuteTriangularUnitDiag(t *testing.T) {
	a := FromDense([][]float64{
		{1, 0},
		{-0.5, 1},
	})
	l := LowerTriangle(a)
	l.UnitDiag = true
	p := Identity(2)
	pl, err := p.PermuteTriangular(l)
	if err != nil {
		t.Fatal(err)
	}
	if !pl.UnitDiag || pl.Diag[0] != 1 || pl.Diag[1] != 1 {
		t.Error("unit diagonal not preserved")
	}
}
