package testloop_test

import (
	"fmt"

	"doacross/internal/testloop"
)

// ExampleConfig shows how the paper's L parameter controls the dependency
// structure of the Figure 4 test loop: odd L produces no cross-iteration
// dependencies, even L produces true dependencies whose distance grows with
// L.
func ExampleConfig() {
	for _, l := range []int{1, 4, 8, 14} {
		c := testloop.Config{N: 1000, M: 1, L: l}
		g := c.Graph()
		fmt.Printf("L=%-2d edges=%-4d crossDeps=%-5v minDistance=%d\n",
			l, g.Edges, c.HasCrossIterationDeps(), c.MinDepDistance())
	}
	// Output:
	// L=1  edges=0    crossDeps=false minDistance=0
	// L=4  edges=999  crossDeps=true  minDistance=1
	// L=8  edges=997  crossDeps=true  minDistance=3
	// L=14 edges=994  crossDeps=true  minDistance=6
}
