package testloop

import (
	"testing"

	"doacross/internal/core"
	"doacross/internal/flags"
	"doacross/internal/sparse"
)

func TestConfigValidate(t *testing.T) {
	if err := (Config{N: 100, M: 1, L: 1}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	for _, bad := range []Config{
		{N: 0, M: 1, L: 1}, {N: 10, M: 0, L: 1}, {N: 10, M: 1, L: 0}, {N: 10, M: 1, L: 17},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid config %+v accepted", bad)
		}
	}
}

func TestSubscriptsNonNegativeAndInRange(t *testing.T) {
	for L := 1; L <= 14; L++ {
		c := Config{N: 50, M: 5, L: L}
		dataLen := c.DataLen()
		for it := 0; it < c.N; it++ {
			if w := c.WriteIndex(it); w < 0 || w >= dataLen {
				t.Fatalf("L=%d: write index %d out of range [0,%d)", L, w, dataLen)
			}
			for jt := 0; jt < c.M; jt++ {
				if r := c.ReadIndex(it, jt); r < 0 || r >= dataLen {
					t.Fatalf("L=%d: read index %d out of range [0,%d)", L, r, dataLen)
				}
			}
		}
	}
}

func TestLoopValidates(t *testing.T) {
	for _, c := range []Config{{N: 100, M: 1, L: 3}, {N: 100, M: 5, L: 8}} {
		if err := c.Loop().Validate(); err != nil {
			t.Errorf("config %+v: loop invalid: %v", c, err)
		}
	}
}

func TestOddLHasNoDependencies(t *testing.T) {
	for _, L := range []int{1, 3, 5, 7, 9, 11, 13} {
		c := Config{N: 200, M: 5, L: L}
		g := c.Graph()
		if g.Edges != 0 {
			t.Errorf("L=%d: expected no dependencies, found %d edges", L, g.Edges)
		}
		if c.HasCrossIterationDeps() {
			t.Errorf("L=%d: HasCrossIterationDeps should be false", L)
		}
	}
}

func TestEvenLDependencyStructure(t *testing.T) {
	// For even L >= 4, iteration i depends on iterations i+j-L/2 for
	// j < L/2 (and j <= M); the minimum distance is L/2 - min(M, L/2-1).
	for _, tc := range []struct {
		L, M        int
		wantDeps    bool
		minDistance int
	}{
		{2, 5, false, 0},
		{4, 5, true, 1},
		{6, 5, true, 1},
		{8, 1, true, 3},
		{12, 5, true, 1},
		{14, 1, true, 6},
		{14, 5, true, 2},
	} {
		c := Config{N: 300, M: tc.M, L: tc.L}
		g := c.Graph()
		if (g.Edges > 0) != tc.wantDeps {
			t.Errorf("L=%d M=%d: edges=%d, wantDeps=%v", tc.L, tc.M, g.Edges, tc.wantDeps)
		}
		if c.HasCrossIterationDeps() != tc.wantDeps {
			t.Errorf("L=%d M=%d: HasCrossIterationDeps mismatch", tc.L, tc.M)
		}
		if got := c.MinDepDistance(); got != tc.minDistance {
			t.Errorf("L=%d M=%d: MinDepDistance = %d, want %d", tc.L, tc.M, got, tc.minDistance)
		}
		if tc.wantDeps {
			// Check one concrete edge: iteration i=200 (1-based 201) reading
			// j=1 depends on 201+1-L/2 (1-based), i.e. 0-based 200-L/2+1.
			it := 200
			want := it + 1 - tc.L/2
			found := false
			for _, p := range g.Preds[it] {
				if int(p) == want {
					found = true
				}
			}
			if !found && want >= 0 && want < it {
				t.Errorf("L=%d M=%d: iteration %d missing predecessor %d (preds %v)", tc.L, tc.M, it, want, g.Preds[it])
			}
		}
	}
}

func TestLargerLMeansLargerMinDistance(t *testing.T) {
	prev := -1
	for _, L := range []int{4, 6, 8, 10, 12, 14} {
		c := Config{N: 100, M: 1, L: L}
		d := c.MinDepDistance()
		if d <= prev {
			t.Fatalf("L=%d: min distance %d not larger than previous %d", L, d, prev)
		}
		prev = d
	}
}

func TestDoacrossMatchesSequentialAllL(t *testing.T) {
	for L := 1; L <= 14; L++ {
		for _, M := range []int{1, 5} {
			c := Config{N: 400, M: M, L: L}
			l := c.Loop()
			seq := c.InitialData()
			if err := core.RunSequential(l, seq); err != nil {
				t.Fatalf("L=%d M=%d: sequential reference: %v", L, M, err)
			}
			par := c.InitialData()
			rt := core.NewRuntime(l.Data, core.Options{Workers: 4, WaitStrategy: flags.WaitSpinYield})
			if _, err := rt.Run(l, par); err != nil {
				t.Fatalf("L=%d M=%d: %v", L, M, err)
			}
			if d := sparse.VecMaxDiff(seq, par); d > 1e-12 {
				t.Fatalf("L=%d M=%d: doacross differs from sequential by %v", L, M, d)
			}
		}
	}
}

func TestLinearSubscriptVariantMatches(t *testing.T) {
	c := Config{N: 500, M: 3, L: 6}
	l := c.Loop()
	sub := c.Subscript()
	// The subscript must agree with WriteIndex.
	for it := 0; it < c.N; it++ {
		if got := sub.C*it + sub.D; got != c.WriteIndex(it) {
			t.Fatalf("subscript mismatch at %d: %d vs %d", it, got, c.WriteIndex(it))
		}
	}
	seq := c.InitialData()
	if err := core.RunSequential(l, seq); err != nil {
		t.Fatalf("sequential reference: %v", err)
	}
	par := c.InitialData()
	rt := core.NewRuntime(l.Data, core.Options{Workers: 4, WaitStrategy: flags.WaitSpinYield})
	if _, err := rt.RunLinear(l, par, sub); err != nil {
		t.Fatal(err)
	}
	if d := sparse.VecMaxDiff(seq, par); d > 1e-12 {
		t.Fatalf("linear variant differs by %v", d)
	}
}

func TestInitialDataDeterministic(t *testing.T) {
	c := Config{N: 50, M: 2, L: 5}
	a, b := c.InitialData(), c.InitialData()
	if len(a) != c.DataLen() {
		t.Fatal("wrong data length")
	}
	if sparse.VecMaxDiff(a, b) != 0 {
		t.Fatal("InitialData not deterministic")
	}
}

func TestValCoefficients(t *testing.T) {
	c := Config{N: 10, M: 3, L: 1}
	if c.Val(0) <= 0 || c.Val(2) <= c.Val(0) {
		t.Error("val coefficients should be positive and increasing")
	}
}
