// Package testloop implements the paper's Figure 4 test loop, the workload of
// the Section 3.1 experiment (Figure 6):
//
//	do i = 1, N
//	  do j = 1, M
//	    y(a(i)) = y(a(i)) + val(j) * y(b(i) + nbrs(j))
//	  end do
//	end do
//
// with the Section 3.1 initialization a(i) = 2i, b(i) = 2i and
// nbrs(j) = 2j − L. For odd L every read lands on an odd element while every
// write lands on an even element, so there are no dependencies between outer
// iterations; for even L, iteration i reads the element written by iteration
// i + j − L/2, so true dependencies of distance L/2 − j appear and the
// distance grows with L — which is why the paper's efficiencies for even L
// rise monotonically with L.
//
// All subscripts are shifted by a constant so they remain non-negative for
// every L in the experiment's 1..14 range; the shift does not change the
// dependency structure.
package testloop

import (
	"fmt"

	"doacross/internal/core"
	"doacross/internal/depgraph"
)

// shift keeps b(i) + nbrs(j) non-negative for every L ≤ maxL.
const (
	maxL  = 16
	shift = maxL
)

// Config describes one instance of the Figure 4 test loop.
type Config struct {
	// N is the number of outer iterations (the paper uses 10000).
	N int
	// M is the number of inner iterations, i.e. the number of right-hand-side
	// reads per outer iteration (the paper uses 1 and 5).
	M int
	// L is the loop parameter that controls the dependency structure
	// (the paper sweeps 1..14).
	L int
	// WorkPerTerm adds synthetic floating-point work to every inner term.
	// A 1990 Multimax iteration cost microseconds, so runtime overheads were
	// small relative to the body; on a modern CPU the raw Figure 4 body is a
	// few nanoseconds and overheads dominate. Setting WorkPerTerm to a few
	// hundred restores the paper's work-to-overhead regime for live
	// measurements. Zero means the plain body. Results remain deterministic
	// and identical between the sequential and parallel executions.
	WorkPerTerm int
}

// Validate checks the configuration is within the supported range.
func (c Config) Validate() error {
	if c.N < 1 || c.M < 1 {
		return fmt.Errorf("testloop: N and M must be positive (N=%d, M=%d)", c.N, c.M)
	}
	if c.L < 1 || c.L > maxL {
		return fmt.Errorf("testloop: L must be in [1, %d], got %d", maxL, c.L)
	}
	return nil
}

// DataLen returns the length of the shared array y the loop needs.
func (c Config) DataLen() int {
	// Largest subscript is max(a(N), b(N)+nbrs(M)) = max(2N, 2N+2M-L) + shift.
	maxSub := 2*c.N + shift
	if s := 2*c.N + 2*c.M - c.L + shift; s > maxSub {
		maxSub = s
	}
	return maxSub + 1
}

// WriteIndex returns a(i) for the 1-based loop index i = it+1.
func (c Config) WriteIndex(it int) int { return 2*(it+1) + shift }

// ReadIndex returns b(i) + nbrs(j) for the 1-based indices i = it+1,
// j = jt+1.
func (c Config) ReadIndex(it, jt int) int {
	return 2*(it+1) + 2*(jt+1) - c.L + shift
}

// Val returns val(j) for jt = j-1; the values are fixed small coefficients so
// results stay bounded and runs are reproducible.
func (c Config) Val(jt int) float64 {
	return 0.01 * float64(jt+1)
}

// HasCrossIterationDeps reports whether any true dependency between distinct
// outer iterations exists: only for even L with L/2 > 1 does some inner index
// j satisfy j < L/2.
func (c Config) HasCrossIterationDeps() bool {
	return c.L%2 == 0 && c.L/2 > 1
}

// MinDepDistance returns the smallest distance (in outer iterations) of any
// true dependency, or 0 if there are none. Distances are L/2 − j for
// j = 1..min(M, L/2−1), so the smallest is L/2 − min(M, L/2−1).
func (c Config) MinDepDistance() int {
	if !c.HasCrossIterationDeps() {
		return 0
	}
	maxJ := c.L/2 - 1
	if c.M < maxJ {
		maxJ = c.M
	}
	return c.L/2 - maxJ
}

// Loop builds the core.Loop for the configuration. The index arrays are
// materialized once so the executor's hot path performs no per-iteration
// allocation.
func (c Config) Loop() *core.Loop {
	writes := make([]int, c.N)
	reads := make([]int, c.N*c.M)
	for it := 0; it < c.N; it++ {
		writes[it] = c.WriteIndex(it)
		for jt := 0; jt < c.M; jt++ {
			reads[it*c.M+jt] = c.ReadIndex(it, jt)
		}
	}
	vals := make([]float64, c.M)
	for jt := range vals {
		vals[jt] = c.Val(jt)
	}
	work := c.WorkPerTerm
	return &core.Loop{
		N:      c.N,
		Data:   c.DataLen(),
		Writes: func(it int) []int { return writes[it : it+1] },
		Reads:  func(it int) []int { return reads[it*c.M : (it+1)*c.M] },
		Body: func(it int, v *core.Values) {
			a := writes[it]
			acc := v.LoadNew(a) // seeded with y(a(i)) — Figure 5 statement S2
			row := reads[it*c.M : (it+1)*c.M]
			for jt, off := range row {
				term := vals[jt] * v.Load(off)
				for w := 0; w < work; w++ {
					term *= 1.0000000001
				}
				acc += term
			}
			v.Store(a, acc)
		},
	}
}

// InitialData returns a deterministic initial y array for the configuration.
func (c Config) InitialData() []float64 {
	y := make([]float64, c.DataLen())
	for i := range y {
		y[i] = 1.0 + 0.001*float64(i%97)
	}
	return y
}

// Access returns the access pattern for dependency-graph construction and
// machine simulation.
func (c Config) Access() depgraph.Access {
	l := c.Loop()
	return depgraph.Access{N: c.N, Writes: l.Writes, Reads: l.Reads}
}

// Graph builds the true-dependency graph of the configuration.
func (c Config) Graph() *depgraph.Graph {
	return depgraph.Build(c.Access())
}

// Subscript returns the linear left-hand-side subscript a(i) = 2*(i+1)+shift
// in the form used by the linear-subscript doacross variant (Section 2.3).
// In 0-based iteration indices it is a(it) = 2*it + (2 + shift).
func (c Config) Subscript() core.LinearSubscript {
	return core.LinearSubscript{C: 2, D: 2 + shift}
}
