// The repair experiment measures the tentpole claim of the incremental plan
// repair: patching a cached wavefront plan after a few rows of the matrix
// change is orders of magnitude cheaper than the cold re-inspection a full
// invalidation forces, which is what makes per-step sparsity changes (mesh
// refinement, ILU fill-in) affordable inside an iterative driver.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"doacross"
	"doacross/internal/stencil"
)

// RepairRow is one repair-vs-cold measurement: a triangular-solve workload,
// a worker count, and an edit granularity (rows updated per step).
type RepairRow struct {
	Problem     string
	Workers     int
	RowsPerStep int

	// TRepair is the best total repair time of one edit step (RowsPerStep
	// UpdateRow calls); TCold the best cold inspection (InvalidatePlans
	// followed by a solve, its reported preprocessing time).
	TRepair time.Duration
	TCold   time.Duration
	// Levels is the plan's level count after the final edit step.
	Levels int
	// Ratio is TCold / TRepair, the factor the incremental path saves.
	Ratio float64

	// MaxCone is the largest dirty cone any repair recomputed; Steps and
	// Repaired count the edit steps driven and the row updates the repair
	// path (rather than the cost-model fallback) served.
	MaxCone  int
	Steps    int
	Updates  int
	Repaired int
	Checks   string
}

// repairEditor owns the mutable state of one repair sweep: the triangular
// factor being edited and the per-row original patterns, so rows can be
// toggled between their factored pattern and a thinned copy without the
// matrix drifting away from well-conditioned.
type repairEditor struct {
	t       *doacross.Triangular
	solver  *doacross.Solver
	rng     *rand.Rand
	origCol [][]int
	origVal [][]float64
	thinned []bool
}

func newRepairEditor(t *doacross.Triangular, solver *doacross.Solver, seed int64) *repairEditor {
	e := &repairEditor{
		t:       t,
		solver:  solver,
		rng:     rand.New(rand.NewSource(seed)),
		origCol: make([][]int, t.N),
		origVal: make([][]float64, t.N),
		thinned: make([]bool, t.N),
	}
	for i := 0; i < t.N; i++ {
		e.origCol[i] = append([]int(nil), t.Col[t.RowPtr[i]:t.RowPtr[i+1]]...)
		e.origVal[i] = append([]float64(nil), t.Val[t.RowPtr[i]:t.RowPtr[i+1]]...)
	}
	return e
}

// step updates rows random rows through UpdateRow, toggling each between its
// original off-diagonal pattern and the pattern with its last entry dropped —
// a bounded edit, so arbitrarily many steps never degenerate the matrix. It
// returns the summed repair (or fallback) time and the per-update reports.
func (e *repairEditor) step(rows int) (time.Duration, []doacross.RepairReport, error) {
	var total time.Duration
	reports := make([]doacross.RepairReport, 0, rows)
	for k := 0; k < rows; k++ {
		// Only rows with at least one off-diagonal entry can toggle.
		i := 1 + e.rng.Intn(e.t.N-1)
		for len(e.origCol[i]) == 0 {
			i = 1 + e.rng.Intn(e.t.N-1)
		}
		cols, vals := e.origCol[i], e.origVal[i]
		if !e.thinned[i] {
			cols, vals = cols[:len(cols)-1], vals[:len(vals)-1]
		}
		e.thinned[i] = !e.thinned[i]
		rep, err := e.solver.UpdateRow(i, cols, vals, e.t.Diag[i])
		if err != nil {
			return 0, nil, err
		}
		total += rep.RepairTime
		reports = append(reports, rep)
	}
	return total, reports, nil
}

// RunRepairExperiment sweeps the repair path over the given problems, worker
// counts and edit granularities, driving `steps` edit steps per configuration
// (best step time wins, as in the other live experiments) and re-measuring
// the cold inspection the same number of times. Every configuration verifies
// the repaired solver against the sequential substitution of the edited
// matrix after its final step.
func RunRepairExperiment(probs []stencil.Problem, workers, rowsPerStep []int, steps int) ([]RepairRow, error) {
	if steps < 1 {
		steps = 1
	}
	var rows []RepairRow
	for _, prob := range probs {
		for _, p := range workers {
			for _, r := range rowsPerStep {
				l, _, err := stencil.LowerFactor(prob, 1)
				if err != nil {
					return nil, err
				}
				row := RepairRow{Problem: prob.String(), Workers: p, RowsPerStep: r, Steps: steps, Checks: "results match"}
				opts := append(liveSolverOptions(p, 32), doacross.WithExecutor(doacross.Wavefront))
				solver, err := doacross.NewSolver(l, opts...)
				if err != nil {
					return nil, err
				}
				rhs := stencil.RHS(l.N, 7)
				out := make([]float64, l.N)
				if _, _, err := solverSolve(solver, rhs, out); err != nil {
					solver.Close()
					return nil, err
				}

				// One fixed seed across worker counts: every configuration
				// edits the same row sequence, so the ratios compare workers
				// rather than which dirty cones the rng happened to pick.
				ed := newRepairEditor(l, solver, 31)
				for s := 0; s < steps; s++ {
					stepTime, reports, err := ed.step(r)
					if err != nil {
						solver.Close()
						return nil, err
					}
					if row.TRepair == 0 || stepTime < row.TRepair {
						row.TRepair = stepTime
					}
					for _, rep := range reports {
						row.Updates++
						if rep.Repaired {
							row.Repaired++
							if rep.ConeSize > row.MaxCone {
								row.MaxCone = rep.ConeSize
							}
						}
					}
				}

				// The edited matrix is the ground truth: the repaired plan
				// must reproduce its sequential substitution exactly.
				finalRep, got, err := solverSolve(solver, rhs, out)
				if err != nil {
					solver.Close()
					return nil, err
				}
				row.Levels = finalRep.Levels
				if c := checkClose(doacross.SolveSequential(l, rhs), got); c != "results match" {
					row.Checks = c
				}

				// Cold baseline over the same (edited) pattern: evict and let
				// the next solve re-inspect, best preprocessing time wins.
				for s := 0; s < steps; s++ {
					solver.InvalidatePlans()
					rep, _, e := solverSolve(solver, rhs, out)
					if e != nil {
						solver.Close()
						return nil, e
					}
					if row.TCold == 0 || rep.PreTime < row.TCold {
						row.TCold = rep.PreTime
					}
				}
				solver.Close()
				if row.TRepair > 0 {
					row.Ratio = float64(row.TCold) / float64(row.TRepair)
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// FormatRepair renders the repair-vs-cold comparison.
func FormatRepair(rows []RepairRow) string {
	var b strings.Builder
	b.WriteString("Plan repair (live): incremental repair of the cached wavefront plan vs cold re-inspection\n")
	fmt.Fprintf(&b, "%-8s %3s %5s %12s %12s %9s %8s %10s %s\n",
		"problem", "P", "rows", "Trepair", "Tcold", "ratio", "maxCone", "repaired", "check")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %3d %5d %12v %12v %8.1fx %8d %6d/%-3d %s\n",
			r.Problem, r.Workers, r.RowsPerStep, r.TRepair, r.TCold, r.Ratio,
			r.MaxCone, r.Repaired, r.Updates, r.Checks)
	}
	return b.String()
}

// CheckRepair verifies the experiment's qualitative claims: every
// configuration reproduced the sequential result of the edited matrix, every
// single-row update rode the repair path (single-row cones must sit far
// below the cost-model budget), and single-row repair beats the cold
// inspection by at least two orders of magnitude — the tentpole acceptance
// criterion.
func CheckRepair(rows []RepairRow) []string {
	var problems []string
	for _, r := range rows {
		if r.Checks != "results match" {
			problems = append(problems, fmt.Sprintf("%s P=%d rows=%d: %s", r.Problem, r.Workers, r.RowsPerStep, r.Checks))
		}
		if r.RowsPerStep == 1 {
			if r.Repaired != r.Updates {
				problems = append(problems, fmt.Sprintf("%s P=%d rows=1: only %d/%d single-row updates took the repair path",
					r.Problem, r.Workers, r.Repaired, r.Updates))
			}
			if r.Ratio < 100 {
				problems = append(problems, fmt.Sprintf("%s P=%d rows=1: repair only %.1fx cheaper than cold inspection (want >= 100x)",
					r.Problem, r.Workers, r.Ratio))
			}
		}
		if r.Repaired == 0 {
			problems = append(problems, fmt.Sprintf("%s P=%d rows=%d: no update took the repair path", r.Problem, r.Workers, r.RowsPerStep))
		}
	}
	return problems
}

// RepairBenchRecords converts the repair sweep into bench records.
func RepairBenchRecords(rows []RepairRow) []BenchRecord {
	records := make([]BenchRecord, 0, len(rows))
	for _, r := range rows {
		frac := 0.0
		if r.Updates > 0 {
			frac = float64(r.Repaired) / float64(r.Updates)
		}
		records = append(records, BenchRecord{
			Experiment:    "repair",
			Name:          fmt.Sprintf("trisolve %s rows=%d", r.Problem, r.RowsPerStep),
			Workers:       r.Workers,
			NsPerOp:       float64(r.TRepair.Nanoseconds()),
			ColdInspectNs: float64(r.TCold.Nanoseconds()),
			Speedup:       r.Ratio,
			Executor:      "wavefront",
			RowsPerStep:   r.RowsPerStep,
			ConeSize:      r.MaxCone,
			RepairedFrac:  frac,
		})
	}
	return records
}
