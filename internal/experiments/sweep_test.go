package experiments

import (
	"strings"
	"testing"

	"doacross/internal/stencil"
	"doacross/internal/testloop"
)

func TestProcessorSweepTestLoop(t *testing.T) {
	res, err := RunProcessorSweepTestLoop(testloop.Config{N: 2000, M: 5, L: 12}, []int{1, 2, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("got %d points", len(res.Points))
	}
	if problems := res.CheckShape(); len(problems) > 0 {
		t.Fatalf("sweep shape violated:\n%s", strings.Join(problems, "\n"))
	}
	// Single processor pays only the overheads, so its efficiency equals the
	// overhead floor and must be the maximum of the series.
	if res.Points[0].Efficiency < res.Points[len(res.Points)-1].Efficiency {
		t.Error("P=1 should have the highest efficiency")
	}
	if _, err := RunProcessorSweepTestLoop(testloop.Config{N: 0, M: 1, L: 1}, []int{1}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestProcessorSweepTrisolve(t *testing.T) {
	res, err := RunProcessorSweepTrisolve(stencil.FivePoint, []int{1, 4, 16, 64}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if problems := res.CheckShape(); len(problems) > 0 {
		t.Fatalf("sweep shape violated:\n%s", strings.Join(problems, "\n"))
	}
	// The reordering advantage should be visible at 16 processors.
	for _, p := range res.Points {
		if p.Processors == 16 && p.ReorderedEff <= p.Efficiency {
			t.Errorf("P=16: reordering should improve the 5-PT solve (%.3f vs %.3f)", p.ReorderedEff, p.Efficiency)
		}
	}
	out := res.Format()
	if !strings.Contains(out, "Ablation F") || !strings.Contains(out, "trisolve 5-PT") {
		t.Errorf("Format() missing expected content:\n%s", out)
	}
}

func TestSweepCheckShapeDetectsViolations(t *testing.T) {
	r := SweepResult{
		Workload: "trisolve synthetic",
		Points: []SweepPoint{
			{Processors: 1, Efficiency: 0.9, Speedup: 0.9, ReorderedEff: 0.95},
			{Processors: 2, Efficiency: 0.95, Speedup: 0.8, ReorderedEff: 0.5},
		},
	}
	problems := r.CheckShape()
	if len(problems) != 3 {
		t.Fatalf("expected 3 violations, got %d: %v", len(problems), problems)
	}
}
