package experiments

import (
	"fmt"

	"doacross/internal/report"
)

// AsTable converts the Figure 6 sweep into a report.Table (one row per L,
// one efficiency column per M) for Markdown/CSV export.
func (r Figure6Result) AsTable() *report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("Figure 6: efficiency of the preprocessed doacross test loop (N=%d, P=%d)", r.Config.N, r.Config.Processors),
		Columns: []string{"L"},
	}
	for _, m := range r.Config.Ms {
		t.Columns = append(t.Columns,
			fmt.Sprintf("eff(M=%d)", m),
			fmt.Sprintf("effWf(M=%d)", m),
			fmt.Sprintf("effDyn(M=%d)", m),
			fmt.Sprintf("auto(M=%d)", m))
	}
	t.Columns = append(t.Columns, "dependencies")
	for _, l := range r.Config.Ls {
		cells := []interface{}{l}
		note := "none (odd L)"
		for _, m := range r.Config.Ms {
			for _, p := range r.Points {
				if p.M == m && p.L == l {
					cells = append(cells, p.Efficiency, p.WavefrontEfficiency, p.DynamicEfficiency, p.AutoPick)
					if p.HasDependencies {
						note = fmt.Sprintf("true deps, min distance %d", p.MinDepDistance)
					} else if l%2 == 0 {
						note = "self/anti only"
					}
				}
			}
		}
		cells = append(cells, note)
		t.AddRow(cells...)
	}
	return t
}

// AsTable converts the Table 1 reproduction into a report.Table for
// Markdown/CSV export.
func (r Table1Result) AsTable() *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Table 1: preprocessed doacross times for sparse triangular matrices (P=%d, simulated ms)", r.Config.Processors),
		Columns: []string{
			"Problem", "Equations", "NNZ", "Levels",
			"Doacross (ms)", "Rearranged (ms)", "Wavefront (ms)", "Wf dynamic (ms)", "Sequential (ms)",
			"Eff", "Eff (rearranged)", "Eff (wavefront)", "Eff (dynamic)", "Auto",
		},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Problem.String(), row.Equations, row.NNZ, row.Levels,
			row.DoacrossMs, row.ReorderedMs, row.WavefrontMs, row.DynamicMs, row.SequentialMs,
			row.DoacrossEff, row.ReorderedEff, row.WavefrontEff, row.DynamicEff, row.AutoPick)
	}
	pl, ph, rl, rh := r.SpeedupSummary()
	t.AddNote("Efficiency bands: plain doacross %.2f..%.2f (paper 0.32..0.46), reordered %.2f..%.2f (paper 0.63..0.75)", pl, ph, rl, rh)
	return t
}

// AsTable converts a processor-count sweep into a report.Table.
func (r SweepResult) AsTable() *report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("Processor-count sweep for %s", r.Workload),
		Columns: []string{"P", "eff", "speedup", "reordered eff"},
	}
	for _, p := range r.Points {
		t.AddRow(p.Processors, p.Efficiency, p.Speedup, p.ReorderedEff)
	}
	return t
}
