package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"doacross/internal/stencil"
)

func TestExecutorSweepAndBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("live measurement skipped in -short mode")
	}
	rows, err := RunExecutorSweep([]stencil.Problem{stencil.SPE2}, []int{2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	r := rows[0]
	if problems := CheckExecutorSweep(rows); len(problems) > 0 {
		t.Fatalf("sweep violations: %v", problems)
	}
	if r.Levels == 0 || r.AutoPicked == "" {
		t.Fatalf("implausible row: %+v", r)
	}
	out := FormatExecutorSweep(rows)
	if !strings.Contains(out, "wavefront") || !strings.Contains(out, "SPE2") {
		t.Errorf("format output missing fields:\n%s", out)
	}

	records := ExecutorBenchRecords(rows)
	if len(records) != 2 {
		t.Fatalf("got %d records, want 2 (doacross + wavefront)", len(records))
	}
	if records[1].Executor != "wavefront" || records[1].WaitPolls != 0 {
		t.Fatalf("wavefront record: %+v", records[1])
	}
	if records[1].ColdInspectNs <= 0 {
		t.Fatalf("wavefront record missing cold inspect time: %+v", records[1])
	}

	path := filepath.Join(t.TempDir(), "BENCH_results.json")
	if err := WriteBenchJSON(path, records); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f BenchFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("BENCH_results.json is not valid JSON: %v", err)
	}
	if f.Schema != 1 || len(f.Records) != 2 || f.Records[0].NsPerOp <= 0 {
		t.Fatalf("unexpected bench file: %+v", f)
	}
}

func TestLiveBenchRecords(t *testing.T) {
	recs := LiveBenchRecords([]LiveResult{{Name: "w", Workers: 3, Executor: "doacross", WaitPolls: 5}})
	if len(recs) != 1 || recs[0].Experiment != "live" || recs[0].WaitPolls != 5 {
		t.Fatalf("unexpected records: %+v", recs)
	}
}
