package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"doacross/internal/stencil"
)

func TestExecutorSweepAndBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("live measurement skipped in -short mode")
	}
	rows, err := RunExecutorSweep([]stencil.Problem{stencil.SPE2}, []int{2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	r := rows[0]
	if problems := CheckExecutorSweep(rows); len(problems) > 0 {
		t.Fatalf("sweep violations: %v", problems)
	}
	if r.Levels == 0 || r.AutoPicked == "" {
		t.Fatalf("implausible row: %+v", r)
	}
	out := FormatExecutorSweep(rows)
	if !strings.Contains(out, "wavefront") || !strings.Contains(out, "SPE2") {
		t.Errorf("format output missing fields:\n%s", out)
	}

	records := ExecutorBenchRecords(rows)
	if len(records) != 3 {
		t.Fatalf("got %d records, want 3 (doacross + wavefront + wavefront-dynamic)", len(records))
	}
	if records[1].Executor != "wavefront" || records[1].WaitPolls != 0 {
		t.Fatalf("wavefront record: %+v", records[1])
	}
	if records[1].ColdInspectNs <= 0 {
		t.Fatalf("wavefront record missing cold inspect time: %+v", records[1])
	}
	if records[2].Executor != "wavefront-dynamic" || records[2].WaitPolls != 0 || records[2].NsPerOp <= 0 {
		t.Fatalf("wavefront-dynamic record: %+v", records[2])
	}

	path := filepath.Join(t.TempDir(), "BENCH_results.json")
	if err := WriteBenchJSON(path, records); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f BenchFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("BENCH_results.json is not valid JSON: %v", err)
	}
	if f.Schema != 1 || len(f.Records) != 3 || f.Records[0].NsPerOp <= 0 {
		t.Fatalf("unexpected bench file: %+v", f)
	}
}

// TestExecutorSweepSelection pins the executor-subset contract: a filtered
// sweep measures only the named strategies (the others stay zero and their
// checks are skipped), and an unknown executor name is rejected with the
// valid set spelled out.
func TestExecutorSweepSelection(t *testing.T) {
	if testing.Short() {
		t.Skip("live measurement skipped in -short mode")
	}
	rows, err := RunExecutorSweep([]stencil.Problem{stencil.SPE2}, []int{2}, 1, "doacross", "wavefront-dynamic")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	r := rows[0]
	if r.TDoacross <= 0 || r.TDynamic <= 0 {
		t.Fatalf("selected executors not measured: %+v", r)
	}
	if r.TWavefront != 0 || r.AutoPicked != "" {
		t.Fatalf("excluded executors measured anyway: %+v", r)
	}
	if problems := CheckExecutorSweep(rows); len(problems) > 0 {
		t.Fatalf("filtered sweep violations: %v", problems)
	}
	if recs := ExecutorBenchRecords(rows); len(recs) != 2 {
		t.Fatalf("filtered sweep emitted %d records, want 2", len(recs))
	}

	// An auto-only sweep must still carry the decision: the level count is
	// backfilled from the Auto run's report (so the consistency check can
	// fire) and a dedicated bench record preserves the pick and calibrated
	// coefficients.
	autoRows, err := RunExecutorSweep([]stencil.Problem{stencil.SPE2}, []int{2}, 1, "auto")
	if err != nil {
		t.Fatal(err)
	}
	ar := autoRows[0]
	if ar.AutoPicked == "" || ar.TAuto <= 0 {
		t.Fatalf("auto-only sweep measured nothing: %+v", ar)
	}
	if ar.AutoPicked != "doacross" && ar.Levels == 0 {
		t.Fatalf("auto-only sweep lost the level count: %+v", ar)
	}
	if problems := CheckExecutorSweep(autoRows); len(problems) > 0 {
		t.Fatalf("auto-only sweep violations: %v", problems)
	}
	autoRecs := ExecutorBenchRecords(autoRows)
	if len(autoRecs) != 1 || autoRecs[0].Executor != "auto" || autoRecs[0].AutoPicked != ar.AutoPicked {
		t.Fatalf("auto-only sweep records: %+v", autoRecs)
	}

	_, err = RunExecutorSweep([]stencil.Problem{stencil.SPE2}, []int{2}, 1, "warpfront")
	if err == nil || !strings.Contains(err.Error(), "valid: doacross, wavefront, wavefront-dynamic, auto") {
		t.Fatalf("unknown executor name not rejected with the valid set: %v", err)
	}
}

func TestLiveBenchRecords(t *testing.T) {
	recs := LiveBenchRecords([]LiveResult{{Name: "w", Workers: 3, Executor: "doacross", WaitPolls: 5}})
	if len(recs) != 1 || recs[0].Experiment != "live" || recs[0].WaitPolls != 5 {
		t.Fatalf("unexpected records: %+v", recs)
	}
}
