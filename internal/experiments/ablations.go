package experiments

import (
	"fmt"
	"strings"

	"doacross/internal/depgraph"
	"doacross/internal/doconsider"
	"doacross/internal/machine"
	"doacross/internal/sched"
	"doacross/internal/stencil"
	"doacross/internal/testloop"
	"doacross/internal/trisolve"
)

// OverheadRow quantifies Ablation A (the cost of execution-time preprocessing
// and dependency checks) on a dependency-free configuration of the Figure 4
// loop: the ideal doall, the doall plus only the per-read checks, and the
// full preprocessed doacross.
type OverheadRow struct {
	M                  int
	DoallEff           float64
	ChecksOnlyEff      float64
	FullDoacrossEff    float64
	InspectorShare     float64 // fraction of T_par spent in preprocessing
	PostprocessShare   float64 // fraction of T_par spent in postprocessing
	CheckOverheadShare float64 // fraction of T_par spent in per-read checks
}

// RunOverheadAblation measures the overhead decomposition for a
// dependency-free (odd L) test-loop configuration.
func RunOverheadAblation(n int, ms []int, processors int) ([]OverheadRow, error) {
	var rows []OverheadRow
	for _, m := range ms {
		tc := testloop.Config{N: n, M: m, L: 1} // odd L: no dependencies
		g := tc.Graph()
		cm := Figure6CostModel(m)
		cfgBase := machine.Config{Processors: processors, Policy: sched.Cyclic}

		ideal, err := machine.Simulate(g, withSkips(cfgBase, true, true, true, true), cm)
		if err != nil {
			return nil, err
		}
		checksOnly, err := machine.Simulate(g, withSkips(cfgBase, true, false, true, false), cm)
		if err != nil {
			return nil, err
		}
		full, err := machine.Simulate(g, cfgBase, cm)
		if err != nil {
			return nil, err
		}
		row := OverheadRow{
			M:               m,
			DoallEff:        ideal.Efficiency,
			ChecksOnlyEff:   checksOnly.Efficiency,
			FullDoacrossEff: full.Efficiency,
		}
		if full.TPar > 0 {
			row.InspectorShare = full.PreTime / full.TPar
			row.PostprocessShare = full.PostTime / full.TPar
			row.CheckOverheadShare = fig6CheckPerRead * float64(m) / (full.TPar / float64(n) * float64(processors))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func withSkips(cfg machine.Config, skipPre, skipChecks, skipPost, skipOverheads bool) machine.Config {
	cfg.SkipInspector = skipPre
	cfg.SkipChecks = skipChecks
	cfg.SkipPostprocess = skipPost
	cfg.SkipOverheads = skipOverheads
	return cfg
}

// FormatOverhead renders the overhead ablation.
func FormatOverhead(rows []OverheadRow) string {
	var b strings.Builder
	b.WriteString("Ablation A: runtime overhead of the preprocessed doacross on a dependency-free loop (odd L)\n")
	fmt.Fprintf(&b, "%4s %12s %14s %14s %10s %10s\n", "M", "doall eff", "checks-only", "full doacross", "pre share", "post share")
	for _, r := range rows {
		fmt.Fprintf(&b, "%4d %12.3f %14.3f %14.3f %10.3f %10.3f\n",
			r.M, r.DoallEff, r.ChecksOnlyEff, r.FullDoacrossEff, r.InspectorShare, r.PostprocessShare)
	}
	return b.String()
}

// OrderingRow is one row of Ablation E: the efficiency of the preprocessed
// doacross on a Table 1 matrix under each doconsider ordering strategy.
type OrderingRow struct {
	Problem    stencil.Problem
	Strategy   doconsider.Strategy
	Efficiency float64
	Levels     int
	MeanDist   float64
}

// RunOrderingAblation compares the reordering strategies on the given
// problems.
func RunOrderingAblation(problems []stencil.Problem, processors int, seed int64) ([]OrderingRow, error) {
	var rows []OrderingRow
	for _, prob := range problems {
		l, _, err := stencil.LowerFactor(prob, seed)
		if err != nil {
			return nil, err
		}
		g := trisolve.Graph(l)
		cm := TrisolveCostModel(l)
		acc := depgraph.Access{
			N:      l.N,
			Writes: func(i int) []int { return []int{i} },
			Reads:  func(i int) []int { return l.Col[l.RowPtr[i]:l.RowPtr[i+1]] },
		}
		readPreds := machine.ReadPredsFromAccess(acc)
		_, byLevel := g.Levels()
		for _, s := range doconsider.Strategies {
			plan := doconsider.NewPlan(g, s)
			cfg := machine.Config{Processors: processors, Policy: sched.Cyclic, ReadPreds: readPreds}
			if s != doconsider.Natural {
				cfg.Order = plan.Order
			}
			sim, err := machine.Simulate(g, cfg, cm)
			if err != nil {
				return nil, err
			}
			rows = append(rows, OrderingRow{
				Problem:    prob,
				Strategy:   s,
				Efficiency: sim.Efficiency,
				Levels:     len(byLevel),
				MeanDist:   plan.MeanWaitDistance,
			})
		}
	}
	return rows, nil
}

// FormatOrdering renders the ordering ablation.
func FormatOrdering(rows []OrderingRow) string {
	var b strings.Builder
	b.WriteString("Ablation E: doconsider ordering strategies for the triangular solve (simulated, P=16)\n")
	fmt.Fprintf(&b, "%-8s %-18s %10s %8s %10s\n", "Problem", "Ordering", "Eff", "Levels", "MeanDist")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-18s %10.3f %8d %10.1f\n", r.Problem, r.Strategy, r.Efficiency, r.Levels, r.MeanDist)
	}
	return b.String()
}

// BlockedRow is one row of Ablation B: the simulated efficiency of the
// strip-mined doacross (Section 2.3) as a function of the block size. The
// strip-mined loop synchronizes globally after each block, so small blocks
// lose pipeline overlap; the scratch memory needed shrinks proportionally.
type BlockedRow struct {
	BlockSize  int
	Efficiency float64
	// ScratchFraction is the fraction of the full-size iter/ready arrays the
	// blocked variant needs (block/N, capped at 1).
	ScratchFraction float64
}

// RunBlockedAblation simulates the strip-mined doacross on the Figure 4 test
// loop for the given block sizes. Each block is simulated independently
// (dependencies into earlier blocks are already satisfied) and the per-block
// times are summed, which models the global synchronization between blocks.
func RunBlockedAblation(tc testloop.Config, blockSizes []int, processors int) ([]BlockedRow, error) {
	if err := tc.Validate(); err != nil {
		return nil, err
	}
	cm := Figure6CostModel(tc.M)
	full := tc.Graph()
	var rows []BlockedRow
	for _, bs := range blockSizes {
		if bs < 1 {
			return nil, fmt.Errorf("experiments: block size must be positive, got %d", bs)
		}
		totalPar := 0.0
		totalSeq := 0.0
		for lo := 0; lo < tc.N; lo += bs {
			hi := lo + bs
			if hi > tc.N {
				hi = tc.N
			}
			sub := blockSubgraph(full, lo, hi)
			acc := depgraph.Access{
				N:      hi - lo,
				Writes: func(i int) []int { return []int{tc.WriteIndex(lo + i)} },
				Reads: func(i int) []int {
					r := make([]int, tc.M)
					for jt := 0; jt < tc.M; jt++ {
						r[jt] = tc.ReadIndex(lo+i, jt)
					}
					return r
				},
			}
			// Reads of elements produced by earlier blocks are already
			// satisfied; ReadPredsFromAccess only sees writers inside the
			// block because the access pattern is restricted to it.
			sim, err := machine.Simulate(sub, machine.Config{
				Processors: processors,
				Policy:     sched.Cyclic,
				ReadPreds:  machine.ReadPredsFromAccess(acc),
			}, cm)
			if err != nil {
				return nil, err
			}
			totalPar += sim.TPar
			totalSeq += sim.TSeq
		}
		eff := 0.0
		if totalPar > 0 {
			eff = totalSeq / (float64(processors) * totalPar)
		}
		frac := float64(bs) / float64(tc.N)
		if frac > 1 {
			frac = 1
		}
		rows = append(rows, BlockedRow{BlockSize: bs, Efficiency: eff, ScratchFraction: frac})
	}
	return rows, nil
}

// blockSubgraph restricts the dependency graph to iterations [lo, hi),
// dropping edges from earlier iterations (their results are already in y when
// the block starts).
func blockSubgraph(g *depgraph.Graph, lo, hi int) *depgraph.Graph {
	sub := &depgraph.Graph{
		N:     hi - lo,
		Preds: make([][]int32, hi-lo),
		Succs: make([][]int32, hi-lo),
	}
	for i := lo; i < hi; i++ {
		for _, p := range g.Preds[i] {
			if int(p) >= lo {
				sub.Preds[i-lo] = append(sub.Preds[i-lo], p-int32(lo))
				sub.Succs[p-int32(lo)] = append(sub.Succs[p-int32(lo)], int32(i-lo))
				sub.Edges++
			}
		}
	}
	return sub
}

// FormatBlocked renders the blocked-variant ablation.
func FormatBlocked(rows []BlockedRow) string {
	var b strings.Builder
	b.WriteString("Ablation B: strip-mined (blocked) doacross, efficiency vs. block size\n")
	fmt.Fprintf(&b, "%10s %12s %16s\n", "block", "eff", "scratch fraction")
	for _, r := range rows {
		fmt.Fprintf(&b, "%10d %12.3f %16.3f\n", r.BlockSize, r.Efficiency, r.ScratchFraction)
	}
	return b.String()
}

// LinearRow is one row of Ablation C: the inspector-based doacross against
// the linear-subscript variant (no inspector) on the Figure 4 loop.
type LinearRow struct {
	L                int
	InspectorEff     float64
	LinearEff        float64
	InspectorPreTime float64
}

// RunLinearAblation compares the two variants across L values.
func RunLinearAblation(n, m int, ls []int, processors int) ([]LinearRow, error) {
	var rows []LinearRow
	for _, l := range ls {
		tc := testloop.Config{N: n, M: m, L: l}
		if err := tc.Validate(); err != nil {
			return nil, err
		}
		g := tc.Graph()
		cm := Figure6CostModel(m)
		readPreds := machine.ReadPredsFromAccess(tc.Access())
		base := machine.Config{Processors: processors, Policy: sched.Cyclic, ReadPreds: readPreds}
		withInspector, err := machine.Simulate(g, base, cm)
		if err != nil {
			return nil, err
		}
		noInspector := base
		noInspector.SkipInspector = true
		linear, err := machine.Simulate(g, noInspector, cm)
		if err != nil {
			return nil, err
		}
		rows = append(rows, LinearRow{
			L:                l,
			InspectorEff:     withInspector.Efficiency,
			LinearEff:        linear.Efficiency,
			InspectorPreTime: withInspector.PreTime,
		})
	}
	return rows, nil
}

// FormatLinear renders the linear-subscript ablation.
func FormatLinear(rows []LinearRow) string {
	var b strings.Builder
	b.WriteString("Ablation C: inspector-based vs. linear-subscript doacross (Section 2.3)\n")
	fmt.Fprintf(&b, "%4s %14s %12s %14s\n", "L", "inspector eff", "linear eff", "inspector pre")
	for _, r := range rows {
		fmt.Fprintf(&b, "%4d %14.3f %12.3f %14.1f\n", r.L, r.InspectorEff, r.LinearEff, r.InspectorPreTime)
	}
	return b.String()
}
