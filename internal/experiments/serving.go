package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"doacross"
	"doacross/internal/sparse"
	"doacross/internal/stencil"
)

// ServingConfig describes one serving-throughput measurement: K concurrent
// callers hammering one solver through the coalescing SolveService.
type ServingConfig struct {
	// Problem selects the triangular factor served.
	Problem stencil.Problem
	// Workers is the solver's worker count.
	Workers int
	// Callers is K, the number of concurrent requesters.
	Callers int
	// SolvesPerCaller is how many solves each caller performs back to back.
	SolvesPerCaller int
	// Window is the coalescing window of the batched configuration; the
	// unbatched baseline always runs Window 0 with MaxBatch 1.
	Window time.Duration
	// Repeat reports the best of this many runs per configuration.
	Repeat int
}

// DefaultServingConfig returns the serving sweep's standard configuration:
// a 200µs window, enough solves per caller to outlast warmup, best of 2.
func DefaultServingConfig(prob stencil.Problem, workers, callers int) ServingConfig {
	return ServingConfig{
		Problem:         prob,
		Workers:         workers,
		Callers:         callers,
		SolvesPerCaller: 60,
		Window:          200 * time.Microsecond,
		Repeat:          2,
	}
}

// ServingResult is one measured serving configuration.
type ServingResult struct {
	Name    string
	Workers int
	Callers int
	// Batched distinguishes the coalescing configuration from the
	// Window=0/MaxBatch=1 baseline.
	Batched bool
	// Solves is the total request count of one run; Elapsed its wall clock.
	Solves  int
	Elapsed time.Duration
	// SolvesPerSec is the throughput (Solves / Elapsed).
	SolvesPerSec float64
	// NsPerSolve is the per-request wall clock (Elapsed / Solves), the ns/op
	// the regression gate tracks.
	NsPerSolve float64
	// MeanBatch, WindowFlushes and SizeFlushes summarize the batch-size
	// distribution of the run; BatchSizes is the full histogram
	// (BatchSizes[k] counts batches of k+1 requests).
	MeanBatch     float64
	WindowFlushes uint64
	SizeFlushes   uint64
	MaxQueueDepth int
	BatchSizes    []uint64
	// Checks is the result-correctness note ("results match" or a mismatch).
	Checks string
}

// String renders the measurement.
func (r ServingResult) String() string {
	mode := "unbatched"
	if r.Batched {
		mode = "batched  "
	}
	return fmt.Sprintf("%-26s P=%-2d K=%-3d %s %9.0f solves/s  %10.0f ns/solve  mean batch %5.1f  flushes %d window / %d size  depth<=%d  %s",
		r.Name, r.Workers, r.Callers, mode, r.SolvesPerSec, r.NsPerSolve,
		r.MeanBatch, r.WindowFlushes, r.SizeFlushes, r.MaxQueueDepth, r.Checks)
}

// RunServing measures one serving configuration in both modes — coalescing
// off (Window 0, MaxBatch 1: every request pays a full traversal) and on —
// over the same solver kind, and returns the two results, unbatched first.
// Correctness is checked on every caller's final answer against the
// sequential substitution.
func RunServing(cfg ServingConfig) ([]ServingResult, error) {
	if cfg.Callers < 1 || cfg.SolvesPerCaller < 1 {
		return nil, fmt.Errorf("experiments: serving needs at least one caller and one solve, got K=%d S=%d", cfg.Callers, cfg.SolvesPerCaller)
	}
	repeat := cfg.Repeat
	if repeat < 1 {
		repeat = 1
	}
	l, _, err := stencil.LowerFactor(cfg.Problem, 1)
	if err != nil {
		return nil, err
	}
	// Distinct per-caller right-hand sides with precomputed references keep
	// the correctness check out of the timed region.
	rhs := make([][]float64, cfg.Callers)
	want := make([][]float64, cfg.Callers)
	for c := range rhs {
		rhs[c] = stencil.RHS(l.N, int64(13+c))
		want[c] = doacross.SolveSequential(l, rhs[c])
	}

	name := fmt.Sprintf("trisolve %v serving", cfg.Problem)
	out := make([]ServingResult, 0, 2)
	for _, batched := range []bool{false, true} {
		opts := doacross.ServeOptions{MaxBatch: 1}
		if batched {
			opts = doacross.ServeOptions{Window: cfg.Window, MaxBatch: doacross.MaxRHSBlock}
		}
		// The queue must absorb a full burst of callers in either mode.
		opts.QueueBound = 2 * cfg.Callers
		if opts.QueueBound < 256 {
			opts.QueueBound = 256
		}
		res := ServingResult{
			Name:    name,
			Workers: cfg.Workers,
			Callers: cfg.Callers,
			Batched: batched,
			Solves:  cfg.Callers * cfg.SolvesPerCaller,
		}
		for rep := 0; rep < repeat; rep++ {
			// A fresh solver and service per run: the schedule cache warms
			// during the first solves, which the repeat's best-of absorbs.
			solver, err := doacross.NewSolver(l, liveSolverOptions(cfg.Workers, 32)...)
			if err != nil {
				return nil, err
			}
			svc, err := doacross.NewSolveService(solver, opts)
			if err != nil {
				solver.Close()
				return nil, err
			}
			elapsed, last, err := serveOnce(svc, rhs, cfg.SolvesPerCaller)
			if err != nil {
				svc.Close()
				solver.Close()
				return nil, err
			}
			st := svc.Stats()
			svc.Close()
			solver.Close()
			if rep == 0 || elapsed < res.Elapsed {
				res.Elapsed = elapsed
				res.MeanBatch = st.MeanBatch()
				res.WindowFlushes = st.WindowFlushes
				res.SizeFlushes = st.SizeFlushes
				res.MaxQueueDepth = st.MaxQueueDepth
				res.BatchSizes = st.BatchSizes
				res.Checks = checkServing(last, want)
			}
		}
		res.SolvesPerSec = float64(res.Solves) / res.Elapsed.Seconds()
		res.NsPerSolve = float64(res.Elapsed.Nanoseconds()) / float64(res.Solves)
		out = append(out, res)
	}
	return out, nil
}

// serveOnce drives one timed run: every caller performs its solves back to
// back, and the wall clock covers first enqueue to last delivery. Each
// caller's final answer is returned for the correctness check.
func serveOnce(svc *doacross.SolveService, rhs [][]float64, solves int) (time.Duration, [][]float64, error) {
	callers := len(rhs)
	last := make([][]float64, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < solves; k++ {
				y, err := svc.Solve(context.Background(), rhs[c])
				if err != nil {
					errs[c] = err
					return
				}
				last[c] = y
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, nil, err
		}
	}
	return elapsed, last, nil
}

// checkServing verifies every caller's final answer against its sequential
// reference.
func checkServing(got, want [][]float64) string {
	for c := range want {
		if got[c] == nil {
			return fmt.Sprintf("MISSING ANSWER (caller %d)", c)
		}
		if d := sparse.VecMaxDiff(got[c], want[c]); d > 1e-9 {
			return fmt.Sprintf("RESULT MISMATCH (caller %d, max diff %.2e)", c, d)
		}
	}
	return "results match"
}

// ServingBenchRecords converts serving measurements into bench records, one
// per mode, keyed so the regression gate matches batched against batched and
// unbatched against unbatched across runs.
func ServingBenchRecords(results []ServingResult) []BenchRecord {
	records := make([]BenchRecord, 0, len(results))
	for _, r := range results {
		mode := "unbatched"
		if r.Batched {
			mode = "batched"
		}
		records = append(records, BenchRecord{
			Experiment:   "serving",
			Name:         fmt.Sprintf("%s %s K=%d", r.Name, mode, r.Callers),
			Workers:      r.Workers,
			NsPerOp:      r.NsPerSolve,
			Callers:      r.Callers,
			SolvesPerSec: r.SolvesPerSec,
			MeanBatch:    r.MeanBatch,
		})
	}
	return records
}

// FormatServing renders a set of serving measurements, including the
// batch-size distribution of each batched row.
func FormatServing(results []ServingResult) string {
	var b strings.Builder
	b.WriteString("Serving throughput — K concurrent callers through the coalescing SolveService\n")
	for _, r := range results {
		b.WriteString(r.String())
		b.WriteByte('\n')
		if r.Batched {
			b.WriteString("  batch sizes: ")
			b.WriteString(formatBatchHistogram(r.BatchSizes))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// formatBatchHistogram renders the non-empty buckets of a batch-size
// histogram as "size×count" pairs.
func formatBatchHistogram(sizes []uint64) string {
	var parts []string
	for k, c := range sizes {
		if c > 0 {
			parts = append(parts, fmt.Sprintf("%d×%d", k+1, c))
		}
	}
	if len(parts) == 0 {
		return "(none)"
	}
	return strings.Join(parts, " ")
}

// CheckServing verifies the serving experiment's qualitative claims: all
// results correct, and with enough concurrency (K >= 16) the coalescing
// configuration beats the unbatched baseline — the whole point of paying
// one traversal per batch instead of one per request.
func CheckServing(results []ServingResult) []string {
	var problems []string
	byKey := make(map[string]*ServingResult)
	for i := range results {
		r := &results[i]
		if r.Checks != "results match" {
			problems = append(problems, fmt.Sprintf("%s K=%d: %s", r.Name, r.Callers, r.Checks))
		}
		mode := "unbatched"
		if r.Batched {
			mode = "batched"
		}
		byKey[fmt.Sprintf("%s/K=%d/%s", r.Name, r.Callers, mode)] = r
	}
	for i := range results {
		r := &results[i]
		if !r.Batched || r.Callers < 16 {
			continue
		}
		base, ok := byKey[fmt.Sprintf("%s/K=%d/unbatched", r.Name, r.Callers)]
		if !ok {
			continue
		}
		if r.SolvesPerSec <= base.SolvesPerSec {
			problems = append(problems, fmt.Sprintf(
				"%s K=%d: batched %.0f solves/s did not beat unbatched %.0f",
				r.Name, r.Callers, r.SolvesPerSec, base.SolvesPerSec))
		}
		if r.MeanBatch <= 1 {
			problems = append(problems, fmt.Sprintf(
				"%s K=%d: coalescing produced no multi-request batches (mean %.2f)",
				r.Name, r.Callers, r.MeanBatch))
		}
	}
	return problems
}
