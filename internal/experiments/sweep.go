package experiments

import (
	"fmt"
	"strings"

	"doacross/internal/depgraph"
	"doacross/internal/doconsider"
	"doacross/internal/machine"
	"doacross/internal/sched"
	"doacross/internal/stencil"
	"doacross/internal/testloop"
	"doacross/internal/trisolve"
)

// SweepPoint is one point of a processor-count sweep: the simulated
// efficiency of a workload at a given machine size.
type SweepPoint struct {
	Processors   int
	Efficiency   float64
	Speedup      float64
	ReorderedEff float64
}

// SweepResult is an extension experiment (not in the paper, listed as
// Ablation F in DESIGN.md): how the preprocessed doacross scales with the
// number of processors for a fixed workload. The paper only reports the
// 16-processor point; the sweep shows where the efficiency knee sits and how
// the doconsider reordering moves it.
type SweepResult struct {
	Workload string
	Points   []SweepPoint
}

// RunProcessorSweepTestLoop sweeps the machine size for one Figure 4
// configuration.
func RunProcessorSweepTestLoop(tc testloop.Config, procs []int) (SweepResult, error) {
	if err := tc.Validate(); err != nil {
		return SweepResult{}, err
	}
	g := tc.Graph()
	cm := Figure6CostModel(tc.M)
	rp := machine.ReadPredsFromAccess(tc.Access())
	res := SweepResult{Workload: fmt.Sprintf("figure4 N=%d M=%d L=%d", tc.N, tc.M, tc.L)}
	for _, p := range procs {
		sim, err := machine.Simulate(g, machine.Config{Processors: p, Policy: sched.Cyclic, ReadPreds: rp}, cm)
		if err != nil {
			return SweepResult{}, err
		}
		res.Points = append(res.Points, SweepPoint{
			Processors: p,
			Efficiency: sim.Efficiency,
			Speedup:    sim.Speedup,
			// The test loop is not reordered in the paper; report the same
			// value so the table stays rectangular.
			ReorderedEff: sim.Efficiency,
		})
	}
	return res, nil
}

// RunProcessorSweepTrisolve sweeps the machine size for the forward solve of
// one Table 1 problem, reporting both the natural-order and the reordered
// doacross.
func RunProcessorSweepTrisolve(prob stencil.Problem, procs []int, seed int64) (SweepResult, error) {
	l, _, err := stencil.LowerFactor(prob, seed)
	if err != nil {
		return SweepResult{}, err
	}
	g := trisolve.Graph(l)
	cm := TrisolveCostModel(l)
	acc := depgraph.Access{
		N:      l.N,
		Writes: func(i int) []int { return []int{i} },
		Reads:  func(i int) []int { return l.Col[l.RowPtr[i]:l.RowPtr[i+1]] },
	}
	rp := machine.ReadPredsFromAccess(acc)
	order := doconsider.Order(g, doconsider.Level)

	res := SweepResult{Workload: fmt.Sprintf("trisolve %v", prob)}
	for _, p := range procs {
		plain, err := machine.Simulate(g, machine.Config{Processors: p, Policy: sched.Cyclic, ReadPreds: rp}, cm)
		if err != nil {
			return SweepResult{}, err
		}
		reordered, err := machine.Simulate(g, machine.Config{Processors: p, Policy: sched.Cyclic, ReadPreds: rp, Order: order}, cm)
		if err != nil {
			return SweepResult{}, err
		}
		res.Points = append(res.Points, SweepPoint{
			Processors:   p,
			Efficiency:   plain.Efficiency,
			Speedup:      plain.Speedup,
			ReorderedEff: reordered.Efficiency,
		})
	}
	return res, nil
}

// DefaultSweepProcessors is the processor-count axis used by the sweep
// experiment and benchmarks.
var DefaultSweepProcessors = []int{1, 2, 4, 8, 16, 32, 64}

// Format renders the sweep.
func (r SweepResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation F (extension): processor-count sweep for %s\n", r.Workload)
	fmt.Fprintf(&b, "%6s %12s %10s %14s\n", "P", "eff", "speedup", "reordered eff")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%6d %12.3f %10.2f %14.3f\n", p.Processors, p.Efficiency, p.Speedup, p.ReorderedEff)
	}
	return b.String()
}

// CheckShape verifies the sweep's sanity properties: speedup never decreases
// with more processors, efficiency never increases (beyond a small tolerance
// for static-schedule alignment effects), and the reordered solve is never
// less efficient than the natural-order one.
func (r SweepResult) CheckShape() []string {
	var problems []string
	for i := 1; i < len(r.Points); i++ {
		prev, cur := r.Points[i-1], r.Points[i]
		if cur.Speedup+1e-9 < prev.Speedup {
			problems = append(problems, fmt.Sprintf("%s: speedup decreases from P=%d (%.2f) to P=%d (%.2f)",
				r.Workload, prev.Processors, prev.Speedup, cur.Processors, cur.Speedup))
		}
		// Cyclic static schedules can align slightly better at particular
		// processor counts, so a small efficiency rise is tolerated.
		if cur.Efficiency > prev.Efficiency+0.02 {
			problems = append(problems, fmt.Sprintf("%s: efficiency increases from P=%d (%.3f) to P=%d (%.3f)",
				r.Workload, prev.Processors, prev.Efficiency, cur.Processors, cur.Efficiency))
		}
	}
	for _, p := range r.Points {
		if p.ReorderedEff+1e-9 < p.Efficiency && !strings.HasPrefix(r.Workload, "figure4") {
			problems = append(problems, fmt.Sprintf("%s P=%d: reordered efficiency %.3f below natural %.3f",
				r.Workload, p.Processors, p.ReorderedEff, p.Efficiency))
		}
	}
	return problems
}
