package experiments

import (
	"strings"
	"testing"

	"doacross/internal/stencil"
	"doacross/internal/testloop"
)

func TestOverheadAblation(t *testing.T) {
	rows, err := RunOverheadAblation(2000, []int{1, 5}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if !(r.DoallEff > r.ChecksOnlyEff && r.ChecksOnlyEff > r.FullDoacrossEff) {
			t.Errorf("M=%d: overhead layers should strictly reduce efficiency: doall %.3f, checks %.3f, full %.3f",
				r.M, r.DoallEff, r.ChecksOnlyEff, r.FullDoacrossEff)
		}
		if r.DoallEff < 0.95 {
			t.Errorf("M=%d: ideal doall efficiency %.3f should be ~1", r.M, r.DoallEff)
		}
		if r.InspectorShare <= 0 || r.PostprocessShare <= 0 {
			t.Errorf("M=%d: phase shares should be positive", r.M)
		}
	}
	// The overhead floor hurts M=1 more than M=5 (less work to amortize it).
	if rows[0].FullDoacrossEff >= rows[1].FullDoacrossEff {
		t.Errorf("M=1 floor %.3f should be below M=5 floor %.3f", rows[0].FullDoacrossEff, rows[1].FullDoacrossEff)
	}
	if out := FormatOverhead(rows); !strings.Contains(out, "Ablation A") {
		t.Error("FormatOverhead missing title")
	}
}

func TestOrderingAblation(t *testing.T) {
	rows, err := RunOrderingAblation([]stencil.Problem{stencil.FivePoint}, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4 strategies", len(rows))
	}
	var natural, level float64
	for _, r := range rows {
		switch r.Strategy.String() {
		case "natural":
			natural = r.Efficiency
		case "level":
			level = r.Efficiency
		}
		if r.Efficiency <= 0 || r.Efficiency > 1 {
			t.Errorf("%v/%v: implausible efficiency %.3f", r.Problem, r.Strategy, r.Efficiency)
		}
	}
	if level <= natural {
		t.Errorf("level ordering (%.3f) should beat natural order (%.3f) on 5-PT", level, natural)
	}
	if out := FormatOrdering(rows); !strings.Contains(out, "Ablation E") {
		t.Error("FormatOrdering missing title")
	}
}

func TestBlockedAblation(t *testing.T) {
	tc := testloop.Config{N: 4000, M: 1, L: 12}
	rows, err := RunBlockedAblation(tc, []int{125, 500, 2000, 4000}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Larger blocks mean less frequent global synchronization, so efficiency
	// must not decrease, while scratch memory grows.
	for i := 1; i < len(rows); i++ {
		if rows[i].Efficiency+1e-9 < rows[i-1].Efficiency {
			t.Errorf("block %d: efficiency %.3f below smaller block's %.3f",
				rows[i].BlockSize, rows[i].Efficiency, rows[i-1].Efficiency)
		}
		if rows[i].ScratchFraction < rows[i-1].ScratchFraction {
			t.Error("scratch fraction should grow with block size")
		}
	}
	if rows[len(rows)-1].ScratchFraction != 1 {
		t.Error("full-size block should need the full scratch arrays")
	}
	if _, err := RunBlockedAblation(tc, []int{0}, 16); err == nil {
		t.Error("zero block size accepted")
	}
	if _, err := RunBlockedAblation(testloop.Config{N: 0, M: 1, L: 1}, []int{1}, 16); err == nil {
		t.Error("invalid loop config accepted")
	}
	if out := FormatBlocked(rows); !strings.Contains(out, "Ablation B") {
		t.Error("FormatBlocked missing title")
	}
}

func TestLinearAblation(t *testing.T) {
	rows, err := RunLinearAblation(2000, 1, []int{1, 8, 14}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.LinearEff < r.InspectorEff {
			t.Errorf("L=%d: linear-subscript variant (%.3f) should never be slower than the inspector variant (%.3f)",
				r.L, r.LinearEff, r.InspectorEff)
		}
		if r.InspectorPreTime <= 0 {
			t.Errorf("L=%d: inspector variant should spend time preprocessing", r.L)
		}
	}
	if _, err := RunLinearAblation(100, 1, []int{99}, 16); err == nil {
		t.Error("invalid L accepted")
	}
	if out := FormatLinear(rows); !strings.Contains(out, "Ablation C") {
		t.Error("FormatLinear missing title")
	}
}

func TestLiveTestLoopMeasurement(t *testing.T) {
	if testing.Short() {
		t.Skip("live measurement skipped in -short mode")
	}
	res, err := RunLiveTestLoop(testloop.Config{N: 5000, M: 5, L: 1}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.TSeq <= 0 || res.TPar <= 0 {
		t.Fatalf("non-positive times: %+v", res)
	}
	if res.Checks != "results match" {
		t.Fatalf("live doacross produced wrong results: %s", res.Checks)
	}
	if res.String() == "" {
		t.Error("empty live result string")
	}
	if _, err := RunLiveTestLoop(testloop.Config{N: 0, M: 1, L: 1}, 2, 1); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestLiveTestLoopScalesWithHeavyBody(t *testing.T) {
	if testing.Short() {
		t.Skip("live scaling test skipped in -short mode")
	}
	if DefaultLiveWorkers() < 2 {
		t.Skip("needs at least 2 hardware threads")
	}
	if raceEnabled {
		t.Skip("wall-clock scaling is not meaningful under the race detector")
	}
	// With per-term synthetic work restoring the paper's work-to-overhead
	// regime, the dependency-free loop must show real parallel speedup on
	// two workers. The threshold is deliberately lenient (ideal is 2.0).
	res, err := RunLiveTestLoop(testloop.Config{N: 20000, M: 5, L: 1, WorkPerTerm: 400}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Checks != "results match" {
		t.Fatalf("heavy-body doacross produced wrong results: %s", res.Checks)
	}
	if res.Speedup < 1.2 {
		t.Errorf("live doacross speedup %.2f below 1.2 on 2 workers (Tseq=%v Tpar=%v)", res.Speedup, res.TSeq, res.TPar)
	}
}

func TestLiveTrisolveMeasurement(t *testing.T) {
	if testing.Short() {
		t.Skip("live measurement skipped in -short mode")
	}
	for _, variant := range TrisolveVariants {
		res, err := RunLiveTrisolve(stencil.FivePoint, 2, 1, variant)
		if err != nil {
			t.Fatal(err)
		}
		if res.Checks != "results match" {
			t.Fatalf("%v: live solve produced wrong results: %s", variant, res.Checks)
		}
	}
	out := FormatLive([]LiveResult{{Name: "x", Workers: 1}})
	if !strings.Contains(out, "Live (goroutine)") {
		t.Error("FormatLive missing title")
	}
}

func TestCheckClose(t *testing.T) {
	if got := checkClose([]float64{1, 2}, []float64{1, 2}); got != "results match" {
		t.Errorf("checkClose equal = %q", got)
	}
	if got := checkClose([]float64{1}, []float64{1, 2}); got != "LENGTH MISMATCH" {
		t.Errorf("checkClose length = %q", got)
	}
	if got := checkClose([]float64{1, 2}, []float64{1, 3}); !strings.Contains(got, "MISMATCH") {
		t.Errorf("checkClose diff = %q", got)
	}
}

func TestDefaultLiveWorkers(t *testing.T) {
	if DefaultLiveWorkers() < 1 {
		t.Error("DefaultLiveWorkers must be at least 1")
	}
}
