package experiments

import (
	"strings"
	"testing"

	"doacross/internal/doconsider"
	"doacross/internal/stencil"
)

// smallTable1Config keeps unit-test runtime moderate by using the three
// smaller problems; the full five-problem table is exercised by the
// doabench command and the benchmarks.
func smallTable1Config() Table1Config {
	cfg := DefaultTable1Config()
	cfg.Problems = []stencil.Problem{stencil.SPE2, stencil.FivePoint, stencil.NinePoint}
	return cfg
}

func TestTable1DefaultConfig(t *testing.T) {
	cfg := DefaultTable1Config()
	if len(cfg.Problems) != 5 || cfg.Processors != 16 || cfg.Reordering != doconsider.Level {
		t.Errorf("default Table 1 config %+v does not match the paper", cfg)
	}
}

func TestTable1RowsMatchProblemSizes(t *testing.T) {
	res, err := RunTable1(smallTable1Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Equations != row.Problem.Equations() {
			t.Errorf("%v: %d equations, want %d", row.Problem, row.Equations, row.Problem.Equations())
		}
		if row.Levels <= 1 {
			t.Errorf("%v: implausible level count %d", row.Problem, row.Levels)
		}
		if row.NNZ <= row.Equations {
			t.Errorf("%v: implausible nnz %d", row.Problem, row.NNZ)
		}
		if row.WavefrontMs <= 0 || row.WavefrontEff <= 0 {
			t.Errorf("%v: wavefront executor column missing", row.Problem)
		}
		if row.DynamicMs <= 0 || row.DynamicEff <= 0 {
			t.Errorf("%v: dynamic wavefront executor column missing", row.Problem)
		}
		if row.AutoPick != "doacross" && row.AutoPick != "wavefront" && row.AutoPick != "wavefront-dynamic" {
			t.Errorf("%v: implausible auto pick %q", row.Problem, row.AutoPick)
		}
	}
}

func TestTable1ShapeReproduced(t *testing.T) {
	res, err := RunTable1(smallTable1Config())
	if err != nil {
		t.Fatal(err)
	}
	if problems := res.CheckShape(); len(problems) > 0 {
		t.Fatalf("Table 1 shape not reproduced:\n%s", strings.Join(problems, "\n"))
	}
}

func TestTable1ColumnOrdering(t *testing.T) {
	res, err := RunTable1(smallTable1Config())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if !(row.SequentialMs > row.DoacrossMs && row.DoacrossMs > row.ReorderedMs) {
			t.Errorf("%v: expected sequential > doacross > reordered, got %.0f / %.0f / %.0f",
				row.Problem, row.SequentialMs, row.DoacrossMs, row.ReorderedMs)
		}
		if row.ReorderedEff <= row.DoacrossEff {
			t.Errorf("%v: reordering did not improve efficiency (%.2f vs %.2f)", row.Problem, row.ReorderedEff, row.DoacrossEff)
		}
	}
}

func TestTable1ReorderedBand(t *testing.T) {
	res, err := RunTable1(smallTable1Config())
	if err != nil {
		t.Fatal(err)
	}
	_, _, reLo, reHi := res.SpeedupSummary()
	if reLo < 0.55 || reHi > 0.85 {
		t.Errorf("reordered efficiency band %.2f..%.2f outside the accepted 0.55..0.85 (paper 0.63..0.75)", reLo, reHi)
	}
}

func TestTable1Format(t *testing.T) {
	res, err := RunTable1(smallTable1Config())
	if err != nil {
		t.Fatal(err)
	}
	out := res.Format()
	for _, want := range []string{"Table 1", "SPE2", "5-PT", "9-PT", "Rearranged", "Sequential"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q", want)
		}
	}
}

func TestTable1FivePointSequentialScale(t *testing.T) {
	// The ms scale is anchored so the simulated 5-PT sequential time is close
	// to the paper's 192 ms.
	res, err := RunTable1(Table1Config{Problems: []stencil.Problem{stencil.FivePoint}, Processors: 16, Seed: 1, Reordering: doconsider.Level})
	if err != nil {
		t.Fatal(err)
	}
	seq := res.Rows[0].SequentialMs
	if seq < 170 || seq > 215 {
		t.Errorf("5-PT sequential time %.0f ms, want within ~10%% of the paper's 192 ms", seq)
	}
}

func TestSpeedupSummaryEmpty(t *testing.T) {
	var r Table1Result
	a, b, c, d := r.SpeedupSummary()
	if a != 0 || b != 0 || c != 0 || d != 0 {
		t.Error("empty result should summarize to zeros")
	}
}
