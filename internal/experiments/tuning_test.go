package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestCheckTuningClaims pins the claim logic on synthetic rows: a decisive
// row is held to convergence, final-pick and recovery claims, a thin-margin
// row only to the 1.5x near-tie bound, and a row whose run-0 pick ignored the
// mis-seeding fails outright.
func TestCheckTuningClaims(t *testing.T) {
	decisive := TuningRow{
		Name: "chain n=512", Workers: 4, Runs: 30, TruthReps: 3,
		TDoacross: 80 * time.Millisecond, TWavefront: 40 * time.Microsecond,
		BestExecutor: "wavefront", WorstExecutor: "doacross", Margin: 2000,
		MisSeededPick: "doacross", ConvergedAt: 4, Explorations: 3,
		FinalPick: "wavefront", TunedEMANs: 45_000, BestEMANs: 45_000,
		RecoverySpeedup: 1777,
	}
	if problems := CheckTuning([]TuningRow{decisive}); len(problems) != 0 {
		t.Fatalf("decisive recovery flagged: %v", problems)
	}

	never := decisive
	never.ConvergedAt, never.FinalPick = -1, "doacross"
	late := decisive
	late.ConvergedAt = 20
	wrongArm := decisive
	wrongArm.FinalPick = "doacross"
	thinRecovery := decisive
	thinRecovery.RecoverySpeedup = 1.2
	for name, row := range map[string]TuningRow{
		"never converged": never, "late convergence": late,
		"wrong final pick": wrongArm, "thin recovery": thinRecovery,
	} {
		if problems := CheckTuning([]TuningRow{row}); len(problems) == 0 {
			t.Errorf("%s: no violation reported for %+v", name, row)
		}
	}

	nearTie := TuningRow{
		Name: "trisolve SPE2", Workers: 2, Runs: 30,
		TDoacross: 160 * time.Microsecond, TWavefront: 180 * time.Microsecond,
		BestExecutor: "doacross", WorstExecutor: "wavefront", Margin: 1.1,
		MisSeededPick: "wavefront", ConvergedAt: -1,
		FinalPick: "wavefront", TunedEMANs: 181_000, BestEMANs: 158_000,
	}
	if problems := CheckTuning([]TuningRow{nearTie}); len(problems) != 0 {
		t.Fatalf("near-tie second place flagged: %v", problems)
	}
	stuck := nearTie
	stuck.TunedEMANs = 10 * nearTie.BestEMANs
	if problems := CheckTuning([]TuningRow{stuck}); len(problems) == 0 {
		t.Errorf("catastrophic near-tie pick not flagged: %+v", stuck)
	}

	unmisled := decisive
	unmisled.MisSeededPick = "wavefront"
	if problems := CheckTuning([]TuningRow{unmisled}); len(problems) == 0 {
		t.Errorf("ignored mis-seeding not flagged: %+v", unmisled)
	}
}

// TestTuningBenchRecords pins the JSON mapping: the converged run is 1-based
// with 0 reserved for "never", and the speedup is the misled-counterfactual
// recovery.
func TestTuningBenchRecords(t *testing.T) {
	rows := []TuningRow{
		{Name: "chain n=512", Workers: 4, TDoacross: 80 * time.Millisecond,
			TWavefront: 40 * time.Microsecond, WorstExecutor: "doacross",
			FinalPick: "wavefront", ConvergedAt: 4, TunedEMANs: 45_000, RecoverySpeedup: 1777},
		{Name: "trisolve SPE2", Workers: 2, TDoacross: 160 * time.Microsecond,
			TWavefront: 180 * time.Microsecond, WorstExecutor: "wavefront",
			FinalPick: "doacross", ConvergedAt: -1, TunedEMANs: 161_000},
	}
	records := TuningBenchRecords(rows)
	if len(records) != 2 {
		t.Fatalf("got %d records, want 2", len(records))
	}
	if records[0].Experiment != "tuning" || records[0].ConvergedAtRun != 5 {
		t.Fatalf("converged record: %+v", records[0])
	}
	if records[0].SeqNsPerOp != 80_000_000 || records[0].Speedup != 1777 {
		t.Fatalf("misled counterfactual mapping: %+v", records[0])
	}
	if records[1].ConvergedAtRun != 0 {
		t.Fatalf("never-converged record must omit the run index: %+v", records[1])
	}
	if records[1].SeqNsPerOp != 180_000 {
		t.Fatalf("worst-executor truth mapping: %+v", records[1])
	}
}

// TestRunTuningExperimentSmoke is the live smoke: a small-budget run must
// produce both workload rows with measured truth, a mis-seeded first pick and
// a formatted table, whatever this host's executor ordering is.
func TestRunTuningExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("live measurement skipped in -short mode")
	}
	rows, err := RunTuningExperiment(2, 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.TDoacross <= 0 || r.TWavefront <= 0 {
			t.Fatalf("%s: missing ground truth: %+v", r.Name, r)
		}
		if r.MisSeededPick != r.WorstExecutor {
			t.Errorf("%s: run 0 picked %q, want the mis-seeded %q", r.Name, r.MisSeededPick, r.WorstExecutor)
		}
		if r.FinalPick == "" || r.BestEMANs <= 0 {
			t.Fatalf("%s: no settled measurement: %+v", r.Name, r)
		}
	}
	out := FormatTuning(rows)
	if !strings.Contains(out, "chain n=512") || !strings.Contains(out, "trisolve SPE2") {
		t.Errorf("format output missing workloads:\n%s", out)
	}
}
