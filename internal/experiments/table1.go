package experiments

import (
	"fmt"
	"strings"

	"doacross/internal/depgraph"
	"doacross/internal/doconsider"
	"doacross/internal/machine"
	"doacross/internal/sched"
	"doacross/internal/stencil"
	"doacross/internal/trisolve"
)

// Table1Config describes the Section 3.2 sparse triangular solve experiment.
type Table1Config struct {
	// Problems lists the test systems (the paper uses SPE2, SPE5, 5-PT,
	// 7-PT, 9-PT).
	Problems []stencil.Problem
	// Processors is the simulated machine size (the paper uses 16).
	Processors int
	// Seed controls the synthetic perturbation of the SPE operators.
	Seed int64
	// Reordering is the doconsider strategy used for the "Iterations
	// Rearranged" column (the paper's doconsider transformation; Level by
	// default).
	Reordering doconsider.Strategy
}

// DefaultTable1Config returns the paper's configuration.
func DefaultTable1Config() Table1Config {
	return Table1Config{
		Problems:   stencil.Problems,
		Processors: PaperProcessors,
		Seed:       1,
		Reordering: doconsider.Level,
	}
}

// Table1Row reproduces one row of the paper's Table 1, plus the efficiency
// columns the paper quotes in the text.
type Table1Row struct {
	Problem   stencil.Problem
	Equations int
	NNZ       int
	Levels    int

	// Simulated times in the table's "ms" scale (see SimulatedMs).
	DoacrossMs   float64
	ReorderedMs  float64
	SequentialMs float64

	// Parallel efficiencies T_seq / (p * T_par).
	DoacrossEff  float64
	ReorderedEff float64

	// LevelScheduledMs is the extra baseline (wavefront doall per level).
	LevelScheduledMs float64
}

// Table1Result holds all rows.
type Table1Result struct {
	Config Table1Config
	Rows   []Table1Row
}

// RunTable1 regenerates Table 1 on the machine simulator: for each test
// problem it builds the operator, factors it with ILU(0), takes the unit
// lower triangular factor, and simulates the forward substitution with the
// plain preprocessed doacross (natural order), with the doconsider-reordered
// doacross, and sequentially.
func RunTable1(cfg Table1Config) (Table1Result, error) {
	if cfg.Processors < 1 {
		cfg.Processors = PaperProcessors
	}
	if len(cfg.Problems) == 0 {
		cfg.Problems = stencil.Problems
	}
	res := Table1Result{Config: cfg}
	for _, prob := range cfg.Problems {
		row, err := runTable1Row(prob, cfg)
		if err != nil {
			return Table1Result{}, fmt.Errorf("table1 %v: %w", prob, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func runTable1Row(prob stencil.Problem, cfg Table1Config) (Table1Row, error) {
	l, _, err := stencil.LowerFactor(prob, cfg.Seed)
	if err != nil {
		return Table1Row{}, err
	}
	g := trisolve.Graph(l)
	_, byLevel := g.Levels()
	cm := TrisolveCostModel(l)
	acc := depgraph.Access{
		N:      l.N,
		Writes: func(i int) []int { return []int{i} },
		Reads:  func(i int) []int { return l.Col[l.RowPtr[i]:l.RowPtr[i+1]] },
	}
	readPreds := machine.ReadPredsFromAccess(acc)

	// Plain preprocessed doacross: natural order, cyclic self-scheduling.
	plain, err := machine.Simulate(g, machine.Config{
		Processors: cfg.Processors,
		Policy:     sched.Cyclic,
		ReadPreds:  readPreds,
	}, cm)
	if err != nil {
		return Table1Row{}, err
	}

	// Doconsider-reordered preprocessed doacross.
	plan := doconsider.NewPlan(g, cfg.Reordering)
	reordered, err := machine.Simulate(g, machine.Config{
		Processors: cfg.Processors,
		Policy:     sched.Cyclic,
		Order:      plan.Order,
		ReadPreds:  readPreds,
	}, cm)
	if err != nil {
		return Table1Row{}, err
	}

	// Level-scheduled baseline: wavefront order, no per-read checks or
	// doacross scratch phases, but a barrier after every level. The barrier
	// is modelled by simulating each level as an independent doall and
	// summing the per-level elapsed times.
	levelMs := 0.0
	for _, lvl := range byLevel {
		maxPer := 0.0
		total := 0.0
		for _, it := range lvl {
			w := cm.IterWork(it)
			total += w
			if w > maxPer {
				maxPer = w
			}
		}
		per := total / float64(cfg.Processors)
		if maxPer > per {
			per = maxPer
		}
		levelMs += per
	}

	return Table1Row{
		Problem:          prob,
		Equations:        l.N,
		NNZ:              l.NNZ() + l.N,
		Levels:           len(byLevel),
		DoacrossMs:       SimulatedMs(plain.TPar),
		ReorderedMs:      SimulatedMs(reordered.TPar),
		SequentialMs:     SimulatedMs(plain.TSeq),
		DoacrossEff:      plain.Efficiency,
		ReorderedEff:     reordered.Efficiency,
		LevelScheduledMs: SimulatedMs(levelMs),
	}, nil
}

// Format renders the rows in the layout of the paper's Table 1, with the
// efficiency columns appended.
func (r Table1Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: preprocessed doacross times for sparse triangular matrices (P=%d, simulated ms)\n", r.Config.Processors)
	fmt.Fprintf(&b, "%-8s %9s %8s %8s %12s %12s %12s %9s %9s\n",
		"Problem", "Equations", "NNZ", "Levels", "Doacross", "Rearranged", "Sequential", "Eff", "EffRear")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %9d %8d %8d %12.0f %12.0f %12.0f %9.2f %9.2f\n",
			row.Problem, row.Equations, row.NNZ, row.Levels,
			row.DoacrossMs, row.ReorderedMs, row.SequentialMs,
			row.DoacrossEff, row.ReorderedEff)
	}
	return b.String()
}

// CheckShape verifies the qualitative claims of Table 1 and the surrounding
// text, returning violations (empty means reproduced):
//
//  1. for every matrix, sequential time > plain doacross time > reordered
//     doacross time (the column ordering of the paper's table),
//  2. every plain doacross run achieves real speedup (efficiency above 2/P)
//     but stays below the reordered run,
//  3. reordered efficiencies fall in a high, tightly clustered band (the
//     paper reports 0.63–0.75; we accept 0.55–0.85 with a spread below
//     0.25),
//  4. averaged over the matrices, reordering buys a substantial efficiency
//     gain (at least +0.10, the paper's gain is ~+0.3).
//
// The paper's absolute plain-doacross band (0.32–0.46) is not checked
// per-row: it depends on the (unpublished) unknown ordering of the original
// reservoir matrices and on Multimax bus effects; EXPERIMENTS.md records the
// per-matrix values we obtain with natural row-major ordering.
func (r Table1Result) CheckShape() []string {
	var problems []string
	minSpeedupEff := 2.0 / float64(r.Config.Processors)
	gapSum := 0.0
	reLo, reHi := 1.0, 0.0
	for _, row := range r.Rows {
		if !(row.SequentialMs > row.DoacrossMs) {
			problems = append(problems, fmt.Sprintf("%v: doacross (%.0f ms) not faster than sequential (%.0f ms)", row.Problem, row.DoacrossMs, row.SequentialMs))
		}
		if !(row.DoacrossMs > row.ReorderedMs) {
			problems = append(problems, fmt.Sprintf("%v: reordered doacross (%.0f ms) not faster than plain doacross (%.0f ms)", row.Problem, row.ReorderedMs, row.DoacrossMs))
		}
		if row.ReorderedEff <= row.DoacrossEff {
			problems = append(problems, fmt.Sprintf("%v: reordered efficiency %.2f not above plain %.2f", row.Problem, row.ReorderedEff, row.DoacrossEff))
		}
		if row.DoacrossEff < minSpeedupEff {
			problems = append(problems, fmt.Sprintf("%v: plain doacross efficiency %.2f shows no real speedup", row.Problem, row.DoacrossEff))
		}
		if row.ReorderedEff < 0.55 || row.ReorderedEff > 0.85 {
			problems = append(problems, fmt.Sprintf("%v: reordered efficiency %.2f outside the paper's high band (0.63-0.75 +/- slack)", row.Problem, row.ReorderedEff))
		}
		gapSum += row.ReorderedEff - row.DoacrossEff
		if row.ReorderedEff < reLo {
			reLo = row.ReorderedEff
		}
		if row.ReorderedEff > reHi {
			reHi = row.ReorderedEff
		}
	}
	if len(r.Rows) > 0 {
		if gap := gapSum / float64(len(r.Rows)); gap < 0.10 {
			problems = append(problems, fmt.Sprintf("mean efficiency gain from reordering is only %.2f (paper ~0.3)", gap))
		}
		if reHi-reLo > 0.25 {
			problems = append(problems, fmt.Sprintf("reordered efficiencies spread too widely (%.2f..%.2f)", reLo, reHi))
		}
	}
	return problems
}

// SpeedupSummary returns, for reporting, the min and max efficiency of both
// columns across all rows.
func (r Table1Result) SpeedupSummary() (plainLo, plainHi, reLo, reHi float64) {
	if len(r.Rows) == 0 {
		return 0, 0, 0, 0
	}
	plainLo, plainHi = r.Rows[0].DoacrossEff, r.Rows[0].DoacrossEff
	reLo, reHi = r.Rows[0].ReorderedEff, r.Rows[0].ReorderedEff
	for _, row := range r.Rows[1:] {
		if row.DoacrossEff < plainLo {
			plainLo = row.DoacrossEff
		}
		if row.DoacrossEff > plainHi {
			plainHi = row.DoacrossEff
		}
		if row.ReorderedEff < reLo {
			reLo = row.ReorderedEff
		}
		if row.ReorderedEff > reHi {
			reHi = row.ReorderedEff
		}
	}
	return plainLo, plainHi, reLo, reHi
}
