package experiments

import (
	"fmt"
	"strings"

	"doacross"
	"doacross/internal/depgraph"
	"doacross/internal/doconsider"
	"doacross/internal/machine"
	"doacross/internal/sched"
	"doacross/internal/sparse"
	"doacross/internal/stencil"
	"doacross/internal/trisolve"
)

// Table1Config describes the Section 3.2 sparse triangular solve experiment.
type Table1Config struct {
	// Problems lists the test systems (the paper uses SPE2, SPE5, 5-PT,
	// 7-PT, 9-PT).
	Problems []stencil.Problem
	// Processors is the simulated machine size (the paper uses 16).
	Processors int
	// Seed controls the synthetic perturbation of the SPE operators.
	Seed int64
	// Reordering is the doconsider strategy used for the "Iterations
	// Rearranged" column (the paper's doconsider transformation; Level by
	// default).
	Reordering doconsider.Strategy
}

// DefaultTable1Config returns the paper's configuration.
func DefaultTable1Config() Table1Config {
	return Table1Config{
		Problems:   stencil.Problems,
		Processors: PaperProcessors,
		Seed:       1,
		Reordering: doconsider.Level,
	}
}

// Table1Row reproduces one row of the paper's Table 1, plus the efficiency
// columns the paper quotes in the text.
type Table1Row struct {
	Problem   stencil.Problem
	Equations int
	NNZ       int
	Levels    int

	// Simulated times in the table's "ms" scale (see SimulatedMs).
	DoacrossMs   float64
	ReorderedMs  float64
	SequentialMs float64

	// Parallel efficiencies T_seq / (p * T_par).
	DoacrossEff  float64
	ReorderedEff float64

	// WavefrontMs and WavefrontEff are the pre-scheduled wavefront executor
	// simulated under the same cost model (barrier-separated doall per
	// level, no flag checks; see machine.SimulateWavefront).
	WavefrontMs  float64
	WavefrontEff float64
	// DynamicMs and DynamicEff are the dynamic within-level wavefront
	// (self-scheduled levels with per-chunk claim costs; see
	// machine.SimulateDynamicWavefront). It differs from the static
	// wavefront exactly where the factor's row occupancy varies inside a
	// wavefront.
	DynamicMs  float64
	DynamicEff float64
	// AutoPick is the executor the calibrated three-way Auto cost model
	// selects for this system at the table's processor count, using the
	// simulator-side coefficients (TrisolveAutoCosts).
	AutoPick string
}

// Table1Result holds all rows.
type Table1Result struct {
	Config Table1Config
	Rows   []Table1Row
}

// RunTable1 regenerates Table 1 on the machine simulator: for each test
// problem it builds the operator, factors it with ILU(0), takes the unit
// lower triangular factor, and simulates the forward substitution with the
// plain preprocessed doacross (natural order), with the doconsider-reordered
// doacross, and sequentially.
func RunTable1(cfg Table1Config) (Table1Result, error) {
	if cfg.Processors < 1 {
		cfg.Processors = PaperProcessors
	}
	if len(cfg.Problems) == 0 {
		cfg.Problems = stencil.Problems
	}
	res := Table1Result{Config: cfg}
	for _, prob := range cfg.Problems {
		row, err := runTable1Row(prob, cfg)
		if err != nil {
			return Table1Result{}, fmt.Errorf("table1 %v: %w", prob, err)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func runTable1Row(prob stencil.Problem, cfg Table1Config) (Table1Row, error) {
	l, _, err := stencil.LowerFactor(prob, cfg.Seed)
	if err != nil {
		return Table1Row{}, err
	}
	g := trisolve.Graph(l)
	_, byLevel := g.Levels()
	cm := TrisolveCostModel(l)
	acc := depgraph.Access{
		N:      l.N,
		Writes: func(i int) []int { return []int{i} },
		Reads:  func(i int) []int { return l.Col[l.RowPtr[i]:l.RowPtr[i+1]] },
	}
	readPreds := machine.ReadPredsFromAccess(acc)

	// Plain preprocessed doacross: natural order, cyclic self-scheduling.
	plain, err := machine.Simulate(g, machine.Config{
		Processors: cfg.Processors,
		Policy:     sched.Cyclic,
		ReadPreds:  readPreds,
	}, cm)
	if err != nil {
		return Table1Row{}, err
	}

	// Doconsider-reordered preprocessed doacross.
	plan := doconsider.NewPlan(g, cfg.Reordering)
	reordered, err := machine.Simulate(g, machine.Config{
		Processors: cfg.Processors,
		Policy:     sched.Cyclic,
		Order:      plan.Order,
		ReadPreds:  readPreds,
	}, cm)
	if err != nil {
		return Table1Row{}, err
	}

	// Pre-scheduled wavefront executor: barrier-separated doall per level
	// under the same cost model, preprocessing charged as the parallel
	// inspector.
	wavefront, err := machine.SimulateWavefront(g, machine.Config{
		Processors: cfg.Processors,
		Policy:     sched.Cyclic,
	}, cm, TrisolveWavefrontCosts())
	if err != nil {
		return Table1Row{}, err
	}

	// Dynamic within-level wavefront: the same levels, self-scheduled.
	dynamic, err := machine.SimulateDynamicWavefront(g, machine.Config{
		Processors: cfg.Processors,
	}, cm, TrisolveWavefrontCosts())
	if err != nil {
		return Table1Row{}, err
	}

	return Table1Row{
		Problem:      prob,
		Equations:    l.N,
		NNZ:          l.NNZ() + l.N,
		Levels:       len(byLevel),
		DoacrossMs:   SimulatedMs(plain.TPar),
		ReorderedMs:  SimulatedMs(reordered.TPar),
		SequentialMs: SimulatedMs(plain.TSeq),
		DoacrossEff:  plain.Efficiency,
		ReorderedEff: reordered.Efficiency,
		WavefrontMs:  SimulatedMs(wavefront.TPar),
		WavefrontEff: wavefront.Efficiency,
		DynamicMs:    SimulatedMs(dynamic.TPar),
		DynamicEff:   dynamic.Efficiency,
		AutoPick:     autoPickTrisolve(l, g, byLevel, cfg.Processors),
	}, nil
}

// autoPickTrisolve runs the Auto selection's calibrated cost model on the
// solve's dependency structure with the simulator-side coefficients,
// returning the executor it would pick at the given processor count.
func autoPickTrisolve(l *sparse.Triangular, g *depgraph.Graph, byLevel [][]int, procs int) string {
	return autoPickFromStats(inspectStatsFromLevels(g, byLevel, procs), TrisolveAutoCosts(l), procs)
}

// autoPickFromStats mirrors the live runtime's three-way Auto selection on
// simulator-side statistics and coefficients: a single barrier-free level
// always pre-schedules statically; otherwise the cheapest predicted strategy
// wins, with the dynamic considered only when Predict prices it (non-zero
// ClaimNs).
func autoPickFromStats(st doacross.InspectStats, costs doacross.AutoCosts, procs int) string {
	if st.Levels <= 1 {
		return machine.ModelWavefront.String()
	}
	tda, twf, tdyn := costs.Predict(st, procs)
	pick, best := machine.ModelDoacross, tda
	if twf < best {
		pick, best = machine.ModelWavefront, twf
	}
	if tdyn > 0 && tdyn < best {
		pick = machine.ModelWavefrontDynamic
	}
	return pick.String()
}

// inspectStatsFromLevels builds the Auto cost model's input from a
// simulator-side level decomposition, mirroring what the live inspector
// reports: schedule rounds, dynamic claim counts and the static schedule's
// read imbalance are summed over levels with the worker count clamped to the
// widest level, exactly like the live wavefront plan. The static assignment
// is replayed cyclically (the policy the simulated experiments run) and
// in-degree stands in for an iteration's read count, as in the live
// inspector.
func inspectStatsFromLevels(g *depgraph.Graph, byLevel [][]int, procs int) doacross.InspectStats {
	maxWidth := 0
	for _, lvl := range byLevel {
		if len(lvl) > maxWidth {
			maxWidth = len(lvl)
		}
	}
	p := procs
	if p > maxWidth {
		p = maxWidth
	}
	if p < 1 {
		p = 1
	}
	st := doacross.InspectStats{
		Iterations:      g.N,
		Edges:           g.Edges,
		Levels:          len(byLevel),
		MaxLevelWidth:   maxWidth,
		CriticalPathLen: len(byLevel),
	}
	if st.Levels > 0 {
		st.MeanLevelWidth = float64(g.N) / float64(st.Levels)
	}
	for _, lvl := range byLevel {
		lvl := lvl
		st.ScheduleRounds += (len(lvl) + p - 1) / p
		st.DynamicClaims += sched.DynamicClaims(len(lvl), wfChunk, p)
		st.ReadImbalance += float64(sched.LevelImbalance(len(lvl), sched.Cyclic, p, func(k int) int {
			return len(g.Preds[lvl[k]])
		}))
	}
	st.StallWeight = g.StallWeight(procs)
	return st
}

// Format renders the rows in the layout of the paper's Table 1, with the
// efficiency columns and the doacross-vs-wavefront executor comparison
// appended.
func (r Table1Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: preprocessed doacross times for sparse triangular matrices (P=%d, simulated ms)\n", r.Config.Processors)
	fmt.Fprintf(&b, "%-8s %9s %8s %8s %12s %12s %12s %12s %12s %9s %9s %9s %9s %-9s\n",
		"Problem", "Equations", "NNZ", "Levels", "Doacross", "Rearranged", "Wavefront", "WfDynamic", "Sequential", "Eff", "EffRear", "EffWf", "EffDyn", "Auto")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %9d %8d %8d %12.0f %12.0f %12.0f %12.0f %12.0f %9.2f %9.2f %9.2f %9.2f %-9s\n",
			row.Problem, row.Equations, row.NNZ, row.Levels,
			row.DoacrossMs, row.ReorderedMs, row.WavefrontMs, row.DynamicMs, row.SequentialMs,
			row.DoacrossEff, row.ReorderedEff, row.WavefrontEff, row.DynamicEff, row.AutoPick)
	}
	return b.String()
}

// CheckShape verifies the qualitative claims of Table 1 and the surrounding
// text, returning violations (empty means reproduced):
//
//  1. for every matrix, sequential time > plain doacross time > reordered
//     doacross time (the column ordering of the paper's table),
//  2. every plain doacross run achieves real speedup (efficiency above 2/P)
//     but stays below the reordered run,
//  3. reordered efficiencies fall in a high, tightly clustered band (the
//     paper reports 0.63–0.75; we accept 0.55–0.85 with a spread below
//     0.25),
//  4. averaged over the matrices, reordering buys a substantial efficiency
//     gain (at least +0.10, the paper's gain is ~+0.3),
//  5. the pre-scheduled wavefront rescues every system the natural-order
//     doacross handles poorly: wherever the plain doacross efficiency falls
//     below 0.5, the wavefront beats it (and both wavefront executors
//     always achieve real speedup themselves),
//  6. wherever one simulated executor is at least twice as fast as both
//     others, the calibrated three-way Auto cost model picks the winner
//     (closer calls may go either way — the model sees only aggregate
//     statistics, not the per-level cost variance the simulator replays).
//
// The paper's absolute plain-doacross band (0.32–0.46) is not checked
// per-row: it depends on the (unpublished) unknown ordering of the original
// reservoir matrices and on Multimax bus effects; EXPERIMENTS.md records the
// per-matrix values we obtain with natural row-major ordering.
func (r Table1Result) CheckShape() []string {
	var problems []string
	minSpeedupEff := 2.0 / float64(r.Config.Processors)
	gapSum := 0.0
	reLo, reHi := 1.0, 0.0
	for _, row := range r.Rows {
		if !(row.SequentialMs > row.DoacrossMs) {
			problems = append(problems, fmt.Sprintf("%v: doacross (%.0f ms) not faster than sequential (%.0f ms)", row.Problem, row.DoacrossMs, row.SequentialMs))
		}
		if !(row.DoacrossMs > row.ReorderedMs) {
			problems = append(problems, fmt.Sprintf("%v: reordered doacross (%.0f ms) not faster than plain doacross (%.0f ms)", row.Problem, row.ReorderedMs, row.DoacrossMs))
		}
		if row.ReorderedEff <= row.DoacrossEff {
			problems = append(problems, fmt.Sprintf("%v: reordered efficiency %.2f not above plain %.2f", row.Problem, row.ReorderedEff, row.DoacrossEff))
		}
		if row.DoacrossEff < minSpeedupEff {
			problems = append(problems, fmt.Sprintf("%v: plain doacross efficiency %.2f shows no real speedup", row.Problem, row.DoacrossEff))
		}
		if row.ReorderedEff < 0.55 || row.ReorderedEff > 0.85 {
			problems = append(problems, fmt.Sprintf("%v: reordered efficiency %.2f outside the paper's high band (0.63-0.75 +/- slack)", row.Problem, row.ReorderedEff))
		}
		if row.DoacrossEff < 0.5 && !(row.WavefrontEff > row.DoacrossEff) {
			problems = append(problems, fmt.Sprintf("%v: wavefront efficiency %.2f does not rescue the poor plain doacross %.2f", row.Problem, row.WavefrontEff, row.DoacrossEff))
		}
		if row.WavefrontEff < minSpeedupEff {
			problems = append(problems, fmt.Sprintf("%v: wavefront efficiency %.2f shows no real speedup", row.Problem, row.WavefrontEff))
		}
		if row.DynamicEff < minSpeedupEff {
			problems = append(problems, fmt.Sprintf("%v: dynamic wavefront efficiency %.2f shows no real speedup", row.Problem, row.DynamicEff))
		}
		if row.WavefrontMs > 0 && row.DoacrossMs > 0 && row.DynamicMs > 0 {
			simWinner, best, second := machine.ModelDoacross.String(), row.DoacrossMs, row.WavefrontMs
			if second < best {
				simWinner, best, second = machine.ModelWavefront.String(), second, best
			}
			if row.DynamicMs < best {
				simWinner, best, second = machine.ModelWavefrontDynamic.String(), row.DynamicMs, best
			} else if row.DynamicMs < second {
				second = row.DynamicMs
			}
			if second >= 2*best && row.AutoPick != simWinner {
				problems = append(problems, fmt.Sprintf("%v: auto picked %s but the simulation clearly favors %s (%.0f/%.0f/%.0f ms)",
					row.Problem, row.AutoPick, simWinner, row.DoacrossMs, row.WavefrontMs, row.DynamicMs))
			}
		}
		gapSum += row.ReorderedEff - row.DoacrossEff
		if row.ReorderedEff < reLo {
			reLo = row.ReorderedEff
		}
		if row.ReorderedEff > reHi {
			reHi = row.ReorderedEff
		}
	}
	if len(r.Rows) > 0 {
		if gap := gapSum / float64(len(r.Rows)); gap < 0.10 {
			problems = append(problems, fmt.Sprintf("mean efficiency gain from reordering is only %.2f (paper ~0.3)", gap))
		}
		if reHi-reLo > 0.25 {
			problems = append(problems, fmt.Sprintf("reordered efficiencies spread too widely (%.2f..%.2f)", reLo, reHi))
		}
	}
	return problems
}

// SpeedupSummary returns, for reporting, the min and max efficiency of both
// columns across all rows.
func (r Table1Result) SpeedupSummary() (plainLo, plainHi, reLo, reHi float64) {
	if len(r.Rows) == 0 {
		return 0, 0, 0, 0
	}
	plainLo, plainHi = r.Rows[0].DoacrossEff, r.Rows[0].DoacrossEff
	reLo, reHi = r.Rows[0].ReorderedEff, r.Rows[0].ReorderedEff
	for _, row := range r.Rows[1:] {
		if row.DoacrossEff < plainLo {
			plainLo = row.DoacrossEff
		}
		if row.DoacrossEff > plainHi {
			plainHi = row.DoacrossEff
		}
		if row.ReorderedEff < reLo {
			reLo = row.ReorderedEff
		}
		if row.ReorderedEff > reHi {
			reHi = row.ReorderedEff
		}
	}
	return plainLo, plainHi, reLo, reHi
}
