package experiments

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"doacross"
	"doacross/internal/krylov"
	"doacross/internal/sparse"
	"doacross/internal/stencil"
	"doacross/internal/testloop"
	"doacross/internal/trace"
)

// LiveResult is one live (goroutine) measurement on the host machine: the
// wall-clock sequential and parallel times of a workload and the resulting
// speedup and efficiency. Live results validate that the runtime really runs
// and really scales on the host; the paper-scale (16-processor) numbers come
// from the machine simulator.
type LiveResult struct {
	Name       string
	Workers    int
	TSeq       time.Duration
	TPar       time.Duration
	Speedup    float64
	Efficiency float64
	Checks     string // result-correctness note
	// Executor names the execution strategy of the parallel run ("doacross",
	// "wavefront"), and WaitPolls its aggregate busy-wait polls, both taken
	// from the last run's report (empty/zero for workloads that bypass the
	// preprocessed runtime).
	Executor  string
	WaitPolls int64
}

// String renders the measurement.
func (r LiveResult) String() string {
	return fmt.Sprintf("%-30s P=%-2d Tseq=%-12v Tpar=%-12v speedup=%.2f eff=%.2f %s",
		r.Name, r.Workers, r.TSeq, r.TPar, r.Speedup, r.Efficiency, r.Checks)
}

// DefaultLiveWorkers returns a sensible worker count for live measurements on
// the host (GOMAXPROCS).
func DefaultLiveWorkers() int { return runtime.GOMAXPROCS(0) }

// liveSolverOptions is the facade option set shared by the live doacross
// measurements: dynamic self-scheduling with a yielding spin wait.
func liveSolverOptions(workers, chunk int) []doacross.Option {
	return []doacross.Option{
		doacross.WithWorkers(workers),
		doacross.WithPolicy(doacross.Dynamic),
		doacross.WithChunk(chunk),
		doacross.WithWaitStrategy(doacross.WaitSpinYield),
	}
}

// RunLiveTestLoop measures the live preprocessed doacross on the Figure 4
// test loop configuration. repeat > 1 reports the best of several runs.
func RunLiveTestLoop(tc testloop.Config, workers, repeat int) (LiveResult, error) {
	if err := tc.Validate(); err != nil {
		return LiveResult{}, err
	}
	l := tc.Loop()
	base := tc.InitialData()

	seqData := append([]float64(nil), base...)
	var seqErr error
	seqSample := trace.Measure(repeat, func() {
		copy(seqData, base)
		if err := doacross.RunSequential(l, seqData); err != nil {
			seqErr = err
		}
	})
	if seqErr != nil {
		return LiveResult{}, seqErr
	}

	rt, err := doacross.New(l.Data, liveSolverOptions(workers, 64)...)
	if err != nil {
		return LiveResult{}, err
	}
	defer rt.Close()
	ctx := context.Background()
	parData := append([]float64(nil), base...)
	var runErr error
	parSample := trace.Measure(repeat, func() {
		copy(parData, base)
		if _, err := rt.Run(ctx, l, parData); err != nil {
			runErr = err
		}
	})
	if runErr != nil {
		return LiveResult{}, runErr
	}

	name := fmt.Sprintf("figure4 N=%d M=%d L=%d", tc.N, tc.M, tc.L)
	if tc.WorkPerTerm > 0 {
		name += fmt.Sprintf(" work=%d", tc.WorkPerTerm)
	}
	res := LiveResult{
		Name:    name,
		Workers: workers,
		TSeq:    seqSample.Min(),
		TPar:    parSample.Min(),
	}
	res.Speedup = trace.Speedup(res.TSeq, res.TPar)
	res.Efficiency = trace.Efficiency(res.TSeq, res.TPar, workers)
	res.Checks = checkClose(seqData, parData)
	return res, nil
}

// TrisolveVariant selects which triangular-solve configuration a live
// measurement runs; together the variants sweep both execution strategies
// (and the reordering) over the paper's test problems.
type TrisolveVariant int

const (
	// TrisolvePlain is the natural-order busy-wait doacross.
	TrisolvePlain TrisolveVariant = iota
	// TrisolveReordered is the doacross with doconsider-reordered iterations.
	TrisolveReordered
	// TrisolveWavefront is the pre-scheduled wavefront executor with its
	// schedule cache.
	TrisolveWavefront
	// TrisolveAuto lets the inspection pick the executor.
	TrisolveAuto
	// TrisolveWavefrontDynamic is the wavefront executor with dynamic
	// within-level self-scheduling.
	TrisolveWavefrontDynamic
)

// String returns the variant's short name as used in result rows.
func (v TrisolveVariant) String() string {
	switch v {
	case TrisolvePlain:
		return "doacross"
	case TrisolveReordered:
		return "reordered"
	case TrisolveWavefront:
		return "wavefront"
	case TrisolveAuto:
		return "auto"
	case TrisolveWavefrontDynamic:
		return "wavefront-dynamic"
	default:
		return "unknown"
	}
}

// TrisolveVariants lists every live triangular-solve configuration, in
// reporting order.
var TrisolveVariants = []TrisolveVariant{TrisolvePlain, TrisolveReordered, TrisolveWavefront, TrisolveWavefrontDynamic, TrisolveAuto}

// RunLiveTrisolve measures one live triangular-solve variant on one of the
// paper's test problems.
func RunLiveTrisolve(prob stencil.Problem, workers, repeat int, variant TrisolveVariant) (LiveResult, error) {
	l, _, err := stencil.LowerFactor(prob, 1)
	if err != nil {
		return LiveResult{}, err
	}
	rhs := stencil.RHS(l.N, 7)

	var seqOut []float64
	seqSample := trace.Measure(repeat, func() {
		seqOut = doacross.SolveSequential(l, rhs)
	})

	// One reusable solver serves every repetition: the worker pool, scratch
	// arrays, any doconsider plan and the wavefront schedule cache are built
	// once, which is how an iterative driver would use the doacross.
	opts := liveSolverOptions(workers, 32)
	var solver *doacross.Solver
	var err2 error
	switch variant {
	case TrisolveReordered:
		solver, err2 = doacross.NewReorderedSolver(l, doacross.ReorderLevel, opts...)
	case TrisolveWavefront:
		solver, err2 = doacross.NewSolver(l, append(opts, doacross.WithExecutor(doacross.Wavefront))...)
	case TrisolveWavefrontDynamic:
		solver, err2 = doacross.NewSolver(l, append(opts, doacross.WithExecutor(doacross.WavefrontDynamic))...)
	case TrisolveAuto:
		solver, err2 = doacross.NewSolver(l, append(opts, doacross.WithExecutor(doacross.Auto))...)
	default:
		solver, err2 = doacross.NewSolver(l, opts...)
	}
	if err2 != nil {
		return LiveResult{}, err2
	}
	defer solver.Close()
	parOut := make([]float64, l.N)
	var runErr error
	var lastRep doacross.Report
	parSample := trace.Measure(repeat, func() {
		rep, _, e := solverSolve(solver, rhs, parOut)
		if e != nil {
			runErr = e
		}
		lastRep = rep
	})
	if runErr != nil {
		return LiveResult{}, runErr
	}

	res := LiveResult{
		Name:      fmt.Sprintf("trisolve %v %v", prob, variant),
		Workers:   workers,
		TSeq:      seqSample.Min(),
		TPar:      parSample.Min(),
		Executor:  lastRep.Executor,
		WaitPolls: lastRep.WaitPolls,
	}
	res.Speedup = trace.Speedup(res.TSeq, res.TPar)
	res.Efficiency = trace.Efficiency(res.TSeq, res.TPar, workers)
	res.Checks = checkClose(seqOut, parOut)
	return res, nil
}

// solverSolve adapts Solver.Solve to return the report first, keeping the
// measurement closure above readable.
func solverSolve(s *doacross.Solver, rhs, y []float64) (doacross.Report, []float64, error) {
	out, rep, err := s.Solve(rhs, y)
	return rep, out, err
}

// RunLiveKrylovReuse measures the motivating application end to end: an
// ILU(0)-preconditioned CG solve of a Poisson problem whose two triangular
// substitutions run either sequentially or as preprocessed doacross loops
// through reusable solvers — one persistent worker pool per factor, reused
// across every preconditioner application of every CG iteration. This is the
// workload the persistent pool exists for: with ~64 CG iterations and two
// substitutions per Apply, a spawn-per-call runtime would start goroutines
// hundreds of times per solve.
func RunLiveKrylovReuse(workers, repeat int) (LiveResult, error) {
	a, err := stencil.FivePointGrid(63, 63)
	if err != nil {
		return LiveResult{}, err
	}
	b := stencil.RHS(a.Rows, 3)
	kopts := krylov.Options{Tolerance: 1e-8}

	seqPre, err := sparse.NewILUPreconditioner(a)
	if err != nil {
		return LiveResult{}, err
	}
	xSeq := make([]float64, a.Rows)
	var seqErr error
	seqSample := trace.Measure(repeat, func() {
		clear(xSeq)
		if _, e := krylov.CG(a, b, xSeq, seqPre, kopts); e != nil {
			seqErr = e
		}
	})
	if seqErr != nil {
		return LiveResult{}, seqErr
	}

	parPre, err := sparse.NewILUPreconditioner(a)
	if err != nil {
		return LiveResult{}, err
	}
	release, err := doacross.UseDoacrossILU(parPre, liveSolverOptions(workers, 32)...)
	if err != nil {
		return LiveResult{}, err
	}
	defer release()
	xPar := make([]float64, a.Rows)
	var parErr error
	parSample := trace.Measure(repeat, func() {
		clear(xPar)
		if _, e := krylov.CG(a, b, xPar, parPre, kopts); e != nil {
			parErr = e
		}
	})
	if parErr != nil {
		return LiveResult{}, parErr
	}

	res := LiveResult{
		Name:    "ILU(0)-PCG 63x63 doacross pre",
		Workers: workers,
		TSeq:    seqSample.Min(),
		TPar:    parSample.Min(),
	}
	res.Speedup = trace.Speedup(res.TSeq, res.TPar)
	res.Efficiency = trace.Efficiency(res.TSeq, res.TPar, workers)
	res.Checks = checkClose(xSeq, xPar)
	return res, nil
}

func checkClose(a, b []float64) string {
	if len(a) != len(b) {
		return "LENGTH MISMATCH"
	}
	maxd := 0.0
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > maxd {
			maxd = d
		}
	}
	if maxd > 1e-9 {
		return fmt.Sprintf("RESULT MISMATCH (max diff %.2e)", maxd)
	}
	return "results match"
}

// FormatLive renders a set of live measurements.
func FormatLive(results []LiveResult) string {
	var b strings.Builder
	b.WriteString("Live (goroutine) measurements on this host — validation of the real runtime\n")
	for _, r := range results {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}
