package experiments

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestCompareBenchRecords(t *testing.T) {
	old := []BenchRecord{
		{Experiment: "executors", Name: "trisolve 5-PT", Workers: 2, Executor: "doacross", NsPerOp: 1000},
		{Experiment: "executors", Name: "trisolve 5-PT", Workers: 2, Executor: "wavefront", NsPerOp: 1000},
		{Experiment: "live", Name: "retired workload", Workers: 2, NsPerOp: 500},
		{Experiment: "live", Name: "unmeasured", Workers: 2, NsPerOp: 0},
	}
	current := []BenchRecord{
		// 19% slower: within the 20% threshold.
		{Experiment: "executors", Name: "trisolve 5-PT", Workers: 2, Executor: "doacross", NsPerOp: 1190},
		// 50% slower: a regression.
		{Experiment: "executors", Name: "trisolve 5-PT", Workers: 2, Executor: "wavefront", NsPerOp: 1500},
		// Duplicate key: only the first occurrence counts.
		{Experiment: "executors", Name: "trisolve 5-PT", Workers: 2, Executor: "wavefront", NsPerOp: 1},
		{Experiment: "live", Name: "new workload", Workers: 2, NsPerOp: 700},
		{Experiment: "live", Name: "unmeasured", Workers: 2, NsPerOp: 600},
	}
	cmp := CompareBenchRecords(old, current, 0.20)
	if len(cmp.Deltas) != 2 {
		t.Fatalf("got %d deltas: %+v", len(cmp.Deltas), cmp.Deltas)
	}
	regs := cmp.Regressions()
	if len(regs) != 1 || !strings.Contains(regs[0].Key, "wavefront") {
		t.Fatalf("got regressions %+v, want the wavefront slowdown only", regs)
	}
	// Deltas are sorted slowest-relative first.
	if cmp.Deltas[0].Ratio < cmp.Deltas[1].Ratio {
		t.Fatalf("deltas not sorted by ratio: %+v", cmp.Deltas)
	}
	if len(cmp.OnlyOld) != 1 || !strings.Contains(cmp.OnlyOld[0], "retired") {
		t.Fatalf("only-old = %v", cmp.OnlyOld)
	}
	if len(cmp.OnlyNew) != 1 || !strings.Contains(cmp.OnlyNew[0], "new workload") {
		t.Fatalf("only-new = %v", cmp.OnlyNew)
	}
	out := cmp.Format()
	if !strings.Contains(out, "1 workload(s) regressed") || !strings.Contains(out, "only in baseline") {
		t.Errorf("format output incomplete:\n%s", out)
	}

	// Within threshold everywhere: no regressions, and the report says so.
	calm := CompareBenchRecords(old[:1], current[:1], 0.20)
	if len(calm.Regressions()) != 0 {
		t.Fatalf("unexpected regressions: %+v", calm.Regressions())
	}
	if !strings.Contains(calm.Format(), "no regressions") {
		t.Errorf("calm report wrong:\n%s", calm.Format())
	}
	if calm.Vacuous() || cmp.Vacuous() {
		t.Fatal("matched comparisons must not be vacuous")
	}

	// Disjoint keys (e.g. a baseline recorded at different worker counts)
	// match nothing: the comparison must flag itself as vacuous rather than
	// pass as green.
	moved := []BenchRecord{{Experiment: "executors", Name: "trisolve 5-PT", Workers: 4, Executor: "doacross", NsPerOp: 900}}
	vac := CompareBenchRecords(old[:1], moved, 0.20)
	if !vac.Vacuous() {
		t.Fatalf("disjoint comparison not flagged vacuous: %+v", vac)
	}
	if CompareBenchRecords(nil, nil, 0.20).Vacuous() {
		t.Fatal("empty comparison should not count as vacuous")
	}
}

func TestReadBenchJSONRoundTrip(t *testing.T) {
	records := []BenchRecord{{Experiment: "live", Name: "w", Workers: 2, NsPerOp: 123, AutoPicked: "wavefront"}}
	path := filepath.Join(t.TempDir(), "BENCH_results.json")
	if err := WriteBenchJSON(path, records); err != nil {
		t.Fatal(err)
	}
	f, err := ReadBenchJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Records) != 1 || f.Records[0].NsPerOp != 123 || f.Records[0].AutoPicked != "wavefront" {
		t.Fatalf("round trip lost data: %+v", f)
	}
	if _, err := ReadBenchJSON(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
