//go:build race

package experiments

// raceEnabled reports whether the race detector is active; live wall-clock
// scaling assertions are skipped under the race detector because its
// instrumentation multiplies the cost of the runtime's atomic operations.
const raceEnabled = true
