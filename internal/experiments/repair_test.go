package experiments

import (
	"strings"
	"testing"

	"doacross/internal/stencil"
)

func TestRunRepairExperiment(t *testing.T) {
	rows, err := RunRepairExperiment([]stencil.Problem{stencil.FivePoint}, []int{1, 2}, []int{1, 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Checks != "results match" {
			t.Fatalf("%s P=%d rows=%d: %s", r.Problem, r.Workers, r.RowsPerStep, r.Checks)
		}
		if r.Updates != r.Steps*r.RowsPerStep {
			t.Fatalf("drove %d updates for %d steps of %d rows", r.Updates, r.Steps, r.RowsPerStep)
		}
		if r.Repaired == 0 {
			t.Fatalf("%s P=%d rows=%d: no update took the repair path", r.Problem, r.Workers, r.RowsPerStep)
		}
		if r.TRepair <= 0 || r.TCold <= 0 {
			t.Fatalf("unmeasured times: repair %v cold %v", r.TRepair, r.TCold)
		}
	}
	out := FormatRepair(rows)
	if !strings.Contains(out, "Plan repair") || !strings.Contains(out, "5-PT") {
		t.Fatalf("format output missing headers:\n%s", out)
	}
	// The timing-based ratio check is host-dependent and exercised by the
	// doabench gate; here only the structural claims must hold.
	for _, p := range CheckRepair(rows) {
		if !strings.Contains(p, "cheaper than cold inspection") {
			t.Fatalf("structural check failed: %s", p)
		}
	}
	recs := RepairBenchRecords(rows)
	if len(recs) != len(rows) {
		t.Fatalf("%d records for %d rows", len(recs), len(rows))
	}
	for _, rec := range recs {
		if rec.Experiment != "repair" || rec.RowsPerStep == 0 || rec.NsPerOp <= 0 || rec.ColdInspectNs <= 0 {
			t.Fatalf("malformed record %+v", rec)
		}
	}
}
