package experiments

import (
	"fmt"
	"sort"
	"strings"

	"doacross/internal/machine"
	"doacross/internal/sched"
	"doacross/internal/testloop"
)

// Figure6Config describes the Section 3.1 parameter sweep.
type Figure6Config struct {
	// N is the outer iteration count (the paper uses 10000).
	N int
	// Ms lists the inner loop lengths to sweep (the paper uses 1 and 5).
	Ms []int
	// Ls lists the loop parameters to sweep (the paper uses 1..14).
	Ls []int
	// Processors is the simulated machine size (the paper uses 16).
	Processors int
}

// DefaultFigure6Config returns the paper's exact configuration.
func DefaultFigure6Config() Figure6Config {
	ls := make([]int, 14)
	for i := range ls {
		ls[i] = i + 1
	}
	return Figure6Config{N: 10000, Ms: []int{1, 5}, Ls: ls, Processors: PaperProcessors}
}

// Figure6Point is one point of the efficiency-vs-L curve.
type Figure6Point struct {
	M, L            int
	Efficiency      float64
	Speedup         float64
	HasDependencies bool
	MinDepDistance  int
	WaitTime        float64
	TSeq, TPar      float64

	// WavefrontEfficiency is the same configuration simulated under the
	// pre-scheduled wavefront execution model (barrier-separated doall per
	// level); WavefrontTPar the corresponding parallel time. The extension
	// beyond the paper: on the deep, narrow level structures of even L the
	// wavefront loses to the doacross pipelining, on dependency-free odd L
	// it wins by shedding the flag protocol.
	WavefrontEfficiency float64
	WavefrontTPar       float64
	// DynamicEfficiency and DynamicTPar are the dynamic within-level
	// wavefront model (self-scheduled levels, per-chunk claim cost). The
	// test loop's iterations all cost the same, so there is no imbalance to
	// reclaim and the claim traffic makes the dynamic a strict loss here —
	// the control case of the skewed workloads where it wins.
	DynamicEfficiency float64
	DynamicTPar       float64
	// AutoPick is the executor the calibrated three-way Auto cost model
	// selects with the Figure 6 coefficients at this configuration.
	AutoPick string
}

// Figure6Result holds the whole sweep, grouped as the paper plots it: one
// efficiency series per M value, indexed by L.
type Figure6Result struct {
	Config Figure6Config
	Points []Figure6Point
}

// Series returns the points for one M value sorted by L.
func (r Figure6Result) Series(m int) []Figure6Point {
	var out []Figure6Point
	for _, p := range r.Points {
		if p.M == m {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].L < out[j].L })
	return out
}

// RunFigure6 regenerates the Figure 6 sweep on the machine simulator. For
// each (M, L) pair it builds the Figure 4 test loop, derives its dependency
// graph and read timeline, and simulates the preprocessed doacross on the
// configured processor count with dynamic (cyclic) self-scheduling — the
// assignment the Encore doacross construct uses.
func RunFigure6(cfg Figure6Config) (Figure6Result, error) {
	if cfg.Processors < 1 {
		cfg.Processors = PaperProcessors
	}
	res := Figure6Result{Config: cfg}
	for _, m := range cfg.Ms {
		for _, l := range cfg.Ls {
			tc := testloop.Config{N: cfg.N, M: m, L: l}
			if err := tc.Validate(); err != nil {
				return Figure6Result{}, err
			}
			acc := tc.Access()
			g := tc.Graph()
			cm := Figure6CostModel(m)
			sim, err := machine.Simulate(g, machine.Config{
				Processors: cfg.Processors,
				Policy:     sched.Cyclic,
				ReadPreds:  machine.ReadPredsFromAccess(acc),
			}, cm)
			if err != nil {
				return Figure6Result{}, err
			}
			wf, err := machine.SimulateWavefront(g, machine.Config{
				Processors: cfg.Processors,
				Policy:     sched.Cyclic,
			}, cm, Figure6WavefrontCosts())
			if err != nil {
				return Figure6Result{}, err
			}
			dyn, err := machine.SimulateDynamicWavefront(g, machine.Config{
				Processors: cfg.Processors,
			}, cm, Figure6WavefrontCosts())
			if err != nil {
				return Figure6Result{}, err
			}
			_, byLevel := g.Levels()
			st := inspectStatsFromLevels(g, byLevel, cfg.Processors)
			autoPick := autoPickFromStats(st, Figure6AutoCosts(m), cfg.Processors)
			res.Points = append(res.Points, Figure6Point{
				M:                   m,
				L:                   l,
				Efficiency:          sim.Efficiency,
				Speedup:             sim.Speedup,
				HasDependencies:     tc.HasCrossIterationDeps(),
				MinDepDistance:      tc.MinDepDistance(),
				WaitTime:            sim.WaitTime,
				TSeq:                sim.TSeq,
				TPar:                sim.TPar,
				WavefrontEfficiency: wf.Efficiency,
				WavefrontTPar:       wf.TPar,
				DynamicEfficiency:   dyn.Efficiency,
				DynamicTPar:         dyn.TPar,
				AutoPick:            autoPick,
			})
		}
	}
	return res, nil
}

// Format renders the sweep as the table behind the paper's Figure 6 plot:
// one row per L, one efficiency column per M.
func (r Figure6Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: efficiency of the preprocessed doacross test loop (N=%d, P=%d)\n",
		r.Config.N, r.Config.Processors)
	fmt.Fprintf(&b, "%4s", "L")
	for _, m := range r.Config.Ms {
		fmt.Fprintf(&b, "  %10s  %10s  %10s  %8s", fmt.Sprintf("eff(M=%d)", m), fmt.Sprintf("effWf(M=%d)", m), fmt.Sprintf("effDyn(M=%d)", m), "auto")
	}
	fmt.Fprintf(&b, "  %s\n", "dependencies")
	for _, l := range r.Config.Ls {
		fmt.Fprintf(&b, "%4d", l)
		note := "none (odd L)"
		for _, m := range r.Config.Ms {
			for _, p := range r.Points {
				if p.M == m && p.L == l {
					fmt.Fprintf(&b, "  %10.3f  %10.3f  %10.3f  %8s", p.Efficiency, p.WavefrontEfficiency, p.DynamicEfficiency, p.AutoPick)
					if p.HasDependencies {
						note = fmt.Sprintf("true deps, min distance %d", p.MinDepDistance)
					} else if l%2 == 0 {
						note = "self/anti only"
					}
				}
			}
		}
		fmt.Fprintf(&b, "  %s\n", note)
	}
	return b.String()
}

// CheckShape verifies the qualitative claims the paper makes about Figure 6
// and returns a list of violations (empty means the shape is reproduced):
//
//  1. odd-L efficiencies form a flat overhead floor near 0.33 for M=1 and
//     0.50 for M=5,
//  2. even-L configurations without cross-iteration dependencies (L=2) sit
//     on the same floor,
//  3. even-L efficiencies with dependencies are monotonically non-decreasing
//     in L (the paper: larger L means larger distances between dependent
//     iterations),
//  4. even-L efficiencies never exceed the odd-L overhead floor for the same
//     M (dependencies can only hurt),
//  5. the wavefront model wins exactly where its structure says it should:
//     on dependency-free configurations (a single barrier-free level, no
//     flag protocol) it beats the doacross, while on the deep narrow level
//     structures of dependent even L it loses to the doacross pipelining —
//     and the calibrated Auto cost model agrees with both calls,
//  6. the dynamic within-level wavefront never beats the static one on the
//     test loop: its iterations all cost the same, so the claim traffic is
//     pure loss (the Auto model must therefore never pick it here either —
//     implied by claim 5's doacross/wavefront expectations).
func (r Figure6Result) CheckShape() []string {
	var problems []string
	for _, m := range r.Config.Ms {
		series := r.Series(m)
		var oddEffs []float64
		var evenDepPoints []Figure6Point
		var evenNoDepPoints []Figure6Point
		for _, p := range series {
			switch {
			case p.L%2 == 1:
				oddEffs = append(oddEffs, p.Efficiency)
			case p.HasDependencies:
				evenDepPoints = append(evenDepPoints, p)
			default:
				evenNoDepPoints = append(evenNoDepPoints, p)
			}
		}
		if len(oddEffs) == 0 {
			continue
		}
		lo, hi := minMax(oddEffs)
		if hi-lo > 0.02 {
			problems = append(problems, fmt.Sprintf("M=%d: odd-L efficiencies are not flat (%.3f..%.3f)", m, lo, hi))
		}
		var target float64
		switch m {
		case 1:
			target = 1.0 / 3.0
		case 5:
			target = 0.5
		default:
			target = -1
		}
		if target > 0 && (lo < target-0.05 || hi > target+0.05) {
			problems = append(problems, fmt.Sprintf("M=%d: odd-L floor %.3f..%.3f not near paper's %.2f", m, lo, hi, target))
		}
		for _, p := range evenNoDepPoints {
			if p.Efficiency < lo-0.02 || p.Efficiency > hi+0.02 {
				problems = append(problems, fmt.Sprintf("M=%d L=%d: dependency-free even L should sit on the odd-L floor, got %.3f", m, p.L, p.Efficiency))
			}
		}
		for i := 1; i < len(evenDepPoints); i++ {
			if evenDepPoints[i].Efficiency < evenDepPoints[i-1].Efficiency-1e-9 {
				problems = append(problems, fmt.Sprintf("M=%d: even-L efficiency decreases from L=%d (%.3f) to L=%d (%.3f)",
					m, evenDepPoints[i-1].L, evenDepPoints[i-1].Efficiency, evenDepPoints[i].L, evenDepPoints[i].Efficiency))
			}
		}
		for _, p := range evenDepPoints {
			if p.Efficiency > hi+1e-9 {
				problems = append(problems, fmt.Sprintf("M=%d L=%d: even-L efficiency %.3f exceeds odd-L floor %.3f", m, p.L, p.Efficiency, hi))
			}
		}
		for _, p := range series {
			if p.DynamicEfficiency > p.WavefrontEfficiency+1e-9 {
				problems = append(problems, fmt.Sprintf("M=%d L=%d: dynamic wavefront efficiency %.3f beats static %.3f on a uniform-cost loop", m, p.L, p.DynamicEfficiency, p.WavefrontEfficiency))
			}
			switch {
			case !p.HasDependencies:
				if p.WavefrontEfficiency <= p.Efficiency {
					problems = append(problems, fmt.Sprintf("M=%d L=%d: dependency-free wavefront efficiency %.3f not above doacross %.3f", m, p.L, p.WavefrontEfficiency, p.Efficiency))
				}
				if p.AutoPick != "wavefront" {
					problems = append(problems, fmt.Sprintf("M=%d L=%d: auto picked %s for a dependency-free loop", m, p.L, p.AutoPick))
				}
			default:
				if p.WavefrontEfficiency >= p.Efficiency {
					problems = append(problems, fmt.Sprintf("M=%d L=%d: deep-level wavefront efficiency %.3f not below doacross %.3f", m, p.L, p.WavefrontEfficiency, p.Efficiency))
				}
				if p.AutoPick != "doacross" {
					problems = append(problems, fmt.Sprintf("M=%d L=%d: auto picked %s for a deep narrow level structure", m, p.L, p.AutoPick))
				}
			}
		}
	}
	return problems
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
