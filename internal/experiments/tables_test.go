package experiments

import (
	"strings"
	"testing"

	"doacross/internal/stencil"
	"doacross/internal/testloop"
)

func TestFigure6AsTable(t *testing.T) {
	cfg := smallFigure6Config()
	cfg.Ls = []int{1, 2, 4}
	res, err := RunFigure6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tab := res.AsTable()
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(tab.Rows))
	}
	// L, then eff/effWf/effDyn/auto per M, then dependencies.
	if len(tab.Columns) != 10 {
		t.Fatalf("got %d columns: %v", len(tab.Columns), tab.Columns)
	}
	md := tab.Markdown()
	if !strings.Contains(md, "| L | eff(M=1) | effWf(M=1) | effDyn(M=1) | auto(M=1) | eff(M=5) | effWf(M=5) | effDyn(M=5) | auto(M=5) | dependencies |") {
		t.Errorf("markdown header wrong:\n%s", md)
	}
	csv := tab.CSV()
	if !strings.Contains(csv, "L,eff(M=1),effWf(M=1),effDyn(M=1),auto(M=1),eff(M=5),effWf(M=5),effDyn(M=5),auto(M=5),dependencies") {
		t.Errorf("csv header wrong:\n%s", csv)
	}
}

func TestTable1AsTable(t *testing.T) {
	res, err := RunTable1(Table1Config{Problems: []stencil.Problem{stencil.SPE2}, Processors: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tab := res.AsTable()
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("got %d rows", len(tab.Rows))
	}
	if tab.Rows[0][0] != "SPE2" {
		t.Errorf("first cell = %q", tab.Rows[0][0])
	}
	if len(tab.Notes) != 1 {
		t.Error("missing efficiency-band note")
	}
	if !strings.Contains(tab.Markdown(), "| SPE2 |") {
		t.Error("markdown missing SPE2 row")
	}
}

func TestSweepAsTable(t *testing.T) {
	res, err := RunProcessorSweepTestLoop(testloop.Config{N: 500, M: 1, L: 8}, []int{1, 16})
	if err != nil {
		t.Fatal(err)
	}
	tab := res.AsTable()
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 || len(tab.Columns) != 4 {
		t.Fatalf("unexpected table shape: %dx%d", len(tab.Rows), len(tab.Columns))
	}
}
