package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
)

// BenchRecord is one machine-readable performance measurement, the unit of
// the BENCH_results.json file doabench emits alongside its human tables so
// the repo's performance trajectory can be tracked run over run.
type BenchRecord struct {
	// Experiment names the experiment that produced the record ("live",
	// "executors").
	Experiment string `json:"experiment"`
	// Name identifies the workload configuration.
	Name    string `json:"name"`
	Workers int    `json:"workers"`
	// NsPerOp is the parallel wall-clock time of one operation (one run or
	// solve) in nanoseconds; SeqNsPerOp the sequential reference.
	NsPerOp    float64 `json:"ns_per_op"`
	SeqNsPerOp float64 `json:"seq_ns_per_op,omitempty"`
	Speedup    float64 `json:"speedup,omitempty"`
	Efficiency float64 `json:"efficiency,omitempty"`
	// WaitPolls is the aggregate busy-wait poll count of the measured run
	// (zero for the wavefront executor by construction).
	WaitPolls int64 `json:"wait_polls"`
	// Executor names the execution strategy, when the workload ran through
	// the preprocessed runtime.
	Executor string `json:"executor,omitempty"`
	// Levels and the inspect times are wavefront-specific: the level count
	// and the cold (first solve) vs warm (schedule-cache hit) preprocessing
	// cost.
	Levels        int     `json:"levels,omitempty"`
	ColdInspectNs float64 `json:"cold_inspect_ns,omitempty"`
	WarmInspectNs float64 `json:"warm_inspect_ns,omitempty"`
	// AutoPicked records what the calibrated Auto selection chose for this
	// workload on the measuring host, with the coefficients its
	// self-calibration probe measured.
	AutoPicked    string  `json:"auto_picked,omitempty"`
	AutoBarrierNs float64 `json:"auto_barrier_ns,omitempty"`
	AutoFlagNs    float64 `json:"auto_flag_check_ns,omitempty"`
	AutoClaimNs   float64 `json:"auto_claim_ns,omitempty"`
	// The serving experiment's fields: the concurrent caller count, the
	// measured throughput, and the mean coalesced batch size (1.0 for the
	// unbatched baseline).
	Callers      int     `json:"callers,omitempty"`
	SolvesPerSec float64 `json:"solves_per_sec,omitempty"`
	MeanBatch    float64 `json:"mean_batch,omitempty"`
	// The repair experiment's fields: how many rows each edit step updated,
	// the largest dirty cone a repair recomputed, and the fraction of
	// updates the incremental path served (the rest fell back to a cold
	// re-inspect). Its NsPerOp is the best per-step repair time and
	// ColdInspectNs the cold inspection it replaces.
	RowsPerStep  int     `json:"rows_per_step,omitempty"`
	ConeSize     int     `json:"cone_size,omitempty"`
	RepairedFrac float64 `json:"repaired_frac,omitempty"`
	// The tuning experiment's field: the 1-based run index at which the
	// mis-seeded online tuner settled on the measured-best executor for good
	// (0: never converged within the run budget).
	ConvergedAtRun int `json:"converged_at_run,omitempty"`
}

// BenchFile is the envelope of BENCH_results.json.
type BenchFile struct {
	Schema      int           `json:"schema"`
	GeneratedBy string        `json:"generated_by"`
	GOMAXPROCS  int           `json:"gomaxprocs"`
	Records     []BenchRecord `json:"records"`
}

// LiveBenchRecords converts live measurements into bench records.
func LiveBenchRecords(results []LiveResult) []BenchRecord {
	records := make([]BenchRecord, 0, len(results))
	for _, r := range results {
		records = append(records, BenchRecord{
			Experiment: "live",
			Name:       r.Name,
			Workers:    r.Workers,
			NsPerOp:    float64(r.TPar.Nanoseconds()),
			SeqNsPerOp: float64(r.TSeq.Nanoseconds()),
			Speedup:    r.Speedup,
			Efficiency: r.Efficiency,
			WaitPolls:  r.WaitPolls,
			Executor:   r.Executor,
		})
	}
	return records
}

// ExecutorBenchRecords converts an executor sweep into bench records, one
// per measured strategy per configuration (strategies excluded from the
// sweep emit no record).
func ExecutorBenchRecords(rows []ExecutorSweepRow) []BenchRecord {
	records := make([]BenchRecord, 0, 3*len(rows))
	for _, r := range rows {
		if r.TDoacross > 0 {
			records = append(records, BenchRecord{
				Experiment: "executors",
				Name:       fmt.Sprintf("trisolve %s", r.Problem),
				Workers:    r.Workers,
				NsPerOp:    float64(r.TDoacross.Nanoseconds()),
				SeqNsPerOp: float64(r.TSeq.Nanoseconds()),
				Speedup:    r.DoacrossSpeedup,
				WaitPolls:  r.DoacrossWaits,
				Executor:   "doacross",
			})
		}
		if r.TWavefront > 0 {
			records = append(records, BenchRecord{
				Experiment:    "executors",
				Name:          fmt.Sprintf("trisolve %s", r.Problem),
				Workers:       r.Workers,
				NsPerOp:       float64(r.TWavefront.Nanoseconds()),
				SeqNsPerOp:    float64(r.TSeq.Nanoseconds()),
				Speedup:       r.WavefrontSpeedup,
				Executor:      "wavefront",
				Levels:        r.Levels,
				ColdInspectNs: float64(r.ColdInspect.Nanoseconds()),
				WarmInspectNs: float64(r.WarmInspect.Nanoseconds()),
				AutoPicked:    r.AutoPicked,
				AutoBarrierNs: r.AutoCosts.BarrierNs,
				AutoFlagNs:    r.AutoCosts.FlagCheckNs,
			})
		}
		if r.TDynamic > 0 {
			records = append(records, BenchRecord{
				Experiment:  "executors",
				Name:        fmt.Sprintf("trisolve %s", r.Problem),
				Workers:     r.Workers,
				NsPerOp:     float64(r.TDynamic.Nanoseconds()),
				SeqNsPerOp:  float64(r.TSeq.Nanoseconds()),
				Speedup:     r.DynamicSpeedup,
				Executor:    "wavefront-dynamic",
				Levels:      r.Levels,
				AutoPicked:  r.AutoPicked,
				AutoClaimNs: r.AutoCosts.ClaimNs,
			})
		}
		if r.TAuto > 0 && r.TWavefront == 0 && r.TDynamic == 0 {
			// With both wavefront executors excluded, no other record carries
			// the auto pick and its calibrated coefficients; emit a dedicated
			// one so a filtered sweep still leaves a trace of the decision.
			records = append(records, BenchRecord{
				Experiment:    "executors",
				Name:          fmt.Sprintf("trisolve %s", r.Problem),
				Workers:       r.Workers,
				NsPerOp:       float64(r.TAuto.Nanoseconds()),
				SeqNsPerOp:    float64(r.TSeq.Nanoseconds()),
				Speedup:       r.AutoSpeedup,
				Executor:      "auto",
				Levels:        r.Levels,
				AutoPicked:    r.AutoPicked,
				AutoBarrierNs: r.AutoCosts.BarrierNs,
				AutoFlagNs:    r.AutoCosts.FlagCheckNs,
				AutoClaimNs:   r.AutoCosts.ClaimNs,
			})
		}
	}
	return records
}

// WriteBenchJSON writes the records as BENCH_results.json-style output to
// path.
func WriteBenchJSON(path string, records []BenchRecord) error {
	f := BenchFile{
		Schema:      1,
		GeneratedBy: "doabench",
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Records:     records,
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
