package experiments

import (
	"strings"
	"testing"

	"doacross/internal/testloop"
)

// smallFigure6Config shrinks N so the full sweep stays fast in unit tests;
// the efficiency model is N-independent except for edge effects.
func smallFigure6Config() Figure6Config {
	cfg := DefaultFigure6Config()
	cfg.N = 2000
	return cfg
}

func TestFigure6DefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultFigure6Config()
	if cfg.N != 10000 || cfg.Processors != 16 {
		t.Errorf("default config %+v does not match the paper", cfg)
	}
	if len(cfg.Ls) != 14 || cfg.Ls[0] != 1 || cfg.Ls[13] != 14 {
		t.Errorf("default L sweep wrong: %v", cfg.Ls)
	}
	if len(cfg.Ms) != 2 || cfg.Ms[0] != 1 || cfg.Ms[1] != 5 {
		t.Errorf("default M values wrong: %v", cfg.Ms)
	}
}

func TestFigure6ShapeReproduced(t *testing.T) {
	res, err := RunFigure6(smallFigure6Config())
	if err != nil {
		t.Fatal(err)
	}
	if problems := res.CheckShape(); len(problems) > 0 {
		t.Fatalf("Figure 6 shape not reproduced:\n%s", strings.Join(problems, "\n"))
	}
}

func TestFigure6OddFloorValues(t *testing.T) {
	res, err := RunFigure6(smallFigure6Config())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.L%2 == 1 {
			var want float64
			if p.M == 1 {
				want = 1.0 / 3.0
			} else {
				want = 0.5
			}
			if diff := p.Efficiency - want; diff > 0.03 || diff < -0.03 {
				t.Errorf("M=%d L=%d: odd-L efficiency %.3f, want ~%.3f", p.M, p.L, p.Efficiency, want)
			}
		}
	}
}

func TestFigure6EvenLBelowFloorAndRising(t *testing.T) {
	res, err := RunFigure6(smallFigure6Config())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{1, 5} {
		series := res.Series(m)
		if len(series) != 14 {
			t.Fatalf("M=%d: series has %d points, want 14", m, len(series))
		}
		prev := -1.0
		for _, p := range series {
			if p.L%2 == 0 && p.HasDependencies {
				if p.Efficiency >= series[0].Efficiency {
					t.Errorf("M=%d L=%d: dependent configuration should cost efficiency (%.3f >= floor %.3f)",
						m, p.L, p.Efficiency, series[0].Efficiency)
				}
				if p.Efficiency < prev {
					t.Errorf("M=%d L=%d: efficiency %.3f dropped below previous even value %.3f", m, p.L, p.Efficiency, prev)
				}
				prev = p.Efficiency
			}
		}
	}
}

func TestFigure6FormatContainsAllRows(t *testing.T) {
	cfg := smallFigure6Config()
	cfg.Ls = []int{1, 2, 3, 4}
	res, err := RunFigure6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Format()
	for _, want := range []string{"Figure 6", "eff(M=1)", "eff(M=5)", "none (odd L)", "true deps"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "\n"); got < 6 {
		t.Errorf("Format() has too few lines: %d", got)
	}
}

func TestFigure6RejectsInvalidConfig(t *testing.T) {
	cfg := smallFigure6Config()
	cfg.Ls = []int{0}
	if _, err := RunFigure6(cfg); err == nil {
		t.Error("invalid L accepted")
	}
}

func TestFigure6CostModelCalibration(t *testing.T) {
	// The calibration identity: work/(work+overheads) equals the paper's
	// floors for M=1 and M=5.
	for _, tc := range []struct {
		m    int
		want float64
	}{{1, 1.0 / 3.0}, {5, 0.5}} {
		cm := Figure6CostModel(tc.m)
		work := cm.IterWork(0)
		total := work + cm.CheckPerRead*float64(tc.m) + cm.IterOverhead + cm.PrePerIter + cm.PostPerIter
		got := work / total
		if diff := got - tc.want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("M=%d: calibrated floor %.4f, want %.4f", tc.m, got, tc.want)
		}
	}
	if Figure6CostModelFor(testloop.Config{N: 1, M: 3, L: 1}).ReadsPerIter(0) != 3 {
		t.Error("Figure6CostModelFor did not propagate M")
	}
}

// TestFigure6WavefrontAnchors pins the wavefront simulation against the
// calibration anchors the Figure 6 constants imply: a dependency-free
// configuration is a single doall level, so its efficiency is the closed
// form work / (work + wavefront overhead + pre + post), with only the lone
// barrier (amortized over N iterations) and the ceil of the work
// distribution separating simulation from formula.
func TestFigure6WavefrontAnchors(t *testing.T) {
	res, err := RunFigure6(smallFigure6Config())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.HasDependencies {
			continue
		}
		work := fig6BaseWork + fig6TermWork*float64(p.M)
		anchor := work / (work + fig6WfIterOverhead + fig6PrePerIter + fig6PostPerIter)
		if p.WavefrontEfficiency < anchor-0.02 || p.WavefrontEfficiency > anchor+0.02 {
			t.Errorf("M=%d L=%d: wavefront efficiency %.3f not near anchor %.3f",
				p.M, p.L, p.WavefrontEfficiency, anchor)
		}
	}
}

// TestFigure6WavefrontCrossover pins the executor comparison the extended
// sweep adds: the wavefront wins every dependency-free configuration,
// loses every deep narrow one, and the Auto cost model with the Figure 6
// coefficients calls both sides correctly.
func TestFigure6WavefrontCrossover(t *testing.T) {
	res, err := RunFigure6(smallFigure6Config())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.HasDependencies {
			if p.WavefrontEfficiency >= p.Efficiency {
				t.Errorf("M=%d L=%d: wavefront %.3f should lose to doacross %.3f on a deep level structure",
					p.M, p.L, p.WavefrontEfficiency, p.Efficiency)
			}
			if p.AutoPick != "doacross" {
				t.Errorf("M=%d L=%d: auto picked %s, want doacross", p.M, p.L, p.AutoPick)
			}
		} else {
			if p.WavefrontEfficiency <= p.Efficiency {
				t.Errorf("M=%d L=%d: wavefront %.3f should beat doacross %.3f without dependencies",
					p.M, p.L, p.WavefrontEfficiency, p.Efficiency)
			}
			if p.AutoPick != "wavefront" {
				t.Errorf("M=%d L=%d: auto picked %s, want wavefront", p.M, p.L, p.AutoPick)
			}
		}
	}
}
