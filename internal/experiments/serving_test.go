package experiments

import (
	"strings"
	"testing"

	"doacross/internal/stencil"
)

func TestServingExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("live measurement skipped in -short mode")
	}
	cfg := DefaultServingConfig(stencil.FivePoint, 2, 8)
	cfg.SolvesPerCaller = 10
	cfg.Repeat = 1
	results, err := RunServing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Batched || !results[1].Batched {
		t.Fatalf("want [unbatched batched], got %+v", results)
	}
	for _, r := range results {
		if r.Checks != "results match" {
			t.Fatalf("%s K=%d: %s", r.Name, r.Callers, r.Checks)
		}
		if r.Solves != 80 || r.SolvesPerSec <= 0 || r.NsPerSolve <= 0 {
			t.Fatalf("implausible result: %+v", r)
		}
	}
	if results[0].MeanBatch != 1 {
		t.Errorf("unbatched mean batch = %v, want exactly 1", results[0].MeanBatch)
	}
	if results[1].MeanBatch <= 1 {
		t.Errorf("batched mean batch = %v, want > 1 at 8 concurrent callers", results[1].MeanBatch)
	}
	if results[1].WindowFlushes+results[1].SizeFlushes == 0 {
		t.Error("batched run recorded no flushes")
	}

	records := ServingBenchRecords(results)
	if len(records) != 2 {
		t.Fatalf("got %d records, want 2", len(records))
	}
	if records[0].Experiment != "serving" || !strings.Contains(records[0].Name, "unbatched") {
		t.Errorf("unbatched record: %+v", records[0])
	}
	if !strings.Contains(records[1].Name, " batched") || records[1].SolvesPerSec <= 0 || records[1].Callers != 8 {
		t.Errorf("batched record: %+v", records[1])
	}
	// The two modes must land on distinct benchdiff keys, or the gate would
	// compare batched runs against unbatched baselines.
	if records[0].Name == records[1].Name {
		t.Error("batched and unbatched records share a workload key")
	}

	out := FormatServing(results)
	if !strings.Contains(out, "solves/s") || !strings.Contains(out, "batch sizes:") {
		t.Errorf("format output missing fields:\n%s", out)
	}
	if problems := CheckServing(results); len(problems) > 0 {
		// K=8 is below the >=16 throughput-claim threshold, so only
		// correctness problems can appear here.
		t.Fatalf("serving violations: %v", problems)
	}
}

func TestServingValidationAndChecks(t *testing.T) {
	if _, err := RunServing(ServingConfig{Problem: stencil.FivePoint, Workers: 1}); err == nil {
		t.Error("zero callers accepted")
	}
	// CheckServing flags a batched row at K>=16 that loses to its baseline
	// and a coalescer that never batches.
	rows := []ServingResult{
		{Name: "trisolve 5-PT serving", Callers: 16, Batched: false, SolvesPerSec: 100, Checks: "results match"},
		{Name: "trisolve 5-PT serving", Callers: 16, Batched: true, SolvesPerSec: 50, MeanBatch: 1, Checks: "results match"},
	}
	problems := CheckServing(rows)
	if len(problems) != 2 {
		t.Fatalf("want 2 violations (slower + no batches), got %v", problems)
	}
	rows[1].SolvesPerSec = 200
	rows[1].MeanBatch = 8
	if problems := CheckServing(rows); len(problems) != 0 {
		t.Fatalf("healthy rows flagged: %v", problems)
	}
	rows[0].Checks = "RESULT MISMATCH (caller 0, max diff 1.0e-3)"
	if problems := CheckServing(rows); len(problems) != 1 {
		t.Fatalf("mismatch not flagged: %v", problems)
	}
	if got := formatBatchHistogram(nil); got != "(none)" {
		t.Errorf("empty histogram rendered %q", got)
	}
	if got := formatBatchHistogram([]uint64{2, 0, 1}); got != "1×2 3×1" {
		t.Errorf("histogram rendered %q", got)
	}
}
