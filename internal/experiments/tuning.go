package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"doacross"
	"doacross/internal/stencil"
)

// TuningRow is one workload's mis-seeded recovery measurement: the online
// tuner (WithOnlineTuning) is deliberately seeded with coefficients that make
// the cost model prefer the measured-WORST of the two contested executors,
// and the row records how fast measured feedback flips the selection to the
// measured-best one and what the recovery is worth. Ground truth is measured
// on this host (best executor-phase time of each fixed executor), so the row
// is meaningful on any machine — including ones where the busy-wait doacross
// is the pathological arm.
type TuningRow struct {
	Name    string
	Workers int
	// Runs is the tuned run budget; TruthReps the fixed-executor repetitions
	// behind the ground truth.
	Runs      int
	TruthReps int

	// TDoacross and TWavefront are the measured ground truth (best
	// executor-phase time per fixed executor); Best/WorstExecutor name their
	// ordering and Margin = worst/best is how decisive the workload is.
	TDoacross     time.Duration
	TWavefront    time.Duration
	BestExecutor  string
	WorstExecutor string
	Margin        float64

	// MisSeededPick is the tuned runtime's run-0 greedy decision — what the
	// wrong coefficients alone would run forever.
	MisSeededPick string
	// ConvergedAt is the first run from which every later greedy decision
	// picked the measured-best executor (-1: never settled); Explorations
	// counts the deliberate detours and FinalPick names the last greedy
	// decision.
	ConvergedAt  int
	Explorations int
	FinalPick    string

	// TunedEMANs is the settled executor's measured moving average, BestEMANs
	// the fastest measured average of any arm, and RecoverySpeedup the ratio
	// of staying misled (the worst executor's truth time) over the tuned
	// steady state — what the feedback loop bought.
	TunedEMANs      float64
	BestEMANs       float64
	RecoverySpeedup float64

	Checks string
}

// tuningMisledCosts returns seed coefficients whose model prediction prefers
// the named executor on any loop shape, by pricing the other executor's
// synchronization primitive catastrophically. No claim coefficient: the
// dynamic arm is excluded, isolating the contested two-way flip.
func tuningMisledCosts(executor string) doacross.AutoCosts {
	if executor == "doacross" {
		return doacross.AutoCosts{BarrierNs: 1e6, FlagCheckNs: 0.01, IterNs: 100}
	}
	return doacross.AutoCosts{BarrierNs: 0.01, FlagCheckNs: 5000, IterNs: 100}
}

// tuningChain builds the decisive workload: a pure dependency chain, where
// the busy-wait doacross pipelines one flag wait per iteration and the
// wavefront pays a full barrier per unit-width level, so the two executors
// are typically orders of magnitude apart (in whichever direction the host's
// scheduling of spinning workers decides).
func tuningChain(n int) *doacross.Loop {
	return &doacross.Loop{
		N:      n,
		Data:   n,
		Writes: func(i int) []int { return []int{i} },
		Reads: func(i int) []int {
			if i == 0 {
				return nil
			}
			return []int{i - 1}
		},
		Body: func(i int, v *doacross.Values) {
			x := 1.0
			if i > 0 {
				x = v.Load(i-1) + 1
			}
			v.Store(i, x)
		},
	}
}

// tuningWorkload is one workload of the tuning experiment.
type tuningWorkload struct {
	name    string
	loop    *doacross.Loop
	dataLen int
	reset   func(y []float64) // reinitialize the data before each run
}

// tuningSeed is the exploration seed of the experiment's tuned runtimes. Seed
// 5's first decision is greedy — the misled pick the experiment asserts on —
// and its first exploration arrives at run 3, early enough to escape the
// wrong arm's lock-in well within the run budget.
const tuningSeed = 5

// RunTuningExperiment measures the online tuner's mis-seeded recovery on the
// chain workload and the paper's SPE2 forward substitution: per workload it
// measures each contested executor's ground truth (best executor-phase time
// of truthReps fixed-executor runs), seeds a tuned Auto runtime against the
// measured-worst one, and records the convergence trajectory over runs tuned
// runs.
func RunTuningExperiment(workers, runs, truthReps int) ([]TuningRow, error) {
	lf, _, err := stencil.LowerFactor(stencil.SPE2, 1)
	if err != nil {
		return nil, err
	}
	rhs := stencil.RHS(lf.N, 7)
	triLoop, err := doacross.TrisolveLoop(lf, rhs)
	if err != nil {
		return nil, err
	}

	const chainN = 512
	workloads := []tuningWorkload{
		{name: fmt.Sprintf("chain n=%d", chainN), loop: tuningChain(chainN), dataLen: chainN},
		{name: "trisolve SPE2", loop: triLoop, dataLen: lf.N,
			reset: func(y []float64) { copy(y, rhs) }},
	}

	rows := make([]TuningRow, 0, len(workloads))
	for _, w := range workloads {
		row, err := runTuningWorkload(w, workers, runs, truthReps)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runTuningWorkload measures one workload's row.
func runTuningWorkload(w tuningWorkload, workers, runs, truthReps int) (TuningRow, error) {
	row := TuningRow{Name: w.name, Workers: workers, Runs: runs, TruthReps: truthReps}
	ctx := context.Background()

	// Ground truth: best executor-phase time of each contested executor.
	truthOf := func(kind doacross.ExecutorKind) (time.Duration, error) {
		rt, err := doacross.New(w.dataLen, doacross.WithWorkers(workers), doacross.WithExecutor(kind))
		if err != nil {
			return 0, err
		}
		defer rt.Close()
		y := make([]float64, w.dataLen)
		best := time.Duration(0)
		for rep := 0; rep < truthReps; rep++ {
			if w.reset != nil {
				w.reset(y)
			}
			r, err := rt.Run(ctx, w.loop, y)
			if err != nil {
				return 0, err
			}
			if best == 0 || r.ExecTime < best {
				best = r.ExecTime
			}
		}
		return best, nil
	}
	var err error
	if row.TDoacross, err = truthOf(doacross.Doacross); err != nil {
		return row, err
	}
	if row.TWavefront, err = truthOf(doacross.Wavefront); err != nil {
		return row, err
	}
	row.BestExecutor, row.WorstExecutor = "doacross", "wavefront"
	tBest, tWorst := row.TDoacross, row.TWavefront
	if row.TWavefront < row.TDoacross {
		row.BestExecutor, row.WorstExecutor = "wavefront", "doacross"
		tBest, tWorst = row.TWavefront, row.TDoacross
	}
	if tBest > 0 {
		row.Margin = float64(tWorst) / float64(tBest)
	}

	// The tuned runtime, seeded against the measured-worst executor.
	rt, err := doacross.New(w.dataLen,
		doacross.WithWorkers(workers),
		doacross.WithExecutor(doacross.Auto),
		doacross.WithOnlineTuning(doacross.TuningOptions{
			InitialCosts: tuningMisledCosts(row.WorstExecutor),
			Seed:         tuningSeed,
		}),
	)
	if err != nil {
		return row, err
	}
	defer rt.Close()

	type decision struct {
		executor string
		explored bool
	}
	hist := make([]decision, 0, runs)
	y := make([]float64, w.dataLen)
	for r := 0; r < runs; r++ {
		if w.reset != nil {
			w.reset(y)
		}
		rep, err := rt.Run(ctx, w.loop, y)
		if err != nil {
			return row, err
		}
		hist = append(hist, decision{rep.Executor, rep.Explored})
	}
	if len(hist) > 0 && !hist[0].explored {
		row.MisSeededPick = hist[0].executor
	}
	row.ConvergedAt = -1
	for i := len(hist) - 1; i >= 0; i-- {
		if hist[i].explored {
			continue
		}
		if hist[i].executor != row.BestExecutor {
			break
		}
		row.ConvergedAt = i
		row.FinalPick = row.BestExecutor
	}
	if row.FinalPick == "" {
		for i := len(hist) - 1; i >= 0; i-- {
			if !hist[i].explored {
				row.FinalPick = hist[i].executor
				break
			}
		}
	}

	snap := rt.TuningSnapshot()
	if len(snap.Plans) != 1 {
		return row, fmt.Errorf("experiments: tuner tracks %d plans for %s, want 1", len(snap.Plans), w.name)
	}
	p := snap.Plans[0]
	row.Explorations = int(p.Explorations)
	emaOf := map[string]doacross.TuningArm{
		"doacross":          p.Doacross,
		"wavefront":         p.Wavefront,
		"wavefront-dynamic": p.WavefrontDynamic,
	}
	for _, arm := range emaOf {
		if arm.Observations > 0 && (row.BestEMANs == 0 || arm.EMANs < row.BestEMANs) {
			row.BestEMANs = arm.EMANs
		}
	}
	if settled, ok := emaOf[row.FinalPick]; ok && settled.Observations > 0 {
		row.TunedEMANs = settled.EMANs
	}
	if row.TunedEMANs > 0 {
		row.RecoverySpeedup = float64(tWorst) / row.TunedEMANs
	}
	return row, nil
}

// FormatTuning renders the recovery table.
func FormatTuning(rows []TuningRow) string {
	var b strings.Builder
	b.WriteString("Online tuning (live): recovery of the mis-seeded Auto selection by measured feedback\n")
	fmt.Fprintf(&b, "%-14s %3s %12s %12s %8s %-10s %-10s %9s %8s %-10s %12s %9s\n",
		"workload", "P", "Tdoacross", "Twavefront", "margin", "best", "misled to", "converged", "explored", "settled on", "tunedEMA", "recovery")
	for _, r := range rows {
		converged := "never"
		if r.ConvergedAt >= 0 {
			converged = fmt.Sprintf("run %d", r.ConvergedAt)
		}
		fmt.Fprintf(&b, "%-14s %3d %12v %12v %7.1fx %-10s %-10s %9s %8d %-10s %12v %8.1fx\n",
			r.Name, r.Workers, r.TDoacross, r.TWavefront, r.Margin,
			r.BestExecutor, r.MisSeededPick, converged, r.Explorations,
			r.FinalPick, time.Duration(int64(r.TunedEMANs)), r.RecoverySpeedup)
	}
	return b.String()
}

// CheckTuning verifies the experiment's qualitative claims. Every row must
// show the mis-seeding took hold (run 0 greedily picked the measured-worst
// executor). A row with a decisive margin (>= 3x between the executors) must
// additionally converge to the measured-best executor within half the run
// budget and recover at least a 2x speedup over staying misled; a row with a
// thin margin only has to settle on an executor whose measured average is
// within 1.5x of the fastest one (close seconds among near-ties pass, a
// catastrophic pick fails).
func CheckTuning(rows []TuningRow) []string {
	var problems []string
	for _, r := range rows {
		if r.MisSeededPick != r.WorstExecutor {
			problems = append(problems, fmt.Sprintf(
				"%s P=%d: run 0 picked %q, but the seed coefficients should mislead it into %q",
				r.Name, r.Workers, r.MisSeededPick, r.WorstExecutor))
			continue
		}
		if r.Margin >= 3 {
			if r.ConvergedAt < 0 {
				problems = append(problems, fmt.Sprintf(
					"%s P=%d: tuner never settled on %q despite a %.1fx margin",
					r.Name, r.Workers, r.BestExecutor, r.Margin))
				continue
			}
			if r.ConvergedAt > r.Runs/2 {
				problems = append(problems, fmt.Sprintf(
					"%s P=%d: tuner settled only at run %d of %d",
					r.Name, r.Workers, r.ConvergedAt, r.Runs))
			}
			if r.FinalPick != r.BestExecutor {
				problems = append(problems, fmt.Sprintf(
					"%s P=%d: tuner settled on %q, measured best is %q",
					r.Name, r.Workers, r.FinalPick, r.BestExecutor))
			}
			if r.RecoverySpeedup < 2 {
				problems = append(problems, fmt.Sprintf(
					"%s P=%d: recovery bought only %.2fx over staying misled",
					r.Name, r.Workers, r.RecoverySpeedup))
			}
		} else if r.BestEMANs > 0 && r.TunedEMANs > 1.5*r.BestEMANs {
			problems = append(problems, fmt.Sprintf(
				"%s P=%d: settled executor's measured average %v is more than 1.5x the fastest measured %v",
				r.Name, r.Workers,
				time.Duration(int64(r.TunedEMANs)), time.Duration(int64(r.BestEMANs))))
		}
	}
	return problems
}

// TuningBenchRecords converts the recovery rows into bench records: NsPerOp
// is the tuned steady state (the settled executor's measured average),
// SeqNsPerOp the counterfactual of staying misled (the worst executor's
// ground truth), and Speedup what the feedback loop bought between them.
func TuningBenchRecords(rows []TuningRow) []BenchRecord {
	records := make([]BenchRecord, 0, len(rows))
	for _, r := range rows {
		rec := BenchRecord{
			Experiment: "tuning",
			Name:       r.Name,
			Workers:    r.Workers,
			NsPerOp:    r.TunedEMANs,
			SeqNsPerOp: float64(tDurationNs(r.TWavefront, r.TDoacross, r.WorstExecutor)),
			Speedup:    r.RecoverySpeedup,
			Executor:   r.FinalPick,
		}
		if r.ConvergedAt >= 0 {
			rec.ConvergedAtRun = r.ConvergedAt + 1
		}
		records = append(records, rec)
	}
	return records
}

// tDurationNs picks the named executor's truth time.
func tDurationNs(wf, da time.Duration, executor string) int64 {
	if executor == "wavefront" {
		return wf.Nanoseconds()
	}
	return da.Nanoseconds()
}
