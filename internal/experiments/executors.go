package experiments

import (
	"fmt"
	"strings"
	"time"

	"doacross"
	"doacross/internal/stencil"
	"doacross/internal/trace"
)

// ExecutorSweepRow compares the runtime's execution strategies on one
// triangular-solve workload at one worker count: the busy-wait doacross
// against the pre-scheduled wavefront executor, plus what the Auto selection
// picks and how much of the wavefront's inspection the schedule cache
// amortizes away.
type ExecutorSweepRow struct {
	Problem string
	Workers int

	TSeq       time.Duration
	TDoacross  time.Duration
	TWavefront time.Duration

	DoacrossSpeedup  float64
	WavefrontSpeedup float64

	// DoacrossWaits is the doacross's aggregate busy-wait poll count;
	// WavefrontWaits must be zero by construction and is recorded so the
	// check below can enforce that invariant.
	DoacrossWaits  int64
	WavefrontWaits int64
	// Levels is the wavefront decomposition's level count.
	Levels int

	// ColdInspect is the wavefront preprocessing time of the first solve
	// (graph build + level decomposition + schedule); WarmInspect is the
	// preprocessing time of a later solve on the same solver, which the
	// schedule cache reduces to a memo lookup.
	ColdInspect time.Duration
	WarmInspect time.Duration
	// WarmCached reports whether the warm solve actually hit the cache.
	WarmCached bool

	// AutoPicked names the executor the Auto selection chose, AutoCosts the
	// coefficients it measured on the live pool (self-calibration probe),
	// and PredictedDoacrossNs/PredictedWavefrontNs the cost model's two
	// estimates behind the pick.
	AutoPicked           string
	AutoCosts            doacross.AutoCosts
	PredictedDoacrossNs  float64
	PredictedWavefrontNs float64
	Checks               string
}

// RunExecutorSweep sweeps both executors over the given problems and worker
// counts, repeat runs per measurement (best time wins, as in the other live
// experiments).
func RunExecutorSweep(probs []stencil.Problem, workers []int, repeat int) ([]ExecutorSweepRow, error) {
	var rows []ExecutorSweepRow
	for _, prob := range probs {
		l, _, err := stencil.LowerFactor(prob, 1)
		if err != nil {
			return nil, err
		}
		rhs := stencil.RHS(l.N, 7)
		var want []float64
		seqSample := trace.Measure(repeat, func() {
			want = doacross.SolveSequential(l, rhs)
		})

		for _, p := range workers {
			row := ExecutorSweepRow{Problem: prob.String(), Workers: p, TSeq: seqSample.Min()}
			opts := liveSolverOptions(p, 32)

			da, err := doacross.NewSolver(l, opts...)
			if err != nil {
				return nil, err
			}
			daOut := make([]float64, l.N)
			var runErr error
			var daRep doacross.Report
			daSample := trace.Measure(repeat, func() {
				rep, _, e := solverSolve(da, rhs, daOut)
				if e != nil {
					runErr = e
				}
				daRep = rep
			})
			da.Close()
			if runErr != nil {
				return nil, runErr
			}
			row.TDoacross = daSample.Min()
			row.DoacrossWaits = daRep.WaitPolls

			wf, err := doacross.NewSolver(l, append(opts, doacross.WithExecutor(doacross.Wavefront))...)
			if err != nil {
				return nil, err
			}
			wfOut := make([]float64, l.N)
			coldRep, _, err := solverSolve(wf, rhs, wfOut)
			if err != nil {
				wf.Close()
				return nil, err
			}
			row.ColdInspect = coldRep.PreTime
			row.Levels = coldRep.Levels
			var wfRep doacross.Report
			wfSample := trace.Measure(repeat, func() {
				rep, _, e := solverSolve(wf, rhs, wfOut)
				if e != nil {
					runErr = e
				}
				wfRep = rep
			})
			wf.Close()
			if runErr != nil {
				return nil, runErr
			}
			row.TWavefront = wfSample.Min()
			row.WarmInspect = wfRep.PreTime
			row.WarmCached = wfRep.InspectCached
			row.WavefrontWaits = wfRep.WaitPolls

			auto, err := doacross.NewSolver(l, append(opts, doacross.WithExecutor(doacross.Auto))...)
			if err != nil {
				return nil, err
			}
			autoOut := make([]float64, l.N)
			autoRep, _, err := solverSolve(auto, rhs, autoOut)
			auto.Close()
			if err != nil {
				return nil, err
			}
			row.AutoPicked = autoRep.Executor
			row.AutoCosts = autoRep.AutoCosts
			row.PredictedDoacrossNs = autoRep.PredictedDoacrossNs
			row.PredictedWavefrontNs = autoRep.PredictedWavefrontNs

			row.DoacrossSpeedup = trace.Speedup(row.TSeq, row.TDoacross)
			row.WavefrontSpeedup = trace.Speedup(row.TSeq, row.TWavefront)
			checks := []string{checkClose(want, daOut), checkClose(want, wfOut), checkClose(want, autoOut)}
			row.Checks = "results match"
			for _, c := range checks {
				if c != "results match" {
					row.Checks = c
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatExecutorSweep renders the executor comparison.
func FormatExecutorSweep(rows []ExecutorSweepRow) string {
	var b strings.Builder
	b.WriteString("Executor sweep (live): busy-wait doacross vs pre-scheduled wavefront\n")
	fmt.Fprintf(&b, "%-8s %3s %12s %12s %12s %7s %7s %9s %8s %12s %12s %-10s %s\n",
		"problem", "P", "Tseq", "Tdoacross", "Twavefront", "S(da)", "S(wf)", "waits", "levels", "coldInspect", "warmInspect", "auto", "check")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %3d %12v %12v %12v %7.2f %7.2f %9d %8d %12v %12v %-10s %s\n",
			r.Problem, r.Workers, r.TSeq, r.TDoacross, r.TWavefront,
			r.DoacrossSpeedup, r.WavefrontSpeedup, r.DoacrossWaits, r.Levels,
			r.ColdInspect, r.WarmInspect, r.AutoPicked, r.Checks)
	}
	return b.String()
}

// CheckExecutorSweep verifies the sweep's qualitative claims: every executor
// reproduced the sequential result, warm solves hit the schedule cache, and
// the wavefront executor never busy-waits.
func CheckExecutorSweep(rows []ExecutorSweepRow) []string {
	var problems []string
	for _, r := range rows {
		if r.Checks != "results match" {
			problems = append(problems, fmt.Sprintf("%s P=%d: %s", r.Problem, r.Workers, r.Checks))
		}
		if !r.WarmCached {
			problems = append(problems, fmt.Sprintf("%s P=%d: warm solve missed the schedule cache", r.Problem, r.Workers))
		}
		if r.WavefrontWaits != 0 {
			problems = append(problems, fmt.Sprintf("%s P=%d: wavefront executor busy-waited (%d polls)", r.Problem, r.Workers, r.WavefrontWaits))
		}
		if r.AutoCosts.BarrierNs <= 0 || r.AutoCosts.FlagCheckNs <= 0 {
			problems = append(problems, fmt.Sprintf("%s P=%d: auto selection reported no calibrated costs (%+v)", r.Problem, r.Workers, r.AutoCosts))
		} else if r.Levels > 1 {
			// A single barrier-free level short-circuits to the wavefront
			// regardless of the predictions, so only multi-level solves are
			// held to prediction consistency.
			predicted := "doacross"
			if r.PredictedWavefrontNs < r.PredictedDoacrossNs {
				predicted = "wavefront"
			}
			if r.AutoPicked != predicted {
				problems = append(problems, fmt.Sprintf("%s P=%d: auto picked %s but its own predictions favor %s", r.Problem, r.Workers, r.AutoPicked, predicted))
			}
		}
	}
	return problems
}
