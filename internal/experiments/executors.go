package experiments

import (
	"fmt"
	"strings"
	"time"

	"doacross"
	"doacross/internal/stencil"
	"doacross/internal/trace"
)

// ExecutorSweepNames lists the executors the live sweep can measure, in
// reporting order: the valid values of doabench's -executors flag.
var ExecutorSweepNames = []string{"doacross", "wavefront", "wavefront-dynamic", "auto"}

// ExecutorSweepRow compares the runtime's execution strategies on one
// triangular-solve workload at one worker count: the busy-wait doacross
// against the pre-scheduled wavefront executor and its dynamic within-level
// variant, plus what the Auto selection picks and how much of the
// wavefront's inspection the schedule cache amortizes away. Executors
// excluded from the sweep leave their fields zero.
type ExecutorSweepRow struct {
	Problem string
	Workers int

	TSeq       time.Duration
	TDoacross  time.Duration
	TWavefront time.Duration
	TDynamic   time.Duration
	TAuto      time.Duration

	DoacrossSpeedup  float64
	WavefrontSpeedup float64
	DynamicSpeedup   float64
	AutoSpeedup      float64

	// DoacrossWaits is the doacross's aggregate busy-wait poll count;
	// WavefrontWaits and DynamicWaits must be zero by construction and are
	// recorded so the check below can enforce that invariant.
	DoacrossWaits  int64
	WavefrontWaits int64
	DynamicWaits   int64
	// Levels is the wavefront decomposition's level count.
	Levels int

	// ColdInspect is the wavefront preprocessing time of the first solve
	// (graph build + level decomposition + schedule); WarmInspect is the
	// preprocessing time of a later solve on the same solver, which the
	// schedule cache reduces to a memo lookup.
	ColdInspect time.Duration
	WarmInspect time.Duration
	// WarmCached reports whether the warm solve actually hit the cache.
	WarmCached bool

	// AutoPicked names the executor the Auto selection chose, AutoCosts the
	// coefficients it measured on the live pool (self-calibration probe),
	// and the Predicted*Ns fields the cost model's three estimates behind
	// the pick.
	AutoPicked           string
	AutoCosts            doacross.AutoCosts
	PredictedDoacrossNs  float64
	PredictedWavefrontNs float64
	PredictedDynamicNs   float64
	Checks               string
}

// sweepSelection resolves the executor subset of one sweep: nil or empty
// means all of ExecutorSweepNames, and an unknown name is rejected with the
// valid set spelled out.
func sweepSelection(execs []string) (map[string]bool, error) {
	enabled := make(map[string]bool, len(ExecutorSweepNames))
	if len(execs) == 0 {
		for _, name := range ExecutorSweepNames {
			enabled[name] = true
		}
		return enabled, nil
	}
	for _, name := range execs {
		valid := false
		for _, known := range ExecutorSweepNames {
			if name == known {
				valid = true
				break
			}
		}
		if !valid {
			return nil, fmt.Errorf("experiments: unknown executor %q (valid: %s)", name, strings.Join(ExecutorSweepNames, ", "))
		}
		enabled[name] = true
	}
	return enabled, nil
}

// RunExecutorSweep sweeps the selected executors over the given problems and
// worker counts, repeat runs per measurement (best time wins, as in the
// other live experiments). With no executor names it measures all of
// ExecutorSweepNames; an unknown name is an error naming the valid set.
func RunExecutorSweep(probs []stencil.Problem, workers []int, repeat int, execs ...string) ([]ExecutorSweepRow, error) {
	enabled, err := sweepSelection(execs)
	if err != nil {
		return nil, err
	}
	var rows []ExecutorSweepRow
	for _, prob := range probs {
		l, _, err := stencil.LowerFactor(prob, 1)
		if err != nil {
			return nil, err
		}
		rhs := stencil.RHS(l.N, 7)
		var want []float64
		seqSample := trace.Measure(repeat, func() {
			want = doacross.SolveSequential(l, rhs)
		})

		for _, p := range workers {
			row := ExecutorSweepRow{Problem: prob.String(), Workers: p, TSeq: seqSample.Min()}
			opts := liveSolverOptions(p, 32)
			row.Checks = "results match"
			check := func(got []float64) {
				if c := checkClose(want, got); c != "results match" {
					row.Checks = c
				}
			}
			// measure times repeat solves on a fresh solver built with the
			// extra options, returning the best time and the last report.
			measure := func(extra ...doacross.Option) (time.Duration, doacross.Report, error) {
				solver, err := doacross.NewSolver(l, append(append([]doacross.Option(nil), opts...), extra...)...)
				if err != nil {
					return 0, doacross.Report{}, err
				}
				defer solver.Close()
				out := make([]float64, l.N)
				var runErr error
				var rep doacross.Report
				sample := trace.Measure(repeat, func() {
					r, _, e := solverSolve(solver, rhs, out)
					if e != nil {
						runErr = e
					}
					rep = r
				})
				if runErr != nil {
					return 0, doacross.Report{}, runErr
				}
				check(out)
				return sample.Min(), rep, nil
			}

			if enabled["doacross"] {
				t, rep, err := measure()
				if err != nil {
					return nil, err
				}
				row.TDoacross = t
				row.DoacrossWaits = rep.WaitPolls
				row.DoacrossSpeedup = trace.Speedup(row.TSeq, t)
			}

			if enabled["wavefront"] {
				// The static wavefront additionally separates the cold solve
				// (graph build + decomposition + schedule) from the warm ones
				// the schedule cache serves.
				wf, err := doacross.NewSolver(l, append(append([]doacross.Option(nil), opts...), doacross.WithExecutor(doacross.Wavefront))...)
				if err != nil {
					return nil, err
				}
				wfOut := make([]float64, l.N)
				coldRep, _, err := solverSolve(wf, rhs, wfOut)
				if err != nil {
					wf.Close()
					return nil, err
				}
				row.ColdInspect = coldRep.PreTime
				row.Levels = coldRep.Levels
				var runErr error
				var wfRep doacross.Report
				wfSample := trace.Measure(repeat, func() {
					rep, _, e := solverSolve(wf, rhs, wfOut)
					if e != nil {
						runErr = e
					}
					wfRep = rep
				})
				wf.Close()
				if runErr != nil {
					return nil, runErr
				}
				check(wfOut)
				row.TWavefront = wfSample.Min()
				row.WarmInspect = wfRep.PreTime
				row.WarmCached = wfRep.InspectCached
				row.WavefrontWaits = wfRep.WaitPolls
				row.WavefrontSpeedup = trace.Speedup(row.TSeq, row.TWavefront)
			}

			if enabled["wavefront-dynamic"] {
				t, rep, err := measure(doacross.WithExecutor(doacross.WavefrontDynamic))
				if err != nil {
					return nil, err
				}
				row.TDynamic = t
				row.DynamicWaits = rep.WaitPolls
				row.DynamicSpeedup = trace.Speedup(row.TSeq, t)
				if row.Levels == 0 {
					row.Levels = rep.Levels
				}
			}

			if enabled["auto"] {
				t, autoRep, err := measure(doacross.WithExecutor(doacross.Auto))
				if err != nil {
					return nil, err
				}
				row.TAuto = t
				row.AutoSpeedup = trace.Speedup(row.TSeq, t)
				row.AutoPicked = autoRep.Executor
				row.AutoCosts = autoRep.AutoCosts
				row.PredictedDoacrossNs = autoRep.PredictedDoacrossNs
				row.PredictedWavefrontNs = autoRep.PredictedWavefrontNs
				row.PredictedDynamicNs = autoRep.PredictedDynamicNs
				if row.Levels == 0 {
					// With both wavefront executors excluded from the sweep,
					// the Auto run is the only source of the level count; the
					// consistency check below gates on it.
					row.Levels = autoRep.Levels
				}
			}

			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatExecutorSweep renders the executor comparison.
func FormatExecutorSweep(rows []ExecutorSweepRow) string {
	var b strings.Builder
	b.WriteString("Executor sweep (live): busy-wait doacross vs pre-scheduled wavefront (static and dynamic)\n")
	fmt.Fprintf(&b, "%-8s %3s %12s %12s %12s %12s %7s %7s %7s %9s %8s %12s %12s %-17s %s\n",
		"problem", "P", "Tseq", "Tdoacross", "Twavefront", "Twfdynamic", "S(da)", "S(wf)", "S(dyn)", "waits", "levels", "coldInspect", "warmInspect", "auto", "check")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %3d %12v %12v %12v %12v %7.2f %7.2f %7.2f %9d %8d %12v %12v %-17s %s\n",
			r.Problem, r.Workers, r.TSeq, r.TDoacross, r.TWavefront, r.TDynamic,
			r.DoacrossSpeedup, r.WavefrontSpeedup, r.DynamicSpeedup, r.DoacrossWaits, r.Levels,
			r.ColdInspect, r.WarmInspect, r.AutoPicked, r.Checks)
	}
	return b.String()
}

// CheckExecutorSweep verifies the sweep's qualitative claims: every measured
// executor reproduced the sequential result, warm solves hit the schedule
// cache, neither wavefront executor ever busy-waits, and the Auto pick is
// consistent with its own three predictions. Checks for executors excluded
// from the sweep are skipped.
func CheckExecutorSweep(rows []ExecutorSweepRow) []string {
	var problems []string
	for _, r := range rows {
		if r.Checks != "results match" {
			problems = append(problems, fmt.Sprintf("%s P=%d: %s", r.Problem, r.Workers, r.Checks))
		}
		if r.TWavefront > 0 {
			if !r.WarmCached {
				problems = append(problems, fmt.Sprintf("%s P=%d: warm solve missed the schedule cache", r.Problem, r.Workers))
			}
			if r.WavefrontWaits != 0 {
				problems = append(problems, fmt.Sprintf("%s P=%d: wavefront executor busy-waited (%d polls)", r.Problem, r.Workers, r.WavefrontWaits))
			}
		}
		if r.TDynamic > 0 && r.DynamicWaits != 0 {
			problems = append(problems, fmt.Sprintf("%s P=%d: dynamic wavefront executor busy-waited (%d polls)", r.Problem, r.Workers, r.DynamicWaits))
		}
		if r.AutoPicked == "" {
			continue
		}
		if r.AutoCosts.BarrierNs <= 0 || r.AutoCosts.FlagCheckNs <= 0 {
			problems = append(problems, fmt.Sprintf("%s P=%d: auto selection reported no calibrated costs (%+v)", r.Problem, r.Workers, r.AutoCosts))
		} else if r.Levels > 1 || r.AutoPicked != "wavefront" {
			// A single barrier-free level short-circuits to the static
			// wavefront regardless of the predictions, so a "wavefront" pick
			// is held to prediction consistency only when the solve is known
			// to be multi-level; any other pick can only have come from the
			// cost model and is always checked.
			predicted, best := "doacross", r.PredictedDoacrossNs
			if r.PredictedWavefrontNs < best {
				predicted, best = "wavefront", r.PredictedWavefrontNs
			}
			if r.PredictedDynamicNs > 0 && r.PredictedDynamicNs < best {
				predicted = "wavefront-dynamic"
			}
			if r.AutoPicked != predicted {
				problems = append(problems, fmt.Sprintf("%s P=%d: auto picked %s but its own predictions favor %s", r.Problem, r.Workers, r.AutoPicked, predicted))
			}
		}
	}
	return problems
}
