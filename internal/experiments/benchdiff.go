package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// ReadBenchJSON reads a BENCH_results.json file written by WriteBenchJSON.
func ReadBenchJSON(path string) (BenchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return BenchFile{}, err
	}
	var f BenchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return BenchFile{}, fmt.Errorf("parsing %s: %w", path, err)
	}
	return f, nil
}

// BenchDelta is one matched record pair of a baseline-vs-current comparison.
type BenchDelta struct {
	// Key identifies the workload: experiment, name, workers and executor.
	Key string
	// OldNs and NewNs are the baseline and current ns/op; Ratio is
	// NewNs/OldNs (above 1 means slower).
	OldNs, NewNs, Ratio float64
	// Regression reports whether the slowdown exceeds the comparison's
	// threshold.
	Regression bool
}

// BenchComparison is the result of comparing two bench files record by
// record.
type BenchComparison struct {
	// Threshold is the allowed fractional slowdown (0.20 = fail above +20%).
	Threshold float64
	// Deltas lists every workload present in both files, slowest-relative
	// first.
	Deltas []BenchDelta
	// OnlyOld and OnlyNew list workload keys present in just one file; they
	// are reported but never fail the comparison (experiments come and go
	// across PRs).
	OnlyOld, OnlyNew []string
}

// Regressions returns the deltas whose slowdown exceeds the threshold.
func (c BenchComparison) Regressions() []BenchDelta {
	var out []BenchDelta
	for _, d := range c.Deltas {
		if d.Regression {
			out = append(out, d)
		}
	}
	return out
}

// Vacuous reports whether the comparison matched no workloads at all even
// though both sides had records — a baseline recorded under a different
// configuration (worker counts, experiment set), which would otherwise let
// a regression gate pass without checking anything.
func (c BenchComparison) Vacuous() bool {
	return len(c.Deltas) == 0 && len(c.OnlyOld) > 0 && len(c.OnlyNew) > 0
}

// Format renders the comparison as a human-readable report.
func (c BenchComparison) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Bench comparison (threshold +%.0f%% ns/op):\n", c.Threshold*100)
	for _, d := range c.Deltas {
		mark := " "
		if d.Regression {
			mark = "!"
		}
		fmt.Fprintf(&b, "%s %-48s %12.0f -> %12.0f ns/op (%+.1f%%)\n",
			mark, d.Key, d.OldNs, d.NewNs, (d.Ratio-1)*100)
	}
	for _, k := range c.OnlyOld {
		fmt.Fprintf(&b, "  %-48s only in baseline\n", k)
	}
	for _, k := range c.OnlyNew {
		fmt.Fprintf(&b, "  %-48s only in current\n", k)
	}
	if n := len(c.Regressions()); n > 0 {
		fmt.Fprintf(&b, "%d workload(s) regressed beyond the threshold\n", n)
	} else {
		b.WriteString("no regressions beyond the threshold\n")
	}
	return b.String()
}

// benchKey identifies a record for matching across files.
func benchKey(r BenchRecord) string {
	key := fmt.Sprintf("%s/%s/P=%d", r.Experiment, r.Name, r.Workers)
	if r.Executor != "" {
		key += "/" + r.Executor
	}
	return key
}

// CompareBenchRecords matches baseline and current records by workload key
// and flags every current record that is more than threshold slower (ns/op)
// than its baseline. Records without a counterpart, duplicates beyond the
// first, and non-positive measurements are reported but never flagged.
func CompareBenchRecords(old, new []BenchRecord, threshold float64) BenchComparison {
	c := BenchComparison{Threshold: threshold}
	oldBy := make(map[string]BenchRecord)
	for _, r := range old {
		if _, dup := oldBy[benchKey(r)]; !dup {
			oldBy[benchKey(r)] = r
		}
	}
	seenNew := make(map[string]bool)
	for _, r := range new {
		k := benchKey(r)
		if seenNew[k] {
			continue
		}
		seenNew[k] = true
		o, ok := oldBy[k]
		if !ok {
			c.OnlyNew = append(c.OnlyNew, k)
			continue
		}
		if o.NsPerOp <= 0 || r.NsPerOp <= 0 {
			continue
		}
		ratio := r.NsPerOp / o.NsPerOp
		c.Deltas = append(c.Deltas, BenchDelta{
			Key:        k,
			OldNs:      o.NsPerOp,
			NewNs:      r.NsPerOp,
			Ratio:      ratio,
			Regression: ratio > 1+threshold,
		})
	}
	for k := range oldBy {
		if !seenNew[k] {
			c.OnlyOld = append(c.OnlyOld, k)
		}
	}
	sort.Slice(c.Deltas, func(i, j int) bool { return c.Deltas[i].Ratio > c.Deltas[j].Ratio })
	sort.Strings(c.OnlyOld)
	sort.Strings(c.OnlyNew)
	return c
}
