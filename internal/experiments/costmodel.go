// Package experiments is the harness that regenerates every table and figure
// of the paper's evaluation (Section 3), plus the design-choice ablations
// listed in DESIGN.md. Numbers for the paper's 16-processor Encore Multimax
// are produced on the deterministic machine simulator (package machine); the
// live goroutine runtime (package core) is used for correctness validation
// and host-scale measurements.
package experiments

import (
	"doacross"
	"doacross/internal/machine"
	"doacross/internal/sparse"
	"doacross/internal/testloop"
)

// PaperProcessors is the processor count of the paper's Encore Multimax/320
// configuration used throughout Section 3.
const PaperProcessors = 16

// Figure 6 cost-model calibration.
//
// The only absolute anchors the paper gives for the synthetic test loop are
// the odd-L efficiency floors: about 0.33 for M=1 and about 0.50 for M=5.
// Odd L means no cross-iteration dependencies, so those floors measure pure
// overhead: eff = work / (work + overhead) with
//
//	work(M)     = fig6BaseWork + fig6TermWork*M
//	overhead(M) = fig6CheckPerRead*M + fig6IterOverhead + fig6PrePerIter + fig6PostPerIter
//
// Setting fig6TermWork = 1 fixes the time unit; the floors then force
// fig6CheckPerRead = 0.7 and (fig6IterOverhead + pre + post) = 1.7:
//
//	M=1: 1.2 / (1.2 + 0.7 + 1.7) = 0.333
//	M=5: 5.2 / (5.2 + 3.5 + 1.7) = 0.500
const (
	fig6BaseWork     = 0.2
	fig6TermWork     = 1.0
	fig6CheckPerRead = 0.7
	fig6IterOverhead = 1.2
	fig6PrePerIter   = 0.25
	fig6PostPerIter  = 0.25
)

// Wavefront-model calibration.
//
// The pre-scheduled wavefront executor pays none of the doacross's per-read
// checks; its per-iteration overhead is the ynew seeding and loop
// bookkeeping with no flag to set — calibrated as half the doacross
// IterOverhead. The paper reports no Multimax barrier time, so the barrier
// is anchored to the synchronization it replaces: one all-processor
// rendezvous is taken as roughly a dozen flag operations (the Multimax's
// shared-bus atomic increment per processor plus the spin until the count
// fills), which puts one barrier at several iterations' worth of overhead —
// expensive enough that deep, narrow level structures lose to the doacross
// pipelining, cheap enough that wide levels amortize it easily.
// The dynamic within-level executor's chunk claim is one shared-bus atomic
// fetch-add — the same primitive as one flag operation, so the claim is
// anchored to the flag-check cost of each calibration. The chunk size
// matches the live runtime's sched.DefaultChunk.
const (
	fig6Barrier        = 8.0
	fig6WfIterOverhead = 0.6
	fig6Claim          = 0.7
	triBarrier         = 4.0
	triWfIterOverhead  = 0.35
	triClaim           = 0.35
	wfChunk            = 16
)

// Figure6WavefrontCosts returns the wavefront-executor costs calibrated
// against the Figure 6 constants.
func Figure6WavefrontCosts() machine.WavefrontCosts {
	return machine.WavefrontCosts{Barrier: fig6Barrier, IterOverhead: fig6WfIterOverhead, Claim: fig6Claim, Chunk: wfChunk}
}

// TrisolveWavefrontCosts returns the wavefront-executor costs for the
// Table 1 triangular solves.
func TrisolveWavefrontCosts() machine.WavefrontCosts {
	return machine.WavefrontCosts{Barrier: triBarrier, IterOverhead: triWfIterOverhead, Claim: triClaim, Chunk: wfChunk}
}

// Figure6AutoCosts maps the Figure 6 calibration onto the Auto selection's
// coefficient space: the simulator-side defaults of the cost-model
// comparison (on a live host the runtime measures BarrierNs and FlagCheckNs
// itself). The per-iteration work term is the test loop's BaseWork + M
// multiply-adds.
func Figure6AutoCosts(m int) doacross.AutoCosts {
	return doacross.AutoCosts{
		BarrierNs:   fig6Barrier,
		FlagCheckNs: fig6CheckPerRead,
		ClaimNs:     fig6Claim,
		IterNs:      fig6BaseWork + fig6TermWork*float64(m),
	}
}

// TrisolveAutoCosts maps the Table 1 calibration onto the Auto selection's
// coefficient space for a forward substitution on t, with the matrix's mean
// row occupancy as the per-iteration work term.
func TrisolveAutoCosts(t *sparse.Triangular) doacross.AutoCosts {
	meanReads := 0.0
	if t.N > 0 {
		meanReads = float64(t.NNZ()) / float64(t.N)
	}
	return doacross.AutoCosts{
		BarrierNs:   triBarrier,
		FlagCheckNs: triCheckPerRead,
		ClaimNs:     triClaim,
		IterNs:      triBaseWork + triTermWork*meanReads,
	}
}

// Figure6CostModel returns the calibrated cost model for the Figure 4 test
// loop with inner length M.
func Figure6CostModel(m int) machine.CostModel {
	return machine.CostModel{
		BaseWork:     func(int) float64 { return fig6BaseWork },
		TermWork:     fig6TermWork,
		ReadsPerIter: func(int) int { return m },
		CheckPerRead: fig6CheckPerRead,
		IterOverhead: fig6IterOverhead,
		PrePerIter:   fig6PrePerIter,
		PostPerIter:  fig6PostPerIter,
	}
}

// Figure6CostModelFor returns the cost model for a specific test-loop
// configuration.
func Figure6CostModelFor(c testloop.Config) machine.CostModel {
	return Figure6CostModel(c.M)
}

// Table 1 cost-model calibration.
//
// The triangular-solve inner term is an indirectly addressed double-precision
// multiply-add, substantially heavier relative to the iter-table check than
// the Figure 4 term, so the solve uses its own work/overhead ratio. The
// constants are chosen so that the simulated 16-processor efficiencies land
// in the bands the paper reports (0.32–0.46 for the natural-order doacross,
// 0.63–0.75 after the doconsider reordering); EXPERIMENTS.md records the
// resulting values for every matrix.
const (
	triBaseWork     = 1.0
	triTermWork     = 2.0
	triCheckPerRead = 0.35
	triIterOverhead = 0.70
	triPrePerIter   = 0.25
	triPostPerIter  = 0.35
	// triMsPerUnit converts simulated time units into the "milliseconds"
	// reported in the Table 1 reproduction. The scale is fixed so that the
	// simulated sequential time of the 5-PT problem matches the paper's
	// 192 ms; it affects presentation only, never ratios.
	triMsPerUnit = 192.0 / (3969.0 * (triBaseWork + triTermWork*1.9395))
)

// TrisolveCostModel returns the calibrated cost model for a forward
// substitution on the lower triangular matrix t: iteration i performs one
// read term per off-diagonal nonzero of row i.
func TrisolveCostModel(t *sparse.Triangular) machine.CostModel {
	return machine.CostModel{
		BaseWork:     func(int) float64 { return triBaseWork },
		TermWork:     triTermWork,
		ReadsPerIter: func(i int) int { return t.RowNNZ(i) },
		CheckPerRead: triCheckPerRead,
		IterOverhead: triIterOverhead,
		PrePerIter:   triPrePerIter,
		PostPerIter:  triPostPerIter,
	}
}

// SimulatedMs converts simulated trisolve time units to the milliseconds
// scale used in the Table 1 reproduction.
func SimulatedMs(units float64) float64 { return units * triMsPerUnit }
