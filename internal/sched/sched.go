// Package sched is the processor-scheduling substrate for the preprocessed
// doacross runtime: it decides which loop iterations run on which of the P
// workers and in what order, and provides the worker pool that executes them.
//
// The paper schedules iterations of the parallelized loop among the
// processors of an Encore Multimax; the exact assignment policy is left to
// the runtime. This package implements the standard choices (static block,
// static cyclic, dynamic self-scheduling) plus an explicit assignment used by
// the doconsider reordering, so the effect of the policy can be measured.
package sched

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Policy selects how iterations are assigned to workers.
type Policy int

const (
	// Block assigns contiguous ranges of (position-order) iterations to each
	// worker: worker p gets positions [p*N/P, (p+1)*N/P).
	Block Policy = iota
	// Cyclic assigns position-order iterations round robin: worker p gets
	// positions p, p+P, p+2P, ...
	Cyclic
	// Dynamic uses self-scheduling: workers repeatedly grab the next chunk of
	// positions from a shared counter.
	Dynamic
)

// String returns a short name for the policy.
func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case Cyclic:
		return "cyclic"
	case Dynamic:
		return "dynamic"
	default:
		return "unknown"
	}
}

// DefaultChunk is the chunk size used by Dynamic when none is specified.
const DefaultChunk = 16

// Schedule is a concrete assignment of loop positions to workers. Positions
// index into an execution order (which may be a permutation of the original
// iteration space); the runtime maps positions back to original iteration
// indices separately.
//
// Each worker executes its assigned positions strictly in the order listed.
type Schedule struct {
	// PerWorker[p] lists the positions executed by worker p, in execution
	// order.
	PerWorker [][]int
	// N is the total number of positions.
	N int
	// PolicyUsed records how the schedule was built (for reporting).
	PolicyUsed Policy
}

// Workers returns the number of workers in the schedule.
func (s *Schedule) Workers() int { return len(s.PerWorker) }

// Validate checks that the schedule covers every position in [0, N) exactly
// once.
func (s *Schedule) Validate() error {
	seen := make([]bool, s.N)
	count := 0
	for p, list := range s.PerWorker {
		for _, pos := range list {
			if pos < 0 || pos >= s.N {
				return fmt.Errorf("worker %d: position %d out of range [0,%d)", p, pos, s.N)
			}
			if seen[pos] {
				return fmt.Errorf("worker %d: position %d assigned more than once", p, pos)
			}
			seen[pos] = true
			count++
		}
	}
	if count != s.N {
		return fmt.Errorf("schedule covers %d of %d positions", count, s.N)
	}
	return nil
}

// NewBlock builds a static block schedule of n positions over p workers.
func NewBlock(n, p int) *Schedule {
	p = clampWorkers(p, n)
	s := &Schedule{PerWorker: make([][]int, p), N: n, PolicyUsed: Block}
	for w := 0; w < p; w++ {
		lo, hi := BlockRange(n, p, w)
		list := make([]int, 0, hi-lo)
		for pos := lo; pos < hi; pos++ {
			list = append(list, pos)
		}
		s.PerWorker[w] = list
	}
	return s
}

// NewCyclic builds a static cyclic schedule of n positions over p workers.
func NewCyclic(n, p int) *Schedule {
	p = clampWorkers(p, n)
	s := &Schedule{PerWorker: make([][]int, p), N: n, PolicyUsed: Cyclic}
	for w := 0; w < p; w++ {
		list := make([]int, 0, (n+p-1)/p)
		for pos := w; pos < n; pos += p {
			list = append(list, pos)
		}
		s.PerWorker[w] = list
	}
	return s
}

// NewExplicit wraps an explicit per-worker assignment. The caller is
// responsible for ensuring the assignment covers each position exactly once
// (Validate checks this).
func NewExplicit(perWorker [][]int, n int) *Schedule {
	return &Schedule{PerWorker: perWorker, N: n, PolicyUsed: Block}
}

// BlockRange returns the half-open range of positions assigned to worker w by
// a block distribution of n positions over p workers. The first n%p workers
// receive one extra position.
func BlockRange(n, p, w int) (lo, hi int) {
	base := n / p
	rem := n % p
	if w < rem {
		lo = w * (base + 1)
		hi = lo + base + 1
	} else {
		lo = rem*(base+1) + (w-rem)*base
		hi = lo + base
	}
	return lo, hi
}

func clampWorkers(p, n int) int {
	if p < 1 {
		p = 1
	}
	if n > 0 && p > n {
		p = n
	}
	if n == 0 {
		p = 1
	}
	return p
}

// Pool executes loop positions on a fixed number of workers.
type Pool struct {
	workers int
}

// NewPool creates a pool of p workers (at least 1).
func NewPool(p int) *Pool {
	if p < 1 {
		p = 1
	}
	return &Pool{workers: p}
}

// Workers reports the pool size.
func (pl *Pool) Workers() int { return pl.workers }

// RunSchedule executes body(worker, position) for every position of the
// schedule, with worker w processing its assigned positions in order on its
// own goroutine. It blocks until all positions are done.
func (pl *Pool) RunSchedule(s *Schedule, body func(worker, pos int)) {
	var wg sync.WaitGroup
	for w := 0; w < len(s.PerWorker); w++ {
		if len(s.PerWorker[w]) == 0 {
			continue
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, pos := range s.PerWorker[w] {
				body(w, pos)
			}
		}(w)
	}
	wg.Wait()
}

// RunDynamic executes body(worker, position) for positions 0..n-1 using
// self-scheduling: workers repeatedly claim the next chunk of positions from
// a shared counter. Within a chunk, positions run in increasing order.
func (pl *Pool) RunDynamic(n, chunk int, body func(worker, pos int)) {
	if chunk < 1 {
		chunk = DefaultChunk
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	workers := pl.workers
	if workers > n && n > 0 {
		workers = n
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				start := int(next.Add(int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for pos := start; pos < end; pos++ {
					body(w, pos)
				}
			}
		}(w)
	}
	wg.Wait()
}

// ParallelFor runs body(i) for i in [0, n) across the pool's workers using a
// block distribution. It is the building block for the paper's fully
// parallelizable preprocessing and postprocessing phases (doall loops).
func (pl *Pool) ParallelFor(n int, body func(i int)) {
	if n <= 0 {
		return
	}
	workers := pl.workers
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := BlockRange(n, workers, w)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				body(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// Build constructs a schedule of n positions over p workers with the given
// policy. Dynamic schedules cannot be materialized ahead of time (the
// assignment depends on timing), so Build falls back to Cyclic for reporting
// purposes; use Pool.RunDynamic for true self-scheduling.
func Build(policy Policy, n, p int) *Schedule {
	switch policy {
	case Cyclic:
		return NewCyclic(n, p)
	case Dynamic:
		s := NewCyclic(n, p)
		s.PolicyUsed = Dynamic
		return s
	default:
		return NewBlock(n, p)
	}
}
