// Package sched is the processor-scheduling substrate for the preprocessed
// doacross runtime: it decides which loop iterations run on which of the P
// workers and in what order, and provides the worker pool that executes them.
//
// The paper schedules iterations of the parallelized loop among the
// processors of an Encore Multimax; the exact assignment policy is left to
// the runtime. This package implements the standard choices (static block,
// static cyclic, dynamic self-scheduling) plus an explicit assignment used by
// the doconsider reordering, so the effect of the policy can be measured.
package sched

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Policy selects how iterations are assigned to workers.
type Policy int

const (
	// Block assigns contiguous ranges of (position-order) iterations to each
	// worker: worker p gets positions [p*N/P, (p+1)*N/P).
	Block Policy = iota
	// Cyclic assigns position-order iterations round robin: worker p gets
	// positions p, p+P, p+2P, ...
	Cyclic
	// Dynamic uses self-scheduling: workers repeatedly grab the next chunk of
	// positions from a shared counter.
	Dynamic
)

// String returns a short name for the policy.
func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case Cyclic:
		return "cyclic"
	case Dynamic:
		return "dynamic"
	default:
		return "unknown"
	}
}

// DefaultChunk is the chunk size used by Dynamic when none is specified.
const DefaultChunk = 16

// Schedule is a concrete assignment of loop positions to workers. Positions
// index into an execution order (which may be a permutation of the original
// iteration space); the runtime maps positions back to original iteration
// indices separately.
//
// Each worker executes its assigned positions strictly in the order listed.
type Schedule struct {
	// PerWorker[p] lists the positions executed by worker p, in execution
	// order.
	PerWorker [][]int
	// N is the total number of positions.
	N int
	// PolicyUsed records how the schedule was built (for reporting).
	PolicyUsed Policy
}

// Workers returns the number of workers in the schedule.
func (s *Schedule) Workers() int { return len(s.PerWorker) }

// Validate checks that the schedule covers every position in [0, N) exactly
// once.
func (s *Schedule) Validate() error {
	seen := make([]bool, s.N)
	count := 0
	for p, list := range s.PerWorker {
		for _, pos := range list {
			if pos < 0 || pos >= s.N {
				return fmt.Errorf("worker %d: position %d out of range [0,%d)", p, pos, s.N)
			}
			if seen[pos] {
				return fmt.Errorf("worker %d: position %d assigned more than once", p, pos)
			}
			seen[pos] = true
			count++
		}
	}
	if count != s.N {
		return fmt.Errorf("schedule covers %d of %d positions", count, s.N)
	}
	return nil
}

// NewBlock builds a static block schedule of n positions over p workers.
func NewBlock(n, p int) *Schedule {
	p = clampWorkers(p, n)
	s := &Schedule{PerWorker: make([][]int, p), N: n, PolicyUsed: Block}
	for w := 0; w < p; w++ {
		lo, hi := BlockRange(n, p, w)
		list := make([]int, 0, hi-lo)
		for pos := lo; pos < hi; pos++ {
			list = append(list, pos)
		}
		s.PerWorker[w] = list
	}
	return s
}

// NewCyclic builds a static cyclic schedule of n positions over p workers.
func NewCyclic(n, p int) *Schedule {
	p = clampWorkers(p, n)
	s := &Schedule{PerWorker: make([][]int, p), N: n, PolicyUsed: Cyclic}
	for w := 0; w < p; w++ {
		list := make([]int, 0, (n+p-1)/p)
		for pos := w; pos < n; pos += p {
			list = append(list, pos)
		}
		s.PerWorker[w] = list
	}
	return s
}

// NewExplicit wraps an explicit per-worker assignment. The caller is
// responsible for ensuring the assignment covers each position exactly once
// (Validate checks this).
func NewExplicit(perWorker [][]int, n int) *Schedule {
	return &Schedule{PerWorker: perWorker, N: n, PolicyUsed: Block}
}

// BlockRange returns the half-open range of positions assigned to worker w by
// a block distribution of n positions over p workers. The first n%p workers
// receive one extra position.
func BlockRange(n, p, w int) (lo, hi int) {
	base := n / p
	rem := n % p
	if w < rem {
		lo = w * (base + 1)
		hi = lo + base + 1
	} else {
		lo = rem*(base+1) + (w-rem)*base
		hi = lo + base
	}
	return lo, hi
}

func clampWorkers(p, n int) int {
	if p < 1 {
		p = 1
	}
	if n > 0 && p > n {
		p = n
	}
	if n == 0 {
		p = 1
	}
	return p
}

// Pool executes loop positions on a fixed number of workers.
//
// A Pool created by NewPool is persistent: the worker goroutines are started
// once and reused by every RunSchedule, RunDynamic, ParallelFor or Submit
// call, which becomes a job submission with a completion barrier rather than
// a goroutine-spawn loop. This mirrors the paper's setting, where one set of
// processors is reused across successive executions of the same preprocessed
// loop — an iterative driver (a Krylov solve calling the doacross triangular
// solve thousands of times) pays the worker start-up cost once instead of
// per phase per run.
//
// Jobs are published through a single atomic epoch word; a worker that just
// finished a job spin-yields on the epoch for a short budget before parking
// on its wake channel, so back-to-back submissions (the reuse pattern the
// pool exists for) are picked up with one atomic load and no scheduler
// round-trip, while an idle pool costs nothing. The submitting goroutine
// executes the last shard itself, so a pool of P workers keeps only P-1
// resident goroutines.
//
// A Pool executes one parallel region at a time: submissions from different
// goroutines are serialized, so bodies of the same job may synchronize with
// each other (as doacross executors do) but bodies of different jobs must
// not. Close retires the workers; a Pool that is garbage collected without
// Close releases its workers through a finalizer, so dropping a Pool never
// leaks goroutines.
type Pool struct {
	workers int
	// spawn selects the pre-pool behaviour (one goroutine spawned per worker
	// per call). It exists as the measurement baseline for the persistent
	// pool and as the fallback after Close.
	spawn bool

	mu     sync.Mutex // serializes submissions; held for the whole job
	seq    uint64     // job sequence number, guarded by mu
	sh     *poolShared
	closed bool
}

// poolShared is the state shared between the Pool handle and its resident
// workers. It is a separate allocation so the workers never reference the
// Pool itself: when the handle becomes unreachable its finalizer can run and
// release the workers.
type poolShared struct {
	// epoch packs the job sequence number and the job's worker count k as
	// seq<<epochKBits | k. Publishing a job is one atomic store; workers
	// that observe a new epoch and have index < k-1 run the job's fn.
	// Packing k into the epoch lets non-participating workers skip a job
	// without reading any other (unsynchronized) field.
	epoch atomic.Uint64
	// fn is the current job's body. It is written before the epoch store and
	// read only by participating workers, whose completion the submitter
	// awaits before the next write — so the plain field is race-free.
	fn     func(worker int)
	done   sync.WaitGroup
	parked []atomic.Bool
	wake   []chan struct{}
	quit   chan struct{}
}

const (
	// epochKBits is the number of low epoch bits holding the job's k; the
	// remaining 48 bits hold the job sequence number, which therefore wraps
	// only after 2^48 submissions — decades of back-to-back jobs, so a
	// worker can never be parked across a full wrap and mistake a new epoch
	// for its last one. Pool sizes are clamped to MaxWorkers to fit.
	epochKBits = 16
	epochKMask = 1<<epochKBits - 1
	// MaxWorkers is the largest supported pool size (the job's worker count
	// must fit in the low epoch bits).
	MaxWorkers = epochKMask
	// spinRounds bounds how many scheduler yields an idle worker spends
	// watching the epoch before parking on its wake channel.
	spinRounds = 64
)

// NewPool creates a persistent pool of p workers (at least 1). The p-1
// resident worker goroutines are started immediately and live until Close
// (or until the pool is garbage collected); the submitting goroutine serves
// as the p-th worker of every job.
func NewPool(p int) *Pool {
	if p < 1 {
		p = 1
	}
	if p > MaxWorkers {
		p = MaxWorkers
	}
	pl := &Pool{workers: p}
	if p == 1 {
		// Every job runs inline on the submitter; no resident workers.
		return pl
	}
	sh := &poolShared{
		parked: make([]atomic.Bool, p-1),
		wake:   make([]chan struct{}, p-1),
		quit:   make(chan struct{}),
	}
	for w := range sh.wake {
		sh.wake[w] = make(chan struct{}, 1)
		go sh.worker(w)
	}
	pl.sh = sh
	runtime.SetFinalizer(pl, (*Pool).Close)
	return pl
}

// NewSpawnPool creates a pool that spawns one goroutine per worker per call,
// the behaviour the persistent pool replaced. It exists so the cost of
// per-call spawning can be measured against the pooled path (see
// BenchmarkRunReuse); new code should use NewPool.
func NewSpawnPool(p int) *Pool {
	if p < 1 {
		p = 1
	}
	return &Pool{workers: p, spawn: true}
}

// worker is the resident loop of pool worker w: watch the epoch, run the
// shard when a new job includes this worker, park after the spin budget.
func (s *poolShared) worker(w int) {
	var last uint64
	idle := 0
	for {
		select {
		case <-s.quit:
			return
		default:
		}
		if e := s.epoch.Load(); e != last {
			last = e
			if w < int(e&epochKMask)-1 {
				s.fn(w)
				s.done.Done()
			}
			idle = 0
			continue
		}
		idle++
		if idle <= spinRounds {
			runtime.Gosched()
			continue
		}
		// Park. The flag-then-recheck order pairs with the submitter's
		// epoch-store-then-swap order, so either this worker sees the new
		// epoch here or the submitter sees the parked flag and sends a wake
		// token — a wakeup can never be missed. A stale token (from a park
		// aborted by the recheck) is absorbed by the next park attempt.
		s.parked[w].Store(true)
		if s.epoch.Load() != last {
			s.parked[w].Store(false)
			idle = 0
			continue
		}
		select {
		case <-s.wake[w]:
		case <-s.quit:
			return
		}
		idle = 0
	}
}

// Workers reports the pool size.
func (pl *Pool) Workers() int { return pl.workers }

// Close retires the pool's workers. It is idempotent and safe to call
// concurrently with (but not during) submissions; calls made after Close
// still execute correctly by falling back to spawn-per-call.
func (pl *Pool) Close() {
	if pl.spawn {
		return
	}
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.closed {
		return
	}
	pl.closed = true
	if pl.sh != nil {
		close(pl.sh.quit)
	}
	runtime.SetFinalizer(pl, nil)
}

// Submit runs fn(w) for every worker index w in [0, k) concurrently and
// returns when all calls have finished. k is clamped to the pool size. The
// k invocations are guaranteed to run concurrently with each other, so they
// may synchronize among themselves (the doacross executor relies on this);
// Submit is the primitive underneath RunSchedule, RunDynamic and ParallelFor
// and is exported for callers that fuse several phases into one submission.
func (pl *Pool) Submit(k int, fn func(worker int)) {
	if k <= 0 {
		return
	}
	if k > pl.workers {
		k = pl.workers
	}
	if k == 1 {
		// A one-worker region needs no concurrency; run it on the caller
		// without waking anything.
		fn(0)
		return
	}
	if pl.spawn {
		spawnRun(k, fn)
		return
	}
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.closed {
		spawnRun(k, fn)
		return
	}
	s := pl.sh
	s.fn = fn
	s.done.Add(k - 1)
	pl.seq++
	s.epoch.Store(pl.seq<<epochKBits | uint64(k))
	// Wake only the parked participants; spinning ones have already seen
	// the epoch or will within their spin budget. The send must not block:
	// a stale token can sit in the channel when a worker's park attempt
	// raced an earlier submission and the worker self-unparked through the
	// epoch recheck without draining it. A full channel already guarantees
	// the worker's next park attempt returns immediately, so dropping the
	// token is exactly right — blocking here would deadlock against a
	// worker that is already past the recheck and inside the job, waiting
	// for the submitter's own shard.
	for w := 0; w < k-1; w++ {
		if s.parked[w].Swap(false) {
			select {
			case s.wake[w] <- struct{}{}:
			default:
			}
		}
	}
	// The submitter is the job's last worker: one less goroutine to wake,
	// and it does useful work instead of parking for the whole region.
	fn(k - 1)
	s.done.Wait()
	s.fn = nil
}

// spawnRun is the pre-pool execution path: one goroutine per worker per call.
func spawnRun(k int, fn func(worker int)) {
	var wg sync.WaitGroup
	wg.Add(k)
	for w := 0; w < k; w++ {
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}

// RunSchedule executes body(worker, position) for every position of the
// schedule, with worker w processing its assigned positions in order. It
// blocks until all positions are done.
func (pl *Pool) RunSchedule(s *Schedule, body func(worker, pos int)) {
	k := len(s.PerWorker)
	if k > pl.workers {
		// A schedule wider than the pool cannot be placed on the resident
		// workers one-to-one; run it on spawned goroutines as before.
		spawnRun(k, func(w int) {
			for _, pos := range s.PerWorker[w] {
				body(w, pos)
			}
		})
		return
	}
	pl.Submit(k, func(w int) {
		for _, pos := range s.PerWorker[w] {
			body(w, pos)
		}
	})
}

// RunDynamic executes body(worker, position) for positions 0..n-1 using
// self-scheduling: workers repeatedly claim the next chunk of positions from
// a shared counter. Within a chunk, positions run in increasing order.
func (pl *Pool) RunDynamic(n, chunk int, body func(worker, pos int)) {
	if n <= 0 {
		return
	}
	if chunk < 1 {
		chunk = DefaultChunk
	}
	k := pl.workers
	if k > n {
		k = n
	}
	var next atomic.Int64
	pl.Submit(k, func(w int) {
		DynamicLoop(&next, n, chunk, w, body, nil)
	})
}

// DynamicLoop is the self-scheduling claim loop shared by RunDynamic and
// callers that fuse the executor into a larger Submit (core.Runtime.Run): it
// repeatedly claims chunks from next until the position space [0, n) is
// exhausted. chunk must be positive. A non-nil stop is consulted before each
// chunk claim; once it reports true the worker stops claiming and returns,
// which is how an aborted (cancelled or failed) run drains the remaining
// iteration space without executing it.
func DynamicLoop(next *atomic.Int64, n, chunk, w int, body func(worker, pos int), stop func() bool) {
	for {
		if stop != nil && stop() {
			return
		}
		start := int(next.Add(int64(chunk))) - chunk
		if start >= n {
			return
		}
		end := start + chunk
		if end > n {
			end = n
		}
		for pos := start; pos < end; pos++ {
			body(w, pos)
		}
	}
}

// LevelChunk clamps a dynamic chunk size to the width of one level: claiming
// chunk positions at once from a level with fewer than 2*p chunks' worth of
// members would let a single claim serialize the level (fewer chunks than
// workers), so the chunk shrinks until every worker can expect at least two
// claims, bottoming out at 1. Wide levels keep the configured chunk and its
// lower claim traffic. Both the live dynamic wavefront executor and the
// machine model apply this clamp per level, so their claim counts agree.
func LevelChunk(chunk, width, p int) int {
	if p < 1 {
		p = 1
	}
	if limit := width / (2 * p); chunk > limit {
		chunk = limit
	}
	if chunk < 1 {
		chunk = 1
	}
	return chunk
}

// CacheLineElems is the number of float64 elements that share one 64-byte
// cache line — the natural alignment unit for chunked claims over dense
// solution vectors, where a chunk boundary inside a line makes two workers
// write the same line (false sharing) and read-locality is per-line anyway.
const CacheLineElems = 8

// LevelChunkAligned is LevelChunk with the result rounded down to a multiple
// of align when it is larger than align: chunks claim whole cache lines, so
// neighbouring claims touch disjoint lines. Rounding only ever shrinks the
// chunk, so the ≥2-claims-per-worker clamp LevelChunk establishes is
// preserved; chunks at or below align are left alone (sub-line levels can't
// be aligned, and correctness never depends on alignment). align < 2 is the
// identity on LevelChunk.
func LevelChunkAligned(chunk, width, p, align int) int {
	c := LevelChunk(chunk, width, p)
	if align > 1 && c > align {
		c -= c % align
	}
	return c
}

// DynamicClaims returns the number of chunk claims a dynamic self-scheduled
// execution of one level of the given width issues: one per successful claim
// at the level-clamped chunk size (LevelChunk), plus each worker's final
// failed claim. It is the claim-count formula shared by the live inspector's
// statistics and the simulator-side mirrors, so the Auto cost model prices
// the same traffic everywhere.
func DynamicClaims(width, chunk, p int) int {
	if p < 1 {
		p = 1
	}
	if width <= 0 {
		return p
	}
	c := LevelChunk(chunk, width, p)
	return (width+c-1)/c + p
}

// LevelImbalance replays the static distribution of one level's width
// members over p workers — Block gives each worker a contiguous chunk,
// Cyclic (and Dynamic, which the static schedule degrades to Cyclic) deals
// round robin, exactly as NewLevelSchedule builds it — and returns how much
// load the slowest worker carries beyond a balanced ceil split, with load(k)
// the cost of the level's k-th member. It is what a dynamic within-level
// assignment of the same level reclaims; the inspector sums it over levels
// with in-degree as the load.
func LevelImbalance(width int, policy Policy, p int, load func(k int) int) int {
	if p <= 1 || width <= 0 {
		return 0
	}
	cyclic := policy == Cyclic || policy == Dynamic
	total, maxLoad := 0, 0
	for w := 0; w < p; w++ {
		sum := 0
		if cyclic {
			for k := w; k < width; k += p {
				sum += load(k)
			}
		} else {
			lo, hi := BlockRange(width, p, w)
			for k := lo; k < hi; k++ {
				sum += load(k)
			}
		}
		total += sum
		if sum > maxLoad {
			maxLoad = sum
		}
	}
	if balanced := (total + p - 1) / p; maxLoad > balanced {
		return maxLoad - balanced
	}
	return 0
}

// DynamicLoopOver is the member-list form of DynamicLoop: workers claim
// chunks of positions into members and run body on the iteration index stored
// at each claimed position. It is the within-level claim loop of the dynamic
// wavefront executor — a level's member list is exactly such a slice — and
// next must start at zero for each list (the executor resets it at the level
// barrier). chunk must be positive; stop semantics match DynamicLoop.
func DynamicLoopOver(next *atomic.Int64, members []int32, chunk, w int, body func(worker, iter int), stop func() bool) {
	n := len(members)
	for {
		if stop != nil && stop() {
			return
		}
		start := int(next.Add(int64(chunk))) - chunk
		if start >= n {
			return
		}
		end := start + chunk
		if end > n {
			end = n
		}
		for _, it := range members[start:end] {
			body(w, int(it))
		}
	}
}

// RunDynamicOver executes body(worker, iter) for every iteration index in
// members using self-scheduling over the pool's workers: the level-aware
// dynamic doall. Unlike RunDynamic the position space is an explicit list, so
// a caller can run one wavefront level (or any other subset) dynamically
// without renumbering its iterations.
func (pl *Pool) RunDynamicOver(members []int32, chunk int, body func(worker, iter int)) {
	if len(members) == 0 {
		return
	}
	if chunk < 1 {
		chunk = DefaultChunk
	}
	k := pl.workers
	if k > len(members) {
		k = len(members)
	}
	var next atomic.Int64
	pl.Submit(k, func(w int) {
		DynamicLoopOver(&next, members, chunk, w, body, nil)
	})
}

// ParallelFor runs body(i) for i in [0, n) across the pool's workers using a
// block distribution. It is the building block for the paper's fully
// parallelizable preprocessing and postprocessing phases (doall loops).
func (pl *Pool) ParallelFor(n int, body func(i int)) {
	if n <= 0 {
		return
	}
	k := pl.workers
	if k > n {
		k = n
	}
	pl.Submit(k, func(w int) {
		lo, hi := BlockRange(n, k, w)
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// Build constructs a schedule of n positions over p workers with the given
// policy. Dynamic schedules cannot be materialized ahead of time (the
// assignment depends on timing), so Build falls back to Cyclic for reporting
// purposes; use Pool.RunDynamic for true self-scheduling.
func Build(policy Policy, n, p int) *Schedule {
	switch policy {
	case Cyclic:
		return NewCyclic(n, p)
	case Dynamic:
		s := NewCyclic(n, p)
		s.PolicyUsed = Dynamic
		return s
	default:
		return NewBlock(n, p)
	}
}
