package sched

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func collect(s *Schedule) []int {
	var all []int
	for _, l := range s.PerWorker {
		all = append(all, l...)
	}
	sort.Ints(all)
	return all
}

func TestBlockRangePartition(t *testing.T) {
	for _, tc := range []struct{ n, p int }{{10, 3}, {16, 16}, {7, 2}, {1, 4}, {100, 7}} {
		covered := make([]bool, tc.n)
		for w := 0; w < tc.p; w++ {
			lo, hi := BlockRange(tc.n, tc.p, w)
			if lo > hi {
				t.Fatalf("n=%d p=%d w=%d: lo %d > hi %d", tc.n, tc.p, w, lo, hi)
			}
			for i := lo; i < hi; i++ {
				if covered[i] {
					t.Fatalf("n=%d p=%d: position %d covered twice", tc.n, tc.p, i)
				}
				covered[i] = true
			}
		}
		for i, c := range covered {
			if !c {
				t.Fatalf("n=%d p=%d: position %d not covered", tc.n, tc.p, i)
			}
		}
	}
}

func TestBlockRangeBalance(t *testing.T) {
	// Property: block ranges differ in size by at most one.
	f := func(n16, p8 uint8) bool {
		n, p := int(n16), int(p8)%8+1
		if n == 0 {
			return true
		}
		minSz, maxSz := n, 0
		for w := 0; w < p; w++ {
			lo, hi := BlockRange(n, p, w)
			sz := hi - lo
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
		}
		return maxSz-minSz <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewBlockCoversAllPositions(t *testing.T) {
	s := NewBlock(23, 4)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	all := collect(s)
	if len(all) != 23 {
		t.Fatalf("covered %d positions, want 23", len(all))
	}
	for i, pos := range all {
		if pos != i {
			t.Fatalf("missing position %d", i)
		}
	}
	if s.PolicyUsed != Block {
		t.Error("PolicyUsed should be Block")
	}
}

func TestNewCyclicCoversAllPositions(t *testing.T) {
	s := NewCyclic(23, 4)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := collect(s); len(got) != 23 {
		t.Fatalf("covered %d positions, want 23", len(got))
	}
	// Worker 0 under cyclic gets 0, 4, 8, ...
	if s.PerWorker[0][1] != 4 {
		t.Errorf("cyclic worker 0 second position = %d, want 4", s.PerWorker[0][1])
	}
}

func TestNewBlockClampsWorkers(t *testing.T) {
	s := NewBlock(3, 10)
	if s.Workers() != 3 {
		t.Fatalf("workers = %d, want clamp to 3", s.Workers())
	}
	s = NewBlock(5, 0)
	if s.Workers() != 1 {
		t.Fatalf("workers = %d, want clamp to 1", s.Workers())
	}
	s = NewBlock(0, 4)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleValidateDetectsErrors(t *testing.T) {
	bad := NewExplicit([][]int{{0, 1}, {1, 2}}, 4)
	if err := bad.Validate(); err == nil {
		t.Error("duplicate position not detected")
	}
	missing := NewExplicit([][]int{{0, 1}}, 3)
	if err := missing.Validate(); err == nil {
		t.Error("missing position not detected")
	}
	oob := NewExplicit([][]int{{0, 5}}, 3)
	if err := oob.Validate(); err == nil {
		t.Error("out-of-range position not detected")
	}
	ok := NewExplicit([][]int{{2, 0}, {1}}, 3)
	if err := ok.Validate(); err != nil {
		t.Errorf("valid explicit schedule rejected: %v", err)
	}
}

func TestPoolRunScheduleExecutesEverything(t *testing.T) {
	s := NewCyclic(100, 5)
	pool := NewPool(5)
	var mu sync.Mutex
	seen := make(map[int]int)
	pool.RunSchedule(s, func(worker, pos int) {
		mu.Lock()
		seen[pos]++
		mu.Unlock()
	})
	if len(seen) != 100 {
		t.Fatalf("executed %d distinct positions, want 100", len(seen))
	}
	for pos, n := range seen {
		if n != 1 {
			t.Fatalf("position %d executed %d times", pos, n)
		}
	}
}

func TestPoolRunScheduleOrderWithinWorker(t *testing.T) {
	s := NewBlock(64, 4)
	pool := NewPool(4)
	var mu sync.Mutex
	order := make(map[int][]int)
	pool.RunSchedule(s, func(worker, pos int) {
		mu.Lock()
		order[worker] = append(order[worker], pos)
		mu.Unlock()
	})
	for w, got := range order {
		want := s.PerWorker[w]
		if len(got) != len(want) {
			t.Fatalf("worker %d executed %d positions, want %d", w, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("worker %d executed out of order: %v vs %v", w, got, want)
			}
		}
	}
}

func TestPoolRunDynamicCoversAll(t *testing.T) {
	pool := NewPool(4)
	var count atomic.Int64
	seen := make([]atomic.Int32, 1000)
	pool.RunDynamic(1000, 7, func(worker, pos int) {
		seen[pos].Add(1)
		count.Add(1)
	})
	if count.Load() != 1000 {
		t.Fatalf("executed %d positions, want 1000", count.Load())
	}
	for i := range seen {
		if seen[i].Load() != 1 {
			t.Fatalf("position %d executed %d times", i, seen[i].Load())
		}
	}
}

func TestPoolRunDynamicDefaultChunk(t *testing.T) {
	pool := NewPool(2)
	var count atomic.Int64
	pool.RunDynamic(50, 0, func(worker, pos int) { count.Add(1) })
	if count.Load() != 50 {
		t.Fatalf("executed %d, want 50", count.Load())
	}
}

func TestPoolParallelFor(t *testing.T) {
	pool := NewPool(3)
	out := make([]atomic.Int32, 100)
	pool.ParallelFor(100, func(i int) { out[i].Add(1) })
	for i := range out {
		if out[i].Load() != 1 {
			t.Fatalf("index %d visited %d times", i, out[i].Load())
		}
	}
	// Empty and negative sizes are no-ops.
	pool.ParallelFor(0, func(i int) { t.Error("body called for n=0") })
	pool.ParallelFor(-5, func(i int) { t.Error("body called for n<0") })
}

func TestPoolParallelForMoreWorkersThanWork(t *testing.T) {
	pool := NewPool(16)
	out := make([]atomic.Int32, 3)
	pool.ParallelFor(3, func(i int) { out[i].Add(1) })
	for i := range out {
		if out[i].Load() != 1 {
			t.Fatalf("index %d visited %d times", i, out[i].Load())
		}
	}
}

func TestBuildPolicies(t *testing.T) {
	for _, p := range []Policy{Block, Cyclic, Dynamic} {
		s := Build(p, 37, 5)
		if err := s.Validate(); err != nil {
			t.Errorf("policy %v: %v", p, err)
		}
		if p == Dynamic && s.PolicyUsed != Dynamic {
			t.Error("Dynamic build should record Dynamic policy")
		}
	}
}

func TestPolicyString(t *testing.T) {
	if Block.String() != "block" || Cyclic.String() != "cyclic" || Dynamic.String() != "dynamic" {
		t.Error("Policy.String mismatch")
	}
	if Policy(99).String() != "unknown" {
		t.Error("invalid policy should stringify to unknown")
	}
}

func TestNewPoolClamp(t *testing.T) {
	if NewPool(0).Workers() != 1 || NewPool(-3).Workers() != 1 {
		t.Error("pool size should clamp to 1")
	}
	if NewPool(8).Workers() != 8 {
		t.Error("pool size 8 not preserved")
	}
}
