package sched

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func collect(s *Schedule) []int {
	var all []int
	for _, l := range s.PerWorker {
		all = append(all, l...)
	}
	sort.Ints(all)
	return all
}

func TestBlockRangePartition(t *testing.T) {
	for _, tc := range []struct{ n, p int }{{10, 3}, {16, 16}, {7, 2}, {1, 4}, {100, 7}} {
		covered := make([]bool, tc.n)
		for w := 0; w < tc.p; w++ {
			lo, hi := BlockRange(tc.n, tc.p, w)
			if lo > hi {
				t.Fatalf("n=%d p=%d w=%d: lo %d > hi %d", tc.n, tc.p, w, lo, hi)
			}
			for i := lo; i < hi; i++ {
				if covered[i] {
					t.Fatalf("n=%d p=%d: position %d covered twice", tc.n, tc.p, i)
				}
				covered[i] = true
			}
		}
		for i, c := range covered {
			if !c {
				t.Fatalf("n=%d p=%d: position %d not covered", tc.n, tc.p, i)
			}
		}
	}
}

func TestBlockRangeBalance(t *testing.T) {
	// Property: block ranges differ in size by at most one.
	f := func(n16, p8 uint8) bool {
		n, p := int(n16), int(p8)%8+1
		if n == 0 {
			return true
		}
		minSz, maxSz := n, 0
		for w := 0; w < p; w++ {
			lo, hi := BlockRange(n, p, w)
			sz := hi - lo
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
		}
		return maxSz-minSz <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewBlockCoversAllPositions(t *testing.T) {
	s := NewBlock(23, 4)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	all := collect(s)
	if len(all) != 23 {
		t.Fatalf("covered %d positions, want 23", len(all))
	}
	for i, pos := range all {
		if pos != i {
			t.Fatalf("missing position %d", i)
		}
	}
	if s.PolicyUsed != Block {
		t.Error("PolicyUsed should be Block")
	}
}

func TestNewCyclicCoversAllPositions(t *testing.T) {
	s := NewCyclic(23, 4)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := collect(s); len(got) != 23 {
		t.Fatalf("covered %d positions, want 23", len(got))
	}
	// Worker 0 under cyclic gets 0, 4, 8, ...
	if s.PerWorker[0][1] != 4 {
		t.Errorf("cyclic worker 0 second position = %d, want 4", s.PerWorker[0][1])
	}
}

func TestNewBlockClampsWorkers(t *testing.T) {
	s := NewBlock(3, 10)
	if s.Workers() != 3 {
		t.Fatalf("workers = %d, want clamp to 3", s.Workers())
	}
	s = NewBlock(5, 0)
	if s.Workers() != 1 {
		t.Fatalf("workers = %d, want clamp to 1", s.Workers())
	}
	s = NewBlock(0, 4)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleValidateDetectsErrors(t *testing.T) {
	bad := NewExplicit([][]int{{0, 1}, {1, 2}}, 4)
	if err := bad.Validate(); err == nil {
		t.Error("duplicate position not detected")
	}
	missing := NewExplicit([][]int{{0, 1}}, 3)
	if err := missing.Validate(); err == nil {
		t.Error("missing position not detected")
	}
	oob := NewExplicit([][]int{{0, 5}}, 3)
	if err := oob.Validate(); err == nil {
		t.Error("out-of-range position not detected")
	}
	ok := NewExplicit([][]int{{2, 0}, {1}}, 3)
	if err := ok.Validate(); err != nil {
		t.Errorf("valid explicit schedule rejected: %v", err)
	}
}

func TestPoolRunScheduleExecutesEverything(t *testing.T) {
	s := NewCyclic(100, 5)
	pool := NewPool(5)
	var mu sync.Mutex
	seen := make(map[int]int)
	pool.RunSchedule(s, func(worker, pos int) {
		mu.Lock()
		seen[pos]++
		mu.Unlock()
	})
	if len(seen) != 100 {
		t.Fatalf("executed %d distinct positions, want 100", len(seen))
	}
	for pos, n := range seen {
		if n != 1 {
			t.Fatalf("position %d executed %d times", pos, n)
		}
	}
}

func TestPoolRunScheduleOrderWithinWorker(t *testing.T) {
	s := NewBlock(64, 4)
	pool := NewPool(4)
	var mu sync.Mutex
	order := make(map[int][]int)
	pool.RunSchedule(s, func(worker, pos int) {
		mu.Lock()
		order[worker] = append(order[worker], pos)
		mu.Unlock()
	})
	for w, got := range order {
		want := s.PerWorker[w]
		if len(got) != len(want) {
			t.Fatalf("worker %d executed %d positions, want %d", w, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("worker %d executed out of order: %v vs %v", w, got, want)
			}
		}
	}
}

func TestPoolRunDynamicCoversAll(t *testing.T) {
	pool := NewPool(4)
	var count atomic.Int64
	seen := make([]atomic.Int32, 1000)
	pool.RunDynamic(1000, 7, func(worker, pos int) {
		seen[pos].Add(1)
		count.Add(1)
	})
	if count.Load() != 1000 {
		t.Fatalf("executed %d positions, want 1000", count.Load())
	}
	for i := range seen {
		if seen[i].Load() != 1 {
			t.Fatalf("position %d executed %d times", i, seen[i].Load())
		}
	}
}

func TestPoolRunDynamicDefaultChunk(t *testing.T) {
	pool := NewPool(2)
	var count atomic.Int64
	pool.RunDynamic(50, 0, func(worker, pos int) { count.Add(1) })
	if count.Load() != 50 {
		t.Fatalf("executed %d, want 50", count.Load())
	}
}

func TestPoolParallelFor(t *testing.T) {
	pool := NewPool(3)
	out := make([]atomic.Int32, 100)
	pool.ParallelFor(100, func(i int) { out[i].Add(1) })
	for i := range out {
		if out[i].Load() != 1 {
			t.Fatalf("index %d visited %d times", i, out[i].Load())
		}
	}
	// Empty and negative sizes are no-ops.
	pool.ParallelFor(0, func(i int) { t.Error("body called for n=0") })
	pool.ParallelFor(-5, func(i int) { t.Error("body called for n<0") })
}

func TestPoolParallelForMoreWorkersThanWork(t *testing.T) {
	pool := NewPool(16)
	out := make([]atomic.Int32, 3)
	pool.ParallelFor(3, func(i int) { out[i].Add(1) })
	for i := range out {
		if out[i].Load() != 1 {
			t.Fatalf("index %d visited %d times", i, out[i].Load())
		}
	}
}

func TestBuildPolicies(t *testing.T) {
	for _, p := range []Policy{Block, Cyclic, Dynamic} {
		s := Build(p, 37, 5)
		if err := s.Validate(); err != nil {
			t.Errorf("policy %v: %v", p, err)
		}
		if p == Dynamic && s.PolicyUsed != Dynamic {
			t.Error("Dynamic build should record Dynamic policy")
		}
	}
}

func TestPolicyString(t *testing.T) {
	if Block.String() != "block" || Cyclic.String() != "cyclic" || Dynamic.String() != "dynamic" {
		t.Error("Policy.String mismatch")
	}
	if Policy(99).String() != "unknown" {
		t.Error("invalid policy should stringify to unknown")
	}
}

func TestNewPoolClamp(t *testing.T) {
	if NewPool(0).Workers() != 1 || NewPool(-3).Workers() != 1 {
		t.Error("pool size should clamp to 1")
	}
	if NewPool(8).Workers() != 8 {
		t.Error("pool size 8 not preserved")
	}
}

func TestPoolZeroAndNegativeWork(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	pool.RunDynamic(0, 8, func(worker, pos int) { t.Error("body called for n=0") })
	pool.RunDynamic(-3, 8, func(worker, pos int) { t.Error("body called for n<0") })
	pool.ParallelFor(0, func(i int) { t.Error("body called for n=0") })
	pool.Submit(0, func(w int) { t.Error("fn called for k=0") })
	pool.Submit(-1, func(w int) { t.Error("fn called for k<0") })
	empty := NewExplicit([][]int{}, 0)
	pool.RunSchedule(empty, func(worker, pos int) { t.Error("body called for empty schedule") })
}

func TestPoolMoreWorkersThanWork(t *testing.T) {
	pool := NewPool(16)
	defer pool.Close()
	var count atomic.Int64
	pool.RunDynamic(3, 1, func(worker, pos int) {
		if worker < 0 || worker >= 3 {
			t.Errorf("worker %d outside clamped range [0,3)", worker)
		}
		count.Add(1)
	})
	if count.Load() != 3 {
		t.Fatalf("executed %d positions, want 3", count.Load())
	}
}

func TestPoolRunScheduleEmptyWorkerLists(t *testing.T) {
	// Workers with nothing assigned must neither execute anything nor block
	// completion of the others.
	pool := NewPool(4)
	defer pool.Close()
	s := NewExplicit([][]int{{0, 2}, nil, {1}, {}}, 3)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	var count atomic.Int64
	pool.RunSchedule(s, func(worker, pos int) {
		if worker == 1 || worker == 3 {
			t.Errorf("worker %d has an empty list but executed position %d", worker, pos)
		}
		count.Add(1)
	})
	if count.Load() != 3 {
		t.Fatalf("executed %d positions, want 3", count.Load())
	}
}

func TestPoolRunScheduleWiderThanPool(t *testing.T) {
	// A schedule built for more workers than the pool has still executes
	// every position with the schedule's own worker indices.
	pool := NewPool(2)
	defer pool.Close()
	s := NewCyclic(40, 8)
	seen := make([]atomic.Int32, 40)
	maxWorker := atomic.Int32{}
	pool.RunSchedule(s, func(worker, pos int) {
		seen[pos].Add(1)
		for {
			cur := maxWorker.Load()
			if int32(worker) <= cur || maxWorker.CompareAndSwap(cur, int32(worker)) {
				break
			}
		}
	})
	for i := range seen {
		if seen[i].Load() != 1 {
			t.Fatalf("position %d executed %d times", i, seen[i].Load())
		}
	}
	if maxWorker.Load() != 7 {
		t.Fatalf("max worker index %d, want 7", maxWorker.Load())
	}
}

func TestPoolReuseAcrossPhases(t *testing.T) {
	// One pool serves many successive phases without spawning new goroutines:
	// the goroutine count after hundreds of phase submissions matches the
	// count right after pool construction.
	pool := NewPool(4)
	defer pool.Close()
	pool.ParallelFor(8, func(i int) {}) // warm up
	before := runtime.NumGoroutine()
	var count atomic.Int64
	for phase := 0; phase < 200; phase++ {
		switch phase % 3 {
		case 0:
			pool.RunSchedule(NewBlock(64, 4), func(worker, pos int) { count.Add(1) })
		case 1:
			pool.RunDynamic(64, 7, func(worker, pos int) { count.Add(1) })
		default:
			pool.ParallelFor(64, func(i int) { count.Add(1) })
		}
	}
	after := runtime.NumGoroutine()
	if count.Load() != 200*64 {
		t.Fatalf("executed %d positions, want %d", count.Load(), 200*64)
	}
	// Allow slack for unrelated runtime goroutines, but 200 phases of a
	// spawn-per-call pool would leave far more churn than this.
	if after > before+2 {
		t.Fatalf("goroutine count grew from %d to %d across 200 phases; workers are not being reused", before, after)
	}
}

func TestPoolSubmitRunsParticipantsConcurrently(t *testing.T) {
	// Bodies of one job may synchronize with each other (the doacross
	// executor relies on this): a job whose participants all wait for each
	// other must complete.
	pool := NewPool(4)
	defer pool.Close()
	var arrived atomic.Int32
	pool.Submit(4, func(w int) {
		arrived.Add(1)
		for arrived.Load() < 4 {
			runtime.Gosched()
		}
	})
	if arrived.Load() != 4 {
		t.Fatalf("%d participants, want 4", arrived.Load())
	}
}

func TestPoolConcurrentSubmissions(t *testing.T) {
	// Submissions from different goroutines are serialized but must all
	// complete correctly.
	pool := NewPool(4)
	defer pool.Close()
	var total atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				pool.ParallelFor(50, func(i int) { total.Add(1) })
			}
		}()
	}
	wg.Wait()
	if total.Load() != 8*20*50 {
		t.Fatalf("executed %d positions, want %d", total.Load(), 8*20*50)
	}
}

func TestPoolCloseIdempotentAndUsableAfter(t *testing.T) {
	pool := NewPool(4)
	pool.Close()
	pool.Close() // second Close must be a no-op, not a double-close panic
	// Calls after Close fall back to spawn-per-call and stay correct.
	var count atomic.Int64
	pool.ParallelFor(100, func(i int) { count.Add(1) })
	if count.Load() != 100 {
		t.Fatalf("executed %d positions after Close, want 100", count.Load())
	}
	pool.Close() // Close after fallback use is still a no-op
}

func TestSpawnPoolMatchesPooledSemantics(t *testing.T) {
	for _, mk := range []func(int) *Pool{NewPool, NewSpawnPool} {
		pool := mk(3)
		out := make([]atomic.Int32, 100)
		pool.ParallelFor(100, func(i int) { out[i].Add(1) })
		for i := range out {
			if out[i].Load() != 1 {
				t.Fatalf("index %d visited %d times", i, out[i].Load())
			}
		}
		var count atomic.Int64
		pool.RunDynamic(77, 5, func(worker, pos int) { count.Add(1) })
		if count.Load() != 77 {
			t.Fatalf("dynamic executed %d, want 77", count.Load())
		}
		pool.Close()
	}
}

func TestPoolRapidResubmitStaleTokens(t *testing.T) {
	// Regression: a park attempt aborted through the epoch recheck can leave
	// a stale token in the worker's wake channel; a later submission must
	// not block on the full channel (the wake send is non-blocking). Rapid
	// back-to-back jobs of varying width maximize the park/submit race; a
	// blocking send here deadlocks the test.
	pool := NewPool(4)
	defer pool.Close()
	var total atomic.Int64
	var want int64
	for i := 0; i < 5000; i++ {
		k := 2 + i%3
		want += int64(k)
		pool.Submit(k, func(w int) { total.Add(1) })
	}
	if total.Load() != want {
		t.Fatalf("executed %d shards, want %d", total.Load(), want)
	}
}

// TestLevelChunkAligned pins the cache-line rounding contract: align 1 is the
// identity on LevelChunk, larger aligns only ever round the clamped chunk
// down to an align multiple, and chunks at or below align are untouched (a
// sub-line chunk cannot be aligned and must not collapse to zero).
func TestLevelChunkAligned(t *testing.T) {
	cases := []struct {
		chunk, width, p, align int
		want                   int
	}{
		{chunk: 64, width: 1024, p: 4, align: 1, want: LevelChunk(64, 1024, 4)},
		{chunk: 64, width: 1024, p: 4, align: 8, want: 64}, // already aligned
		{chunk: 60, width: 1024, p: 4, align: 8, want: 56}, // rounded down
		{chunk: 64, width: 100, p: 4, align: 8, want: 8},   // clamp to 12, then align
		{chunk: 7, width: 1024, p: 4, align: 8, want: 7},   // at/below align: untouched
		{chunk: 64, width: 6, p: 4, align: 8, want: 1},     // clamp floor survives
		{chunk: 9, width: 1024, p: 4, align: 8, want: 8},   // just above align
		{chunk: 64, width: 1024, p: 4, align: 0, want: LevelChunk(64, 1024, 4)},
	}
	for _, c := range cases {
		if got := LevelChunkAligned(c.chunk, c.width, c.p, c.align); got != c.want {
			t.Errorf("LevelChunkAligned(%d,%d,%d,%d) = %d, want %d",
				c.chunk, c.width, c.p, c.align, got, c.want)
		}
	}
}

// TestLevelChunkAlignedProperties quick-checks the invariants over the whole
// parameter space: the result is always ≥1, never exceeds the LevelChunk
// clamp, and is an align multiple whenever it exceeds align.
func TestLevelChunkAlignedProperties(t *testing.T) {
	f := func(chunk, width, p, align uint8) bool {
		c, w, k, a := int(chunk)+1, int(width)+1, int(p)+1, int(align)
		got := LevelChunkAligned(c, w, k, a)
		base := LevelChunk(c, w, k)
		if got < 1 || got > base {
			return false
		}
		if a > 1 && got > a && got%a != 0 {
			return false
		}
		// Alignment never shrinks below the largest align multiple ≤ base.
		if a > 1 && base > a && got < base-base%a {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
