package sched_test

import (
	"fmt"

	"doacross/internal/sched"
)

// ExampleBuild shows the two static iteration-to-processor assignments the
// runtime supports: block (contiguous ranges) and cyclic (round robin).
func ExampleBuild() {
	block := sched.Build(sched.Block, 8, 3)
	cyclic := sched.Build(sched.Cyclic, 8, 3)
	fmt.Println("block: ", block.PerWorker)
	fmt.Println("cyclic:", cyclic.PerWorker)
	// Output:
	// block:  [[0 1 2] [3 4 5] [6 7]]
	// cyclic: [[0 3 6] [1 4 7] [2 5]]
}

// ExamplePool_ParallelFor runs the paper's fully parallel preprocessing
// pattern: a doall over the iteration space, split evenly over the workers.
func ExamplePool_ParallelFor() {
	pool := sched.NewPool(4)
	sum := make([]int, 10)
	pool.ParallelFor(10, func(i int) { sum[i] = i * i })
	fmt.Println(sum)
	// Output:
	// [0 1 4 9 16 25 36 49 64 81]
}
