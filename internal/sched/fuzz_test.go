package sched

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// FuzzDynamicLoop fuzzes the self-scheduling claim loop — both the position
// form (DynamicLoop) and the member-list form (DynamicLoopOver) — over
// iteration count, chunk size, worker count and a stop predicate, asserting
// the two invariants every executor built on it relies on:
//
//  1. without a stop, every position is executed exactly once, whatever the
//     interleaving of concurrent claims;
//  2. a stop is honored within one chunk per worker: once the predicate
//     trips, each worker finishes at most the chunk it already claimed, so
//     the overshoot beyond the trip point is bounded by workers*chunk.
func FuzzDynamicLoop(f *testing.F) {
	f.Add(int64(1), 100, 16, 4, -1, false)
	f.Add(int64(2), 1, 1, 1, -1, true)
	f.Add(int64(3), 1000, 7, 8, 50, true)
	f.Add(int64(4), 0, 16, 3, -1, false)
	f.Add(int64(5), 63, 64, 2, 0, true)
	f.Fuzz(func(t *testing.T, seed int64, n, chunk, workers, stopAfter int, overList bool) {
		n = clampFuzz(n, 0, 2000)
		chunk = clampFuzz(chunk, 1, 64)
		workers = clampFuzz(workers, 1, 8)
		if stopAfter > n {
			stopAfter = -1
		}

		// The member list is a random permutation so a position claim and the
		// iteration it executes are distinct notions, as in a wavefront level.
		members := make([]int32, n)
		for i := range members {
			members[i] = int32(i)
		}
		rand.New(rand.NewSource(seed)).Shuffle(n, func(i, j int) {
			members[i], members[j] = members[j], members[i]
		})

		counts := make([]atomic.Int32, n)
		var executed atomic.Int64
		body := func(worker, iter int) {
			if iter < 0 || iter >= n {
				t.Fatalf("iteration %d out of range [0,%d)", iter, n)
			}
			counts[iter].Add(1)
			executed.Add(1)
		}
		var stop func() bool
		if stopAfter >= 0 {
			stop = func() bool { return executed.Load() >= int64(stopAfter) }
		}

		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				if overList {
					DynamicLoopOver(&next, members, chunk, w, body, stop)
				} else {
					DynamicLoop(&next, n, chunk, w, body, stop)
				}
			}(w)
		}
		wg.Wait()

		if stopAfter < 0 {
			if got := executed.Load(); got != int64(n) {
				t.Fatalf("executed %d of %d positions", got, n)
			}
			for i := range counts {
				if c := counts[i].Load(); c != 1 {
					t.Fatalf("position %d executed %d times", i, c)
				}
			}
			return
		}
		// Stopped run: nothing runs twice, and each worker overshoots the
		// trip point by at most the one chunk it had already claimed.
		for i := range counts {
			if c := counts[i].Load(); c > 1 {
				t.Fatalf("position %d executed %d times under stop", i, c)
			}
		}
		if got, bound := executed.Load(), int64(stopAfter+workers*chunk); got > bound {
			t.Fatalf("stop overshoot: executed %d, bound %d (stopAfter=%d workers=%d chunk=%d)",
				got, bound, stopAfter, workers, chunk)
		}
	})
}

func clampFuzz(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// TestRunDynamicOver checks the pool-level dynamic doall over a member list:
// exactly-once execution of a permuted subset, worker clamping, and the
// empty-list fast path.
func TestRunDynamicOver(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()

	members := []int32{9, 3, 7, 1, 5, 0, 8, 2, 6, 4}
	counts := make([]atomic.Int32, 10)
	pool.RunDynamicOver(members, 3, func(worker, iter int) {
		counts[iter].Add(1)
	})
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("iteration %d executed %d times", i, c)
		}
	}

	// A list shorter than the pool still covers everything (workers clamp).
	var hits atomic.Int32
	pool.RunDynamicOver([]int32{42}, 0, func(worker, iter int) {
		if iter != 42 {
			t.Errorf("iter = %d, want 42", iter)
		}
		hits.Add(1)
	})
	if hits.Load() != 1 {
		t.Fatalf("single-member list executed %d times", hits.Load())
	}

	pool.RunDynamicOver(nil, 8, func(worker, iter int) {
		t.Error("body called for an empty member list")
	})
}
