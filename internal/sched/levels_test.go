package sched

import (
	"math/rand"
	"testing"
)

// csrLevels packs per-level member lists into the CSR form NewLevelSchedule
// consumes.
func csrLevels(byLevel [][]int32) (members, off []int32) {
	off = append(off, 0)
	for _, lvl := range byLevel {
		members = append(members, lvl...)
		off = append(off, int32(len(members)))
	}
	return members, off
}

func TestLevelScheduleBlock(t *testing.T) {
	members, off := csrLevels([][]int32{{0, 1, 2, 3, 4}, {5, 6}, {7}})
	s := NewLevelSchedule(members, off, Block, 2)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Levels() != 3 || s.Workers() != 2 || s.N() != 8 {
		t.Fatalf("levels=%d workers=%d n=%d", s.Levels(), s.Workers(), s.N())
	}
	// Block: worker 0 gets the first ceil(5/2)=3 of level 0.
	if got := s.Items(0, 0); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("level 0 worker 0 items = %v", got)
	}
	if got := s.Items(2, 1); len(got) != 0 {
		t.Fatalf("narrow level gave worker 1 items %v", got)
	}
	if w := s.LevelWidth(0); w != 5 {
		t.Fatalf("level 0 width = %d, want 5", w)
	}
}

func TestLevelScheduleCyclic(t *testing.T) {
	members, off := csrLevels([][]int32{{0, 1, 2, 3, 4}})
	s := NewLevelSchedule(members, off, Cyclic, 2)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	w0, w1 := s.Items(0, 0), s.Items(0, 1)
	if len(w0) != 3 || w0[0] != 0 || w0[1] != 2 || w0[2] != 4 {
		t.Fatalf("cyclic worker 0 items = %v", w0)
	}
	if len(w1) != 2 || w1[0] != 1 || w1[1] != 3 {
		t.Fatalf("cyclic worker 1 items = %v", w1)
	}
}

func TestLevelScheduleDynamicDegradesToCyclic(t *testing.T) {
	members, off := csrLevels([][]int32{{0, 1, 2}})
	s := NewLevelSchedule(members, off, Dynamic, 2)
	if s.PolicyUsed != Cyclic {
		t.Fatalf("dynamic level schedule recorded policy %v, want cyclic", s.PolicyUsed)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLevelScheduleEmpty(t *testing.T) {
	s := NewLevelSchedule(nil, []int32{0}, Block, 4)
	if s.Levels() != 0 || s.N() != 0 {
		t.Fatalf("empty schedule: levels=%d n=%d", s.Levels(), s.N())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestLevelSchedulePatchSuffix rebuilds random suffixes of random schedules
// in place and checks the result is indistinguishable from a schedule built
// cold from the new decomposition — the invariant the plan repair's lazy
// static-schedule patch relies on.
func TestLevelSchedulePatchSuffix(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	randLevels := func(n int) [][]int32 {
		var byLevel [][]int32
		next := int32(0)
		for int(next) < n {
			w := 1 + rng.Intn(9)
			var lvl []int32
			for k := 0; k < w && int(next) < n; k++ {
				lvl = append(lvl, next)
				next++
			}
			byLevel = append(byLevel, lvl)
		}
		return byLevel
	}
	for trial := 0; trial < 100; trial++ {
		p := 1 + rng.Intn(6)
		policy := Policy(rng.Intn(3))
		oldLevels := randLevels(1 + rng.Intn(150))
		members, off := csrLevels(oldLevels)
		s := NewLevelSchedule(members, off, policy, p)

		// New decomposition: keep a shared prefix, regroup everything after
		// it (the level count may grow or shrink).
		from := rng.Intn(len(oldLevels) + 1)
		newLevels := append([][]int32(nil), oldLevels[:from]...)
		var tail []int32
		for _, lvl := range oldLevels[from:] {
			tail = append(tail, lvl...)
		}
		for len(tail) > 0 {
			w := 1 + rng.Intn(9)
			if w > len(tail) {
				w = len(tail)
			}
			newLevels = append(newLevels, tail[:w])
			tail = tail[w:]
		}
		nm, noff := csrLevels(newLevels)
		s.PatchSuffix(nm, noff, from)
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d (p=%d policy=%v from=%d): %v", trial, p, policy, from, err)
		}
		want := NewLevelSchedule(nm, noff, policy, p)
		if s.Levels() != want.Levels() || s.N() != want.N() {
			t.Fatalf("trial %d: levels=%d n=%d, want %d and %d", trial, s.Levels(), s.N(), want.Levels(), want.N())
		}
		for l := 0; l < want.Levels(); l++ {
			for w := 0; w < p; w++ {
				got, exp := s.Items(l, w), want.Items(l, w)
				if len(got) != len(exp) {
					t.Fatalf("trial %d level %d worker %d: %v, want %v", trial, l, w, got, exp)
				}
				for k := range got {
					if got[k] != exp[k] {
						t.Fatalf("trial %d level %d worker %d: %v, want %v", trial, l, w, got, exp)
					}
				}
			}
		}
	}
}

// TestLevelScheduleRandomCoverage fuzzes random decompositions over random
// worker counts: the schedule must always cover every iteration exactly once
// and keep iterations inside their level.
func TestLevelScheduleRandomCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		var byLevel [][]int32
		next := int32(0)
		for int(next) < n {
			w := 1 + rng.Intn(10)
			var lvl []int32
			for k := 0; k < w && int(next) < n; k++ {
				lvl = append(lvl, next)
				next++
			}
			byLevel = append(byLevel, lvl)
		}
		members, off := csrLevels(byLevel)
		p := 1 + rng.Intn(8)
		policy := Policy(rng.Intn(3))
		s := NewLevelSchedule(members, off, policy, p)
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d (n=%d p=%d policy=%v): %v", trial, n, p, policy, err)
		}
		for l := 0; l < s.Levels(); l++ {
			want := byLevel[l]
			lo, hi := want[0], want[len(want)-1]
			for w := 0; w < p; w++ {
				for _, it := range s.Items(l, w) {
					if it < lo || it > hi {
						t.Fatalf("iteration %d escaped level %d [%d,%d]", it, l, lo, hi)
					}
				}
			}
		}
	}
}
