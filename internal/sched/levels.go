package sched

import "fmt"

// LevelSchedule is a level-sorted static schedule: the pre-scheduled
// counterpart of the busy-wait doacross. The iteration space is decomposed
// into wavefront levels (every iteration's true dependencies lie in strictly
// earlier levels), each level is distributed statically over the workers, and
// the executor separates consecutive levels with a barrier — so no
// per-element ready flags and no waiting inside a level are needed.
//
// The assignments are stored flat (level-major, worker-major) so a schedule
// for a large loop is two slices, not levels*workers allocations, and the
// per-worker item lists of one level are contiguous.
type LevelSchedule struct {
	items []int32 // iteration indices, grouped by (level, worker)
	off   []int32 // len levels*workers+1; items of (l,w) are items[off[l*W+w]:off[l*W+w+1]]

	levels  int
	workers int
	n       int
	// PolicyUsed records how each level was distributed. Dynamic has no
	// pre-scheduled analogue, so it degrades to Cyclic.
	PolicyUsed Policy
}

// NewLevelSchedule builds a level schedule over p workers from a wavefront
// decomposition in CSR form: level l's iterations are members[off[l]:off[l+1]]
// (ascending), exactly the layout of depgraph.LevelSet. Within each level the
// members are distributed by policy: Block gives each worker a contiguous
// chunk of the level, Cyclic (and Dynamic, which cannot be materialized
// statically) deals them round robin.
func NewLevelSchedule(members, off []int32, policy Policy, p int) *LevelSchedule {
	if p < 1 {
		p = 1
	}
	levels := len(off) - 1
	if levels < 0 {
		levels = 0
	}
	used := policy
	if used == Dynamic {
		used = Cyclic
	}
	s := &LevelSchedule{
		items:      make([]int32, len(members)),
		off:        make([]int32, levels*p+1),
		levels:     levels,
		workers:    p,
		n:          len(members),
		PolicyUsed: used,
	}
	s.fillLevels(members, off, 0)
	return s
}

// fillLevels distributes levels [from, s.levels) of the decomposition over
// the workers, writing items and offsets from the position recorded at
// s.off[from*workers] onward. It is the shared core of NewLevelSchedule
// (from = 0) and PatchSuffix.
func (s *LevelSchedule) fillLevels(members, off []int32, from int) {
	p := s.workers
	pos := int(s.off[from*p])
	for l := from; l < s.levels; l++ {
		lvl := members[off[l]:off[l+1]]
		base := l * p
		switch s.PolicyUsed {
		case Cyclic:
			for w := 0; w < p; w++ {
				s.off[base+w] = int32(pos)
				for k := w; k < len(lvl); k += p {
					s.items[pos] = lvl[k]
					pos++
				}
			}
		default: // Block
			for w := 0; w < p; w++ {
				s.off[base+w] = int32(pos)
				lo, hi := BlockRange(len(lvl), p, w)
				pos += copy(s.items[pos:], lvl[lo:hi])
			}
		}
	}
	s.off[s.levels*p] = int32(pos)
}

// PatchSuffix rebuilds the schedule's assignments for levels >= from against
// an updated decomposition (members/off, the depgraph.LevelSet layout),
// leaving the assignments of levels below from untouched. The decomposition
// must agree with the one the schedule was built from on every level below
// from — the contract an incremental plan repair satisfies, since it only
// perturbs levels at or above the earliest dirtied one. The level count (and
// with it the total member count) may differ from the original build.
//
// Cost is O(members at levels >= from), independent of the untouched prefix.
func (s *LevelSchedule) PatchSuffix(members, off []int32, from int) {
	levels := len(off) - 1
	if levels < 0 {
		levels = 0
	}
	if from < 0 {
		from = 0
	}
	if from > levels {
		from = levels
	}
	if from > s.levels {
		from = s.levels
	}
	p := s.workers
	s.levels = levels
	s.n = len(members)
	prefixItems := int(s.off[from*p])
	s.items = growPreserve(s.items, len(members), prefixItems)
	s.off = growPreserve(s.off, levels*p+1, from*p+1)
	s.fillLevels(members, off, from)
}

// growPreserve resizes buf to length n, keeping its first keep elements —
// unlike a plain make-and-forget grow, the preserved prefix is what makes
// suffix patching cheap.
func growPreserve(buf []int32, n, keep int) []int32 {
	if cap(buf) >= n {
		return buf[:n]
	}
	nb := make([]int32, n)
	copy(nb, buf[:keep])
	return nb
}

// Clone returns an independent deep copy of the schedule: the copy shares no
// storage with the original, so a plan snapshot can hand it out while the
// runtime keeps patching the live schedule.
func (s *LevelSchedule) Clone() *LevelSchedule {
	return &LevelSchedule{
		items:      append([]int32(nil), s.items...),
		off:        append([]int32(nil), s.off...),
		levels:     s.levels,
		workers:    s.workers,
		n:          s.n,
		PolicyUsed: s.PolicyUsed,
	}
}

// Levels returns the number of wavefront levels.
func (s *LevelSchedule) Levels() int { return s.levels }

// Workers returns the number of workers the schedule distributes over.
func (s *LevelSchedule) Workers() int { return s.workers }

// N returns the total number of scheduled iterations.
func (s *LevelSchedule) N() int { return s.n }

// Items returns the iterations worker w executes in level l, in order.
func (s *LevelSchedule) Items(l, w int) []int32 {
	i := l*s.workers + w
	return s.items[s.off[i]:s.off[i+1]]
}

// LevelWidth returns the number of iterations in level l.
func (s *LevelSchedule) LevelWidth(l int) int {
	return int(s.off[(l+1)*s.workers] - s.off[l*s.workers])
}

// Validate checks that the schedule covers every iteration in [0, N) exactly
// once and that the flat offsets are monotone.
func (s *LevelSchedule) Validate() error {
	seen := make([]bool, s.n)
	count := 0
	for i := 1; i < len(s.off); i++ {
		if s.off[i] < s.off[i-1] {
			return fmt.Errorf("level schedule: offsets not monotone at %d", i)
		}
	}
	for l := 0; l < s.levels; l++ {
		for w := 0; w < s.workers; w++ {
			for _, it := range s.Items(l, w) {
				if it < 0 || int(it) >= s.n {
					return fmt.Errorf("level %d worker %d: iteration %d out of range [0,%d)", l, w, it, s.n)
				}
				if seen[it] {
					return fmt.Errorf("level %d worker %d: iteration %d assigned more than once", l, w, it)
				}
				seen[it] = true
				count++
			}
		}
	}
	if count != s.n {
		return fmt.Errorf("level schedule covers %d of %d iterations", count, s.n)
	}
	return nil
}
