package sched

import "testing"

// TestCloneIndependence checks Clone is a full deep copy: the clone validates,
// matches the original item for item, and keeps its contents when the original
// is patched in place afterwards (the plan-snapshot use case).
func TestCloneIndependence(t *testing.T) {
	members := []int32{0, 1, 2, 3, 4, 5, 6, 7}
	off := []int32{0, 3, 5, 8}
	orig := NewLevelSchedule(members, off, Block, 2)
	clone := orig.Clone()

	if err := clone.Validate(); err != nil {
		t.Fatalf("clone does not validate: %v", err)
	}
	if clone.Levels() != orig.Levels() || clone.Workers() != orig.Workers() || clone.N() != orig.N() || clone.PolicyUsed != orig.PolicyUsed {
		t.Fatalf("clone shape differs: %d/%d/%d/%v vs %d/%d/%d/%v",
			clone.Levels(), clone.Workers(), clone.N(), clone.PolicyUsed,
			orig.Levels(), orig.Workers(), orig.N(), orig.PolicyUsed)
	}
	snapshot := make([][]int32, 0)
	for l := 0; l < clone.Levels(); l++ {
		for w := 0; w < clone.Workers(); w++ {
			snapshot = append(snapshot, append([]int32(nil), clone.Items(l, w)...))
		}
	}

	// Rearrange the original's suffix; the clone must not move.
	orig.PatchSuffix([]int32{0, 1, 2, 3, 4, 7, 6, 5}, []int32{0, 3, 5, 8}, 1)

	k := 0
	for l := 0; l < clone.Levels(); l++ {
		for w := 0; w < clone.Workers(); w++ {
			got := clone.Items(l, w)
			want := snapshot[k]
			k++
			if len(got) != len(want) {
				t.Fatalf("level %d worker %d: clone changed length after patching the original", l, w)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("level %d worker %d item %d: clone changed from %d to %d after patching the original", l, w, i, want[i], got[i])
				}
			}
		}
	}
}
