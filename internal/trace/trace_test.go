package trace

import (
	"testing"
	"time"
)

func sampleOf(ds ...time.Duration) Sample { return Sample{Durations: ds} }

func TestMeasureRunsFunction(t *testing.T) {
	count := 0
	s := Measure(5, func() { count++ })
	if count != 5 || len(s.Durations) != 5 {
		t.Fatalf("count=%d len=%d", count, len(s.Durations))
	}
	s = Measure(0, func() { count++ })
	if count != 6 || len(s.Durations) != 1 {
		t.Fatal("repeat<1 should clamp to one run")
	}
}

func TestSampleStatistics(t *testing.T) {
	s := sampleOf(4*time.Millisecond, 2*time.Millisecond, 6*time.Millisecond, 8*time.Millisecond)
	if s.Min() != 2*time.Millisecond {
		t.Errorf("Min = %v", s.Min())
	}
	if s.Max() != 8*time.Millisecond {
		t.Errorf("Max = %v", s.Max())
	}
	if s.Mean() != 5*time.Millisecond {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.Median() != 5*time.Millisecond {
		t.Errorf("Median = %v", s.Median())
	}
	odd := sampleOf(time.Millisecond, 3*time.Millisecond, 2*time.Millisecond)
	if odd.Median() != 2*time.Millisecond {
		t.Errorf("odd Median = %v", odd.Median())
	}
	if s.StdDev() <= 0 {
		t.Error("StdDev should be positive for spread samples")
	}
	if s.String() == "" {
		t.Error("empty sample string")
	}
}

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.Min() != 0 || s.Max() != 0 || s.Mean() != 0 || s.Median() != 0 || s.StdDev() != 0 {
		t.Error("empty sample statistics should be zero")
	}
	single := sampleOf(time.Second)
	if single.StdDev() != 0 {
		t.Error("single-sample stddev should be zero")
	}
}

func TestEfficiencyAndSpeedup(t *testing.T) {
	tseq := 160 * time.Millisecond
	tpar := 20 * time.Millisecond
	if got := Speedup(tseq, tpar); got != 8 {
		t.Errorf("Speedup = %v, want 8", got)
	}
	if got := Efficiency(tseq, tpar, 16); got != 0.5 {
		t.Errorf("Efficiency = %v, want 0.5", got)
	}
	if Efficiency(0, tpar, 4) != 0 || Efficiency(tseq, 0, 4) != 0 || Efficiency(tseq, tpar, 0) != 0 {
		t.Error("degenerate efficiency should be 0")
	}
	if Speedup(0, tpar) != 0 || Speedup(tseq, 0) != 0 {
		t.Error("degenerate speedup should be 0")
	}
}

func TestEfficiencyFromFloats(t *testing.T) {
	if got := EfficiencyFromFloats(100, 25, 4); got != 1 {
		t.Errorf("EfficiencyFromFloats = %v, want 1", got)
	}
	if EfficiencyFromFloats(-1, 5, 2) != 0 || EfficiencyFromFloats(1, 0, 2) != 0 || EfficiencyFromFloats(1, 1, 0) != 0 {
		t.Error("degenerate cases should be 0")
	}
}
