// Package trace provides the measurement utilities shared by the experiment
// harness and the benchmarks: repeated timing of a function with best-of and
// mean statistics, and the parallel-efficiency arithmetic the paper uses
// (efficiency = T_seq / (p * T_par)).
package trace

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Sample holds repeated duration measurements of one activity.
type Sample struct {
	Durations []time.Duration
}

// Measure runs f repeat times (at least once) and records each duration.
func Measure(repeat int, f func()) Sample {
	if repeat < 1 {
		repeat = 1
	}
	s := Sample{Durations: make([]time.Duration, 0, repeat)}
	for i := 0; i < repeat; i++ {
		start := time.Now()
		f()
		s.Durations = append(s.Durations, time.Since(start))
	}
	return s
}

// Min returns the smallest recorded duration (the conventional choice for
// timing parallel kernels, since interference only ever adds time).
func (s Sample) Min() time.Duration {
	if len(s.Durations) == 0 {
		return 0
	}
	m := s.Durations[0]
	for _, d := range s.Durations[1:] {
		if d < m {
			m = d
		}
	}
	return m
}

// Max returns the largest recorded duration.
func (s Sample) Max() time.Duration {
	if len(s.Durations) == 0 {
		return 0
	}
	m := s.Durations[0]
	for _, d := range s.Durations[1:] {
		if d > m {
			m = d
		}
	}
	return m
}

// Mean returns the average duration.
func (s Sample) Mean() time.Duration {
	if len(s.Durations) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range s.Durations {
		total += d
	}
	return total / time.Duration(len(s.Durations))
}

// Median returns the median duration.
func (s Sample) Median() time.Duration {
	if len(s.Durations) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), s.Durations...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid]
	}
	return (sorted[mid-1] + sorted[mid]) / 2
}

// StdDev returns the standard deviation of the durations in seconds.
func (s Sample) StdDev() float64 {
	n := len(s.Durations)
	if n < 2 {
		return 0
	}
	mean := s.Mean().Seconds()
	sum := 0.0
	for _, d := range s.Durations {
		diff := d.Seconds() - mean
		sum += diff * diff
	}
	return math.Sqrt(sum / float64(n-1))
}

// String summarizes the sample.
func (s Sample) String() string {
	return fmt.Sprintf("n=%d min=%v median=%v mean=%v max=%v", len(s.Durations), s.Min(), s.Median(), s.Mean(), s.Max())
}

// Efficiency computes the paper's parallel efficiency T_seq / (p * T_par).
// It returns 0 when either time is non-positive.
func Efficiency(tseq, tpar time.Duration, p int) float64 {
	if tseq <= 0 || tpar <= 0 || p < 1 {
		return 0
	}
	return tseq.Seconds() / (float64(p) * tpar.Seconds())
}

// Speedup computes T_seq / T_par, returning 0 when either time is
// non-positive.
func Speedup(tseq, tpar time.Duration) float64 {
	if tseq <= 0 || tpar <= 0 {
		return 0
	}
	return tseq.Seconds() / tpar.Seconds()
}

// EfficiencyFromFloats computes T_seq / (p * T_par) for times already
// expressed as float64 (e.g. simulated time units).
func EfficiencyFromFloats(tseq, tpar float64, p int) float64 {
	if tseq <= 0 || tpar <= 0 || p < 1 {
		return 0
	}
	return tseq / (float64(p) * tpar)
}
