// Package serve provides the request-coalescing front end over the blocked
// multi-RHS solver: concurrent single-RHS Solve calls are collected by a
// bounded intake queue, batched within a configurable window (or until a
// maximum batch size), submitted as one SolveMulti traversal, and
// demultiplexed back to their callers.
//
// The shape is the same as request batching in an inference server. The
// dominant production workload is many independent solves against one fixed
// factor: the wavefront plan is cached, so what bounds throughput is the
// fixed per-traversal overhead — level barriers above all. One traversal
// carrying a block of right-hand sides pays that overhead once for the whole
// block (see core.MaxRHSBlock), so under concurrent load, waiting a few
// microseconds to let requests pile up buys a super-linear throughput win.
// Under no load the window only adds latency, which is why it is
// configurable and why Window = 0 (solo batches) is the unbatched baseline
// the serving experiment compares against.
//
// Cancellation is per request, not per batch: each request carries its own
// context, checked when the batch is assembled and again when results are
// delivered. A request cancelled mid-solve has its answer discarded — the
// batch it rode in completes for the other requests. Only a request that is
// still queued (its batch not yet submitted) is dropped without being
// solved.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"doacross/internal/core"
)

// BatchSolver is the solving backend a SolveService batches onto — what
// trisolve.Solver provides. N is the system size a right-hand side must
// match; SolveMultiContext solves one column per right-hand side of B into Y
// (allocating when nil).
type BatchSolver interface {
	N() int
	SolveMultiContext(ctx context.Context, B, Y [][]float64) ([][]float64, core.Report, error)
}

// Options configures a SolveService.
type Options struct {
	// Window is how long the dispatcher holds an open batch after its first
	// request, waiting for more to coalesce, before flushing it. Zero (the
	// default) disables coalescing entirely: every request is solved in a
	// batch of its own — the unbatched baseline. A few tens of microseconds
	// already captures concurrent bursts; the window only delays the first
	// request of a batch, never adds to a full one (a batch reaching MaxBatch
	// flushes immediately).
	Window time.Duration
	// MaxBatch is the batch size that triggers an immediate flush. It
	// defaults to core.MaxRHSBlock — one full column block per traversal —
	// and larger values are allowed (the solver splits them into blocks).
	MaxBatch int
	// QueueBound is the intake queue's capacity. An enqueue finding the
	// queue full fails fast with ErrQueueFull instead of blocking the
	// caller — backpressure surfaces at the edge, where the caller can shed
	// or retry, rather than as unbounded memory growth. Defaults to 256.
	QueueBound int
	// Metrics, when set, is the collector whose runtime-level counters the
	// service surfaces in Stats.Runtime. The service does not install it
	// anywhere: build the underlying solver with the same collector (the
	// facade's WithMetrics) and pass it here, and Stats then reports the
	// batching counters and the runtime's plan-cache and executor metrics
	// in one snapshot. Optional; nil leaves Stats.Runtime nil.
	Metrics *core.MetricsCollector
}

// Errors returned by the service's entry points.
var (
	// ErrClosed reports a Solve on (or queued in) a service that has been
	// closed.
	ErrClosed = errors.New("serve: service closed")
	// ErrQueueFull reports an enqueue rejected because the intake queue was
	// at its bound.
	ErrQueueFull = errors.New("serve: intake queue full")
)

// request is one caller's solve waiting in the intake queue: its own context,
// its copied right-hand side, and the channel the dispatcher closes when y
// and err are filled.
type request struct {
	ctx  context.Context
	rhs  []float64
	y    []float64
	err  error
	done chan struct{}
}

// Stats is a snapshot of the service's instrumentation.
type Stats struct {
	// Solves counts requests answered successfully.
	Solves uint64
	// Errors counts requests answered with a solver error.
	Errors uint64
	// Cancelled counts requests whose context was cancelled before their
	// answer was delivered (dropped from an unsubmitted batch, or solved
	// with the answer discarded).
	Cancelled uint64
	// Batches counts SolveMulti submissions.
	Batches uint64
	// WindowFlushes counts batches flushed because the coalescing window
	// expired; SizeFlushes counts batches flushed because they reached
	// MaxBatch (with Window = 0 every batch is a size flush). Their sum is
	// Batches.
	WindowFlushes uint64
	SizeFlushes   uint64
	// QueueDepth is the number of requests waiting in the intake queue at
	// snapshot time; MaxQueueDepth the deepest the queue has been.
	QueueDepth    int
	MaxQueueDepth int
	// BatchSizes is the batch-size histogram: BatchSizes[k] counts batches
	// of size k+1, with sizes beyond MaxBatch clamped into the last bucket.
	BatchSizes []uint64
	// Runtime is a snapshot of the runtime-level metrics (run counts,
	// plan-cache transitions, per-executor latency histograms) when the
	// service was built with Options.Metrics, nil otherwise.
	Runtime *core.MetricsSnapshot
}

// MeanBatch returns the mean batch size, zero before the first batch.
func (s Stats) MeanBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	var total uint64
	for k, c := range s.BatchSizes {
		total += uint64(k+1) * c
	}
	return float64(total) / float64(s.Batches)
}

// SolveService coalesces concurrent single-RHS solve requests into blocked
// multi-RHS submissions. Construct with NewSolveService, submit with Solve
// (safe for concurrent use), release with Close. The service owns one
// dispatcher goroutine; the underlying solver is only ever called from it, so
// a solver that is not safe for concurrent use (trisolve.Solver) is safe
// behind the service.
type SolveService struct {
	solver BatchSolver
	opts   Options

	reqs chan *request

	mu      sync.Mutex // guards closed and the enqueue-vs-Close race
	closed  bool
	closing chan struct{}

	loopDone chan struct{}

	statsMu sync.Mutex
	stats   Stats

	// batch is the dispatcher's reusable assembly scratch.
	batch []*request
	bs    [][]float64
	ys    [][]float64
}

// NewSolveService starts the coalescing front end over solver. Defaults:
// MaxBatch core.MaxRHSBlock, QueueBound 256, Window 0 (no coalescing — see
// Options.Window). Close the service when done; closing the service does not
// close the underlying solver.
func NewSolveService(solver BatchSolver, opts Options) (*SolveService, error) {
	if solver == nil {
		return nil, fmt.Errorf("serve: nil solver")
	}
	if opts.Window < 0 {
		return nil, fmt.Errorf("serve: negative window %v", opts.Window)
	}
	if opts.MaxBatch < 0 || opts.QueueBound < 0 {
		return nil, fmt.Errorf("serve: negative batch size or queue bound")
	}
	if opts.MaxBatch == 0 {
		opts.MaxBatch = core.MaxRHSBlock
	}
	if opts.QueueBound == 0 {
		opts.QueueBound = 256
	}
	s := &SolveService{
		solver:   solver,
		opts:     opts,
		reqs:     make(chan *request, opts.QueueBound),
		closing:  make(chan struct{}),
		loopDone: make(chan struct{}),
		batch:    make([]*request, 0, opts.MaxBatch),
		bs:       make([][]float64, 0, opts.MaxBatch),
		ys:       make([][]float64, 0, opts.MaxBatch),
	}
	s.stats.BatchSizes = make([]uint64, opts.MaxBatch)
	go s.loop()
	return s, nil
}

// Solve solves T*y = rhs through the batching queue, blocking until the
// answer (or a failure) is delivered. rhs is copied at enqueue, so the caller
// may reuse its slice immediately after Solve returns, even on cancellation.
// The returned slice is owned by the caller.
//
// ctx cancels this request only: before its batch is submitted the request
// is dropped unsolved; after submission the batch runs to completion for the
// other requests and this request's answer is discarded. Solve returns
// ctx.Err() in both cases. ErrQueueFull reports the intake queue at its
// bound, ErrClosed a closed service.
func (s *SolveService) Solve(ctx context.Context, rhs []float64) ([]float64, error) {
	if len(rhs) < s.solver.N() {
		return nil, fmt.Errorf("serve: rhs has %d entries for %d unknowns", len(rhs), s.solver.N())
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r := &request{
		ctx:  ctx,
		rhs:  append([]float64(nil), rhs[:s.solver.N()]...),
		done: make(chan struct{}),
	}
	// The closed check and the send are one critical section shared with
	// Close, so a request is either observably rejected or safely in the
	// queue before the channel can be drained for shutdown — never sent to a
	// service that already stopped reading. The send itself is non-blocking:
	// the channel's buffer is the queue bound, and a full buffer is the
	// fail-fast backpressure signal, so the lock is never held for longer
	// than a buffered send.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	select {
	case s.reqs <- r:
	default:
		s.mu.Unlock()
		return nil, ErrQueueFull
	}
	s.mu.Unlock()
	s.noteDepth(len(s.reqs))

	select {
	case <-r.done:
		return r.y, r.err
	case <-ctx.Done():
		// The dispatcher owns the request now; it will observe the
		// cancellation and close done without an answer. Waiting for done
		// here would re-couple the caller to the batch it wanted to leave,
		// so return immediately — the copied rhs makes that safe.
		return nil, ctx.Err()
	}
}

// Stats returns a snapshot of the service's instrumentation counters,
// including the runtime-level metrics when Options.Metrics was set.
func (s *SolveService) Stats() Stats {
	s.statsMu.Lock()
	st := s.stats
	st.BatchSizes = append([]uint64(nil), s.stats.BatchSizes...)
	st.QueueDepth = len(s.reqs)
	s.statsMu.Unlock()
	// The collector has its own lock; snapshot it outside statsMu so the two
	// locks never nest.
	if s.opts.Metrics != nil {
		snap := s.opts.Metrics.Snapshot()
		st.Runtime = &snap
	}
	return st
}

// Close stops the service: subsequent Solve calls fail with ErrClosed, the
// batch in flight (if any) completes and is delivered, and requests still
// queued fail with ErrClosed. Close blocks until the dispatcher has drained
// and is idempotent. The underlying solver is not closed.
func (s *SolveService) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.loopDone
		return
	}
	s.closed = true
	close(s.closing)
	s.mu.Unlock()
	<-s.loopDone
}

// noteDepth records a queue-depth observation.
func (s *SolveService) noteDepth(depth int) {
	s.statsMu.Lock()
	if depth > s.stats.MaxQueueDepth {
		s.stats.MaxQueueDepth = depth
	}
	s.statsMu.Unlock()
}

// loop is the dispatcher: collect a batch, solve it, deliver, repeat. It is
// the only goroutine that touches the underlying solver.
func (s *SolveService) loop() {
	defer close(s.loopDone)
	for {
		first, ok := s.next()
		if !ok {
			s.drainClosed()
			return
		}
		windowFlush := s.collect(first)
		s.dispatch(windowFlush)
	}
}

// next blocks for the first request of the next batch; ok is false when the
// service is closing and the queue is empty.
func (s *SolveService) next() (*request, bool) {
	select {
	case r := <-s.reqs:
		return r, true
	case <-s.closing:
		// Drain what was enqueued before Close flipped the flag; those
		// requests still get answers.
		select {
		case r := <-s.reqs:
			return r, true
		default:
			return nil, false
		}
	}
}

// collect assembles the batch starting at first: requests are taken until
// the batch reaches MaxBatch (a size flush) or the coalescing window expires
// (a window flush, reported true). Window 0 means no coalescing — the batch
// is whatever is already queued, capped at MaxBatch, counted as a size flush.
// Requests already cancelled at assembly are dropped here, before the solver
// sees them.
func (s *SolveService) collect(first *request) (windowFlush bool) {
	s.batch = s.batch[:0]
	s.add(first)
	if s.opts.Window <= 0 {
		for len(s.batch) < s.opts.MaxBatch {
			select {
			case r := <-s.reqs:
				s.add(r)
			default:
				return false
			}
		}
		return false
	}
	timer := time.NewTimer(s.opts.Window)
	defer timer.Stop()
	for len(s.batch) < s.opts.MaxBatch {
		select {
		case r := <-s.reqs:
			s.add(r)
		case <-timer.C:
			return true
		case <-s.closing:
			// Shutdown flushes the open batch immediately; it is counted
			// as a window flush (the window was cut short, not filled).
			return true
		}
	}
	return false
}

// add appends r to the batch unless its context is already cancelled, in
// which case it is answered with the cancellation right away.
func (s *SolveService) add(r *request) {
	if err := r.ctx.Err(); err != nil {
		r.err = err
		close(r.done)
		s.statsMu.Lock()
		s.stats.Cancelled++
		s.statsMu.Unlock()
		return
	}
	s.batch = append(s.batch, r)
}

// dispatch solves the assembled batch as one SolveMulti and demultiplexes
// the answers. The solve runs under a background context: a single request's
// cancellation must not abort the batch its neighbors are riding in, so
// per-request contexts are consulted only at delivery, where a cancelled
// request's answer is discarded. A solver error fails every request in the
// batch.
func (s *SolveService) dispatch(windowFlush bool) {
	if len(s.batch) == 0 {
		return
	}
	s.bs = s.bs[:0]
	s.ys = s.ys[:0]
	for _, r := range s.batch {
		s.bs = append(s.bs, r.rhs)
		s.ys = append(s.ys, nil)
	}
	out, _, err := s.solver.SolveMultiContext(context.Background(), s.bs, s.ys)

	var solved, failed, cancelled uint64
	for k, r := range s.batch {
		switch {
		case err != nil:
			r.err = err
			failed++
		case r.ctx.Err() != nil:
			// Solved, but the caller is gone: discard the answer, deliver
			// the cancellation.
			r.err = r.ctx.Err()
			cancelled++
		default:
			r.y = out[k]
			solved++
		}
		close(r.done)
		s.batch[k] = nil // no liveness past delivery
	}

	s.statsMu.Lock()
	s.stats.Batches++
	if windowFlush {
		s.stats.WindowFlushes++
	} else {
		s.stats.SizeFlushes++
	}
	bucket := len(s.bs) - 1
	if bucket >= len(s.stats.BatchSizes) {
		bucket = len(s.stats.BatchSizes) - 1
	}
	s.stats.BatchSizes[bucket]++
	s.stats.Solves += solved
	s.stats.Errors += failed
	s.stats.Cancelled += cancelled
	s.statsMu.Unlock()
}

// drainClosed answers every request still queued at shutdown with ErrClosed.
func (s *SolveService) drainClosed() {
	for {
		select {
		case r := <-s.reqs:
			r.err = ErrClosed
			close(r.done)
		default:
			return
		}
	}
}
