package serve

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"doacross/internal/core"
)

// fakeSolver is a controllable BatchSolver: it records every batch size,
// optionally blocks each SolveMultiContext on a gate so tests can pile
// requests up behind an in-flight batch, and optionally fails. The "solve"
// doubles the right-hand side.
type fakeSolver struct {
	n       int
	gate    chan struct{} // when non-nil, each solve blocks until a send (or close)
	entered chan struct{} // buffered; one send per gated solve, before blocking
	fail    error

	mu      sync.Mutex
	batches []int
}

// gatedSolver returns a fakeSolver whose every solve announces itself on
// entered and then blocks until the test sends on (or closes) gate. Receiving
// from entered is how a test knows a batch is fully assembled and in flight.
func gatedSolver(n int) *fakeSolver {
	return &fakeSolver{n: n, gate: make(chan struct{}), entered: make(chan struct{}, 16)}
}

func (f *fakeSolver) N() int { return f.n }

func (f *fakeSolver) SolveMultiContext(ctx context.Context, B, Y [][]float64) ([][]float64, core.Report, error) {
	if f.gate != nil {
		f.entered <- struct{}{}
		<-f.gate
	}
	f.mu.Lock()
	f.batches = append(f.batches, len(B))
	f.mu.Unlock()
	if f.fail != nil {
		return nil, core.Report{}, f.fail
	}
	if Y == nil {
		Y = make([][]float64, len(B))
	}
	for k := range B {
		if Y[k] == nil {
			Y[k] = make([]float64, f.n)
		}
		for i := 0; i < f.n; i++ {
			Y[k][i] = 2 * B[k][i]
		}
	}
	return Y, core.Report{NRHS: len(B)}, nil
}

func (f *fakeSolver) batchSizes() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]int(nil), f.batches...)
}

func rhsFor(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return b
}

// TestServiceAnswersConcurrentCallers drives many concurrent callers through
// a coalescing window and checks every caller gets its own doubled answer
// back — the demultiplexing property — and that the stats add up.
func TestServiceAnswersConcurrentCallers(t *testing.T) {
	const n, callers, perCaller = 16, 8, 25
	fs := &fakeSolver{n: n}
	s, err := NewSolveService(fs, Options{Window: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	errs := make(chan error, callers*perCaller)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < perCaller; k++ {
				b := rhsFor(n, int64(1000*c+k))
				y, err := s.Solve(context.Background(), b)
				if err != nil {
					errs <- err
					return
				}
				for i := range b {
					if y[i] != 2*b[i] {
						t.Errorf("caller %d solve %d: y[%d] = %v, want %v", c, k, i, y[i], 2*b[i])
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.Solves != callers*perCaller {
		t.Errorf("Solves = %d, want %d", st.Solves, callers*perCaller)
	}
	if st.Errors != 0 || st.Cancelled != 0 {
		t.Errorf("unexpected failures: %+v", st)
	}
	if st.Batches == 0 || st.WindowFlushes+st.SizeFlushes != st.Batches {
		t.Errorf("flush counts don't add up to batches: %+v", st)
	}
	var hist uint64
	for _, c := range st.BatchSizes {
		hist += c
	}
	if hist != st.Batches {
		t.Errorf("batch-size histogram covers %d batches, want %d", hist, st.Batches)
	}
	if mean := st.MeanBatch(); mean < 1 {
		t.Errorf("mean batch %v < 1", mean)
	}
}

// TestServiceCoalescesBehindInFlightBatch blocks the solver on a gate,
// enqueues a pile of requests behind the in-flight batch, and checks the
// whole pile rides the next traversal as one batch.
func TestServiceCoalescesBehindInFlightBatch(t *testing.T) {
	const n, waiting = 8, 6
	fs := gatedSolver(n)
	s, err := NewSolveService(fs, Options{Window: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	results := make(chan error, waiting+1)
	solve := func(seed int64) {
		_, err := s.Solve(context.Background(), rhsFor(n, seed))
		results <- err
	}
	go solve(0)
	<-fs.entered // first batch is inside the solver, blocked on the gate
	for k := 1; k <= waiting; k++ {
		go solve(int64(k))
	}
	waitForDepth(t, s, waiting) // the pile is queued behind the in-flight batch
	fs.gate <- struct{}{}       // release the first batch
	<-fs.entered                // the whole pile rode the next traversal...
	fs.gate <- struct{}{}       // ...release it too
	for k := 0; k < waiting+1; k++ {
		if err := <-results; err != nil {
			t.Fatal(err)
		}
	}
	sizes := fs.batchSizes()
	if len(sizes) != 2 || sizes[0] != 1 || sizes[1] != waiting {
		t.Fatalf("batch sizes = %v, want [1 %d]", sizes, waiting)
	}
}

// waitForDepth spins until the intake queue holds want requests.
func waitForDepth(t *testing.T, s *SolveService, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().QueueDepth < want {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached depth %d (at %d)", want, s.Stats().QueueDepth)
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// TestServiceCancelledRequestDoesNotAbortBatch is the ISSUE's cancellation
// property: one request in a coalesced batch is cancelled mid-solve; it gets
// its context error, the batch completes, and every neighbor still gets a
// correct answer.
func TestServiceCancelledRequestDoesNotAbortBatch(t *testing.T) {
	const n, batch = 8, 3
	fs := gatedSolver(n)
	// MaxBatch = batch makes assembly deterministic: the batch flushes the
	// moment all three requests are in, regardless of timing.
	s, err := NewSolveService(fs, Options{Window: 10 * time.Second, MaxBatch: batch})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	type answer struct {
		y   []float64
		err error
	}
	ctxs := make([]context.Context, batch)
	cancels := make([]context.CancelFunc, batch)
	for k := range ctxs {
		ctxs[k], cancels[k] = context.WithCancel(context.Background())
		defer cancels[k]()
	}
	answers := make([]chan answer, batch)
	bs := make([][]float64, batch)
	for k := 0; k < batch; k++ {
		answers[k] = make(chan answer, 1)
		bs[k] = rhsFor(n, int64(k))
		go func(k int) {
			y, err := s.Solve(ctxs[k], bs[k])
			answers[k] <- answer{y, err}
		}(k)
	}
	// Wait until all three are assembled (size flush at MaxBatch) and the
	// solver is blocked on the gate: the batch is in flight. Cancel the
	// middle request while its batch is being solved.
	<-fs.entered
	cancels[1]()
	a1 := <-answers[1]
	if !errors.Is(a1.err, context.Canceled) {
		t.Fatalf("cancelled request returned %v, want context.Canceled", a1.err)
	}
	fs.gate <- struct{}{}
	for _, k := range []int{0, 2} {
		a := <-answers[k]
		if a.err != nil {
			t.Fatalf("neighbor %d of a cancelled request failed: %v", k, a.err)
		}
		for i := range bs[k] {
			if a.y[i] != 2*bs[k][i] {
				t.Fatalf("neighbor %d got a wrong answer at %d", k, i)
			}
		}
	}
	if sizes := fs.batchSizes(); len(sizes) != 1 || sizes[0] != batch {
		t.Fatalf("batch sizes = %v, want [%d] — the cancelled request must not shrink or abort the batch", fs.batchSizes(), batch)
	}
	st := s.Stats()
	if st.Cancelled != 1 || st.Solves != 2 {
		t.Errorf("stats after in-batch cancellation: %+v", st)
	}
	if st.SizeFlushes != 1 || st.WindowFlushes != 0 {
		t.Errorf("expected one size flush: %+v", st)
	}
}

// TestServiceDropsRequestsCancelledBeforeAssembly checks the other
// cancellation path: a request whose context is already dead when the batch
// is assembled is dropped without ever reaching the solver.
func TestServiceDropsRequestsCancelledBeforeAssembly(t *testing.T) {
	const n = 8
	fs := gatedSolver(n)
	s, err := NewSolveService(fs, Options{Window: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Occupy the dispatcher.
	firstDone := make(chan error, 1)
	go func() {
		_, err := s.Solve(context.Background(), rhsFor(n, 1))
		firstDone <- err
	}()
	<-fs.entered // first batch in the solver, blocked on the gate

	// Enqueue behind the in-flight batch, then cancel before release.
	ctx, cancel := context.WithCancel(context.Background())
	queuedDone := make(chan error, 1)
	go func() {
		_, err := s.Solve(ctx, rhsFor(n, 2))
		queuedDone <- err
	}()
	waitForDepth(t, s, 1)
	cancel()
	if err := <-queuedDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued-then-cancelled request returned %v", err)
	}
	fs.gate <- struct{}{} // release the first batch
	if err := <-firstDone; err != nil {
		t.Fatal(err)
	}

	// A live request keeps the service moving; the dead one must never reach
	// the solver, alone or batched.
	thirdDone := make(chan error, 1)
	go func() {
		_, err := s.Solve(context.Background(), rhsFor(n, 3))
		thirdDone <- err
	}()
	<-fs.entered
	fs.gate <- struct{}{}
	if err := <-thirdDone; err != nil {
		t.Fatal(err)
	}
	for _, size := range fs.batchSizes() {
		if size != 1 {
			t.Errorf("dead request reached the solver: batch sizes %v", fs.batchSizes())
		}
	}
	if st := s.Stats(); st.Cancelled != 1 {
		t.Errorf("Cancelled = %d, want 1", st.Cancelled)
	}
}

// TestServiceQueueBoundRejectsOverflow fills the intake queue behind a
// blocked solver and checks the overflowing enqueue fails fast with
// ErrQueueFull instead of blocking.
func TestServiceQueueBoundRejectsOverflow(t *testing.T) {
	const n = 8
	fs := gatedSolver(n)
	s, err := NewSolveService(fs, Options{QueueBound: 2, Window: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	results := make(chan error, 3)
	go func() {
		_, err := s.Solve(context.Background(), rhsFor(n, 0))
		results <- err
	}()
	<-fs.entered // dispatcher blocked inside the solver
	for k := 1; k <= 2; k++ {
		go func(k int) {
			_, err := s.Solve(context.Background(), rhsFor(n, int64(k)))
			results <- err
		}(k)
	}
	waitForDepth(t, s, 2)
	if _, err := s.Solve(context.Background(), rhsFor(n, 9)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflowing enqueue returned %v, want ErrQueueFull", err)
	}
	close(fs.gate) // release the first batch and everything after it
	for k := 0; k < 3; k++ {
		if err := <-results; err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.MaxQueueDepth < 2 {
		t.Errorf("MaxQueueDepth = %d, want >= 2", st.MaxQueueDepth)
	}
}

// TestServiceSolverErrorFailsWholeBatch checks a backend failure is
// delivered to every request that rode the failing batch.
func TestServiceSolverErrorFailsWholeBatch(t *testing.T) {
	const n, batch = 8, 3
	boom := errors.New("boom")
	fs := &fakeSolver{n: n, fail: boom}
	s, err := NewSolveService(fs, Options{Window: time.Second, MaxBatch: batch})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	errs := make(chan error, batch)
	for k := 0; k < batch; k++ {
		go func(k int) {
			_, err := s.Solve(context.Background(), rhsFor(n, int64(k)))
			errs <- err
		}(k)
	}
	for k := 0; k < batch; k++ {
		if err := <-errs; !errors.Is(err, boom) {
			t.Fatalf("batched request returned %v, want the solver error", err)
		}
	}
	if st := s.Stats(); st.Errors != batch || st.Solves != 0 {
		t.Errorf("stats after failed batch: %+v", st)
	}
}

// TestServiceCloseSemantics: Solve after Close fails with ErrClosed, queued
// requests are answered with ErrClosed, and Close is idempotent and
// concurrency-safe.
func TestServiceCloseSemantics(t *testing.T) {
	const n = 8
	fs := gatedSolver(n)
	s, err := NewSolveService(fs, Options{Window: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	inFlight := make(chan error, 1)
	go func() {
		_, err := s.Solve(context.Background(), rhsFor(n, 0))
		inFlight <- err
	}()
	<-fs.entered // dispatcher inside the solver, blocked on the gate
	queued := make(chan error, 1)
	go func() {
		_, err := s.Solve(context.Background(), rhsFor(n, 1))
		queued <- err
	}()
	waitForDepth(t, s, 1)

	var wg sync.WaitGroup
	for k := 0; k < 3; k++ {
		wg.Add(1)
		go func() { defer wg.Done(); s.Close() }()
	}
	// Close blocks on the dispatcher, which is blocked in the solver, which
	// waits for the gate; the queued request behind it is either drained to
	// ErrClosed or solved as a final batch, depending on which arm of the
	// shutdown select wins.
	close(fs.gate)
	wg.Wait()
	if err := <-inFlight; err != nil {
		t.Errorf("in-flight request at Close failed: %v", err)
	}
	if err := <-queued; !errors.Is(err, ErrClosed) {
		// The queued request may instead have been picked up as the next
		// batch before Close won the race; either a clean answer or
		// ErrClosed is acceptable — but nothing else.
		if err != nil {
			t.Errorf("queued request at Close returned %v", err)
		}
	}
	if _, err := s.Solve(context.Background(), rhsFor(n, 2)); !errors.Is(err, ErrClosed) {
		t.Errorf("Solve after Close returned %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}

// TestServiceSoloBatchesWithoutWindow: Window = 0 disables coalescing in the
// sense that the dispatcher never waits — whatever is queued rides together,
// and a lone caller always gets a batch of one, counted as a size flush.
func TestServiceSoloBatchesWithoutWindow(t *testing.T) {
	const n = 8
	fs := &fakeSolver{n: n}
	s, err := NewSolveService(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for k := 0; k < 5; k++ {
		if _, err := s.Solve(context.Background(), rhsFor(n, int64(k))); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Batches != 5 || st.SizeFlushes != 5 || st.WindowFlushes != 0 {
		t.Errorf("sequential no-window stats: %+v", st)
	}
	if st.BatchSizes[0] != 5 {
		t.Errorf("batch-size histogram: %v", st.BatchSizes)
	}
	if mean := st.MeanBatch(); mean != 1 {
		t.Errorf("mean batch = %v, want 1", mean)
	}
}

// TestServiceArgumentValidation covers constructor and Solve input checks.
func TestServiceArgumentValidation(t *testing.T) {
	if _, err := NewSolveService(nil, Options{}); err == nil {
		t.Error("nil solver accepted")
	}
	if _, err := NewSolveService(&fakeSolver{n: 4}, Options{Window: -time.Second}); err == nil {
		t.Error("negative window accepted")
	}
	if _, err := NewSolveService(&fakeSolver{n: 4}, Options{MaxBatch: -1}); err == nil {
		t.Error("negative batch size accepted")
	}
	s, err := NewSolveService(&fakeSolver{n: 4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Solve(context.Background(), make([]float64, 3)); err == nil {
		t.Error("short rhs accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Solve(ctx, make([]float64, 4)); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled Solve returned %v", err)
	}
	if st := s.Stats(); st.Batches != 0 {
		t.Errorf("rejected requests reached the dispatcher: %+v", st)
	}
}
