// Package stencil generates the discretized PDE operators from which the
// paper's Section 3.2 triangular test systems are derived (see the paper's
// appendix):
//
//   - 5-PT: five point central difference discretization on a 63x63 grid
//     (3969 equations),
//   - 7-PT: seven point central difference discretization on a 20x20x20 grid
//     (8000 equations),
//   - 9-PT: nine point box scheme discretization on a 63x63 grid (3969
//     equations),
//   - SPE2: block seven point operator on a 6x6x5 grid with 6x6 blocks (1080
//     equations), standing in for the thermal steam-injection simulation
//     matrix,
//   - SPE5: block seven point operator on a 16x23x3 grid with 3x3 blocks
//     (3312 equations), standing in for the black-oil simulation matrix.
//
// SPE2 and SPE5 were proprietary reservoir-simulation matrices; the paper
// describes them only by grid size, block size and operator type, so we
// synthesize block seven point operators with exactly those dimensions. The
// sparsity pattern — which is what determines the dependency structure of the
// triangular solves — matches the description.
package stencil

import (
	"fmt"
	"math/rand"

	"doacross/internal/sparse"
)

// Problem identifies one of the paper's five test problems.
type Problem int

const (
	SPE2 Problem = iota
	SPE5
	FivePoint
	SevenPoint
	NinePoint
)

// Problems lists all five test problems in the order of the paper's Table 1.
var Problems = []Problem{SPE2, SPE5, FivePoint, SevenPoint, NinePoint}

// String returns the paper's name for the problem.
func (p Problem) String() string {
	switch p {
	case SPE2:
		return "SPE2"
	case SPE5:
		return "SPE5"
	case FivePoint:
		return "5-PT"
	case SevenPoint:
		return "7-PT"
	case NinePoint:
		return "9-PT"
	default:
		return "unknown"
	}
}

// Equations returns the number of equations the paper reports for the
// problem.
func (p Problem) Equations() int {
	switch p {
	case SPE2:
		return 6 * 6 * 5 * 6
	case SPE5:
		return 16 * 23 * 3 * 3
	case FivePoint:
		return 63 * 63
	case SevenPoint:
		return 20 * 20 * 20
	case NinePoint:
		return 63 * 63
	default:
		return 0
	}
}

// Build generates the operator for the problem. The seed controls the random
// perturbation of off-diagonal coefficients (used so the synthetic SPE
// operators are not exactly structured-constant); it does not change the
// sparsity pattern.
func Build(p Problem, seed int64) (*sparse.CSR, error) {
	switch p {
	case SPE2:
		return BlockSevenPoint(6, 6, 5, 6, seed)
	case SPE5:
		return BlockSevenPoint(16, 23, 3, 3, seed)
	case FivePoint:
		return FivePointGrid(63, 63)
	case SevenPoint:
		return SevenPointGrid(20, 20, 20)
	case NinePoint:
		return NinePointGrid(63, 63)
	default:
		return nil, fmt.Errorf("stencil: unknown problem %d", int(p))
	}
}

// FivePointGrid builds the standard five point central difference
// discretization of the Laplacian on an nx x ny grid with Dirichlet
// boundaries: 4 on the diagonal, -1 for each of the (up to) four neighbors.
func FivePointGrid(nx, ny int) (*sparse.CSR, error) {
	if nx < 1 || ny < 1 {
		return nil, fmt.Errorf("stencil: invalid grid %dx%d", nx, ny)
	}
	n := nx * ny
	idx := func(i, j int) int { return i*ny + j }
	ts := make([]sparse.Triplet, 0, 5*n)
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			r := idx(i, j)
			ts = append(ts, sparse.Triplet{Row: r, Col: r, Val: 4})
			if i > 0 {
				ts = append(ts, sparse.Triplet{Row: r, Col: idx(i-1, j), Val: -1})
			}
			if i < nx-1 {
				ts = append(ts, sparse.Triplet{Row: r, Col: idx(i+1, j), Val: -1})
			}
			if j > 0 {
				ts = append(ts, sparse.Triplet{Row: r, Col: idx(i, j-1), Val: -1})
			}
			if j < ny-1 {
				ts = append(ts, sparse.Triplet{Row: r, Col: idx(i, j+1), Val: -1})
			}
		}
	}
	return sparse.FromTriplets(n, n, ts)
}

// SevenPointGrid builds the seven point central difference discretization of
// the Laplacian on an nx x ny x nz grid with Dirichlet boundaries.
func SevenPointGrid(nx, ny, nz int) (*sparse.CSR, error) {
	if nx < 1 || ny < 1 || nz < 1 {
		return nil, fmt.Errorf("stencil: invalid grid %dx%dx%d", nx, ny, nz)
	}
	n := nx * ny * nz
	idx := func(i, j, k int) int { return (i*ny+j)*nz + k }
	ts := make([]sparse.Triplet, 0, 7*n)
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				r := idx(i, j, k)
				ts = append(ts, sparse.Triplet{Row: r, Col: r, Val: 6})
				if i > 0 {
					ts = append(ts, sparse.Triplet{Row: r, Col: idx(i-1, j, k), Val: -1})
				}
				if i < nx-1 {
					ts = append(ts, sparse.Triplet{Row: r, Col: idx(i+1, j, k), Val: -1})
				}
				if j > 0 {
					ts = append(ts, sparse.Triplet{Row: r, Col: idx(i, j-1, k), Val: -1})
				}
				if j < ny-1 {
					ts = append(ts, sparse.Triplet{Row: r, Col: idx(i, j+1, k), Val: -1})
				}
				if k > 0 {
					ts = append(ts, sparse.Triplet{Row: r, Col: idx(i, j, k-1), Val: -1})
				}
				if k < nz-1 {
					ts = append(ts, sparse.Triplet{Row: r, Col: idx(i, j, k+1), Val: -1})
				}
			}
		}
	}
	return sparse.FromTriplets(n, n, ts)
}

// NinePointGrid builds the nine point box scheme discretization on an
// nx x ny grid: the four axis neighbors plus the four diagonal neighbors.
func NinePointGrid(nx, ny int) (*sparse.CSR, error) {
	if nx < 1 || ny < 1 {
		return nil, fmt.Errorf("stencil: invalid grid %dx%d", nx, ny)
	}
	n := nx * ny
	idx := func(i, j int) int { return i*ny + j }
	ts := make([]sparse.Triplet, 0, 9*n)
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			r := idx(i, j)
			ts = append(ts, sparse.Triplet{Row: r, Col: r, Val: 8.0 / 3.0 * 3.0}) // 8 on the diagonal
			for di := -1; di <= 1; di++ {
				for dj := -1; dj <= 1; dj++ {
					if di == 0 && dj == 0 {
						continue
					}
					ii, jj := i+di, j+dj
					if ii < 0 || ii >= nx || jj < 0 || jj >= ny {
						continue
					}
					v := -1.0
					if di != 0 && dj != 0 {
						v = -0.5 // corner coupling of the box scheme
					}
					ts = append(ts, sparse.Triplet{Row: r, Col: idx(ii, jj), Val: v})
				}
			}
		}
	}
	return sparse.FromTriplets(n, n, ts)
}

// BlockSevenPoint builds a block seven point operator on an nx x ny x nz grid
// with b x b blocks: the scalar seven point connectivity where every nonzero
// becomes a dense b x b block. Diagonal blocks are made strongly diagonally
// dominant so ILU(0) succeeds; off-diagonal block entries carry a small
// random perturbation (deterministic in seed) so the values are not all
// identical.
func BlockSevenPoint(nx, ny, nz, b int, seed int64) (*sparse.CSR, error) {
	if nx < 1 || ny < 1 || nz < 1 || b < 1 {
		return nil, fmt.Errorf("stencil: invalid block grid %dx%dx%d blocks %d", nx, ny, nz, b)
	}
	rng := rand.New(rand.NewSource(seed))
	cells := nx * ny * nz
	n := cells * b
	idx := func(i, j, k int) int { return (i*ny+j)*nz + k }
	ts := make([]sparse.Triplet, 0, 7*cells*b*b)

	addBlock := func(cellRow, cellCol int, diag bool) {
		for bi := 0; bi < b; bi++ {
			for bj := 0; bj < b; bj++ {
				r := cellRow*b + bi
				c := cellCol*b + bj
				var v float64
				if diag {
					if bi == bj {
						v = 2 * float64(6*b) // strong diagonal dominance
					} else {
						v = -1 + 0.1*rng.Float64()
					}
				} else {
					if bi == bj {
						v = -1 - 0.2*rng.Float64()
					} else {
						v = -0.1 * rng.Float64()
					}
				}
				ts = append(ts, sparse.Triplet{Row: r, Col: c, Val: v})
			}
		}
	}

	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				cell := idx(i, j, k)
				addBlock(cell, cell, true)
				if i > 0 {
					addBlock(cell, idx(i-1, j, k), false)
				}
				if i < nx-1 {
					addBlock(cell, idx(i+1, j, k), false)
				}
				if j > 0 {
					addBlock(cell, idx(i, j-1, k), false)
				}
				if j < ny-1 {
					addBlock(cell, idx(i, j+1, k), false)
				}
				if k > 0 {
					addBlock(cell, idx(i, j, k-1), false)
				}
				if k < nz-1 {
					addBlock(cell, idx(i, j, k+1), false)
				}
			}
		}
	}
	return sparse.FromTriplets(n, n, ts)
}

// RHS builds a deterministic right hand side of length n for test solves.
func RHS(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return b
}

// LowerFactor builds the problem's operator, runs ILU(0) on it and returns
// the unit lower triangular factor — the triangular system solved in the
// paper's Table 1 experiments — along with the upper factor.
func LowerFactor(p Problem, seed int64) (l, u *sparse.Triangular, err error) {
	a, err := Build(p, seed)
	if err != nil {
		return nil, nil, err
	}
	return sparse.ILU0(a)
}
