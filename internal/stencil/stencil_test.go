package stencil

import (
	"testing"

	"doacross/internal/sparse"
)

func TestProblemNamesAndSizes(t *testing.T) {
	want := map[Problem]struct {
		name string
		eq   int
	}{
		SPE2:       {"SPE2", 1080},
		SPE5:       {"SPE5", 3312},
		FivePoint:  {"5-PT", 3969},
		SevenPoint: {"7-PT", 8000},
		NinePoint:  {"9-PT", 3969},
	}
	for p, w := range want {
		if p.String() != w.name {
			t.Errorf("%v name = %q, want %q", p, p.String(), w.name)
		}
		if p.Equations() != w.eq {
			t.Errorf("%v equations = %d, want %d", p, p.Equations(), w.eq)
		}
	}
	if Problem(99).String() != "unknown" || Problem(99).Equations() != 0 {
		t.Error("invalid problem should report unknown/0")
	}
	if len(Problems) != 5 {
		t.Errorf("Problems has %d entries, want 5", len(Problems))
	}
}

func TestBuildMatchesPaperEquationCounts(t *testing.T) {
	for _, p := range Problems {
		a, err := Build(p, 1)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if a.Rows != p.Equations() || a.Cols != p.Equations() {
			t.Errorf("%v: built %dx%d, want %d equations", p, a.Rows, a.Cols, p.Equations())
		}
	}
	if _, err := Build(Problem(99), 1); err == nil {
		t.Error("unknown problem accepted")
	}
}

func TestFivePointStructure(t *testing.T) {
	a, err := FivePointGrid(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows != 20 {
		t.Fatalf("rows = %d, want 20", a.Rows)
	}
	st := a.Analyze()
	if st.MaxRowNNZ != 5 {
		t.Errorf("max row nnz = %d, want 5", st.MaxRowNNZ)
	}
	if !st.Symmetric {
		t.Error("5-point operator should have symmetric pattern")
	}
	// Interior point (1,1) = row 1*5+1 = 6 has exactly 5 entries.
	if a.RowNNZ(6) != 5 {
		t.Errorf("interior row nnz = %d, want 5", a.RowNNZ(6))
	}
	// Corner (0,0) has 3 entries.
	if a.RowNNZ(0) != 3 {
		t.Errorf("corner row nnz = %d, want 3", a.RowNNZ(0))
	}
	if _, err := FivePointGrid(0, 3); err == nil {
		t.Error("invalid grid accepted")
	}
}

func TestSevenPointStructure(t *testing.T) {
	a, err := SevenPointGrid(3, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows != 27 {
		t.Fatalf("rows = %d, want 27", a.Rows)
	}
	st := a.Analyze()
	if st.MaxRowNNZ != 7 {
		t.Errorf("max row nnz = %d, want 7", st.MaxRowNNZ)
	}
	if !st.Symmetric {
		t.Error("7-point operator should have symmetric pattern")
	}
	// Center cell (1,1,1) = row (1*3+1)*3+1 = 13 touches all 7.
	if a.RowNNZ(13) != 7 {
		t.Errorf("center row nnz = %d, want 7", a.RowNNZ(13))
	}
	if _, err := SevenPointGrid(2, 0, 2); err == nil {
		t.Error("invalid grid accepted")
	}
}

func TestNinePointStructure(t *testing.T) {
	a, err := NinePointGrid(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows != 16 {
		t.Fatalf("rows = %d, want 16", a.Rows)
	}
	st := a.Analyze()
	if st.MaxRowNNZ != 9 {
		t.Errorf("max row nnz = %d, want 9", st.MaxRowNNZ)
	}
	if !st.Symmetric {
		t.Error("9-point operator should have symmetric pattern")
	}
	if _, err := NinePointGrid(-1, 4); err == nil {
		t.Error("invalid grid accepted")
	}
}

func TestBlockSevenPointStructure(t *testing.T) {
	a, err := BlockSevenPoint(3, 2, 2, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows != 3*2*2*3 {
		t.Fatalf("rows = %d, want 36", a.Rows)
	}
	// Every row of a diagonal block has at least b entries (the dense
	// diagonal block) and rows belonging to a fully interior cell have 7*b.
	st := a.Analyze()
	if st.MaxRowNNZ > 7*3 {
		t.Errorf("max row nnz = %d, exceeds 7*b", st.MaxRowNNZ)
	}
	if st.MaxRowNNZ < 3 {
		t.Errorf("max row nnz = %d, smaller than block size", st.MaxRowNNZ)
	}
	if _, err := BlockSevenPoint(1, 1, 1, 0, 0); err == nil {
		t.Error("invalid block size accepted")
	}
}

func TestBlockSevenPointDeterministicInSeed(t *testing.T) {
	a1, _ := BlockSevenPoint(3, 3, 2, 2, 42)
	a2, _ := BlockSevenPoint(3, 3, 2, 2, 42)
	a3, _ := BlockSevenPoint(3, 3, 2, 2, 43)
	if sparse.VecMaxDiff(a1.Val, a2.Val) != 0 {
		t.Error("same seed should give identical matrices")
	}
	if sparse.VecMaxDiff(a1.Val, a3.Val) == 0 {
		t.Error("different seeds should perturb values")
	}
}

func TestAllProblemsFactorizable(t *testing.T) {
	// Every one of the paper's test problems must admit ILU(0) (needed for
	// Table 1), and the resulting lower factor must be valid and solvable.
	for _, p := range []Problem{SPE2, FivePoint, NinePoint} { // larger ones covered in integration tests
		l, u, err := LowerFactor(p, 1)
		if err != nil {
			t.Fatalf("%v: ILU0 failed: %v", p, err)
		}
		if err := l.Validate(); err != nil {
			t.Fatalf("%v: invalid L: %v", p, err)
		}
		if err := u.Validate(); err != nil {
			t.Fatalf("%v: invalid U: %v", p, err)
		}
		rhs := RHS(l.N, 3)
		y := l.Solve(rhs, nil)
		back := l.MulVec(y, nil)
		if sparse.VecMaxDiff(back, rhs) > 1e-8 {
			t.Fatalf("%v: forward solve residual too large", p)
		}
	}
}

func TestRHSDeterministic(t *testing.T) {
	a := RHS(10, 5)
	b := RHS(10, 5)
	c := RHS(10, 6)
	if sparse.VecMaxDiff(a, b) != 0 {
		t.Error("RHS not deterministic in seed")
	}
	if sparse.VecMaxDiff(a, c) == 0 {
		t.Error("RHS should differ across seeds")
	}
	if len(a) != 10 {
		t.Error("wrong length")
	}
}
