package stencil_test

import (
	"fmt"

	"doacross/internal/stencil"
)

// ExampleBuild generates each of the paper's five test systems and prints
// their sizes, which match the equation counts reported in the paper's
// appendix exactly.
func ExampleBuild() {
	for _, p := range stencil.Problems {
		a, err := stencil.Build(p, 1)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-5s %5d equations, %6d nonzeros\n", p, a.Rows, a.NNZ())
	}
	// Output:
	// SPE2   1080 equations,  38448 nonzeros
	// SPE5   3312 equations,  60822 nonzeros
	// 5-PT   3969 equations,  19593 nonzeros
	// 7-PT   8000 equations,  53600 nonzeros
	// 9-PT   3969 equations,  34969 nonzeros
}
