package core_test

import (
	"fmt"

	"doacross/internal/core"
	"doacross/internal/flags"
)

// ExampleRuntime_Run parallelizes the paper's Figure 1 loop,
//
//	do i = 1, N:  y(a(i)) = y(b(i)) + 1
//
// where a and b are execution-time index arrays, and shows that the result
// matches the sequential loop even though iteration 3 depends on iteration 0
// and iteration 1 anti-depends on iteration 2.
func ExampleRuntime_Run() {
	a := []int{4, 0, 1, 5}   // write targets (all distinct)
	b := []int{9, 1, 8, 4}   // read sources: it 1 reads elem 1 (written later by it 2), it 3 reads elem 4 (written by it 0)
	y := make([]float64, 10) // shared data
	for i := range y {
		y[i] = float64(i) // old values 0..9
	}

	loop := &core.Loop{
		N:      4,
		Data:   len(y),
		Writes: func(i int) []int { return a[i : i+1] },
		Body: func(i int, v *core.Values) {
			v.Store(a[i], v.Load(b[i])+1)
		},
	}

	seq := append([]float64(nil), y...)
	if err := core.RunSequential(loop, seq); err != nil {
		panic(err)
	}

	rt := core.NewRuntime(len(y), core.Options{Workers: 2, WaitStrategy: flags.WaitSpinYield})
	par := append([]float64(nil), y...)
	if _, err := rt.Run(loop, par); err != nil {
		panic(err)
	}

	fmt.Println("sequential:", seq)
	fmt.Println("doacross:  ", par)
	// Output:
	// sequential: [2 9 2 3 10 11 6 7 8 9]
	// doacross:   [2 9 2 3 10 11 6 7 8 9]
}

// ExampleRuntime_RunLinear shows the Section 2.3 variant that eliminates the
// inspector when the left-hand-side subscript is a known linear function
// (here a(i) = 2i).
func ExampleRuntime_RunLinear() {
	sub := core.LinearSubscript{C: 2, D: 0}
	loop := &core.Loop{
		N:      4,
		Data:   8,
		Writes: sub.WritesFunc(),
		Body: func(i int, v *core.Values) {
			if i == 0 {
				v.Store(0, 1)
				return
			}
			v.Store(2*i, 2*v.Load(2*(i-1))) // chain through the even elements
		},
	}
	y := make([]float64, 8)
	rt := core.NewRuntime(8, core.Options{Workers: 2, WaitStrategy: flags.WaitSpinYield})
	rep, err := rt.RunLinear(loop, y, sub)
	if err != nil {
		panic(err)
	}
	fmt.Println("y:", y)
	fmt.Println("inspector time is zero:", rep.PreTime == 0)
	// Output:
	// y: [1 0 2 0 4 0 8 0]
	// inspector time is zero: true
}
