package core

import (
	"fmt"
	"sort"
	"time"

	"doacross/internal/depgraph"
	"doacross/internal/sched"
)

// EditSet describes an in-place mutation of a loop's access pattern: the
// caller changed what some iterations write or read (through the index
// arrays the Writes/Reads closures consult) and tells the runtime which
// iterations are affected, instead of discarding every cached plan with
// InvalidatePlans.
type EditSet struct {
	// Iters lists every iteration whose Writes or Reads result changed. When
	// an edit moves a write from one element to another, the readers of both
	// elements change predecessors too and must be listed; pure read-pattern
	// edits (the triangular-solve row update, where writes are the identity)
	// need only the edited iterations themselves. Duplicates are allowed.
	Iters []int
	// RetiredElems lists data elements that were written by some iteration
	// before the edit and are no longer written by any iteration after it, so
	// the plan's writer index can forget them. Elements whose writer merely
	// changed need not be listed — re-recording the new writers covers them.
	RetiredElems []int
}

// RepairReport describes what RepairPlans did.
type RepairReport struct {
	// Repaired reports that the cached plan was patched in place. False
	// means the runtime fell back to a full invalidation — no plan was
	// cached for the loop, or the dirty cone exceeded the cost-model budget —
	// and the next run will re-inspect cold.
	Repaired bool
	// ConeSize is the number of iterations whose level was recomputed (on
	// fallback: how many had been visited when the budget was exhausted).
	ConeSize int
	// FromLevel is the earliest wavefront level the repair perturbed; levels
	// below it kept their exact schedule. Equal to Levels when the edit
	// changed no level membership at all.
	FromLevel int
	// Levels is the repaired plan's level count.
	Levels int
	// RepairTime is how long the repair (or the fallback) took.
	RepairTime time.Duration
}

// RepairPlans patches the cached wavefront plan of l after an in-place edit
// of its access pattern, instead of evicting it: the plan's writer index is
// re-recorded for the edited iterations, their dependency-graph predecessor
// lists are recomputed and applied as graph edits, and the level
// decomposition, inspection statistics and (lazily) the static schedule are
// repaired only in the dirty cone — the edited iterations plus the
// transitive successors whose level actually moves. For a few edited rows of
// a large loop this is orders of magnitude cheaper than the cold re-inspect
// an InvalidatePlans forces, which is what makes per-step sparsity changes
// (mesh refinement, ILU fill-in) affordable.
//
// The repair falls back to a full invalidation — returning Repaired == false
// with a nil error — when no repairable plan is cached for l (the plan must
// be the one the loop's own previous runs built: repaired plans are tracked
// through the pointer-identity memo), or when the dirty cone exceeds the
// cost-model budget (AutoCosts.RepairConeBudget), in which case a cold
// re-inspect is predicted cheaper anyway. Either way the cache is left
// consistent with the edited pattern; callers never need to pair RepairPlans
// with InvalidatePlans.
//
// Like InvalidatePlans it serializes with runs and is safe to call
// concurrently with them. The loop's next run stamps Report.PlanRepaired and
// Report.RepairNs so drivers can observe which path each edit took.
func (rt *Runtime) RepairPlans(l *Loop, edits EditSet) (RepairReport, error) {
	if l == nil {
		return RepairReport{}, fmt.Errorf("core: RepairPlans requires a loop")
	}
	start := time.Now()
	rt.runMu.Lock()
	defer rt.runMu.Unlock()

	for _, i := range edits.Iters {
		if i < 0 || i >= l.N {
			return RepairReport{}, fmt.Errorf("core: RepairPlans: iteration %d out of range [0, %d)", i, l.N)
		}
	}
	for _, e := range edits.RetiredElems {
		if e < 0 || e >= l.Data {
			return RepairReport{}, fmt.Errorf("core: RepairPlans: retired element %d out of range [0, %d)", e, l.Data)
		}
	}

	plan := rt.planMemo
	if rt.planMemoLoop != l || plan == nil || plan.gen != rt.planGen || plan.graph == nil || plan.n != l.N {
		// Nothing repairable is cached for this loop; evict everything so no
		// stale plan (reachable through the hash tier from an equal-pattern
		// Loop) survives the mutation.
		rt.recordPlan(PlanRepairFallback)
		rt.invalidateLocked()
		return RepairReport{RepairTime: time.Since(start)}, nil
	}
	if len(edits.Iters) == 0 && len(edits.RetiredElems) == 0 {
		rt.recordPlan(PlanRepaired)
		return RepairReport{Repaired: true, FromLevel: plan.stats.Levels, Levels: plan.stats.Levels, RepairTime: time.Since(start)}, nil
	}

	dirty := append([]int(nil), edits.Iters...)
	sort.Ints(dirty)
	w := 0
	for _, i := range dirty {
		if w == 0 || dirty[w-1] != i {
			dirty[w] = i
			w++
		}
	}
	dirty = dirty[:w]

	// Phase 1 — the only phase that calls user closures: capture the edited
	// iterations' new writes and reads before touching the plan, so a
	// panicking closure surfaces as an error with the cache intact.
	writes := make([][]int, len(dirty))
	reads := make([][]int, len(dirty))
	if err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("core: repair inspector panicked: %v", r)
			}
		}()
		for k, i := range dirty {
			writes[k] = append([]int(nil), l.Writes(i)...)
			if l.Reads != nil {
				reads[k] = append([]int(nil), l.Reads(i)...)
			}
		}
		return nil
	}(); err != nil {
		return RepairReport{}, err
	}
	for k, ws := range writes {
		for _, e := range ws {
			if e < 0 || e >= len(plan.writer) {
				return RepairReport{}, fmt.Errorf("core: RepairPlans: iteration %d writes element %d out of range [0, %d)", dirty[k], e, len(plan.writer))
			}
		}
	}

	// Phase 2 — pure plan surgery; from here on a failure must invalidate,
	// since the writer index and graph mutate in place.
	for _, e := range edits.RetiredElems {
		plan.writer[e] = -1
	}
	for k, ws := range writes {
		for _, e := range ws {
			plan.writer[e] = int32(dirty[k])
		}
	}
	g := plan.graph
	workers := rt.opts.Workers
	stallDelta := 0.0
	gedits := make([]depgraph.Edit, len(dirty))
	for k, i := range dirty {
		var preds []int32
		for _, e := range reads[k] {
			if e < 0 || e >= len(plan.writer) {
				continue
			}
			j := plan.writer[e]
			if j < 0 || int(j) >= i {
				// Not written, self dependence, or anti-dependence (removed
				// by renaming) — the cold inspector's classification.
				continue
			}
			preds = append(preds, j)
		}
		stallDelta -= stallContribution(i, g.Preds[i], workers)
		gedits[k] = depgraph.Edit{Iter: i, Preds: preds}
	}
	if err := g.ApplyEdits(gedits); err != nil {
		rt.recordPlan(PlanRepairFallback)
		rt.invalidateLocked()
		return RepairReport{RepairTime: time.Since(start)}, err
	}
	for _, i := range dirty {
		stallDelta += stallContribution(i, g.Preds[i], workers)
	}

	costs := rt.autoCosts
	if !costs.valid() {
		costs = rt.opts.AutoCosts
	}
	budget := costs.RepairConeBudget(plan.n, g.Edges)
	dirty32 := make([]int32, len(dirty))
	for k, i := range dirty {
		dirty32[k] = int32(i)
	}
	res := g.RepairLevelsInto(&plan.levels, dirty32, budget)
	if !res.Ok {
		// The cone outgrew the cost model's break-even point: a cold
		// re-inspect is predicted cheaper than continuing, so take it.
		rt.recordPlan(PlanRepairFallback)
		rt.invalidateLocked()
		return RepairReport{ConeSize: res.Cone, RepairTime: time.Since(start)}, nil
	}

	rt.patchPlanStats(plan, res, dirty, stallDelta)

	// The structural-hash tier stored the pre-edit pattern's digest; evict it
	// so an equal-pattern Loop built from the old indices cannot hit the
	// repaired plan. Rehashing would cost the full closure sweep repair
	// avoids, so the plan stays reachable through the pointer memo only.
	if plan.hash != 0 {
		if cp, ok := rt.planCache[plan.hash]; ok && cp == plan {
			delete(rt.planCache, plan.hash)
		}
		plan.hash = 0
	}

	elapsed := time.Since(start)
	rt.pendingRepairLoop = l
	rt.pendingRepairNs += elapsed.Nanoseconds()
	rt.recordPlan(PlanRepaired)
	return RepairReport{
		Repaired:   true,
		ConeSize:   res.Cone,
		FromLevel:  res.FromLevel,
		Levels:     plan.stats.Levels,
		RepairTime: elapsed,
	}, nil
}

// patchPlanStats brings the plan's derived state — inspection statistics,
// worker clamp, per-level imbalance cache and the static schedule's dirty
// mark — in line with the freshly repaired graph and decomposition. Only the
// O(levels) summaries and the perturbed levels are recomputed; nothing
// rescans the whole loop unless the worker clamp itself moved.
func (rt *Runtime) patchPlanStats(plan *wavefrontPlan, res depgraph.RepairResult, dirty []int, stallDelta float64) {
	g := plan.graph
	ls := &plan.levels
	st := &plan.stats
	st.Edges = g.Edges
	st.StallWeight += stallDelta
	levels := ls.Count()
	st.Levels = levels
	st.CriticalPathLen = levels
	if levels > 0 {
		st.MeanLevelWidth = float64(plan.n) / float64(levels)
	} else {
		st.MeanLevelWidth = 0
	}
	maxWidth := ls.MaxWidth()
	st.MaxLevelWidth = maxWidth

	p := rt.opts.Workers
	if p > maxWidth {
		p = maxWidth
	}
	if p < 1 {
		p = 1
	}
	chunk := rt.opts.Chunk
	if chunk < 1 {
		chunk = sched.DefaultChunk
	}
	st.ScheduleRounds, st.DynamicClaims = 0, 0
	for lvl := 0; lvl < levels; lvl++ {
		w := int(ls.Off[lvl+1] - ls.Off[lvl])
		st.ScheduleRounds += (w + p - 1) / p
		st.DynamicClaims += sched.DynamicClaims(w, chunk, p)
	}

	if p != plan.workers {
		// The widest level crossed the worker count, changing the schedule's
		// worker clamp: every level's distribution is stale, so drop the
		// schedule (rebuilt lazily) and recompute the imbalance cache whole.
		plan.workers = p
		plan.static = nil
		plan.staticFrom = -1
		plan.imb = levelImbalances(g, ls, rt.opts.Policy, p)
	} else {
		if plan.static != nil && res.Changed > 0 {
			if plan.staticFrom < 0 || res.FromLevel < plan.staticFrom {
				plan.staticFrom = res.FromLevel
			}
		}
		if plan.imb != nil {
			// A level's imbalance moves when its membership changed
			// (res.ChangedLevels) or when an edited iteration's in-degree
			// changed without moving it (its current level).
			if len(plan.imb) < levels {
				imb := make([]float64, levels)
				copy(imb, plan.imb)
				plan.imb = imb
			} else {
				plan.imb = plan.imb[:levels]
			}
			for _, lvl := range res.ChangedLevels {
				plan.imb[lvl] = levelImbalanceAt(g, ls, rt.opts.Policy, p, int(lvl))
			}
			for _, i := range dirty {
				plan.imb[ls.Level[i]] = levelImbalanceAt(g, ls, rt.opts.Policy, p, int(ls.Level[i]))
			}
		}
	}
	st.ReadImbalance = 0
	for _, v := range plan.imb {
		st.ReadImbalance += v
	}
}

// stallContribution is iteration i's share of InspectStats.StallWeight: the
// stall estimate of its incoming edges, Σ over preds of max(0, (P - d)/P)
// with d the dependence distance (see Graph.StallWeight). Repair subtracts
// the pre-edit share and adds the post-edit one.
func stallContribution(i int, preds []int32, workers int) float64 {
	if workers <= 1 {
		return 0
	}
	w := 0.0
	for _, p := range preds {
		if d := i - int(p); d < workers {
			w += float64(workers-d) / float64(workers)
		}
	}
	return w
}
