package core

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// IterTrace records how one iteration of a doacross execution behaved. Traces
// are collected only when Options.CollectTrace is set, because stamping two
// monotonic clock readings per iteration is measurable overhead on very small
// loop bodies.
type IterTrace struct {
	// Iteration is the original iteration index.
	Iteration int
	// Position is the execution position (differs from Iteration when a
	// doconsider order is active).
	Position int
	// Worker is the worker that executed the iteration.
	Worker int
	// Start and End are offsets from the beginning of the executor phase.
	Start, End time.Duration
	// WaitPolls is the number of polling steps spent on unsatisfied true
	// dependencies.
	WaitPolls int
	// TrueDeps is the number of reads classified as true dependencies.
	TrueDeps int
}

// Trace is the per-iteration record of one doacross execution.
type Trace struct {
	Workers    int
	Iterations []IterTrace
}

// Trace returns the trace of the most recent Run when tracing was enabled,
// or nil otherwise. The slice is owned by the runtime and overwritten by the
// next traced Run.
func (rt *Runtime) Trace() *Trace { return rt.lastTrace }

// Summary aggregates a trace into per-worker utilization and wait statistics.
type TraceSummary struct {
	Workers        int
	Iterations     int
	Span           time.Duration
	PerWorkerIters []int
	PerWorkerBusy  []time.Duration
	TotalWaitPolls int64
	MaxWaitPolls   int
	// LongestIteration is the iteration with the largest End-Start span.
	LongestIteration IterTrace
}

// Summarize computes aggregate statistics from the trace.
func (tr *Trace) Summarize() TraceSummary {
	s := TraceSummary{
		Workers:        tr.Workers,
		Iterations:     len(tr.Iterations),
		PerWorkerIters: make([]int, tr.Workers),
		PerWorkerBusy:  make([]time.Duration, tr.Workers),
	}
	for _, it := range tr.Iterations {
		if it.Worker >= 0 && it.Worker < tr.Workers {
			s.PerWorkerIters[it.Worker]++
			s.PerWorkerBusy[it.Worker] += it.End - it.Start
		}
		if it.End > s.Span {
			s.Span = it.End
		}
		s.TotalWaitPolls += int64(it.WaitPolls)
		if it.WaitPolls > s.MaxWaitPolls {
			s.MaxWaitPolls = it.WaitPolls
		}
		if it.End-it.Start > s.LongestIteration.End-s.LongestIteration.Start {
			s.LongestIteration = it
		}
	}
	return s
}

// String renders the summary compactly.
func (s TraceSummary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d iterations on %d workers, span %v, total wait polls %d (max %d per iteration)\n",
		s.Iterations, s.Workers, s.Span, s.TotalWaitPolls, s.MaxWaitPolls)
	for w := 0; w < s.Workers; w++ {
		busyFrac := 0.0
		if s.Span > 0 {
			busyFrac = float64(s.PerWorkerBusy[w]) / float64(s.Span)
		}
		fmt.Fprintf(&b, "  worker %d: %d iterations, busy %.0f%%\n", w, s.PerWorkerIters[w], 100*busyFrac)
	}
	return b.String()
}

// ByStart returns the iteration traces sorted by start time, which is the
// order a Gantt-style visualization would draw them in.
func (tr *Trace) ByStart() []IterTrace {
	out := append([]IterTrace(nil), tr.Iterations...)
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}
