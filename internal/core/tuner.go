package core

import (
	"sort"

	"doacross/internal/tune"
)

// TuningOptions configures the online self-tuning Auto selection
// (Options.Tuning / doacross.WithOnlineTuning). The zero value of every
// field means its default; see the field comments. Tuning is keyed by plan
// fingerprint: every loop shape a runtime serves calibrates independently.
type TuningOptions struct {
	// InitialCosts seeds the tuner's coefficients instead of the
	// self-calibration probe. Unlike Options.AutoCosts — which pins the
	// coefficients and therefore freezes tuning — these are just the
	// starting point the measured feedback corrects, which is what the
	// convergence tests exploit by seeding deliberately wrong values. The
	// zero value means "probe once, then tune".
	InitialCosts AutoCosts
	// Alpha is the exponential-moving-average smoothing factor applied to
	// each executor's observed run times, in (0, 1]. Zero means
	// tune.DefaultAlpha.
	Alpha float64
	// Epsilon is the exploration probability: the chance each Auto decision
	// deliberately runs the least-observed non-best executor instead of the
	// best-scoring one, so a wrong initial pick cannot lock in. Zero means
	// tune.DefaultEpsilon; negative disables exploration (pure greedy).
	Epsilon float64
	// Blend is the rate back-solved coefficient proposals are folded into
	// the tuned coefficients, in (0, 1]. Zero means tune.DefaultBlend.
	Blend float64
	// Seed seeds the deterministic exploration RNG; zero means 1. Two
	// runtimes with equal seeds, workloads and timings explore the same
	// runs.
	Seed uint64
}

// tuneOptions projects the configuration onto the tune package's knobs.
func (o TuningOptions) tuneOptions() tune.Options {
	return tune.Options{Alpha: o.Alpha, Epsilon: o.Epsilon, Blend: o.Blend, Seed: o.Seed}
}

// tuner is the runtime's online tuning state: one tune.PlanState per plan
// fingerprint, the shared exploration RNG, and the aggregate counters the
// snapshot and the metrics sink report. It is guarded by the runtime's run
// mutex like every other piece of plan state.
type tuner struct {
	opts tune.Options
	rng  *tune.RNG
	// initial is the configured seed coefficients (possibly zero); base the
	// resolved ones — initial when valid, otherwise the probe's measurement,
	// resolved lazily on the first tuned decision.
	initial AutoCosts
	base    AutoCosts
	plans   map[uint64]*tune.PlanState
	// observations counts completed runs fed back in; explorations the
	// subset that deliberately ran a non-best executor.
	observations uint64
	explorations uint64
}

// newTuner builds the tuner for a runtime configured with Options.Tuning.
func newTuner(o TuningOptions) *tuner {
	opts := o.tuneOptions().WithDefaults()
	return &tuner{
		opts:    opts,
		rng:     tune.NewRNG(opts.Seed),
		initial: o.InitialCosts,
		plans:   make(map[uint64]*tune.PlanState),
	}
}

// tuningActive reports whether Auto decisions consult the tuner: a tuner
// must be configured, and the coefficients must not be pinned —
// Options.AutoCosts declares the costs known, which freezes tuning entirely
// (no plan state is created or updated, so a frozen tuner's snapshot is
// byte-identical across runs).
func (rt *Runtime) tuningActive() bool {
	return rt.tuner != nil && !rt.opts.AutoCosts.valid()
}

// tunerBase resolves the coefficients a fresh plan's tuner state is seeded
// from: the configured initial costs when valid, otherwise the probe's
// one-time measurement (shared with the untuned Auto path through
// autoCostsFor's memo).
func (rt *Runtime) tunerBase() AutoCosts {
	if rt.tuner.base.valid() {
		return rt.tuner.base
	}
	if rt.tuner.initial.valid() {
		rt.tuner.base = rt.tuner.initial
	} else {
		rt.tuner.base = rt.autoCostsFor()
	}
	return rt.tuner.base
}

// planState returns (building on first use) the tuner state of the plan with
// the given fingerprint.
func (tn *tuner) planState(fp uint64, base AutoCosts) *tune.PlanState {
	ps := tn.plans[fp]
	if ps == nil {
		s := tune.NewPlanState(tune.Coeffs(base))
		ps = &s
		tn.plans[fp] = ps
	}
	return ps
}

// pendingObservation carries a tuned Auto decision across the executor phase
// to the post-run feedback: which plan state decided, which arm ran, and the
// shape the back-solver needs. Armed by executorFor, consumed by
// observeTuning on success; a failed run leaves it to be discarded by the
// next decision (aborted executor-phase times measure the failure, not the
// executor).
type pendingObservation struct {
	ps       *tune.PlanState
	stats    InspectStats
	exec     int // tune executor index
	nrhs     int
	explored bool
}

// kindOfTuneExec maps a tune arm index back to the runtime's ExecutorKind.
func kindOfTuneExec(e int) ExecutorKind {
	switch e {
	case tune.Wavefront:
		return ExecWavefront
	case tune.WavefrontDynamic:
		return ExecWavefrontDynamic
	default:
		return ExecDoacross
	}
}

// observeTuning completes the feedback loop after a successful run: the
// armed decision's plan state absorbs the measured executor-phase time, and
// the report's tuned coefficients and predicted times are re-stamped from
// the post-run state — the pre-run stamps described what the decision knew,
// these describe what the run taught, so reports and doastat agree on the
// current model. One nil test when no decision was armed (tuning off, fixed
// executor, or a single-level loop). Caller holds runMu.
func (rt *Runtime) observeTuning(rep *Report) {
	ob := rt.tuneObs
	if ob.ps == nil {
		return
	}
	rt.tuneObs = pendingObservation{}
	ob.ps.Observe(ob.exec, ob.stats.tuneStats(), rt.opts.Workers, ob.nrhs, float64(rep.ExecTime.Nanoseconds()), rt.tuner.opts)
	rt.tuner.observations++
	if ob.explored {
		rt.tuner.explorations++
	}
	tuned := AutoCosts(ob.ps.Coeffs)
	rep.TunedCosts = tuned
	rep.PredictedDoacrossNs, rep.PredictedWavefrontNs, rep.PredictedDynamicNs =
		tuned.PredictN(ob.stats, rt.opts.Workers, ob.nrhs)
	if ts, ok := rt.opts.Metrics.(TuningSink); ok {
		ts.RecordTuning(ob.explored)
	}
}

// TuningArm is one executor's slice of a plan's tuner state: how many
// completed runs it was observed over and the exponential moving average of
// their executor-phase times (meaningful only when Observations > 0).
type TuningArm struct {
	Observations uint64
	EMANs        float64
}

// TuningPlan is the tuner state of one plan in a TuningSnapshot.
type TuningPlan struct {
	// Fingerprint is the plan's structural access-pattern hash — the
	// schedule cache's hash-tier key, retained across in-place repairs so a
	// repaired plan keeps (and keeps correcting) its calibration.
	Fingerprint uint64
	// Runs counts the plan's observed runs; Explorations the decisions that
	// deliberately ran a non-best executor.
	Runs         uint64
	Explorations uint64
	// Costs are the plan's tuned coefficients.
	Costs AutoCosts
	// Doacross, Wavefront and WavefrontDynamic are the three bandit arms.
	Doacross         TuningArm
	Wavefront        TuningArm
	WavefrontDynamic TuningArm
}

// TuningSnapshot is a point-in-time copy of a runtime's online-tuning state:
// aggregate observation counts and the per-plan calibrations, sorted by
// fingerprint. The zero value is what runtimes without WithOnlineTuning (and
// frozen tuners that never observed) report.
type TuningSnapshot struct {
	Observations uint64
	Explorations uint64
	Plans        []TuningPlan
}

// TuningSnapshot returns a copy of the runtime's online-tuning state. It
// serializes with the runtime's runs like every stateful entry point; the
// snapshot is owned by the caller.
func (rt *Runtime) TuningSnapshot() TuningSnapshot {
	rt.runMu.Lock()
	defer rt.runMu.Unlock()
	tn := rt.tuner
	if tn == nil {
		return TuningSnapshot{}
	}
	s := TuningSnapshot{
		Observations: tn.observations,
		Explorations: tn.explorations,
	}
	if len(tn.plans) > 0 {
		s.Plans = make([]TuningPlan, 0, len(tn.plans))
		for fp, ps := range tn.plans {
			s.Plans = append(s.Plans, TuningPlan{
				Fingerprint:      fp,
				Runs:             ps.Runs,
				Explorations:     ps.Explorations,
				Costs:            AutoCosts(ps.Coeffs),
				Doacross:         TuningArm{ps.Obs[tune.Doacross], ps.ObsNs[tune.Doacross]},
				Wavefront:        TuningArm{ps.Obs[tune.Wavefront], ps.ObsNs[tune.Wavefront]},
				WavefrontDynamic: TuningArm{ps.Obs[tune.WavefrontDynamic], ps.ObsNs[tune.WavefrontDynamic]},
			})
		}
		sort.Slice(s.Plans, func(i, j int) bool { return s.Plans[i].Fingerprint < s.Plans[j].Fingerprint })
	}
	return s
}
