// Package core implements the paper's primary contribution: the preprocessed
// doacross loop (Saltz & Mirchandaney, ICASE Interim Report 11, 1990).
//
// A Loop describes a loop whose iterations read and write elements of a
// shared float64 array through subscripts that are only known at run time.
// The runtime executes it in three phases, exactly as in the paper:
//
//  1. Inspect (preprocessing, fully parallel): record in the iter table which
//     iteration writes each array element (iter[a(i)] = i, everything else
//     MAXINT).
//  2. Execute: run the iterations concurrently. Every right-hand-side read
//     consults the iter table; reads of elements produced by an earlier
//     iteration busy-wait on the element's ready flag and then use the newly
//     computed value (ynew), reads of elements produced by a later iteration
//     or by no iteration use the old value (y), so anti-dependencies are
//     satisfied by renaming.
//  3. Postprocess (fully parallel): copy the newly computed elements back
//     into y and reset the iter/ready entries that were used, so the scratch
//     arrays can be reused by the next doacross loop.
//
// The package also provides the paper's Section 2.3 variants (the
// strip-mined/blocked doacross and the linear-subscript doacross that needs
// no inspector), plus baseline executors (sequential, doall, oracle doacross)
// used by the experiments.
package core

import (
	"fmt"

	"doacross/internal/flags"
)

// Loop describes a runtime-dependent loop over a shared data array.
//
// The description separates what the compiler's symbolic transformation would
// know statically (N, the shape of the body) from what only exists at run
// time (the index arrays consulted by Writes and the subscripts the body
// computes).
type Loop struct {
	// N is the number of iterations (the original loop runs i = 0..N-1).
	N int
	// Data is the length of the shared array y the loop reads and writes.
	Data int
	// Writes returns the data elements written by iteration i (the paper's
	// a(i); usually a single element). The preprocessed doacross assumes no
	// output dependencies: no element may be written by two different
	// iterations.
	Writes func(i int) []int
	// Reads returns the data elements iteration i may read. It is consulted
	// only by analysis layers (dependency graph construction, the machine
	// simulator, the doconsider reordering) — the executor itself discovers
	// reads dynamically through Values.Load, exactly as the paper's
	// transformed loop does. Reads may be nil when no analysis is needed.
	Reads func(i int) []int
	// Body executes iteration i. All accesses to the shared array must go
	// through v: v.Load(e) performs the execution-time dependency check and
	// returns the correct (old or new) value; v.Store(e, x) writes the new
	// value. The runtime marks the elements in Writes(i) as ready after Body
	// returns.
	Body func(i int, v *Values)
}

// Validate checks the structural requirements of the preprocessed doacross:
// sane sizes and no output dependencies between iterations.
func (l *Loop) Validate() error {
	if l.N < 0 {
		return fmt.Errorf("core: negative iteration count %d", l.N)
	}
	if l.Data < 0 {
		return fmt.Errorf("core: negative data length %d", l.Data)
	}
	if l.Writes == nil || l.Body == nil {
		return fmt.Errorf("core: Loop requires Writes and Body")
	}
	writer := make(map[int]int)
	for i := 0; i < l.N; i++ {
		for _, e := range l.Writes(i) {
			if e < 0 || e >= l.Data {
				return fmt.Errorf("core: iteration %d writes element %d outside data length %d", i, e, l.Data)
			}
			if prev, ok := writer[e]; ok && prev != i {
				return fmt.Errorf("core: output dependency: element %d written by iterations %d and %d", e, prev, i)
			}
			writer[e] = i
		}
	}
	return nil
}

// Values gives a loop body access to the shared array with the paper's
// execution-time dependency checks. A Values is specific to one iteration of
// one run and must not be retained after the body returns.
type Values struct {
	iter     writerTable
	ready    readyWaiter
	old      []float64
	new      []float64
	i        int
	strategy flags.WaitStrategy
	// counters for tracing
	waits      int
	truedeps   int
	selfdeps   int
	antiOrNone int
}

// writerTable abstracts IterTable and EpochIterTable.
type writerTable interface {
	Classify(e, i int) (flags.Dependence, int64)
	Record(e, i int)
	Len() int
}

// readyWaiter abstracts ReadyFlags and EpochFlags.
type readyWaiter interface {
	Set(e int)
	IsDone(e int) bool
	WaitFor(e int, strategy flags.WaitStrategy) int
}

// Iteration returns the original index of the iteration the body is
// executing. Bodies that need the index receive it as an argument as well;
// this accessor exists for helper code shared between bodies.
func (v *Values) Iteration() int { return v.i }

// Load returns the value of element e as the original sequential loop would
// have observed it at this iteration: if e is written by an earlier
// iteration, Load waits for that iteration and returns the newly computed
// value; if e is written by this iteration, it returns the newly computed
// value without waiting; otherwise it returns the old value.
//
// Load implements statements S3–S8 of the paper's Figure 5.
func (v *Values) Load(e int) float64 {
	dep, _ := v.iter.Classify(e, v.i)
	switch dep {
	case flags.TrueDep:
		v.truedeps++
		v.waits += v.ready.WaitFor(e, v.strategy)
		return v.new[e]
	case flags.SelfDep:
		v.selfdeps++
		return v.new[e]
	default:
		v.antiOrNone++
		return v.old[e]
	}
}

// LoadOld returns the value element e had before the loop started, without
// any dependency check. Bodies use it for elements that are known never to be
// written by the loop.
func (v *Values) LoadOld(e int) float64 { return v.old[e] }

// LoadNew returns the in-progress new value of element e without any
// dependency check or wait. It is intended for a body reading back an element
// it has itself written during this iteration (the paper's ynew(a(i))
// accumulation in Figure 5).
func (v *Values) LoadNew(e int) float64 { return v.new[e] }

// Store writes the new value of element e. The element only becomes visible
// to other iterations once the runtime marks it ready after the body returns.
func (v *Values) Store(e int, x float64) { v.new[e] = x }

// Waits reports how many polling steps this iteration spent waiting on
// unsatisfied true dependencies.
func (v *Values) Waits() int { return v.waits }

// RunSequential executes the loop exactly as the original (untransformed)
// sequential loop would, applying all writes in iteration order directly to
// y. It is the reference the doacross results are compared against and the
// T_seq used in parallel-efficiency calculations.
func RunSequential(l *Loop, y []float64) {
	v := &Values{}
	for i := 0; i < l.N; i++ {
		v.reset(seqTable{}, seqReady{}, y, y, i, flags.WaitSpin)
		l.Body(i, v)
	}
}

// seqTable classifies every read as a self dependence so Load returns the
// current contents of y (which already reflects all earlier writes, because
// old and new alias the same array in RunSequential).
type seqTable struct{}

func (seqTable) Classify(e, i int) (flags.Dependence, int64) { return flags.SelfDep, int64(i) }
func (seqTable) Record(e, i int)                             {}
func (seqTable) Len() int                                    { return 0 }

type seqReady struct{}

func (seqReady) Set(e int)                               {}
func (seqReady) IsDone(e int) bool                       { return true }
func (seqReady) WaitFor(e int, s flags.WaitStrategy) int { return 0 }

func (v *Values) reset(t writerTable, r readyWaiter, old, new []float64, i int, s flags.WaitStrategy) {
	v.iter = t
	v.ready = r
	v.old = old
	v.new = new
	v.i = i
	v.strategy = s
	v.waits = 0
	v.truedeps = 0
	v.selfdeps = 0
	v.antiOrNone = 0
}
