// Package core implements the paper's primary contribution: the preprocessed
// doacross loop (Saltz & Mirchandaney, ICASE Interim Report 11, 1990).
//
// A Loop describes a loop whose iterations read and write elements of a
// shared float64 array through subscripts that are only known at run time.
// The runtime executes it in three phases, exactly as in the paper:
//
//  1. Inspect (preprocessing, fully parallel): record in the iter table which
//     iteration writes each array element (iter[a(i)] = i, everything else
//     MAXINT).
//  2. Execute: run the iterations concurrently. Every right-hand-side read
//     consults the iter table; reads of elements produced by an earlier
//     iteration busy-wait on the element's ready flag and then use the newly
//     computed value (ynew), reads of elements produced by a later iteration
//     or by no iteration use the old value (y), so anti-dependencies are
//     satisfied by renaming.
//  3. Postprocess (fully parallel): copy the newly computed elements back
//     into y and reset the iter/ready entries that were used, so the scratch
//     arrays can be reused by the next doacross loop.
//
// The package also provides the paper's Section 2.3 variants (the
// strip-mined/blocked doacross and the linear-subscript doacross that needs
// no inspector), plus baseline executors (sequential, doall, oracle doacross)
// used by the experiments.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"doacross/internal/flags"
)

// Loop describes a runtime-dependent loop over a shared data array.
//
// The description separates what the compiler's symbolic transformation would
// know statically (N, the shape of the body) from what only exists at run
// time (the index arrays consulted by Writes and the subscripts the body
// computes).
type Loop struct {
	// N is the number of iterations (the original loop runs i = 0..N-1).
	N int
	// Data is the length of the shared array y the loop reads and writes.
	Data int
	// Writes returns the data elements written by iteration i (the paper's
	// a(i); usually a single element). The preprocessed doacross assumes no
	// output dependencies: no element may be written by two different
	// iterations.
	Writes func(i int) []int
	// Reads returns the data elements iteration i may read. The default
	// (doacross) executor discovers reads dynamically through Values.Load,
	// exactly as the paper's transformed loop does, and never consults
	// Reads; analysis layers (dependency graph construction, the machine
	// simulator, the doconsider reordering) and the wavefront/auto executors
	// do. For those consumers Reads is a correctness contract, not a hint:
	// it must cover every element the body may Load (over-declaring is safe,
	// it only adds conservative edges). An under-declared read makes a
	// doconsider order or a wavefront level placement unsound — the
	// pre-scheduled executor would then run a reader concurrently with (or
	// before) its writer and silently produce wrong values. Reads may be nil
	// when no analysis and no pre-scheduled execution is needed.
	Reads func(i int) []int
	// Body executes iteration i. All accesses to the shared array must go
	// through v: v.Load(e) performs the execution-time dependency check and
	// returns the correct (old or new) value; v.Store(e, x) writes the new
	// value. The runtime marks the elements in Writes(i) as ready after Body
	// returns.
	Body func(i int, v *Values)
	// BodyErr is the error-returning variant of Body. A non-nil return aborts
	// the run: no further iterations start, waiting iterations are released,
	// and Runtime.Run returns the error (the first one reported). At most one
	// of Body and BodyErr may be set, and a loop must define at least one body
	// variant (Body, BodyErr or BodyMulti). A body that cannot change its
	// signature may call v.Fail(err) instead, which has the same effect.
	BodyErr func(i int, v *Values) error
	// BodyMulti executes iteration i against a block of right-hand-side
	// columns at once: v gives row-at-a-time access to the block (one
	// dependency check per element covers all columns), and Runtime.RunMulti
	// is the entry point that arms it. A loop may define BodyMulti alongside
	// Body/BodyErr — scalar runs use the scalar body, RunMulti uses this one
	// — or define only BodyMulti for loops that are exclusively run blocked.
	// Failures are reported through v.Fail.
	BodyMulti func(i int, v *MultiValues)
}

// run dispatches to whichever body variant the loop defines and returns the
// iteration's failure (BodyErr result or Values.Fail record), nil on success.
func (l *Loop) run(i int, v *Values) error {
	if l.BodyErr != nil {
		if err := l.BodyErr(i, v); err != nil {
			return err
		}
		return v.failErr
	}
	l.Body(i, v)
	return v.failErr
}

// validateScratch pools the writer-index scratch slices used by Validate, so
// repeated loop construction (an iterative driver building a solver per
// matrix) does not allocate a fresh O(Data) table every time.
var validateScratch sync.Pool

// Validate checks the structural requirements of the preprocessed doacross:
// sane sizes and no output dependencies between iterations.
func (l *Loop) Validate() error {
	if l.N < 0 {
		return fmt.Errorf("core: negative iteration count %d", l.N)
	}
	if l.Data < 0 {
		return fmt.Errorf("core: negative data length %d", l.Data)
	}
	if l.Writes == nil {
		return fmt.Errorf("core: Loop requires Writes")
	}
	if l.Body != nil && l.BodyErr != nil {
		return fmt.Errorf("core: Loop defines both Body and BodyErr; set at most one")
	}
	if l.Body == nil && l.BodyErr == nil && l.BodyMulti == nil {
		return fmt.Errorf("core: Loop requires a body (Body, BodyErr or BodyMulti)")
	}
	// The duplicate-writer check uses a scratch slice indexed by element
	// (value = writing iteration + 1, zero = unwritten) instead of a
	// map[int]int: one pooled allocation and O(1) probes instead of N map
	// insertions. The slice is materialized lazily — as long as every
	// iteration writes exactly its own index (the identity subscript of the
	// triangular solves, by far the most common loop), identity writes cannot
	// collide with each other and only the bounds check is needed, so
	// repeated solver construction does no table work at all.
	var scratch *[]int
	var writer []int
	var verr error
scan:
	for i := 0; i < l.N; i++ {
		ws := l.Writes(i)
		if writer == nil {
			if len(ws) == 1 && ws[0] == i {
				// Identity fast path: each prefix iteration writes exactly
				// its own index, so prefix writes cannot collide with each
				// other and only the bounds check is needed.
				if i >= l.Data {
					verr = fmt.Errorf("core: iteration %d writes element %d outside data length %d", i, i, l.Data)
					break scan
				}
				continue
			}
			scratch, writer = l.writerScratch(i)
		}
		for _, e := range ws {
			if e < 0 || e >= l.Data {
				verr = fmt.Errorf("core: iteration %d writes element %d outside data length %d", i, e, l.Data)
				break scan
			}
			if prev := writer[e]; prev != 0 && prev != i+1 {
				verr = fmt.Errorf("core: output dependency: element %d written by iterations %d and %d", e, prev-1, i)
				break scan
			}
			writer[e] = i + 1
		}
	}
	if scratch != nil {
		*scratch = writer[:cap(writer)]
		validateScratch.Put(scratch)
	}
	return verr
}

// writerScratch returns a zeroed writer-index slice of length l.Data from the
// pool, pre-seeded with the identity writes of iterations 0..upto-1 (the
// prefix the fast path already accepted, each of which wrote exactly element
// j at iteration j, before a non-identity iteration forced the table to
// materialize). The returned pointer is the pool box to Put the slice back
// through.
func (l *Loop) writerScratch(upto int) (*[]int, []int) {
	p, _ := validateScratch.Get().(*[]int)
	var writer []int
	if p != nil && cap(*p) >= l.Data {
		writer = (*p)[:l.Data]
		clear(writer)
	} else {
		if p == nil {
			p = new([]int)
		}
		writer = make([]int, l.Data)
	}
	for j := 0; j < upto; j++ {
		writer[j] = j + 1
	}
	return p, writer
}

// Values gives a loop body access to the shared array with the paper's
// execution-time dependency checks. A Values is specific to one iteration of
// one run and must not be retained after the body returns.
type Values struct {
	iter     writerTable
	ready    readyWaiter
	old      []float64
	new      []float64
	i        int
	strategy flags.WaitStrategy
	// cancel, when non-nil, is the run's abort flag: waits on unsatisfied
	// true dependencies give up once it is set, so an aborted run can never
	// deadlock on an iteration that will not execute.
	cancel *atomic.Bool
	// failErr records a failure reported through Fail (or a cancelled wait);
	// the runtime aborts the run when the body returns with it set.
	failErr error
	// rec, when non-nil, is the declared-access sanitizer's shadow recorder
	// (Options.AccessCheck): every accessor reports the touched element to it
	// for diffing against the iteration's declared pattern. It is nil on
	// unchecked runs, so the accessors pay one predictable nil test.
	rec *accessRecorder
	// counters for tracing
	waits      int
	truedeps   int
	selfdeps   int
	antiOrNone int
}

// writerTable abstracts IterTable and EpochIterTable.
type writerTable interface {
	Classify(e, i int) (flags.Dependence, int64)
	Record(e, i int)
	Len() int
}

// readyWaiter abstracts ReadyFlags and EpochFlags. WaitFor blocks until
// element e is produced or cancelled (which may be nil) becomes true; it
// returns the number of polls performed and whether the element was actually
// produced. WakeAll releases waiters parked by the notify strategy so they
// can observe a cancellation.
type readyWaiter interface {
	Set(e int)
	IsDone(e int) bool
	WaitFor(e int, strategy flags.WaitStrategy, cancelled *atomic.Bool) (int, bool)
	WakeAll()
}

// Iteration returns the original index of the iteration the body is
// executing. Bodies that need the index receive it as an argument as well;
// this accessor exists for helper code shared between bodies.
func (v *Values) Iteration() int { return v.i }

// Load returns the value of element e as the original sequential loop would
// have observed it at this iteration: if e is written by an earlier
// iteration, Load waits for that iteration and returns the newly computed
// value; if e is written by this iteration, it returns the newly computed
// value without waiting; otherwise it returns the old value.
//
// Load implements statements S3–S8 of the paper's Figure 5.
//
// When the run has been aborted (context cancelled, another iteration failed
// or panicked), a Load that would have to wait returns the old value
// immediately instead of waiting for an iteration that will never execute;
// the run's result is discarded in that case, so the stale value is never
// observed by the caller.
func (v *Values) Load(e int) float64 {
	if v.rec != nil {
		v.rec.noteLoad(e)
	}
	dep, _ := v.iter.Classify(e, v.i)
	switch dep {
	case flags.TrueDep:
		v.truedeps++
		polls, ok := v.ready.WaitFor(e, v.strategy, v.cancel)
		v.waits += polls
		if !ok {
			return v.old[e]
		}
		return v.new[e]
	case flags.SelfDep:
		v.selfdeps++
		return v.new[e]
	default:
		v.antiOrNone++
		return v.old[e]
	}
}

// LoadOld returns the value element e had before the loop started, without
// any dependency check. Bodies use it for elements that are known never to be
// written by the loop. Because the old array is immutable for the duration of
// the executor phase, LoadOld can never race and the declared-access
// sanitizer does not require it to be declared.
func (v *Values) LoadOld(e int) float64 { return v.old[e] }

// LoadNew returns the in-progress new value of element e without any
// dependency check or wait. It is intended for a body reading back an element
// it has itself written during this iteration (the paper's ynew(a(i))
// accumulation in Figure 5); the declared-access sanitizer therefore requires
// e to be one of the iteration's declared write targets.
func (v *Values) LoadNew(e int) float64 {
	if v.rec != nil {
		v.rec.noteLoadNew(e)
	}
	return v.new[e]
}

// Store writes the new value of element e. The element only becomes visible
// to other iterations once the runtime marks it ready after the body returns.
func (v *Values) Store(e int, x float64) {
	if v.rec != nil {
		v.rec.noteStore(e)
	}
	v.new[e] = x
}

// Waits reports how many polling steps this iteration spent waiting on
// unsatisfied true dependencies.
func (v *Values) Waits() int { return v.waits }

// Fail marks this iteration — and therefore the whole run — as failed. The
// runtime stops starting new iterations, releases waiting ones, restores the
// scratch state and returns err (the first failure reported wins). It is the
// escape hatch for bodies whose signature cannot change; new code should use
// Loop.BodyErr. A nil err is ignored.
func (v *Values) Fail(err error) {
	if err != nil && v.failErr == nil {
		v.failErr = err
	}
}

// RunSequential executes the loop exactly as the original (untransformed)
// sequential loop would, applying all writes in iteration order directly to
// y. It is the reference the doacross results are compared against and the
// T_seq used in parallel-efficiency calculations. A BodyErr failure (or
// Values.Fail) stops the loop at the failing iteration and is returned.
func RunSequential(l *Loop, y []float64) error {
	if len(y) < l.Data {
		return fmt.Errorf("core: data slice length %d shorter than loop data length %d", len(y), l.Data)
	}
	if l.Body == nil && l.BodyErr == nil {
		return fmt.Errorf("core: loop has neither Body nor BodyErr")
	}
	v := &Values{}
	for i := 0; i < l.N; i++ {
		v.reset(seqTable{}, seqReady{}, y, y, i, flags.WaitSpin)
		if err := l.run(i, v); err != nil {
			return err
		}
	}
	return nil
}

// seqTable classifies every read as a self dependence so Load returns the
// current contents of y (which already reflects all earlier writes, because
// old and new alias the same array in RunSequential).
type seqTable struct{}

func (seqTable) Classify(e, i int) (flags.Dependence, int64) { return flags.SelfDep, int64(i) }
func (seqTable) Record(e, i int)                             {}
func (seqTable) Len() int                                    { return 0 }

type seqReady struct{}

func (seqReady) Set(e int)         {}
func (seqReady) IsDone(e int) bool { return true }
func (seqReady) WaitFor(e int, s flags.WaitStrategy, cancelled *atomic.Bool) (int, bool) {
	return 0, true
}
func (seqReady) WakeAll() {}

func (v *Values) reset(t writerTable, r readyWaiter, old, new []float64, i int, s flags.WaitStrategy) {
	v.iter = t
	v.ready = r
	v.old = old
	v.new = new
	v.i = i
	v.strategy = s
	v.cancel = nil
	v.failErr = nil
	v.rec = nil
	v.waits = 0
	v.truedeps = 0
	v.selfdeps = 0
	v.antiOrNone = 0
}
