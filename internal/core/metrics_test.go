package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// chainLoop builds the canonical dependency chain: iteration i writes element
// i and reads element i-1.
func chainLoop(n int) *Loop {
	return &Loop{
		N:      n,
		Data:   n,
		Writes: func(i int) []int { return []int{i} },
		Reads: func(i int) []int {
			if i == 0 {
				return nil
			}
			return []int{i - 1}
		},
		Body: func(i int, v *Values) {
			x := 1.0
			if i > 0 {
				x = v.Load(i-1) + 1
			}
			v.Store(i, x)
		},
	}
}

// TestMetricsReconciliation drives every executor kind from several
// goroutines sharing one collector and reconciles the collector's counters
// against the reports the runs returned: total runs, per-executor runs,
// error-free totals, and cache hit/miss counts. Run it under -race to also
// prove the collector and the recording sites are data-race free.
func TestMetricsReconciliation(t *testing.T) {
	for _, kind := range []ExecutorKind{ExecDoacross, ExecWavefront, ExecWavefrontDynamic, ExecAuto} {
		t.Run(fmt.Sprint(kind), func(t *testing.T) {
			const goroutines, runsEach = 4, 8
			c := NewMetricsCollector()
			rt := NewRuntime(64, Options{
				Workers:  3,
				Executor: kind,
				Metrics:  c,
				// Fixed coefficients keep Auto off the self-calibration probe.
				AutoCosts: AutoCosts{BarrierNs: 1000, FlagCheckNs: 5, ClaimNs: 25},
			})
			defer rt.Close()
			l := chainLoop(64)

			var mu sync.Mutex
			byExecutor := map[string]uint64{}
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					y := make([]float64, 64)
					for r := 0; r < runsEach; r++ {
						rep, err := rt.Run(l, y)
						if err != nil {
							t.Errorf("run failed: %v", err)
							return
						}
						mu.Lock()
						byExecutor[rep.Executor]++
						mu.Unlock()
					}
				}()
			}
			wg.Wait()

			snap := c.Snapshot()
			const total = goroutines * runsEach
			if snap.Runs != total {
				t.Errorf("collector saw %d runs, reports say %d", snap.Runs, total)
			}
			if snap.Errors != 0 || snap.AccessAborts != 0 {
				t.Errorf("unexpected errors/aborts: %d/%d", snap.Errors, snap.AccessAborts)
			}
			var histRuns uint64
			for name, want := range byExecutor {
				em, ok := snap.Executors[name]
				if !ok {
					t.Errorf("executor %q missing from snapshot", name)
					continue
				}
				if em.Runs != want {
					t.Errorf("executor %q: collector saw %d runs, reports say %d", name, em.Runs, want)
				}
				if em.TotalNs <= 0 || em.MaxNs <= 0 {
					t.Errorf("executor %q: non-positive timings %d/%d", name, em.TotalNs, em.MaxNs)
				}
				var bucketed uint64
				for _, b := range em.BucketNs {
					bucketed += b
				}
				if bucketed != em.Runs {
					t.Errorf("executor %q: histogram holds %d of %d runs", name, bucketed, em.Runs)
				}
				histRuns += em.Runs
			}
			if histRuns != total {
				t.Errorf("per-executor runs sum to %d, want %d", histRuns, total)
			}
			// The wavefront-plan executors resolve through the schedule cache:
			// exactly one cold miss, every other run a hit. The plain doacross
			// executor never consults it.
			if kind != ExecDoacross {
				if snap.PlanMisses != 1 {
					t.Errorf("plan misses = %d, want 1", snap.PlanMisses)
				}
				if snap.PlanHits != total-1 {
					t.Errorf("plan hits = %d, want %d", snap.PlanHits, total-1)
				}
			} else if snap.PlanMisses != 0 || snap.PlanHits != 0 {
				t.Errorf("doacross touched the plan cache: %d misses, %d hits", snap.PlanMisses, snap.PlanHits)
			}
		})
	}
}

// TestMetricsPlanLifecycle walks one plan through its cache lifecycle —
// miss, hit, invalidation, re-miss, in-place repair, fallback — and checks
// each transition lands in the collector exactly once.
func TestMetricsPlanLifecycle(t *testing.T) {
	c := NewMetricsCollector()
	rt := NewRuntime(32, Options{Workers: 2, Executor: ExecWavefront, Metrics: c})
	defer rt.Close()
	l := chainLoop(32)
	y := make([]float64, 32)

	mustRun := func() {
		t.Helper()
		if _, err := rt.Run(l, y); err != nil {
			t.Fatal(err)
		}
	}
	mustRun() // miss
	mustRun() // hit
	rt.InvalidatePlans()
	mustRun() // miss again

	rep, err := rt.RepairPlans(l, EditSet{Iters: []int{5}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Repaired {
		t.Fatalf("expected an in-place repair, got fallback: %+v", rep)
	}

	rt.InvalidatePlans()
	// With no cached plan, RepairPlans must fall back (and the fallback
	// includes an invalidation, keeping the cache consistent).
	rep, err = rt.RepairPlans(l, EditSet{Iters: []int{5}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired {
		t.Fatalf("expected a fallback with a cold cache, got repair: %+v", rep)
	}

	snap := c.Snapshot()
	if snap.PlanMisses != 2 || snap.PlanHits != 1 {
		t.Errorf("misses/hits = %d/%d, want 2/1", snap.PlanMisses, snap.PlanHits)
	}
	if snap.PlanRepairs != 1 {
		t.Errorf("repairs = %d, want 1", snap.PlanRepairs)
	}
	if snap.PlanRepairFallbacks != 1 {
		t.Errorf("repair fallbacks = %d, want 1", snap.PlanRepairFallbacks)
	}
	// Two explicit InvalidatePlans calls plus the fallback's internal one.
	if snap.PlanInvalidations != 3 {
		t.Errorf("invalidations = %d, want 3", snap.PlanInvalidations)
	}
}

// TestMetricsErrorsAndAborts checks the failure-side contract: a body error
// counts as an errored run of its executor; an access-check abort addition-
// ally bumps AccessAborts; and an argument-validation failure (rejected
// before any executor resolves) is not counted at all.
func TestMetricsErrorsAndAborts(t *testing.T) {
	c := NewMetricsCollector()
	rt := NewRuntime(16, Options{Workers: 2, Metrics: c, AccessCheck: true})
	defer rt.Close()
	y := make([]float64, 16)

	failing := chainLoop(16)
	failing.Body = nil
	failing.BodyErr = func(i int, v *Values) error {
		if i == 7 {
			return errors.New("boom")
		}
		v.Store(i, 1)
		return nil
	}
	if _, err := rt.Run(failing, y); err == nil {
		t.Fatal("expected the body error to surface")
	}

	undeclared := chainLoop(16)
	undeclared.Body = func(i int, v *Values) {
		if i == 3 {
			v.Load(9) // not in Reads(3)
		}
		v.Store(i, 1)
	}
	var ae *AccessError
	if _, err := rt.Run(undeclared, y); !errors.As(err, &ae) {
		t.Fatalf("expected an *AccessError, got %v", err)
	}

	// Rejected before an executor resolves: y too short.
	if _, err := rt.Run(chainLoop(16), make([]float64, 4)); err == nil {
		t.Fatal("expected the short-y validation error")
	}

	snap := c.Snapshot()
	if snap.Runs != 2 {
		t.Errorf("runs = %d, want 2 (validation failures are not runs)", snap.Runs)
	}
	if snap.Errors != 2 {
		t.Errorf("errors = %d, want 2", snap.Errors)
	}
	if snap.AccessAborts != 1 {
		t.Errorf("access aborts = %d, want 1", snap.AccessAborts)
	}
}

// TestMetricsMulti checks RunMulti records one run per call, not one per
// column block, under every multi-capable executor.
func TestMetricsMulti(t *testing.T) {
	const n, cols = 24, MaxRHSBlock + 3 // forces two blocks
	c := NewMetricsCollector()
	rt := NewRuntime(n, Options{Workers: 2, Executor: ExecWavefront, Metrics: c})
	defer rt.Close()

	l := chainLoop(n)
	l.BodyMulti = func(i int, v *MultiValues) {
		row := v.Row(i)
		if i == 0 {
			for k := range row {
				row[k] = 1
			}
			return
		}
		prev := v.LoadRow(i - 1)
		for k := range row {
			row[k] = prev[k] + 1
		}
	}
	ys := make([][]float64, cols)
	for k := range ys {
		ys[k] = make([]float64, n)
	}
	if _, err := rt.RunMulti(context.Background(), l, ys); err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	if snap.Runs != 1 {
		t.Errorf("one RunMulti call recorded %d runs, want 1", snap.Runs)
	}
}

// BenchmarkMetricsOff and BenchmarkMetricsOn bound the hook's cost: with no
// sink the per-run overhead is a nil test, so the two must be within noise of
// each other. Compare with benchstat, or eyeball the ns/op in CI logs.
func BenchmarkMetricsOff(b *testing.B) { benchMetrics(b, nil) }
func BenchmarkMetricsOn(b *testing.B)  { benchMetrics(b, NewMetricsCollector()) }

func benchMetrics(b *testing.B, sink MetricsSink) {
	rt := NewRuntime(256, Options{Workers: 2, Executor: ExecWavefront, Metrics: sink})
	defer rt.Close()
	l := chainLoop(256)
	y := make([]float64, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Run(l, y); err != nil {
			b.Fatal(err)
		}
	}
}
