package core

import (
	"fmt"
	"sync"
	"testing"

	"doacross/internal/flags"
)

// gatherLoop builds the mutable-index loop the plan invalidation exists for:
// y[i] = y[idx[i]] + 1 over a data array whose back half [n, 2n) is the
// input region, with idx owned by the caller and mutated in place between
// runs. Reads reports idx, so the wavefront inspector derives its level
// schedule from whatever the array holds at inspection time — exactly the
// pattern that goes stale when the caller mutates idx afterwards.
func gatherLoop(n int, idx []int) *Loop {
	return &Loop{
		N:      n,
		Data:   2 * n,
		Writes: func(i int) []int { return []int{i} },
		Reads:  func(i int) []int { return idx[i : i+1] },
		Body: func(i int, v *Values) {
			v.Store(i, v.Load(idx[i])+1)
		},
	}
}

// TestInvalidatePlansEvictsMutatedPattern is the satellite acceptance test:
// a driver that mutates its index array in place (same *Loop value, so both
// cache tiers would otherwise hit) calls InvalidatePlans and must get a
// fresh, correct schedule for the new dependence structure; without the
// call the stale plan — with the old pattern's level decomposition — is
// silently replayed.
func TestInvalidatePlansEvictsMutatedPattern(t *testing.T) {
	n := 256
	idx := make([]int, n)
	y := make([]float64, 2*n)
	// shift s makes iteration i depend on i-s (chains of stride s), giving
	// ceil(n/s) wavefront levels — the level count is the fingerprint of
	// which pattern a plan was built for.
	fill := func(shift int) {
		for i := range idx {
			if i < shift {
				idx[i] = n + i
			} else {
				idx[i] = i - shift
			}
		}
	}
	runtime := NewRuntime(2*n, Options{Workers: 2, Executor: ExecWavefront})
	defer runtime.Close()
	l := gatherLoop(n, idx)

	run := func(label string, shift int) Report {
		t.Helper()
		for i := 0; i < n; i++ {
			y[n+i] = float64(i)
		}
		rep, err := runtime.Run(l, y)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		return rep
	}
	check := func(label string, shift int) {
		t.Helper()
		for i := 0; i < n; i++ {
			want := float64(i%shift) + float64(i/shift) + 1
			if y[i] != want {
				t.Fatalf("%s: y[%d] = %v, want %v", label, i, y[i], want)
			}
		}
	}

	// Cold inspection of the stride-4 pattern: ceil(256/4) = 64 levels.
	fill(4)
	rep := run("cold run", 4)
	if rep.InspectCached {
		t.Fatal("first run claimed a cache hit")
	}
	if rep.Levels != 64 {
		t.Fatalf("stride-4 pattern decomposed into %d levels, want 64", rep.Levels)
	}
	check("cold run", 4)

	// Mutating the pattern without invalidation silently replays the stale
	// plan — the pointer-identity tier cannot see the mutation, and the
	// replayed schedule still carries the old pattern's 64 levels. (The
	// stale finer schedule happens to refine the coarser new pattern, so
	// this direction stays well-defined; the reverse direction is the
	// silent-corruption hazard InvalidatePlans exists for.)
	fill(8)
	rep = run("stale run", 8)
	if !rep.InspectCached {
		t.Fatal("mutated pattern without invalidation unexpectedly missed the cache")
	}
	if rep.Levels != 64 {
		t.Fatalf("stale run executed %d levels, expected the stale plan's 64", rep.Levels)
	}

	// With invalidation the next run re-inspects cold: the new pattern's
	// ceil(256/8) = 32 levels, and a correct result.
	runtime.InvalidatePlans()
	rep = run("post-invalidation run", 8)
	if rep.InspectCached {
		t.Fatal("run after InvalidatePlans still hit the schedule cache")
	}
	if rep.Levels != 32 {
		t.Fatalf("stride-8 pattern decomposed into %d levels, want 32", rep.Levels)
	}
	check("post-invalidation run", 8)

	// The new plan is cached again under the new generation.
	rep = run("warm run", 8)
	if !rep.InspectCached {
		t.Fatal("re-run after invalidation did not re-populate the cache")
	}
	check("warm run", 8)
}

// TestConcurrentAutoRunsShareScheduleCache is the race/stress satellite:
// concurrent Run calls under ExecAuto on one runtime — cold cache, warm
// cache, and mid-flight invalidations — must serialize safely (run with
// -race) and every run must produce the correct result.
func TestConcurrentAutoRunsShareScheduleCache(t *testing.T) {
	n := 128
	data := 2 * n
	rt := NewRuntime(data, Options{
		Workers:      2,
		WaitStrategy: flags.WaitSpinYield,
		Executor:     ExecAuto,
		// Fixed coefficients keep the Auto decision deterministic and skip
		// the probe so the stress loop spends its time in Run.
		AutoCosts: AutoCosts{BarrierNs: 100, FlagCheckNs: 10},
	})
	defer rt.Close()

	// A handful of structurally distinct loop shapes so the goroutines churn
	// the structural-hash tier as well as the pointer memo.
	loops := make([]*Loop, 4)
	for k := range loops {
		shift := k + 1
		loops[k] = &Loop{
			N:      n,
			Data:   data,
			Writes: func(i int) []int { return []int{i} },
			Reads: func(i int) []int {
				if i < shift {
					return []int{n + i}
				}
				return []int{i - shift}
			},
			Body: func(i int, v *Values) {
				if i < shift {
					v.Store(i, v.Load(n+i)+1)
				} else {
					v.Store(i, v.Load(i-shift)+1)
				}
			},
		}
	}

	const goroutines = 8
	const runsEach = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for gid := 0; gid < goroutines; gid++ {
		wg.Add(1)
		go func(gid int) {
			defer wg.Done()
			y := make([]float64, data)
			for r := 0; r < runsEach; r++ {
				l := loops[(gid+r)%len(loops)]
				shift := (gid+r)%len(loops) + 1
				for i := 0; i < n; i++ {
					y[n+i] = float64(i)
				}
				if _, err := rt.Run(l, y); err != nil {
					errs <- fmt.Errorf("goroutine %d run %d: %w", gid, r, err)
					return
				}
				for i := 0; i < n; i++ {
					want := float64(i%shift) + float64(i/shift) + 1
					if y[i] != want {
						errs <- fmt.Errorf("goroutine %d run %d: y[%d] = %v, want %v", gid, r, i, y[i], want)
						return
					}
				}
				if r%10 == 5 && gid == 0 {
					rt.InvalidatePlans()
				}
			}
		}(gid)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
