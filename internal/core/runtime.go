package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"doacross/internal/depgraph"
	"doacross/internal/flags"
	"doacross/internal/sched"
)

// Options configures a doacross Runtime.
type Options struct {
	// Workers is the number of concurrent workers (processors). Zero means 1.
	Workers int
	// Policy selects how iterations are assigned to workers.
	Policy sched.Policy
	// Executor selects the execution strategy: the paper's flag-based
	// busy-wait doacross (the zero value), the pre-scheduled wavefront
	// execution built by the inspector, or automatic selection from the
	// inspected dependency structure. See ExecutorKind.
	Executor ExecutorKind
	// AutoCosts supplies the Auto selection's cost-model coefficients. The
	// zero value means self-calibrate: the runtime micro-times a barrier and
	// a flag check on its live pool the first time an Auto decision needs
	// them. Supplying explicit coefficients makes the selection
	// deterministic (tests, simulators, known deployment hosts).
	AutoCosts AutoCosts
	// Chunk is the chunk size used by the Dynamic policy (0 = default).
	Chunk int
	// WaitStrategy selects how true-dependency waits are performed. The
	// default (zero value) is the paper's busy wait; WaitSpinYield is
	// recommended when Workers exceeds GOMAXPROCS.
	WaitStrategy flags.WaitStrategy
	// UseEpochTables replaces the MAXINT/NOTDONE reset protocol of the
	// paper's postprocessing phase with epoch-versioned tables that reset in
	// O(1). This is a design-choice ablation; results are identical.
	UseEpochTables bool
	// Order, when non-nil, is the execution order produced by a doconsider
	// reordering: position k of the parallel loop executes original
	// iteration Order[k]. It must be a permutation of 0..N-1 that respects
	// all true dependencies (see doconsider.Validate). Nil means natural
	// order.
	Order []int
	// AccessCheck enables the declared-access sanitizer: each iteration's
	// actual Values accesses are diffed against its declared Writes/Reads
	// pattern, and the first mismatch aborts the run with an *AccessError
	// naming the iteration and the offending element. It exists to catch
	// under-declared loops before a pre-scheduled executor silently races on
	// them; leave it off in production runs (checked accessors cost a few
	// membership probes per access, unchecked ones a single nil test).
	AccessCheck bool
	// CollectTrace records a per-iteration execution trace (start/end time,
	// worker, wait polls) retrievable through Runtime.Trace after Run. It
	// adds two clock readings per iteration, so leave it off for
	// performance-sensitive runs.
	CollectTrace bool
	// SpawnPerCall replaces the persistent worker pool with the pre-pool
	// behaviour of spawning fresh goroutines for every phase of every Run.
	// It exists as the measurement baseline for the pooled path (see
	// BenchmarkRunReuse); leave it off in real use.
	SpawnPerCall bool
	// Metrics, when non-nil, receives the runtime's observability events:
	// completed runs with their executor and wall time, plan-cache
	// transitions, and access-check aborts. See MetricsSink for the exact
	// contract. Nil (the default) keeps every instrumentation site down to a
	// single nil test.
	Metrics MetricsSink
	// Tuning, when non-nil, enables the online self-tuning Auto selection:
	// every completed Auto run's measured executor-phase time is fed back
	// into a per-plan calibration (keyed by the plan's structural
	// fingerprint), the cost-model coefficients are blended toward
	// back-solved observations, and decisions become a small epsilon-greedy
	// bandit over the three executors. Only Auto decisions consult it; a
	// valid Options.AutoCosts freezes tuning entirely (the coefficients are
	// declared known). Nil (the default) keeps the tuning hook down to a
	// single nil test per run.
	Tuning *TuningOptions
}

// Report describes one doacross execution: the time spent in each of the
// three phases and aggregate synchronization counters.
type Report struct {
	Workers     int
	Iterations  int
	PreTime     time.Duration
	ExecTime    time.Duration
	PostTime    time.Duration
	TotalTime   time.Duration
	TrueDeps    int64
	SelfDeps    int64
	AntiOrNone  int64
	WaitPolls   int64
	Order       string
	WaitPolicy  string
	SchedPolicy string
	// Executor names the execution strategy that ran ("doacross",
	// "wavefront", "wavefront-dynamic"); with Options.Executor = ExecAuto it
	// records the one the inspection picked.
	Executor string
	// Levels is the number of wavefront levels executed (wavefront
	// executors only; zero for the doacross).
	Levels int
	// InspectCached reports whether the wavefront decomposition and static
	// schedule came from the runtime's schedule cache instead of a fresh
	// inspection — the repeated-solve case the cache exists for.
	InspectCached bool
	// PlanRepaired reports that the plan this run consumed was incrementally
	// patched by RepairPlans since the previous run, rather than rebuilt by a
	// cold inspection or replayed unchanged; RepairNs is the total time those
	// repairs took, in nanoseconds. Both are stamped on the first run after
	// the repair and zero otherwise, so a dynamic-sparsity driver can see
	// which inspection path each edit took.
	PlanRepaired bool
	RepairNs     int64
	// AutoCosts are the cost-model coefficients an ExecAuto selection used
	// (configured or self-calibrated); zero when no cost-model decision was
	// made (fixed executor, or the Auto fallback for loops without Reads).
	AutoCosts AutoCosts
	// PredictedDoacrossNs, PredictedWavefrontNs and PredictedDynamicNs are
	// the cost model's executor-phase estimates behind an ExecAuto decision,
	// in the coefficients' time unit; zero when no cost-model decision was
	// made. PredictedDynamicNs is also zero when the coefficients carry no
	// claim cost (AutoCosts.ClaimNs), in which case the dynamic executor was
	// not considered.
	PredictedDoacrossNs  float64
	PredictedWavefrontNs float64
	PredictedDynamicNs   float64
	// TunedCosts are the online tuner's coefficients for this loop's plan
	// when the runtime runs with Options.Tuning: stamped after the run's
	// observation was absorbed, so they (and the predicted times above,
	// which are re-stamped with them) reflect what this run taught the
	// model, not just what the decision knew going in. Zero when tuning is
	// off or frozen.
	TunedCosts AutoCosts
	// Explored reports that the online tuner deliberately ran a non-best
	// executor this run to keep its measurements honest (the epsilon-greedy
	// bandit's exploration); convergence tests filter these runs out when
	// asserting the steady-state pick.
	Explored bool
	// NRHS is the number of right-hand-side columns a RunMulti call carried
	// through the traversal; zero for scalar runs. Phase times and counters
	// of a multi-column report aggregate all of the call's column blocks.
	NRHS int
}

// String renders the report in a compact human-readable form.
func (r Report) String() string {
	return fmt.Sprintf("P=%d iters=%d executor=%s pre=%v exec=%v post=%v total=%v truedeps=%d waits=%d",
		r.Workers, r.Iterations, r.Executor, r.PreTime, r.ExecTime, r.PostTime, r.TotalTime, r.TrueDeps, r.WaitPolls)
}

// Runtime holds the reusable scratch state of the preprocessed doacross: the
// iter table, the ready flags, the ynew buffer and the worker pool. As in
// Section 2.1 of the paper, one Runtime is shared by successive doacross
// loops over data arrays of the same length, and its postprocessing phase
// restores the scratch state so the next loop can start immediately.
// RunContext, Inspect and InvalidatePlans may be called from multiple
// goroutines: they serialize on an internal mutex (one run executes at a
// time). The phase-level APIs (Execute, Postprocess) remain single-caller.
type Runtime struct {
	opts Options
	pool *sched.Pool

	dataLen int
	iter    *flags.IterTable
	ready   *flags.ReadyFlags
	eIter   *flags.EpochIterTable
	eReady  *flags.EpochFlags
	ynew    []float64

	// Per-worker scratch reused across runs so the hot path of an iterative
	// driver (a Krylov solve calling Run thousands of times) allocates
	// nothing per Run beyond the schedule memoized below.
	counters []execCounters
	vals     []Values
	// recs holds the per-worker declared-access recorders; nil unless
	// Options.AccessCheck is set, which is what keeps the sanitizer off the
	// unchecked hot path entirely.
	recs []accessRecorder
	// memoized static schedule: rebuilding the position lists is O(N) per
	// Run, which dominates repeated small-N runs.
	memoSched *sched.Schedule
	memoN     int

	// lastTrace holds the per-iteration trace of the most recent Run when
	// Options.CollectTrace is set.
	lastTrace *Trace

	// runMu serializes the stateful entry points (RunContext, Inspect,
	// InvalidatePlans): the scratch tables, counters and schedule cache
	// belong to one run at a time, so concurrent callers queue up rather
	// than race. It is not held by the phase-level APIs (Execute,
	// Postprocess), which remain single-caller.
	runMu sync.Mutex

	// Schedule cache of the wavefront executor: planMemoLoop/planMemo is the
	// pointer-identity fast path for runs reusing one Loop value (the Solver
	// hot path), planCache the structural-hash tier behind it, and
	// levelScratch the reusable level-decomposition buffers of cold
	// inspections. planGen is the cache's generation: InvalidatePlans
	// advances it, and lookups reject plans built under an earlier
	// generation. See wavefrontPlan.
	planMemoLoop *Loop
	planMemo     *wavefrontPlan
	planCache    map[uint64]*wavefrontPlan
	planGen      uint64
	levelScratch depgraph.LevelSet

	// pendingRepairLoop/pendingRepairNs carry a successful RepairPlans over
	// to the loop's next run, which stamps Report.PlanRepaired/RepairNs and
	// clears them. Repairs between runs accumulate.
	pendingRepairLoop *Loop
	pendingRepairNs   int64

	// autoCosts memoizes the Auto selection's coefficients (configured or
	// probed) for the lifetime of the runtime.
	autoCosts AutoCosts

	// tuner is the online self-tuning state behind Options.Tuning (nil when
	// tuning is off), and tuneObs the decision armed by the current run for
	// post-run feedback. Both are guarded by runMu.
	tuner   *tuner
	tuneObs pendingObservation

	// inspectDirty records that inspectTables filled the writer table and no
	// doacross postprocess has reset it yet. A doacross-executor run always
	// restores the table itself; a wavefront run normally touches no scratch
	// at all, so it consults this flag to clean up after a standalone
	// Inspect and keep the reuse invariant (ScratchClean) intact.
	inspectDirty bool

	// ab is the per-run abort state, reused across runs so the hot path
	// allocates nothing for it. It is armed at the start of every run and
	// consulted by the executor before each position and inside cancellable
	// waits.
	ab runAbort

	// Multi-RHS block state (see multi.go). mold/mnew are the element-major
	// column-block buffers (value of element e, block column c at
	// [e*nc + c]), mvals the per-worker MultiValues scratch, and mc the armed
	// block descriptor: a non-zero mc.nc makes execBody hand executors the
	// multi body instead of the scalar one. All are sized lazily on the first
	// RunMulti and reused across blocks and runs.
	mold  []float64
	mnew  []float64
	mvals []MultiValues
	mc    multiRun
}

// runAbort coordinates early termination of a run: the first failure
// (context cancellation, body error, body panic) is recorded and the
// triggered flag released, after which workers stop starting iterations and
// cancellable waits return. Workers still rendezvous at the phase barriers
// and run the postprocessing resets, so the completion barrier never leaks
// and the runtime stays reusable.
type runAbort struct {
	triggered atomic.Bool
	mu        sync.Mutex
	err       error
	// wake releases waiters parked by the WaitNotify strategy; nil when no
	// waiter can be parked.
	wake func()
}

// arm prepares the abort state for a new run.
func (a *runAbort) arm(wake func()) {
	a.triggered.Store(false)
	a.err = nil
	a.wake = wake
}

// abort records err (first failure wins) and releases the run.
func (a *runAbort) abort(err error) {
	a.mu.Lock()
	if a.err == nil {
		a.err = err
	}
	a.mu.Unlock()
	a.triggered.Store(true)
	if a.wake != nil {
		a.wake()
	}
}

// firstErr returns the recorded failure, nil if the run completed.
func (a *runAbort) firstErr() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.err
}

// NewRuntime creates a runtime whose scratch arrays cover data arrays of
// length dataLen.
func NewRuntime(dataLen int, opts Options) *Runtime {
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.Workers > sched.MaxWorkers {
		// Keep the runtime's worker count equal to the pool's: a fused run
		// sizes its phase barrier to opts.Workers, and a barrier wider than
		// the pool would never fill.
		opts.Workers = sched.MaxWorkers
	}
	pool := sched.NewPool(opts.Workers)
	if opts.SpawnPerCall {
		pool = sched.NewSpawnPool(opts.Workers)
	}
	rt := &Runtime{
		opts:     opts,
		pool:     pool,
		dataLen:  dataLen,
		ynew:     make([]float64, dataLen),
		counters: make([]execCounters, opts.Workers),
		vals:     make([]Values, opts.Workers),
	}
	if opts.AccessCheck {
		rt.recs = make([]accessRecorder, opts.Workers)
	}
	if opts.Tuning != nil {
		rt.tuner = newTuner(*opts.Tuning)
	}
	if opts.UseEpochTables {
		rt.eIter = flags.NewEpochIterTable(dataLen)
		rt.eReady = flags.NewEpochFlags(dataLen)
		if opts.WaitStrategy == flags.WaitNotify {
			rt.eReady.EnableNotify()
		}
	} else {
		rt.iter = flags.NewIterTable(dataLen)
		rt.ready = flags.NewReadyFlags(dataLen)
		if opts.WaitStrategy == flags.WaitNotify {
			rt.ready.EnableNotify()
		}
	}
	return rt
}

// Workers reports the number of workers the runtime uses.
func (rt *Runtime) Workers() int { return rt.opts.Workers }

// Options returns a copy of the runtime's configuration.
func (rt *Runtime) Options() Options { return rt.opts }

// Close retires the runtime's worker pool. It is idempotent; a runtime that
// is garbage collected without Close releases its workers through the pool's
// finalizer, so forgetting Close never leaks goroutines.
func (rt *Runtime) Close() { rt.pool.Close() }

// InvalidatePlans evicts every cached wavefront plan by advancing the
// schedule cache's generation counter: both cache tiers (the Loop
// pointer-identity memo and the structural-hash map) reject plans built
// under an earlier generation, so the next run re-inspects cold. It exists
// for drivers that mutate a loop's index arrays in place — the cache
// otherwise assumes a Loop value's access pattern is stable for the Loop's
// lifetime, and a mutated pattern would silently replay a stale schedule.
// Drivers that change only a few iterations per step should prefer
// RepairPlans, which patches the cached plan instead of discarding it. Safe
// to call concurrently with Run.
func (rt *Runtime) InvalidatePlans() {
	rt.runMu.Lock()
	defer rt.runMu.Unlock()
	rt.invalidateLocked()
}

// invalidateLocked is InvalidatePlans under an already-held run mutex — the
// shared eviction path of InvalidatePlans and RepairPlans' fallbacks.
func (rt *Runtime) invalidateLocked() {
	rt.planGen++
	rt.planMemoLoop, rt.planMemo = nil, nil
	clear(rt.planCache)
	rt.pendingRepairLoop, rt.pendingRepairNs = nil, 0
	rt.recordPlan(PlanInvalidated)
}

// schedule returns the static schedule for n positions, rebuilding it only
// when n changes between runs.
func (rt *Runtime) schedule(n int) *sched.Schedule {
	if rt.memoSched == nil || rt.memoN != n {
		rt.memoSched = sched.Build(rt.opts.Policy, n, rt.opts.Workers)
		rt.memoN = n
	}
	return rt.memoSched
}

// table and waiter return the active scratch structures behind small adapter
// types so the executor code is independent of the reset protocol.
func (rt *Runtime) table() writerTable {
	if rt.opts.UseEpochTables {
		return rt.eIter
	}
	return rt.iter
}

func (rt *Runtime) waiter() readyWaiter {
	if rt.opts.UseEpochTables {
		return epochWaiter{rt.eReady}
	}
	return flagWaiter{rt.ready}
}

// flagWaiter adapts flags.ReadyFlags to the readyWaiter interface.
type flagWaiter struct{ f *flags.ReadyFlags }

func (w flagWaiter) Set(e int)         { w.f.Set(e) }
func (w flagWaiter) IsDone(e int) bool { return w.f.IsDone(e) }
func (w flagWaiter) WaitFor(e int, s flags.WaitStrategy, cancelled *atomic.Bool) (int, bool) {
	return w.f.WaitCancel(e, s, cancelled)
}
func (w flagWaiter) WakeAll() { w.f.WakeAll() }

// epochWaiter adapts flags.EpochFlags to the readyWaiter interface.
type epochWaiter struct{ f *flags.EpochFlags }

func (w epochWaiter) Set(e int)         { w.f.Set(e) }
func (w epochWaiter) IsDone(e int) bool { return w.f.IsDone(e) }
func (w epochWaiter) WaitFor(e int, s flags.WaitStrategy, cancelled *atomic.Bool) (int, bool) {
	return w.f.WaitCancel(e, s, cancelled)
}
func (w epochWaiter) WakeAll() { w.f.WakeAll() }

// phaseBarrier separates the phases of a fused run: all participants of the
// submitted job rendezvous between the inspector, executor and postprocessor
// shards without releasing the workers back to the pool. The last arriver
// runs onLast (used to timestamp the phase boundary) before opening the
// barrier. The barrier is reusable across successive phases of one job.
type phaseBarrier struct {
	n     int32
	count atomic.Int32
	gen   atomic.Uint32
}

func (b *phaseBarrier) wait(onLast func()) {
	g := b.gen.Load()
	if b.count.Add(1) == b.n {
		if onLast != nil {
			onLast()
		}
		b.count.Store(0)
		b.gen.Add(1)
		return
	}
	for b.gen.Load() == g {
		runtime.Gosched()
	}
}

// checkRunArgs performs the up-front structural validation shared by every
// Run variant, so a short data slice (or a loop wider than the runtime)
// yields a descriptive error instead of an index panic inside a worker
// goroutine mid-phase.
func (rt *Runtime) checkRunArgs(l *Loop, y []float64) error {
	if l.Data > rt.dataLen {
		return fmt.Errorf("core: loop data length %d exceeds runtime capacity %d", l.Data, rt.dataLen)
	}
	if len(y) < l.Data {
		return fmt.Errorf("core: data slice length %d shorter than loop data length %d", len(y), l.Data)
	}
	if l.Body == nil && l.BodyErr == nil {
		return fmt.Errorf("core: loop has neither Body nor BodyErr")
	}
	return nil
}

// wakeWaiters releases waiters parked by the WaitNotify strategy so a
// freshly-triggered abort is observed. With any other strategy it is nil
// (nothing parks), so the abort path costs nothing extra.
func (rt *Runtime) wakeWaiters() func() {
	if rt.opts.WaitStrategy != flags.WaitNotify {
		return nil
	}
	if rt.opts.UseEpochTables {
		return rt.eReady.WakeAll
	}
	return rt.ready.WakeAll
}

// watchContext arms the run's abort state and, when ctx is cancellable,
// starts a watcher goroutine that aborts the run the moment ctx is done. The
// returned stop function must be called (exactly once) after the run's
// workers have drained; it joins the watcher so the abort state can be
// safely reused by the next run.
func (rt *Runtime) watchContext(ctx context.Context) (stop func()) {
	rt.ab.arm(rt.wakeWaiters())
	done := ctx.Done()
	if done == nil {
		return func() {}
	}
	quit := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		select {
		case <-done:
			rt.ab.abort(ctx.Err())
		case <-quit:
		}
	}()
	return func() {
		close(quit)
		<-exited
	}
}

// Run executes the full preprocessed doacross — inspector, executor,
// postprocessor — on the loop, updating y in place exactly as the sequential
// loop would have. It returns a report of the execution. Run is
// RunContext with a background context.
func (rt *Runtime) Run(l *Loop, y []float64) (Report, error) {
	return rt.RunContext(context.Background(), l, y)
}

// RunContext is Run with cancellation and failure propagation: the run is
// aborted as soon as ctx is cancelled (or its deadline passes), a loop body
// returns an error (BodyErr) or reports one (Values.Fail), or a loop body
// panics (the panic is recovered into an error). On abort no further
// iterations start, iterations waiting on unsatisfied dependencies are
// released, the workers drain through the phase barriers as usual, and the
// scratch state is restored — the runtime and its pool remain fully
// reusable. The contents of y are unspecified after a failed run.
//
// The three phases are fused into a single pool submission: the workers are
// woken once per Run and rendezvous at internal barriers between the phases,
// instead of being dispatched (or, before the persistent pool, spawned)
// three times. The loop's data length must not exceed the runtime's. Run may
// be called repeatedly (with the same or different loops); the scratch
// arrays, worker pool and schedule are reused across calls as in the paper.
func (rt *Runtime) RunContext(ctx context.Context, l *Loop, y []float64) (Report, error) {
	if err := rt.checkRunArgs(l, y); err != nil {
		return Report{}, err
	}
	if rt.opts.Order != nil && len(rt.opts.Order) != l.N {
		return Report{}, fmt.Errorf("core: execution order has %d entries for %d iterations", len(rt.opts.Order), l.N)
	}
	if err := ctx.Err(); err != nil {
		return Report{}, err
	}
	// One run owns the scratch state at a time; concurrent Run (and Inspect,
	// and InvalidatePlans) calls serialize here.
	rt.runMu.Lock()
	defer rt.runMu.Unlock()

	rep := Report{
		Workers:     rt.opts.Workers,
		Iterations:  l.N,
		WaitPolicy:  rt.opts.WaitStrategy.String(),
		SchedPolicy: rt.opts.Policy.String(),
	}
	if rt.opts.Order != nil {
		rep.Order = "reordered"
	} else {
		rep.Order = "natural"
	}

	if rt.opts.SpawnPerCall {
		// The measurement baseline reproduces the pre-pool behaviour
		// faithfully: three separate phase dispatches of the flag-based
		// doacross, each spawning its own goroutines. It honors body failures
		// but checks ctx only between phases, not mid-phase; the fused path
		// is the supported one.
		return rt.runPhased(ctx, l, y, rep)
	}

	// Resolve the execution strategy. For ExecWavefront/ExecAuto this is
	// where the inspection (or its cache hit) happens, so its cost is folded
	// into the report's preprocessing time below. Like the doacross's own
	// inspector shard, a cold inspection is not interruptible mid-flight;
	// ctx is re-checked as soon as it completes.
	selStart := time.Now()
	ex, err := rt.executorFor(l, &rep, 1)
	if err != nil {
		return Report{}, err
	}
	selTime := time.Since(selStart)
	rep.Executor = ex.name()
	if rt.pendingRepairLoop == l {
		rep.PlanRepaired = true
		rep.RepairNs = rt.pendingRepairNs
		rt.pendingRepairLoop, rt.pendingRepairNs = nil, 0
	}
	if err := ctx.Err(); err != nil {
		return Report{}, err
	}

	stopWatch := rt.watchContext(ctx)
	ex.execute(l, y, &rep)
	stopWatch()
	if err := rt.ab.firstErr(); err != nil {
		rt.recordRun(rep.Executor, time.Since(selStart), err)
		return Report{}, err
	}
	rep.PreTime += selTime
	rep.TotalTime += selTime
	rep.setCounters(sumCounters(rt.counters))
	rt.observeTuning(&rep)
	rt.recordRun(rep.Executor, time.Since(selStart), nil)
	return rep, nil
}

// sumCounters totals the per-worker dependency counters of one execution.
func sumCounters(per []execCounters) execCounters {
	var sum execCounters
	for _, c := range per {
		sum.trueDeps += c.trueDeps
		sum.selfDeps += c.selfDeps
		sum.antiOrNone += c.antiOrNone
		sum.waitPolls += c.waitPolls
	}
	return sum
}

// setCounters copies the aggregated dependency counters into the report.
func (r *Report) setCounters(c execCounters) {
	r.TrueDeps = c.trueDeps
	r.SelfDeps = c.selfDeps
	r.AntiOrNone = c.antiOrNone
	r.WaitPolls = c.waitPolls
}

// Inspect is the execution-time preprocessing phase (the inspector): it runs
// a fully parallel loop that records, for every element written by the loop,
// the iteration that writes it (Figure 3, left, in the paper), and — when the
// loop declares Reads — derives the wavefront decomposition through the same
// schedule cache the wavefront executor uses, returning the inspection
// statistics the Auto executor selection consults. Loops without Reads return
// stats with only Iterations set (no graph can be built). The error is
// non-nil when a Writes/Reads closure panicked during the decomposition.
func (rt *Runtime) Inspect(l *Loop) (InspectStats, error) {
	rt.runMu.Lock()
	defer rt.runMu.Unlock()
	rt.inspectTables(l)
	if l.Reads == nil {
		return InspectStats{Iterations: l.N}, nil
	}
	plan, cached, err := rt.wavefrontPlan(l)
	if err != nil {
		return InspectStats{Iterations: l.N}, err
	}
	st := plan.stats
	st.CacheHit = cached
	return st, nil
}

// inspectTables fills the writer table only — the inspector work the
// flag-based doacross phases consume. It is what the SpawnPerCall baseline
// runs, so that baseline keeps measuring exactly the paper's three phases.
func (rt *Runtime) inspectTables(l *Loop) {
	tab := rt.table()
	rt.pool.ParallelFor(l.N, func(i int) {
		for _, e := range l.Writes(i) {
			tab.Record(e, i)
		}
	})
	rt.inspectDirty = true
}

// execCounters aggregates the per-iteration dependency counters.
type execCounters struct {
	trueDeps   int64
	selfDeps   int64
	antiOrNone int64
	waitPolls  int64
}

// runPhased executes the three phases as separate pool dispatches, the shape
// Run had before the fused submission. It is kept as the SpawnPerCall
// baseline so BenchmarkRunReuse can measure what the persistent pool and the
// fusion save together. Cancellation is checked between phases only;
// Postprocess always runs so the scratch state is restored even after a
// failed executor phase.
func (rt *Runtime) runPhased(ctx context.Context, l *Loop, y []float64, rep Report) (Report, error) {
	rep.Executor = "doacross"
	start := time.Now()
	rt.inspectTables(l)
	rep.PreTime = time.Since(start)

	execStart := time.Now()
	counters, runErr := rt.Execute(l, y)
	rep.ExecTime = time.Since(execStart)
	rep.setCounters(counters)
	if runErr == nil {
		runErr = ctx.Err()
	}

	postStart := time.Now()
	rt.Postprocess(l, y)
	rep.PostTime = time.Since(postStart)
	rep.TotalTime = time.Since(start)
	rt.recordRun(rep.Executor, time.Since(start), runErr)
	if runErr != nil {
		return Report{}, runErr
	}
	return rep, nil
}

// execBody builds the per-position executor body shared by the fused Run
// path and the standalone Execute phase. The returned closure runs one
// position of the transformed loop: it maps the position through the
// execution order, seeds ynew, runs the user body through the worker's
// reusable Values, marks the written elements ready and accumulates the
// worker's dependency counters — all through worker-indexed slots, so the
// hot path stays allocation-free. Once the run is aborted, remaining
// positions drain without executing their bodies; a failing body aborts the
// run and leaves its elements unpublished (waiters are released through the
// cancellable wait instead).
func (rt *Runtime) execBody(l *Loop, y []float64, tab writerTable, ready readyWaiter, traceBase time.Time) func(worker, pos int) {
	if rt.mc.nc > 0 {
		// A RunMulti block is armed: every executor transparently runs the
		// multi-RHS body against the block buffers instead (see multi.go).
		return rt.execBodyMulti(l, tab, ready, traceBase)
	}
	order := rt.opts.Order
	ab := &rt.ab
	return func(worker, pos int) {
		if ab.triggered.Load() {
			return
		}
		i := pos
		if order != nil {
			i = order[pos]
		}
		var start time.Duration
		if rt.lastTrace != nil {
			start = time.Since(traceBase)
		}
		writes := l.Writes(i)
		// Statement S2 of the paper's Figure 5: seed ynew(a(i)) with the old
		// value so intra-iteration (self-dependence) reads observe the value
		// the sequential loop would have seen before this iteration's write.
		for _, e := range writes {
			rt.ynew[e] = y[e]
		}
		v := &rt.vals[worker]
		v.reset(tab, ready, y, rt.ynew, i, rt.opts.WaitStrategy)
		v.cancel = &ab.triggered
		rt.armAccessCheck(v, l, worker, i, writes)
		if err := l.run(i, v); err != nil {
			ab.abort(err)
			return
		}
		if err := v.accessViolation(); err != nil {
			// An undeclared access aborts like a body error: the iteration's
			// elements stay unpublished and the first violation wins.
			ab.abort(err)
			return
		}
		for _, e := range writes {
			ready.Set(e)
		}
		c := &rt.counters[worker]
		c.trueDeps += int64(v.truedeps)
		c.selfDeps += int64(v.selfdeps)
		c.antiOrNone += int64(v.antiOrNone)
		c.waitPolls += int64(v.waits)
		if rt.lastTrace != nil {
			rt.lastTrace.Iterations[pos] = IterTrace{
				Iteration: i,
				Position:  pos,
				Worker:    worker,
				Start:     start,
				End:       time.Since(traceBase),
				WaitPolls: v.waits,
				TrueDeps:  v.truedeps,
			}
		}
	}
}

// Execute is the executor phase: it runs the transformed loop in parallel.
// Reads go through Values.Load (which performs the iter check and the busy
// wait), writes go to the ynew buffer, and each iteration's written elements
// are marked ready when its body returns. y is only read during this phase.
// A body failure (BodyErr or Values.Fail) aborts the remaining iterations
// and is returned; run Postprocess afterwards regardless, so the scratch
// state is restored.
//
// Run fuses this phase with Inspect and Postprocess into one pool
// submission; Execute remains for callers that drive the phases separately
// (the overhead ablations).
func (rt *Runtime) Execute(l *Loop, y []float64) (execCounters, error) {
	tab := rt.table()
	ready := rt.waiter()
	rt.ab.arm(rt.wakeWaiters())

	traceBase := rt.armTrace(l)
	for i := range rt.counters {
		rt.counters[i] = execCounters{}
	}
	body := rt.execBody(l, y, tab, ready, traceBase)

	if rt.opts.Policy == sched.Dynamic {
		rt.pool.RunDynamic(l.N, rt.opts.Chunk, body)
	} else {
		rt.pool.RunSchedule(rt.schedule(l.N), body)
	}

	return sumCounters(rt.counters), rt.ab.firstErr()
}

// Postprocess is the parallel postprocessing phase (Figure 3, right, in the
// paper): for every element the loop wrote it copies the newly computed
// value back into y, resets the element's iter entry to MAXINT and its ready
// flag to NOTDONE. With epoch tables the resets are replaced by a single
// epoch advance.
func (rt *Runtime) Postprocess(l *Loop, y []float64) {
	if rt.opts.UseEpochTables {
		rt.pool.ParallelFor(l.N, func(i int) {
			for _, e := range l.Writes(i) {
				y[e] = rt.ynew[e]
			}
		})
		rt.eIter.Advance()
		rt.eReady.Advance()
		rt.inspectDirty = false
		return
	}
	rt.pool.ParallelFor(l.N, func(i int) {
		for _, e := range l.Writes(i) {
			y[e] = rt.ynew[e]
			rt.iter.Reset(e)
			rt.ready.Clear(e)
		}
	})
	rt.inspectDirty = false
}

// ScratchClean reports whether the scratch arrays are back in their pristine
// state (every iter entry MAXINT, every ready flag NOTDONE). It exists so
// tests can verify the paper's reuse invariant after Postprocess. Epoch-table
// runtimes are always clean by construction.
func (rt *Runtime) ScratchClean() bool {
	if rt.opts.UseEpochTables {
		return true
	}
	for e := 0; e < rt.dataLen; e++ {
		if rt.iter.Writer(e) != flags.MaxInt || rt.ready.IsDone(e) {
			return false
		}
	}
	return true
}
