package core

import (
	"fmt"
	"time"

	"doacross/internal/flags"
	"doacross/internal/sched"
)

// Options configures a doacross Runtime.
type Options struct {
	// Workers is the number of concurrent workers (processors). Zero means 1.
	Workers int
	// Policy selects how iterations are assigned to workers.
	Policy sched.Policy
	// Chunk is the chunk size used by the Dynamic policy (0 = default).
	Chunk int
	// WaitStrategy selects how true-dependency waits are performed. The
	// default (zero value) is the paper's busy wait; WaitSpinYield is
	// recommended when Workers exceeds GOMAXPROCS.
	WaitStrategy flags.WaitStrategy
	// UseEpochTables replaces the MAXINT/NOTDONE reset protocol of the
	// paper's postprocessing phase with epoch-versioned tables that reset in
	// O(1). This is a design-choice ablation; results are identical.
	UseEpochTables bool
	// Order, when non-nil, is the execution order produced by a doconsider
	// reordering: position k of the parallel loop executes original
	// iteration Order[k]. It must be a permutation of 0..N-1 that respects
	// all true dependencies (see doconsider.Validate). Nil means natural
	// order.
	Order []int
	// CollectTrace records a per-iteration execution trace (start/end time,
	// worker, wait polls) retrievable through Runtime.Trace after Run. It
	// adds two clock readings per iteration, so leave it off for
	// performance-sensitive runs.
	CollectTrace bool
}

// Report describes one doacross execution: the time spent in each of the
// three phases and aggregate synchronization counters.
type Report struct {
	Workers     int
	Iterations  int
	PreTime     time.Duration
	ExecTime    time.Duration
	PostTime    time.Duration
	TotalTime   time.Duration
	TrueDeps    int64
	SelfDeps    int64
	AntiOrNone  int64
	WaitPolls   int64
	Order       string
	WaitPolicy  string
	SchedPolicy string
}

// String renders the report in a compact human-readable form.
func (r Report) String() string {
	return fmt.Sprintf("P=%d iters=%d pre=%v exec=%v post=%v total=%v truedeps=%d waits=%d",
		r.Workers, r.Iterations, r.PreTime, r.ExecTime, r.PostTime, r.TotalTime, r.TrueDeps, r.WaitPolls)
}

// Runtime holds the reusable scratch state of the preprocessed doacross: the
// iter table, the ready flags, the ynew buffer and the worker pool. As in
// Section 2.1 of the paper, one Runtime is shared by successive doacross
// loops over data arrays of the same length, and its postprocessing phase
// restores the scratch state so the next loop can start immediately.
type Runtime struct {
	opts Options
	pool *sched.Pool

	dataLen int
	iter    *flags.IterTable
	ready   *flags.ReadyFlags
	eIter   *flags.EpochIterTable
	eReady  *flags.EpochFlags
	ynew    []float64

	// lastTrace holds the per-iteration trace of the most recent Run when
	// Options.CollectTrace is set.
	lastTrace *Trace
}

// NewRuntime creates a runtime whose scratch arrays cover data arrays of
// length dataLen.
func NewRuntime(dataLen int, opts Options) *Runtime {
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	rt := &Runtime{
		opts:    opts,
		pool:    sched.NewPool(opts.Workers),
		dataLen: dataLen,
		ynew:    make([]float64, dataLen),
	}
	if opts.UseEpochTables {
		rt.eIter = flags.NewEpochIterTable(dataLen)
		rt.eReady = flags.NewEpochFlags(dataLen)
	} else {
		rt.iter = flags.NewIterTable(dataLen)
		rt.ready = flags.NewReadyFlags(dataLen)
		if opts.WaitStrategy == flags.WaitNotify {
			rt.ready.EnableNotify()
		}
	}
	return rt
}

// Workers reports the number of workers the runtime uses.
func (rt *Runtime) Workers() int { return rt.opts.Workers }

// Options returns a copy of the runtime's configuration.
func (rt *Runtime) Options() Options { return rt.opts }

// table and waiter return the active scratch structures behind small adapter
// types so the executor code is independent of the reset protocol.
func (rt *Runtime) table() writerTable {
	if rt.opts.UseEpochTables {
		return rt.eIter
	}
	return rt.iter
}

func (rt *Runtime) waiter() readyWaiter {
	if rt.opts.UseEpochTables {
		return epochWaiter{rt.eReady}
	}
	return flagWaiter{rt.ready}
}

// flagWaiter adapts flags.ReadyFlags to the readyWaiter interface.
type flagWaiter struct{ f *flags.ReadyFlags }

func (w flagWaiter) Set(e int)                               { w.f.Set(e) }
func (w flagWaiter) IsDone(e int) bool                       { return w.f.IsDone(e) }
func (w flagWaiter) WaitFor(e int, s flags.WaitStrategy) int { return w.f.Wait(e, s) }

// epochWaiter adapts flags.EpochFlags to the readyWaiter interface.
type epochWaiter struct{ f *flags.EpochFlags }

func (w epochWaiter) Set(e int)                               { w.f.Set(e) }
func (w epochWaiter) IsDone(e int) bool                       { return w.f.IsDone(e) }
func (w epochWaiter) WaitFor(e int, s flags.WaitStrategy) int { return w.f.Wait(e) }

// Run executes the full preprocessed doacross — inspector, executor,
// postprocessor — on the loop, updating y in place exactly as the sequential
// loop would have. It returns a report of the execution.
//
// The loop's data length must not exceed the runtime's. Run may be called
// repeatedly (with the same or different loops); the scratch arrays are
// reused across calls as in the paper.
func (rt *Runtime) Run(l *Loop, y []float64) (Report, error) {
	if l.Data > rt.dataLen {
		return Report{}, fmt.Errorf("core: loop data length %d exceeds runtime capacity %d", l.Data, rt.dataLen)
	}
	if len(y) < l.Data {
		return Report{}, fmt.Errorf("core: data slice length %d shorter than loop data %d", len(y), l.Data)
	}
	if rt.opts.Order != nil && len(rt.opts.Order) != l.N {
		return Report{}, fmt.Errorf("core: execution order has %d entries for %d iterations", len(rt.opts.Order), l.N)
	}

	rep := Report{
		Workers:     rt.opts.Workers,
		Iterations:  l.N,
		WaitPolicy:  rt.opts.WaitStrategy.String(),
		SchedPolicy: rt.opts.Policy.String(),
	}
	if rt.opts.Order != nil {
		rep.Order = "reordered"
	} else {
		rep.Order = "natural"
	}

	start := time.Now()
	rt.Inspect(l)
	rep.PreTime = time.Since(start)

	execStart := time.Now()
	counters := rt.Execute(l, y)
	rep.ExecTime = time.Since(execStart)
	rep.TrueDeps = counters.trueDeps
	rep.SelfDeps = counters.selfDeps
	rep.AntiOrNone = counters.antiOrNone
	rep.WaitPolls = counters.waitPolls

	postStart := time.Now()
	rt.Postprocess(l, y)
	rep.PostTime = time.Since(postStart)
	rep.TotalTime = time.Since(start)
	return rep, nil
}

// Inspect is the execution-time preprocessing phase (the inspector): it runs
// a fully parallel loop that records, for every element written by the loop,
// the iteration that writes it (Figure 3, left, in the paper).
func (rt *Runtime) Inspect(l *Loop) {
	tab := rt.table()
	rt.pool.ParallelFor(l.N, func(i int) {
		for _, e := range l.Writes(i) {
			tab.Record(e, i)
		}
	})
}

// execCounters aggregates the per-iteration dependency counters.
type execCounters struct {
	trueDeps   int64
	selfDeps   int64
	antiOrNone int64
	waitPolls  int64
}

// Execute is the executor phase: it runs the transformed loop in parallel.
// Reads go through Values.Load (which performs the iter check and the busy
// wait), writes go to the ynew buffer, and each iteration's written elements
// are marked ready when its body returns. y is only read during this phase.
func (rt *Runtime) Execute(l *Loop, y []float64) execCounters {
	tab := rt.table()
	ready := rt.waiter()
	order := rt.opts.Order

	var traceBase time.Time
	if rt.opts.CollectTrace {
		rt.lastTrace = &Trace{Workers: rt.opts.Workers, Iterations: make([]IterTrace, l.N)}
		traceBase = time.Now()
	} else {
		rt.lastTrace = nil
	}

	perWorker := make([]execCounters, rt.opts.Workers)
	// One Values per worker, reused across that worker's iterations, keeps
	// the executor allocation-free per iteration.
	vals := make([]Values, rt.opts.Workers)
	body := func(worker, pos int) {
		i := pos
		if order != nil {
			i = order[pos]
		}
		var start time.Duration
		if rt.lastTrace != nil {
			start = time.Since(traceBase)
		}
		writes := l.Writes(i)
		// Statement S2 of the paper's Figure 5: seed ynew(a(i)) with the old
		// value so intra-iteration (self-dependence) reads observe the value
		// the sequential loop would have seen before this iteration's write.
		for _, e := range writes {
			rt.ynew[e] = y[e]
		}
		v := &vals[worker]
		v.reset(tab, ready, y, rt.ynew, i, rt.opts.WaitStrategy)
		l.Body(i, v)
		for _, e := range writes {
			ready.Set(e)
		}
		c := &perWorker[worker]
		c.trueDeps += int64(v.truedeps)
		c.selfDeps += int64(v.selfdeps)
		c.antiOrNone += int64(v.antiOrNone)
		c.waitPolls += int64(v.waits)
		if rt.lastTrace != nil {
			rt.lastTrace.Iterations[pos] = IterTrace{
				Iteration: i,
				Position:  pos,
				Worker:    worker,
				Start:     start,
				End:       time.Since(traceBase),
				WaitPolls: v.waits,
				TrueDeps:  v.truedeps,
			}
		}
	}

	if rt.opts.Policy == sched.Dynamic {
		rt.pool.RunDynamic(l.N, rt.opts.Chunk, body)
	} else {
		s := sched.Build(rt.opts.Policy, l.N, rt.opts.Workers)
		rt.pool.RunSchedule(s, body)
	}

	var total execCounters
	for _, c := range perWorker {
		total.trueDeps += c.trueDeps
		total.selfDeps += c.selfDeps
		total.antiOrNone += c.antiOrNone
		total.waitPolls += c.waitPolls
	}
	return total
}

// Postprocess is the parallel postprocessing phase (Figure 3, right, in the
// paper): for every element the loop wrote it copies the newly computed
// value back into y, resets the element's iter entry to MAXINT and its ready
// flag to NOTDONE. With epoch tables the resets are replaced by a single
// epoch advance.
func (rt *Runtime) Postprocess(l *Loop, y []float64) {
	if rt.opts.UseEpochTables {
		rt.pool.ParallelFor(l.N, func(i int) {
			for _, e := range l.Writes(i) {
				y[e] = rt.ynew[e]
			}
		})
		rt.eIter.Advance()
		rt.eReady.Advance()
		return
	}
	rt.pool.ParallelFor(l.N, func(i int) {
		for _, e := range l.Writes(i) {
			y[e] = rt.ynew[e]
			rt.iter.Reset(e)
			rt.ready.Clear(e)
		}
	})
}

// ScratchClean reports whether the scratch arrays are back in their pristine
// state (every iter entry MAXINT, every ready flag NOTDONE). It exists so
// tests can verify the paper's reuse invariant after Postprocess. Epoch-table
// runtimes are always clean by construction.
func (rt *Runtime) ScratchClean() bool {
	if rt.opts.UseEpochTables {
		return true
	}
	for e := 0; e < rt.dataLen; e++ {
		if rt.iter.Writer(e) != flags.MaxInt || rt.ready.IsDone(e) {
			return false
		}
	}
	return true
}
