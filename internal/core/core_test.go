package core

import (
	"math/rand"
	"testing"

	"doacross/internal/depgraph"
	"doacross/internal/flags"
	"doacross/internal/sched"
	"doacross/internal/sparse"
)

// figure1Loop builds the paper's Figure 1 loop
//
//	do i = 1, N:  y(a(i)) = ... y(b(i))
//
// as a Loop over a data array of length dataLen. a must have distinct values
// (no output dependencies); b may point anywhere, producing a mixture of
// true dependencies, anti-dependencies and reads of untouched elements.
func figure1Loop(a, b []int, dataLen int) *Loop {
	n := len(a)
	return &Loop{
		N:      n,
		Data:   dataLen,
		Writes: func(i int) []int { return a[i : i+1] },
		Reads:  func(i int) []int { return b[i : i+1] },
		Body: func(i int, v *Values) {
			v.Store(a[i], 2*v.Load(b[i])+float64(i))
		},
	}
}

// randomFigure1 builds a random instance of the Figure 1 loop along with its
// initial data.
func randomFigure1(rng *rand.Rand, n int) (*Loop, []float64) {
	dataLen := 2 * n
	perm := rng.Perm(dataLen)[:n] // distinct write targets
	a := make([]int, n)
	b := make([]int, n)
	copy(a, perm)
	for i := range b {
		b[i] = rng.Intn(dataLen)
	}
	y := make([]float64, dataLen)
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	return figure1Loop(a, b, dataLen), y
}

// mustRunSequential computes the sequential reference and fails the test on
// the error a reference loop is never expected to produce.
func mustRunSequential(tb testing.TB, l *Loop, y []float64) {
	tb.Helper()
	if err := RunSequential(l, y); err != nil {
		tb.Fatal(err)
	}
}

func runBoth(t *testing.T, l *Loop, y []float64, opts Options) (seq, par []float64) {
	t.Helper()
	seq = append([]float64(nil), y...)
	par = append([]float64(nil), y...)
	mustRunSequential(t, l, seq)
	rt := NewRuntime(l.Data, opts)
	if _, err := rt.Run(l, par); err != nil {
		t.Fatal(err)
	}
	return seq, par
}

func TestDoacrossMatchesSequentialSimpleChain(t *testing.T) {
	// y[i] = y[i-1] + 1: a pure chain of true dependencies.
	n := 200
	a := make([]int, n)
	b := make([]int, n)
	for i := range a {
		a[i] = i
		if i > 0 {
			b[i] = i - 1
		}
	}
	l := figure1Loop(a, b, n)
	y := make([]float64, n)
	y[0] = 1
	seq, par := runBoth(t, l, y, Options{Workers: 4, WaitStrategy: flags.WaitSpinYield})
	if d := sparse.VecMaxDiff(seq, par); d != 0 {
		t.Fatalf("chain: parallel differs from sequential by %v", d)
	}
}

func TestDoacrossMatchesSequentialAntiDependencies(t *testing.T) {
	// y[i] = f(y[i+1]): every read is an anti-dependence; the doacross must
	// return the OLD value of y[i+1], not the newly computed one.
	n := 100
	a := make([]int, n)
	b := make([]int, n)
	for i := range a {
		a[i] = i
		b[i] = (i + 1) % n
	}
	l := figure1Loop(a, b, n)
	y := make([]float64, n)
	for i := range y {
		y[i] = float64(i)
	}
	seq, par := runBoth(t, l, y, Options{Workers: 4, WaitStrategy: flags.WaitSpinYield})
	if d := sparse.VecMaxDiff(seq, par); d != 0 {
		t.Fatalf("anti-dependencies: parallel differs from sequential by %v", d)
	}
}

func TestDoacrossMatchesSequentialRandomLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		l, y := randomFigure1(rng, 150)
		for _, workers := range []int{1, 2, 3, 8} {
			seq, par := runBoth(t, l, y, Options{Workers: workers, WaitStrategy: flags.WaitSpinYield})
			if d := sparse.VecMaxDiff(seq, par); d != 0 {
				t.Fatalf("trial %d workers %d: parallel differs from sequential by %v", trial, workers, d)
			}
		}
	}
}

func TestDoacrossSelfDependenceReadsOldValue(t *testing.T) {
	// y[a(i)] = 2*y[a(i)] + i: the read and the write subscript coincide, so
	// every read is an intra-iteration dependence. The doacross must observe
	// the pre-loop value (via the ynew seeding of Figure 5, statement S2).
	n := 64
	a := make([]int, n)
	for i := range a {
		a[i] = (i*7 + 3) % (2 * n)
		for dup := 0; dup < i; dup++ {
			if a[dup] == a[i] { // keep writes distinct
				a[i] = (a[i] + 1) % (2 * n)
				dup = -1
			}
		}
	}
	l := figure1Loop(a, a, 2*n)
	y := make([]float64, 2*n)
	for i := range y {
		y[i] = float64(i) * 0.25
	}
	seq, par := runBoth(t, l, y, Options{Workers: 4, WaitStrategy: flags.WaitSpinYield})
	if d := sparse.VecMaxDiff(seq, par); d != 0 {
		t.Fatalf("self-dependence: parallel differs from sequential by %v", d)
	}
}

func TestDoacrossPoliciesAndStrategiesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l, y := randomFigure1(rng, 120)
	seq := append([]float64(nil), y...)
	mustRunSequential(t, l, seq)
	for _, policy := range []sched.Policy{sched.Block, sched.Cyclic, sched.Dynamic} {
		for _, strategy := range []flags.WaitStrategy{flags.WaitSpinYield, flags.WaitNotify} {
			par := append([]float64(nil), y...)
			rt := NewRuntime(l.Data, Options{Workers: 4, Policy: policy, WaitStrategy: strategy, Chunk: 8})
			if _, err := rt.Run(l, par); err != nil {
				t.Fatal(err)
			}
			if d := sparse.VecMaxDiff(seq, par); d != 0 {
				t.Fatalf("policy %v strategy %v: mismatch %v", policy, strategy, d)
			}
		}
	}
}

func TestDoacrossEpochTablesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	l, y := randomFigure1(rng, 100)
	seq := append([]float64(nil), y...)
	mustRunSequential(t, l, seq)
	par := append([]float64(nil), y...)
	rt := NewRuntime(l.Data, Options{Workers: 4, UseEpochTables: true, WaitStrategy: flags.WaitSpinYield})
	if _, err := rt.Run(l, par); err != nil {
		t.Fatal(err)
	}
	if d := sparse.VecMaxDiff(seq, par); d != 0 {
		t.Fatalf("epoch tables: mismatch %v", d)
	}
	if !rt.ScratchClean() {
		t.Error("epoch runtime should always report clean scratch")
	}
}

func TestRuntimeScratchReuseAcrossLoops(t *testing.T) {
	// The same runtime must serve several different doacross loops in
	// sequence (the paper's motivation for the postprocessing phase).
	rng := rand.New(rand.NewSource(17))
	rt := NewRuntime(400, Options{Workers: 4, WaitStrategy: flags.WaitSpinYield})
	for round := 0; round < 5; round++ {
		l, y := randomFigure1(rng, 200)
		seq := append([]float64(nil), y...)
		mustRunSequential(t, l, seq)
		par := append([]float64(nil), y...)
		if _, err := rt.Run(l, par); err != nil {
			t.Fatal(err)
		}
		if d := sparse.VecMaxDiff(seq, par); d != 0 {
			t.Fatalf("round %d: mismatch %v", round, d)
		}
		if !rt.ScratchClean() {
			t.Fatalf("round %d: scratch arrays not reset by postprocessing", round)
		}
	}
}

func TestRuntimeReuseAcrossDifferentSizes(t *testing.T) {
	// The memoized static schedule must be rebuilt when the loop size
	// changes between runs of one runtime.
	rng := rand.New(rand.NewSource(23))
	rt := NewRuntime(400, Options{Workers: 4, Policy: sched.Block, WaitStrategy: flags.WaitSpinYield})
	defer rt.Close()
	for _, n := range []int{150, 60, 150, 199, 1} {
		l, y := randomFigure1(rng, n)
		seq := append([]float64(nil), y...)
		mustRunSequential(t, l, seq)
		par := append([]float64(nil), y...)
		if _, err := rt.Run(l, par); err != nil {
			t.Fatal(err)
		}
		if d := sparse.VecMaxDiff(seq, par); d != 0 {
			t.Fatalf("n=%d: mismatch %v", n, d)
		}
		if !rt.ScratchClean() {
			t.Fatalf("n=%d: scratch arrays not reset", n)
		}
	}
}

func TestSpawnPerCallMatchesPooled(t *testing.T) {
	// The spawn-per-call baseline must produce identical results to the
	// persistent pool (it exists so BenchmarkRunReuse can compare the two).
	rng := rand.New(rand.NewSource(29))
	l, y := randomFigure1(rng, 120)
	seq := append([]float64(nil), y...)
	mustRunSequential(t, l, seq)
	for _, spawn := range []bool{false, true} {
		par := append([]float64(nil), y...)
		rt := NewRuntime(l.Data, Options{Workers: 4, WaitStrategy: flags.WaitSpinYield, SpawnPerCall: spawn})
		if _, err := rt.Run(l, par); err != nil {
			t.Fatal(err)
		}
		rt.Close()
		if d := sparse.VecMaxDiff(seq, par); d != 0 {
			t.Fatalf("spawn=%v: mismatch %v", spawn, d)
		}
	}
}

func TestEpochTablesAllWaitStrategies(t *testing.T) {
	// Every wait strategy must work with the epoch-table ablation; before
	// EpochFlags.Wait took a strategy, the configured strategy was silently
	// dropped and the wait always busy-spun.
	rng := rand.New(rand.NewSource(31))
	l, y := randomFigure1(rng, 120)
	seq := append([]float64(nil), y...)
	mustRunSequential(t, l, seq)
	for _, strategy := range []flags.WaitStrategy{flags.WaitSpin, flags.WaitSpinYield, flags.WaitNotify} {
		par := append([]float64(nil), y...)
		rt := NewRuntime(l.Data, Options{Workers: 4, UseEpochTables: true, WaitStrategy: strategy})
		if _, err := rt.Run(l, par); err != nil {
			t.Fatal(err)
		}
		rt.Close()
		if d := sparse.VecMaxDiff(seq, par); d != 0 {
			t.Fatalf("strategy %v: mismatch %v", strategy, d)
		}
	}
}

func TestRuntimeRunAfterClose(t *testing.T) {
	// Close is idempotent and a closed runtime still runs correctly (the
	// pool falls back to spawn-per-call).
	rng := rand.New(rand.NewSource(37))
	l, y := randomFigure1(rng, 80)
	seq := append([]float64(nil), y...)
	mustRunSequential(t, l, seq)
	rt := NewRuntime(l.Data, Options{Workers: 4, WaitStrategy: flags.WaitSpinYield})
	rt.Close()
	rt.Close()
	par := append([]float64(nil), y...)
	if _, err := rt.Run(l, par); err != nil {
		t.Fatal(err)
	}
	if d := sparse.VecMaxDiff(seq, par); d != 0 {
		t.Fatalf("run after Close: mismatch %v", d)
	}
}

func TestReportPhaseTimes(t *testing.T) {
	// The fused run stamps phase boundaries at the internal barriers; the
	// three phase times must be non-negative and sum to the total.
	rng := rand.New(rand.NewSource(41))
	l, y := randomFigure1(rng, 300)
	rt := NewRuntime(l.Data, Options{Workers: 4, WaitStrategy: flags.WaitSpinYield})
	defer rt.Close()
	rep, err := rt.Run(l, y)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PreTime < 0 || rep.ExecTime < 0 || rep.PostTime < 0 {
		t.Fatalf("negative phase time: pre=%v exec=%v post=%v", rep.PreTime, rep.ExecTime, rep.PostTime)
	}
	if sum := rep.PreTime + rep.ExecTime + rep.PostTime; sum > rep.TotalTime {
		t.Fatalf("phase times %v exceed total %v", sum, rep.TotalTime)
	}
	if rep.TotalTime <= 0 {
		t.Fatal("total time not recorded")
	}
}

func TestReportCounters(t *testing.T) {
	// Chain loop: every iteration except the first has exactly one true dep.
	n := 50
	a, b := make([]int, n), make([]int, n)
	for i := range a {
		a[i] = i
		if i > 0 {
			b[i] = i - 1
		} else {
			b[i] = n + 5 // never written
		}
	}
	l := figure1Loop(a, b, 2*n)
	y := make([]float64, 2*n)
	rt := NewRuntime(l.Data, Options{Workers: 2, WaitStrategy: flags.WaitSpinYield})
	rep, err := rt.Run(l, y)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TrueDeps != int64(n-1) {
		t.Errorf("TrueDeps = %d, want %d", rep.TrueDeps, n-1)
	}
	if rep.AntiOrNone != 1 {
		t.Errorf("AntiOrNone = %d, want 1", rep.AntiOrNone)
	}
	if rep.Iterations != n || rep.Workers != 2 {
		t.Errorf("report header wrong: %+v", rep)
	}
	if rep.String() == "" {
		t.Error("empty report string")
	}
}

func TestLoopValidate(t *testing.T) {
	good := &Loop{
		N: 3, Data: 5,
		Writes: func(i int) []int { return []int{i} },
		Body:   func(i int, v *Values) {},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid loop rejected: %v", err)
	}
	outputDep := &Loop{
		N: 3, Data: 5,
		Writes: func(i int) []int { return []int{0} },
		Body:   func(i int, v *Values) {},
	}
	if err := outputDep.Validate(); err == nil {
		t.Error("output dependency not detected")
	}
	oob := &Loop{
		N: 3, Data: 2,
		Writes: func(i int) []int { return []int{i} },
		Body:   func(i int, v *Values) {},
	}
	if err := oob.Validate(); err == nil {
		t.Error("out-of-range write not detected")
	}
	if err := (&Loop{N: -1}).Validate(); err == nil {
		t.Error("negative N not detected")
	}
	if err := (&Loop{N: 1, Data: -1}).Validate(); err == nil {
		t.Error("negative Data not detected")
	}
	if err := (&Loop{N: 1, Data: 1}).Validate(); err == nil {
		t.Error("missing Writes/Body not detected")
	}
}

func TestRunErrors(t *testing.T) {
	l := &Loop{N: 4, Data: 10, Writes: func(i int) []int { return []int{i} }, Body: func(i int, v *Values) {}}
	rt := NewRuntime(5, Options{Workers: 2})
	if _, err := rt.Run(l, make([]float64, 10)); err == nil {
		t.Error("data larger than runtime capacity accepted")
	}
	rt2 := NewRuntime(10, Options{Workers: 2})
	if _, err := rt2.Run(l, make([]float64, 3)); err == nil {
		t.Error("short data slice accepted")
	}
	rt3 := NewRuntime(10, Options{Workers: 2, Order: []int{0, 1}})
	if _, err := rt3.Run(l, make([]float64, 10)); err == nil {
		t.Error("wrong-length order accepted")
	}
}

func TestValuesAccessors(t *testing.T) {
	l := &Loop{
		N: 2, Data: 4,
		Writes: func(i int) []int { return []int{i} },
		Body: func(i int, v *Values) {
			if v.Iteration() != i {
				t.Errorf("Iteration() = %d, want %d", v.Iteration(), i)
			}
			old := v.LoadOld(3)
			v.Store(i, old+1)
			if v.LoadNew(i) != old+1 {
				t.Error("LoadNew did not observe Store")
			}
			_ = v.Waits()
		},
	}
	y := []float64{0, 0, 0, 7}
	rt := NewRuntime(4, Options{Workers: 2, WaitStrategy: flags.WaitSpinYield})
	if _, err := rt.Run(l, y); err != nil {
		t.Fatal(err)
	}
	if y[0] != 8 || y[1] != 8 {
		t.Errorf("y = %v, want first two elements 8", y)
	}
}

func TestReorderedExecutionMatchesSequential(t *testing.T) {
	// Execute a chain-with-branches loop in level order (a doconsider-style
	// reordering) and check it still matches the sequential result.
	rng := rand.New(rand.NewSource(23))
	n := 200
	a := make([]int, n)
	b := make([]int, n)
	for i := range a {
		a[i] = i
		if i == 0 {
			b[i] = n // untouched element
		} else {
			b[i] = rng.Intn(i) // always a true dependency
		}
	}
	l := figure1Loop(a, b, n+1)
	g := depgraph.BuildFromWriterIndex(n, a, func(i int) []int { return b[i : i+1] })
	_, byLevel := g.Levels()
	var order []int
	for _, lvl := range byLevel {
		order = append(order, lvl...)
	}
	if !g.IsTopologicalOrder(order) {
		t.Fatal("level order is not topological")
	}
	y := make([]float64, n+1)
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	seq := append([]float64(nil), y...)
	mustRunSequential(t, l, seq)
	par := append([]float64(nil), y...)
	rt := NewRuntime(l.Data, Options{Workers: 4, Order: order, WaitStrategy: flags.WaitSpinYield})
	rep, err := rt.Run(l, par)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Order != "reordered" {
		t.Errorf("report order = %q, want reordered", rep.Order)
	}
	if d := sparse.VecMaxDiff(seq, par); d != 0 {
		t.Fatalf("reordered execution mismatch %v", d)
	}
}
