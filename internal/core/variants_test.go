package core

import (
	"context"
	"math/rand"
	"testing"

	"doacross/internal/depgraph"
	"doacross/internal/flags"
	"doacross/internal/sparse"
)

func TestBlockedMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 5; trial++ {
		l, y := randomFigure1(rng, 150)
		seq := append([]float64(nil), y...)
		mustRunSequential(t, l, seq)
		for _, block := range []int{1, 7, 32, 150, 500} {
			par := append([]float64(nil), y...)
			rt := NewRuntime(l.Data, Options{Workers: 4, WaitStrategy: flags.WaitSpinYield})
			rep, err := rt.RunBlocked(l, par, block)
			if err != nil {
				t.Fatal(err)
			}
			if d := sparse.VecMaxDiff(seq, par); d != 0 {
				t.Fatalf("trial %d block %d: mismatch %v", trial, block, d)
			}
			if rep.Order != "blocked" {
				t.Errorf("report order = %q", rep.Order)
			}
			if !rt.ScratchClean() {
				t.Errorf("block %d: scratch not clean after blocked run", block)
			}
		}
	}
}

func TestBlockedRejectsBadArguments(t *testing.T) {
	l := &Loop{N: 4, Data: 4, Writes: func(i int) []int { return []int{i} }, Body: func(i int, v *Values) {}}
	rt := NewRuntime(4, Options{Workers: 2})
	if _, err := rt.RunBlocked(l, make([]float64, 4), 0); err == nil {
		t.Error("zero block size accepted")
	}
	rtOrdered := NewRuntime(4, Options{Workers: 2, Order: []int{0, 1, 2, 3}})
	if _, err := rtOrdered.RunBlocked(l, make([]float64, 4), 2); err == nil {
		t.Error("blocked run with reordering accepted")
	}
}

func TestLinearSubscriptWriter(t *testing.T) {
	s := LinearSubscript{C: 2, D: 0} // a(i) = 2i, the paper's Section 3.1 choice
	if s.Writer(4, 10) != 2 {
		t.Errorf("Writer(4) = %d, want 2", s.Writer(4, 10))
	}
	if s.Writer(5, 10) != -1 {
		t.Error("odd element should have no writer")
	}
	if s.Writer(40, 10) != -1 {
		t.Error("element beyond the iteration range should have no writer")
	}
	if s.Writer(-2, 10) != -1 {
		t.Error("negative writer index should be rejected")
	}
	if (LinearSubscript{C: 0}).Writer(3, 5) != -1 {
		t.Error("degenerate subscript should report no writer")
	}
	w := s.WritesFunc()
	if got := w(3); len(got) != 1 || got[0] != 6 {
		t.Errorf("WritesFunc(3) = %v, want [6]", got)
	}
}

func TestLinearVariantMatchesSequential(t *testing.T) {
	// y[2i] = y[2i - 2k] + i with a(i) = 2i: the linear-subscript variant
	// must agree with both the sequential loop and the inspector-based
	// doacross.
	n := 300
	dataLen := 2*n + 8
	sub := LinearSubscript{C: 2, D: 0}
	b := make([]int, n)
	rng := rand.New(rand.NewSource(5))
	for i := range b {
		b[i] = rng.Intn(dataLen)
	}
	l := &Loop{
		N: n, Data: dataLen,
		Writes: sub.WritesFunc(),
		Reads:  func(i int) []int { return b[i : i+1] },
		Body: func(i int, v *Values) {
			v.Store(2*i, v.Load(b[i])+float64(i))
		},
	}
	y := make([]float64, dataLen)
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	seq := append([]float64(nil), y...)
	mustRunSequential(t, l, seq)

	parInspector := append([]float64(nil), y...)
	rt1 := NewRuntime(dataLen, Options{Workers: 4, WaitStrategy: flags.WaitSpinYield})
	if _, err := rt1.Run(l, parInspector); err != nil {
		t.Fatal(err)
	}
	parLinear := append([]float64(nil), y...)
	rt2 := NewRuntime(dataLen, Options{Workers: 4, WaitStrategy: flags.WaitSpinYield})
	rep, err := rt2.RunLinear(l, parLinear, sub)
	if err != nil {
		t.Fatal(err)
	}
	if d := sparse.VecMaxDiff(seq, parInspector); d != 0 {
		t.Fatalf("inspector variant mismatch %v", d)
	}
	if d := sparse.VecMaxDiff(seq, parLinear); d != 0 {
		t.Fatalf("linear variant mismatch %v", d)
	}
	if rep.PreTime != 0 {
		t.Error("linear variant should not spend time in an inspector phase")
	}
	if rep.Order != "linear-subscript" {
		t.Errorf("report order = %q", rep.Order)
	}
}

func TestLinearVariantErrors(t *testing.T) {
	l := &Loop{N: 2, Data: 4, Writes: func(i int) []int { return []int{2 * i} }, Body: func(i int, v *Values) {}}
	rt := NewRuntime(4, Options{Workers: 1})
	if _, err := rt.RunLinear(l, make([]float64, 4), LinearSubscript{C: 0}); err == nil {
		t.Error("C=0 accepted")
	}
	small := NewRuntime(2, Options{Workers: 1})
	if _, err := small.RunLinear(l, make([]float64, 4), LinearSubscript{C: 2}); err == nil {
		t.Error("oversized loop accepted")
	}
}

func TestLinearVariantEpochTables(t *testing.T) {
	n := 100
	sub := LinearSubscript{C: 1, D: 0}
	l := &Loop{
		N: n, Data: n,
		Writes: sub.WritesFunc(),
		Body: func(i int, v *Values) {
			if i == 0 {
				v.Store(0, 1)
				return
			}
			v.Store(i, v.Load(i-1)*1.01)
		},
	}
	y := make([]float64, n)
	seq := append([]float64(nil), y...)
	mustRunSequential(t, l, seq)
	par := append([]float64(nil), y...)
	rt := NewRuntime(n, Options{Workers: 3, UseEpochTables: true, WaitStrategy: flags.WaitSpinYield})
	if _, err := rt.RunLinear(l, par, sub); err != nil {
		t.Fatal(err)
	}
	if d := sparse.VecMaxDiff(seq, par); d != 0 {
		t.Fatalf("linear+epoch mismatch %v", d)
	}
}

func TestDoallOnIndependentLoop(t *testing.T) {
	n := 500
	l := &Loop{
		N: n, Data: n,
		Writes: func(i int) []int { return []int{i} },
		Body: func(i int, v *Values) {
			v.Store(i, float64(i)*2)
		},
	}
	y := make([]float64, n)
	rt := NewRuntime(n, Options{Workers: 4})
	rep, err := rt.RunDoall(l, y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range y {
		if y[i] != float64(i)*2 {
			t.Fatalf("y[%d] = %v", i, y[i])
		}
	}
	if rep.Order != "doall" || rep.Iterations != n {
		t.Errorf("doall report: %+v", rep)
	}
}

func TestOracleMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 5; trial++ {
		l, y := randomFigure1(rng, 150)
		g := depgraph.Build(depgraph.Access{N: l.N, Writes: l.Writes, Reads: l.Reads})
		seq := append([]float64(nil), y...)
		mustRunSequential(t, l, seq)
		par := append([]float64(nil), y...)
		rt := NewRuntime(l.Data, Options{Workers: 4, WaitStrategy: flags.WaitSpinYield})
		rep, err := rt.RunOracle(l, par, g.Preds)
		if err != nil {
			t.Fatal(err)
		}
		if d := sparse.VecMaxDiff(seq, par); d != 0 {
			t.Fatalf("trial %d: oracle mismatch %v", trial, d)
		}
		if rep.Order != "oracle" {
			t.Errorf("report order = %q", rep.Order)
		}
	}
}

func TestOracleErrors(t *testing.T) {
	l := &Loop{N: 3, Data: 3, Writes: func(i int) []int { return []int{i} }, Body: func(i int, v *Values) {}}
	rt := NewRuntime(3, Options{Workers: 1})
	if _, err := rt.RunOracle(l, make([]float64, 3), make([][]int32, 2)); err == nil {
		t.Error("wrong-length predecessor list accepted")
	}
	small := NewRuntime(1, Options{Workers: 1})
	if _, err := small.RunOracle(l, make([]float64, 3), make([][]int32, 3)); err == nil {
		t.Error("oversized loop accepted")
	}
}

func TestOptionsAccessors(t *testing.T) {
	rt := NewRuntime(8, Options{Workers: 3})
	if rt.Workers() != 3 {
		t.Errorf("Workers() = %d", rt.Workers())
	}
	if rt.Options().Workers != 3 {
		t.Error("Options() lost configuration")
	}
	zero := NewRuntime(8, Options{})
	if zero.Workers() != 1 {
		t.Error("zero workers should clamp to 1")
	}
}

// TestVariantsRejectReorderedRuntime is the Run* validation audit: every
// variant whose executor walks positions in natural order must reject a
// runtime configured with a doconsider execution order up front, instead of
// silently running the natural order and misattributing the results.
// (RunBlocked already did; RunLinear and RunOracle used to fall through.)
func TestVariantsRejectReorderedRuntime(t *testing.T) {
	sub := LinearSubscript{C: 1, D: 0}
	l := &Loop{N: 4, Data: 4, Writes: sub.WritesFunc(), Body: func(i int, v *Values) { v.Store(i, 1) }}
	rt := NewRuntime(4, Options{Workers: 2, Order: []int{3, 2, 1, 0}})
	defer rt.Close()
	y := make([]float64, 4)
	if _, err := rt.RunBlocked(l, y, -1); err == nil {
		t.Error("negative block size accepted")
	}
	if _, err := rt.RunLinear(l, y, sub); err == nil {
		t.Error("RunLinear on a reordered runtime accepted")
	}
	if _, err := rt.RunOracle(l, y, make([][]int32, 4)); err == nil {
		t.Error("RunOracle on a reordered runtime accepted")
	}
	if _, err := rt.RunMulti(context.Background(), l, [][]float64{y}); err == nil {
		// The multi path validates the order length like RunContext does; a
		// wrong-length order is caught in TestRunMultiValidation, and a
		// correct-length one is honored, so no rejection here — just make
		// sure the BodyMulti requirement fires first.
		t.Error("RunMulti without BodyMulti accepted")
	}
}
