package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"doacross/internal/flags"
	"doacross/internal/sched"
	"doacross/internal/sparse"
)

// randomMultiDAGLoop is randomDAGLoop with a BodyMulti computing exactly the
// same recurrence per column. The multi body deliberately accumulates one
// column at a time (LoadRow per read per column) so a read of the iteration's
// own write element observes the seeded pre-iteration value in every column,
// matching the scalar Load's self-dependence semantics even though earlier
// columns of the row have already been stored.
func randomMultiDAGLoop(rng *rand.Rand, n int) (*Loop, []float64) {
	l, y := randomDAGLoop(rng, n)
	reads := l.Reads
	writes := l.Writes
	l.BodyMulti = func(i int, v *MultiValues) {
		w := writes(i)[0]
		out := v.Row(w)
		for c := 0; c < v.Cols(); c++ {
			s := float64(i) + 1
			for k, e := range reads(i) {
				s = 0.75*s + float64(k+1)*v.LoadRow(e)[c]
			}
			out[c] = s
		}
	}
	return l, y
}

// randomColumns returns nrhs independent random right-hand-side columns, each
// a copy-sized variant of y.
func randomColumns(rng *rand.Rand, y []float64, nrhs int) [][]float64 {
	ys := make([][]float64, nrhs)
	for c := range ys {
		col := make([]float64, len(y))
		for i := range col {
			col[i] = rng.NormFloat64()
		}
		ys[c] = col
	}
	return ys
}

// TestPropertyRunMultiEquivalentToScalarRuns is the acceptance property of
// the blocked multi-RHS path: RunMulti over a block of random columns equals
// running the scalar loop once per column, bitwise, under every executor
// kind, worker count and table implementation — and equals the
// RunSequentialMulti reference.
func TestPropertyRunMultiEquivalentToScalarRuns(t *testing.T) {
	f := func(seed int64, workerBits, execBits, epochBit, nrhsBits uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(100)
		l, y := randomMultiDAGLoop(rng, n)
		if err := l.Validate(); err != nil {
			t.Logf("invalid loop: %v", err)
			return false
		}
		nrhs := 1 + int(nrhsBits)%17
		ys := randomColumns(rng, y, nrhs)

		// Scalar reference: one scalar parallel run per column (the doacross
		// executor is the simplest oracle; scalar-vs-sequential equivalence is
		// covered elsewhere).
		want := make([][]float64, nrhs)
		for c := range ys {
			want[c] = append([]float64(nil), ys[c]...)
			mustRunSequential(t, l, want[c])
		}

		// RunSequentialMulti reference.
		seqMulti := make([][]float64, nrhs)
		for c := range ys {
			seqMulti[c] = append([]float64(nil), ys[c]...)
		}
		if err := RunSequentialMulti(l, seqMulti); err != nil {
			t.Logf("RunSequentialMulti: %v", err)
			return false
		}
		for c := range ys {
			if sparse.VecMaxDiff(want[c], seqMulti[c]) != 0 {
				t.Logf("RunSequentialMulti column %d differs from scalar sequential", c)
				return false
			}
		}

		exec := ExecutorKind(int(execBits) % 4)
		opts := Options{
			Workers:        int(workerBits)%7 + 1,
			WaitStrategy:   flags.WaitSpinYield,
			UseEpochTables: epochBit%2 == 0,
			Executor:       exec,
		}
		rt := NewRuntime(l.Data, opts)
		defer rt.Close()
		// Two runs back to back: the second exercises the schedule cache and
		// the reused block buffers.
		for run := 0; run < 2; run++ {
			par := make([][]float64, nrhs)
			for c := range ys {
				par[c] = append([]float64(nil), ys[c]...)
			}
			rep, err := rt.RunMulti(context.Background(), l, par)
			if err != nil {
				t.Logf("executor %v run %d: %v", exec, run, err)
				return false
			}
			if rep.NRHS != nrhs {
				t.Logf("executor %v: NRHS=%d, want %d", exec, rep.NRHS, nrhs)
				return false
			}
			for c := range ys {
				if sparse.VecMaxDiff(want[c], par[c]) != 0 {
					t.Logf("executor %v run %d: column %d differs from sequential", exec, run, c)
					return false
				}
			}
		}
		// The same runtime still runs the scalar path correctly after multi
		// runs (shared scratch must be restored).
		par := append([]float64(nil), y...)
		if _, err := rt.Run(l, par); err != nil {
			t.Logf("scalar run after multi: %v", err)
			return false
		}
		seq := append([]float64(nil), y...)
		mustRunSequential(t, l, seq)
		if sparse.VecMaxDiff(seq, par) != 0 {
			t.Log("scalar run after multi differs from sequential")
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestRunMultiSplitsWideBlocks drives more columns than MaxRHSBlock through
// one RunMulti call and checks that the block split is invisible to the
// caller and that ColOffset gives the body its absolute column index: the
// body folds in a per-column external term indexed by ColOffset()+c, which
// only comes out right if every block knows where it starts.
func TestRunMultiSplitsWideBlocks(t *testing.T) {
	const n = 64
	nrhs := MaxRHSBlock + MaxRHSBlock/2 + 3
	ext := make([]float64, nrhs)
	for c := range ext {
		ext[c] = float64(c) * 0.125
	}
	// A simple chain: iteration i reads element i-1.
	l := &Loop{
		N:    n,
		Data: n,
		Writes: func(i int) []int {
			return []int{i}
		},
		Reads: func(i int) []int {
			if i == 0 {
				return nil
			}
			return []int{i - 1}
		},
		BodyMulti: func(i int, v *MultiValues) {
			out := v.Row(i)
			if i == 0 {
				for c := range out {
					out[c] = ext[v.ColOffset()+c]
				}
				return
			}
			prev := v.LoadRow(i - 1)
			for c := range out {
				out[c] = 0.5*prev[c] + ext[v.ColOffset()+c]
			}
		},
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, exec := range []ExecutorKind{ExecDoacross, ExecWavefront, ExecWavefrontDynamic, ExecAuto} {
		rt := NewRuntime(n, Options{Workers: 4, Executor: exec})
		ys := make([][]float64, nrhs)
		for c := range ys {
			ys[c] = make([]float64, n)
		}
		rep, err := rt.RunMulti(context.Background(), l, ys)
		if err != nil {
			rt.Close()
			t.Fatalf("executor %v: %v", exec, err)
		}
		if rep.NRHS != nrhs {
			t.Errorf("executor %v: NRHS=%d, want %d", exec, rep.NRHS, nrhs)
		}
		for c := range ys {
			want := 0.0
			for i := 0; i < n; i++ {
				want = 0.5*want + ext[c]
				if i == 0 {
					want = ext[c]
				}
				if ys[c][i] != want {
					t.Fatalf("executor %v: column %d element %d = %v, want %v", exec, c, i, ys[c][i], want)
				}
			}
		}
		rt.Close()
	}
}

// TestRunMultiValidation covers the argument checks of the multi entry
// points: missing columns, short columns, a loop without a multi body, and an
// order length mismatch all fail up front with descriptive errors.
func TestRunMultiValidation(t *testing.T) {
	l := &Loop{
		N:    4,
		Data: 4,
		Writes: func(i int) []int {
			return []int{i}
		},
		BodyMulti: func(i int, v *MultiValues) {
			out := v.Row(i)
			for c := range out {
				out[c] = 1
			}
		},
	}
	rt := NewRuntime(4, Options{Workers: 2})
	defer rt.Close()
	ctx := context.Background()

	if _, err := rt.RunMulti(ctx, l, nil); err == nil {
		t.Error("RunMulti with no columns: want error")
	}
	if _, err := rt.RunMulti(ctx, l, [][]float64{make([]float64, 4), make([]float64, 3)}); err == nil {
		t.Error("RunMulti with a short column: want error")
	}
	scalar := &Loop{N: 4, Data: 4, Writes: l.Writes, Body: func(i int, v *Values) { v.Store(i, 1) }}
	if _, err := rt.RunMulti(ctx, scalar, [][]float64{make([]float64, 4)}); err == nil {
		t.Error("RunMulti without BodyMulti: want error")
	}
	if err := RunSequentialMulti(scalar, [][]float64{make([]float64, 4)}); err == nil {
		t.Error("RunSequentialMulti without BodyMulti: want error")
	}
	if err := RunSequentialMulti(l, nil); err == nil {
		t.Error("RunSequentialMulti with no columns: want error")
	}
	wide := &Loop{N: 4, Data: 8, Writes: l.Writes, BodyMulti: l.BodyMulti}
	big := NewRuntime(4, Options{Workers: 1})
	defer big.Close()
	if _, err := big.RunMulti(ctx, wide, [][]float64{make([]float64, 8)}); err == nil {
		t.Error("RunMulti beyond runtime capacity: want error")
	}
	ort := NewRuntime(4, Options{Workers: 1, Order: []int{0, 1}})
	defer ort.Close()
	if _, err := ort.RunMulti(ctx, l, [][]float64{make([]float64, 4)}); err == nil {
		t.Error("RunMulti with wrong-length order: want error")
	}

	// A loop with only BodyMulti validates, but the scalar entry points
	// reject it.
	if err := l.Validate(); err != nil {
		t.Errorf("BodyMulti-only loop should validate: %v", err)
	}
	if _, err := rt.Run(l, make([]float64, 4)); err == nil {
		t.Error("scalar Run of a BodyMulti-only loop: want error")
	}
}

// TestRunMultiFailureAndCancellation checks the abort paths of the multi
// executor body: a Fail reported by one iteration aborts the whole run and
// surfaces first-error semantics, and a context cancelled mid-run aborts with
// the context's error. The runtime stays reusable after both.
func TestRunMultiFailureAndCancellation(t *testing.T) {
	bang := errors.New("bang")
	n := 48
	l := &Loop{
		N:    n,
		Data: n,
		Writes: func(i int) []int {
			return []int{i}
		},
		Reads: func(i int) []int {
			if i == 0 {
				return nil
			}
			return []int{i - 1}
		},
	}
	l.BodyMulti = func(i int, v *MultiValues) {
		if i == n/2 {
			v.Fail(bang)
			return
		}
		out := v.Row(i)
		for c := range out {
			if i > 0 {
				out[c] = v.LoadRow(i - 1)[c] + 1
			} else {
				out[c] = 1
			}
		}
	}
	for _, exec := range []ExecutorKind{ExecDoacross, ExecWavefront, ExecWavefrontDynamic} {
		rt := NewRuntime(n, Options{Workers: 4, Executor: exec})
		ys := [][]float64{make([]float64, n), make([]float64, n)}
		if _, err := rt.RunMulti(context.Background(), l, ys); !errors.Is(err, bang) {
			t.Errorf("executor %v: got %v, want %v", exec, err, bang)
		}
		if !rt.ScratchClean() {
			t.Errorf("executor %v: scratch dirty after failed multi run", exec)
		}
		rt.Close()
	}

	// Cancellation from within a body: the watcher aborts the run.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cl := &Loop{N: n, Data: n, Writes: l.Writes, Reads: l.Reads}
	cl.BodyMulti = func(i int, v *MultiValues) {
		if i == n/3 {
			cancel()
		}
		out := v.Row(i)
		if i > 0 {
			prev := v.LoadRow(i - 1)
			for c := range out {
				out[c] = prev[c] + 1
			}
		}
	}
	rt := NewRuntime(n, Options{Workers: 4, WaitStrategy: flags.WaitSpinYield})
	defer rt.Close()
	ys := [][]float64{make([]float64, n)}
	if _, err := rt.RunMulti(ctx, cl, ys); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled multi run: got %v, want context.Canceled", err)
	}
	// An already-cancelled context fails before any work.
	if _, err := rt.RunMulti(ctx, cl, ys); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled multi run: got %v, want context.Canceled", err)
	}
}

// TestRunMultiAccessCheck verifies the declared-access sanitizer covers the
// multi path: an undeclared LoadRow and an undeclared Row are both caught
// with an *AccessError naming the offending element.
func TestRunMultiAccessCheck(t *testing.T) {
	n := 16
	// Data has one spare element (index n) no iteration writes, so the
	// deliberately misdeclared Store below is a sanitizer violation without
	// being an actual concurrent write to contended memory.
	base := func() *Loop {
		return &Loop{
			N:    n,
			Data: n + 1,
			Writes: func(i int) []int {
				return []int{i}
			},
			Reads: func(i int) []int {
				if i == 0 {
					return nil
				}
				return []int{i - 1}
			},
		}
	}
	undeclaredRead := base()
	undeclaredRead.BodyMulti = func(i int, v *MultiValues) {
		out := v.Row(i)
		if i == n-1 {
			_ = v.LoadRow(0) // not declared for this iteration
		}
		for c := range out {
			out[c] = 1
		}
	}
	undeclaredWrite := base()
	undeclaredWrite.BodyMulti = func(i int, v *MultiValues) {
		out := v.Row(i)
		for c := range out {
			out[c] = 1
		}
		if i == n-1 {
			v.Store(n, 0, 99) // element n is not this iteration's write target
		}
	}
	for name, l := range map[string]*Loop{"read": undeclaredRead, "write": undeclaredWrite} {
		rt := NewRuntime(n+1, Options{Workers: 2, AccessCheck: true})
		ys := [][]float64{make([]float64, n+1), make([]float64, n+1), make([]float64, n+1)}
		_, err := rt.RunMulti(context.Background(), l, ys)
		var ae *AccessError
		if !errors.As(err, &ae) {
			t.Errorf("undeclared %s: got %v, want *AccessError", name, err)
		}
		rt.Close()
	}

	// No false positive on a correctly declared loop.
	ok := base()
	ok.BodyMulti = func(i int, v *MultiValues) {
		out := v.Row(i)
		for c := range out {
			if i > 0 {
				out[c] = v.LoadRow(i - 1)[c] + 1
			} else {
				out[c] = 1
			}
		}
	}
	rt := NewRuntime(n+1, Options{Workers: 2, AccessCheck: true})
	defer rt.Close()
	ys := [][]float64{make([]float64, n+1)}
	if _, err := rt.RunMulti(context.Background(), ok, ys); err != nil {
		t.Errorf("declared loop: unexpected %v", err)
	}
}

// TestPredictNAmortizesFixedOverheads pins the shape of the cost model's nrhs
// term: the per-iteration work scales with the column count while barriers,
// flag maintenance and claims do not, so the wavefront's fixed L*BarrierNs is
// amortized and the doacross's stall rounds grow. Predict must remain exactly
// PredictN at one column.
func TestPredictNAmortizesFixedOverheads(t *testing.T) {
	st := InspectStats{
		Iterations:      256,
		Edges:           255,
		StallWeight:     64,
		Levels:          64,
		CriticalPathLen: 64,
		ScheduleRounds:  64,
		DynamicClaims:   96,
	}
	c := AutoCosts{BarrierNs: 40, FlagCheckNs: 1, ClaimNs: 2, IterNs: 3}
	da1, wf1, dyn1 := c.Predict(st, 4)
	pa1, pw1, pd1 := c.PredictN(st, 4, 1)
	if da1 != pa1 || wf1 != pw1 || dyn1 != pd1 {
		t.Fatalf("Predict (%v,%v,%v) != PredictN(...,1) (%v,%v,%v)", da1, wf1, dyn1, pa1, pw1, pd1)
	}
	da32, wf32, dyn32 := c.PredictN(st, 4, 32)
	// Work terms scale: every estimate grows with nrhs.
	if da32 <= da1 || wf32 <= wf1 || dyn32 <= dyn1 {
		t.Fatalf("estimates did not grow with nrhs: (%v,%v,%v) -> (%v,%v,%v)", da1, wf1, dyn1, da32, wf32, dyn32)
	}
	// Fixed overheads amortize: the wavefront's advantage over the doacross
	// must improve with nrhs (the barrier term is constant while the
	// doacross's stall rounds are charged a full column-scaled iteration).
	if wf32-da32 >= wf1-da1 {
		t.Fatalf("wavefront did not gain on doacross with nrhs: margin %v -> %v", wf1-da1, wf32-da32)
	}
	// And per-column cost drops for the barrier-bound wavefront.
	if wf32/32 >= wf1 {
		t.Fatalf("per-column wavefront estimate did not amortize: %v/col at 32 vs %v at 1", wf32/32, wf1)
	}
	// nrhs below one clamps to one.
	if a, b, d := c.PredictN(st, 4, 0); a != da1 || b != wf1 || d != dyn1 {
		t.Fatalf("PredictN(...,0) != PredictN(...,1)")
	}
}

// stallChainLoop builds the flip test's loop: depth levels of width equal to
// the worker count, where each level's first iteration depends on the
// previous iteration at distance 1 (a stall the doacross pays and the
// wavefront's barrier absorbs), and the rest of the level depends at distance
// width (fully pipelined). Both scalar and multi bodies are defined.
func stallChainLoop(width, depth int) *Loop {
	n := width * depth
	reads := make([][]int, n)
	for i := range reads {
		if i >= width {
			reads[i] = []int{i - width}
		}
		if i%width == 0 && i > 0 {
			reads[i] = []int{i - 1}
		}
	}
	l := &Loop{
		N:    n,
		Data: n,
		Writes: func(i int) []int {
			return []int{i}
		},
		Reads: func(i int) []int { return reads[i] },
		Body: func(i int, v *Values) {
			s := 1.0
			for _, e := range reads[i] {
				s += v.Load(e)
			}
			v.Store(i, s)
		},
	}
	l.BodyMulti = func(i int, v *MultiValues) {
		out := v.Row(i)
		for c := range out {
			out[c] = 1
		}
		for _, e := range reads[i] {
			row := v.LoadRow(e)
			for c := range out {
				out[c] += row[c]
			}
		}
	}
	return l
}

// TestAutoFlipsWithBlockWidth is the acceptance test of the nrhs-aware Auto
// selection: with coefficients whose barrier cost dominates at one column,
// Auto runs the scalar solve as a doacross, and the same loop on the same
// runtime as a wide RunMulti block as a wavefront — the model's predicted
// flip realized end to end.
func TestAutoFlipsWithBlockWidth(t *testing.T) {
	const workers = 4
	l := stallChainLoop(workers, 64)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	costs := AutoCosts{BarrierNs: 5, FlagCheckNs: 1, IterNs: 2}
	rt := NewRuntime(l.N, Options{Workers: workers, Executor: ExecAuto, AutoCosts: costs})
	defer rt.Close()

	st, err := rt.Inspect(l)
	if err != nil {
		t.Fatal(err)
	}
	// Guard: the model itself must flip between 1 and MaxRHSBlock columns for
	// this loop and these coefficients, or the end-to-end assertion below is
	// vacuous.
	if pick := autoChoose(st, workers, 1, costs); pick != ExecDoacross {
		da, wf, dyn := costs.PredictN(st, workers, 1)
		t.Fatalf("model picks %v at nrhs=1 (da=%v wf=%v dyn=%v); the flip test needs doacross", pick, da, wf, dyn)
	}
	if pick := autoChoose(st, workers, MaxRHSBlock, costs); pick != ExecWavefront {
		da, wf, dyn := costs.PredictN(st, workers, MaxRHSBlock)
		t.Fatalf("model picks %v at nrhs=%d (da=%v wf=%v dyn=%v); the flip test needs wavefront", pick, MaxRHSBlock, da, wf, dyn)
	}

	y := make([]float64, l.N)
	rep, err := rt.Run(l, y)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Executor != "doacross" {
		t.Errorf("scalar Auto run used %q, want doacross", rep.Executor)
	}

	ys := make([][]float64, MaxRHSBlock)
	for c := range ys {
		ys[c] = make([]float64, l.N)
	}
	mrep, err := rt.RunMulti(context.Background(), l, ys)
	if err != nil {
		t.Fatal(err)
	}
	if mrep.Executor != "wavefront" {
		t.Errorf("multi Auto run used %q, want wavefront", mrep.Executor)
	}
	if mrep.PredictedWavefrontNs >= mrep.PredictedDoacrossNs {
		t.Errorf("multi report predictions do not support the pick: wf=%v da=%v",
			mrep.PredictedWavefrontNs, mrep.PredictedDoacrossNs)
	}
	// The multi result must still be correct after the flip.
	seq := make([][]float64, 1)
	seq[0] = make([]float64, l.N)
	if err := RunSequentialMulti(l, seq); err != nil {
		t.Fatal(err)
	}
	for c := range ys {
		if sparse.VecMaxDiff(seq[0], ys[c]) != 0 {
			t.Fatalf("column %d differs from sequential after Auto flip", c)
		}
	}
}

// TestRunMultiCountersAndSchedules runs the multi path under the Dynamic
// scheduling policy and checks the aggregated dependency counters are
// reported: one classification per element row, regardless of the column
// count.
func TestRunMultiCountersAndSchedules(t *testing.T) {
	l := stallChainLoop(4, 16)
	rt := NewRuntime(l.N, Options{Workers: 3, Policy: sched.Dynamic, Chunk: 2})
	defer rt.Close()
	ys := make([][]float64, 8)
	for c := range ys {
		ys[c] = make([]float64, l.N)
	}
	rep, err := rt.RunMulti(context.Background(), l, ys)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TrueDeps+rep.SelfDeps+rep.AntiOrNone == 0 {
		t.Error("multi report carries no dependency counters")
	}
	// Each read is classified once per row, not once per column: the total
	// classifications cannot exceed the loop's read count.
	reads := 0
	for i := 0; i < l.N; i++ {
		reads += len(l.Reads(i))
	}
	if got := rep.TrueDeps + rep.SelfDeps + rep.AntiOrNone; got > int64(reads) {
		t.Errorf("%d classifications for %d reads: rows are being classified per column", got, reads)
	}
}
