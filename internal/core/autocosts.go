package core

import (
	"sync/atomic"
	"time"

	"doacross/internal/flags"
)

// AutoCosts are the coefficients of the Auto executor's calibrated cost
// model. The unit is nominally nanoseconds (what the live self-calibration
// probe measures), but only ratios matter for the selection, so the
// simulator-side experiments feed the Figure 6 cost-model constants in
// straight.
//
// The model estimates the executor-phase time of both strategies from the
// inspection statistics (see Predict) and picks the cheaper one. Zero-valued
// coefficients mean "calibrate on first use": the runtime micro-times one
// level-barrier rendezvous on its live pool and one iter-table/ready-flag
// operation, once per Runtime.
type AutoCosts struct {
	// BarrierNs is the cost of one level-barrier rendezvous at the runtime's
	// worker count — what the wavefront executor pays once per level.
	BarrierNs float64
	// FlagCheckNs is the cost of one flag-table operation: the iter-table
	// lookup-and-branch of the paper's Figure 5, and (taken as the same
	// order) the table writes the doacross pays per element in its
	// inspector, executor and postprocessor.
	FlagCheckNs float64
	// IterNs is an optional estimate of one iteration's useful work. The
	// probe cannot know the body's cost, so it defaults to zero — the
	// overhead-bound regime, which is where executor choice matters most.
	// Callers whose bodies are heavy can supply it (WithAutoCosts) to credit
	// the doacross's cross-level pipelining against the wavefront's
	// barrier-rounded schedule.
	IterNs float64
}

// valid reports whether the coefficients are usable for a decision.
func (c AutoCosts) valid() bool { return c.BarrierNs > 0 && c.FlagCheckNs > 0 }

// Predict estimates the executor-phase time of both strategies for a loop
// with the given inspection statistics on the given worker count, in the
// coefficients' time unit. The model (writing N, E, W, L for iterations,
// edges, stall weight, levels, and P for workers, with r = E/N the mean
// true-dependency reads per iteration):
//
//	rounds_da = max(ceil(N/P), L) + W/P
//	rounds_wf = ScheduleRounds = Σ_l ceil(w_l/P)
//
//	T_doacross  = rounds_da * (IterNs + (r+3)*FlagCheckNs)
//	T_wavefront = rounds_wf * (IterNs + r*FlagCheckNs) + L*BarrierNs
//
// The doacross executes in rounds bounded below by both the work
// distribution (ceil(N/P)) and the critical path (L), plus the stalls its
// short-distance dependencies inject (InspectStats.StallWeight — the stalls
// the paper's doconsider reordering removes by lengthening distances). Each
// doacross round costs the iteration's work plus one flag check per
// dependency read and roughly three table writes (inspector record, ready
// set, postprocess reset). The wavefront executes the level schedule's
// barrier-rounded depth (rounds_wf ≥ max(ceil(N/P), L): levels cannot
// pipeline, and widths round up per level), pays the classify per read but
// no table maintenance and no waits, and adds one full barrier per level.
//
// With the default IterNs = 0 the comparison is purely between
// synchronization overheads, and for a fixed shape the choice flips exactly
// where the BarrierNs/FlagCheckNs ratio crosses
//
//	(rounds_da*(r+3) - rounds_wf*r) / L
func (c AutoCosts) Predict(st InspectStats, workers int) (tDoacross, tWavefront float64) {
	p := workers
	if p < 1 {
		p = 1
	}
	n := st.Iterations
	if n == 0 {
		return 0, 0
	}
	workRounds := (n + p - 1) / p
	bound := workRounds
	if st.CriticalPathLen > bound {
		bound = st.CriticalPathLen
	}
	daRounds := float64(bound) + st.StallWeight/float64(p)
	minWfRounds := workRounds
	if st.Levels > minWfRounds {
		minWfRounds = st.Levels
	}
	wfRounds := st.ScheduleRounds
	if wfRounds < minWfRounds {
		// Stats from a source that did not fill ScheduleRounds: the level
		// schedule can never be shallower than either bound.
		wfRounds = minWfRounds
	}
	r := float64(st.Edges) / float64(n)
	tDoacross = daRounds * (c.IterNs + (r+3)*c.FlagCheckNs)
	tWavefront = float64(wfRounds)*(c.IterNs+r*c.FlagCheckNs) + float64(st.Levels)*c.BarrierNs
	return tDoacross, tWavefront
}

// wavefrontProfitable is the Auto selection: a single barrier-free level (a
// doall, or an empty loop) always pre-schedules; otherwise the calibrated
// cost model decides.
func wavefrontProfitable(st InspectStats, workers int, costs AutoCosts) bool {
	if st.Levels <= 1 {
		return true
	}
	tda, twf := costs.Predict(st, workers)
	return twf < tda
}

// autoCostsFor returns the coefficients the Auto selection uses: the ones
// configured through Options.AutoCosts when set, otherwise the probe's
// measurements, taken once per Runtime and memoized.
func (rt *Runtime) autoCostsFor() AutoCosts {
	if rt.autoCosts.valid() {
		return rt.autoCosts
	}
	if rt.opts.AutoCosts.valid() {
		rt.autoCosts = rt.opts.AutoCosts
	} else {
		rt.autoCosts = measureAutoCosts(rt)
	}
	return rt.autoCosts
}

// Probe sizes: small enough that the one-time calibration costs well under a
// millisecond, large enough that the per-operation times are averaged over
// thousands of operations.
const (
	probeBarriers  = 256
	probeFlagElems = 1024
	probeFlagReps  = 16
)

// probeSink keeps the flag-probe loop observable so the compiler cannot
// delete it. Updated atomically: distinct Runtimes may calibrate
// concurrently (each holds only its own run mutex).
var probeSink atomic.Int64

// measureAutoCosts is the self-calibration probe: it micro-times one level
// barrier on the runtime's live pool at its configured worker count (all
// workers spinning back-to-back through probeBarriers rendezvous, exactly
// the wavefront executor's steady state) and one flag-table operation
// (averaged over the record/classify/set/check/reset/clear cycle the
// doacross performs per element, on tables of the doacross's own types).
func measureAutoCosts(rt *Runtime) AutoCosts {
	k := rt.opts.Workers
	if k < 1 {
		k = 1
	}
	bar := phaseBarrier{n: int32(k)}
	start := time.Now()
	rt.pool.Submit(k, func(w int) {
		for r := 0; r < probeBarriers; r++ {
			bar.wait(nil)
		}
	})
	barrierNs := float64(time.Since(start).Nanoseconds()) / probeBarriers

	tab := flags.NewIterTable(probeFlagElems)
	ready := flags.NewReadyFlags(probeFlagElems)
	var sink int64
	start = time.Now()
	for rep := 0; rep < probeFlagReps; rep++ {
		for e := 0; e < probeFlagElems; e++ {
			tab.Record(e, e)
			dep, w := tab.Classify(e, e+1)
			sink += int64(dep) + w
			ready.Set(e)
			if ready.IsDone(e) {
				sink++
			}
			tab.Reset(e)
			ready.Clear(e)
		}
	}
	flagNs := float64(time.Since(start).Nanoseconds()) / float64(6*probeFlagReps*probeFlagElems)
	probeSink.Add(sink)

	// Clock-resolution floors: a decision needs positive coefficients even
	// on hosts whose timer cannot resolve a single rendezvous.
	if barrierNs < 1 {
		barrierNs = 1
	}
	if flagNs < 0.25 {
		flagNs = 0.25
	}
	return AutoCosts{BarrierNs: barrierNs, FlagCheckNs: flagNs}
}
