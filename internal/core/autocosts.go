package core

import (
	"sync/atomic"
	"time"

	"doacross/internal/flags"
	"doacross/internal/machine"
	"doacross/internal/sched"
	"doacross/internal/tune"
)

// AutoCosts are the coefficients of the Auto executor's calibrated cost
// model. The unit is nominally nanoseconds (what the live self-calibration
// probe measures), but only ratios matter for the selection, so the
// simulator-side experiments feed the Figure 6 cost-model constants in
// straight.
//
// The model estimates the executor-phase time of all three strategies from
// the inspection statistics (see Predict) and picks the cheapest one.
// Zero-valued BarrierNs/FlagCheckNs mean "calibrate on first use": the
// runtime micro-times one level-barrier rendezvous, one iter-table/ready-flag
// operation and one dynamic chunk claim on its live pool, once per Runtime.
type AutoCosts struct {
	// BarrierNs is the cost of one level-barrier rendezvous at the runtime's
	// worker count — what both wavefront executors pay once per level.
	BarrierNs float64
	// FlagCheckNs is the cost of one flag-table operation: the iter-table
	// lookup-and-branch of the paper's Figure 5, and (taken as the same
	// order) the table writes the doacross pays per element in its
	// inspector, executor and postprocessor.
	FlagCheckNs float64
	// ClaimNs is the cost of one dynamic chunk claim: the contended atomic
	// fetch-add of the self-scheduling loop, what the dynamic within-level
	// wavefront pays per chunk (plus one failed claim per worker per level).
	// Zero means no claim coefficient is available — the dynamic executor is
	// then excluded from the comparison (Predict reports zero for it), which
	// keeps decisions from coefficients configured before the dynamic
	// executor existed exactly two-way. The self-calibration probe always
	// measures it.
	ClaimNs float64
	// IterNs is an optional estimate of one iteration's useful work. The
	// probe cannot know the body's cost, so it defaults to zero — the
	// overhead-bound regime, which is where executor choice matters most.
	// Callers whose bodies are heavy can supply it (WithAutoCosts) to credit
	// the doacross's cross-level pipelining against the wavefront's
	// barrier-rounded schedule.
	IterNs float64
}

// valid reports whether the coefficients are usable for a decision.
func (c AutoCosts) valid() bool { return c.BarrierNs > 0 && c.FlagCheckNs > 0 }

// Predict estimates the executor-phase time of all three strategies for a
// loop with the given inspection statistics on the given worker count, in the
// coefficients' time unit. The model (writing N, E, W, L for iterations,
// edges, stall weight, levels, and P for workers, with r = E/N the mean
// true-dependency reads per iteration):
//
//	rounds_da = max(ceil(N/P), L) + W/P
//	rounds_wf = ScheduleRounds = Σ_l ceil(w_l/P)
//
//	T_doacross = rounds_da * (IterNs + (r+3)*FlagCheckNs)
//	T_static   = rounds_wf * (IterNs + r*FlagCheckNs) + L*BarrierNs
//	           + ReadImbalance * (FlagCheckNs + IterNs/(r+1))
//	T_dynamic  = rounds_wf * (IterNs + r*FlagCheckNs) + L*BarrierNs
//	           + DynamicClaims * ClaimNs
//
// The doacross executes in rounds bounded below by both the work
// distribution (ceil(N/P)) and the critical path (L), plus the stalls its
// short-distance dependencies inject (InspectStats.StallWeight — the stalls
// the paper's doconsider reordering removes by lengthening distances). Each
// doacross round costs the iteration's work plus one flag check per
// dependency read and roughly three table writes (inspector record, ready
// set, postprocess reset).
//
// Both wavefront strategies execute the level schedule's barrier-rounded
// depth (rounds_wf ≥ max(ceil(N/P), L): levels cannot pipeline, and widths
// round up per level), pay the classify per read but no table maintenance
// and no waits, and add one full barrier per level. They differ in how
// per-iteration cost variance lands: the static schedule assigns a level's
// members without regard to their cost, so the extra read terms its slowest
// worker executes beyond a balanced split (InspectStats.ReadImbalance) are
// charged at one read term's cost — the classify plus the read's share of
// the iteration work, IterNs/(r+1), distributing IterNs over the base term
// and r reads. The dynamic executor self-schedules the level and absorbs
// that imbalance, paying instead one ClaimNs per chunk claim
// (InspectStats.DynamicClaims; when the stats carry no claim count, it is
// estimated as ceil(N/DefaultChunk) + L*P). Dynamic beats static exactly
// when the imbalance it reclaims exceeds the claim overhead it adds.
//
// tDynamic is zero — "not considered" — when ClaimNs is zero; see ClaimNs.
//
// With the default IterNs = 0, balanced levels (ReadImbalance = 0) and the
// dynamic excluded, the comparison reduces to the two-way overhead model of
// the static wavefront: for a fixed shape the choice flips exactly where the
// BarrierNs/FlagCheckNs ratio crosses
//
//	(rounds_da*(r+3) - rounds_wf*r) / L
func (c AutoCosts) Predict(st InspectStats, workers int) (tDoacross, tWavefront, tDynamic float64) {
	return c.PredictN(st, workers, 1)
}

// PredictN is Predict for a blocked multi-RHS traversal carrying nrhs
// right-hand-side columns (Runtime.RunMulti): the useful work of every
// iteration scales by the column count — IterNs becomes nrhs*IterNs
// throughout — while the traversal's overheads (flag maintenance, level
// barriers, chunk claims) are paid once per block regardless of width, since
// one classification covers a whole element row and the dependency structure
// is unchanged. That asymmetry is what can flip the pick as nrhs grows: the
// doacross's stall rounds (the critical-path and StallWeight terms) each cost
// a full column-scaled iteration, while the wavefront's L*BarrierNs stays
// fixed and is amortized across the block — so barrier-dominated wavefronts
// that lose at nrhs = 1 win at moderate block widths. nrhs below 1 is treated
// as 1; Predict(st, p) == PredictN(st, p, 1).
func (c AutoCosts) PredictN(st InspectStats, workers, nrhs int) (tDoacross, tWavefront, tDynamic float64) {
	// The formula itself lives in the leaf tune package: the online tuner
	// back-solves it and machine.SimulateTuning replays it, so keeping a
	// single definition is what guarantees the live selection, the
	// calibration and the simulated trajectories can never disagree.
	return tune.Predict(tune.Coeffs(c), st.tuneStats(), workers, nrhs)
}

// tuneStats projects the inspection statistics onto the cost model's inputs
// (tune.Stats) — the subset Predict and the tuner's back-solver consume.
func (st InspectStats) tuneStats() tune.Stats {
	return tune.Stats{
		Iterations:      st.Iterations,
		Edges:           st.Edges,
		StallWeight:     st.StallWeight,
		Levels:          st.Levels,
		CriticalPathLen: st.CriticalPathLen,
		ScheduleRounds:  st.ScheduleRounds,
		ReadImbalance:   st.ReadImbalance,
		DynamicClaims:   st.DynamicClaims,
	}
}

// autoChoose is the Auto selection: a single barrier-free level (a doall, or
// an empty loop) always pre-schedules statically (a dynamic run of one level
// would only add claim traffic); otherwise the calibrated cost model picks
// the cheapest of the three strategies for a traversal carrying nrhs
// right-hand-side columns (1 for scalar runs), with the dynamic considered
// only when a claim coefficient is available (PredictN returns zero for it
// otherwise).
func autoChoose(st InspectStats, workers, nrhs int, costs AutoCosts) ExecutorKind {
	if st.Levels <= 1 {
		return ExecWavefront
	}
	tda, twf, tdyn := costs.PredictN(st, workers, nrhs)
	pick, best := ExecDoacross, tda
	if twf < best {
		pick, best = ExecWavefront, twf
	}
	if tdyn > 0 && tdyn < best {
		pick = ExecWavefrontDynamic
	}
	return pick
}

// Choose replays the Auto selection offline: the executor an ExecAuto runtime
// with these coefficients would pick for a loop with the given inspection
// statistics, worker count and right-hand-side block width. It exists for
// diagnosis tools (doastat) that want to report the pick next to the three
// PredictN estimates without building a runtime.
func (c AutoCosts) Choose(st InspectStats, workers, nrhs int) ExecutorKind {
	return autoChoose(st, workers, nrhs, c)
}

// PredictRepair prices the two ways of absorbing an in-place access-pattern
// edit: incrementally repairing the cached plan (a dirty cone of the given
// size plus a suffix rescatter, bounded by the iteration count) versus a cold
// re-inspection of the whole loop. Both estimates are in the coefficients'
// time unit, scaled by FlagCheckNs — the generic table-operation cost, the
// closest probe-measured proxy for the inspector's per-element work (1 when
// no coefficient is available). The structural ratios come from
// machine.DefaultRepairCosts, the same deterministic model the loopstat
// break-even report prints.
func (c AutoCosts) PredictRepair(iterations, edges, cone int) (repairNs, coldNs float64) {
	unit := c.FlagCheckNs
	if unit <= 0 {
		unit = 1
	}
	rc := machine.DefaultRepairCosts
	return unit * rc.Repair(cone, iterations), unit * rc.ColdInspect(iterations, edges)
}

// RepairConeBudget returns the largest dirty cone for which RepairPlans
// prefers the incremental path over falling back to a full invalidation. The
// time unit cancels out of the comparison, so the budget depends only on the
// loop's structure — which also keeps the repair gate deterministic across
// hosts.
func (c AutoCosts) RepairConeBudget(iterations, edges int) int {
	return machine.DefaultRepairCosts.BreakEvenCone(iterations, edges)
}

// autoCostsFor returns the coefficients the Auto selection uses: the ones
// configured through Options.AutoCosts when set, otherwise the probe's
// measurements, taken once per Runtime and memoized.
func (rt *Runtime) autoCostsFor() AutoCosts {
	if rt.autoCosts.valid() {
		return rt.autoCosts
	}
	if rt.opts.AutoCosts.valid() {
		rt.autoCosts = rt.opts.AutoCosts
	} else {
		rt.autoCosts = measureAutoCosts(rt)
	}
	return rt.autoCosts
}

// Probe sizes: small enough that the one-time calibration costs well under a
// millisecond, large enough that the per-operation times are averaged over
// thousands of operations.
const (
	probeBarriers  = 256
	probeFlagElems = 1024
	probeFlagReps  = 16
	probeClaims    = 2048
)

// probeSink keeps the flag-probe loop observable so the compiler cannot
// delete it. Updated atomically: distinct Runtimes may calibrate
// concurrently (each holds only its own run mutex).
var probeSink atomic.Int64

// measureAutoCosts is the self-calibration probe: it micro-times one level
// barrier on the runtime's live pool at its configured worker count (all
// workers spinning back-to-back through probeBarriers rendezvous, exactly
// the wavefront executor's steady state), one flag-table operation (averaged
// over the record/classify/set/check/reset/clear cycle the doacross performs
// per element, on tables of the doacross's own types), and one dynamic chunk
// claim (all workers draining a shared counter at chunk size 1 — the fully
// contended fetch-add the dynamic wavefront's claim loop degrades to inside
// a narrow level).
func measureAutoCosts(rt *Runtime) AutoCosts {
	k := rt.opts.Workers
	if k < 1 {
		k = 1
	}
	bar := phaseBarrier{n: int32(k)}
	start := time.Now()
	rt.pool.Submit(k, func(w int) {
		for r := 0; r < probeBarriers; r++ {
			bar.wait(nil)
		}
	})
	barrierNs := float64(time.Since(start).Nanoseconds()) / probeBarriers

	tab := flags.NewIterTable(probeFlagElems)
	ready := flags.NewReadyFlags(probeFlagElems)
	var sink int64
	start = time.Now()
	for rep := 0; rep < probeFlagReps; rep++ {
		for e := 0; e < probeFlagElems; e++ {
			tab.Record(e, e)
			dep, w := tab.Classify(e, e+1)
			sink += int64(dep) + w
			ready.Set(e)
			if ready.IsDone(e) {
				sink++
			}
			tab.Reset(e)
			ready.Clear(e)
		}
	}
	flagNs := float64(time.Since(start).Nanoseconds()) / float64(6*probeFlagReps*probeFlagElems)
	probeSink.Add(sink)

	var next atomic.Int64
	start = time.Now()
	rt.pool.Submit(k, func(w int) {
		sched.DynamicLoop(&next, probeClaims, 1, w, func(worker, pos int) {}, nil)
	})
	claimNs := float64(time.Since(start).Nanoseconds()) / probeClaims

	// Clock-resolution floors: a decision needs positive coefficients even
	// on hosts whose timer cannot resolve a single rendezvous.
	if barrierNs < 1 {
		barrierNs = 1
	}
	if flagNs < 0.25 {
		flagNs = 0.25
	}
	if claimNs < 0.25 {
		claimNs = 0.25
	}
	return AutoCosts{BarrierNs: barrierNs, FlagCheckNs: flagNs, ClaimNs: claimNs}
}
