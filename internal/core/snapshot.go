package core

import (
	"fmt"

	"doacross/internal/depgraph"
	"doacross/internal/sched"
)

// PlanSnapshot is a self-contained copy of one wavefront plan — the artifact
// the inspector builds and the schedule cache retains, frozen for export,
// diffing or offline diagnosis. Every slice is owned by the snapshot: the
// runtime may keep running, repairing and invalidating the live plan without
// disturbing it. The export package serializes snapshots to the versioned
// JSON plan document and to DOT.
type PlanSnapshot struct {
	// Iterations and Data are the loop's dimensions.
	Iterations int
	// Data is the loop's data-array length (the writer index's domain).
	Data int
	// Workers is the schedule worker count: the runtime's workers clamped to
	// the widest level.
	Workers int
	// Writer is the dense writer index: Writer[e] is the iteration writing
	// element e, -1 if none.
	Writer []int32
	// Preds is the true-dependency graph's predecessor lists: Preds[i] are
	// the iterations that must complete before iteration i (ascending).
	Preds [][]int32
	// Levels is the wavefront decomposition in CSR form.
	Levels depgraph.LevelSet
	// Schedule is the level-sorted static schedule the static wavefront
	// executor would run, materialized under the runtime's policy.
	Schedule *sched.LevelSchedule
	// Policy is the scheduling policy the runtime distributes levels with
	// (the schedule itself records the policy actually used — Dynamic
	// degrades to Cyclic there).
	Policy sched.Policy
	// Stats are the plan's inspection statistics, CacheHit reporting whether
	// this snapshot's lookup was answered by the schedule cache.
	Stats InspectStats
}

// PlanSnapshot resolves the loop's wavefront plan through the schedule cache
// (building it cold on a miss, exactly as a wavefront run would) and returns
// a deep copy of it. The loop must declare Reads — without them no dependency
// graph exists to snapshot — and the runtime must run in natural order
// (Options.Order unset), the same structural requirements the wavefront
// executors enforce. Like every stateful entry point it serializes with runs
// on the runtime's mutex.
func (rt *Runtime) PlanSnapshot(l *Loop) (*PlanSnapshot, error) {
	if l == nil {
		return nil, fmt.Errorf("core: PlanSnapshot requires a loop")
	}
	if l.Reads == nil {
		return nil, fmt.Errorf("core: PlanSnapshot requires Loop.Reads to build the dependency graph")
	}
	if rt.opts.Order != nil {
		return nil, fmt.Errorf("core: PlanSnapshot reflects natural-order plans and cannot honor Options.Order")
	}
	rt.runMu.Lock()
	defer rt.runMu.Unlock()
	plan, cached, err := rt.wavefrontPlan(l)
	if err != nil {
		return nil, err
	}
	preds := make([][]int32, len(plan.graph.Preds))
	for i, ps := range plan.graph.Preds {
		if len(ps) > 0 {
			preds[i] = append([]int32(nil), ps...)
		}
	}
	stats := plan.stats
	stats.CacheHit = cached
	return &PlanSnapshot{
		Iterations: plan.n,
		Data:       plan.data,
		Workers:    plan.workers,
		Writer:     append([]int32(nil), plan.writer...),
		Preds:      preds,
		Levels: depgraph.LevelSet{
			Level:   append([]int32(nil), plan.levels.Level...),
			Members: append([]int32(nil), plan.levels.Members...),
			Off:     append([]int32(nil), plan.levels.Off...),
		},
		Schedule: plan.staticSchedule(rt.opts.Policy).Clone(),
		Policy:   rt.opts.Policy,
		Stats:    stats,
	}, nil
}
