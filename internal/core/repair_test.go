package core

import (
	"math"
	"math/rand"
	"testing"
)

// randGatherIdx fills idx with a random gather pattern for gatherLoop:
// iteration i either reads the input region (n+i, a root) or an earlier
// iteration j < i (a true dependency).
func randGatherIdx(rng *rand.Rand, idx []int, n int) {
	for i := range idx {
		if i == 0 || rng.Intn(3) == 0 {
			idx[i] = n + i
		} else {
			idx[i] = rng.Intn(i)
		}
	}
}

// gatherRef computes the sequential reference result of gatherLoop: the
// input region [n, 2n) holds i, and y[i] = y[idx[i]] + 1 in order.
func gatherRef(n int, idx []int) []float64 {
	ref := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		ref[n+i] = float64(i)
	}
	for i := 0; i < n; i++ {
		ref[i] = ref[idx[i]] + 1
	}
	return ref
}

func runGather(t *testing.T, label string, rt *Runtime, l *Loop, n int, idx []int) Report {
	t.Helper()
	y := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		y[n+i] = float64(i)
	}
	rep, err := rt.Run(l, y)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	ref := gatherRef(n, idx)
	for i := 0; i < n; i++ {
		if y[i] != ref[i] {
			t.Fatalf("%s: y[%d] = %v, want %v", label, i, y[i], ref[i])
		}
	}
	return rep
}

// comparePlans asserts that a repaired plan is indistinguishable from the
// plan a cold inspection of the same (edited) pattern builds: writer index,
// graph, decomposition, statistics, imbalance cache and static schedule.
func comparePlans(t *testing.T, label string, got, want *wavefrontPlan) {
	t.Helper()
	if got.n != want.n || got.data != want.data || got.workers != want.workers {
		t.Fatalf("%s: plan shape n=%d data=%d workers=%d, want %d %d %d",
			label, got.n, got.data, got.workers, want.n, want.data, want.workers)
	}
	for e := range want.writer {
		if got.writer[e] != want.writer[e] {
			t.Fatalf("%s: writer[%d] = %d, want %d", label, e, got.writer[e], want.writer[e])
		}
	}
	g, w := got.graph, want.graph
	if g.Edges != w.Edges {
		t.Fatalf("%s: graph edges %d, want %d", label, g.Edges, w.Edges)
	}
	for i := 0; i < g.N; i++ {
		if len(g.Preds[i]) != len(w.Preds[i]) || len(g.Succs[i]) != len(w.Succs[i]) {
			t.Fatalf("%s: adjacency of %d diverges: preds %v vs %v, succs %v vs %v",
				label, i, g.Preds[i], w.Preds[i], g.Succs[i], w.Succs[i])
		}
		for k := range w.Preds[i] {
			if g.Preds[i][k] != w.Preds[i][k] {
				t.Fatalf("%s: Preds[%d] = %v, want %v", label, i, g.Preds[i], w.Preds[i])
			}
		}
		for k := range w.Succs[i] {
			if g.Succs[i][k] != w.Succs[i][k] {
				t.Fatalf("%s: Succs[%d] = %v, want %v", label, i, g.Succs[i], w.Succs[i])
			}
		}
	}
	if got.levels.Count() != want.levels.Count() {
		t.Fatalf("%s: %d levels, want %d", label, got.levels.Count(), want.levels.Count())
	}
	for i := 0; i < got.n; i++ {
		if got.levels.Level[i] != want.levels.Level[i] {
			t.Fatalf("%s: level[%d] = %d, want %d", label, i, got.levels.Level[i], want.levels.Level[i])
		}
	}
	for l := 0; l <= want.levels.Count(); l++ {
		if got.levels.Off[l] != want.levels.Off[l] {
			t.Fatalf("%s: Off[%d] = %d, want %d", label, l, got.levels.Off[l], want.levels.Off[l])
		}
	}
	for k := 0; k < got.n; k++ {
		if got.levels.Members[k] != want.levels.Members[k] {
			t.Fatalf("%s: Members[%d] = %d, want %d", label, k, got.levels.Members[k], want.levels.Members[k])
		}
	}
	gs, ws := got.stats, want.stats
	if gs.Iterations != ws.Iterations || gs.Edges != ws.Edges || gs.Levels != ws.Levels ||
		gs.MaxLevelWidth != ws.MaxLevelWidth || gs.CriticalPathLen != ws.CriticalPathLen ||
		gs.ScheduleRounds != ws.ScheduleRounds || gs.DynamicClaims != ws.DynamicClaims {
		t.Fatalf("%s: stats diverge:\n got %+v\nwant %+v", label, gs, ws)
	}
	if math.Abs(gs.StallWeight-ws.StallWeight) > 1e-9 {
		t.Fatalf("%s: StallWeight %v, want %v", label, gs.StallWeight, ws.StallWeight)
	}
	if math.Abs(gs.MeanLevelWidth-ws.MeanLevelWidth) > 1e-9 {
		t.Fatalf("%s: MeanLevelWidth %v, want %v", label, gs.MeanLevelWidth, ws.MeanLevelWidth)
	}
	if math.Abs(gs.ReadImbalance-ws.ReadImbalance) > 1e-9 {
		t.Fatalf("%s: ReadImbalance %v, want %v", label, gs.ReadImbalance, ws.ReadImbalance)
	}
	if (got.imb == nil) != (want.imb == nil) {
		t.Fatalf("%s: imbalance cache nil-ness diverges (%v vs %v)", label, got.imb == nil, want.imb == nil)
	}
	for l := range want.imb {
		if math.Abs(got.imb[l]-want.imb[l]) > 1e-9 {
			t.Fatalf("%s: level %d imbalance %v, want %v", label, l, got.imb[l], want.imb[l])
		}
	}
}

// TestRepairPlansPropertyAllExecutors drives random in-place edit sequences
// against every executor kind and checks after each repair that (a) the run
// result matches the sequential reference, (b) for the plan-building
// executors the patched plan is bit-identical to a cold plan of the edited
// pattern (including the lazily patched static schedule), and (c) the next
// run stamps Report.PlanRepaired.
func TestRepairPlansPropertyAllExecutors(t *testing.T) {
	execs := []struct {
		name     string
		kind     ExecutorKind
		hasPlans bool
	}{
		{"doacross", ExecDoacross, false},
		{"wavefront", ExecWavefront, true},
		{"wavefront-dynamic", ExecWavefrontDynamic, true},
		{"auto", ExecAuto, true},
	}
	for _, ex := range execs {
		ex := ex
		t.Run(ex.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(17))
			for trial := 0; trial < 4; trial++ {
				n := 48 + rng.Intn(96)
				idx := make([]int, n)
				randGatherIdx(rng, idx, n)
				l := gatherLoop(n, idx)
				opts := Options{
					Workers:  1 + rng.Intn(4),
					Executor: ex.kind,
					// Fixed coefficients keep ExecAuto deterministic and the
					// repair budget free of a calibration probe.
					AutoCosts: AutoCosts{BarrierNs: 100, FlagCheckNs: 10},
				}
				rt := NewRuntime(2*n, opts)
				runGather(t, "cold run", rt, l, n, idx)

				for step := 0; step < 6; step++ {
					// Mutate one to three iterations' gather sources in place.
					var edited []int
					for k := 1 + rng.Intn(3); k > 0; k-- {
						i := 1 + rng.Intn(n-1)
						if rng.Intn(3) == 0 {
							idx[i] = n + i
						} else {
							idx[i] = rng.Intn(i)
						}
						edited = append(edited, i, i) // duplicates must be fine
					}
					rep, err := rt.RepairPlans(l, EditSet{Iters: edited})
					if err != nil {
						t.Fatalf("trial %d step %d: RepairPlans: %v", trial, step, err)
					}
					if rep.Repaired != ex.hasPlans {
						t.Fatalf("trial %d step %d: Repaired = %v with executor %s", trial, step, rep.Repaired, ex.name)
					}

					if ex.hasPlans {
						// A cold runtime over the same edited pattern is the oracle.
						rt2 := NewRuntime(2*n, opts)
						runGather(t, "oracle cold run", rt2, l, n, idx)
						// Force both static schedules so the lazy suffix patch is exercised.
						p, p2 := rt.planMemo, rt2.planMemo
						if p == nil || p2 == nil {
							t.Fatalf("trial %d step %d: missing plan memo (repaired %v, cold %v)", trial, step, p != nil, p2 != nil)
						}
						s1 := p.staticSchedule(opts.Policy)
						s2 := p2.staticSchedule(opts.Policy)
						comparePlans(t, ex.name, p, p2)
						for lvl := 0; lvl < s2.Levels(); lvl++ {
							for w := 0; w < p2.workers; w++ {
								a, b := s1.Items(lvl, w), s2.Items(lvl, w)
								if len(a) != len(b) {
									t.Fatalf("trial %d step %d: static level %d worker %d: %v, want %v", trial, step, lvl, w, a, b)
								}
								for k := range a {
									if a[k] != b[k] {
										t.Fatalf("trial %d step %d: static level %d worker %d: %v, want %v", trial, step, lvl, w, a, b)
									}
								}
							}
						}
						rt2.Close()
					}

					runRep := runGather(t, "post-repair run", rt, l, n, idx)
					if ex.hasPlans {
						// Auto may select the doacross executor, whose runs
						// re-classify with flags and report no cache hit even
						// though the decision consulted the repaired plan.
						if !runRep.InspectCached && ex.kind != ExecAuto {
							t.Fatalf("trial %d step %d: repaired plan missed the cache", trial, step)
						}
						if !runRep.PlanRepaired || runRep.RepairNs <= 0 {
							t.Fatalf("trial %d step %d: first post-repair run not stamped (repaired=%v ns=%d)",
								trial, step, runRep.PlanRepaired, runRep.RepairNs)
						}
						second := runGather(t, "second post-repair run", rt, l, n, idx)
						if second.PlanRepaired || second.RepairNs != 0 {
							t.Fatalf("trial %d step %d: repair stamp leaked into the second run", trial, step)
						}
					} else if runRep.PlanRepaired {
						t.Fatalf("trial %d step %d: plan-free executor stamped PlanRepaired", trial, step)
					}
				}
				rt.Close()
			}
		})
	}
}

// TestRepairPlansConeBudgetFallsBack edits the root of a long dependency
// chain: the dirty cone is the whole loop, the cost model prefers a cold
// re-inspect, and RepairPlans must invalidate instead of patching.
func TestRepairPlansConeBudgetFallsBack(t *testing.T) {
	n := 4096
	idx := make([]int, n)
	for i := range idx {
		if i == 0 {
			idx[i] = n
		} else {
			idx[i] = i - 1 // one long chain: editing iteration 1 dirties everything
		}
	}
	l := gatherLoop(n, idx)
	rt := NewRuntime(2*n, Options{Workers: 2, Executor: ExecWavefront, AutoCosts: AutoCosts{BarrierNs: 100, FlagCheckNs: 10}})
	defer rt.Close()
	runGather(t, "cold run", rt, l, n, idx)

	idx[1] = n + 1 // cut the chain at its head: every level shifts
	rep, err := rt.RepairPlans(l, EditSet{Iters: []int{1}})
	if err != nil {
		t.Fatalf("RepairPlans: %v", err)
	}
	if rep.Repaired {
		t.Fatalf("a whole-loop cone was repaired under the cost budget (cone %d)", rep.ConeSize)
	}
	if rep.ConeSize == 0 {
		t.Fatal("fallback report carries no cone size")
	}
	next := runGather(t, "post-fallback run", rt, l, n, idx)
	if next.InspectCached {
		t.Fatal("fallback did not invalidate the plan cache")
	}
	if next.PlanRepaired {
		t.Fatal("fallback stamped PlanRepaired")
	}
}

// TestRepairPlansValidation covers the error paths: nil loop, out-of-range
// iterations and retired elements must fail without touching the cache.
func TestRepairPlansValidation(t *testing.T) {
	n := 32
	idx := make([]int, n)
	for i := range idx {
		idx[i] = n + i
	}
	l := gatherLoop(n, idx)
	rt := NewRuntime(2*n, Options{Workers: 2, Executor: ExecWavefront})
	defer rt.Close()
	runGather(t, "cold run", rt, l, n, idx)

	if _, err := rt.RepairPlans(nil, EditSet{}); err == nil {
		t.Fatal("nil loop accepted")
	}
	if _, err := rt.RepairPlans(l, EditSet{Iters: []int{n}}); err == nil {
		t.Fatal("out-of-range iteration accepted")
	}
	if _, err := rt.RepairPlans(l, EditSet{Iters: []int{-1}}); err == nil {
		t.Fatal("negative iteration accepted")
	}
	if _, err := rt.RepairPlans(l, EditSet{RetiredElems: []int{2 * n}}); err == nil {
		t.Fatal("out-of-range retired element accepted")
	}
	// The rejected calls must not have perturbed the cached plan.
	rep := runGather(t, "post-error run", rt, l, n, idx)
	if !rep.InspectCached {
		t.Fatal("validation errors evicted the cached plan")
	}

	// An empty edit set against a cached plan is a trivial repair.
	rep2, err := rt.RepairPlans(l, EditSet{})
	if err != nil || !rep2.Repaired {
		t.Fatalf("empty edit set: repaired=%v err=%v", rep2.Repaired, err)
	}

	// Repairing a loop with no cached plan falls back to invalidation.
	other := gatherLoop(n, idx)
	rep3, err := rt.RepairPlans(other, EditSet{Iters: []int{0}})
	if err != nil {
		t.Fatalf("RepairPlans on an uncached loop: %v", err)
	}
	if rep3.Repaired {
		t.Fatal("uncached loop reported a repair")
	}
	cold := runGather(t, "post-uncached-repair run", rt, l, n, idx)
	if cold.InspectCached {
		t.Fatal("uncached-loop repair must invalidate the whole cache")
	}
}
