package core

import (
	"errors"
	"reflect"
	"testing"
)

// tunedChainOptions returns Auto options with online tuning enabled and
// deterministic seed coefficients (no self-calibration probe, no timing
// dependence in the decision seed).
func tunedChainOptions(workers int) Options {
	return Options{
		Workers:  workers,
		Executor: ExecAuto,
		Tuning: &TuningOptions{
			InitialCosts: AutoCosts{BarrierNs: 400, FlagCheckNs: 30, ClaimNs: 25, IterNs: 50},
			Seed:         11,
		},
	}
}

// TestTuningObservationCounts checks the feedback plumbing end to end: every
// successful tuned Auto run lands exactly one observation in the plan's
// tuner state, the aggregate counters, and the TuningSink — and the report
// carries the post-run tuned coefficients.
func TestTuningObservationCounts(t *testing.T) {
	const n, runs = 96, 12
	c := NewMetricsCollector()
	opts := tunedChainOptions(2)
	opts.Metrics = c
	rt := NewRuntime(n, opts)
	defer rt.Close()
	l := chainLoop(n)
	y := make([]float64, n)

	var explored uint64
	for r := 0; r < runs; r++ {
		rep, err := rt.Run(l, y)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.TunedCosts.valid() {
			t.Fatalf("run %d: report carries no tuned coefficients: %+v", r, rep.TunedCosts)
		}
		if rep.Explored {
			explored++
		}
	}

	snap := rt.TuningSnapshot()
	if snap.Observations != runs {
		t.Errorf("tuner observed %d runs, want %d", snap.Observations, runs)
	}
	if snap.Explorations != explored {
		t.Errorf("tuner explorations = %d, reports say %d", snap.Explorations, explored)
	}
	if len(snap.Plans) != 1 {
		t.Fatalf("tuner tracks %d plans, want 1", len(snap.Plans))
	}
	p := snap.Plans[0]
	if p.Runs != runs {
		t.Errorf("plan observed %d runs, want %d", p.Runs, runs)
	}
	if got := p.Doacross.Observations + p.Wavefront.Observations + p.WavefrontDynamic.Observations; got != runs {
		t.Errorf("per-arm observations sum to %d, want %d", got, runs)
	}
	ms := c.Snapshot()
	if ms.TuningObservations != runs || ms.TuningExplorations != explored {
		t.Errorf("collector saw %d/%d tuning events, want %d/%d",
			ms.TuningObservations, ms.TuningExplorations, runs, explored)
	}
}

// TestTuningFrozenByAutoCosts is the freeze contract: pinning Options.AutoCosts
// declares the coefficients known, so a configured tuner never creates or
// updates plan state — its snapshot is byte-identical across any number of
// runs, and reports carry no tuned coefficients.
func TestTuningFrozenByAutoCosts(t *testing.T) {
	const n = 64
	opts := tunedChainOptions(2)
	opts.AutoCosts = AutoCosts{BarrierNs: 1000, FlagCheckNs: 5, ClaimNs: 25, IterNs: 80}
	rt := NewRuntime(n, opts)
	defer rt.Close()
	l := chainLoop(n)
	y := make([]float64, n)

	before := rt.TuningSnapshot()
	for r := 0; r < 6; r++ {
		rep, err := rt.Run(l, y)
		if err != nil {
			t.Fatal(err)
		}
		if rep.TunedCosts.valid() || rep.Explored {
			t.Fatalf("frozen tuner stamped the report: %+v explored=%v", rep.TunedCosts, rep.Explored)
		}
		if after := rt.TuningSnapshot(); !reflect.DeepEqual(before, after) {
			t.Fatalf("frozen tuner state changed after run %d:\nbefore %+v\nafter  %+v", r, before, after)
		}
	}
}

// TestTuningSkipsSingleLevelLoops checks the degenerate case: a fully
// independent loop has one level and no executor decision worth learning, so
// the tuner is bypassed entirely.
func TestTuningSkipsSingleLevelLoops(t *testing.T) {
	const n = 48
	rt := NewRuntime(2*n, tunedChainOptions(2))
	defer rt.Close()
	l := &Loop{
		N:      n,
		Data:   2 * n,
		Writes: func(i int) []int { return []int{i} },
		Reads:  func(i int) []int { return []int{n + i} }, // untouched elements
		Body:   func(i int, v *Values) { v.Store(i, v.Load(n+i)+1) },
	}
	y := make([]float64, 2*n)
	for r := 0; r < 3; r++ {
		rep, err := rt.Run(l, y)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Levels > 1 {
			t.Fatalf("expected a single-level plan, got %d levels", rep.Levels)
		}
	}
	if snap := rt.TuningSnapshot(); snap.Observations != 0 || len(snap.Plans) != 0 {
		t.Errorf("single-level runs reached the tuner: %+v", snap)
	}
}

// TestTuningDiscardsFailedRuns checks that an aborted run's pending
// observation is dropped instead of polluting the calibration with a time
// that measured the failure, and that the next successful run observes
// normally.
func TestTuningDiscardsFailedRuns(t *testing.T) {
	const n = 64
	rt := NewRuntime(n, tunedChainOptions(2))
	defer rt.Close()
	y := make([]float64, n)

	failing := chainLoop(n)
	failing.Body = nil
	failing.BodyErr = func(i int, v *Values) error {
		if i == n/2 {
			return errors.New("boom")
		}
		v.Store(i, 1)
		return nil
	}
	if _, err := rt.Run(failing, y); err == nil {
		t.Fatal("expected the body error to surface")
	}
	if snap := rt.TuningSnapshot(); snap.Observations != 0 {
		t.Fatalf("failed run was observed: %+v", snap)
	}
	if _, err := rt.Run(chainLoop(n), y); err != nil {
		t.Fatal(err)
	}
	if snap := rt.TuningSnapshot(); snap.Observations != 1 {
		t.Errorf("tuner observed %d runs after one success, want 1", snap.Observations)
	}
}

// TestTuningFingerprintSurvivesRepair checks the tuner key outlives an
// in-place plan repair: the repaired plan keeps accumulating observations
// under the same fingerprint instead of starting a fresh calibration.
func TestTuningFingerprintSurvivesRepair(t *testing.T) {
	const n = 64
	reads := make([]int, n)
	for i := range reads {
		if i > 0 {
			reads[i] = i - 1
		}
	}
	l := &Loop{
		N:      n,
		Data:   n,
		Writes: func(i int) []int { return []int{i} },
		Reads: func(i int) []int {
			if i == 0 {
				return nil
			}
			return reads[i : i+1]
		},
		Body: func(i int, v *Values) {
			if i == 0 {
				v.Store(i, 1)
				return
			}
			v.Store(i, v.Load(reads[i])+1)
		},
	}
	rt := NewRuntime(n, tunedChainOptions(2))
	defer rt.Close()
	y := make([]float64, n)

	for r := 0; r < 4; r++ {
		if _, err := rt.Run(l, y); err != nil {
			t.Fatal(err)
		}
	}
	// Repoint one iteration's dependency and repair the cached plan in place.
	reads[n/2] = n/2 - 2
	rep, err := rt.RepairPlans(l, EditSet{Iters: []int{n / 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Repaired {
		t.Fatalf("expected an in-place repair, got fallback: %+v", rep)
	}
	if _, err := rt.Run(l, y); err != nil {
		t.Fatal(err)
	}
	snap := rt.TuningSnapshot()
	if len(snap.Plans) != 1 {
		t.Fatalf("repair forked the tuner state into %d plans, want 1", len(snap.Plans))
	}
	if snap.Plans[0].Runs != 5 {
		t.Errorf("plan observed %d runs across the repair, want 5", snap.Plans[0].Runs)
	}
}

// BenchmarkTuningOff and BenchmarkTuningOn bound the tuner's cost: with no
// tuner configured the per-run overhead is a nil test on the pending
// observation, so TuningOff must sit within noise of the pre-tuning Auto
// baseline. Compare with benchstat, or eyeball the ns/op in CI logs.
func BenchmarkTuningOff(b *testing.B) { benchTuning(b, nil) }
func BenchmarkTuningOn(b *testing.B) {
	benchTuning(b, &TuningOptions{
		InitialCosts: AutoCosts{BarrierNs: 400, FlagCheckNs: 30, ClaimNs: 25, IterNs: 50},
		Seed:         11,
	})
}

func benchTuning(b *testing.B, tn *TuningOptions) {
	rt := NewRuntime(256, Options{
		Workers:  2,
		Executor: ExecAuto,
		Tuning:   tn,
		// Untuned runs pin the coefficients so neither variant pays the
		// self-calibration probe; the tuned variant seeds from
		// TuningOptions.InitialCosts instead and keeps learning.
		AutoCosts: func() AutoCosts {
			if tn != nil {
				return AutoCosts{}
			}
			return AutoCosts{BarrierNs: 400, FlagCheckNs: 30, ClaimNs: 25, IterNs: 50}
		}(),
	})
	defer rt.Close()
	l := chainLoop(256)
	y := make([]float64, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Run(l, y); err != nil {
			b.Fatal(err)
		}
	}
}
