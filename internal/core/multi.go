package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"doacross/internal/flags"
)

// This file implements the blocked multi-RHS execution path: one traversal of
// the loop's dependency structure applies each iteration's body to a block of
// right-hand sides at once, so the fixed per-traversal overheads — level
// barriers, flag maintenance, dependency classification, chunk claims — are
// paid once per block instead of once per solve. It is the batching layer the
// serving front end (internal/serve) sits on: the dominant production shape
// is many independent solves against one fixed factor, where the plan is
// already cached and per-solve overhead is what bounds throughput.
//
// Data layout. A block of nc columns is stored element-major: the nc column
// values of element e are contiguous at [e*nc : (e+1)*nc]. An iteration's
// reads then touch one contiguous row per element — one dependency
// classification and at most one wait per element, followed by nc
// multiply-adds over adjacent memory — which is what makes the arithmetic
// intensity per synchronization grow with the block size. Blocks are capped
// at MaxRHSBlock columns; RunMulti splits wider calls into successive
// traversals and tells the body where each block starts (ColOffset).

// MaxRHSBlock is the widest column block one traversal carries. Wider RunMulti
// calls are split into successive blocks of at most this many columns: beyond
// a few dozen columns the per-element rows outgrow cache lines and the block
// buffers outgrow the cache itself, while the per-traversal overhead being
// amortized is already divided down to noise.
const MaxRHSBlock = 64

// MultiValues gives a multi-RHS loop body access to one column block of the
// shared data with the same execution-time dependency checks as Values. The
// dependency structure is per element, not per column — all columns of one
// element are produced by the same iteration — so one LoadRow performs one
// classification and at most one wait, and returns the whole row of column
// values the sequential loop would have observed. A MultiValues is specific to
// one iteration of one run and must not be retained after the body returns;
// the row slices it returns alias the runtime's block buffers and share that
// lifetime.
type MultiValues struct {
	iter     writerTable
	ready    readyWaiter
	old      []float64 // element-major block: (e, c) at [e*nc + c]
	new      []float64
	nc       int
	colBase  int
	i        int
	strategy flags.WaitStrategy
	cancel   *atomic.Bool
	failErr  error
	rec      *accessRecorder
	// counters, as in Values
	waits      int
	truedeps   int
	selfdeps   int
	antiOrNone int
}

func (v *MultiValues) reset(t writerTable, r readyWaiter, old, new []float64, nc, colBase, i int, s flags.WaitStrategy, cancel *atomic.Bool) {
	v.iter = t
	v.ready = r
	v.old = old
	v.new = new
	v.nc = nc
	v.colBase = colBase
	v.i = i
	v.strategy = s
	v.cancel = cancel
	v.failErr = nil
	v.rec = nil
	v.waits = 0
	v.truedeps = 0
	v.selfdeps = 0
	v.antiOrNone = 0
}

// Iteration returns the original index of the iteration the body is executing.
func (v *MultiValues) Iteration() int { return v.i }

// Cols returns the number of columns in the active block — the length of every
// row slice the accessors return. It is at most MaxRHSBlock, and smaller than
// the RunMulti call's total column count when the call was split into blocks.
func (v *MultiValues) Cols() int { return v.nc }

// ColOffset returns the index of the block's first column within the ys slice
// the RunMulti call received. Bodies that index per-column state captured from
// outside the loop (a right-hand side per column) use ColOffset()+c for the
// block-local column c; bodies whose state all flows through the shared array
// can ignore it.
func (v *MultiValues) ColOffset() int { return v.colBase }

// LoadRow returns the row of element e — its value in every column of the
// block — as the original sequential loop would have observed it at this
// iteration: the newly computed row when e is written by an earlier iteration
// (after waiting for it) or by this one, the old row otherwise. It is the
// multi-RHS counterpart of Values.Load, performing one classification and at
// most one wait for the whole row. The returned slice is read-only and valid
// only until the body returns.
func (v *MultiValues) LoadRow(e int) []float64 {
	if v.rec != nil {
		v.rec.noteLoad(e)
	}
	dep, _ := v.iter.Classify(e, v.i)
	switch dep {
	case flags.TrueDep:
		v.truedeps++
		polls, ok := v.ready.WaitFor(e, v.strategy, v.cancel)
		v.waits += polls
		if !ok {
			return v.old[e*v.nc : (e+1)*v.nc]
		}
		return v.new[e*v.nc : (e+1)*v.nc]
	case flags.SelfDep:
		v.selfdeps++
		return v.new[e*v.nc : (e+1)*v.nc]
	default:
		v.antiOrNone++
		return v.old[e*v.nc : (e+1)*v.nc]
	}
}

// Load returns the value of element e in block-local column c. It is a
// convenience wrapper over LoadRow and repeats the classification per call;
// bodies looping over columns should hoist the LoadRow instead.
func (v *MultiValues) Load(e, c int) float64 { return v.LoadRow(e)[c] }

// Row returns the writable new row of element e, seeded with the old row when
// the body starts (so read-modify-write accumulation observes the sequential
// loop's pre-iteration values). The element must be one of the iteration's
// declared write targets; the row becomes visible to other iterations only
// after the body returns. It is the multi-RHS counterpart of Values.Store and
// Values.LoadNew together.
func (v *MultiValues) Row(e int) []float64 {
	if v.rec != nil {
		v.rec.noteStore(e)
	}
	return v.new[e*v.nc : (e+1)*v.nc]
}

// Store writes the value of element e in block-local column c; a convenience
// wrapper over Row.
func (v *MultiValues) Store(e, c int, x float64) {
	v.Row(e)[c] = x
}

// LoadOldRow returns the row element e had before the loop started, with no
// dependency check — the multi-RHS LoadOld. The returned slice is read-only.
func (v *MultiValues) LoadOldRow(e int) []float64 { return v.old[e*v.nc : (e+1)*v.nc] }

// Waits reports how many polling steps this iteration spent waiting on
// unsatisfied true dependencies.
func (v *MultiValues) Waits() int { return v.waits }

// Fail marks this iteration — and therefore the whole run — as failed, exactly
// as Values.Fail does. A nil err is ignored.
func (v *MultiValues) Fail(err error) {
	if err != nil && v.failErr == nil {
		v.failErr = err
	}
}

// accessViolation mirrors Values.accessViolation for the multi path.
func (v *MultiValues) accessViolation() error {
	if v.rec == nil || v.rec.violation == nil {
		return nil
	}
	return v.rec.violation
}

// armAccessCheckMulti attaches worker's recorder to v for iteration i when the
// declared-access sanitizer is on, exactly as armAccessCheck does for the
// scalar path.
func (rt *Runtime) armAccessCheckMulti(v *MultiValues, l *Loop, worker, i int, writes []int) {
	if rt.recs == nil {
		return
	}
	r := &rt.recs[worker]
	var reads []int
	if l.Reads != nil {
		reads = l.Reads(i)
	}
	r.begin(i, writes, reads, l.Reads != nil)
	v.rec = r
}

// multiRun is the runtime's armed multi-RHS block state. A zero nc means the
// run is scalar; executors consult it through execBody, which swaps in the
// multi body when a block is armed.
type multiRun struct {
	nc      int
	colBase int
}

// checkRunMultiArgs validates a RunMulti call up front, mirroring
// checkRunArgs: a short column (or a loop without a multi body) yields a
// descriptive error instead of an index panic inside a worker goroutine.
func (rt *Runtime) checkRunMultiArgs(l *Loop, ys [][]float64) error {
	if l.Data > rt.dataLen {
		return fmt.Errorf("core: loop data length %d exceeds runtime capacity %d", l.Data, rt.dataLen)
	}
	if len(ys) == 0 {
		return fmt.Errorf("core: RunMulti requires at least one right-hand side column")
	}
	for c, y := range ys {
		if len(y) < l.Data {
			return fmt.Errorf("core: column %d has length %d, shorter than loop data length %d", c, len(y), l.Data)
		}
	}
	if l.BodyMulti == nil {
		return fmt.Errorf("core: RunMulti requires Loop.BodyMulti")
	}
	return nil
}

// RunMulti executes the full preprocessed doacross once per column block,
// applying each iteration's body to all columns of ys in one traversal of the
// loop's dependency structure: ys[c] is updated in place exactly as a
// sequential execution of the loop over that column alone would have. Columns
// are processed in blocks of at most MaxRHSBlock (the body sees the block
// through MultiValues.Cols and ColOffset); each block pays the traversal's
// fixed costs — barriers, flag maintenance, classification — once, which is
// the point: per-solve overhead amortizes by the block width.
//
// The loop must define BodyMulti (Body/BodyErr, if also set, are ignored
// here). All executors support the multi path, and the Auto selection prices
// it with the block width: the work term of every strategy scales with the
// columns while the barrier, flag and claim terms do not, so Auto's pick can
// flip between a single-RHS run and a wide block of the same loop (see
// AutoCosts.PredictN). Cancellation and failure behave as in RunContext; the
// contents of ys are unspecified after a failed run. The report aggregates the
// per-block phase times and counters, and records the column count in NRHS.
func (rt *Runtime) RunMulti(ctx context.Context, l *Loop, ys [][]float64) (Report, error) {
	if err := rt.checkRunMultiArgs(l, ys); err != nil {
		return Report{}, err
	}
	if rt.opts.Order != nil && len(rt.opts.Order) != l.N {
		return Report{}, fmt.Errorf("core: execution order has %d entries for %d iterations", len(rt.opts.Order), l.N)
	}
	if err := ctx.Err(); err != nil {
		return Report{}, err
	}
	rt.runMu.Lock()
	defer rt.runMu.Unlock()

	rep := Report{
		Workers:     rt.opts.Workers,
		Iterations:  l.N,
		NRHS:        len(ys),
		WaitPolicy:  rt.opts.WaitStrategy.String(),
		SchedPolicy: rt.opts.Policy.String(),
	}
	if rt.opts.Order != nil {
		rep.Order = "reordered"
	} else {
		rep.Order = "natural"
	}
	callStart := time.Now()
	for base := 0; base < len(ys); base += MaxRHSBlock {
		end := base + MaxRHSBlock
		if end > len(ys) {
			end = len(ys)
		}
		blockRep, err := rt.runMultiBlock(ctx, l, ys[base:end], base)
		if err != nil {
			// A block that failed after resolving its executor counts as one
			// failed run of that executor; a failure during resolution itself
			// (blockRep.Executor empty) is not counted, matching RunContext.
			if blockRep.Executor != "" {
				rt.recordRun(blockRep.Executor, time.Since(callStart), err)
			}
			return Report{}, err
		}
		rep.PreTime += blockRep.PreTime
		rep.ExecTime += blockRep.ExecTime
		rep.PostTime += blockRep.PostTime
		rep.TotalTime += blockRep.TotalTime
		rep.TrueDeps += blockRep.TrueDeps
		rep.SelfDeps += blockRep.SelfDeps
		rep.AntiOrNone += blockRep.AntiOrNone
		rep.WaitPolls += blockRep.WaitPolls
		rep.Executor = blockRep.Executor
		rep.Levels = blockRep.Levels
		rep.InspectCached = blockRep.InspectCached
		rep.AutoCosts = blockRep.AutoCosts
		rep.PredictedDoacrossNs = blockRep.PredictedDoacrossNs
		rep.PredictedWavefrontNs = blockRep.PredictedWavefrontNs
		rep.PredictedDynamicNs = blockRep.PredictedDynamicNs
		rep.TunedCosts = blockRep.TunedCosts
		rep.Explored = rep.Explored || blockRep.Explored
	}
	rt.recordRun(rep.Executor, time.Since(callStart), nil)
	return rep, nil
}

// runMultiBlock runs one column block through the fused executor pipeline:
// gather the columns into the element-major block buffers, execute the loop
// with the multi body armed (the executors themselves are unchanged — their
// scalar copy-back degenerates to self-assignment on the renaming buffer),
// then scatter the written rows back to the columns. Caller holds runMu.
func (rt *Runtime) runMultiBlock(ctx context.Context, l *Loop, ys [][]float64, colBase int) (Report, error) {
	rep := Report{Workers: rt.opts.Workers, Iterations: l.N, NRHS: len(ys)}
	selStart := time.Now()
	ex, err := rt.executorFor(l, &rep, len(ys))
	if err != nil {
		return Report{}, err
	}
	selTime := time.Since(selStart)
	rep.Executor = ex.name()
	if err := ctx.Err(); err != nil {
		// Cancelled before anything executed: like RunContext's pre-execution
		// check, not counted as a run (Executor stays empty in the report).
		return Report{}, err
	}

	gatherStart := time.Now()
	rt.armMulti(l, ys, colBase)
	gatherTime := time.Since(gatherStart)

	stopWatch := rt.watchContext(ctx)
	// The scalar y the executor sees is the renaming buffer itself: the multi
	// body never touches it, and the executors' postprocess copy-back becomes
	// a self-assignment, so the scalar executors run the multi block without
	// a multi-specific variant of their own.
	ex.execute(l, rt.ynew, &rep)
	stopWatch()
	runErr := rt.ab.firstErr()
	if runErr == nil {
		postStart := time.Now()
		rt.scatterMulti(l, ys)
		d := time.Since(postStart)
		rep.PostTime += d
		rep.TotalTime += d
	}
	rt.mc = multiRun{}
	if runErr != nil {
		// The empty report still names the resolved executor so RunMulti can
		// attribute the failed call to it in the metrics sink.
		return Report{Executor: rep.Executor}, runErr
	}
	rep.PreTime += selTime + gatherTime
	rep.TotalTime += selTime + gatherTime
	rep.setCounters(sumCounters(rt.counters))
	rt.observeTuning(&rep)
	return rep, nil
}

// armMulti sizes the block buffers for l.Data rows of len(ys) columns,
// gathers the columns element-major into the old block, and arms the multi
// state consulted by execBody. Buffers are grown once and reused across
// blocks and runs.
func (rt *Runtime) armMulti(l *Loop, ys [][]float64, colBase int) {
	nc := len(ys)
	need := l.Data * nc
	if cap(rt.mold) < need {
		rt.mold = make([]float64, need)
		rt.mnew = make([]float64, need)
	}
	rt.mold = rt.mold[:need]
	rt.mnew = rt.mnew[:need]
	if rt.mvals == nil {
		rt.mvals = make([]MultiValues, rt.opts.Workers)
	}
	mold := rt.mold
	rt.pool.ParallelFor(l.Data, func(e int) {
		row := mold[e*nc : (e+1)*nc]
		for c := range ys {
			row[c] = ys[c][e]
		}
	})
	rt.mc = multiRun{nc: nc, colBase: colBase}
}

// scatterMulti copies the written rows of the new block back into the caller's
// columns — the multi path's counterpart of the postprocess copy-back.
func (rt *Runtime) scatterMulti(l *Loop, ys [][]float64) {
	nc := rt.mc.nc
	mnew := rt.mnew
	rt.pool.ParallelFor(l.N, func(i int) {
		for _, e := range l.Writes(i) {
			row := mnew[e*nc : (e+1)*nc]
			for c := range ys {
				ys[c][e] = row[c]
			}
		}
	})
}

// execBodyMulti is execBody's multi-RHS counterpart: one position of the
// transformed loop seeds the written rows, runs BodyMulti through the worker's
// reusable MultiValues against the armed block buffers, marks the written
// elements ready and accumulates the worker's counters. The executors obtain
// it transparently through execBody when a block is armed, so all of them —
// doacross, both wavefronts, and whatever Auto picks — run the multi path
// with their own scheduling and barrier structure unchanged.
func (rt *Runtime) execBodyMulti(l *Loop, tab writerTable, ready readyWaiter, traceBase time.Time) func(worker, pos int) {
	order := rt.opts.Order
	ab := &rt.ab
	nc := rt.mc.nc
	colBase := rt.mc.colBase
	mold, mnew := rt.mold, rt.mnew
	return func(worker, pos int) {
		if ab.triggered.Load() {
			return
		}
		i := pos
		if order != nil {
			i = order[pos]
		}
		var start time.Duration
		if rt.lastTrace != nil {
			start = time.Since(traceBase)
		}
		writes := l.Writes(i)
		// Seed the written rows with the old rows (the multi counterpart of
		// Figure 5's statement S2), so intra-iteration reads through Row
		// observe the pre-iteration values.
		for _, e := range writes {
			copy(mnew[e*nc:(e+1)*nc], mold[e*nc:(e+1)*nc])
		}
		mv := &rt.mvals[worker]
		mv.reset(tab, ready, mold, mnew, nc, colBase, i, rt.opts.WaitStrategy, &ab.triggered)
		rt.armAccessCheckMulti(mv, l, worker, i, writes)
		if err := rt.runMultiBody(l, i, mv); err != nil {
			ab.abort(err)
			return
		}
		if err := mv.accessViolation(); err != nil {
			ab.abort(err)
			return
		}
		for _, e := range writes {
			ready.Set(e)
		}
		c := &rt.counters[worker]
		c.trueDeps += int64(mv.truedeps)
		c.selfDeps += int64(mv.selfdeps)
		c.antiOrNone += int64(mv.antiOrNone)
		c.waitPolls += int64(mv.waits)
		if rt.lastTrace != nil {
			rt.lastTrace.Iterations[pos] = IterTrace{
				Iteration: i,
				Position:  pos,
				Worker:    worker,
				Start:     start,
				End:       time.Since(traceBase),
				WaitPolls: mv.waits,
				TrueDeps:  mv.truedeps,
			}
		}
	}
}

// runMultiBody runs one iteration's multi body and returns its failure
// (Fail record), nil on success.
func (rt *Runtime) runMultiBody(l *Loop, i int, mv *MultiValues) error {
	l.BodyMulti(i, mv)
	return mv.failErr
}

// RunSequentialMulti executes the loop's multi body column-block-sequentially,
// exactly as running the original sequential loop once per column would:
// iterations in order, all writes visible to later reads immediately. It is
// the reference RunMulti results are verified against, the multi counterpart
// of RunSequential. Columns are processed in one block (no MaxRHSBlock split),
// so the body sees Cols() == len(ys) and ColOffset() == 0.
func RunSequentialMulti(l *Loop, ys [][]float64) error {
	if len(ys) == 0 {
		return fmt.Errorf("core: RunSequentialMulti requires at least one right-hand side column")
	}
	for c, y := range ys {
		if len(y) < l.Data {
			return fmt.Errorf("core: column %d has length %d, shorter than loop data length %d", c, len(y), l.Data)
		}
	}
	if l.BodyMulti == nil {
		return fmt.Errorf("core: RunSequentialMulti requires Loop.BodyMulti")
	}
	nc := len(ys)
	buf := make([]float64, l.Data*nc)
	for e := 0; e < l.Data; e++ {
		row := buf[e*nc : (e+1)*nc]
		for c := range ys {
			row[c] = ys[c][e]
		}
	}
	v := &MultiValues{}
	for i := 0; i < l.N; i++ {
		// Old and new alias the same buffer and every read classifies as a
		// self dependence, exactly as RunSequential's seqTable arranges, so
		// LoadRow returns the current contents.
		v.reset(seqTable{}, seqReady{}, buf, buf, nc, 0, i, flags.WaitSpin, nil)
		l.BodyMulti(i, v)
		if v.failErr != nil {
			return v.failErr
		}
	}
	for e := 0; e < l.Data; e++ {
		row := buf[e*nc : (e+1)*nc]
		for c := range ys {
			ys[c][e] = row[c]
		}
	}
	return nil
}
