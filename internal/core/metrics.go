package core

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// MetricsSink receives the runtime's observability events. It is the
// in-process hook a serving layer installs (Options.Metrics, or
// doacross.WithMetrics at the facade) to scrape run counts, plan-cache
// behaviour and per-executor latency without touching the hot path: when no
// sink is installed every instrumentation site is a single nil test, and no
// event is ever constructed.
//
// The contract — what is counted, and when each callback fires:
//
//   - RecordRun fires once per Run/RunContext call and once per RunMulti call
//     (not per column block), after the executor has drained, with the
//     executor that ran ("doacross", "wavefront", "wavefront-dynamic" — the
//     resolved name, even under ExecAuto), the call's total wall time in
//     nanoseconds, and the error the call is about to return (nil on
//     success). Calls rejected before an executor was resolved (argument
//     validation, pre-run context cancellation, a failed inspection) are not
//     counted as runs.
//   - RecordPlan fires once per plan-cache transition: PlanHit/PlanMiss on
//     every wavefront-plan lookup (each Wavefront/Auto run, each standalone
//     Inspect or PlanSnapshot, and each column block of a RunMulti performs
//     one lookup),
//     PlanInvalidated on every generation bump (an explicit InvalidatePlans,
//     or the invalidation a RepairPlans fallback degrades to), PlanRepaired
//     on every successful in-place repair, and PlanRepairFallback when
//     RepairPlans found no repairable plan or the dirty cone exceeded the
//     break-even budget (a fallback therefore records both a
//     PlanRepairFallback and a PlanInvalidated).
//   - RecordAccessAbort fires, in addition to the failed run's RecordRun,
//     when a run under Options.AccessCheck aborted on an undeclared access
//     (the returned error wraps *AccessError).
//
// All callbacks are invoked on the goroutine driving the runtime's
// serialized entry points, never from worker goroutines — but distinct
// runtimes may share one sink, so implementations must be safe for
// concurrent use. Implementations must not call back into the runtime (the
// run mutex is held) and should return quickly; MetricsCollector is the
// ready-made implementation.
type MetricsSink interface {
	RecordRun(executor string, ns int64, err error)
	RecordPlan(event PlanEvent)
	RecordAccessAbort()
}

// TuningSink is the optional extension a MetricsSink implements to receive
// online-tuning feedback events: RecordTuning fires once per tuned Auto run
// whose measurement was fed back into the plan's calibration (so its count
// matches TuningSnapshot.Observations), with explored reporting whether the
// decision deliberately ran a non-best executor. Discovered by type
// assertion, so existing MetricsSink implementations keep compiling; the same
// threading contract as MetricsSink applies. MetricsCollector implements it.
type TuningSink interface {
	RecordTuning(explored bool)
}

// PlanEvent identifies one plan-cache transition reported to a MetricsSink.
type PlanEvent int

const (
	// PlanHit is a plan lookup answered by the schedule cache (either tier).
	PlanHit PlanEvent = iota
	// PlanMiss is a plan lookup that built (and cached) a plan cold.
	PlanMiss
	// PlanInvalidated is a generation bump evicting every cached plan.
	PlanInvalidated
	// PlanRepaired is a successful in-place RepairPlans patch.
	PlanRepaired
	// PlanRepairFallback is a RepairPlans call that fell back to a full
	// invalidation (no repairable plan, or an over-budget dirty cone).
	PlanRepairFallback
)

// String returns the event's name as used in reports.
func (e PlanEvent) String() string {
	switch e {
	case PlanHit:
		return "hit"
	case PlanMiss:
		return "miss"
	case PlanInvalidated:
		return "invalidated"
	case PlanRepaired:
		return "repaired"
	case PlanRepairFallback:
		return "repair-fallback"
	default:
		return "unknown"
	}
}

// MetricsNsBuckets is the number of power-of-two latency buckets an
// ExecutorMetrics histogram carries: bucket k counts runs whose wall time lay
// in [2^k, 2^(k+1)) nanoseconds (bucket 0 absorbs sub-nanosecond readings),
// covering every duration a run can realistically take.
const MetricsNsBuckets = 48

// ExecutorMetrics aggregates the recorded runs of one executor.
type ExecutorMetrics struct {
	// Runs counts recorded runs (successful and failed); Errors the failed
	// subset.
	Runs   uint64
	Errors uint64
	// TotalNs and MaxNs summarize the recorded wall times.
	TotalNs int64
	MaxNs   int64
	// BucketNs is the log2 latency histogram; see MetricsNsBuckets.
	BucketNs [MetricsNsBuckets]uint64
}

// MeanNs returns the mean recorded wall time, zero before the first run.
func (m ExecutorMetrics) MeanNs() float64 {
	if m.Runs == 0 {
		return 0
	}
	return float64(m.TotalNs) / float64(m.Runs)
}

// nsBucket maps a duration to its histogram bucket.
func nsBucket(ns int64) int {
	b := 0
	for ns > 1 && b < MetricsNsBuckets-1 {
		ns >>= 1
		b++
	}
	return b
}

// MetricsSnapshot is a point-in-time copy of a MetricsCollector's counters.
type MetricsSnapshot struct {
	// Runs counts recorded runs across all executors; Errors the failed
	// subset; AccessAborts the runs aborted by the declared-access sanitizer.
	Runs         uint64
	Errors       uint64
	AccessAborts uint64
	// Plan-cache transitions, keyed as in PlanEvent: lookups answered warm
	// (PlanHits) or built cold (PlanMisses), generation bumps
	// (PlanInvalidations), in-place repairs (PlanRepairs) and repair
	// fallbacks (PlanRepairFallbacks).
	PlanHits            uint64
	PlanMisses          uint64
	PlanInvalidations   uint64
	PlanRepairs         uint64
	PlanRepairFallbacks uint64
	// Online-tuning feedback events (TuningSink): measured runs fed back into
	// a plan's calibration, and the subset that were deliberate explorations.
	TuningObservations uint64
	TuningExplorations uint64
	// Executors holds the per-executor run counts and latency histograms,
	// keyed by executor name.
	Executors map[string]ExecutorMetrics
}

// String renders the snapshot's headline counters in a compact single-line
// form.
func (s MetricsSnapshot) String() string {
	return fmt.Sprintf("runs=%d errors=%d planHits=%d planMisses=%d invalidations=%d repairs=%d repairFallbacks=%d accessAborts=%d",
		s.Runs, s.Errors, s.PlanHits, s.PlanMisses, s.PlanInvalidations, s.PlanRepairs, s.PlanRepairFallbacks, s.AccessAborts)
}

// MetricsCollector is the ready-made MetricsSink: a mutex-guarded set of
// counters and per-executor log2 latency histograms, safe for concurrent use
// and for sharing across runtimes (a serving layer typically installs one
// collector in every solver runtime it owns and scrapes them all through one
// Snapshot). The zero value is ready to use; NewMetricsCollector exists for
// symmetry with the rest of the API.
type MetricsCollector struct {
	mu         sync.Mutex
	runs       uint64
	errors     uint64
	aborts     uint64
	plan       [5]uint64 // indexed by PlanEvent
	tuningObs  uint64
	tuningExpl uint64
	executors  map[string]*ExecutorMetrics
}

// NewMetricsCollector returns an empty collector.
func NewMetricsCollector() *MetricsCollector { return &MetricsCollector{} }

// RecordRun implements MetricsSink.
func (c *MetricsCollector) RecordRun(executor string, ns int64, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.runs++
	if err != nil {
		c.errors++
	}
	if c.executors == nil {
		c.executors = make(map[string]*ExecutorMetrics)
	}
	m := c.executors[executor]
	if m == nil {
		m = &ExecutorMetrics{}
		c.executors[executor] = m
	}
	m.Runs++
	if err != nil {
		m.Errors++
	}
	m.TotalNs += ns
	if ns > m.MaxNs {
		m.MaxNs = ns
	}
	m.BucketNs[nsBucket(ns)]++
}

// RecordPlan implements MetricsSink.
func (c *MetricsCollector) RecordPlan(event PlanEvent) {
	if event < 0 || int(event) >= len(c.plan) {
		return
	}
	c.mu.Lock()
	c.plan[event]++
	c.mu.Unlock()
}

// RecordTuning implements TuningSink.
func (c *MetricsCollector) RecordTuning(explored bool) {
	c.mu.Lock()
	c.tuningObs++
	if explored {
		c.tuningExpl++
	}
	c.mu.Unlock()
}

// RecordAccessAbort implements MetricsSink.
func (c *MetricsCollector) RecordAccessAbort() {
	c.mu.Lock()
	c.aborts++
	c.mu.Unlock()
}

// Snapshot returns a copy of the collector's current counters. The snapshot
// is owned by the caller; the collector keeps accumulating.
func (c *MetricsCollector) Snapshot() MetricsSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := MetricsSnapshot{
		Runs:                c.runs,
		Errors:              c.errors,
		AccessAborts:        c.aborts,
		PlanHits:            c.plan[PlanHit],
		PlanMisses:          c.plan[PlanMiss],
		PlanInvalidations:   c.plan[PlanInvalidated],
		PlanRepairs:         c.plan[PlanRepaired],
		PlanRepairFallbacks: c.plan[PlanRepairFallback],
		TuningObservations:  c.tuningObs,
		TuningExplorations:  c.tuningExpl,
		Executors:           make(map[string]ExecutorMetrics, len(c.executors)),
	}
	for name, m := range c.executors {
		s.Executors[name] = *m
	}
	return s
}

// recordRun reports one completed run to the installed sink; a single nil
// test when no sink is installed. An error wrapping *AccessError additionally
// records an access abort.
func (rt *Runtime) recordRun(executor string, d time.Duration, err error) {
	m := rt.opts.Metrics
	if m == nil {
		return
	}
	m.RecordRun(executor, d.Nanoseconds(), err)
	if err != nil {
		var ae *AccessError
		if errors.As(err, &ae) {
			m.RecordAccessAbort()
		}
	}
}

// recordPlan reports one plan-cache transition to the installed sink; a
// single nil test when no sink is installed.
func (rt *Runtime) recordPlan(event PlanEvent) {
	if m := rt.opts.Metrics; m != nil {
		m.RecordPlan(event)
	}
}
