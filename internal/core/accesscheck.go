package core

import "fmt"

// This file implements the declared-access sanitizer behind
// Options.AccessCheck: an opt-in shadow check that records, for every
// iteration, which elements the body actually touches through Values and
// diffs them against the iteration's declared access pattern. A body whose
// Writes (or Reads) closure under-declares its accesses is exactly the bug
// class the static analyzers in internal/analyze cannot prove absent — the
// subscripts only exist at run time — and it is silent: the doacross executor
// discovers reads dynamically, so an under-declared loop often produces
// correct results until the wavefront executor (whose schedule is built from
// the declarations) runs it and races. The sanitizer turns that latent race
// into a deterministic, attributed failure on the executor that would have
// been correct.
//
// The check is designed around the cost of not using it: Values carries one
// extra pointer that stays nil unless the run is checked, so the unchecked
// hot path pays a single always-false nil test per accessor and no
// allocation. Checked runs stash the iteration's declared slices in a
// per-worker recorder (no recording buffers, no appends) and verify each
// access eagerly against them; the first violation is carried to the end of
// the body and aborts the run like a body error.

// AccessOp identifies the kind of shared-array access that violated the
// declared pattern.
type AccessOp int

const (
	// AccessRead is a Values.Load outside the declared Reads/Writes sets.
	AccessRead AccessOp = iota
	// AccessReadNew is a Values.LoadNew of an element this iteration does
	// not declare as written — a read of another iteration's in-flight value
	// with no dependency check.
	AccessReadNew
	// AccessWrite is a Values.Store outside the declared Writes set.
	AccessWrite
)

// String names the operation as it appears in diagnostics.
func (op AccessOp) String() string {
	switch op {
	case AccessRead:
		return "Load"
	case AccessReadNew:
		return "LoadNew"
	default:
		return "Store"
	}
}

// AccessError reports a shared-array access that the iteration's declared
// pattern does not cover. It aborts the run the way a body error does and is
// returned from the Run variant that observed it.
type AccessError struct {
	// Iteration is the original iteration index whose body performed the
	// undeclared access.
	Iteration int
	// Element is the shared-array index that was accessed.
	Element int
	// Op is the accessor that touched it.
	Op AccessOp
}

func (e *AccessError) Error() string {
	switch e.Op {
	case AccessRead:
		return fmt.Sprintf("core: access check: iteration %d Loads element %d, which its declared Reads/Writes pattern does not cover", e.Iteration, e.Element)
	case AccessReadNew:
		return fmt.Sprintf("core: access check: iteration %d LoadNews element %d, which its declared Writes pattern does not cover", e.Iteration, e.Element)
	default:
		return fmt.Sprintf("core: access check: iteration %d Stores element %d, which its declared Writes pattern does not cover", e.Iteration, e.Element)
	}
}

// accessRecorder is the per-worker shadow state of one checked iteration: the
// declared access sets and the first violation observed. Declared sets are
// kept as the slices the loop's own closures returned — they are small (one
// to a handful of elements), so eager membership probes are cheaper than
// building a set would be.
type accessRecorder struct {
	iteration  int
	writes     []int
	reads      []int
	checkReads bool
	violation  *AccessError
}

// begin arms the recorder for iteration i. reads is nil (and checkReads
// false) for loops that declare no Reads: such loops rely on the dynamic
// dependency check alone, so only their writes can be misdeclared.
func (r *accessRecorder) begin(i int, writes, reads []int, checkReads bool) {
	r.iteration = i
	r.writes = writes
	r.reads = reads
	r.checkReads = checkReads
	r.violation = nil
}

// fail records the first violation; later ones are dropped, matching the
// first-failure-wins semantics of runAbort.
func (r *accessRecorder) fail(e int, op AccessOp) {
	if r.violation == nil {
		r.violation = &AccessError{Iteration: r.iteration, Element: e, Op: op}
	}
}

func contains(s []int, e int) bool {
	for _, x := range s {
		if x == e {
			return true
		}
	}
	return false
}

// noteLoad checks a Values.Load: the element must appear in the declared
// Reads or the declared Writes (a self-dependence Load of the iteration's own
// write target is legal and need not be re-declared as a read).
func (r *accessRecorder) noteLoad(e int) {
	if !r.checkReads {
		return
	}
	if contains(r.reads, e) || contains(r.writes, e) {
		return
	}
	r.fail(e, AccessRead)
}

// noteLoadNew checks a Values.LoadNew: only the iteration's own declared
// write targets may be read back unsynchronized.
func (r *accessRecorder) noteLoadNew(e int) {
	if !contains(r.writes, e) {
		r.fail(e, AccessReadNew)
	}
}

// noteStore checks a Values.Store against the declared Writes.
func (r *accessRecorder) noteStore(e int) {
	if !contains(r.writes, e) {
		r.fail(e, AccessWrite)
	}
}

// armAccessCheck attaches worker's recorder to v for iteration i when the
// runtime's declared-access sanitizer is on. writes is the Writes(i) slice
// the caller has already obtained. reset has cleared v.rec, so unchecked
// runtimes (rt.recs == nil) leave the accessors on their no-op path.
func (rt *Runtime) armAccessCheck(v *Values, l *Loop, worker, i int, writes []int) {
	if rt.recs == nil {
		return
	}
	r := &rt.recs[worker]
	var reads []int
	if l.Reads != nil {
		reads = l.Reads(i)
	}
	r.begin(i, writes, reads, l.Reads != nil)
	v.rec = r
}

// accessViolation returns the iteration's first undeclared access, nil when
// the iteration was unchecked or clean. Called after the body returns, so one
// iteration's diff costs one pointer test on the unchecked path.
func (v *Values) accessViolation() error {
	if v.rec == nil || v.rec.violation == nil {
		return nil
	}
	return v.rec.violation
}
