package core

import (
	"strings"
	"testing"
)

// TestValidateIdentityFastPath checks the lazy writer-table path: a pure
// identity-subscript loop (the triangular-solve shape) validates without
// materializing the table, and must still catch out-of-range writes.
func TestValidateIdentityFastPath(t *testing.T) {
	ids := make([]int, 1000)
	for i := range ids {
		ids[i] = i
	}
	l := &Loop{
		N:      1000,
		Data:   1000,
		Writes: func(i int) []int { return ids[i : i+1] },
		Body:   func(i int, v *Values) {},
	}
	if err := l.Validate(); err != nil {
		t.Fatalf("identity loop rejected: %v", err)
	}
	short := &Loop{
		N:      10,
		Data:   5,
		Writes: func(i int) []int { return []int{i} },
		Body:   func(i int, v *Values) {},
	}
	if err := short.Validate(); err == nil || !strings.Contains(err.Error(), "outside data length") {
		t.Fatalf("identity loop writing past Data accepted: %v", err)
	}
	// Repeated validation of an identity loop must not allocate (the fast
	// path never touches the writer table, pooled or otherwise).
	if allocs := testing.AllocsPerRun(20, func() {
		if err := l.Validate(); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Errorf("identity validation allocates %v objects per run, want 0", allocs)
	}
}

// TestValidateMixedWritesCollisions checks collisions across the
// identity-prefix boundary in both directions, which the lazy
// materialization must backfill correctly.
func TestValidateMixedWritesCollisions(t *testing.T) {
	// Iterations 0..4 write their own index; iteration 5 rewrites element 2.
	late := &Loop{
		N:    6,
		Data: 6,
		Writes: func(i int) []int {
			if i == 5 {
				return []int{2}
			}
			return []int{i}
		},
		Body: func(i int, v *Values) {},
	}
	if err := late.Validate(); err == nil || !strings.Contains(err.Error(), "output dependency") {
		t.Fatalf("collision with identity prefix not detected: %v", err)
	}

	// An empty-writes iteration must not be treated as having written its
	// own index: iteration 0 writes nothing, iteration 1 writes element 0 —
	// no output dependency exists.
	gap := &Loop{
		N:    2,
		Data: 2,
		Writes: func(i int) []int {
			if i == 0 {
				return nil
			}
			return []int{0}
		},
		Body: func(i int, v *Values) {},
	}
	if err := gap.Validate(); err != nil {
		t.Fatalf("empty-writes iteration falsely flagged: %v", err)
	}

	// A multi-element iteration may repeat its own element but not a
	// previous iteration's.
	multi := &Loop{
		N:    3,
		Data: 6,
		Writes: func(i int) []int {
			return []int{2 * i, 2*i + 1, 2 * i} // repeats its own first element
		},
		Body: func(i int, v *Values) {},
	}
	if err := multi.Validate(); err != nil {
		t.Fatalf("intra-iteration repeat falsely flagged: %v", err)
	}
}

// TestValidateBodyVariants checks the exactly-one-body rule.
func TestValidateBodyVariants(t *testing.T) {
	writes := func(i int) []int { return []int{i} }
	both := &Loop{N: 1, Data: 1, Writes: writes,
		Body:    func(i int, v *Values) {},
		BodyErr: func(i int, v *Values) error { return nil },
	}
	if err := both.Validate(); err == nil {
		t.Error("loop with both Body and BodyErr accepted")
	}
	neither := &Loop{N: 1, Data: 1, Writes: writes}
	if err := neither.Validate(); err == nil {
		t.Error("loop with no body accepted")
	}
	errOnly := &Loop{N: 1, Data: 1, Writes: writes,
		BodyErr: func(i int, v *Values) error { return nil },
	}
	if err := errOnly.Validate(); err != nil {
		t.Errorf("BodyErr-only loop rejected: %v", err)
	}
}
