package core

import (
	"context"
	"fmt"
	"time"

	"doacross/internal/flags"
	"doacross/internal/sched"
)

// RunBlocked executes the loop with the strip-mined (blocked) variant of
// Section 2.3: the original loop L is transformed into an outer sequential
// loop over contiguous blocks of blockSize iterations and an inner
// preprocessed doacross over each block. Preprocessing and postprocessing run
// before and after every block, so the iter and ready arrays are reused block
// after block; dependencies that cross blocks are automatically satisfied
// because the earlier block's postprocessing has already copied its results
// into y.
//
// The report aggregates the per-block phase times.
func (rt *Runtime) RunBlocked(l *Loop, y []float64, blockSize int) (Report, error) {
	return rt.RunBlockedContext(context.Background(), l, y, blockSize)
}

// RunBlockedContext is RunBlocked with cancellation and failure propagation:
// each block runs through RunContext, so the run is abortable between (and
// inside) the per-block wavefronts exactly like a plain RunContext.
func (rt *Runtime) RunBlockedContext(ctx context.Context, l *Loop, y []float64, blockSize int) (Report, error) {
	if blockSize <= 0 {
		return Report{}, fmt.Errorf("core: block size must be positive, got %d", blockSize)
	}
	if rt.opts.Order != nil {
		return Report{}, fmt.Errorf("core: RunBlocked does not support a reordered execution order")
	}
	if err := rt.checkRunArgs(l, y); err != nil {
		return Report{}, err
	}
	rep := Report{
		Workers:     rt.opts.Workers,
		Iterations:  l.N,
		WaitPolicy:  rt.opts.WaitStrategy.String(),
		SchedPolicy: rt.opts.Policy.String(),
		Order:       "blocked",
	}
	start := time.Now()
	for lo := 0; lo < l.N; lo += blockSize {
		hi := lo + blockSize
		if hi > l.N {
			hi = l.N
		}
		sub := &Loop{
			N:      hi - lo,
			Data:   l.Data,
			Writes: func(i int) []int { return l.Writes(lo + i) },
		}
		if l.BodyErr != nil {
			sub.BodyErr = func(i int, v *Values) error { return l.BodyErr(lo+i, v) }
		} else {
			sub.Body = func(i int, v *Values) { l.Body(lo+i, v) }
		}
		if l.Reads != nil {
			sub.Reads = func(i int) []int { return l.Reads(lo + i) }
		}
		// Iteration indices inside the block are shifted to be block-local;
		// because the block runs after all earlier blocks have fully
		// completed (and postprocessed), the relative order inside the block
		// is all that matters for the dependency checks.
		blockRep, err := rt.RunContext(ctx, sub, y)
		if err != nil {
			return Report{}, err
		}
		rep.PreTime += blockRep.PreTime
		rep.ExecTime += blockRep.ExecTime
		rep.PostTime += blockRep.PostTime
		rep.TrueDeps += blockRep.TrueDeps
		rep.SelfDeps += blockRep.SelfDeps
		rep.AntiOrNone += blockRep.AntiOrNone
		rep.WaitPolls += blockRep.WaitPolls
	}
	rep.TotalTime = time.Since(start)
	return rep, nil
}

// LinearSubscript describes a left-hand-side subscript of the form
// a(i) = C*i + D with C != 0, the case Section 2.3 identifies as allowing the
// execution-time preprocessing phase (and the iter array) to be eliminated
// entirely: whether an element e is written by the loop, and by which
// iteration, follows from (e-D) mod C.
type LinearSubscript struct {
	C, D int
}

// Writer returns the iteration that writes element e under the subscript, or
// -1 if no iteration in [0, n) writes it.
func (s LinearSubscript) Writer(e, n int) int {
	if s.C == 0 {
		return -1
	}
	d := e - s.D
	if d%s.C != 0 {
		return -1
	}
	i := d / s.C
	if i < 0 || i >= n {
		return -1
	}
	return i
}

// WritesFunc returns a Writes function for a Loop using this subscript.
func (s LinearSubscript) WritesFunc() func(i int) []int {
	return func(i int) []int { return []int{s.C*i + s.D} }
}

// linearTable implements the writerTable interface using the closed-form
// subscript instead of an inspector-filled array.
type linearTable struct {
	sub LinearSubscript
	n   int
}

func (t linearTable) Classify(e, i int) (flags.Dependence, int64) {
	w := t.sub.Writer(e, t.n)
	switch {
	case w < 0:
		return flags.AntiOrNone, flags.MaxInt
	case w < i:
		return flags.TrueDep, int64(w)
	case w == i:
		return flags.SelfDep, int64(w)
	default:
		return flags.AntiOrNone, int64(w)
	}
}
func (t linearTable) Record(e, i int) {}
func (t linearTable) Len() int        { return 0 }

// RunLinear executes the loop with the linear-subscript variant of Section
// 2.3: no inspector runs and no iter array is consulted; the dependency check
// uses the closed-form subscript. The loop's Writes function must agree with
// the subscript (Validate via Loop.Validate as usual). Postprocessing still
// copies results back and resets the ready flags.
func (rt *Runtime) RunLinear(l *Loop, y []float64, sub LinearSubscript) (Report, error) {
	if sub.C == 0 {
		return Report{}, fmt.Errorf("core: linear subscript requires C != 0")
	}
	if rt.opts.Order != nil {
		// The variant executes positions in natural order; silently dropping a
		// configured doconsider order would misattribute its results.
		return Report{}, fmt.Errorf("core: RunLinear does not support a reordered execution order")
	}
	if err := rt.checkRunArgs(l, y); err != nil {
		return Report{}, err
	}
	rep := Report{
		Workers:     rt.opts.Workers,
		Iterations:  l.N,
		WaitPolicy:  rt.opts.WaitStrategy.String(),
		SchedPolicy: rt.opts.Policy.String(),
		Order:       "linear-subscript",
	}
	start := time.Now()
	// No inspector phase at all — that is the point of the variant.
	tab := linearTable{sub: sub, n: l.N}
	ready := rt.waiter()
	ab := &rt.ab
	ab.arm(rt.wakeWaiters())

	execStart := time.Now()
	perWorker := make([]execCounters, rt.opts.Workers)
	vals := make([]Values, rt.opts.Workers)
	body := func(worker, pos int) {
		if ab.triggered.Load() {
			return
		}
		i := pos
		writes := l.Writes(i)
		// Seed ynew with the old values (Figure 5, statement S2).
		for _, e := range writes {
			rt.ynew[e] = y[e]
		}
		v := &vals[worker]
		v.reset(tab, ready, y, rt.ynew, i, rt.opts.WaitStrategy)
		v.cancel = &ab.triggered
		rt.armAccessCheck(v, l, worker, i, writes)
		if err := l.run(i, v); err != nil {
			ab.abort(err)
			return
		}
		if err := v.accessViolation(); err != nil {
			ab.abort(err)
			return
		}
		for _, e := range writes {
			ready.Set(e)
		}
		c := &perWorker[worker]
		c.trueDeps += int64(v.truedeps)
		c.selfDeps += int64(v.selfdeps)
		c.antiOrNone += int64(v.antiOrNone)
		c.waitPolls += int64(v.waits)
	}
	if rt.opts.Policy == sched.Dynamic {
		rt.pool.RunDynamic(l.N, rt.opts.Chunk, body)
	} else {
		rt.pool.RunSchedule(rt.schedule(l.N), body)
	}
	rep.ExecTime = time.Since(execStart)
	for _, c := range perWorker {
		rep.TrueDeps += c.trueDeps
		rep.SelfDeps += c.selfDeps
		rep.AntiOrNone += c.antiOrNone
		rep.WaitPolls += c.waitPolls
	}

	postStart := time.Now()
	aborted := ab.triggered.Load()
	if rt.opts.UseEpochTables {
		rt.pool.ParallelFor(l.N, func(i int) {
			for _, e := range l.Writes(i) {
				if !aborted {
					y[e] = rt.ynew[e]
				}
			}
		})
		rt.eReady.Advance()
	} else {
		rt.pool.ParallelFor(l.N, func(i int) {
			for _, e := range l.Writes(i) {
				if !aborted {
					y[e] = rt.ynew[e]
				}
				rt.ready.Clear(e)
			}
		})
	}
	rep.PostTime = time.Since(postStart)
	rep.TotalTime = time.Since(start)
	if err := ab.firstErr(); err != nil {
		return Report{}, err
	}
	return rep, nil
}

// RunDoall executes the loop as a doall: all iterations run concurrently with
// no dependency checks and no synchronization, writing directly into y. It is
// only correct for loops with no cross-iteration dependencies and exists as
// the zero-overhead baseline the paper's odd-L efficiencies are measured
// against. A body failure (BodyErr or Values.Fail) stops the remaining
// iterations and is returned.
func (rt *Runtime) RunDoall(l *Loop, y []float64) (Report, error) {
	if err := rt.checkRunArgs(l, y); err != nil {
		return Report{}, err
	}
	rep := Report{
		Workers:     rt.opts.Workers,
		Iterations:  l.N,
		Order:       "doall",
		SchedPolicy: rt.opts.Policy.String(),
	}
	ab := &rt.ab
	ab.arm(nil)
	start := time.Now()
	v := make([]Values, rt.opts.Workers)
	body := func(worker, pos int) {
		if ab.triggered.Load() {
			return
		}
		vv := &v[worker]
		vv.reset(seqTable{}, seqReady{}, y, y, pos, rt.opts.WaitStrategy)
		if rt.recs != nil {
			// The doall baseline never consults Writes; fetch it only when
			// the sanitizer needs the declared pattern.
			rt.armAccessCheck(vv, l, worker, pos, l.Writes(pos))
		}
		if err := l.run(pos, vv); err != nil {
			ab.abort(err)
			return
		}
		if err := vv.accessViolation(); err != nil {
			ab.abort(err)
		}
	}
	if rt.opts.Policy == sched.Dynamic {
		rt.pool.RunDynamic(l.N, rt.opts.Chunk, body)
	} else {
		rt.pool.RunSchedule(rt.schedule(l.N), body)
	}
	rep.ExecTime = time.Since(start)
	rep.TotalTime = rep.ExecTime
	if err := ab.firstErr(); err != nil {
		return Report{}, err
	}
	return rep, nil
}

// RunOracle executes the loop as a classical doacross with a-priori dependency
// knowledge: preds[i] lists the iterations that iteration i must wait for
// (for example from depgraph.Build, computed off line). No iter table is
// consulted and no inspector runs; reads always see the correct value because
// writes still go through the ynew renaming buffer. It quantifies what the
// execution-time checks of the preprocessed doacross cost relative to a
// compile-time doacross that magically knows the dependencies.
func (rt *Runtime) RunOracle(l *Loop, y []float64, preds [][]int32) (Report, error) {
	if len(preds) != l.N {
		return Report{}, fmt.Errorf("core: oracle dependency list has %d entries for %d iterations", len(preds), l.N)
	}
	if rt.opts.Order != nil {
		// preds is indexed by natural iteration and the executor runs
		// positions in natural order; a configured order would be silently
		// ignored rather than honored.
		return Report{}, fmt.Errorf("core: RunOracle does not support a reordered execution order")
	}
	if err := rt.checkRunArgs(l, y); err != nil {
		return Report{}, err
	}
	rep := Report{
		Workers:     rt.opts.Workers,
		Iterations:  l.N,
		Order:       "oracle",
		WaitPolicy:  rt.opts.WaitStrategy.String(),
		SchedPolicy: rt.opts.Policy.String(),
	}
	start := time.Now()
	done := flags.NewReadyFlags(l.N)
	if rt.opts.WaitStrategy == flags.WaitNotify {
		done.EnableNotify()
	}
	// The oracle executor needs the new values visible to dependent reads; a
	// per-element copy into y after all predecessors finish would race, so it
	// uses the same old/new renaming but classifies reads with a precomputed
	// writer index.
	writerOf := make([]int64, l.Data)
	for e := range writerOf {
		writerOf[e] = flags.MaxInt
	}
	for i := 0; i < l.N; i++ {
		for _, e := range l.Writes(i) {
			writerOf[e] = int64(i)
		}
	}
	tab := oracleTable{writer: writerOf}
	ready := rt.waiter()
	ab := &rt.ab
	wake := rt.wakeWaiters()
	ab.arm(func() {
		if wake != nil {
			wake()
		}
		done.WakeAll()
	})

	perWorker := make([]execCounters, rt.opts.Workers)
	vals := make([]Values, rt.opts.Workers)
	body := func(worker, pos int) {
		if ab.triggered.Load() {
			return
		}
		i := pos
		for _, p := range preds[i] {
			if _, ok := done.WaitCancel(int(p), rt.opts.WaitStrategy, &ab.triggered); !ok {
				return
			}
		}
		writes := l.Writes(i)
		// Seed ynew with the old values (Figure 5, statement S2).
		for _, e := range writes {
			rt.ynew[e] = y[e]
		}
		v := &vals[worker]
		v.reset(tab, ready, y, rt.ynew, i, rt.opts.WaitStrategy)
		v.cancel = &ab.triggered
		rt.armAccessCheck(v, l, worker, i, writes)
		if err := l.run(i, v); err != nil {
			ab.abort(err)
			return
		}
		if err := v.accessViolation(); err != nil {
			ab.abort(err)
			return
		}
		for _, e := range writes {
			ready.Set(e)
		}
		done.Set(i)
		c := &perWorker[worker]
		c.trueDeps += int64(v.truedeps)
		c.waitPolls += int64(v.waits)
	}
	if rt.opts.Policy == sched.Dynamic {
		rt.pool.RunDynamic(l.N, rt.opts.Chunk, body)
	} else {
		rt.pool.RunSchedule(rt.schedule(l.N), body)
	}
	for _, c := range perWorker {
		rep.TrueDeps += c.trueDeps
		rep.WaitPolls += c.waitPolls
	}
	rep.ExecTime = time.Since(start)

	postStart := time.Now()
	aborted := ab.triggered.Load()
	rt.pool.ParallelFor(l.N, func(i int) {
		for _, e := range l.Writes(i) {
			if !aborted {
				y[e] = rt.ynew[e]
			}
			if !rt.opts.UseEpochTables {
				rt.ready.Clear(e)
			}
		}
	})
	if rt.opts.UseEpochTables {
		rt.eReady.Advance()
	}
	rep.PostTime = time.Since(postStart)
	rep.TotalTime = time.Since(start)
	if err := ab.firstErr(); err != nil {
		return Report{}, err
	}
	return rep, nil
}

// oracleTable classifies reads against a precomputed writer index (no
// inspector, no waiting decision — waits are done on whole predecessor
// iterations before the body runs).
type oracleTable struct{ writer []int64 }

func (t oracleTable) Classify(e, i int) (flags.Dependence, int64) {
	w := t.writer[e]
	switch {
	case w < int64(i):
		if w == flags.MaxInt {
			return flags.AntiOrNone, w
		}
		return flags.TrueDep, w
	case w == int64(i):
		return flags.SelfDep, w
	default:
		return flags.AntiOrNone, w
	}
}
func (t oracleTable) Record(e, i int) {}
func (t oracleTable) Len() int        { return len(t.writer) }
