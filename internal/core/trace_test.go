package core

import (
	"strings"
	"testing"

	"doacross/internal/flags"
)

func tracedChainLoop(n int) *Loop {
	return &Loop{
		N: n, Data: n,
		Writes: func(i int) []int { return []int{i} },
		Body: func(i int, v *Values) {
			if i == 0 {
				v.Store(0, 1)
				return
			}
			v.Store(i, v.Load(i-1)+1)
		},
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	l := tracedChainLoop(20)
	rt := NewRuntime(20, Options{Workers: 2, WaitStrategy: flags.WaitSpinYield})
	if _, err := rt.Run(l, make([]float64, 20)); err != nil {
		t.Fatal(err)
	}
	if rt.Trace() != nil {
		t.Error("trace collected without CollectTrace")
	}
}

func TestTraceCollectsEveryIteration(t *testing.T) {
	n := 50
	l := tracedChainLoop(n)
	rt := NewRuntime(n, Options{Workers: 3, WaitStrategy: flags.WaitSpinYield, CollectTrace: true})
	y := make([]float64, n)
	if _, err := rt.Run(l, y); err != nil {
		t.Fatal(err)
	}
	tr := rt.Trace()
	if tr == nil {
		t.Fatal("no trace collected")
	}
	if len(tr.Iterations) != n {
		t.Fatalf("trace has %d iterations, want %d", len(tr.Iterations), n)
	}
	seen := make([]bool, n)
	for _, it := range tr.Iterations {
		if it.End < it.Start {
			t.Fatalf("iteration %d ends before it starts", it.Iteration)
		}
		if it.Worker < 0 || it.Worker >= 3 {
			t.Fatalf("iteration %d ran on unknown worker %d", it.Iteration, it.Worker)
		}
		if seen[it.Iteration] {
			t.Fatalf("iteration %d traced twice", it.Iteration)
		}
		seen[it.Iteration] = true
	}
	// Chain loop: every iteration except the first has one true dependency.
	deps := 0
	for _, it := range tr.Iterations {
		deps += it.TrueDeps
	}
	if deps != n-1 {
		t.Errorf("trace records %d true dependencies, want %d", deps, n-1)
	}
}

func TestTraceSummary(t *testing.T) {
	n := 80
	l := tracedChainLoop(n)
	rt := NewRuntime(n, Options{Workers: 4, WaitStrategy: flags.WaitSpinYield, CollectTrace: true})
	if _, err := rt.Run(l, make([]float64, n)); err != nil {
		t.Fatal(err)
	}
	s := rt.Trace().Summarize()
	if s.Iterations != n || s.Workers != 4 {
		t.Fatalf("summary header wrong: %+v", s)
	}
	total := 0
	for _, c := range s.PerWorkerIters {
		total += c
	}
	if total != n {
		t.Fatalf("per-worker counts sum to %d, want %d", total, n)
	}
	if s.Span <= 0 {
		t.Error("span should be positive")
	}
	out := s.String()
	if !strings.Contains(out, "worker 0") || !strings.Contains(out, "iterations") {
		t.Errorf("summary string: %q", out)
	}
}

func TestTraceByStartSorted(t *testing.T) {
	n := 40
	l := tracedChainLoop(n)
	rt := NewRuntime(n, Options{Workers: 2, WaitStrategy: flags.WaitSpinYield, CollectTrace: true})
	if _, err := rt.Run(l, make([]float64, n)); err != nil {
		t.Fatal(err)
	}
	byStart := rt.Trace().ByStart()
	for i := 1; i < len(byStart); i++ {
		if byStart[i].Start < byStart[i-1].Start {
			t.Fatal("ByStart is not sorted")
		}
	}
	if len(byStart) != n {
		t.Fatal("ByStart changed the number of records")
	}
}

func TestTraceWithReordering(t *testing.T) {
	// Tracing must record both the original iteration index and the
	// execution position when a doconsider order is active.
	n := 30
	l := tracedChainLoop(n)
	order := make([]int, n)
	for i := range order {
		order[i] = i // natural order is trivially topological
	}
	rt := NewRuntime(n, Options{Workers: 2, Order: order, WaitStrategy: flags.WaitSpinYield, CollectTrace: true})
	if _, err := rt.Run(l, make([]float64, n)); err != nil {
		t.Fatal(err)
	}
	for _, it := range rt.Trace().Iterations {
		if it.Iteration != order[it.Position] {
			t.Fatalf("trace position %d records iteration %d, want %d", it.Position, it.Iteration, order[it.Position])
		}
	}
}
