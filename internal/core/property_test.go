package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"doacross/internal/depgraph"
	"doacross/internal/doconsider"
	"doacross/internal/flags"
	"doacross/internal/sched"
	"doacross/internal/sparse"
)

// TestPropertyDoacrossEquivalentToSequential is the central correctness
// property of the paper's construct: for ANY loop with runtime-determined
// subscripts (no output dependencies), the preprocessed doacross produces
// exactly the result of the sequential loop, for any worker count, policy,
// wait strategy and table implementation.
func TestPropertyDoacrossEquivalentToSequential(t *testing.T) {
	f := func(seed int64, workerBits, policyBits, strategyBits, epochBit uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(120)
		l, y := randomFigure1(rng, n)
		seq := append([]float64(nil), y...)
		RunSequential(l, seq)

		workers := int(workerBits)%7 + 1
		policy := sched.Policy(int(policyBits) % 3)
		strategy := flags.WaitStrategy(int(strategyBits)%2 + 1) // SpinYield or Notify
		opts := Options{
			Workers:        workers,
			Policy:         policy,
			Chunk:          1 + rng.Intn(16),
			WaitStrategy:   strategy,
			UseEpochTables: epochBit%2 == 0,
		}
		par := append([]float64(nil), y...)
		rt := NewRuntime(l.Data, opts)
		if _, err := rt.Run(l, par); err != nil {
			return false
		}
		return sparse.VecMaxDiff(seq, par) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyBlockedEquivalentToSequential checks the same property for the
// strip-mined variant over random block sizes.
func TestPropertyBlockedEquivalentToSequential(t *testing.T) {
	f := func(seed int64, blockBits uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(100)
		l, y := randomFigure1(rng, n)
		seq := append([]float64(nil), y...)
		RunSequential(l, seq)
		block := int(blockBits)%n + 1
		par := append([]float64(nil), y...)
		rt := NewRuntime(l.Data, Options{Workers: 4, WaitStrategy: flags.WaitSpinYield})
		if _, err := rt.RunBlocked(l, par, block); err != nil {
			return false
		}
		return sparse.VecMaxDiff(seq, par) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyReorderedEquivalentToSequential checks that executing under any
// doconsider ordering (all of which are topological) preserves the sequential
// semantics.
func TestPropertyReorderedEquivalentToSequential(t *testing.T) {
	f := func(seed int64, strategyBits uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(100)
		l, y := randomFigure1(rng, n)
		g := depgraph.Build(depgraph.Access{N: l.N, Writes: l.Writes, Reads: l.Reads})
		strategy := doconsider.Strategies[int(strategyBits)%len(doconsider.Strategies)]
		order := doconsider.Order(g, strategy)
		if err := doconsider.Validate(g, order); err != nil {
			return false
		}
		seq := append([]float64(nil), y...)
		RunSequential(l, seq)
		par := append([]float64(nil), y...)
		rt := NewRuntime(l.Data, Options{Workers: 5, Order: order, WaitStrategy: flags.WaitSpinYield})
		if _, err := rt.Run(l, par); err != nil {
			return false
		}
		return sparse.VecMaxDiff(seq, par) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyScratchAlwaysCleanAfterRun checks the paper's reuse invariant:
// after postprocessing, every iter entry is back to MAXINT and every ready
// flag back to NOTDONE, whatever the loop looked like.
func TestPropertyScratchAlwaysCleanAfterRun(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(80)
		l, y := randomFigure1(rng, n)
		rt := NewRuntime(l.Data, Options{Workers: 3, WaitStrategy: flags.WaitSpinYield})
		if _, err := rt.Run(l, y); err != nil {
			return false
		}
		return rt.ScratchClean()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestManyWorkersFewIterations stresses the degenerate case where the worker
// count far exceeds the iteration count.
func TestManyWorkersFewIterations(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l, y := randomFigure1(rng, 5)
	seq := append([]float64(nil), y...)
	RunSequential(l, seq)
	for _, workers := range []int{8, 64, 200} {
		par := append([]float64(nil), y...)
		rt := NewRuntime(l.Data, Options{Workers: workers, WaitStrategy: flags.WaitSpinYield})
		if _, err := rt.Run(l, par); err != nil {
			t.Fatal(err)
		}
		if d := sparse.VecMaxDiff(seq, par); d != 0 {
			t.Fatalf("workers=%d: mismatch %v", workers, d)
		}
	}
}

// TestEmptyAndSingleIterationLoops covers the boundary sizes.
func TestEmptyAndSingleIterationLoops(t *testing.T) {
	empty := &Loop{N: 0, Data: 4, Writes: func(int) []int { return nil }, Body: func(int, *Values) {}}
	rt := NewRuntime(4, Options{Workers: 3})
	y := []float64{1, 2, 3, 4}
	if _, err := rt.Run(empty, y); err != nil {
		t.Fatal(err)
	}
	if y[0] != 1 || y[3] != 4 {
		t.Fatal("empty loop modified data")
	}

	single := &Loop{
		N: 1, Data: 4,
		Writes: func(int) []int { return []int{2} },
		Body:   func(i int, v *Values) { v.Store(2, v.LoadOld(0)*10) },
	}
	if _, err := rt.Run(single, y); err != nil {
		t.Fatal(err)
	}
	if y[2] != 10 {
		t.Fatalf("single-iteration loop result %v", y)
	}
}

// TestLongDependencyChainManyWorkers verifies that a worst-case loop (a pure
// chain) still terminates and produces the right answer when every iteration
// must wait for its predecessor across worker boundaries.
func TestLongDependencyChainManyWorkers(t *testing.T) {
	n := 3000
	a := make([]int, n)
	b := make([]int, n)
	for i := range a {
		a[i] = i
		if i > 0 {
			b[i] = i - 1
		} else {
			b[i] = 0
		}
	}
	l := figure1Loop(a, b, n)
	y := make([]float64, n)
	y[0] = 1
	seq := append([]float64(nil), y...)
	RunSequential(l, seq)
	for _, policy := range []sched.Policy{sched.Block, sched.Cyclic, sched.Dynamic} {
		par := append([]float64(nil), y...)
		rt := NewRuntime(n, Options{Workers: 8, Policy: policy, Chunk: 4, WaitStrategy: flags.WaitSpinYield})
		if _, err := rt.Run(l, par); err != nil {
			t.Fatal(err)
		}
		if d := sparse.VecMaxDiff(seq, par); d != 0 {
			t.Fatalf("policy %v: chain mismatch %v", policy, d)
		}
	}
}

// TestMultipleWritesPerIteration exercises loops where an iteration writes
// more than one element (the paper's construct permits this as long as no
// element is written twice).
func TestMultipleWritesPerIteration(t *testing.T) {
	n := 200
	dataLen := 3 * n
	l := &Loop{
		N:    n,
		Data: dataLen,
		Writes: func(i int) []int {
			return []int{3 * i, 3*i + 1}
		},
		Reads: func(i int) []int {
			if i == 0 {
				return nil
			}
			return []int{3 * (i - 1), 3*(i-1) + 1}
		},
		Body: func(i int, v *Values) {
			if i == 0 {
				v.Store(0, 1)
				v.Store(1, 2)
				return
			}
			v.Store(3*i, v.Load(3*(i-1))+1)
			v.Store(3*i+1, v.Load(3*(i-1)+1)*1.01)
		},
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	y := make([]float64, dataLen)
	seq := append([]float64(nil), y...)
	RunSequential(l, seq)
	par := append([]float64(nil), y...)
	rt := NewRuntime(dataLen, Options{Workers: 4, WaitStrategy: flags.WaitSpinYield})
	if _, err := rt.Run(l, par); err != nil {
		t.Fatal(err)
	}
	if d := sparse.VecMaxDiff(seq, par); d != 0 {
		t.Fatalf("multi-write mismatch %v", d)
	}
	if !rt.ScratchClean() {
		t.Error("scratch not clean after multi-write loop")
	}
}
