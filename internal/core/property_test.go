package core

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"testing/quick"

	"doacross/internal/depgraph"
	"doacross/internal/doconsider"
	"doacross/internal/flags"
	"doacross/internal/sched"
	"doacross/internal/sparse"
)

// TestPropertyDoacrossEquivalentToSequential is the central correctness
// property of the paper's construct: for ANY loop with runtime-determined
// subscripts (no output dependencies), the preprocessed doacross produces
// exactly the result of the sequential loop, for any worker count, policy,
// wait strategy and table implementation.
func TestPropertyDoacrossEquivalentToSequential(t *testing.T) {
	f := func(seed int64, workerBits, policyBits, strategyBits, epochBit uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(120)
		l, y := randomFigure1(rng, n)
		seq := append([]float64(nil), y...)
		mustRunSequential(t, l, seq)

		workers := int(workerBits)%7 + 1
		policy := sched.Policy(int(policyBits) % 3)
		strategy := flags.WaitStrategy(int(strategyBits)%2 + 1) // SpinYield or Notify
		opts := Options{
			Workers:        workers,
			Policy:         policy,
			Chunk:          1 + rng.Intn(16),
			WaitStrategy:   strategy,
			UseEpochTables: epochBit%2 == 0,
		}
		par := append([]float64(nil), y...)
		rt := NewRuntime(l.Data, opts)
		if _, err := rt.Run(l, par); err != nil {
			return false
		}
		return sparse.VecMaxDiff(seq, par) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyBlockedEquivalentToSequential checks the same property for the
// strip-mined variant over random block sizes.
func TestPropertyBlockedEquivalentToSequential(t *testing.T) {
	f := func(seed int64, blockBits uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(100)
		l, y := randomFigure1(rng, n)
		seq := append([]float64(nil), y...)
		mustRunSequential(t, l, seq)
		block := int(blockBits)%n + 1
		par := append([]float64(nil), y...)
		rt := NewRuntime(l.Data, Options{Workers: 4, WaitStrategy: flags.WaitSpinYield})
		if _, err := rt.RunBlocked(l, par, block); err != nil {
			return false
		}
		return sparse.VecMaxDiff(seq, par) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyReorderedEquivalentToSequential checks that executing under any
// doconsider ordering (all of which are topological) preserves the sequential
// semantics.
func TestPropertyReorderedEquivalentToSequential(t *testing.T) {
	f := func(seed int64, strategyBits uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(100)
		l, y := randomFigure1(rng, n)
		g := depgraph.Build(depgraph.Access{N: l.N, Writes: l.Writes, Reads: l.Reads})
		strategy := doconsider.Strategies[int(strategyBits)%len(doconsider.Strategies)]
		order := doconsider.Order(g, strategy)
		if err := doconsider.Validate(g, order); err != nil {
			return false
		}
		seq := append([]float64(nil), y...)
		mustRunSequential(t, l, seq)
		par := append([]float64(nil), y...)
		rt := NewRuntime(l.Data, Options{Workers: 5, Order: order, WaitStrategy: flags.WaitSpinYield})
		if _, err := rt.Run(l, par); err != nil {
			return false
		}
		return sparse.VecMaxDiff(seq, par) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyScratchAlwaysCleanAfterRun checks the paper's reuse invariant:
// after postprocessing, every iter entry is back to MAXINT and every ready
// flag back to NOTDONE, whatever the loop looked like.
func TestPropertyScratchAlwaysCleanAfterRun(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(80)
		l, y := randomFigure1(rng, n)
		rt := NewRuntime(l.Data, Options{Workers: 3, WaitStrategy: flags.WaitSpinYield})
		if _, err := rt.Run(l, y); err != nil {
			return false
		}
		return rt.ScratchClean()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestManyWorkersFewIterations stresses the degenerate case where the worker
// count far exceeds the iteration count.
func TestManyWorkersFewIterations(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l, y := randomFigure1(rng, 5)
	seq := append([]float64(nil), y...)
	mustRunSequential(t, l, seq)
	for _, workers := range []int{8, 64, 200} {
		par := append([]float64(nil), y...)
		rt := NewRuntime(l.Data, Options{Workers: workers, WaitStrategy: flags.WaitSpinYield})
		if _, err := rt.Run(l, par); err != nil {
			t.Fatal(err)
		}
		if d := sparse.VecMaxDiff(seq, par); d != 0 {
			t.Fatalf("workers=%d: mismatch %v", workers, d)
		}
	}
}

// TestEmptyAndSingleIterationLoops covers the boundary sizes.
func TestEmptyAndSingleIterationLoops(t *testing.T) {
	empty := &Loop{N: 0, Data: 4, Writes: func(int) []int { return nil }, Body: func(int, *Values) {}}
	rt := NewRuntime(4, Options{Workers: 3})
	y := []float64{1, 2, 3, 4}
	if _, err := rt.Run(empty, y); err != nil {
		t.Fatal(err)
	}
	if y[0] != 1 || y[3] != 4 {
		t.Fatal("empty loop modified data")
	}

	single := &Loop{
		N: 1, Data: 4,
		Writes: func(int) []int { return []int{2} },
		Body:   func(i int, v *Values) { v.Store(2, v.LoadOld(0)*10) },
	}
	if _, err := rt.Run(single, y); err != nil {
		t.Fatal(err)
	}
	if y[2] != 10 {
		t.Fatalf("single-iteration loop result %v", y)
	}
}

// TestLongDependencyChainManyWorkers verifies that a worst-case loop (a pure
// chain) still terminates and produces the right answer when every iteration
// must wait for its predecessor across worker boundaries.
func TestLongDependencyChainManyWorkers(t *testing.T) {
	n := 3000
	a := make([]int, n)
	b := make([]int, n)
	for i := range a {
		a[i] = i
		if i > 0 {
			b[i] = i - 1
		} else {
			b[i] = 0
		}
	}
	l := figure1Loop(a, b, n)
	y := make([]float64, n)
	y[0] = 1
	seq := append([]float64(nil), y...)
	mustRunSequential(t, l, seq)
	for _, policy := range []sched.Policy{sched.Block, sched.Cyclic, sched.Dynamic} {
		par := append([]float64(nil), y...)
		rt := NewRuntime(n, Options{Workers: 8, Policy: policy, Chunk: 4, WaitStrategy: flags.WaitSpinYield})
		if _, err := rt.Run(l, par); err != nil {
			t.Fatal(err)
		}
		if d := sparse.VecMaxDiff(seq, par); d != 0 {
			t.Fatalf("policy %v: chain mismatch %v", policy, d)
		}
	}
}

// TestMultipleWritesPerIteration exercises loops where an iteration writes
// more than one element (the paper's construct permits this as long as no
// element is written twice).
func TestMultipleWritesPerIteration(t *testing.T) {
	n := 200
	dataLen := 3 * n
	l := &Loop{
		N:    n,
		Data: dataLen,
		Writes: func(i int) []int {
			return []int{3 * i, 3*i + 1}
		},
		Reads: func(i int) []int {
			if i == 0 {
				return nil
			}
			return []int{3 * (i - 1), 3*(i-1) + 1}
		},
		Body: func(i int, v *Values) {
			if i == 0 {
				v.Store(0, 1)
				v.Store(1, 2)
				return
			}
			v.Store(3*i, v.Load(3*(i-1))+1)
			v.Store(3*i+1, v.Load(3*(i-1)+1)*1.01)
		},
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	y := make([]float64, dataLen)
	seq := append([]float64(nil), y...)
	mustRunSequential(t, l, seq)
	par := append([]float64(nil), y...)
	rt := NewRuntime(dataLen, Options{Workers: 4, WaitStrategy: flags.WaitSpinYield})
	if _, err := rt.Run(l, par); err != nil {
		t.Fatal(err)
	}
	if d := sparse.VecMaxDiff(seq, par); d != 0 {
		t.Fatalf("multi-write mismatch %v", d)
	}
	if !rt.ScratchClean() {
		t.Error("scratch not clean after multi-write loop")
	}
}

// randomDAGLoop builds a loop with a genuinely random dependency DAG:
// iteration i writes element perm[i] and reads several random elements, so
// the graph mixes multi-predecessor true dependencies, anti-dependencies
// (reads of elements written by later iterations, which must observe the old
// value) and reads of untouched elements. The body arithmetic is
// non-commutative in its operands, so any mis-ordered or mis-classified read
// changes the bits of the result.
func randomDAGLoop(rng *rand.Rand, n int) (*Loop, []float64) {
	dataLen := 2 * n
	perm := rng.Perm(dataLen)[:n]
	reads := make([][]int, n)
	for i := range reads {
		k := rng.Intn(4)
		for j := 0; j < k; j++ {
			reads[i] = append(reads[i], rng.Intn(dataLen))
		}
	}
	l := &Loop{
		N:      n,
		Data:   dataLen,
		Writes: func(i int) []int { return perm[i : i+1] },
		Reads:  func(i int) []int { return reads[i] },
		Body: func(i int, v *Values) {
			s := float64(i) + 1
			for k, e := range reads[i] {
				s = 0.75*s + float64(k+1)*v.Load(e)
			}
			v.Store(perm[i], s)
		},
	}
	y := make([]float64, dataLen)
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	return l, y
}

// TestPropertyExecutorsEquivalentToSequential runs random-DAG loops through
// every executor kind (doacross, wavefront, auto, wavefront-dynamic) and
// asserts bitwise equality with the sequential loop across worker counts,
// policies and table implementations — the acceptance property of the
// pluggable executor layer.
func TestPropertyExecutorsEquivalentToSequential(t *testing.T) {
	f := func(seed int64, workerBits, policyBits, execBits, epochBit uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(120)
		l, y := randomDAGLoop(rng, n)
		if err := l.Validate(); err != nil {
			t.Logf("invalid loop: %v", err)
			return false
		}
		seq := append([]float64(nil), y...)
		mustRunSequential(t, l, seq)

		exec := ExecutorKind(int(execBits) % 4)
		opts := Options{
			Workers:        int(workerBits)%7 + 1,
			Policy:         sched.Policy(int(policyBits) % 3),
			Chunk:          1 + rng.Intn(16),
			WaitStrategy:   flags.WaitSpinYield,
			UseEpochTables: epochBit%2 == 0,
			Executor:       exec,
		}
		rt := NewRuntime(l.Data, opts)
		defer rt.Close()
		// Two runs back to back: the second exercises the schedule cache
		// (and, for the doacross, the scratch reuse) on the same runtime.
		for run := 0; run < 2; run++ {
			par := append([]float64(nil), y...)
			rep, err := rt.Run(l, par)
			if err != nil {
				t.Logf("executor %v run %d: %v", exec, run, err)
				return false
			}
			if exec == ExecWavefront || exec == ExecWavefrontDynamic {
				if rep.Executor != exec.String() {
					t.Logf("report says %q, want %q", rep.Executor, exec.String())
					return false
				}
				if (run == 1) != rep.InspectCached {
					t.Logf("run %d: InspectCached=%v", run, rep.InspectCached)
					return false
				}
			}
			if sparse.VecMaxDiff(seq, par) != 0 {
				t.Logf("executor %v run %d: result differs from sequential", exec, run)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestWavefrontMatchesDoacrossOnFigure1 cross-checks the two executors on the
// paper's Figure 1 loop shape (single read per iteration), including the
// scratch-clean reuse invariant of the runtime they share.
func TestWavefrontMatchesDoacrossOnFigure1(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		l, y := randomFigure1(rng, 80+rng.Intn(80))
		seq := append([]float64(nil), y...)
		mustRunSequential(t, l, seq)
		for _, exec := range []ExecutorKind{ExecDoacross, ExecWavefront, ExecWavefrontDynamic, ExecAuto} {
			par := append([]float64(nil), y...)
			rt := NewRuntime(l.Data, Options{Workers: 4, WaitStrategy: flags.WaitSpinYield, Executor: exec})
			if _, err := rt.Run(l, par); err != nil {
				t.Fatal(err)
			}
			if d := sparse.VecMaxDiff(seq, par); d != 0 {
				t.Fatalf("trial %d executor %v: mismatch %v", trial, exec, d)
			}
			if !rt.ScratchClean() {
				t.Fatalf("trial %d executor %v: scratch not clean", trial, exec)
			}
			rt.Close()
		}
	}
}

// TestWavefrontRequiresReadsAndNaturalOrder pins the wavefront executor's
// structural requirements: no Reads or an explicit Order must fail loudly,
// and Auto must silently fall back to the doacross in both cases.
func TestWavefrontRequiresReadsAndNaturalOrder(t *testing.T) {
	n := 20
	noReads := &Loop{
		N: n, Data: n,
		Writes: func(i int) []int { return []int{i} },
		Body:   func(i int, v *Values) { v.Store(i, float64(i)) },
	}
	y := make([]float64, n)
	rt := NewRuntime(n, Options{Workers: 2, Executor: ExecWavefront})
	defer rt.Close()
	if _, err := rt.Run(noReads, y); err == nil {
		t.Fatal("wavefront executor accepted a loop without Reads")
	}

	order := make([]int, n)
	for i := range order {
		order[i] = n - 1 - i
	}
	withReads := &Loop{
		N: n, Data: n,
		Writes: func(i int) []int { return []int{i} },
		Reads:  func(i int) []int { return nil },
		Body:   func(i int, v *Values) { v.Store(i, float64(i)) },
	}
	rtOrd := NewRuntime(n, Options{Workers: 2, Executor: ExecWavefront, Order: order})
	defer rtOrd.Close()
	if _, err := rtOrd.Run(withReads, y); err == nil {
		t.Fatal("wavefront executor accepted an explicit Order")
	}

	// The dynamic wavefront shares both structural requirements.
	rtDyn := NewRuntime(n, Options{Workers: 2, Executor: ExecWavefrontDynamic})
	defer rtDyn.Close()
	if _, err := rtDyn.Run(noReads, y); err == nil {
		t.Fatal("dynamic wavefront executor accepted a loop without Reads")
	}
	rtDynOrd := NewRuntime(n, Options{Workers: 2, Executor: ExecWavefrontDynamic, Order: order})
	defer rtDynOrd.Close()
	if _, err := rtDynOrd.Run(withReads, y); err == nil {
		t.Fatal("dynamic wavefront executor accepted an explicit Order")
	}

	for _, l := range []*Loop{noReads, withReads} {
		rtAuto := NewRuntime(n, Options{Workers: 2, Executor: ExecAuto, Order: order})
		rep, err := rtAuto.Run(l, y)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Executor != "doacross" {
			t.Fatalf("auto picked %q for a constrained loop, want doacross", rep.Executor)
		}
		rtAuto.Close()
	}

	rtBad := NewRuntime(n, Options{Workers: 2, Executor: ExecutorKind(99)})
	defer rtBad.Close()
	if _, err := rtBad.Run(withReads, y); err == nil {
		t.Fatal("unknown executor kind accepted")
	}
}

// TestAutoSelectsByGraphShape checks the Auto heuristic on the two extremes:
// a pure chain (width 1) must keep the doacross, a doall (a single level)
// must pre-schedule.
func TestAutoSelectsByGraphShape(t *testing.T) {
	n := 400
	chain := &Loop{
		N: n, Data: n,
		Writes: func(i int) []int { return []int{i} },
		Reads: func(i int) []int {
			if i == 0 {
				return nil
			}
			return []int{i - 1}
		},
		Body: func(i int, v *Values) {
			if i == 0 {
				v.Store(0, 1)
				return
			}
			v.Store(i, v.Load(i-1)+1)
		},
	}
	doall := &Loop{
		N: n, Data: 2 * n,
		Writes: func(i int) []int { return []int{i} },
		Reads:  func(i int) []int { return []int{i + n} },
		Body:   func(i int, v *Values) { v.Store(i, 2*v.Load(i+n)) },
	}
	for _, tc := range []struct {
		name string
		l    *Loop
		want string
	}{
		{"chain", chain, "doacross"},
		{"doall", doall, "wavefront"},
	} {
		y := make([]float64, tc.l.Data)
		rt := NewRuntime(tc.l.Data, Options{Workers: 4, WaitStrategy: flags.WaitSpinYield, Executor: ExecAuto})
		rep, err := rt.Run(tc.l, y)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Executor != tc.want {
			t.Errorf("%s: auto picked %q, want %q", tc.name, rep.Executor, tc.want)
		}
		rt.Close()
	}
}

// TestWavefrontCancellationMidLevel aborts wavefront runs from inside a loop
// body — context cancellation, body error and body panic, triggered at a
// random iteration so the abort lands mid-level — and checks that the run
// fails with the right error, that the remaining levels drain without
// deadlock, and that the same runtime then completes an untainted run with
// bitwise-correct results.
func TestWavefrontCancellationMidLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 15; trial++ {
		n := 120 + rng.Intn(120)
		l, y := randomDAGLoop(rng, n)
		seq := append([]float64(nil), y...)
		mustRunSequential(t, l, seq)
		trigger := rng.Intn(n)

		for _, exec := range []ExecutorKind{ExecWavefront, ExecWavefrontDynamic, ExecDoacross} {
			rt := NewRuntime(l.Data, Options{Workers: 4, WaitStrategy: flags.WaitSpinYield, Executor: exec})

			// Context cancellation from inside a body.
			ctx, cancel := context.WithCancel(context.Background())
			cancelling := *l
			cancelling.Body = func(i int, v *Values) {
				if i == trigger {
					cancel()
					// Give the watcher a moment so the abort lands while this
					// level (and its successors) still have iterations left.
					runtime.Gosched()
				}
				l.Body(i, v)
			}
			par := append([]float64(nil), y...)
			if _, err := rt.RunContext(ctx, &cancelling, par); err == nil {
				t.Fatalf("trial %d %v: cancelled run returned nil error", trial, exec)
			}
			cancel()

			// Body error at a random iteration.
			failing := *l
			failing.Body = nil
			failing.BodyErr = func(i int, v *Values) error {
				if i == trigger {
					return fmt.Errorf("iteration %d failed", i)
				}
				l.Body(i, v)
				return nil
			}
			par = append([]float64(nil), y...)
			if _, err := rt.Run(&failing, par); err == nil || !strings.Contains(err.Error(), "failed") {
				t.Fatalf("trial %d %v: body error not propagated: %v", trial, exec, err)
			}

			// Body panic at a random iteration.
			panicking := *l
			panicking.Body = func(i int, v *Values) {
				if i == trigger {
					panic("boom")
				}
				l.Body(i, v)
			}
			par = append([]float64(nil), y...)
			if _, err := rt.Run(&panicking, par); err == nil || !strings.Contains(err.Error(), "boom") {
				t.Fatalf("trial %d %v: body panic not recovered: %v", trial, exec, err)
			}

			// The runtime must remain fully reusable after every abort.
			par = append([]float64(nil), y...)
			if _, err := rt.Run(l, par); err != nil {
				t.Fatalf("trial %d %v: clean run after aborts failed: %v", trial, exec, err)
			}
			if d := sparse.VecMaxDiff(seq, par); d != 0 {
				t.Fatalf("trial %d %v: post-abort run mismatch %v", trial, exec, d)
			}
			if !rt.ScratchClean() {
				t.Fatalf("trial %d %v: scratch dirty after aborts", trial, exec)
			}
			rt.Close()
		}
	}
}

// skewedLevelLoop builds a loop whose wavefront decomposition is depth
// levels of the given width with one hot iteration per level: every
// iteration reads one element of the previous level, while the level's first
// iteration reads about half of it and burns extra non-commutative
// arithmetic on each value — the heavy-tailed per-iteration cost regime the
// dynamic within-level executor targets. Any mis-ordered, dropped or doubled
// read changes the bits of the result.
func skewedLevelLoop(rng *rand.Rand, width, depth int) (*Loop, []float64) {
	n := width * depth
	hotReads := width / 2
	reads := make([][]int, n)
	for l := 1; l < depth; l++ {
		base, prev := l*width, (l-1)*width
		for k := 0; k < width; k++ {
			i := base + k
			reads[i] = []int{prev + rng.Intn(width)}
			if k == 0 {
				for h := 0; h < hotReads; h++ {
					reads[i] = append(reads[i], prev+rng.Intn(width))
				}
			}
		}
	}
	l := &Loop{
		N:      n,
		Data:   n,
		Writes: func(i int) []int { return []int{i} },
		Reads:  func(i int) []int { return reads[i] },
		Body: func(i int, v *Values) {
			s := float64(i%11) + 0.5
			for k, e := range reads[i] {
				x := v.Load(e)
				// The hot iteration's extra work is real arithmetic over the
				// loaded value, so skipping it (or reordering it) is visible.
				if k > 0 {
					for r := 0; r < 8; r++ {
						x = 0.5*x + float64(r)
					}
				}
				s = 0.75*s + float64(k+1)*x
			}
			v.Store(i, s)
		},
	}
	y := make([]float64, n)
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	return l, y
}

// TestSkewedCostExecutorsEquivalentToSequential runs the heavy-tailed
// one-hot-iteration-per-level loops through all four executors across worker
// counts, policies and table implementations, asserting bitwise equality
// with the sequential loop — the correctness side of the workload the
// dynamic executor exists for (its performance side is
// BenchmarkDynamicWavefront and the machine-model crossover tests).
func TestSkewedCostExecutorsEquivalentToSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	execs := []ExecutorKind{ExecDoacross, ExecWavefront, ExecWavefrontDynamic, ExecAuto}
	for trial := 0; trial < 6; trial++ {
		width := 8 + rng.Intn(40)
		depth := 2 + rng.Intn(6)
		l, y := skewedLevelLoop(rng, width, depth)
		if err := l.Validate(); err != nil {
			t.Fatal(err)
		}
		seq := append([]float64(nil), y...)
		mustRunSequential(t, l, seq)
		for _, workers := range []int{1, 3, 7} {
			for _, policy := range []sched.Policy{sched.Block, sched.Cyclic, sched.Dynamic} {
				for _, exec := range execs {
					opts := Options{
						Workers:        workers,
						Policy:         policy,
						Chunk:          1 + rng.Intn(8),
						WaitStrategy:   flags.WaitSpinYield,
						UseEpochTables: trial%2 == 0,
						Executor:       exec,
					}
					rt := NewRuntime(l.Data, opts)
					for run := 0; run < 2; run++ {
						par := append([]float64(nil), y...)
						rep, err := rt.Run(l, par)
						if err != nil {
							t.Fatalf("trial %d %v P=%d %v: %v", trial, exec, workers, policy, err)
						}
						if exec == ExecWavefrontDynamic && rep.WaitPolls != 0 {
							t.Fatalf("trial %d: dynamic executor busy-waited (%d polls)", trial, rep.WaitPolls)
						}
						if d := sparse.VecMaxDiff(seq, par); d != 0 {
							t.Fatalf("trial %d %v P=%d %v run %d: mismatch %v", trial, exec, workers, policy, run, d)
						}
					}
					rt.Close()
				}
			}
		}
	}
}

// TestDynamicWavefrontAbortsAtHotIteration aborts dynamic-executor runs from
// inside the hot iteration of a middle level — the worst spot: the rest of
// the level is mid-claim on other workers — via cancellation, body error and
// body panic, and checks the abort drains through every remaining level
// barrier, the claim counter is left consistent (the next run starts clean),
// and the runtime stays bitwise-correct afterwards.
func TestDynamicWavefrontAbortsAtHotIteration(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 8; trial++ {
		width := 12 + rng.Intn(24)
		depth := 3 + rng.Intn(5)
		l, y := skewedLevelLoop(rng, width, depth)
		seq := append([]float64(nil), y...)
		mustRunSequential(t, l, seq)
		trigger := (depth / 2) * width // the hot iteration of a middle level

		rt := NewRuntime(l.Data, Options{Workers: 4, WaitStrategy: flags.WaitSpinYield, Executor: ExecWavefrontDynamic})

		ctx, cancel := context.WithCancel(context.Background())
		cancelling := *l
		cancelling.Body = func(i int, v *Values) {
			if i == trigger {
				cancel()
				runtime.Gosched()
			}
			l.Body(i, v)
		}
		par := append([]float64(nil), y...)
		if _, err := rt.RunContext(ctx, &cancelling, par); err == nil {
			t.Fatalf("trial %d: cancelled dynamic run returned nil error", trial)
		}
		cancel()

		failing := *l
		failing.Body = nil
		failing.BodyErr = func(i int, v *Values) error {
			if i == trigger {
				return fmt.Errorf("hot iteration %d failed", i)
			}
			l.Body(i, v)
			return nil
		}
		par = append([]float64(nil), y...)
		if _, err := rt.Run(&failing, par); err == nil || !strings.Contains(err.Error(), "failed") {
			t.Fatalf("trial %d: dynamic body error not propagated: %v", trial, err)
		}

		panicking := *l
		panicking.Body = func(i int, v *Values) {
			if i == trigger {
				panic("hot boom")
			}
			l.Body(i, v)
		}
		par = append([]float64(nil), y...)
		if _, err := rt.Run(&panicking, par); err == nil || !strings.Contains(err.Error(), "hot boom") {
			t.Fatalf("trial %d: dynamic body panic not recovered: %v", trial, err)
		}

		par = append([]float64(nil), y...)
		rep, err := rt.Run(l, par)
		if err != nil {
			t.Fatalf("trial %d: clean dynamic run after aborts failed: %v", trial, err)
		}
		if rep.Executor != "wavefront-dynamic" {
			t.Fatalf("trial %d: post-abort run used %q", trial, rep.Executor)
		}
		if d := sparse.VecMaxDiff(seq, par); d != 0 {
			t.Fatalf("trial %d: post-abort dynamic run mismatch %v", trial, d)
		}
		if !rt.ScratchClean() {
			t.Fatalf("trial %d: scratch dirty after dynamic aborts", trial)
		}
		rt.Close()
	}
}

// TestWavefrontInspectorFailuresReturnErrors pins the wavefront inspection's
// error contract: a Writes closure that writes out of range (an index panic
// on a pool worker) or a Reads closure that panics (on the caller goroutine,
// inside the structural hash) must surface as an error from Run — matching
// the doacross inspector shard's guard — and must leave the runtime usable.
func TestWavefrontInspectorFailuresReturnErrors(t *testing.T) {
	n := 64
	y := make([]float64, n)
	rt := NewRuntime(n, Options{Workers: 3, Executor: ExecWavefront})
	defer rt.Close()

	badWrites := &Loop{
		N: n, Data: n,
		Writes: func(i int) []int {
			if i == 17 {
				return []int{n + 5}
			}
			return []int{i}
		},
		Reads: func(i int) []int { return nil },
		Body:  func(i int, v *Values) { v.Store(i, 1) },
	}
	if _, err := rt.Run(badWrites, y); err == nil || !strings.Contains(err.Error(), "inspector panicked") {
		t.Fatalf("out-of-range write index: err = %v", err)
	}

	badReads := &Loop{
		N: n, Data: n,
		Writes: func(i int) []int { return []int{i} },
		Reads: func(i int) []int {
			if i == 3 {
				panic("broken reads closure")
			}
			return nil
		},
		Body: func(i int, v *Values) { v.Store(i, 1) },
	}
	if _, err := rt.Run(badReads, y); err == nil || !strings.Contains(err.Error(), "inspector panicked") {
		t.Fatalf("panicking Reads closure: err = %v", err)
	}
	if _, err := rt.Inspect(badReads); err == nil {
		t.Fatal("Inspect swallowed a panicking Reads closure")
	}

	good := &Loop{
		N: n, Data: n,
		Writes: func(i int) []int { return []int{i} },
		Reads:  func(i int) []int { return nil },
		Body:   func(i int, v *Values) { v.Store(i, float64(i)) },
	}
	if _, err := rt.Run(good, y); err != nil {
		t.Fatalf("runtime unusable after inspector failures: %v", err)
	}
	if y[n-1] != float64(n-1) {
		t.Fatal("post-failure run produced wrong results")
	}
}

// TestAutoColdRunReportsColdInspect pins the InspectCached semantics under
// ExecAuto: the first run pays the cold inspection and must not claim a
// cache hit; the second run must.
func TestAutoColdRunReportsColdInspect(t *testing.T) {
	n := 300
	l := &Loop{
		N: n, Data: 2 * n,
		Writes: func(i int) []int { return []int{i} },
		Reads:  func(i int) []int { return []int{i + n} },
		Body:   func(i int, v *Values) { v.Store(i, v.Load(i+n)) },
	}
	rt := NewRuntime(l.Data, Options{Workers: 2, Executor: ExecAuto})
	defer rt.Close()
	y := make([]float64, l.Data)
	rep, err := rt.Run(l, y)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Executor != "wavefront" || rep.InspectCached {
		t.Fatalf("first auto run: executor=%s cached=%v, want wavefront/false", rep.Executor, rep.InspectCached)
	}
	rep, err = rt.Run(l, y)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.InspectCached {
		t.Fatal("second auto run missed the schedule cache")
	}
}

// TestWavefrontRunCleansStandaloneInspect pins the reuse invariant across
// executors: a standalone Inspect fills the doacross writer table, and a
// wavefront run (which otherwise touches no scratch) must clean those
// entries up so a later doacross-executor run on the same runtime does not
// classify reads against stale writers.
func TestWavefrontRunCleansStandaloneInspect(t *testing.T) {
	n := 200
	l := &Loop{
		N: n, Data: 2 * n,
		Writes: func(i int) []int { return []int{i} },
		Reads:  func(i int) []int { return []int{i + n} },
		Body:   func(i int, v *Values) { v.Store(i, v.Load(i+n)+1) },
	}
	for _, epoch := range []bool{false, true} {
		rt := NewRuntime(l.Data, Options{Workers: 3, Executor: ExecWavefront, UseEpochTables: epoch})
		if _, err := rt.Inspect(l); err != nil {
			t.Fatal(err)
		}
		y := make([]float64, l.Data)
		rep, err := rt.Run(l, y)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Executor != "wavefront" {
			t.Fatalf("executor %q, want wavefront", rep.Executor)
		}
		if !rt.ScratchClean() {
			t.Fatalf("epoch=%v: writer table left dirty after Inspect + wavefront Run", epoch)
		}
		// A no-Reads loop (doacross fallback territory) reading elements l
		// wrote must classify them as untouched, not as stale true deps.
		l2 := &Loop{
			N: n, Data: 2 * n,
			Writes: func(i int) []int { return []int{i + n} },
			Body:   func(i int, v *Values) { v.Store(i+n, v.Load(i)*2) },
		}
		rt.opts.Executor = ExecDoacross
		y2 := make([]float64, l.Data)
		if _, err := rt.Run(l2, y2); err != nil {
			t.Fatal(err)
		}
		rt.Close()
	}
}
