package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"doacross/internal/depgraph"
	"doacross/internal/flags"
	"doacross/internal/sched"
)

// ExecutorKind selects the execution strategy of a Runtime: how the loop's
// run-time dependencies are enforced during the executor phase. It is the
// paper's central comparison made pluggable — the busy-wait doacross of
// Section 2 against the pre-scheduled wavefront (level-set) execution its
// inspector enables.
type ExecutorKind int

const (
	// ExecDoacross is the paper's preprocessed doacross: iterations start in
	// schedule order and every read of an element produced by an earlier
	// iteration waits on that element's ready flag. It pipelines across
	// wavefronts (an iteration may start as soon as its own inputs are ready)
	// at the cost of per-read flag checks and busy waits.
	ExecDoacross ExecutorKind = iota
	// ExecWavefront pre-schedules execution: the inspector builds the true
	// dependency graph, decomposes it into wavefront levels, and each level
	// runs as a barrier-separated doall over a level-sorted static schedule.
	// There are no per-element flags and no busy waits; reads classified as
	// true dependencies are guaranteed satisfied by the preceding level
	// barrier. The decomposition and schedule are cached across runs, keyed
	// by the loop's access pattern, so repeated solves pay the inspection
	// once. Requires natural order (no Options.Order) and a Loop.Reads that
	// covers every element the body may Load — the level placement is
	// derived from it, so an under-declared read silently breaks the
	// pre-scheduled execution (see the Loop.Reads contract).
	ExecWavefront
	// ExecAuto inspects the loop once (through the same cache ExecWavefront
	// uses) and picks the strategy with a calibrated cost model: the
	// inspection statistics (edges, levels, schedule rounds, within-level
	// read imbalance, claim counts) are combined with measured barrier,
	// flag-check and chunk-claim costs (AutoCosts — supplied through
	// Options.AutoCosts or self-calibrated once per Runtime) to estimate all
	// three executors' times, and the cheapest one runs. Loops without
	// Reads, or with an explicit Options.Order, fall back to the doacross.
	ExecAuto
	// ExecWavefrontDynamic is the wavefront execution with dynamic
	// within-level assignment: the same cached decomposition as
	// ExecWavefront, but inside each level the workers self-schedule chunks
	// out of the level's member list instead of executing a static
	// schedule. The claim traffic costs one contended atomic per chunk; in
	// exchange, per-iteration cost variance within a level (one hot row in
	// an otherwise cheap wavefront) no longer parks every other worker at
	// the barrier behind the unlucky static assignment. Same structural
	// requirements as ExecWavefront (Loop.Reads, natural order).
	ExecWavefrontDynamic
)

// String returns the executor's name as used in reports.
func (k ExecutorKind) String() string {
	switch k {
	case ExecDoacross:
		return "doacross"
	case ExecWavefront:
		return "wavefront"
	case ExecAuto:
		return "auto"
	case ExecWavefrontDynamic:
		return "wavefront-dynamic"
	default:
		return "unknown"
	}
}

// executor is the pluggable execution-strategy layer of the runtime. An
// executor owns the fused inspect → execute → postprocess pipeline of one
// run: it consumes a validated loop, updates y exactly as the sequential
// loop would, fills the report's phase times, and routes all failures
// through the runtime's armed abort state (never a returned error — the
// runtime reads ab.firstErr after execute returns). Executors may assume
// checkRunArgs passed, the abort state is armed, and rt.counters is theirs
// to reset and fill.
type executor interface {
	name() string
	execute(l *Loop, y []float64, rep *Report)
}

// executorFor resolves the configured executor kind against the loop: it is
// where ExecAuto inspects and decides, and where a strategy's structural
// requirements (Reads for the wavefront, natural order) are enforced. For an
// ExecAuto decision the report's AutoCosts and predicted times are filled so
// the caller can see what the selection compared. nrhs is the number of
// right-hand-side columns the traversal will carry (1 for scalar runs,
// the block width for RunMulti): an Auto decision prices the per-iteration
// work by it, so the pick can flip between a scalar run and a wide block of
// the same loop (see AutoCosts.PredictN).
func (rt *Runtime) executorFor(l *Loop, rep *Report, nrhs int) (executor, error) {
	if rt.tuneObs.ps != nil {
		// A previous run resolved a tuned decision but never completed (an
		// abort, a cancellation): its observation is stale, not a
		// measurement. Discarding it here keeps the off-path cost at one nil
		// test.
		rt.tuneObs = pendingObservation{}
	}
	switch rt.opts.Executor {
	case ExecDoacross:
		return doacrossExecutor{rt}, nil
	case ExecWavefront, ExecWavefrontDynamic:
		if l.Reads == nil {
			return nil, fmt.Errorf("core: the %s executor requires Loop.Reads to build the dependency graph", rt.opts.Executor)
		}
		if rt.opts.Order != nil {
			return nil, fmt.Errorf("core: the %s executor derives its own level order and cannot honor Options.Order", rt.opts.Executor)
		}
		plan, cached, err := rt.wavefrontPlan(l)
		if err != nil {
			return nil, err
		}
		if rt.opts.Executor == ExecWavefrontDynamic {
			return dynamicWavefrontExecutor{rt: rt, plan: plan, cached: cached}, nil
		}
		plan.staticSchedule(rt.opts.Policy)
		return wavefrontExecutor{rt: rt, plan: plan, cached: cached}, nil
	case ExecAuto:
		if l.Reads == nil || rt.opts.Order != nil {
			return doacrossExecutor{rt}, nil
		}
		plan, cached, err := rt.wavefrontPlan(l)
		if err != nil {
			return nil, err
		}
		var pick ExecutorKind
		if rt.tuningActive() && plan.stats.Levels > 1 {
			// The tuned path: the plan's bandit decides from measured
			// moving averages where it has them and the tuned model where
			// it does not, and the decision is armed for post-run feedback.
			// Single-level loops keep the static pre-schedule below — there
			// is no decision to learn.
			base := rt.tunerBase()
			ps := rt.tuner.planState(plan.fp, base)
			arm, explored := ps.Decide(plan.stats.tuneStats(), rt.opts.Workers, nrhs, rt.tuner.opts, rt.tuner.rng)
			pick = kindOfTuneExec(arm)
			rt.tuneObs = pendingObservation{ps: ps, stats: plan.stats, exec: arm, nrhs: nrhs, explored: explored}
			if rep != nil {
				rep.AutoCosts = base
				rep.TunedCosts = AutoCosts(ps.Coeffs)
				rep.Explored = explored
				rep.PredictedDoacrossNs, rep.PredictedWavefrontNs, rep.PredictedDynamicNs =
					rep.TunedCosts.PredictN(plan.stats, rt.opts.Workers, nrhs)
			}
		} else {
			costs := rt.autoCostsFor()
			if rep != nil {
				rep.AutoCosts = costs
				rep.PredictedDoacrossNs, rep.PredictedWavefrontNs, rep.PredictedDynamicNs =
					costs.PredictN(plan.stats, rt.opts.Workers, nrhs)
			}
			pick = autoChoose(plan.stats, rt.opts.Workers, nrhs, costs)
		}
		switch pick {
		case ExecWavefrontDynamic:
			return dynamicWavefrontExecutor{rt: rt, plan: plan, cached: cached}, nil
		case ExecWavefront:
			plan.staticSchedule(rt.opts.Policy)
			return wavefrontExecutor{rt: rt, plan: plan, cached: cached}, nil
		default:
			return doacrossExecutor{rt}, nil
		}
	default:
		return nil, fmt.Errorf("core: unknown executor kind %d", int(rt.opts.Executor))
	}
}

// InspectStats describes what the inspector learned about a loop's
// dependency structure: the wavefront decomposition the pre-scheduled
// executor would run, and the summary numbers the Auto selection consults.
type InspectStats struct {
	// Iterations is the loop's iteration count.
	Iterations int
	// Edges is the number of (deduplicated) true-dependency edges.
	Edges int
	// StallWeight estimates the pipeline stalls the doacross would suffer,
	// from the dependence-distance histogram: Σ over edges of
	// max(0, (P - d)/P), where d is the edge's distance (consumer iteration
	// minus producer) and P the worker count. A distance-1 edge stalls its
	// consumer's worker almost a full iteration (the producer started in the
	// same schedule round); an edge at distance ≥ P is fully absorbed by the
	// pipelining. Lengthening distances is exactly what the paper's
	// doconsider reordering buys, so this is the statistic that separates a
	// natural-order solve from a reordered one.
	StallWeight float64
	// Levels is the number of wavefront levels.
	Levels int
	// MaxLevelWidth is the size of the widest level.
	MaxLevelWidth int
	// MeanLevelWidth is Iterations / Levels, the average parallelism a
	// level-scheduled execution exposes.
	MeanLevelWidth float64
	// CriticalPathLen is the number of iterations on the longest dependency
	// chain (equal to Levels: the level of an iteration is the length of the
	// longest chain ending at it).
	CriticalPathLen int
	// ScheduleRounds is the barrier-rounded depth of the wavefront's static
	// schedule: the sum over levels of ceil(width / schedule workers), i.e.
	// the number of iteration slots the slowest worker executes. It is what
	// the Auto cost model charges the wavefront's work term with (the
	// doacross's pipelined counterpart is max(ceil(N/P), CriticalPathLen)).
	ScheduleRounds int
	// ReadImbalance is the extra true-dependency read terms the static level
	// schedule's slowest worker executes beyond a perfectly balanced
	// within-level split, summed over levels: Σ_l (max_w reads(items(l,w)) −
	// ceil(reads_l / P)), with reads counted as in-degree. It is zero when
	// every iteration of a level costs the same, and grows with the
	// heavy-tailed per-iteration cost variance (one hot row per wavefront)
	// that the dynamic within-level executor absorbs — the statistic that
	// separates the static from the dynamic wavefront in the Auto model.
	ReadImbalance float64
	// DynamicClaims is the number of chunk claims a dynamic within-level
	// execution of this decomposition issues: Σ_l (ceil(w_l/chunk) + P) —
	// every successful chunk claim plus each worker's final failed claim per
	// level, at the runtime's configured chunk size.
	DynamicClaims int
	// CacheHit reports whether the decomposition came from the runtime's
	// schedule cache rather than a fresh inspection.
	CacheHit bool
}

// String renders the statistics in a compact single-line form.
func (s InspectStats) String() string {
	return fmt.Sprintf("iters=%d edges=%d levels=%d maxWidth=%d meanWidth=%.1f cached=%v",
		s.Iterations, s.Edges, s.Levels, s.MaxLevelWidth, s.MeanLevelWidth, s.CacheHit)
}

// wavefrontPlan is everything the two wavefront executors need to run one
// loop shape: the dense writer index (the execution-time dependency
// classifier), the plan's own copy of the wavefront decomposition, and the
// inspection statistics. The decomposition and stats are immutable once
// built; the static schedule is materialized lazily (see staticSchedule),
// under the same run mutex that guards every other plan access.
type wavefrontPlan struct {
	n, data int
	writer  []int32 // writer[e] = iteration writing element e, -1 if none
	// graph is the retained dependency DAG the decomposition was derived
	// from. RepairPlans edits it in place (ApplyEdits + RepairLevelsInto) so
	// a few changed rows never force a cold rebuild; it costs O(edges) memory
	// per cached plan, the price of repairability.
	graph *depgraph.Graph
	// levels is the plan's owned copy of the wavefront decomposition in CSR
	// form (the inspector's scratch LevelSet is reused across builds, so the
	// plan cannot alias it). The dynamic executor claims chunks straight out
	// of its per-level member lists; the static schedule below is derived
	// from it on first static use. RepairPlans patches it in place.
	levels depgraph.LevelSet
	// workers is the schedule worker count: the runtime's workers clamped to
	// the widest level (extra workers would only spin at the barriers).
	workers int
	// static is the level-sorted static schedule, built by staticSchedule on
	// the first static-wavefront run. A runtime that only ever runs the
	// dynamic executor never materializes it — the dynamic run consumes the
	// cached LevelSet directly.
	static *sched.LevelSchedule
	// staticFrom, when >= 0, marks the materialized static schedule stale
	// from that level on: a repair moved members at or above it, and the next
	// staticSchedule call patches just the suffix. -1 means in sync.
	staticFrom int
	// imb caches the per-level read imbalance behind stats.ReadImbalance so a
	// repair can recompute only the perturbed levels; nil when the schedule
	// worker count is 1 (imbalance is identically zero).
	imb   []float64
	stats InspectStats
	// hash is the structural-hash cache key the plan is stored under, zero
	// when it is not in the hash tier. A repair zeroes it after evicting the
	// stale entry: the mutated pattern no longer matches the stored digest,
	// and rehashing would cost the closure sweep repair exists to avoid — so
	// a repaired plan stays reachable only through the pointer memo.
	hash uint64
	// fp is the plan's tuning fingerprint: the structural hash it was built
	// under, never zeroed — unlike hash it survives RepairPlans, so the
	// online tuner's per-plan calibration follows a repaired plan across
	// edits (the measured feedback then absorbs whatever the edit changed,
	// which is exactly the drift the tuner exists to correct).
	fp uint64
	// gen is the runtime's plan generation at build time; InvalidatePlans
	// advances the generation, making every earlier plan stale.
	gen uint64
}

// staticSchedule returns the plan's level-sorted static schedule, deriving it
// from the decomposition on first use and re-syncing a repair-dirtied suffix
// lazily. Callers hold the runtime's run mutex (plans are only touched by the
// serialized entry points), so neither lazy step needs further
// synchronization.
func (p *wavefrontPlan) staticSchedule(policy sched.Policy) *sched.LevelSchedule {
	if p.static == nil {
		p.static = sched.NewLevelSchedule(p.levels.Members, p.levels.Off, policy, p.workers)
	} else if p.staticFrom >= 0 {
		p.static.PatchSuffix(p.levels.Members, p.levels.Off, p.staticFrom)
	}
	p.staticFrom = -1
	return p.static
}

// table returns the plan's writer index as the executor's dependency
// classifier.
func (p *wavefrontPlan) table() writerTable { return planTable{p.writer} }

// planTable classifies reads against the plan's dense writer index; it is
// the wavefront analogue of the doacross iter table, filled once at plan
// time instead of once per run.
type planTable struct{ writer []int32 }

func (t planTable) Classify(e, i int) (flags.Dependence, int64) {
	w := t.writer[e]
	switch {
	case w < 0:
		return flags.AntiOrNone, flags.MaxInt
	case int(w) < i:
		return flags.TrueDep, int64(w)
	case int(w) == i:
		return flags.SelfDep, int64(w)
	default:
		return flags.AntiOrNone, int64(w)
	}
}
func (planTable) Record(e, i int) {}
func (t planTable) Len() int      { return len(t.writer) }

// levelReady implements readyWaiter for pre-scheduled execution: the level
// barrier guarantees every true dependency was produced in an earlier,
// completed level, so waits return satisfied immediately and no flags exist
// to set, clear or wake.
type levelReady struct{}

func (levelReady) Set(e int)         {}
func (levelReady) IsDone(e int) bool { return true }
func (levelReady) WaitFor(e int, s flags.WaitStrategy, cancelled *atomic.Bool) (int, bool) {
	return 0, true
}
func (levelReady) WakeAll() {}

// maxCachedPlans bounds the runtime's schedule cache. A runtime is typically
// bound to one loop shape (a Solver) or a handful (an ILU pair, a sweep);
// when the cap is hit the cache is dropped wholesale rather than tracking
// recency — rebuilding a plan is exactly one cold inspection.
const maxCachedPlans = 16

// wavefrontPlan returns the cached plan for the loop's access pattern,
// building (and caching) it on a miss. The second result reports a cache
// hit.
//
// Lookup is two-tier. Runs that reuse the same *Loop value (the Solver /
// Krylov hot path) hit a pointer-identity memo and skip even the hash.
// Otherwise the loop's access pattern is hashed structurally, so a
// reconstructed Loop with the same pattern (a fresh solver on the same
// matrix) still reuses the decomposition. Both tiers assume a Loop's access
// pattern is stable for the lifetime of the Loop value — the premise of the
// paper's reusable preprocessing; a loop whose Writes/Reads change must be a
// fresh *Loop.
func (rt *Runtime) wavefrontPlan(l *Loop) (p *wavefrontPlan, cached bool, err error) {
	// The caller's Writes/Reads closures run both here (accessHash, on this
	// goroutine) and in buildPlan (on pool workers, which recover per
	// shard); recovering here turns a broken closure into the same
	// descriptive error the doacross inspector shard reports, instead of a
	// process crash.
	defer func() {
		if r := recover(); r != nil {
			p, cached, err = nil, false, fmt.Errorf("core: wavefront inspector panicked: %v", r)
		}
	}()
	if rt.planMemoLoop == l && rt.planMemo != nil && rt.planMemo.gen == rt.planGen {
		rt.recordPlan(PlanHit)
		return rt.planMemo, true, nil
	}
	h := accessHash(l)
	if p, ok := rt.planCache[h]; ok && p.n == l.N && p.data == l.Data && p.gen == rt.planGen {
		rt.planMemoLoop, rt.planMemo = l, p
		rt.recordPlan(PlanHit)
		return p, true, nil
	}
	p, err = rt.buildPlan(l)
	if err != nil {
		return nil, false, err
	}
	if rt.planCache == nil {
		rt.planCache = make(map[uint64]*wavefrontPlan)
	} else if len(rt.planCache) >= maxCachedPlans {
		clear(rt.planCache)
	}
	p.hash = h
	p.fp = h
	rt.planCache[h] = p
	rt.planMemoLoop, rt.planMemo = l, p
	rt.recordPlan(PlanMiss)
	return p, false, nil
}

// buildPlan is the cold wavefront inspection: fill the writer index, build
// the dependency graph, decompose it into levels and materialize the
// level-sorted static schedule. The index fill and the graph's predecessor
// scans run over the worker pool, so the inspector cost shrinks with
// workers; the level sweep itself is the O(N + edges) forward pass of
// depgraph.LevelsInto into a reused scratch buffer.
//
// All shards that call the user's Writes/Reads closures run through a
// per-iteration recover, so a panicking closure (or an out-of-range write
// index) surfaces as an error from the run, matching the doacross
// inspector's guard, rather than killing a pool worker.
func (rt *Runtime) buildPlan(l *Loop) (*wavefrontPlan, error) {
	var failMu sync.Mutex
	var failErr error
	fail := func(r any) {
		failMu.Lock()
		if failErr == nil {
			failErr = fmt.Errorf("core: wavefront inspector panicked: %v", r)
		}
		failMu.Unlock()
	}
	guardedFor := func(n int, body func(i int)) {
		rt.pool.ParallelFor(n, func(i int) {
			defer func() {
				if r := recover(); r != nil {
					fail(r)
				}
			}()
			body(i)
		})
	}
	writer := make([]int32, l.Data)
	rt.pool.ParallelFor(l.Data, func(e int) { writer[e] = -1 })
	guardedFor(l.N, func(i int) {
		for _, e := range l.Writes(i) {
			writer[e] = int32(i)
		}
	})
	if failErr != nil {
		return nil, failErr
	}
	g := depgraph.BuildParallelFromWriterIndex(l.N, writer, l.Reads, guardedFor)
	if failErr != nil {
		return nil, failErr
	}
	ls := g.LevelsInto(&rt.levelScratch)

	levels := ls.Count()
	maxWidth := ls.MaxWidth()
	p := rt.opts.Workers
	if p > maxWidth {
		// Workers beyond the widest level would only spin at the barriers.
		p = maxWidth
	}
	if p < 1 {
		p = 1
	}
	chunk := rt.opts.Chunk
	if chunk < 1 {
		chunk = sched.DefaultChunk
	}
	stats := InspectStats{
		Iterations:      l.N,
		Edges:           g.Edges,
		Levels:          levels,
		MaxLevelWidth:   maxWidth,
		CriticalPathLen: levels,
	}
	if levels > 0 {
		stats.MeanLevelWidth = float64(l.N) / float64(levels)
	}
	for lvl := 0; lvl < levels; lvl++ {
		w := int(ls.Off[lvl+1] - ls.Off[lvl])
		stats.ScheduleRounds += (w + p - 1) / p
		stats.DynamicClaims += sched.DynamicClaims(w, chunk, p)
	}
	stats.StallWeight = g.StallWeight(rt.opts.Workers)
	imb := levelImbalances(g, ls, rt.opts.Policy, p)
	for _, v := range imb {
		stats.ReadImbalance += v
	}
	return &wavefrontPlan{
		n:      l.N,
		data:   l.Data,
		writer: writer,
		graph:  g,
		levels: depgraph.LevelSet{
			Level:   append([]int32(nil), ls.Level[:l.N]...),
			Members: append([]int32(nil), ls.Members...),
			Off:     append([]int32(nil), ls.Off...),
		},
		workers:    p,
		staticFrom: -1,
		imb:        imb,
		stats:      stats,
		gen:        rt.planGen,
	}, nil
}

// levelImbalances computes the per-level values behind
// InspectStats.ReadImbalance: how many extra true-dependency read terms the
// static level schedule's slowest worker executes beyond a perfectly balanced
// within-level split (sched.LevelImbalance per level, replaying the exact
// NewLevelSchedule assignment). In-degree stands in for an iteration's read
// count, the work proxy the inspector can see without pricing the body. Nil
// when p <= 1 — a single worker has nothing to imbalance.
func levelImbalances(g *depgraph.Graph, ls *depgraph.LevelSet, policy sched.Policy, p int) []float64 {
	if p <= 1 {
		return nil
	}
	imb := make([]float64, ls.Count())
	for l := range imb {
		imb[l] = levelImbalanceAt(g, ls, policy, p, l)
	}
	return imb
}

// levelImbalanceAt computes one level's read imbalance (see levelImbalances).
func levelImbalanceAt(g *depgraph.Graph, ls *depgraph.LevelSet, policy sched.Policy, p, l int) float64 {
	lvl := ls.LevelMembers(l)
	return float64(sched.LevelImbalance(len(lvl), policy, p, func(k int) int {
		return len(g.Preds[int(lvl[k])])
	}))
}

// accessHash computes a structural 64-bit FNV-1a-style hash of the loop's
// access pattern (sizes, writes and reads of every iteration, with length
// separators). Loops with equal hashes and equal (N, Data) are assumed to
// have identical access patterns; with a 64-bit digest over the handful of
// shapes one runtime sees, an accidental collision is vanishingly unlikely.
func accessHash(l *Loop) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(x uint64) {
		h ^= x
		h *= prime64
	}
	mix(uint64(l.N))
	mix(uint64(l.Data))
	for i := 0; i < l.N; i++ {
		ws := l.Writes(i)
		mix(^uint64(len(ws)))
		for _, e := range ws {
			mix(uint64(e))
		}
		rs := l.Reads(i)
		mix(^uint64(len(rs)))
		for _, e := range rs {
			mix(uint64(e))
		}
	}
	return h
}

// doacrossExecutor is the paper's flag-based busy-wait doacross behind the
// executor interface: a fused pool submission running the inspector shard,
// the transformed loop and the postprocessing resets with phase barriers in
// between (Figures 3 and 5 of the paper).
type doacrossExecutor struct{ rt *Runtime }

func (doacrossExecutor) name() string { return "doacross" }

func (e doacrossExecutor) execute(l *Loop, y []float64, rep *Report) {
	rt := e.rt
	tab := rt.table()
	ready := rt.waiter()
	// Wake no more workers than there are iterations: with fewer positions
	// than workers, the surplus would only rendezvous at the phase barriers
	// for zero work (the pre-pool phases applied the same clamp).
	k := rt.opts.Workers
	if k > l.N {
		k = l.N
	}
	if k < 1 {
		k = 1
	}
	for i := range rt.counters {
		rt.counters[i] = execCounters{}
	}

	traceBase := rt.armTrace(l)
	body := rt.execBody(l, y, tab, ready, traceBase)

	dynamic := rt.opts.Policy == sched.Dynamic
	chunk := rt.opts.Chunk
	if chunk < 1 {
		chunk = sched.DefaultChunk
	}
	var next atomic.Int64
	var s *sched.Schedule
	if !dynamic {
		s = rt.schedule(l.N)
	}

	useEpoch := rt.opts.UseEpochTables
	ab := &rt.ab
	stop := func() bool { return ab.triggered.Load() }
	bar := phaseBarrier{n: int32(k)}
	var preEnd, execEnd time.Duration
	start := time.Now()
	rt.pool.Submit(k, func(w int) {
		// Inspector shard (Figure 3, left): fully parallel, block-distributed.
		lo, hi := sched.BlockRange(l.N, k, w)
		rt.guard("loop Writes (inspector)", func() {
			for i := lo; i < hi; i++ {
				for _, e := range l.Writes(i) {
					tab.Record(e, i)
				}
			}
		})
		bar.wait(func() { preEnd = time.Since(start) })

		// Executor shard: the transformed loop of Figure 5.
		rt.guard("loop body", func() {
			if dynamic {
				sched.DynamicLoop(&next, l.N, chunk, w, body, stop)
			} else if w < len(s.PerWorker) {
				for _, pos := range s.PerWorker[w] {
					body(w, pos)
				}
			}
		})
		bar.wait(func() { execEnd = time.Since(start) })

		// Postprocessor shard (Figure 3, right): copy back and reset. An
		// aborted run resets the scratch state (so the runtime stays
		// reusable) but skips the copy-back: skipped iterations never
		// seeded ynew, so copying would publish stale values into y.
		aborted := ab.triggered.Load()
		rt.guard("loop Writes (postprocessor)", func() {
			for i := lo; i < hi; i++ {
				for _, e := range l.Writes(i) {
					if !aborted {
						y[e] = rt.ynew[e]
					}
					if !useEpoch {
						rt.iter.Reset(e)
						rt.ready.Clear(e)
					}
				}
			}
		})
	})
	if useEpoch {
		rt.eIter.Advance()
		rt.eReady.Advance()
	}
	rt.inspectDirty = false
	total := time.Since(start)

	rep.PreTime = preEnd
	rep.ExecTime = execEnd - preEnd
	rep.PostTime = total - execEnd
	rep.TotalTime = total
}

// wavefrontExecutor is the pre-scheduled level-set execution the paper
// compares the doacross against: the (cached) inspection decomposes the loop
// into wavefronts, and one fused pool submission runs each level as a doall
// over its static schedule with a barrier between levels, then the
// postprocessing copy-back. No per-element flags exist and no read ever
// waits; the renaming through ynew still satisfies anti-dependencies, and
// because the plan's writer index doubles as the dependency classifier, a
// warm run touches no scratch tables at all (nothing to reset).
//
// The plan is resolved by executorFor (so its cost — cold build or cache
// lookup — is the run's reported preprocessing time, and the cached flag
// reflects that resolution, not a second lookup).
type wavefrontExecutor struct {
	rt     *Runtime
	plan   *wavefrontPlan
	cached bool
}

func (wavefrontExecutor) name() string { return "wavefront" }

func (e wavefrontExecutor) execute(l *Loop, y []float64, rep *Report) {
	rt := e.rt
	plan := e.plan
	// executorFor materialized the schedule while resolving the plan (so its
	// cost counts as preprocessing); this lookup is a memo hit.
	s := plan.staticSchedule(rt.opts.Policy)
	start := time.Now()
	rep.InspectCached = e.cached
	rep.Levels = s.Levels()
	preEnd := time.Duration(0)

	for i := range rt.counters {
		rt.counters[i] = execCounters{}
	}
	traceBase := rt.armTrace(l)
	body := rt.execBody(l, y, plan.table(), levelReady{}, traceBase)

	k := s.Workers()
	levels := s.Levels()
	ab := &rt.ab
	bar := phaseBarrier{n: int32(k)}
	execEnd := preEnd
	stampExec := func() { execEnd = time.Since(start) }
	rt.pool.Submit(k, func(w int) {
		for lvl := 0; lvl < levels; lvl++ {
			// The abort check is per level here and per iteration inside
			// body; either way every worker still reaches every barrier, so
			// an aborted run drains without deadlock.
			if !ab.triggered.Load() {
				rt.guard("loop body", func() {
					for _, it := range s.Items(lvl, w) {
						body(w, int(it))
					}
				})
			}
			if lvl == levels-1 {
				bar.wait(stampExec)
			} else {
				bar.wait(nil)
			}
		}
		// Postprocessor shard: only the copy-back — the plan's writer index
		// is immutable and there are no ready flags, so nothing is reset.
		if ab.triggered.Load() {
			return
		}
		lo, hi := sched.BlockRange(l.N, k, w)
		rt.guard("loop Writes (postprocessor)", func() {
			for i := lo; i < hi; i++ {
				for _, e := range l.Writes(i) {
					y[e] = rt.ynew[e]
				}
			}
		})
	})
	rt.cleanStandaloneInspect(l)
	total := time.Since(start)

	rep.PreTime = preEnd
	rep.ExecTime = execEnd - preEnd
	rep.PostTime = total - execEnd
	rep.TotalTime = total
}

// cleanStandaloneInspect restores the doacross writer table after a
// wavefront-family run when a standalone Inspect filled it and no doacross
// postprocess has reset it: the entries the loop recorded are cleaned up so a
// later doacross run on the same runtime does not classify against stale
// writers (the ScratchClean invariant). A no-op when nothing is dirty.
func (rt *Runtime) cleanStandaloneInspect(l *Loop) {
	if !rt.inspectDirty {
		return
	}
	if rt.opts.UseEpochTables {
		rt.eIter.Advance()
	} else {
		rt.pool.ParallelFor(l.N, func(i int) {
			for _, e := range l.Writes(i) {
				rt.iter.Reset(e)
			}
		})
	}
	rt.inspectDirty = false
}

// dynamicWavefrontExecutor is the wavefront execution with dynamic
// within-level assignment: the same cached plan (writer index and level
// decomposition) as the static wavefrontExecutor, but each level is a
// self-scheduled doall — workers claim chunks out of the level's member list
// through the shared claim counter, exactly the sched.DynamicLoop protocol
// the busy-wait doacross uses under the Dynamic policy, restricted to one
// level at a time. The counter is reset by the last arriver at each level
// barrier, so the reset is ordered before any worker starts claiming the
// next level.
//
// Compared to the static wavefront it trades one contended atomic per chunk
// claim for within-level load balance: a level whose members have
// heavy-tailed costs (one hot row per wavefront) no longer serializes behind
// whichever worker the static schedule dealt the hot member to. It never
// materializes a LevelSchedule — the plan's cached LevelSet is consumed
// directly, so a runtime that only runs dynamically skips NewLevelSchedule
// altogether.
type dynamicWavefrontExecutor struct {
	rt     *Runtime
	plan   *wavefrontPlan
	cached bool
}

func (dynamicWavefrontExecutor) name() string { return "wavefront-dynamic" }

func (e dynamicWavefrontExecutor) execute(l *Loop, y []float64, rep *Report) {
	rt := e.rt
	plan := e.plan
	start := time.Now()
	rep.InspectCached = e.cached
	levels := plan.levels.Count()
	rep.Levels = levels
	preEnd := time.Duration(0)

	for i := range rt.counters {
		rt.counters[i] = execCounters{}
	}
	traceBase := rt.armTrace(l)
	body := rt.execBody(l, y, plan.table(), levelReady{}, traceBase)

	chunk := rt.opts.Chunk
	if chunk < 1 {
		chunk = sched.DefaultChunk
	}
	// Under online tuning, chunk claims are rounded down to whole cache
	// lines: the tuner's measured feedback prices real memory behaviour, and
	// line-aligned claims keep neighbouring workers off shared lines. The
	// untuned executor keeps the exact LevelChunk clamp its committed
	// baselines were measured with (align 1 is the identity).
	align := 1
	if rt.tuningActive() {
		align = sched.CacheLineElems
	}
	k := plan.workers
	ab := &rt.ab
	stop := func() bool { return ab.triggered.Load() }
	bar := phaseBarrier{n: int32(k)}
	var next atomic.Int64
	execEnd := preEnd
	// The level barrier's last arriver resets the claim counter before the
	// barrier opens, so every worker observes a zeroed counter when it starts
	// claiming the next level.
	resetNext := func() { next.Store(0) }
	stampExec := func() { next.Store(0); execEnd = time.Since(start) }
	rt.pool.Submit(k, func(w int) {
		for lvl := 0; lvl < levels; lvl++ {
			if !ab.triggered.Load() {
				members := plan.levels.LevelMembers(lvl)
				// Every worker derives the same per-level chunk clamp, so no
				// coordination is needed (see sched.LevelChunk).
				c := sched.LevelChunkAligned(chunk, len(members), k, align)
				rt.guard("loop body", func() {
					sched.DynamicLoopOver(&next, members, c, w, body, stop)
				})
			}
			// Every worker reaches every barrier even when aborted, so a
			// failed run drains without deadlock, as in the static executor.
			if lvl == levels-1 {
				bar.wait(stampExec)
			} else {
				bar.wait(resetNext)
			}
		}
		if ab.triggered.Load() {
			return
		}
		// Postprocessor shard: only the copy-back, as in the static
		// wavefront — nothing was recorded, so nothing is reset.
		lo, hi := sched.BlockRange(l.N, k, w)
		rt.guard("loop Writes (postprocessor)", func() {
			for i := lo; i < hi; i++ {
				for _, e := range l.Writes(i) {
					y[e] = rt.ynew[e]
				}
			}
		})
	})
	rt.cleanStandaloneInspect(l)
	total := time.Since(start)

	rep.PreTime = preEnd
	rep.ExecTime = execEnd - preEnd
	rep.PostTime = total - execEnd
	rep.TotalTime = total
}

// guard runs one phase shard with panic recovery: a panicking user function
// (the body, or a broken Writes closure in the fully-parallel phases) aborts
// the run instead of crashing the process, and the worker proceeds to the
// next phase barrier as usual, so an abort never leaks a barrier. Recovery
// is per phase, not per shard, because a shard that skipped a barrier wait
// would deadlock the other workers.
func (rt *Runtime) guard(phase string, f func()) {
	defer func() {
		if r := recover(); r != nil {
			rt.ab.abort(fmt.Errorf("core: %s panicked: %v", phase, r))
		}
	}()
	f()
}

// armTrace prepares (or clears) the per-iteration trace for a run and
// returns the trace clock base.
func (rt *Runtime) armTrace(l *Loop) time.Time {
	if rt.opts.CollectTrace {
		rt.lastTrace = &Trace{Workers: rt.opts.Workers, Iterations: make([]IterTrace, l.N)}
		return time.Now()
	}
	rt.lastTrace = nil
	return time.Time{}
}
