// BenchmarkFacadeOverhead proves the public doacross facade adds no
// measurable per-run cost over calling the internal runtime directly: both
// sides execute the identical loop on identically-configured runtimes, the
// facade through Runtime.Run(ctx, ...) (with its background-context fast
// path) and the baseline through core.Runtime.Run. The file lives in an
// external test package so it can import the root facade without a cycle.
package core_test

import (
	"context"
	"fmt"
	"testing"

	"doacross"
	"doacross/internal/core"
	"doacross/internal/flags"
	"doacross/internal/sched"
	"doacross/internal/testloop"
)

func BenchmarkFacadeOverhead(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		tc := testloop.Config{N: n, M: 1, L: 2}
		loop := tc.Loop()
		base := tc.InitialData()

		b.Run(fmt.Sprintf("N=%d/internal-core", n), func(b *testing.B) {
			rt := core.NewRuntime(loop.Data, core.Options{
				Workers:      4,
				Policy:       sched.Block,
				WaitStrategy: flags.WaitSpinYield,
			})
			defer rt.Close()
			y := append([]float64(nil), base...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(y, base)
				if _, err := rt.Run(loop, y); err != nil {
					b.Fatal(err)
				}
			}
		})

		b.Run(fmt.Sprintf("N=%d/facade", n), func(b *testing.B) {
			rt, err := doacross.New(loop.Data,
				doacross.WithWorkers(4),
				doacross.WithPolicy(doacross.Block),
				doacross.WithWaitStrategy(doacross.WaitSpinYield),
			)
			if err != nil {
				b.Fatal(err)
			}
			defer rt.Close()
			ctx := context.Background()
			y := append([]float64(nil), base...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(y, base)
				if _, err := rt.Run(ctx, loop, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
