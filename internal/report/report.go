// Package report renders experiment results as plain-text, Markdown or CSV
// tables, so the harness output can be dropped directly into EXPERIMENTS.md
// or post-processed by plotting scripts.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled rectangular table of string cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes are free-form lines printed after the table body.
	Notes []string
}

// AddRow appends one row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// formatFloat renders floats compactly: integers lose the decimal point,
// everything else keeps three significant decimals.
func formatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3f", v)
}

// AddNote appends a free-form note line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Validate checks that every row has as many cells as there are columns.
func (t *Table) Validate() error {
	for i, row := range t.Rows {
		if len(row) != len(t.Columns) {
			return fmt.Errorf("report: row %d has %d cells for %d columns", i, len(row), len(t.Columns))
		}
	}
	return nil
}

// Text renders the table with aligned fixed-width columns.
func (t *Table) Text() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured Markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if len(t.Notes) > 0 {
		b.WriteByte('\n')
		for _, n := range t.Notes {
			fmt.Fprintf(&b, "%s\n", n)
		}
	}
	return b.String()
}

// CSV renders the table as RFC-4180-style CSV (title and notes become
// comment lines prefixed with '#').
func (t *Table) CSV() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "# %s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = "\"" + strings.ReplaceAll(cell, "\"", "\"\"") + "\""
			}
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// Format renders the table in the named format: "text" (default),
// "markdown" or "csv".
func (t *Table) Format(format string) (string, error) {
	switch format {
	case "", "text":
		return t.Text(), nil
	case "markdown", "md":
		return t.Markdown(), nil
	case "csv":
		return t.CSV(), nil
	default:
		return "", fmt.Errorf("report: unknown format %q (use text, markdown or csv)", format)
	}
}
