package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{Title: "Demo", Columns: []string{"name", "eff", "count"}}
	t.AddRow("plain", 0.325, 16)
	t.AddRow("reordered, fast", 0.75, 16)
	t.AddRow("exact", 2.0, 3)
	t.AddNote("note %d", 1)
	return t
}

func TestValidate(t *testing.T) {
	tab := sample()
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	tab.Rows = append(tab.Rows, []string{"short"})
	if err := tab.Validate(); err == nil {
		t.Error("ragged row not detected")
	}
}

func TestTextRendering(t *testing.T) {
	out := sample().Text()
	for _, want := range []string{"Demo", "name", "plain", "0.325", "reordered, fast", "note 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("Text() missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title + header + 3 rows + note
		t.Errorf("Text() has %d lines, want 6:\n%s", len(lines), out)
	}
}

func TestFloatFormatting(t *testing.T) {
	if formatFloat(2.0) != "2" {
		t.Errorf("integral float rendered as %q", formatFloat(2.0))
	}
	if formatFloat(0.12345) != "0.123" {
		t.Errorf("fractional float rendered as %q", formatFloat(0.12345))
	}
}

func TestMarkdownRendering(t *testing.T) {
	out := sample().Markdown()
	if !strings.Contains(out, "### Demo") {
		t.Error("missing title heading")
	}
	if !strings.Contains(out, "| name | eff | count |") {
		t.Errorf("missing header row:\n%s", out)
	}
	if !strings.Contains(out, "| --- | --- | --- |") {
		t.Error("missing separator row")
	}
	if !strings.Contains(out, "| plain | 0.325 | 16 |") {
		t.Errorf("missing data row:\n%s", out)
	}
}

func TestCSVRendering(t *testing.T) {
	out := sample().CSV()
	if !strings.Contains(out, "# Demo") {
		t.Error("missing title comment")
	}
	if !strings.Contains(out, "name,eff,count") {
		t.Error("missing header")
	}
	// The comma-containing cell must be quoted.
	if !strings.Contains(out, "\"reordered, fast\"") {
		t.Errorf("comma cell not quoted:\n%s", out)
	}
	quoted := &Table{Columns: []string{"c"}}
	quoted.AddRow(`say "hi"`)
	if !strings.Contains(quoted.CSV(), `"say ""hi"""`) {
		t.Errorf("quote escaping wrong:\n%s", quoted.CSV())
	}
}

func TestFormatDispatch(t *testing.T) {
	tab := sample()
	for _, f := range []string{"", "text", "markdown", "md", "csv"} {
		if _, err := tab.Format(f); err != nil {
			t.Errorf("format %q rejected: %v", f, err)
		}
	}
	if _, err := tab.Format("xml"); err == nil {
		t.Error("unknown format accepted")
	}
}
