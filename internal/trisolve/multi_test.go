package trisolve

import (
	"context"
	"math/rand"
	"testing"

	"doacross/internal/core"
	"doacross/internal/flags"
	"doacross/internal/sparse"
	"doacross/internal/stencil"
)

// multiOpts returns solver options for the given executor kind.
func multiOpts(workers int, exec core.ExecutorKind) core.Options {
	return core.Options{Workers: workers, WaitStrategy: flags.WaitSpinYield, Executor: exec}
}

var allExecutors = []core.ExecutorKind{
	core.ExecDoacross,
	core.ExecWavefront,
	core.ExecWavefrontDynamic,
	core.ExecAuto,
}

// TestSolveMultiEquivalentToIndependentSolves is the ISSUE's acceptance
// property for the solver layer: SolveMulti over a block of random right-hand
// sides equals nrhs independent Solve calls on the same solver, under all
// four executors, for lower and upper systems, unit and non-unit diagonals,
// and block widths straddling the MaxRHSBlock split.
func TestSolveMultiEquivalentToIndependentSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 4; trial++ {
		var tr *sparse.Triangular
		if trial%2 == 0 {
			tr = randomLower(rng, 240, 3, trial == 2)
		} else {
			tr = randomUpper(rng, 240, 3)
		}
		nrhs := []int{1, 7, core.MaxRHSBlock + 5}[trial%3]
		B := make([][]float64, nrhs)
		for c := range B {
			B[c] = stencil.RHS(tr.N, int64(100*trial+c))
		}
		for _, exec := range allExecutors {
			s, err := NewSolver(tr, multiOpts(4, exec))
			if err != nil {
				t.Fatal(err)
			}
			// Independent scalar solves on the same solver are the reference.
			want := make([][]float64, nrhs)
			for c := range B {
				want[c], _, err = s.Solve(B[c], nil)
				if err != nil {
					t.Fatalf("executor %v: scalar solve %d: %v", exec, c, err)
				}
			}
			Y, rep, err := s.SolveMulti(B, nil)
			if err != nil {
				t.Fatalf("executor %v: SolveMulti: %v", exec, err)
			}
			if rep.NRHS != nrhs {
				t.Errorf("executor %v: NRHS=%d, want %d", exec, rep.NRHS, nrhs)
			}
			for c := range B {
				if d := sparse.VecMaxDiff(Y[c], want[c]); d > 1e-12 {
					t.Fatalf("executor %v trial %d: column %d differs by %v", exec, trial, c, d)
				}
			}
			// A second multi solve reuses the plan cache and block buffers;
			// scalar solves still work afterwards on the same solver.
			Y2, _, err := s.SolveMulti(B, Y)
			if err != nil {
				t.Fatalf("executor %v: second SolveMulti: %v", exec, err)
			}
			for c := range B {
				if d := sparse.VecMaxDiff(Y2[c], want[c]); d > 1e-12 {
					t.Fatalf("executor %v: second SolveMulti column %d differs by %v", exec, c, d)
				}
			}
			if got, _, err := s.Solve(B[0], nil); err != nil {
				t.Fatalf("executor %v: scalar solve after multi: %v", exec, err)
			} else if d := sparse.VecMaxDiff(got, want[0]); d > 1e-12 {
				t.Fatalf("executor %v: scalar solve after multi differs by %v", exec, d)
			}
			s.Close()
		}
	}
}

// TestSolveMultiValidation covers the argument checks of the multi solve:
// no columns, short right-hand sides, mismatched or short solution columns.
func TestSolveMultiValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := randomLower(rng, 32, 2, false)
	s, err := NewSolver(tr, multiOpts(2, core.ExecDoacross))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.N() != tr.N {
		t.Errorf("N() = %d, want %d", s.N(), tr.N)
	}
	good := make([]float64, tr.N)
	if _, _, err := s.SolveMulti(nil, nil); err == nil {
		t.Error("SolveMulti with no columns accepted")
	}
	if _, _, err := s.SolveMulti([][]float64{good, make([]float64, tr.N-1)}, nil); err == nil {
		t.Error("short rhs column accepted")
	}
	if _, _, err := s.SolveMulti([][]float64{good}, [][]float64{nil, nil}); err == nil {
		t.Error("mismatched solution column count accepted")
	}
	if _, _, err := s.SolveMulti([][]float64{good}, [][]float64{make([]float64, tr.N-1)}); err == nil {
		t.Error("short solution column accepted")
	}
	// nil entries inside Y are allocated per column.
	Y, _, err := s.SolveMulti([][]float64{good, good}, [][]float64{nil, make([]float64, tr.N)})
	if err != nil {
		t.Fatal(err)
	}
	if len(Y) != 2 || len(Y[0]) != tr.N {
		t.Error("SolveMulti did not allocate nil solution columns")
	}
}

// TestSolveMultiCancellation checks a cancelled context aborts a multi solve
// and leaves the solver reusable.
func TestSolveMultiCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := randomLower(rng, 200, 3, false)
	s, err := NewSolver(tr, multiOpts(4, core.ExecWavefront))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	B := make([][]float64, 4)
	for c := range B {
		B[c] = stencil.RHS(tr.N, int64(c))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.SolveMultiContext(ctx, B, nil); err == nil {
		t.Error("cancelled multi solve returned no error")
	}
	Y, _, err := s.SolveMulti(B, nil)
	if err != nil {
		t.Fatalf("solver unusable after cancelled multi solve: %v", err)
	}
	want := SolveSequential(tr, B[0])
	if d := sparse.VecMaxDiff(Y[0], want); d > 1e-12 {
		t.Errorf("post-cancel solve differs by %v", d)
	}
}
