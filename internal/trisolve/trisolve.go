// Package trisolve expresses the sparse triangular solve of the paper's
// Figure 7,
//
//	do i = 1, n
//	  y(i) = rhs(i)
//	  do j = low(i), high(i)
//	    y(i) = y(i) - a(j) * y(column(j))
//	  end do
//	end do
//
// as a preprocessed doacross loop and provides the executors compared in the
// paper's Table 1: the sequential solve, the plain preprocessed doacross, the
// doconsider-reordered preprocessed doacross, and (as an additional baseline)
// a level-scheduled wavefront solve.
//
// The dependencies between elements of y are determined by the column index
// array, which is only known at run time — exactly the situation the
// preprocessed doacross targets. Because the left-hand-side subscript is the
// loop index itself (a(i) = i), the loop also exercises the linear-subscript
// variant of Section 2.3.
package trisolve

import (
	"context"
	"fmt"

	"doacross/internal/core"
	"doacross/internal/depgraph"
	"doacross/internal/doconsider"
	"doacross/internal/sched"
	"doacross/internal/sparse"
)

// Loop builds the core.Loop implementing the forward substitution for the
// lower triangular matrix t with right-hand side rhs. The loop writes y[i] at
// iteration i and reads the columns of row i, all of which are earlier
// iterations (true dependencies).
func Loop(t *sparse.Triangular, rhs []float64) (*core.Loop, error) {
	if !t.Lower {
		return nil, fmt.Errorf("trisolve: forward substitution requires a lower triangular matrix")
	}
	if len(rhs) < t.N {
		return nil, fmt.Errorf("trisolve: rhs has %d entries for %d unknowns", len(rhs), t.N)
	}
	writes := identity(t.N)
	return &core.Loop{
		N:      t.N,
		Data:   t.N,
		Writes: func(i int) []int { return writes[i : i+1] },
		Reads:  func(i int) []int { return t.Col[t.RowPtr[i]:t.RowPtr[i+1]] },
		Body: func(i int, v *core.Values) {
			s := rhs[i]
			for k := t.RowPtr[i]; k < t.RowPtr[i+1]; k++ {
				s -= t.Val[k] * v.Load(t.Col[k])
			}
			if !t.UnitDiag {
				s /= t.Diag[i]
			}
			v.Store(i, s)
		},
	}, nil
}

// UpperLoop builds the core.Loop implementing the backward substitution for
// the upper triangular matrix t with right-hand side rhs. The original loop
// runs i = n-1 down to 0; the doacross iteration index is k = n-1-i so that
// dependencies still point from lower to higher iteration indices, which is
// what the preprocessed doacross requires.
func UpperLoop(t *sparse.Triangular, rhs []float64) (*core.Loop, error) {
	if t.Lower {
		return nil, fmt.Errorf("trisolve: backward substitution requires an upper triangular matrix")
	}
	if len(rhs) < t.N {
		return nil, fmt.Errorf("trisolve: rhs has %d entries for %d unknowns", len(rhs), t.N)
	}
	n := t.N
	writes := make([]int, n)
	for k := range writes {
		writes[k] = n - 1 - k
	}
	return &core.Loop{
		N:      n,
		Data:   n,
		Writes: func(k int) []int { return writes[k : k+1] },
		Reads:  func(k int) []int { i := n - 1 - k; return t.Col[t.RowPtr[i]:t.RowPtr[i+1]] },
		Body: func(k int, v *core.Values) {
			i := n - 1 - k
			s := rhs[i]
			for kk := t.RowPtr[i]; kk < t.RowPtr[i+1]; kk++ {
				s -= t.Val[kk] * v.Load(t.Col[kk])
			}
			if !t.UnitDiag {
				s /= t.Diag[i]
			}
			v.Store(i, s)
		},
	}, nil
}

// identity returns the slice [0, 1, ..., n-1], shared by the forward solve's
// write index.
func identity(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// Graph builds the true-dependency graph of the forward solve: iteration i
// depends on every column index appearing in row i.
func Graph(t *sparse.Triangular) *depgraph.Graph {
	return depgraph.BuildFromWriterIndex(t.N, identity(t.N), func(i int) []int {
		return t.Col[t.RowPtr[i]:t.RowPtr[i+1]]
	})
}

// UpperGraph builds the true-dependency graph of the backward solve in the
// doacross iteration numbering (iteration k solves row n-1-k).
func UpperGraph(t *sparse.Triangular) *depgraph.Graph {
	n := t.N
	write := make([]int, n)
	for k := range write {
		write[k] = n - 1 - k
	}
	return depgraph.BuildFromWriterIndex(n, write, func(k int) []int {
		i := n - 1 - k
		return t.Col[t.RowPtr[i]:t.RowPtr[i+1]]
	})
}

// Subscript returns the (trivial) linear left-hand-side subscript of the
// solve loop, a(i) = i, for use with the linear-subscript doacross variant.
func Subscript() core.LinearSubscript { return core.LinearSubscript{C: 1, D: 0} }

// SolveSequential solves T*y = rhs with the ordinary sequential substitution
// (the paper's Table 1 "Sequential Time" column).
func SolveSequential(t *sparse.Triangular, rhs []float64) []float64 {
	return t.Solve(rhs, nil)
}

// Solver binds a reusable doacross runtime to one triangular matrix. The
// whole premise of the preprocessed doacross is that one set of scratch
// state and processors is reused across successive executions of the same
// loop; an iterative driver (a Krylov method applies its ILU preconditioner
// — two triangular solves — once or twice per iteration) should therefore
// build the runtime, the worker pool and any reordering plan once and reuse
// them for every solve, which is what Solver provides. The one-shot
// SolveDoacross functions remain for single solves and experiments.
//
// A Solver is not safe for concurrent use. Close releases the worker pool.
type Solver struct {
	t    *sparse.Triangular
	rt   *core.Runtime
	loop *core.Loop
	rhs  []float64 // owned buffer the loop reads; refilled per Solve
	// mrhs is the owned element-major right-hand-side block of a SolveMulti
	// call: the value of (row i, block column c) at [i*nc + c], matching the
	// layout MultiValues hands the loop body. Sized lazily and reused across
	// blocks and calls.
	mrhs []float64
}

// NewSolver builds a reusable doacross solver for the triangular matrix t,
// choosing forward or backward substitution from t.Lower.
func NewSolver(t *sparse.Triangular, opts core.Options) (*Solver, error) {
	return newSolver(t, opts)
}

// NewReorderedSolver builds a reusable doacross solver whose iterations are
// rearranged once with the given doconsider strategy; every subsequent Solve
// reuses the plan. The wavefront executor derives its own level order, so
// combining it with a reordering is rejected here rather than failing on the
// first Solve.
func NewReorderedSolver(t *sparse.Triangular, strategy doconsider.Strategy, opts core.Options) (*Solver, error) {
	if opts.Executor == core.ExecWavefront || opts.Executor == core.ExecWavefrontDynamic {
		return nil, fmt.Errorf("trisolve: a reordered solver cannot use the %v executor (it derives its own level order)", opts.Executor)
	}
	var g *depgraph.Graph
	if t.Lower {
		g = Graph(t)
	} else {
		g = UpperGraph(t)
	}
	plan := doconsider.NewPlan(g, strategy)
	if err := doconsider.Validate(g, plan.Order); err != nil {
		return nil, err
	}
	opts.Order = plan.Order
	return newSolver(t, opts)
}

func newSolver(t *sparse.Triangular, opts core.Options) (*Solver, error) {
	s := &Solver{t: t, rhs: make([]float64, t.N)}
	var err error
	if t.Lower {
		s.loop, err = Loop(t, s.rhs)
	} else {
		s.loop, err = UpperLoop(t, s.rhs)
	}
	if err != nil {
		return nil, err
	}
	s.attachMultiBody()
	// Validation is cheap here: the forward solve hits Loop.Validate's
	// identity fast path, and the backward solve reuses the pooled writer
	// scratch, so building solvers in a loop stays allocation-light.
	if err := s.loop.Validate(); err != nil {
		return nil, err
	}
	s.rt = core.NewRuntime(t.N, opts)
	return s, nil
}

// attachMultiBody wires the blocked multi-RHS body onto the solver's loop —
// the same Loop value the scalar solves run, so both paths share one cached
// wavefront plan. The body is the substitution of Loop/UpperLoop applied to a
// whole row of columns per element: one dependency classification (and at
// most one wait) covers the row, then nc multiply-adds run over contiguous
// memory, which is what multiplies arithmetic intensity per level barrier.
func (s *Solver) attachMultiBody() {
	t := s.t
	if t.Lower {
		s.loop.BodyMulti = func(i int, v *core.MultiValues) {
			nc := v.Cols()
			out := v.Row(i)
			copy(out, s.mrhs[i*nc:(i+1)*nc])
			for k := t.RowPtr[i]; k < t.RowPtr[i+1]; k++ {
				a := t.Val[k]
				row := v.LoadRow(t.Col[k])
				for c := range out {
					out[c] -= a * row[c]
				}
			}
			if !t.UnitDiag {
				d := t.Diag[i]
				for c := range out {
					out[c] /= d
				}
			}
		}
		return
	}
	n := t.N
	s.loop.BodyMulti = func(k int, v *core.MultiValues) {
		i := n - 1 - k
		nc := v.Cols()
		out := v.Row(i)
		copy(out, s.mrhs[i*nc:(i+1)*nc])
		for kk := t.RowPtr[i]; kk < t.RowPtr[i+1]; kk++ {
			a := t.Val[kk]
			row := v.LoadRow(t.Col[kk])
			for c := range out {
				out[c] -= a * row[c]
			}
		}
		if !t.UnitDiag {
			d := t.Diag[i]
			for c := range out {
				out[c] /= d
			}
		}
	}
}

// N reports the number of unknowns of the solver's triangular system — the
// length a right-hand side must have. The serving front end (internal/serve)
// uses it to validate requests before they join a batch.
func (s *Solver) N() int { return s.t.N }

// Solve solves T*y = rhs with the preprocessed doacross, writing the
// solution into y (allocated when nil) and returning it with the execution
// report. rhs is copied into the solver's owned buffer, so the caller's
// slice is never retained.
func (s *Solver) Solve(rhs, y []float64) ([]float64, core.Report, error) {
	return s.SolveContext(context.Background(), rhs, y)
}

// SolveContext is Solve with cancellation: the underlying doacross run is
// aborted (and the solver left reusable) as soon as ctx is cancelled.
func (s *Solver) SolveContext(ctx context.Context, rhs, y []float64) ([]float64, core.Report, error) {
	if len(rhs) < s.t.N {
		return nil, core.Report{}, fmt.Errorf("trisolve: rhs has %d entries for %d unknowns", len(rhs), s.t.N)
	}
	if y == nil {
		y = make([]float64, s.t.N)
	}
	copy(s.rhs, rhs[:s.t.N])
	rep, err := s.rt.RunContext(ctx, s.loop, y)
	if err != nil {
		return nil, core.Report{}, err
	}
	return y, rep, nil
}

// SolveMulti solves T*Y[c] = B[c] for every column of B in blocked multi-RHS
// traversals: the dependency structure is walked once per block of up to
// core.MaxRHSBlock columns, so the per-solve fixed costs (level barriers,
// flag maintenance, classification) amortize across the block — the batching
// primitive the serving front end coalesces concurrent requests onto. Y is
// the solution columns, allocated (column-wise or entirely) when nil, and is
// returned with an execution report aggregating all blocks. Every B column is
// copied into the solver's owned block buffer, so the callers' slices are
// never retained — concurrent enqueuers can reuse their buffers as soon as
// their request completes.
func (s *Solver) SolveMulti(B, Y [][]float64) ([][]float64, core.Report, error) {
	return s.SolveMultiContext(context.Background(), B, Y)
}

// SolveMultiContext is SolveMulti with cancellation: the underlying run is
// aborted (and the solver left reusable) as soon as ctx is cancelled. The
// contents of Y are unspecified after a failed solve.
func (s *Solver) SolveMultiContext(ctx context.Context, B, Y [][]float64) ([][]float64, core.Report, error) {
	n := s.t.N
	if len(B) == 0 {
		return nil, core.Report{}, fmt.Errorf("trisolve: SolveMulti requires at least one right-hand side")
	}
	for c, b := range B {
		if len(b) < n {
			return nil, core.Report{}, fmt.Errorf("trisolve: rhs column %d has %d entries for %d unknowns", c, len(b), n)
		}
	}
	if Y == nil {
		Y = make([][]float64, len(B))
	}
	if len(Y) != len(B) {
		return nil, core.Report{}, fmt.Errorf("trisolve: %d solution columns for %d right-hand sides", len(Y), len(B))
	}
	for c := range Y {
		if Y[c] == nil {
			Y[c] = make([]float64, n)
		} else if len(Y[c]) < n {
			return nil, core.Report{}, fmt.Errorf("trisolve: solution column %d has %d entries for %d unknowns", c, len(Y[c]), n)
		}
	}
	var rep core.Report
	for base := 0; base < len(B); base += core.MaxRHSBlock {
		end := base + core.MaxRHSBlock
		if end > len(B) {
			end = len(B)
		}
		// Gather the block's right-hand sides element-major, matching the
		// row layout the multi body reads (blocking here keeps the solver's
		// block width equal to the traversal's, so v.Cols() indexes mrhs).
		nc := end - base
		if cap(s.mrhs) < n*nc {
			s.mrhs = make([]float64, n*nc)
		}
		s.mrhs = s.mrhs[:n*nc]
		for i := 0; i < n; i++ {
			row := s.mrhs[i*nc : (i+1)*nc]
			for c := range row {
				row[c] = B[base+c][i]
			}
		}
		blockRep, err := s.rt.RunMulti(ctx, s.loop, Y[base:end])
		if err != nil {
			return nil, core.Report{}, err
		}
		rep.PreTime += blockRep.PreTime
		rep.ExecTime += blockRep.ExecTime
		rep.PostTime += blockRep.PostTime
		rep.TotalTime += blockRep.TotalTime
		rep.TrueDeps += blockRep.TrueDeps
		rep.SelfDeps += blockRep.SelfDeps
		rep.AntiOrNone += blockRep.AntiOrNone
		rep.WaitPolls += blockRep.WaitPolls
		rep.Workers = blockRep.Workers
		rep.Iterations = blockRep.Iterations
		rep.Order = blockRep.Order
		rep.WaitPolicy = blockRep.WaitPolicy
		rep.SchedPolicy = blockRep.SchedPolicy
		rep.Executor = blockRep.Executor
		rep.Levels = blockRep.Levels
		rep.InspectCached = blockRep.InspectCached
		rep.AutoCosts = blockRep.AutoCosts
		rep.PredictedDoacrossNs = blockRep.PredictedDoacrossNs
		rep.PredictedWavefrontNs = blockRep.PredictedWavefrontNs
		rep.PredictedDynamicNs = blockRep.PredictedDynamicNs
	}
	rep.NRHS = len(B)
	return Y, rep, nil
}

// UpdateRow replaces row i of the solver's triangular matrix (see
// sparse.Triangular.SetRow) and repairs the cached wavefront plan in place
// instead of discarding it: only the edited row's dependencies are
// re-inspected and only the levels its dirty cone actually perturbs are
// rebuilt, so a per-step sparsity change (mesh refinement, ILU fill-in)
// costs orders of magnitude less than the cold re-inspect a full
// invalidation would force. The loop's Reads closure slices the matrix's CSR
// arrays directly, so the splice is all the data change needed; the repair
// brings the cached dependency graph, level decomposition and schedule in
// line with it.
//
// The returned report says whether the plan was patched (Repaired) or the
// runtime fell back to a cold re-inspect on the next solve — both leave the
// solver consistent. On a SetRow error the matrix and plan are unchanged.
func (s *Solver) UpdateRow(i int, cols []int, vals []float64, diag float64) (core.RepairReport, error) {
	if err := s.t.SetRow(i, cols, vals, diag); err != nil {
		return core.RepairReport{}, err
	}
	k := i
	if !s.t.Lower {
		k = s.t.N - 1 - i
	}
	return s.rt.RepairPlans(s.loop, core.EditSet{Iters: []int{k}})
}

// InvalidatePlans evicts the solver's cached wavefront plans, forcing the
// next solve to re-inspect cold. It is the blunt alternative to UpdateRow's
// incremental repair, needed when the matrix was mutated directly (not
// through UpdateRow) or to measure the cold inspection cost.
func (s *Solver) InvalidatePlans() { s.rt.InvalidatePlans() }

// Trace returns the per-iteration trace of the most recent Solve when the
// solver was built with Options.CollectTrace, or nil otherwise.
func (s *Solver) Trace() *core.Trace { return s.rt.Trace() }

// Close releases the solver's worker pool. It is idempotent.
func (s *Solver) Close() { s.rt.Close() }

// UseDoacrossILU replaces both triangular substitutions of the ILU
// preconditioner with reusable preprocessed-doacross solvers (forward for L,
// backward for U), so an iterative Krylov solve reuses two persistent worker
// pools across every preconditioner application instead of building a
// runtime per substitution. It returns a release function that retires both
// pools; call it when the preconditioner is no longer needed.
func UseDoacrossILU(p *sparse.ILUPreconditioner, opts core.Options) (release func(), err error) {
	return wireILU(p, func(t *sparse.Triangular) (*Solver, error) {
		return NewSolver(t, opts)
	})
}

// UseDoacrossILUReordered is UseDoacrossILU with each factor's iterations
// rearranged once by the given doconsider strategy.
func UseDoacrossILUReordered(p *sparse.ILUPreconditioner, strategy doconsider.Strategy, opts core.Options) (release func(), err error) {
	return wireILU(p, func(t *sparse.Triangular) (*Solver, error) {
		return NewReorderedSolver(t, strategy, opts)
	})
}

func wireILU(p *sparse.ILUPreconditioner, mk func(*sparse.Triangular) (*Solver, error)) (func(), error) {
	lower, err := mk(p.L)
	if err != nil {
		return nil, err
	}
	upper, err := mk(p.U)
	if err != nil {
		lower.Close()
		return nil, err
	}
	// The substitution hooks cannot return an error; a Solve failure here
	// means the preconditioner's factors changed shape under the solver,
	// which is a programming error, so it panics.
	p.SolveLower = func(_ *sparse.Triangular, rhs, y []float64) []float64 {
		sol, _, e := lower.Solve(rhs, y)
		if e != nil {
			panic(fmt.Sprintf("trisolve: lower ILU substitution failed: %v", e))
		}
		return sol
	}
	p.SolveUpper = func(_ *sparse.Triangular, rhs, y []float64) []float64 {
		sol, _, e := upper.Solve(rhs, y)
		if e != nil {
			panic(fmt.Sprintf("trisolve: upper ILU substitution failed: %v", e))
		}
		return sol
	}
	return func() {
		lower.Close()
		upper.Close()
	}, nil
}

// SolveDoacross solves T*y = rhs with the plain preprocessed doacross (the
// Table 1 "Preprocessed Doacross" column) using the supplied runtime options.
// It returns the solution and the execution report.
func SolveDoacross(t *sparse.Triangular, rhs []float64, opts core.Options) ([]float64, core.Report, error) {
	l, err := Loop(t, rhs)
	if err != nil {
		return nil, core.Report{}, err
	}
	y := make([]float64, t.N)
	rt := core.NewRuntime(t.N, opts)
	defer rt.Close()
	rep, err := rt.Run(l, y)
	if err != nil {
		return nil, core.Report{}, err
	}
	return y, rep, nil
}

// SolveDoacrossReordered solves T*y = rhs with the preprocessed doacross
// after reordering the iterations with the given doconsider strategy (the
// Table 1 "Preprocessed Doacross Iterations Rearranged" column).
func SolveDoacrossReordered(t *sparse.Triangular, rhs []float64, strategy doconsider.Strategy, opts core.Options) ([]float64, core.Report, error) {
	l, err := Loop(t, rhs)
	if err != nil {
		return nil, core.Report{}, err
	}
	g := Graph(t)
	plan := doconsider.NewPlan(g, strategy)
	if err := doconsider.Validate(g, plan.Order); err != nil {
		return nil, core.Report{}, err
	}
	opts.Order = plan.Order
	y := make([]float64, t.N)
	rt := core.NewRuntime(t.N, opts)
	defer rt.Close()
	rep, err := rt.Run(l, y)
	if err != nil {
		return nil, core.Report{}, err
	}
	return y, rep, nil
}

// SolveUpperDoacross solves the upper triangular system T*y = rhs (backward
// substitution) with the preprocessed doacross. Together with SolveDoacross
// it lets both substitutions of an ILU preconditioner run in parallel.
func SolveUpperDoacross(t *sparse.Triangular, rhs []float64, opts core.Options) ([]float64, core.Report, error) {
	l, err := UpperLoop(t, rhs)
	if err != nil {
		return nil, core.Report{}, err
	}
	y := make([]float64, t.N)
	rt := core.NewRuntime(t.N, opts)
	defer rt.Close()
	rep, err := rt.Run(l, y)
	if err != nil {
		return nil, core.Report{}, err
	}
	return y, rep, nil
}

// SolveUpperDoacrossReordered solves the upper triangular system with the
// preprocessed doacross after a doconsider reordering of the (reversed)
// iteration space.
func SolveUpperDoacrossReordered(t *sparse.Triangular, rhs []float64, strategy doconsider.Strategy, opts core.Options) ([]float64, core.Report, error) {
	l, err := UpperLoop(t, rhs)
	if err != nil {
		return nil, core.Report{}, err
	}
	g := UpperGraph(t)
	plan := doconsider.NewPlan(g, strategy)
	if err := doconsider.Validate(g, plan.Order); err != nil {
		return nil, core.Report{}, err
	}
	opts.Order = plan.Order
	y := make([]float64, t.N)
	rt := core.NewRuntime(t.N, opts)
	defer rt.Close()
	rep, err := rt.Run(l, y)
	if err != nil {
		return nil, core.Report{}, err
	}
	return y, rep, nil
}

// SolveRenumbered solves T*y = rhs by renumbering the unknowns with the
// doconsider ordering (a symmetric permutation of the matrix and right-hand
// side) and running the preprocessed doacross in natural order on the
// renumbered system. It is the "transform the data" alternative to
// SolveDoacrossReordered's "transform the schedule": both produce identical
// results, and comparing them isolates whether the benefit of the doconsider
// comes from the iteration order alone.
func SolveRenumbered(t *sparse.Triangular, rhs []float64, strategy doconsider.Strategy, opts core.Options) ([]float64, core.Report, error) {
	g := Graph(t)
	plan := doconsider.NewPlan(g, strategy)
	if err := doconsider.Validate(g, plan.Order); err != nil {
		return nil, core.Report{}, err
	}
	perm, err := sparse.NewPermutationFromOrder(plan.Order)
	if err != nil {
		return nil, core.Report{}, err
	}
	pt, err := perm.PermuteTriangular(t)
	if err != nil {
		return nil, core.Report{}, err
	}
	prhs := perm.PermuteVector(rhs)
	py, rep, err := SolveDoacross(pt, prhs, opts)
	if err != nil {
		return nil, core.Report{}, err
	}
	rep.Order = "renumbered"
	return perm.UnpermuteVector(py), rep, nil
}

// SolveLinear solves T*y = rhs with the linear-subscript doacross variant
// (no inspector), exploiting a(i) = i.
func SolveLinear(t *sparse.Triangular, rhs []float64, opts core.Options) ([]float64, core.Report, error) {
	l, err := Loop(t, rhs)
	if err != nil {
		return nil, core.Report{}, err
	}
	y := make([]float64, t.N)
	rt := core.NewRuntime(t.N, opts)
	defer rt.Close()
	rep, err := rt.RunLinear(l, y, Subscript())
	if err != nil {
		return nil, core.Report{}, err
	}
	return y, rep, nil
}

// SolveLevelScheduled solves T*y = rhs by level scheduling: the dependency
// graph is decomposed into wavefronts and each wavefront is executed as a
// doall over the given number of workers, with a barrier between wavefronts.
// It is the standard alternative to the doacross for sparse triangular solves
// and serves as an additional baseline in the experiments.
func SolveLevelScheduled(t *sparse.Triangular, rhs []float64, workers int) ([]float64, int) {
	g := Graph(t)
	_, byLevel := g.Levels()
	y := make([]float64, t.N)
	pool := sched.NewPool(workers)
	defer pool.Close()
	for _, lvl := range byLevel {
		lvl := lvl
		pool.ParallelFor(len(lvl), func(k int) {
			i := lvl[k]
			s := rhs[i]
			for kk := t.RowPtr[i]; kk < t.RowPtr[i+1]; kk++ {
				s -= t.Val[kk] * y[t.Col[kk]]
			}
			if !t.UnitDiag {
				s /= t.Diag[i]
			}
			y[i] = s
		})
	}
	return y, len(byLevel)
}

// SolverKind identifies one of the triangular-solve executors, used by the
// experiment harness and the CLI.
type SolverKind int

const (
	Sequential SolverKind = iota
	Doacross
	DoacrossReordered
	LinearSubscript
	LevelScheduled
	// DoacrossWavefront runs the preprocessed runtime with its wavefront
	// executor: the inspected dependency graph executed level by level with
	// the decomposition and static schedule cached across solves. It differs
	// from LevelScheduled, which rebuilds the level sets on every call and
	// exists as the naive baseline.
	DoacrossWavefront
	// DoacrossWavefrontDynamic runs the preprocessed runtime with its
	// dynamic wavefront executor: the same cached decomposition as
	// DoacrossWavefront, but each level is self-scheduled, so rows of very
	// different occupancy inside one wavefront (the heavy-tailed factors)
	// no longer serialize the level behind one statically unlucky worker.
	DoacrossWavefrontDynamic
)

// String returns the executor's name as used in reports.
func (k SolverKind) String() string {
	switch k {
	case Sequential:
		return "sequential"
	case Doacross:
		return "doacross"
	case DoacrossReordered:
		return "doacross-reordered"
	case LinearSubscript:
		return "doacross-linear"
	case LevelScheduled:
		return "level-scheduled"
	case DoacrossWavefront:
		return "doacross-wavefront"
	case DoacrossWavefrontDynamic:
		return "doacross-wavefront-dynamic"
	default:
		return "unknown"
	}
}

// Solve dispatches to the executor identified by kind with the given options
// (ignored by Sequential and LevelScheduled, which only use opts.Workers).
func Solve(kind SolverKind, t *sparse.Triangular, rhs []float64, opts core.Options) ([]float64, core.Report, error) {
	switch kind {
	case Sequential:
		return SolveSequential(t, rhs), core.Report{Workers: 1, Iterations: t.N, Order: "sequential"}, nil
	case Doacross:
		return SolveDoacross(t, rhs, opts)
	case DoacrossReordered:
		return SolveDoacrossReordered(t, rhs, doconsider.Level, opts)
	case LinearSubscript:
		return SolveLinear(t, rhs, opts)
	case LevelScheduled:
		y, levels := SolveLevelScheduled(t, rhs, opts.Workers)
		return y, core.Report{Workers: opts.Workers, Iterations: t.N, Order: fmt.Sprintf("level-scheduled(%d levels)", levels)}, nil
	case DoacrossWavefront:
		opts.Executor = core.ExecWavefront
		return SolveDoacross(t, rhs, opts)
	case DoacrossWavefrontDynamic:
		opts.Executor = core.ExecWavefrontDynamic
		return SolveDoacross(t, rhs, opts)
	default:
		return nil, core.Report{}, fmt.Errorf("trisolve: unknown solver kind %d", int(kind))
	}
}
