package trisolve

import (
	"math/rand"
	"testing"

	"doacross/internal/core"
	"doacross/internal/sparse"
	"doacross/internal/stencil"
)

// randomRowEdit draws a fresh off-diagonal pattern for row i of a lower
// (below=true) or upper (below=false) triangular matrix of size n.
func randomRowEdit(rng *rand.Rand, n, i int, below bool) (cols []int, vals []float64) {
	var pool []int
	if below {
		for j := 0; j < i; j++ {
			pool = append(pool, j)
		}
	} else {
		for j := i + 1; j < n; j++ {
			pool = append(pool, j)
		}
	}
	rng.Shuffle(len(pool), func(a, b int) { pool[a], pool[b] = pool[b], pool[a] })
	k := rng.Intn(4)
	if k > len(pool) {
		k = len(pool)
	}
	for _, j := range pool[:k] {
		cols = append(cols, j)
		vals = append(vals, rng.NormFloat64()*0.3)
	}
	return cols, vals
}

// TestSolverUpdateRowMatchesSequential drives random row updates through
// UpdateRow and checks every subsequent parallel solve against the
// sequential substitution of the spliced matrix — for both substitution
// directions and both wavefront executors.
func TestSolverUpdateRowMatchesSequential(t *testing.T) {
	for _, exec := range []core.ExecutorKind{core.ExecWavefront, core.ExecWavefrontDynamic} {
		for _, lowerTri := range []bool{true, false} {
			rng := rand.New(rand.NewSource(29))
			var tr *sparse.Triangular
			if lowerTri {
				tr = randomLower(rng, 240, 3, false)
			} else {
				tr = randomUpper(rng, 240, 3)
			}
			o := opts(3)
			o.Executor = exec
			s, err := NewSolver(tr, o)
			if err != nil {
				t.Fatal(err)
			}
			rhs := stencil.RHS(tr.N, 7)
			check := func(label string) {
				t.Helper()
				got, _, err := s.Solve(rhs, nil)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				want := tr.Solve(rhs, nil)
				if d := sparse.VecMaxDiff(got, want); d > 1e-12 {
					t.Fatalf("%s (exec %v lower %v): solve differs by %v", label, exec, lowerTri, d)
				}
			}
			check("cold solve")
			repaired := 0
			for step := 0; step < 20; step++ {
				i := 1 + rng.Intn(tr.N-1)
				if !lowerTri {
					i = rng.Intn(tr.N - 1)
				}
				cols, vals := randomRowEdit(rng, tr.N, i, lowerTri)
				rep, err := s.UpdateRow(i, cols, vals, 2+rng.Float64())
				if err != nil {
					t.Fatalf("step %d: UpdateRow(%d): %v", step, i, err)
				}
				if rep.Repaired {
					repaired++
				}
				check("post-update solve")
			}
			if repaired == 0 {
				t.Fatalf("exec %v lower %v: no update took the repair path", exec, lowerTri)
			}
			s.Close()
		}
	}
}

// TestSolverUpdateRowRejectsBadRow checks a SetRow failure surfaces as an
// error and leaves both the matrix and the cached plan untouched.
func TestSolverUpdateRowRejectsBadRow(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tr := randomLower(rng, 64, 2, false)
	o := opts(2)
	o.Executor = core.ExecWavefront
	s, err := NewSolver(tr, o)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rhs := stencil.RHS(tr.N, 1)
	if _, _, err := s.Solve(rhs, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.UpdateRow(5, []int{7}, []float64{1}, 2); err == nil {
		t.Fatal("forward column accepted in a lower-triangular update")
	}
	_, rep, err := s.Solve(rhs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.InspectCached {
		t.Fatal("a rejected UpdateRow evicted the cached plan")
	}
}
