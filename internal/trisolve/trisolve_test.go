package trisolve

import (
	"math/rand"
	"testing"

	"doacross/internal/core"
	"doacross/internal/doconsider"
	"doacross/internal/flags"
	"doacross/internal/sparse"
	"doacross/internal/stencil"
)

// randomLower builds a random well-conditioned lower triangular matrix.
func randomLower(rng *rand.Rand, n, rowNNZ int, unit bool) *sparse.Triangular {
	var ts []sparse.Triplet
	for i := 0; i < n; i++ {
		ts = append(ts, sparse.Triplet{Row: i, Col: i, Val: 2 + rng.Float64()})
		for k := 0; k < rowNNZ && i > 0; k++ {
			ts = append(ts, sparse.Triplet{Row: i, Col: rng.Intn(i), Val: rng.NormFloat64() * 0.3})
		}
	}
	a, _ := sparse.FromTriplets(n, n, ts)
	l := sparse.LowerTriangle(a)
	if unit {
		l.UnitDiag = true
		for i := range l.Diag {
			l.Diag[i] = 1
		}
	}
	return l
}

func opts(workers int) core.Options {
	return core.Options{Workers: workers, WaitStrategy: flags.WaitSpinYield}
}

func TestLoopRejectsBadInput(t *testing.T) {
	u := &sparse.Triangular{N: 2, Lower: false, RowPtr: []int{0, 0, 0}, Diag: []float64{1, 1}}
	if _, err := Loop(u, []float64{1, 2}); err == nil {
		t.Error("upper triangular accepted for forward solve")
	}
	l := &sparse.Triangular{N: 3, Lower: true, RowPtr: []int{0, 0, 0, 0}, Diag: []float64{1, 1, 1}}
	if _, err := Loop(l, []float64{1}); err == nil {
		t.Error("short rhs accepted")
	}
}

func TestDoacrossSolveMatchesSequentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		tr := randomLower(rng, 300, 3, trial%2 == 0)
		rhs := stencil.RHS(tr.N, int64(trial))
		want := SolveSequential(tr, rhs)
		for _, workers := range []int{1, 2, 4, 8} {
			got, rep, err := SolveDoacross(tr, rhs, opts(workers))
			if err != nil {
				t.Fatal(err)
			}
			if d := sparse.VecMaxDiff(got, want); d > 1e-12 {
				t.Fatalf("trial %d workers %d: doacross differs by %v", trial, workers, d)
			}
			if rep.Iterations != tr.N {
				t.Error("report iteration count wrong")
			}
		}
	}
}

func TestReorderedSolveMatchesSequential(t *testing.T) {
	l, _, err := stencil.LowerFactor(stencil.FivePoint, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Shrink to a quicker instance by using the 5-PT structure directly.
	rhs := stencil.RHS(l.N, 7)
	want := SolveSequential(l, rhs)
	for _, strategy := range []doconsider.Strategy{doconsider.Level, doconsider.LevelInterleaved, doconsider.CriticalPath} {
		got, rep, err := SolveDoacrossReordered(l, rhs, strategy, opts(4))
		if err != nil {
			t.Fatal(err)
		}
		if d := sparse.VecMaxDiff(got, want); d > 1e-10 {
			t.Fatalf("strategy %v: reordered solve differs by %v", strategy, d)
		}
		if rep.Order != "reordered" {
			t.Errorf("strategy %v: report order %q", strategy, rep.Order)
		}
	}
}

func TestLinearSolveMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := randomLower(rng, 400, 4, false)
	rhs := stencil.RHS(tr.N, 2)
	want := SolveSequential(tr, rhs)
	got, rep, err := SolveLinear(tr, rhs, opts(4))
	if err != nil {
		t.Fatal(err)
	}
	if d := sparse.VecMaxDiff(got, want); d > 1e-12 {
		t.Fatalf("linear-subscript solve differs by %v", d)
	}
	if rep.PreTime != 0 {
		t.Error("linear-subscript solve should have no inspector phase")
	}
}

func TestLevelScheduledSolveMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tr := randomLower(rng, 500, 3, true)
	rhs := stencil.RHS(tr.N, 4)
	want := SolveSequential(tr, rhs)
	got, levels := SolveLevelScheduled(tr, rhs, 4)
	if d := sparse.VecMaxDiff(got, want); d > 1e-12 {
		t.Fatalf("level-scheduled solve differs by %v", d)
	}
	g := Graph(tr)
	if _, byLevel := g.Levels(); len(byLevel) != levels {
		t.Errorf("level count mismatch: %d vs %d", levels, len(byLevel))
	}
}

func TestGraphStructureMatchesMatrix(t *testing.T) {
	// The dependency graph of the solve must contain exactly one predecessor
	// per off-diagonal nonzero (after dedup).
	rng := rand.New(rand.NewSource(33))
	tr := randomLower(rng, 100, 2, false)
	g := Graph(tr)
	if g.N != tr.N {
		t.Fatal("graph size mismatch")
	}
	for i := 0; i < tr.N; i++ {
		want := map[int]bool{}
		for k := tr.RowPtr[i]; k < tr.RowPtr[i+1]; k++ {
			want[tr.Col[k]] = true
		}
		if len(g.Preds[i]) != len(want) {
			t.Fatalf("row %d: %d preds, want %d", i, len(g.Preds[i]), len(want))
		}
		for _, p := range g.Preds[i] {
			if !want[int(p)] {
				t.Fatalf("row %d: unexpected predecessor %d", i, p)
			}
		}
	}
}

func TestSubscript(t *testing.T) {
	s := Subscript()
	if s.C != 1 || s.D != 0 {
		t.Errorf("Subscript() = %+v, want identity", s)
	}
}

func TestSolveDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := randomLower(rng, 200, 2, true)
	rhs := stencil.RHS(tr.N, 11)
	want := SolveSequential(tr, rhs)
	for _, kind := range []SolverKind{Sequential, Doacross, DoacrossReordered, LinearSubscript, LevelScheduled} {
		got, _, err := Solve(kind, tr, rhs, opts(4))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if d := sparse.VecMaxDiff(got, want); d > 1e-12 {
			t.Fatalf("%v: differs by %v", kind, d)
		}
		if kind.String() == "unknown" {
			t.Errorf("%v has no name", kind)
		}
	}
	if _, _, err := Solve(SolverKind(99), tr, rhs, opts(1)); err == nil {
		t.Error("unknown solver kind accepted")
	}
	if SolverKind(99).String() != "unknown" {
		t.Error("unknown kind should stringify to unknown")
	}
}

// randomUpper builds a random well-conditioned upper triangular matrix.
func randomUpper(rng *rand.Rand, n, rowNNZ int) *sparse.Triangular {
	var ts []sparse.Triplet
	for i := 0; i < n; i++ {
		ts = append(ts, sparse.Triplet{Row: i, Col: i, Val: 2 + rng.Float64()})
		for k := 0; k < rowNNZ && i < n-1; k++ {
			ts = append(ts, sparse.Triplet{Row: i, Col: i + 1 + rng.Intn(n-1-i), Val: rng.NormFloat64() * 0.3})
		}
	}
	a, _ := sparse.FromTriplets(n, n, ts)
	return sparse.UpperTriangle(a)
}

func TestUpperLoopRejectsLower(t *testing.T) {
	l := &sparse.Triangular{N: 2, Lower: true, RowPtr: []int{0, 0, 0}, Diag: []float64{1, 1}}
	if _, err := UpperLoop(l, []float64{1, 2}); err == nil {
		t.Error("lower triangular accepted for backward solve")
	}
	u := &sparse.Triangular{N: 3, Lower: false, RowPtr: []int{0, 0, 0, 0}, Diag: []float64{1, 1, 1}}
	if _, err := UpperLoop(u, []float64{1}); err == nil {
		t.Error("short rhs accepted")
	}
}

func TestUpperDoacrossSolveMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 3; trial++ {
		tr := randomUpper(rng, 300, 3)
		rhs := stencil.RHS(tr.N, int64(trial))
		want := tr.Solve(rhs, nil)
		got, rep, err := SolveUpperDoacross(tr, rhs, opts(4))
		if err != nil {
			t.Fatal(err)
		}
		if d := sparse.VecMaxDiff(got, want); d > 1e-12 {
			t.Fatalf("trial %d: backward doacross differs by %v", trial, d)
		}
		if rep.Iterations != tr.N {
			t.Error("report iteration count wrong")
		}
	}
}

func TestUpperDoacrossReorderedMatchesSequential(t *testing.T) {
	_, u, err := stencil.LowerFactor(stencil.FivePoint, 1)
	if err != nil {
		t.Fatal(err)
	}
	rhs := stencil.RHS(u.N, 3)
	want := u.Solve(rhs, nil)
	got, rep, err := SolveUpperDoacrossReordered(u, rhs, doconsider.Level, opts(4))
	if err != nil {
		t.Fatal(err)
	}
	if d := sparse.VecMaxDiff(got, want); d > 1e-10 {
		t.Fatalf("reordered backward doacross differs by %v", d)
	}
	if rep.Order != "reordered" {
		t.Errorf("report order %q", rep.Order)
	}
}

func TestUpperGraphStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	tr := randomUpper(rng, 80, 2)
	g := UpperGraph(tr)
	if g.N != tr.N {
		t.Fatal("graph size mismatch")
	}
	// Every edge must point from a lower doacross index (later row) to a
	// higher doacross index (earlier row): predecessors of iteration k solve
	// rows with larger row numbers.
	n := tr.N
	for k := 0; k < n; k++ {
		i := n - 1 - k
		for _, p := range g.Preds[k] {
			rowOfPred := n - 1 - int(p)
			if rowOfPred <= i {
				t.Fatalf("iteration %d (row %d) depends on row %d, which backward substitution computes later", k, i, rowOfPred)
			}
		}
	}
}

func TestRenumberedSolveMatchesSequential(t *testing.T) {
	// Renumbering the unknowns with the doconsider ordering and executing in
	// natural order must give exactly the same answer as reordering the
	// execution of the original numbering.
	l, _, err := stencil.LowerFactor(stencil.FivePoint, 1)
	if err != nil {
		t.Fatal(err)
	}
	rhs := stencil.RHS(l.N, 5)
	want := SolveSequential(l, rhs)
	renumbered, rep, err := SolveRenumbered(l, rhs, doconsider.Level, opts(4))
	if err != nil {
		t.Fatal(err)
	}
	if d := sparse.VecMaxDiff(renumbered, want); d > 1e-10 {
		t.Fatalf("renumbered solve differs by %v", d)
	}
	if rep.Order != "renumbered" {
		t.Errorf("report order %q", rep.Order)
	}
	reordered, _, err := SolveDoacrossReordered(l, rhs, doconsider.Level, opts(4))
	if err != nil {
		t.Fatal(err)
	}
	if d := sparse.VecMaxDiff(renumbered, reordered); d > 1e-10 {
		t.Fatalf("renumbered and schedule-reordered solves differ by %v", d)
	}
}

func TestILUFactorSolveOnPaperProblem(t *testing.T) {
	// End-to-end: build the 5-PT operator, factor it, and solve L*y = rhs
	// with every parallel executor, verifying against the residual.
	l, _, err := stencil.LowerFactor(stencil.FivePoint, 1)
	if err != nil {
		t.Fatal(err)
	}
	rhs := stencil.RHS(l.N, 13)
	want := SolveSequential(l, rhs)
	back := l.MulVec(want, nil)
	if sparse.VecMaxDiff(back, rhs) > 1e-9 {
		t.Fatal("sequential solve residual too large")
	}
	got, _, err := SolveDoacross(l, rhs, opts(8))
	if err != nil {
		t.Fatal(err)
	}
	if d := sparse.VecMaxDiff(got, want); d > 1e-10 {
		t.Fatalf("doacross solve on 5-PT factor differs by %v", d)
	}
}

func TestSolverReuseAcrossRightHandSides(t *testing.T) {
	// One reusable Solver must reproduce the sequential substitution for a
	// stream of right-hand sides — the access pattern of a Krylov
	// preconditioner, and the reuse the persistent worker pool targets.
	rng := rand.New(rand.NewSource(61))
	l := randomLower(rng, 300, 3, false)
	s, err := NewSolver(l, opts(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	y := make([]float64, l.N)
	for round := 0; round < 10; round++ {
		rhs := stencil.RHS(l.N, int64(round+1))
		want := SolveSequential(l, rhs)
		got, _, err := s.Solve(rhs, y)
		if err != nil {
			t.Fatal(err)
		}
		if d := sparse.VecMaxDiff(got, want); d > 1e-12 {
			t.Fatalf("round %d: solver differs from sequential by %v", round, d)
		}
	}
}

func TestReorderedSolverMatchesSequential(t *testing.T) {
	l, u, err := stencil.LowerFactor(stencil.FivePoint, 1)
	if err != nil {
		t.Fatal(err)
	}
	rhs := stencil.RHS(l.N, 5)
	for _, tri := range []*sparse.Triangular{l, u} {
		s, err := NewReorderedSolver(tri, doconsider.Level, opts(4))
		if err != nil {
			t.Fatal(err)
		}
		want := tri.Solve(rhs, nil)
		got, _, err := s.Solve(rhs, nil)
		s.Close()
		if err != nil {
			t.Fatal(err)
		}
		if d := sparse.VecMaxDiff(got, want); d > 1e-12 {
			t.Fatalf("lower=%v: reordered solver differs from sequential by %v", tri.Lower, d)
		}
	}
}

func TestSolverRejectsShortRHS(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	l := randomLower(rng, 20, 2, false)
	s, err := NewSolver(l, opts(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, _, err := s.Solve(make([]float64, 5), nil); err == nil {
		t.Error("short rhs accepted")
	}
}

func TestUseDoacrossILUMatchesSequentialApply(t *testing.T) {
	a, err := stencil.FivePointGrid(12, 12)
	if err != nil {
		t.Fatal(err)
	}
	seqPre, err := sparse.NewILUPreconditioner(a)
	if err != nil {
		t.Fatal(err)
	}
	parPre, err := sparse.NewILUPreconditioner(a)
	if err != nil {
		t.Fatal(err)
	}
	release, err := UseDoacrossILU(parPre, opts(4))
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	for round := 0; round < 5; round++ {
		r := stencil.RHS(a.Rows, int64(100+round))
		want := seqPre.Apply(r, nil)
		got := parPre.Apply(r, nil)
		if d := sparse.VecMaxDiff(got, want); d > 1e-12 {
			t.Fatalf("round %d: doacross preconditioner differs by %v", round, d)
		}
	}
}
