package trisolve_test

import (
	"fmt"

	"doacross/internal/core"
	"doacross/internal/doconsider"
	"doacross/internal/flags"
	"doacross/internal/sparse"
	"doacross/internal/trisolve"
)

// ExampleSolveDoacross solves a small lower triangular system with the
// preprocessed doacross and verifies it against the sequential substitution —
// the comparison at the heart of the paper's Table 1.
func ExampleSolveDoacross() {
	// L = [1 0 0; 2 1 0; 0 3 1] with unit diagonal off-diagonal entries
	// stored explicitly.
	a := sparse.FromDense([][]float64{
		{1, 0, 0},
		{2, 1, 0},
		{0, 3, 1},
	})
	l := sparse.LowerTriangle(a)
	rhs := []float64{1, 4, 10}

	seq := trisolve.SolveSequential(l, rhs)
	par, _, err := trisolve.SolveDoacross(l, rhs, core.Options{Workers: 2, WaitStrategy: flags.WaitSpinYield})
	if err != nil {
		panic(err)
	}
	fmt.Println("sequential:", seq)
	fmt.Println("doacross:  ", par)
	// Output:
	// sequential: [1 2 4]
	// doacross:   [1 2 4]
}

// ExampleSolveDoacrossReordered applies the doconsider (level) reordering
// before the doacross — the paper's "Iterations Rearranged" column.
func ExampleSolveDoacrossReordered() {
	a := sparse.FromDense([][]float64{
		{1, 0, 0, 0},
		{0, 1, 0, 0},
		{1, 0, 1, 0},
		{0, 1, 0, 1},
	})
	l := sparse.LowerTriangle(a)
	rhs := []float64{1, 2, 4, 6}
	y, rep, err := trisolve.SolveDoacrossReordered(l, rhs, doconsider.Level, core.Options{Workers: 2, WaitStrategy: flags.WaitSpinYield})
	if err != nil {
		panic(err)
	}
	fmt.Println("y:", y)
	fmt.Println("order:", rep.Order)
	// Output:
	// y: [1 2 3 4]
	// order: reordered
}
