package machine

import (
	"math"
	"testing"

	"doacross/internal/sched"
)

// TestSimulateMultiRHSAmortizesFixedOverheads is the headline property of
// the blocked traversal: per-solve cost (TPar/nrhs) strictly decreases with
// the block width, because the barriers, checks and per-iteration
// bookkeeping are paid once per traversal while only the useful work scales.
func TestSimulateMultiRHSAmortizesFixedOverheads(t *testing.T) {
	cm, wc := uniformWavefrontCost()
	cfg := Config{Processors: 8, Policy: sched.Cyclic}
	g := layeredGraph(16, 32)
	for _, model := range []ExecModel{ModelDoacross, ModelWavefront, ModelWavefrontDynamic} {
		prev := math.Inf(1)
		for _, nrhs := range []int{1, 4, 16, 64} {
			res, err := SimulateMultiRHS(g, nrhs, model, cfg, cm, wc)
			if err != nil {
				t.Fatalf("%v nrhs=%d: %v", model, nrhs, err)
			}
			perSolve := res.TPar / float64(nrhs)
			if perSolve >= prev {
				t.Errorf("%v: per-solve cost did not amortize at nrhs=%d: %v >= %v", model, nrhs, perSolve, prev)
			}
			prev = perSolve
		}
	}
}

// TestSimulateMultiRHSScalesOnlyWork checks the cost split directly: at any
// block width the wavefront's barrier bill is that of a single traversal,
// while TSeq counts nrhs sequential column solves.
func TestSimulateMultiRHSScalesOnlyWork(t *testing.T) {
	cm, wc := uniformWavefrontCost()
	cfg := Config{Processors: 8, Policy: sched.Cyclic}
	g := layeredGraph(16, 32)
	one, err := SimulateMultiRHS(g, 1, ModelWavefront, cfg, cm, wc)
	if err != nil {
		t.Fatal(err)
	}
	many, err := SimulateMultiRHS(g, 32, ModelWavefront, cfg, cm, wc)
	if err != nil {
		t.Fatal(err)
	}
	if many.BarrierTime != one.BarrierTime {
		t.Errorf("barrier bill scaled with the block: %v vs %v", many.BarrierTime, one.BarrierTime)
	}
	if want := 32 * one.TSeq; math.Abs(many.TSeq-want) > 1e-9*want {
		t.Errorf("TSeq = %v, want %v (32 column solves)", many.TSeq, want)
	}
	if many.PostTime != 32*one.PostTime {
		t.Errorf("scatter did not scale with the block: %v vs %v", many.PostTime, one.PostTime)
	}
	if many.PreTime != one.PreTime {
		t.Errorf("inspector scaled with the block: %v vs %v", many.PreTime, one.PreTime)
	}
	// nrhs=1 must be exactly the single-RHS model.
	base, err := SimulateSchedule(g, ModelWavefront, cfg, cm, wc)
	if err != nil {
		t.Fatal(err)
	}
	if one.TPar != base.TPar {
		t.Errorf("nrhs=1 differs from the single-RHS model: %v vs %v", one.TPar, base.TPar)
	}
	if _, err := SimulateMultiRHS(g, 0, ModelWavefront, cfg, cm, wc); err == nil {
		t.Error("nrhs=0 accepted")
	}
}
