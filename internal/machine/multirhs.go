package machine

import (
	"fmt"

	"doacross/internal/depgraph"
)

// MultiRHSCost scales the cost model for a column-blocked traversal carrying
// nrhs independent right-hand sides — the machine-model counterpart of the
// runtime's blocked multi-RHS data path. The scaling captures exactly the
// asymmetry that data path exploits:
//
//   - useful work scales with the block width: every iteration applies its
//     body once per column, so BaseWork and TermWork are multiplied by nrhs,
//     and so is the postprocessing doall (the scatter copies one row of nrhs
//     values per element);
//   - synchronization does not: dependencies are classified per element row,
//     not per column, so the per-read checks, per-iteration bookkeeping,
//     level barriers and chunk claims stay at their single-RHS values, and
//     the inspector (whose cost is the access pattern's, not the data's) is
//     unchanged.
func MultiRHSCost(cm CostModel, nrhs int) CostModel {
	if nrhs < 1 {
		nrhs = 1
	}
	f := float64(nrhs)
	scaled := cm
	if cm.BaseWork != nil {
		base := cm.BaseWork
		scaled.BaseWork = func(i int) float64 { return f * base(i) }
	}
	scaled.TermWork = f * cm.TermWork
	scaled.PostPerIter = f * cm.PostPerIter
	return scaled
}

// SimulateMultiRHS simulates one column-blocked traversal carrying nrhs
// right-hand sides through the selected execution model, by replaying the
// graph under MultiRHSCost(cm, nrhs). TSeq then counts nrhs sequential
// column solves, so Result.Speedup compares the blocked traversal against
// solving the block one column at a time, and TPar/nrhs is the modelled
// per-solve cost the serving experiment measures as throughput. As nrhs
// grows the fixed synchronization terms amortize across the block, which is
// why the executor pick can flip between the scalar and the blocked run
// (the live counterpart is core.AutoCosts.PredictN).
func SimulateMultiRHS(g *depgraph.Graph, nrhs int, model ExecModel, cfg Config, cm CostModel, wc WavefrontCosts) (Result, error) {
	if nrhs < 1 {
		return Result{}, fmt.Errorf("machine: need at least one right-hand side, got %d", nrhs)
	}
	return SimulateSchedule(g, model, cfg, MultiRHSCost(cm, nrhs), wc)
}
