package machine_test

import (
	"fmt"

	"doacross/internal/depgraph"
	"doacross/internal/machine"
	"doacross/internal/sched"
)

// ExampleSimulate runs a 16-processor simulation of a doacross over a pure
// chain of dependencies (no parallelism available) and over an independent
// loop (perfect parallelism), showing the efficiency definition the paper
// uses: T_seq / (p * T_par).
func ExampleSimulate() {
	chain := depgraph.Build(depgraph.Access{
		N:      64,
		Writes: func(i int) []int { return []int{i} },
		Reads: func(i int) []int {
			if i == 0 {
				return nil
			}
			return []int{i - 1}
		},
	})
	independent := depgraph.Build(depgraph.Access{
		N:      64,
		Writes: func(i int) []int { return []int{i} },
		Reads:  func(i int) []int { return nil },
	})
	cm := machine.UniformCost(1, 0, 0, 0, 0, 0, 0) // unit work, no overheads
	cfg := machine.Config{Processors: 16, Policy: sched.Cyclic}

	chainRes, _ := machine.Simulate(chain, cfg, cm)
	indepRes, _ := machine.Simulate(independent, cfg, cm)
	fmt.Printf("chain:       efficiency %.3f (speedup %.1f)\n", chainRes.Efficiency, chainRes.Speedup)
	fmt.Printf("independent: efficiency %.3f (speedup %.1f)\n", indepRes.Efficiency, indepRes.Speedup)
	// Output:
	// chain:       efficiency 0.062 (speedup 1.0)
	// independent: efficiency 1.000 (speedup 16.0)
}
