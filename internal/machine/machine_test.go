package machine

import (
	"math"
	"testing"

	"doacross/internal/depgraph"
	"doacross/internal/doconsider"
	"doacross/internal/sched"
)

func chainGraph(n int) *depgraph.Graph {
	write := make([]int, n)
	for i := range write {
		write[i] = i
	}
	return depgraph.BuildFromWriterIndex(n, write, func(i int) []int {
		if i == 0 {
			return nil
		}
		return []int{i - 1}
	})
}

func independentGraph(n int) *depgraph.Graph {
	write := make([]int, n)
	for i := range write {
		write[i] = i
	}
	return depgraph.BuildFromWriterIndex(n, write, func(i int) []int { return nil })
}

func gridGraph(nx, ny int) *depgraph.Graph {
	n := nx * ny
	write := make([]int, n)
	for i := range write {
		write[i] = i
	}
	return depgraph.BuildFromWriterIndex(n, write, func(it int) []int {
		i, j := it/ny, it%ny
		var r []int
		if i > 0 {
			r = append(r, (i-1)*ny+j)
		}
		if j > 0 {
			r = append(r, i*ny+j-1)
		}
		return r
	})
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSimulateIndependentLoopPerfectScaling(t *testing.T) {
	// No dependencies, no overheads: efficiency must be 1 when P divides N.
	g := independentGraph(160)
	cm := UniformCost(1, 0, 0, 0, 0, 0, 0)
	res, err := Simulate(g, Config{Processors: 16}, cm)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Efficiency, 1.0, 1e-12) {
		t.Fatalf("efficiency = %v, want 1", res.Efficiency)
	}
	if !approx(res.TSeq, 160, 1e-12) || !approx(res.TPar, 10, 1e-12) {
		t.Fatalf("Tseq=%v Tpar=%v", res.TSeq, res.TPar)
	}
	if res.WaitTime != 0 {
		t.Error("independent loop should have no wait time")
	}
}

func TestSimulateOverheadFloor(t *testing.T) {
	// With no dependencies but per-read checks and per-iteration overheads,
	// the efficiency equals work / (work + overhead) — the paper's odd-L
	// overhead floor.
	g := independentGraph(1600)
	work, check, ovh := 1.2, 0.7, 1.0
	pre, post := 0.3, 0.4
	cm := UniformCost(work, 0, 1, check, ovh, pre, post)
	res, err := Simulate(g, Config{Processors: 16}, cm)
	if err != nil {
		t.Fatal(err)
	}
	perIter := work + check + ovh + pre + post
	want := work / perIter
	if !approx(res.Efficiency, want, 1e-9) {
		t.Fatalf("efficiency = %v, want %v", res.Efficiency, want)
	}
	if res.PreTime != 100*pre || res.PostTime != 100*post {
		t.Fatalf("pre=%v post=%v", res.PreTime, res.PostTime)
	}
}

func TestSimulateChainIsSequential(t *testing.T) {
	// A pure dependency chain cannot speed up: the parallel time is at least
	// the critical path and efficiency is ~1/P.
	g := chainGraph(64)
	cm := UniformCost(1, 0, 1, 0, 0, 0, 0)
	res, err := Simulate(g, Config{Processors: 8}, cm)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.ExecTime, 64, 1e-9) {
		t.Fatalf("chain exec time = %v, want 64", res.ExecTime)
	}
	if !approx(res.Efficiency, 1.0/8, 1e-9) {
		t.Fatalf("chain efficiency = %v, want 1/8", res.Efficiency)
	}
	if res.WaitTime <= 0 {
		t.Error("chain execution should accumulate wait time")
	}
}

func TestSimulateExecNotBelowCriticalPath(t *testing.T) {
	g := gridGraph(20, 20)
	cm := UniformCost(1, 0, 2, 0.3, 0.2, 0.1, 0.1)
	for _, p := range []int{1, 2, 4, 16, 64} {
		res, err := Simulate(g, Config{Processors: p, Policy: sched.Cyclic}, cm)
		if err != nil {
			t.Fatal(err)
		}
		if res.ExecTime+1e-9 < res.CriticalPath {
			t.Fatalf("P=%d: exec time %v below critical path %v", p, res.ExecTime, res.CriticalPath)
		}
		if res.ExecTime+1e-9 < res.TSeq/float64(p) {
			t.Fatalf("P=%d: exec time %v below work bound %v", p, res.ExecTime, res.TSeq/float64(p))
		}
	}
}

func TestSimulateSingleProcessorMatchesSequentialPlusOverhead(t *testing.T) {
	g := gridGraph(10, 10)
	cm := UniformCost(2, 0, 2, 0.5, 0.3, 0.2, 0.2)
	res, err := Simulate(g, Config{Processors: 1}, cm)
	if err != nil {
		t.Fatal(err)
	}
	n := 100.0
	wantExec := n * (2 + 2*0.5 + 0.3)
	if !approx(res.ExecTime, wantExec, 1e-9) {
		t.Fatalf("P=1 exec = %v, want %v", res.ExecTime, wantExec)
	}
	if res.WaitTime != 0 {
		t.Error("single processor should never wait")
	}
	if !approx(res.TPar, wantExec+n*0.2+n*0.2, 1e-9) {
		t.Fatalf("P=1 Tpar = %v", res.TPar)
	}
}

func TestSimulateMoreProcessorsNeverSlower(t *testing.T) {
	g := gridGraph(30, 30)
	cm := UniformCost(1, 0, 2, 0.4, 0.3, 0.2, 0.3)
	prev := math.Inf(1)
	for _, p := range []int{1, 2, 4, 8, 16} {
		res, err := Simulate(g, Config{Processors: p, Policy: sched.Cyclic}, cm)
		if err != nil {
			t.Fatal(err)
		}
		if res.TPar > prev+1e-9 {
			t.Fatalf("P=%d slower than previous processor count: %v > %v", p, res.TPar, prev)
		}
		prev = res.TPar
	}
}

func TestSimulateReorderingImprovesGridSolve(t *testing.T) {
	// On the grid DAG (the triangular-solve structure), the level
	// (doconsider) ordering must not be slower than natural order, and with
	// a cyclic distribution it should be measurably faster.
	g := gridGraph(40, 40)
	cm := UniformCost(1, 0, 2, 0.3, 0.2, 0.1, 0.1)
	natural, err := Simulate(g, Config{Processors: 16, Policy: sched.Block}, cm)
	if err != nil {
		t.Fatal(err)
	}
	order := doconsider.Order(g, doconsider.Level)
	reordered, err := Simulate(g, Config{Processors: 16, Policy: sched.Cyclic, Order: order}, cm)
	if err != nil {
		t.Fatal(err)
	}
	if reordered.Efficiency <= natural.Efficiency {
		t.Fatalf("reordering did not help: natural %.3f reordered %.3f",
			natural.Efficiency, reordered.Efficiency)
	}
}

func TestSimulateSkipFlags(t *testing.T) {
	g := independentGraph(32)
	cm := UniformCost(1, 0, 1, 0.5, 0.2, 0.3, 0.4)
	full, _ := Simulate(g, Config{Processors: 4}, cm)
	noPre, _ := Simulate(g, Config{Processors: 4, SkipInspector: true}, cm)
	noPost, _ := Simulate(g, Config{Processors: 4, SkipPostprocess: true}, cm)
	noChecks, _ := Simulate(g, Config{Processors: 4, SkipChecks: true}, cm)
	if noPre.TPar >= full.TPar || noPost.TPar >= full.TPar || noChecks.TPar >= full.TPar {
		t.Fatalf("skip flags did not reduce time: full=%v noPre=%v noPost=%v noChecks=%v",
			full.TPar, noPre.TPar, noPost.TPar, noChecks.TPar)
	}
	if noPre.PreTime != 0 || noPost.PostTime != 0 {
		t.Error("skipped phases should cost nothing")
	}
}

func TestSimulateErrors(t *testing.T) {
	g := chainGraph(4)
	cm := UniformCost(1, 0, 0, 0, 0, 0, 0)
	if _, err := Simulate(g, Config{Processors: 0}, cm); err == nil {
		t.Error("zero processors accepted")
	}
	if _, err := Simulate(g, Config{Processors: 2}, CostModel{}); err == nil {
		t.Error("missing IterWork accepted")
	}
	if _, err := Simulate(g, Config{Processors: 2, Order: []int{0, 1}}, cm); err == nil {
		t.Error("short order accepted")
	}
	if _, err := Simulate(g, Config{Processors: 2, Order: []int{3, 2, 1, 0}}, cm); err == nil {
		t.Error("non-topological order accepted")
	}
}

func TestSimulateEmptyGraph(t *testing.T) {
	g := independentGraph(0)
	cm := UniformCost(1, 0, 0, 0, 0, 1, 1)
	res, err := Simulate(g, Config{Processors: 4}, cm)
	if err != nil {
		t.Fatal(err)
	}
	if res.TSeq != 0 || res.Efficiency != 0 {
		t.Fatalf("empty graph result: %+v", res)
	}
}

func TestSimulateSequentialHelper(t *testing.T) {
	cm := UniformCost(2.5, 0, 0, 0, 0, 0, 0)
	if got := SimulateSequential(10, cm); !approx(got, 25, 1e-12) {
		t.Fatalf("SimulateSequential = %v, want 25", got)
	}
}

func TestResultString(t *testing.T) {
	g := independentGraph(8)
	cm := UniformCost(1, 0, 0, 0, 0, 0, 0)
	res, _ := Simulate(g, Config{Processors: 2}, cm)
	if res.String() == "" {
		t.Error("empty result string")
	}
	if len(res.ProcBusy) != 2 {
		t.Error("per-processor busy fractions missing")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	g := gridGraph(25, 17)
	cm := UniformCost(1.5, 0, 2, 0.3, 0.2, 0.1, 0.1)
	a, _ := Simulate(g, Config{Processors: 16, Policy: sched.Cyclic}, cm)
	b, _ := Simulate(g, Config{Processors: 16, Policy: sched.Cyclic}, cm)
	if a.TPar != b.TPar || a.WaitTime != b.WaitTime {
		t.Error("simulation is not deterministic")
	}
}

// gridAccess is the access pattern behind gridGraph, needed for the
// fine-grained wait model.
func gridAccess(nx, ny int) depgraph.Access {
	n := nx * ny
	return depgraph.Access{
		N:      n,
		Writes: func(i int) []int { return []int{i} },
		Reads: func(it int) []int {
			i, j := it/ny, it%ny
			var r []int
			if i > 0 {
				r = append(r, (i-1)*ny+j)
			}
			if j > 0 {
				r = append(r, it-1)
			}
			return r
		},
	}
}

func TestReadPredsFromAccess(t *testing.T) {
	a := gridAccess(3, 4)
	rp := ReadPredsFromAccess(a)
	// Iteration 0 has no reads.
	if got := rp(0); len(got) != 0 {
		t.Fatalf("rp(0) = %v, want empty", got)
	}
	// Iteration (1,2) = 6 reads (0,2)=2 and (1,1)=5, both true deps.
	got := rp(6)
	if len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Fatalf("rp(6) = %v, want [2 5]", got)
	}
	// An access reading an element written later must yield -1.
	anti := depgraph.Access{
		N:      2,
		Writes: func(i int) []int { return []int{i} },
		Reads: func(i int) []int {
			if i == 0 {
				return []int{1}
			}
			return nil
		},
	}
	if got := ReadPredsFromAccess(anti)(0); len(got) != 1 || got[0] != -1 {
		t.Fatalf("anti-dependence read pred = %v, want [-1]", got)
	}
}

func TestSimulateFineModelAllowsPartialOverlap(t *testing.T) {
	// In a chain where each iteration reads its predecessor as the LAST of
	// several terms, the fine wait model lets an iteration overlap its other
	// terms with the predecessor's execution, so the parallel time must be
	// strictly smaller than under the coarse model.
	n := 200
	acc := depgraph.Access{
		N:      n,
		Writes: func(i int) []int { return []int{i} },
		Reads: func(i int) []int {
			// Four reads of untouched elements, then the chain read.
			r := []int{n + 1, n + 2, n + 3, n + 4}
			if i > 0 {
				r = append(r, i-1)
			}
			return r
		},
	}
	g := depgraph.Build(acc)
	cm := CostModel{
		BaseWork:     func(int) float64 { return 0.5 },
		TermWork:     1.0,
		ReadsPerIter: func(i int) int { return len(acc.Reads(i)) },
		CheckPerRead: 0.2,
		IterOverhead: 0.3,
	}
	coarse, err := Simulate(g, Config{Processors: 16, Policy: sched.Cyclic}, cm)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Simulate(g, Config{Processors: 16, Policy: sched.Cyclic, ReadPreds: ReadPredsFromAccess(acc)}, cm)
	if err != nil {
		t.Fatal(err)
	}
	if fine.ExecTime >= coarse.ExecTime {
		t.Fatalf("fine model (%v) should beat coarse model (%v) on last-term chains", fine.ExecTime, coarse.ExecTime)
	}
	if fine.TSeq != coarse.TSeq {
		t.Fatal("wait model must not change T_seq")
	}
	// The chain still serializes on its final term, so the fine exec time is
	// at least N * (check + term).
	if fine.ExecTime < float64(n)*(0.2+1.0)-1e-9 {
		t.Fatalf("fine exec %v below the last-term chain bound", fine.ExecTime)
	}
}

func TestSimulateFineModelSingleProcessorMatchesCoarse(t *testing.T) {
	// With one processor there is never any waiting, so both wait models
	// must give identical times.
	acc := gridAccess(8, 9)
	g := depgraph.Build(acc)
	cm := CostModel{
		BaseWork:     func(int) float64 { return 1 },
		TermWork:     0.5,
		ReadsPerIter: func(i int) int { return len(acc.Reads(i)) },
		CheckPerRead: 0.2,
		IterOverhead: 0.1,
		PrePerIter:   0.1,
		PostPerIter:  0.1,
	}
	coarse, err := Simulate(g, Config{Processors: 1}, cm)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Simulate(g, Config{Processors: 1, ReadPreds: ReadPredsFromAccess(acc)}, cm)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(coarse.TPar, fine.TPar, 1e-9) {
		t.Fatalf("P=1: coarse %v != fine %v", coarse.TPar, fine.TPar)
	}
}

func TestSimulateSkipOverheads(t *testing.T) {
	g := independentGraph(64)
	cm := UniformCost(1, 0, 2, 0.5, 0.5, 0.5, 0.5)
	ideal, err := Simulate(g, Config{Processors: 16, SkipOverheads: true}, cm)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(ideal.Efficiency, 1.0, 1e-9) {
		t.Fatalf("ideal doall efficiency = %v, want 1", ideal.Efficiency)
	}
	if ideal.PreTime != 0 || ideal.PostTime != 0 || ideal.OverheadTime != 0 {
		t.Fatalf("SkipOverheads left overheads: %+v", ideal)
	}
}

func TestCostModelIterWork(t *testing.T) {
	cm := CostModel{BaseWork: func(i int) float64 { return float64(i) }, TermWork: 2, ReadsPerIter: func(int) int { return 3 }}
	if got := cm.IterWork(4); !approx(got, 10, 1e-12) {
		t.Fatalf("IterWork = %v, want 10", got)
	}
	empty := CostModel{TermWork: 1}
	if got := empty.IterWork(0); got != 0 {
		t.Fatalf("IterWork with no reads = %v, want 0", got)
	}
}
