package machine

import (
	"math"
	"math/rand"
	"testing"

	"doacross/internal/depgraph"
	"doacross/internal/sched"
)

// naiveDynamicReference recomputes the dynamic wavefront's executor phase the
// slow, obvious way — per level, hand chunks of the member list to the
// earliest-free processor (lowest index on ties), charging the claim before
// the chunk and one failed claim per processor at the end — and returns the
// elapsed executor time, the total claim count and the barrier total. It is
// deliberately independent code: the accounting test compares
// SimulateDynamicWavefront against it on random level shapes.
func naiveDynamicReference(g *depgraph.Graph, procs int, cm CostModel, wc WavefrontCosts) (exec float64, claims int, barrierTime float64) {
	_, byLevel := g.Levels()
	maxWidth := 0
	for _, lvl := range byLevel {
		if len(lvl) > maxWidth {
			maxWidth = len(lvl)
		}
	}
	p := procs
	if p > maxWidth {
		p = maxWidth
	}
	if p < 1 {
		p = 1
	}
	chunk := wc.Chunk
	if chunk < 1 {
		chunk = sched.DefaultChunk
	}
	for _, lvl := range byLevel {
		// Per-level chunk clamp, mirroring sched.LevelChunk independently.
		levelChunk := chunk
		if lim := len(lvl) / (2 * p); levelChunk > lim {
			levelChunk = lim
		}
		if levelChunk < 1 {
			levelChunk = 1
		}
		clocks := make([]float64, p)
		for idx := 0; idx < len(lvl); idx += levelChunk {
			w := 0
			for v := 1; v < p; v++ {
				if clocks[v] < clocks[w] {
					w = v
				}
			}
			clocks[w] += wc.Claim
			claims++
			end := idx + levelChunk
			if end > len(lvl) {
				end = len(lvl)
			}
			for _, it := range lvl[idx:end] {
				clocks[w] += cm.IterWork(it) + wc.IterOverhead
			}
		}
		levelMax := 0.0
		for w := range clocks {
			clocks[w] += wc.Claim
			claims++
			if clocks[w] > levelMax {
				levelMax = clocks[w]
			}
		}
		exec += levelMax + wc.Barrier
	}
	return exec, claims, wc.Barrier * float64(len(byLevel))
}

// randomLayeredGraph builds a graph whose wavefront decomposition has the
// given random level widths: each iteration of level l depends on one random
// member of level l-1.
func randomLayeredGraph(rng *rand.Rand, widths []int) *depgraph.Graph {
	var starts []int
	n := 0
	for _, w := range widths {
		starts = append(starts, n)
		n += w
	}
	reads := make([][]int, n)
	for l := 1; l < len(widths); l++ {
		for i := starts[l]; i < starts[l]+widths[l]; i++ {
			reads[i] = []int{starts[l-1] + rng.Intn(widths[l-1])}
		}
	}
	return depgraph.Build(depgraph.Access{
		N:      n,
		Writes: func(i int) []int { return []int{i} },
		Reads:  func(i int) []int { return reads[i] },
	})
}

// TestSimulateDynamicWavefrontAccounting checks the dynamic model against
// the naive greedy reference on random level shapes and random per-iteration
// costs: the executor time, barrier total, claim-overhead accounting and the
// model's structural invariants (no waits, level count, TPar composition)
// must all agree exactly.
func TestSimulateDynamicWavefrontAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		depth := 1 + rng.Intn(8)
		widths := make([]int, depth)
		for l := range widths {
			widths[l] = 1 + rng.Intn(40)
		}
		g := randomLayeredGraph(rng, widths)
		work := make([]float64, g.N)
		for i := range work {
			work[i] = 0.5 + 4*rng.Float64()
			if rng.Intn(5) == 0 {
				work[i] *= 20 // heavy tail
			}
		}
		cm := CostModel{
			BaseWork:    func(i int) float64 { return work[i] },
			PrePerIter:  0.25,
			PostPerIter: 0.25,
		}
		wc := WavefrontCosts{
			Barrier:      1 + 3*rng.Float64(),
			IterOverhead: rng.Float64(),
			Claim:        rng.Float64(),
			Chunk:        1 + rng.Intn(8),
		}
		procs := 1 + rng.Intn(20)
		cfg := Config{Processors: procs}

		res, err := SimulateDynamicWavefront(g, cfg, cm, wc)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		wantExec, wantClaims, wantBarrier := naiveDynamicReference(g, procs, cm, wc)
		if math.Abs(res.ExecTime-wantExec) > 1e-9 {
			t.Fatalf("trial %d: exec time %.6f, reference %.6f", trial, res.ExecTime, wantExec)
		}
		if math.Abs(res.BarrierTime-wantBarrier) > 1e-9 {
			t.Fatalf("trial %d: barrier time %.6f, reference %.6f", trial, res.BarrierTime, wantBarrier)
		}
		wantOverhead := float64(g.N)*wc.IterOverhead + wantBarrier + wc.Claim*float64(wantClaims)
		if math.Abs(res.OverheadTime-wantOverhead) > 1e-9 {
			t.Fatalf("trial %d: overhead %.6f, reference %.6f", trial, res.OverheadTime, wantOverhead)
		}
		if res.WaitTime != 0 {
			t.Fatalf("trial %d: dynamic model charged wait time %.3f", trial, res.WaitTime)
		}
		if res.Levels != depth {
			t.Fatalf("trial %d: %d levels simulated, want %d", trial, res.Levels, depth)
		}
		perProc := math.Ceil(float64(g.N) / float64(procs))
		wantTPar := perProc*cm.PrePerIter + wantExec + perProc*cm.PostPerIter
		if math.Abs(res.TPar-wantTPar) > 1e-9 {
			t.Fatalf("trial %d: TPar %.6f, want %.6f", trial, res.TPar, wantTPar)
		}
	}
}

// skewedCost returns a cost model where the first member of each level is a
// hot iteration of the given weight and every other iteration costs one unit
// (the heavy-tailed regime the dynamic executor exists for).
func skewedCost(width int, hot float64) CostModel {
	return CostModel{BaseWork: func(i int) float64 {
		if i%width == 0 {
			return hot
		}
		return 1
	}}
}

// TestDynamicWavefrontCrossover pins the static/dynamic trade exactly where
// the structure says it should flip: on skewed levels the dynamic model wins
// while the claim cost stays below the imbalance it reclaims and loses once
// claims outweigh it (with a single monotone crossover in between), and on
// uniform levels the claim traffic is pure loss — the static schedule wins
// at every positive claim cost.
func TestDynamicWavefrontCrossover(t *testing.T) {
	const width, depth, procs = 64, 8, 8
	g := layeredGraph(width, depth)
	cfg := Config{Processors: procs}
	base := WavefrontCosts{Barrier: 2.0, IterOverhead: 0.5, Chunk: 1}

	// Skewed levels: one member costs 100 units, the rest one unit each. The
	// static schedule (block) gives the hot member's worker width/procs-1
	// cheap members on top, so dynamic reclaims ~7 units per level.
	skew := skewedCost(width, 100)
	tStatic := func(cm CostModel) float64 {
		res, err := SimulateWavefront(g, cfg, cm, base)
		if err != nil {
			t.Fatal(err)
		}
		return res.TPar
	}
	tDynamic := func(cm CostModel, claim float64) float64 {
		wc := base
		wc.Claim = claim
		res, err := SimulateDynamicWavefront(g, cfg, cm, wc)
		if err != nil {
			t.Fatal(err)
		}
		return res.TPar
	}

	staticSkew := tStatic(skew)
	if free := tDynamic(skew, 0); free >= staticSkew {
		t.Fatalf("free claims on skewed levels: dynamic %.1f not below static %.1f", free, staticSkew)
	}
	if costly := tDynamic(skew, 1000); costly <= staticSkew {
		t.Fatalf("ruinous claims on skewed levels: dynamic %.1f not above static %.1f", costly, staticSkew)
	}
	// The dynamic time grows monotonically in the claim cost, so the win
	// flips exactly once; locate the crossover and verify both sides.
	lo, hi := 0.0, 1000.0
	for range 60 {
		mid := (lo + hi) / 2
		if tDynamic(skew, mid) < staticSkew {
			lo = mid
		} else {
			hi = mid
		}
	}
	crossover := (lo + hi) / 2
	if crossover <= 0 || crossover >= 1000 {
		t.Fatalf("no interior crossover found (%.3f)", crossover)
	}
	if win := tDynamic(skew, crossover/2); win >= staticSkew {
		t.Errorf("below crossover %.3f: dynamic %.1f does not beat static %.1f", crossover, win, staticSkew)
	}
	if lose := tDynamic(skew, crossover*2); lose <= staticSkew {
		t.Errorf("above crossover %.3f: dynamic %.1f does not lose to static %.1f", crossover, lose, staticSkew)
	}

	// Uniform levels: nothing to reclaim, so any positive claim cost makes
	// the dynamic strictly slower.
	uniform := UniformCost(1.0, 0, 0, 0, 0, 0, 0)
	staticUniform := tStatic(uniform)
	for _, claim := range []float64{0.01, 0.5, 5} {
		if dyn := tDynamic(uniform, claim); dyn <= staticUniform {
			t.Errorf("uniform levels, claim %.2f: dynamic %.1f not above static %.1f", claim, dyn, staticUniform)
		}
	}
	if dyn := tDynamic(uniform, 0); math.Abs(dyn-staticUniform) > 1e-9 {
		t.Errorf("uniform levels, free claims: dynamic %.3f differs from static %.3f", dyn, staticUniform)
	}
}

// TestSimulateDynamicWavefrontValidation pins the error paths and the
// SimulateSchedule dispatch for the third model.
func TestSimulateDynamicWavefrontValidation(t *testing.T) {
	g := layeredGraph(4, 4)
	cm, wc := uniformWavefrontCost()
	if _, err := SimulateDynamicWavefront(g, Config{Processors: 0}, cm, wc); err == nil {
		t.Error("zero processors accepted")
	}
	if _, err := SimulateDynamicWavefront(g, Config{Processors: 4, Order: make([]int, 16)}, cm, wc); err == nil {
		t.Error("explicit order accepted")
	}
	if _, err := SimulateDynamicWavefront(g, Config{Processors: 4}, CostModel{}, wc); err == nil {
		t.Error("empty cost model accepted")
	}
	res, err := SimulateSchedule(g, ModelWavefrontDynamic, Config{Processors: 4}, cm, wc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Levels != 4 {
		t.Errorf("dispatched dynamic model simulated %d levels, want 4", res.Levels)
	}
	if ModelWavefrontDynamic.String() != "wavefront-dynamic" {
		t.Errorf("model name %q", ModelWavefrontDynamic.String())
	}
}
