package machine

import (
	"fmt"
	"math"

	"doacross/internal/depgraph"
	"doacross/internal/sched"
)

// ExecModel selects which execution model SimulateSchedule replays: the
// paper's flag-based busy-wait doacross, or the pre-scheduled wavefront
// execution its inspector enables (barrier-separated doall per level).
type ExecModel int

const (
	// ModelDoacross is the busy-wait doacross of Simulate: iterations start
	// in schedule order, every true-dependency read checks a flag and may
	// busy-wait, and the preprocessing and postprocessing doalls bracket the
	// executor phase.
	ModelDoacross ExecModel = iota
	// ModelWavefront is the pre-scheduled level execution of
	// SimulateWavefront: the dependency graph is decomposed into wavefront
	// levels, each level runs as a statically scheduled doall, and a barrier
	// separates consecutive levels. No flags are checked and no iteration
	// ever waits on a predecessor; imbalance within a level shows up as idle
	// time at the level barrier instead.
	ModelWavefront
	// ModelWavefrontDynamic is the dynamic within-level execution of
	// SimulateDynamicWavefront: the same level decomposition, but inside
	// each level the processors self-schedule chunks of the member list
	// (greedy list scheduling — each chunk goes to the earliest-free
	// processor) at a per-chunk claim cost. Cost variance within a level is
	// absorbed up to the chunk granularity; the claim traffic is the price.
	ModelWavefrontDynamic
)

// String returns the model's name as used in experiment tables.
func (m ExecModel) String() string {
	switch m {
	case ModelDoacross:
		return "doacross"
	case ModelWavefront:
		return "wavefront"
	case ModelWavefrontDynamic:
		return "wavefront-dynamic"
	default:
		return "unknown"
	}
}

// WavefrontCosts extends a CostModel with the costs specific to the two
// wavefront executors. The doacross costs it replaces (CheckPerRead,
// IterOverhead) are never charged by the wavefront models.
type WavefrontCosts struct {
	// Barrier is the cost of one level barrier: the rendezvous of all
	// processors between two consecutive levels. It is charged once per
	// level, including the last (the executor's end-of-phase rendezvous).
	Barrier float64
	// IterOverhead is the fixed per-iteration executor overhead of the
	// pre-scheduled execution: seeding ynew and loop bookkeeping, with no
	// flags to check, set or reset.
	IterOverhead float64
	// Claim is the cost of one dynamic chunk claim — the contended atomic
	// fetch-add of the self-scheduling loop. Charged only by
	// ModelWavefrontDynamic: once per successful chunk claim, plus the one
	// failed claim with which each processor discovers a level is exhausted.
	Claim float64
	// Chunk is the dynamic model's chunk size: how many member positions one
	// claim hands out. Zero means sched.DefaultChunk, matching the live
	// executor's default; like the live executor, the model clamps the chunk
	// per level (sched.LevelChunk) so a narrow level is never serialized by
	// one oversized claim.
	Chunk int
}

// SimulateSchedule replays the dependency graph under the selected execution
// model: ModelDoacross forwards to Simulate (wc is ignored), ModelWavefront
// to SimulateWavefront, ModelWavefrontDynamic to SimulateDynamicWavefront.
// It exists so the experiment sweeps can produce every executor column from
// one call site.
func SimulateSchedule(g *depgraph.Graph, model ExecModel, cfg Config, cm CostModel, wc WavefrontCosts) (Result, error) {
	switch model {
	case ModelDoacross:
		return Simulate(g, cfg, cm)
	case ModelWavefront:
		return SimulateWavefront(g, cfg, cm, wc)
	case ModelWavefrontDynamic:
		return SimulateDynamicWavefront(g, cfg, cm, wc)
	default:
		return Result{}, fmt.Errorf("machine: unknown execution model %d", int(model))
	}
}

// SimulateWavefront simulates the pre-scheduled wavefront execution of the
// dependency graph: the graph is decomposed into wavefront levels, the levels
// are distributed over min(Processors, widest level) workers under cfg.Policy
// (exactly as the live wavefront executor clamps its schedule), and the
// elapsed executor time is the sum over levels of the slowest worker's work
// plus one barrier per level.
//
// The preprocessing phase is charged as the parallel inspector
// (ceil(N/P) * PrePerIter), modelling a cold inspection; set
// cfg.SkipInspector to model the warm run whose plan comes from the schedule
// cache. The postprocessing phase is the copy-back doall
// (ceil(N/P) * PostPerIter). cfg.Order must be nil — the wavefront derives
// its own level order — and cfg.ReadPreds and SkipChecks are ignored: the
// model has no flags and no waits by construction.
func SimulateWavefront(g *depgraph.Graph, cfg Config, cm CostModel, wc WavefrontCosts) (Result, error) {
	if cfg.Order != nil {
		return Result{}, fmt.Errorf("machine: the wavefront model derives its own level order and cannot honor Config.Order")
	}
	p := cfg.Processors
	if p < 1 {
		return Result{}, fmt.Errorf("machine: need at least one processor, got %d", p)
	}
	if cm.BaseWork == nil && cm.TermWork == 0 {
		return Result{}, fmt.Errorf("machine: cost model requires BaseWork or TermWork")
	}
	ls := g.LevelsInto(nil)
	pEff := p
	if w := ls.MaxWidth(); pEff > w {
		// Processors beyond the widest level would only spin at the barriers.
		pEff = w
	}
	if pEff < 1 {
		pEff = 1
	}
	s := sched.NewLevelSchedule(ls.Members, ls.Off, cfg.Policy, pEff)
	res, err := SimulateLevelSchedule(s, cfg, cm, wc)
	if err != nil {
		return Result{}, err
	}
	iterOverhead := wc.IterOverhead
	if cfg.SkipOverheads {
		iterOverhead = 0
	}
	res.CriticalPath, _ = g.CriticalPath(func(i int) float64 { return cm.IterWork(i) + iterOverhead })
	return res, nil
}

// SimulateLevelSchedule replays a concrete level schedule under the wavefront
// execution model. Each level's elapsed time is the maximum over workers of
// the sum of their assigned iterations' cost (useful work plus
// wc.IterOverhead), and every level is followed by one barrier. The schedule
// is taken as given — callers that want the automatic worker clamp and the
// graph-derived critical path use SimulateWavefront.
//
// Result.CriticalPath is left zero (the schedule alone does not carry the
// dependency graph); Result.WaitTime is zero by construction — there are no
// flags to wait on, and within-level imbalance appears as idle time at the
// barriers, i.e. in the gap between ExecTime and the ProcBusy fractions.
func SimulateLevelSchedule(s *sched.LevelSchedule, cfg Config, cm CostModel, wc WavefrontCosts) (Result, error) {
	p := cfg.Processors
	if p < 1 {
		return Result{}, fmt.Errorf("machine: need at least one processor, got %d", p)
	}
	if cm.BaseWork == nil && cm.TermWork == 0 {
		return Result{}, fmt.Errorf("machine: cost model requires BaseWork or TermWork")
	}
	n := s.N()
	res := Result{Processors: p, Iterations: n, Levels: s.Levels()}
	for i := 0; i < n; i++ {
		res.TSeq += cm.IterWork(i)
	}

	iterOverhead := wc.IterOverhead
	barrier := wc.Barrier
	prePerIter := cm.PrePerIter
	postPerIter := cm.PostPerIter
	if cfg.SkipOverheads {
		iterOverhead, barrier, prePerIter, postPerIter = 0, 0, 0, 0
	}

	perProc := int(math.Ceil(float64(n) / float64(p)))
	if !cfg.SkipInspector {
		res.PreTime = float64(perProc) * prePerIter
	}
	if !cfg.SkipPostprocess {
		res.PostTime = float64(perProc) * postPerIter
	}

	workers := s.Workers()
	procBusy := make([]float64, workers)
	exec := 0.0
	for l := 0; l < s.Levels(); l++ {
		levelMax := 0.0
		for w := 0; w < workers; w++ {
			tw := 0.0
			for _, it := range s.Items(l, w) {
				tw += cm.IterWork(int(it)) + iterOverhead
			}
			procBusy[w] += tw
			if tw > levelMax {
				levelMax = tw
			}
		}
		exec += levelMax + barrier
	}
	res.ExecTime = exec
	res.BarrierTime = barrier * float64(s.Levels())
	res.OverheadTime = float64(n)*iterOverhead + res.BarrierTime
	res.TPar = res.PreTime + res.ExecTime + res.PostTime
	res.ProcBusy = make([]float64, workers)
	if exec > 0 {
		for w := 0; w < workers; w++ {
			res.ProcBusy[w] = procBusy[w] / exec
		}
	}
	finishResult(&res)
	return res, nil
}

// SimulateDynamicWavefront simulates the dynamic within-level wavefront
// execution of the dependency graph: the graph is decomposed into wavefront
// levels exactly as SimulateWavefront does (processors clamped to the widest
// level), but inside each level the processors self-schedule chunks of the
// level's member list by greedy list scheduling — each successive chunk is
// claimed by the earliest-free processor, which first pays wc.Claim for the
// claim itself and then executes the chunk's iterations (work plus
// wc.IterOverhead each). When the list is exhausted every processor pays one
// more wc.Claim, the failed claim with which the live executor's claim loop
// discovers the level is empty; the level's elapsed time is the latest
// processor finish, followed by one barrier.
//
// This replays the live dynamic executor's cost structure faithfully enough
// to locate the static/dynamic crossover: with uniform per-iteration costs
// the greedy assignment degenerates to the static one and the claim traffic
// is pure loss, while heavy-tailed within-level costs leave the static
// schedule waiting on whichever processor drew the hot member — idle time
// the greedy claims reclaim. Preprocessing, postprocessing, Config
// restrictions (Order must be nil) and Result conventions match
// SimulateWavefront; WaitTime is zero by construction.
func SimulateDynamicWavefront(g *depgraph.Graph, cfg Config, cm CostModel, wc WavefrontCosts) (Result, error) {
	if cfg.Order != nil {
		return Result{}, fmt.Errorf("machine: the wavefront model derives its own level order and cannot honor Config.Order")
	}
	p := cfg.Processors
	if p < 1 {
		return Result{}, fmt.Errorf("machine: need at least one processor, got %d", p)
	}
	if cm.BaseWork == nil && cm.TermWork == 0 {
		return Result{}, fmt.Errorf("machine: cost model requires BaseWork or TermWork")
	}
	ls := g.LevelsInto(nil)
	pEff := p
	if w := ls.MaxWidth(); pEff > w {
		// Processors beyond the widest level would only spin at the barriers.
		pEff = w
	}
	if pEff < 1 {
		pEff = 1
	}
	chunk := wc.Chunk
	if chunk < 1 {
		chunk = sched.DefaultChunk
	}

	n := g.N
	res := Result{Processors: p, Iterations: n, Levels: ls.Count()}
	for i := 0; i < n; i++ {
		res.TSeq += cm.IterWork(i)
	}

	iterOverhead := wc.IterOverhead
	barrier := wc.Barrier
	claim := wc.Claim
	prePerIter := cm.PrePerIter
	postPerIter := cm.PostPerIter
	if cfg.SkipOverheads {
		iterOverhead, barrier, claim, prePerIter, postPerIter = 0, 0, 0, 0, 0
	}

	perProc := int(math.Ceil(float64(n) / float64(p)))
	if !cfg.SkipInspector {
		res.PreTime = float64(perProc) * prePerIter
	}
	if !cfg.SkipPostprocess {
		res.PostTime = float64(perProc) * postPerIter
	}

	clocks := make([]float64, pEff)
	procBusy := make([]float64, pEff)
	exec := 0.0
	claims := 0
	for l := 0; l < ls.Count(); l++ {
		members := ls.LevelMembers(l)
		levelChunk := sched.LevelChunk(chunk, len(members), pEff)
		for w := range clocks {
			clocks[w] = 0
		}
		for idx := 0; idx < len(members); idx += levelChunk {
			w := 0
			for v := 1; v < pEff; v++ {
				if clocks[v] < clocks[w] {
					w = v
				}
			}
			end := idx + levelChunk
			if end > len(members) {
				end = len(members)
			}
			clocks[w] += claim
			claims++
			for _, it := range members[idx:end] {
				clocks[w] += cm.IterWork(int(it)) + iterOverhead
			}
		}
		levelMax := 0.0
		for w := range clocks {
			// The failed claim that ends each processor's level.
			clocks[w] += claim
			claims++
			procBusy[w] += clocks[w]
			if clocks[w] > levelMax {
				levelMax = clocks[w]
			}
		}
		exec += levelMax + barrier
	}
	res.ExecTime = exec
	res.BarrierTime = barrier * float64(ls.Count())
	res.OverheadTime = float64(n)*iterOverhead + res.BarrierTime + claim*float64(claims)
	res.TPar = res.PreTime + res.ExecTime + res.PostTime
	res.ProcBusy = make([]float64, pEff)
	if exec > 0 {
		for w := 0; w < pEff; w++ {
			res.ProcBusy[w] = procBusy[w] / exec
		}
	}
	res.CriticalPath, _ = g.CriticalPath(func(i int) float64 { return cm.IterWork(i) + iterOverhead })
	finishResult(&res)
	return res, nil
}
