package machine

import (
	"math"

	"doacross/internal/tune"
)

// TuningTruth is the ground truth of a simulated tuning run: the actual
// executor-phase time each executor strategy takes on the loop shape under
// study, in nanoseconds. It plays the role the wall clock plays for the live
// tuner (core.Runtime with Options.Tuning): every simulated run of an
// executor observes exactly its truth time. DynamicNs <= 0 declares the
// dynamic arm unavailable, matching a live runtime whose cost model carries
// no claim coefficient.
type TuningTruth struct {
	DoacrossNs  float64
	WavefrontNs float64
	DynamicNs   float64
}

// observed returns the truth time of one tune arm.
func (t TuningTruth) observed(arm int) float64 {
	switch arm {
	case tune.Wavefront:
		return t.WavefrontNs
	case tune.WavefrontDynamic:
		return t.DynamicNs
	default:
		return t.DoacrossNs
	}
}

// BestArm returns the tune arm index of the truly fastest available executor
// — the pick a converged tuner must settle on. The dynamic arm competes only
// when DynamicNs is positive.
func (t TuningTruth) BestArm() int {
	best, bestNs := tune.Doacross, t.DoacrossNs
	if t.WavefrontNs < bestNs {
		best, bestNs = tune.Wavefront, t.WavefrontNs
	}
	if t.DynamicNs > 0 && t.DynamicNs < bestNs {
		best = tune.WavefrontDynamic
	}
	return best
}

// TuningStep records one simulated tuned run: the decision, what the model
// predicted for the picked arm before observing (from the pre-observation
// coefficients), what the truth delivered, the resulting prediction error,
// and the coefficients after the observation was folded in.
type TuningStep struct {
	Run         int
	Pick        int // tune arm index (tune.Doacross, ...)
	Explored    bool
	PredictedNs float64
	ObservedNs  float64
	// ErrNs is |PredictedNs - ObservedNs|: how wrong the tuned model still
	// was about the executor it ran. Per arm this shrinks as the calibration
	// absorbs observations; the acceptance suite asserts it.
	ErrNs  float64
	Coeffs tune.Coeffs
}

// TuningTrajectory is the full simulated history of a tuned plan.
type TuningTrajectory struct {
	Steps []TuningStep
	// Final is the plan's tuner state after the last run — byte-comparable
	// against a live runtime's state, since both drive the same tune package.
	Final tune.PlanState
	// ConvergedAt is the first run index from which every non-explored
	// decision picked the truth's best arm (explorations are deliberate and
	// excluded), or -1 if the tuner never settled. 0 means the seed
	// coefficients already agreed with the truth.
	ConvergedAt int
}

// SimulateTuning replays runs tuned decisions against a fixed ground truth:
// each run asks the plan state to decide exactly as the live runtime's Auto
// selection does, observes the decided executor's truth time, and folds the
// measurement back into the calibration. Because it drives the same
// tune.PlanState the runtime embeds — same decision rule, same EMA, same
// back-solve, same deterministic exploration RNG — its trajectory is the
// specification the live tuner is tested against: wrong seed coefficients
// must flip to the truth's best executor and stay, with the predicted time
// of whatever runs converging onto its truth.
//
// start seeds the coefficients (the live TuningOptions.InitialCosts); st,
// workers and nrhs describe the plan shape being tuned. When the truth
// carries no dynamic time the seed's claim coefficient is zeroed so the
// model excludes the dynamic arm, as a live cost model without a claim
// coefficient does.
func SimulateTuning(truth TuningTruth, start tune.Coeffs, st tune.Stats, workers, nrhs, runs int, o tune.Options) TuningTrajectory {
	o = o.WithDefaults()
	if truth.DynamicNs <= 0 {
		start.ClaimNs = 0
	}
	rng := tune.NewRNG(o.Seed)
	ps := tune.NewPlanState(start)
	traj := TuningTrajectory{ConvergedAt: -1}
	if runs > 0 {
		traj.Steps = make([]TuningStep, 0, runs)
	}
	for r := 0; r < runs; r++ {
		pick, explored := ps.Decide(st, workers, nrhs, o, rng)
		tDa, tWf, tDyn := tune.Predict(ps.Coeffs, st, workers, nrhs)
		pred := tDa
		switch pick {
		case tune.Wavefront:
			pred = tWf
		case tune.WavefrontDynamic:
			pred = tDyn
		}
		obs := truth.observed(pick)
		ps.Observe(pick, st, workers, nrhs, obs, o)
		traj.Steps = append(traj.Steps, TuningStep{
			Run:         r,
			Pick:        pick,
			Explored:    explored,
			PredictedNs: pred,
			ObservedNs:  obs,
			ErrNs:       math.Abs(pred - obs),
			Coeffs:      ps.Coeffs,
		})
	}
	traj.Final = ps

	// Converged-at: scan backward for the first suffix whose every greedy
	// (non-explored) decision picked the truth's best arm. A trailing block
	// of explorations extends the suffix — they are deliberate detours, not
	// changes of mind.
	best := truth.BestArm()
	converged := -1
	for i := len(traj.Steps) - 1; i >= 0; i-- {
		s := traj.Steps[i]
		if !s.Explored && s.Pick != best {
			break
		}
		if !s.Explored {
			converged = i
		}
	}
	traj.ConvergedAt = converged
	return traj
}
