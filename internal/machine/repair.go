package machine

// RepairCosts prices an incremental plan repair against a cold re-inspection,
// in abstract per-item units (only the ratios matter, exactly like the
// simulator's CostModel). A cold inspection walks every iteration's access
// closures and every dependency edge — writer-index fill, predecessor scan,
// structural hash — so it is charged per iteration-or-edge. A repair touches
// only the dirty cone (worklist, heap and predecessor re-scan per member)
// plus one cheap pass to re-scatter the decomposition's suffix, so it is
// charged per cone member and per suffix member at far smaller weights.
type RepairCosts struct {
	// InspectPerItem is the cold inspection's cost per iteration and per
	// edge: a closure call, an append, a dedup step, a hash mix.
	InspectPerItem float64
	// ConePerIter is the repair's cost per dirty-cone member: a heap pop, a
	// membership probe and a predecessor max-scan.
	ConePerIter float64
	// SuffixPerIter is the repair's cost per member of the rebuilt level
	// suffix: an int32 count-and-scatter step, memcpy-grade work.
	SuffixPerIter float64
}

// DefaultRepairCosts are the ratios the runtime's repair gate and the
// loopstat break-even report use. The cone weight is deliberately the
// heaviest — the worklist pays map and heap constants per member that the
// linear scans of both other terms do not — so a cone approaching the loop
// size loses to the cold path even though repair's suffix scan is cheap.
var DefaultRepairCosts = RepairCosts{InspectPerItem: 4, ConePerIter: 16, SuffixPerIter: 1}

// ColdInspect estimates a cold inspection of a loop with the given iteration
// and dependency-edge counts: iterations are scanned twice (writer fill and
// level sweep), edges once each.
func (rc RepairCosts) ColdInspect(iterations, edges int) float64 {
	return rc.InspectPerItem * float64(2*iterations+edges)
}

// Repair estimates an incremental repair with the given dirty-cone size and
// rebuilt-suffix member count.
func (rc RepairCosts) Repair(cone, suffix int) float64 {
	return rc.ConePerIter*float64(cone) + rc.SuffixPerIter*float64(suffix)
}

// BreakEvenCone returns the largest dirty cone for which an incremental
// repair is predicted cheaper than a cold re-inspection, assuming the
// worst-case suffix (the whole loop rescattered). Edits whose cone stays
// under this threshold should repair; larger ones should re-inspect cold.
func (rc RepairCosts) BreakEvenCone(iterations, edges int) int {
	if rc.ConePerIter <= 0 {
		return iterations
	}
	c := (rc.ColdInspect(iterations, edges) - rc.SuffixPerIter*float64(iterations)) / rc.ConePerIter
	if c < 0 {
		return 0
	}
	return int(c)
}
