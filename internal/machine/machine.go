// Package machine is a deterministic discrete-event simulator of a
// shared-memory multiprocessor executing a (preprocessed) doacross schedule.
//
// The paper's measurements were taken on a 16-processor Encore Multimax/320;
// this substrate replaces that machine. Two execution models are simulated,
// mirroring the two executors of the live runtime (package core):
//
// The busy-wait doacross (Simulate, ModelDoacross) replays a given
// iteration-to-processor assignment with an explicit cost model —
// per-iteration base work, per-read-term work, per-read dependency-check
// overhead, fixed per-iteration executor overhead, and the parallel
// preprocessing/postprocessing phases — and charges every true-dependency
// wait as busy time on the waiting processor, exactly as the paper's
// busy-wait implementation does. Two wait models are supported: the coarse
// model charges all dependency waits at the start of an iteration, while the
// fine model (Config.ReadPreds) interleaves waits with the iteration's inner
// loop, each right-hand-side read waiting for its producer only when the
// executor reaches that term (statements S3–S5 of the paper's Figure 5) —
// this partial overlap is what lets a natural-order doacross extract speedup
// even from rows that depend on their immediate predecessor.
//
// The pre-scheduled wavefront execution (SimulateWavefront, ModelWavefront)
// decomposes the dependency graph into wavefront levels and runs each level
// as a statically scheduled doall with a barrier between levels: no flags
// are checked and nothing ever busy-waits, but every level pays one barrier
// and within-level imbalance shows up as idle time at that barrier. Its
// per-iteration overhead (WavefrontCosts.IterOverhead) replaces the doacross
// CheckPerRead/IterOverhead charges. SimulateSchedule dispatches between the
// two models so experiment sweeps can emit both executor columns.
//
// The output of either model is the parallel time, the sequential time and
// the parallel efficiency T_seq / (p * T_par) the paper reports. The
// simulator is deterministic and independent of the host's core count, which
// is what lets the experiments reproduce the paper's 16-processor curves on
// any machine; the live runtime in package core provides the real-execution
// counterpart.
package machine

import (
	"fmt"
	"math"

	"doacross/internal/depgraph"
	"doacross/internal/sched"
)

// CostModel assigns abstract time units to the different activities of a
// doacross execution. The absolute scale is arbitrary (the paper's numbers
// are milliseconds on 1990 hardware); only ratios matter for efficiency.
type CostModel struct {
	// BaseWork returns the useful work of iteration i that is independent of
	// its right-hand-side reads (e.g. "y(i) = rhs(i)" in Figure 7).
	BaseWork func(i int) float64
	// TermWork is the useful work of one right-hand-side read term (the
	// multiply-add of Figures 4 and 7).
	TermWork float64
	// ReadsPerIter returns the number of right-hand-side reads iteration i
	// performs. Each contributes TermWork to the useful work and
	// CheckPerRead to the doacross overhead.
	ReadsPerIter func(i int) int
	// CheckPerRead is the executor's per-read overhead: the iter-table
	// lookup and branch of Figure 5 (statements S3/S6).
	CheckPerRead float64
	// IterOverhead is the fixed per-iteration executor overhead: seeding
	// ynew, setting the ready flag, loop bookkeeping.
	IterOverhead float64
	// PrePerIter is the inspector cost per iteration; the inspector is a
	// fully parallel loop, so its elapsed time is ceil(N/P)*PrePerIter.
	PrePerIter float64
	// PostPerIter is the postprocessing cost per iteration, parallelized the
	// same way.
	PostPerIter float64
}

// IterWork returns the useful (sequential) work of iteration i: base work
// plus one term of work per read. It is the only component that counts
// toward T_seq.
func (cm CostModel) IterWork(i int) float64 {
	reads := 0
	if cm.ReadsPerIter != nil {
		reads = cm.ReadsPerIter(i)
	}
	base := 0.0
	if cm.BaseWork != nil {
		base = cm.BaseWork(i)
	}
	return base + cm.TermWork*float64(reads)
}

// UniformCost returns a cost model with constant per-iteration base work and
// read count, convenient for tests.
func UniformCost(base, termWork float64, reads int, check, overhead, pre, post float64) CostModel {
	return CostModel{
		BaseWork:     func(int) float64 { return base },
		TermWork:     termWork,
		ReadsPerIter: func(int) int { return reads },
		CheckPerRead: check,
		IterOverhead: overhead,
		PrePerIter:   pre,
		PostPerIter:  post,
	}
}

// Config describes one simulated execution.
type Config struct {
	// Processors is the number of processors (the paper uses 16).
	Processors int
	// Policy assigns execution positions to processors.
	Policy sched.Policy
	// Order maps execution position to original iteration index; nil means
	// natural order. It must be a topological order of the dependency graph.
	Order []int
	// ReadPreds enables the fine-grained wait model: ReadPreds(i) returns,
	// for each right-hand-side read of iteration i in intra-iteration order,
	// the original index of the iteration producing the value, or -1 when
	// the read has no true dependency. The slice length must equal
	// ReadsPerIter(i). When nil, all waits are charged at iteration start.
	ReadPreds func(i int) []int32
	// SkipInspector omits the preprocessing phase (the linear-subscript
	// variant of Section 2.3).
	SkipInspector bool
	// SkipChecks omits the per-read dependency-check overhead (the oracle /
	// compile-time doacross baseline).
	SkipChecks bool
	// SkipPostprocess omits the postprocessing phase (single-use scratch
	// arrays, or the epoch-table variant whose reset is O(1)).
	SkipPostprocess bool
	// SkipOverheads omits CheckPerRead, IterOverhead and both doall phases
	// entirely: the ideal doall / compile-time-parallelized baseline.
	SkipOverheads bool
}

// Result summarizes one simulated execution.
type Result struct {
	Processors int
	Iterations int
	// TSeq is the simulated optimized sequential time (sum of iteration
	// work, no overheads).
	TSeq float64
	// TPar is the simulated parallel time, including preprocessing,
	// dependency waits, check overheads and postprocessing.
	TPar float64
	// PreTime and PostTime are the elapsed times of the two doall phases.
	PreTime, PostTime float64
	// ExecTime is the elapsed time of the executor phase alone.
	ExecTime float64
	// WaitTime is the total busy-wait time summed over processors.
	WaitTime float64
	// OverheadTime is the total per-iteration and per-read overhead summed
	// over processors.
	OverheadTime float64
	// Speedup is TSeq / TPar.
	Speedup float64
	// Efficiency is TSeq / (Processors * TPar), the paper's definition.
	Efficiency float64
	// CriticalPath is the weighted critical path of the dependency graph
	// under the executor's per-iteration cost (work + overheads): a lower
	// bound on ExecTime for any schedule under the coarse wait model.
	CriticalPath float64
	// Levels is the number of wavefront levels executed (wavefront model
	// only; zero for the doacross).
	Levels int
	// BarrierTime is the total barrier cost charged (wavefront model only:
	// Levels * WavefrontCosts.Barrier).
	BarrierTime float64
	// ProcBusy[p] is the fraction of the executor phase processor p spent
	// executing (working or checking) rather than waiting or idle.
	ProcBusy []float64
}

// String renders the headline numbers.
func (r Result) String() string {
	return fmt.Sprintf("P=%d N=%d Tseq=%.1f Tpar=%.1f speedup=%.2f eff=%.3f wait=%.1f",
		r.Processors, r.Iterations, r.TSeq, r.TPar, r.Speedup, r.Efficiency, r.WaitTime)
}

// ReadPredsFromAccess builds a ReadPreds function from an access pattern: for
// each read element of iteration i (in the order Reads returns them) it
// yields the iteration that writes the element if that iteration precedes i
// (a true dependency), and -1 otherwise.
func ReadPredsFromAccess(a depgraph.Access) func(i int) []int32 {
	writer := make(map[int]int32)
	for i := 0; i < a.N; i++ {
		for _, e := range a.Writes(i) {
			writer[e] = int32(i)
		}
	}
	return func(i int) []int32 {
		reads := a.Reads(i)
		out := make([]int32, len(reads))
		for k, e := range reads {
			w, ok := writer[e]
			if ok && int(w) < i {
				out[k] = w
			} else {
				out[k] = -1
			}
		}
		return out
	}
}

// Simulate runs the discrete-event simulation of the doacross execution of
// the dependency graph g under the configuration and cost model. The graph's
// Preds must refer to original iteration indices (as produced by
// depgraph.Build); cfg.Order gives the execution order over positions.
func Simulate(g *depgraph.Graph, cfg Config, cm CostModel) (Result, error) {
	n := g.N
	p := cfg.Processors
	if p < 1 {
		return Result{}, fmt.Errorf("machine: need at least one processor, got %d", p)
	}
	if cm.BaseWork == nil && cm.TermWork == 0 {
		return Result{}, fmt.Errorf("machine: cost model requires BaseWork or TermWork")
	}
	reads := cm.ReadsPerIter
	if reads == nil {
		reads = func(int) int { return 0 }
	}
	order := cfg.Order
	if order != nil {
		if len(order) != n {
			return Result{}, fmt.Errorf("machine: order has %d entries for %d iterations", len(order), n)
		}
		if !g.IsTopologicalOrder(order) {
			return Result{}, fmt.Errorf("machine: order is not a topological order of the dependency graph")
		}
	}

	res := Result{Processors: p, Iterations: n}
	for i := 0; i < n; i++ {
		res.TSeq += cm.IterWork(i)
	}

	checkPerRead := cm.CheckPerRead
	iterOverhead := cm.IterOverhead
	prePerIter := cm.PrePerIter
	postPerIter := cm.PostPerIter
	if cfg.SkipChecks {
		checkPerRead = 0
	}
	if cfg.SkipOverheads {
		checkPerRead, iterOverhead, prePerIter, postPerIter = 0, 0, 0, 0
	}

	// Elapsed time of the two doall phases: iterations are spread evenly, so
	// the slowest processor executes ceil(n/p) of them.
	perProc := int(math.Ceil(float64(n) / float64(p)))
	if !cfg.SkipInspector {
		res.PreTime = float64(perProc) * prePerIter
	}
	if !cfg.SkipPostprocess {
		res.PostTime = float64(perProc) * postPerIter
	}

	// iterCost is the total executor-phase occupancy of an iteration
	// (excluding waits).
	iterCost := func(i int) float64 {
		return cm.IterWork(i) + iterOverhead + checkPerRead*float64(reads(i))
	}
	res.CriticalPath, _ = g.CriticalPath(iterCost)

	if n == 0 {
		res.TPar = res.PreTime + res.PostTime
		finishResult(&res)
		return res, nil
	}

	schedule := sched.Build(cfg.Policy, n, p)
	finish := make([]float64, n)
	simulated := make([]bool, n)
	procTime := make([]float64, p)
	procBusy := make([]float64, p)
	next := make([]int, p) // index into schedule.PerWorker[w]

	iterOf := func(pos int) int {
		if order != nil {
			return order[pos]
		}
		return pos
	}

	remaining := n
	for remaining > 0 {
		// Pick the processor whose next unsimulated position is globally
		// smallest; that position's predecessors are all simulated (every
		// smaller position already ran), so it can be processed now.
		best := -1
		bestPos := math.MaxInt
		for w := 0; w < len(schedule.PerWorker); w++ {
			if next[w] < len(schedule.PerWorker[w]) {
				pos := schedule.PerWorker[w][next[w]]
				if pos < bestPos {
					bestPos = pos
					best = w
				}
			}
		}
		if best == -1 {
			return Result{}, fmt.Errorf("machine: schedule exhausted with %d iterations unsimulated", remaining)
		}
		w := best
		pos := schedule.PerWorker[w][next[w]]
		next[w]++
		it := iterOf(pos)
		for _, pr := range g.Preds[it] {
			if !simulated[pr] {
				return Result{}, fmt.Errorf("machine: iteration %d simulated before its predecessor %d (order not topological?)", it, pr)
			}
		}

		t := procTime[w]
		waited := 0.0
		busy := 0.0
		base := 0.0
		if cm.BaseWork != nil {
			base = cm.BaseWork(it)
		}
		if cfg.ReadPreds == nil {
			// Coarse model: wait for every predecessor before starting.
			depReady := 0.0
			for _, pr := range g.Preds[it] {
				if finish[pr] > depReady {
					depReady = finish[pr]
				}
			}
			if depReady > t {
				waited = depReady - t
				t = depReady
			}
			c := iterCost(it)
			t += c
			busy = c
		} else {
			// Fine model: the executor performs its fixed prologue and base
			// work, then walks the read terms in order, waiting only when it
			// reaches a term whose producer has not finished.
			rp := cfg.ReadPreds(it)
			t += iterOverhead + base
			busy += iterOverhead + base
			for _, pr := range rp {
				if pr >= 0 {
					if finish[pr] > t {
						waited += finish[pr] - t
						t = finish[pr]
					}
				}
				t += checkPerRead + cm.TermWork
				busy += checkPerRead + cm.TermWork
			}
		}
		finish[it] = t
		simulated[it] = true
		procTime[w] = t
		procBusy[w] += busy
		res.WaitTime += waited
		res.OverheadTime += busy - cm.IterWork(it)
		remaining--
	}

	execEnd := 0.0
	for w := 0; w < p; w++ {
		if procTime[w] > execEnd {
			execEnd = procTime[w]
		}
	}
	res.ExecTime = execEnd
	res.TPar = res.PreTime + res.ExecTime + res.PostTime
	res.ProcBusy = make([]float64, p)
	if execEnd > 0 {
		for w := 0; w < p; w++ {
			res.ProcBusy[w] = procBusy[w] / execEnd
		}
	}
	finishResult(&res)
	return res, nil
}

func finishResult(r *Result) {
	if r.TPar > 0 {
		r.Speedup = r.TSeq / r.TPar
		r.Efficiency = r.TSeq / (float64(r.Processors) * r.TPar)
	}
}

// SimulateSequential returns the simulated time of the optimized sequential
// execution (work only, no overheads), which is the T_seq of the paper's
// efficiency definition. It is provided for symmetry with Simulate.
func SimulateSequential(n int, cm CostModel) float64 {
	t := 0.0
	for i := 0; i < n; i++ {
		t += cm.IterWork(i)
	}
	return t
}
