package machine

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"doacross/internal/depgraph"
	"doacross/internal/sched"
	"doacross/internal/tune"
)

// tuneStatsFromGraph projects a dependency graph onto the tune package's
// shape summary the way the live inspector does: levels and critical path
// from the wavefront decomposition, static schedule rounds as the sum of
// per-level ceil splits, dynamic claims at the default chunk.
func tuneStatsFromGraph(g *depgraph.Graph, workers int) tune.Stats {
	a := g.Analyze()
	_, byLevel := g.Levels()
	rounds, claims := 0, 0
	for _, lvl := range byLevel {
		w := len(lvl)
		rounds += (w + workers - 1) / workers
		claims += sched.DynamicClaims(w, sched.DefaultChunk, workers)
	}
	return tune.Stats{
		Iterations:      a.Iterations,
		Edges:           a.Edges,
		StallWeight:     g.StallWeight(workers),
		Levels:          a.Levels,
		CriticalPathLen: a.CriticalPathLen,
		ScheduleRounds:  rounds,
		ReadImbalance:   0,
		DynamicClaims:   claims,
	}
}

// randomGraph builds a random DAG over n iterations: each iteration depends
// on up to 2 random earlier iterations with the given probability, yielding
// shapes from near-doall to deep chains as p grows.
func randomGraph(rng *rand.Rand, n int, p float64) *depgraph.Graph {
	preds := make([][]int32, n)
	for i := 1; i < n; i++ {
		for k := 0; k < 2; k++ {
			if rng.Float64() < p {
				preds[i] = append(preds[i], int32(rng.Intn(i)))
			}
		}
	}
	return depgraph.FromPreds(preds)
}

// TestSimulateTuningMatchesManualReplay pins the fidelity contract: the
// simulator is nothing but the tune package's own state machine driven in a
// loop, so a hand-driven replay with the same inputs must produce the
// identical pick sequence and byte-identical final state.
func TestSimulateTuningMatchesManualReplay(t *testing.T) {
	st := tune.Stats{Iterations: 512, Edges: 600, Levels: 24, CriticalPathLen: 24,
		ScheduleRounds: 130, DynamicClaims: 300}
	start := tune.Coeffs{BarrierNs: 900, FlagCheckNs: 45, ClaimNs: 20, IterNs: 150}
	truth := TuningTruth{DoacrossNs: 400_000, WavefrontNs: 150_000, DynamicNs: 180_000}
	o := tune.Options{Seed: 42}
	const workers, nrhs, runs = 4, 1, 48

	traj := SimulateTuning(truth, start, st, workers, nrhs, runs, o)

	od := o.WithDefaults()
	rng := tune.NewRNG(od.Seed)
	ps := tune.NewPlanState(start)
	for r := 0; r < runs; r++ {
		pick, explored := ps.Decide(st, workers, nrhs, od, rng)
		if traj.Steps[r].Pick != pick || traj.Steps[r].Explored != explored {
			t.Fatalf("run %d: simulator decided (%d,%v), manual replay (%d,%v)",
				r, traj.Steps[r].Pick, traj.Steps[r].Explored, pick, explored)
		}
		var obs float64
		switch pick {
		case tune.Wavefront:
			obs = truth.WavefrontNs
		case tune.WavefrontDynamic:
			obs = truth.DynamicNs
		default:
			obs = truth.DoacrossNs
		}
		ps.Observe(pick, st, workers, nrhs, obs, od)
	}
	if !reflect.DeepEqual(traj.Final, ps) {
		t.Fatalf("final state diverged:\nsimulator %+v\nmanual    %+v", traj.Final, ps)
	}
}

// TestSimulateTuningConvergesFromWrongSeed is the simulator-side convergence
// acceptance: seed coefficients that make the model prefer the catastrophic
// executor must flip to the truth's best arm within the run budget and stay.
func TestSimulateTuningConvergesFromWrongSeed(t *testing.T) {
	// A deep chain: the truth says busy-wait doacross wins by 40x (the
	// wavefront pays a barrier per unit-width level), but the seed's
	// overpriced flag cost makes the model predict the opposite.
	st := tune.Stats{Iterations: 2048, Edges: 2047, Levels: 2048,
		CriticalPathLen: 2048, ScheduleRounds: 2048}
	start := tune.Coeffs{BarrierNs: 0.01, FlagCheckNs: 5000, IterNs: 100}
	truth := TuningTruth{DoacrossNs: 50_000, WavefrontNs: 2_000_000}
	const runs = 32
	if tDa, tWf, _ := tune.Predict(tune.Sanitize(start), st, 4, 1); tWf >= tDa {
		t.Fatalf("seed coefficients do not mislead the model: doacross %v <= wavefront %v", tDa, tWf)
	}
	traj := SimulateTuning(truth, start, st, 4, 1, runs, tune.Options{Seed: 3})
	if best := truth.BestArm(); best != tune.Doacross {
		t.Fatalf("truth's best arm = %d, want doacross", best)
	}
	if traj.ConvergedAt < 0 {
		t.Fatalf("tuner never converged: %+v", traj.Steps)
	}
	if traj.ConvergedAt > runs/2 {
		t.Errorf("converged only at run %d of %d", traj.ConvergedAt, runs)
	}
	for _, s := range traj.Steps[traj.ConvergedAt:] {
		if !s.Explored && s.Pick != tune.Doacross {
			t.Fatalf("post-convergence greedy run %d picked arm %d", s.Run, s.Pick)
		}
	}
}

// TestSimulateTuningExcludesDynamicWithoutTruth checks the availability rule:
// a truth with no dynamic time zeroes the claim coefficient, so the dynamic
// arm is never run however the seed priced it.
func TestSimulateTuningExcludesDynamicWithoutTruth(t *testing.T) {
	st := tune.Stats{Iterations: 256, Edges: 300, Levels: 16, CriticalPathLen: 16,
		ScheduleRounds: 64, DynamicClaims: 100}
	start := tune.Coeffs{BarrierNs: 500, FlagCheckNs: 40, ClaimNs: 1e-9, IterNs: 100}
	truth := TuningTruth{DoacrossNs: 300_000, WavefrontNs: 120_000}
	traj := SimulateTuning(truth, start, st, 4, 1, 40, tune.Options{Seed: 9})
	for _, s := range traj.Steps {
		if s.Pick == tune.WavefrontDynamic {
			t.Fatalf("run %d picked the unavailable dynamic arm", s.Run)
		}
	}
	if traj.Final.Coeffs.ClaimNs != 0 {
		t.Errorf("claim coefficient survived: %v", traj.Final.Coeffs.ClaimNs)
	}
}

// TestSimulateTuningPropertyRandomDAGs is the calibration property suite:
// over random DAG shapes and a hidden per-iteration body weight, with the
// truth generated by the cost model itself, (a) each arm's prediction error
// is monotone non-increasing over that arm's runs, (b) the hidden IterNs is
// recovered within tolerance by the end, and (c) the trajectory is
// deterministic (an identical rerun is deeply equal).
func TestSimulateTuningPropertyRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		n := 64 + rng.Intn(512)
		g := randomGraph(rng, n, 0.2+0.6*rng.Float64())
		workers := 2 + rng.Intn(7)
		nrhs := 1 + rng.Intn(4)*rng.Intn(2)*7 // mostly 1, sometimes a block
		st := tuneStatsFromGraph(g, workers)

		trueIter := 100 + 4900*rng.Float64()
		trueCoeffs := tune.Coeffs{BarrierNs: 200, FlagCheckNs: 20, ClaimNs: 15, IterNs: trueIter}
		tDa, tWf, tDyn := tune.Predict(trueCoeffs, st, workers, nrhs)
		truth := TuningTruth{DoacrossNs: tDa, WavefrontNs: tWf, DynamicNs: tDyn}

		// The seed knows the overheads but not the body weight — the common
		// deployment, where the probe measured synchronization primitives but
		// the loop body is the application's.
		start := trueCoeffs
		start.IterNs = 0
		const runs = 40
		o := tune.Options{Seed: uint64(trial + 1)}
		traj := SimulateTuning(truth, start, st, workers, nrhs, runs, o)

		var lastErr [tune.NumExecutors]float64
		var seen [tune.NumExecutors]bool
		for _, s := range traj.Steps {
			if seen[s.Pick] && s.ErrNs > lastErr[s.Pick]*1.001+1e-6 {
				t.Fatalf("trial %d: arm %d prediction error grew at run %d: %v after %v",
					trial, s.Pick, s.Run, s.ErrNs, lastErr[s.Pick])
			}
			seen[s.Pick], lastErr[s.Pick] = true, s.ErrNs
		}

		if got := traj.Final.Coeffs.IterNs; math.Abs(got-trueIter) > 0.2*trueIter {
			t.Errorf("trial %d: final IterNs = %v, want within 20%% of %v (n=%d workers=%d)",
				trial, got, trueIter, n, workers)
		}
		if rerun := SimulateTuning(truth, start, st, workers, nrhs, runs, o); !reflect.DeepEqual(traj, rerun) {
			t.Fatalf("trial %d: trajectory is not deterministic", trial)
		}
	}
}
