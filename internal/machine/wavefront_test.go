package machine

import (
	"math"
	"testing"

	"doacross/internal/depgraph"
	"doacross/internal/sched"
)

// layeredGraph builds a graph of depth levels, each of the given width:
// iteration i depends on i-width (the iteration directly above it in the
// previous level), so the wavefront decomposition has exactly depth levels
// of exactly width members.
func layeredGraph(width, depth int) *depgraph.Graph {
	n := width * depth
	return depgraph.Build(depgraph.Access{
		N:      n,
		Writes: func(i int) []int { return []int{i} },
		Reads: func(i int) []int {
			if i < width {
				return nil
			}
			return []int{i - width}
		},
	})
}

// uniformWavefrontCost pairs a unit-work cost model with typical wavefront
// costs for the crossover tests.
func uniformWavefrontCost() (CostModel, WavefrontCosts) {
	cm := UniformCost(1.0, 0, 1, 0.5, 1.0, 0.25, 0.25)
	// UniformCost sets TermWork=0 with one read, so IterWork is the base
	// work alone; the doacross still pays CheckPerRead per read.
	return cm, WavefrontCosts{Barrier: 2.0, IterOverhead: 0.5}
}

// TestSimulateWavefrontCrossover is the headline property of the two
// execution models: wide, shallow level structures favor the barrier
// (amortized over many iterations per level), while long critical paths
// favor the doacross pipelining (one barrier per level with almost nothing
// to run between barriers).
func TestSimulateWavefrontCrossover(t *testing.T) {
	cm, wc := uniformWavefrontCost()
	cfg := Config{Processors: 16, Policy: sched.Cyclic}
	cases := []struct {
		name         string
		width, depth int
		wantWinner   ExecModel
	}{
		{"wide shallow", 256, 4, ModelWavefront},
		{"wide moderate", 128, 16, ModelWavefront},
		{"chain", 1, 512, ModelDoacross},
		{"narrow deep", 4, 256, ModelDoacross},
	}
	for _, tc := range cases {
		g := layeredGraph(tc.width, tc.depth)
		da, err := SimulateSchedule(g, ModelDoacross, cfg, cm, wc)
		if err != nil {
			t.Fatalf("%s: doacross: %v", tc.name, err)
		}
		wf, err := SimulateSchedule(g, ModelWavefront, cfg, cm, wc)
		if err != nil {
			t.Fatalf("%s: wavefront: %v", tc.name, err)
		}
		winner := ModelDoacross
		if wf.TPar < da.TPar {
			winner = ModelWavefront
		}
		if winner != tc.wantWinner {
			t.Errorf("%s (width %d depth %d): %v won (doacross %.1f vs wavefront %.1f), want %v",
				tc.name, tc.width, tc.depth, winner, da.TPar, wf.TPar, tc.wantWinner)
		}
		if wf.Levels != tc.depth {
			t.Errorf("%s: wavefront simulated %d levels, want %d", tc.name, wf.Levels, tc.depth)
		}
		if wf.WaitTime != 0 {
			t.Errorf("%s: wavefront model charged wait time %.1f", tc.name, wf.WaitTime)
		}
		if math.Abs(wf.BarrierTime-wc.Barrier*float64(tc.depth)) > 1e-9 {
			t.Errorf("%s: barrier time %.1f, want %.1f", tc.name, wf.BarrierTime, wc.Barrier*float64(tc.depth))
		}
		if wf.TSeq != da.TSeq {
			t.Errorf("%s: models disagree on T_seq: %.1f vs %.1f", tc.name, wf.TSeq, da.TSeq)
		}
	}
}

// TestSimulateWavefrontBarrierSweep pins monotonicity: for a fixed graph,
// raising only the barrier cost degrades the wavefront monotonically and
// eventually hands the win to the doacross, which does not depend on the
// barrier cost at all.
func TestSimulateWavefrontBarrierSweep(t *testing.T) {
	g := layeredGraph(32, 64)
	cm, wc := uniformWavefrontCost()
	cfg := Config{Processors: 16, Policy: sched.Cyclic}
	da, err := Simulate(g, cfg, cm)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	var winners []ExecModel
	for _, barrier := range []float64{0, 0.5, 2, 8, 32, 128} {
		wc.Barrier = barrier
		wf, err := SimulateWavefront(g, cfg, cm, wc)
		if err != nil {
			t.Fatal(err)
		}
		if wf.TPar < prev {
			t.Fatalf("barrier %.1f: wavefront time %.1f decreased below %.1f", barrier, wf.TPar, prev)
		}
		prev = wf.TPar
		if wf.TPar < da.TPar {
			winners = append(winners, ModelWavefront)
		} else {
			winners = append(winners, ModelDoacross)
		}
	}
	if winners[0] != ModelWavefront {
		t.Errorf("free barriers should favor the wavefront, got %v", winners[0])
	}
	if winners[len(winners)-1] != ModelDoacross {
		t.Errorf("extreme barriers should favor the doacross, got %v", winners[len(winners)-1])
	}
	for i := 1; i < len(winners); i++ {
		if winners[i-1] == ModelDoacross && winners[i] == ModelWavefront {
			t.Errorf("winner flipped back to wavefront as barriers got more expensive: %v", winners)
		}
	}
}

// TestSimulateLevelScheduleAccounting pins the arithmetic of the wavefront
// model on a hand-checkable schedule: 2 levels of 4 iterations on 2 workers,
// unit work, with explicit overhead, barrier and phase costs.
func TestSimulateLevelScheduleAccounting(t *testing.T) {
	members := []int32{0, 1, 2, 3, 4, 5, 6, 7}
	off := []int32{0, 4, 8}
	s := sched.NewLevelSchedule(members, off, sched.Block, 2)
	cm := CostModel{
		BaseWork:     func(int) float64 { return 1.0 },
		ReadsPerIter: func(int) int { return 0 },
		PrePerIter:   0.5,
		PostPerIter:  0.25,
	}
	wc := WavefrontCosts{Barrier: 3.0, IterOverhead: 0.5}
	res, err := SimulateLevelSchedule(s, Config{Processors: 2}, cm, wc)
	if err != nil {
		t.Fatal(err)
	}
	// Per level: 2 workers × 2 iterations × (1 + 0.5) = 3.0 elapsed, plus
	// the barrier; pre = ceil(8/2)*0.5 = 2, post = ceil(8/2)*0.25 = 1.
	wantExec := 2 * (3.0 + 3.0)
	if math.Abs(res.ExecTime-wantExec) > 1e-9 {
		t.Errorf("exec time %.2f, want %.2f", res.ExecTime, wantExec)
	}
	if math.Abs(res.PreTime-2.0) > 1e-9 || math.Abs(res.PostTime-1.0) > 1e-9 {
		t.Errorf("phase times pre=%.2f post=%.2f, want 2.00/1.00", res.PreTime, res.PostTime)
	}
	if math.Abs(res.TPar-(wantExec+3.0)) > 1e-9 {
		t.Errorf("TPar %.2f, want %.2f", res.TPar, wantExec+3.0)
	}
	if math.Abs(res.TSeq-8.0) > 1e-9 {
		t.Errorf("TSeq %.2f, want 8.00", res.TSeq)
	}
	if res.Levels != 2 || math.Abs(res.BarrierTime-6.0) > 1e-9 {
		t.Errorf("levels=%d barrierTime=%.2f, want 2/6.00", res.Levels, res.BarrierTime)
	}
	// SkipOverheads strips barriers, iteration overhead and both phases:
	// the ideal level-parallel execution.
	ideal, err := SimulateLevelSchedule(s, Config{Processors: 2, SkipOverheads: true}, cm, wc)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ideal.TPar-4.0) > 1e-9 {
		t.Errorf("ideal TPar %.2f, want 4.00", ideal.TPar)
	}
	// SkipInspector alone models the warm run: only the pre phase vanishes.
	warm, err := SimulateLevelSchedule(s, Config{Processors: 2, SkipInspector: true}, cm, wc)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(warm.TPar-(wantExec+1.0)) > 1e-9 {
		t.Errorf("warm TPar %.2f, want %.2f", warm.TPar, wantExec+1.0)
	}
}

// TestSimulateWavefrontValidation pins the error paths: an explicit order,
// a processorless config, and an empty cost model are all rejected, and the
// unknown-model dispatch fails.
func TestSimulateWavefrontValidation(t *testing.T) {
	g := layeredGraph(2, 2)
	cm, wc := uniformWavefrontCost()
	if _, err := SimulateWavefront(g, Config{Processors: 4, Order: []int{0, 1, 2, 3}}, cm, wc); err == nil {
		t.Error("explicit order accepted")
	}
	if _, err := SimulateWavefront(g, Config{}, cm, wc); err == nil {
		t.Error("zero processors accepted")
	}
	if _, err := SimulateWavefront(g, Config{Processors: 4}, CostModel{}, wc); err == nil {
		t.Error("empty cost model accepted")
	}
	if _, err := SimulateSchedule(g, ExecModel(9), Config{Processors: 4}, cm, wc); err == nil {
		t.Error("unknown exec model accepted")
	}
	if ModelDoacross.String() != "doacross" || ModelWavefront.String() != "wavefront" {
		t.Error("model names wrong")
	}
}
