// Package export serializes wavefront plans — the artifact the inspector
// builds and the runtime's schedule cache retains — to a versioned,
// deterministic JSON document and to Graphviz DOT. It is the observability
// counterpart of the schedule cache: a plan becomes a file that can be
// committed, diffed between runs, fed to doastat, or (eventually) shipped to
// another process as the wire format of a distributed shard.
//
// Both encoders are byte-deterministic: encoding a snapshot of the same plan
// twice, or snapshots taken from two independently-built runtimes over the
// same loop, yields identical bytes. JSON field order is fixed by the Doc
// struct, every slice is emitted in a canonical order (iterations ascending,
// levels ascending, workers ascending), and no map, timestamp or
// host-dependent value appears anywhere in the document.
//
// The document carries a schema version (Doc.Schema, currently
// SchemaVersion): decoders reject documents from a different schema rather
// than guessing, so the format can evolve without silently misreading old
// files.
package export

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"doacross/internal/core"
	"doacross/internal/depgraph"
	"doacross/internal/sched"
)

// SchemaVersion is the plan document schema this package reads and writes.
// Version 1 covers the writer index, predecessor lists, level decomposition,
// static schedule and inspection statistics of one wavefront plan.
const SchemaVersion = 1

// Doc is the versioned JSON plan document. Field order here is the byte
// order of the encoded document; do not reorder fields without bumping
// SchemaVersion.
type Doc struct {
	// Schema is the document's schema version (SchemaVersion).
	Schema int `json:"schema"`
	// Name labels the plan (a loop or problem name); it feeds the DOT graph
	// title and is otherwise free-form.
	Name string `json:"name"`
	// Iterations and Data are the loop's dimensions.
	Iterations int `json:"iterations"`
	Data       int `json:"data"`
	// Workers is the schedule worker count the plan was built for.
	Workers int `json:"workers"`
	// Writer is the dense writer index: Writer[e] is the iteration writing
	// element e, -1 if none.
	Writer []int32 `json:"writer"`
	// Preds holds each iteration's true-dependency predecessors.
	Preds [][]int32 `json:"preds"`
	// Levels is the wavefront decomposition in CSR form.
	Levels LevelsDoc `json:"levels"`
	// Schedule is the level-sorted static schedule; omitted when the plan
	// never materialized one.
	Schedule *ScheduleDoc `json:"schedule,omitempty"`
	// Stats are the plan's inspection statistics.
	Stats StatsDoc `json:"stats"`
}

// LevelsDoc is the level decomposition: level l's iterations are
// Members[Off[l]:Off[l+1]], ascending; len(Off) is the level count plus one.
type LevelsDoc struct {
	Members []int32 `json:"members"`
	Off     []int32 `json:"off"`
}

// ScheduleDoc is the static schedule: Items[l][w] lists the iterations worker
// w executes in level l, in execution order. Policy records how levels were
// distributed ("block" or "cyclic" — a Dynamic runtime policy has no static
// materialization and degrades to cyclic before export).
type ScheduleDoc struct {
	Policy  string      `json:"policy"`
	Workers int         `json:"workers"`
	Items   [][][]int32 `json:"items"`
}

// StatsDoc mirrors core.InspectStats field for field; see that type for the
// semantics of each statistic.
type StatsDoc struct {
	Iterations      int     `json:"iterations"`
	Edges           int     `json:"edges"`
	StallWeight     float64 `json:"stallWeight"`
	Levels          int     `json:"levels"`
	MaxLevelWidth   int     `json:"maxLevelWidth"`
	MeanLevelWidth  float64 `json:"meanLevelWidth"`
	CriticalPathLen int     `json:"criticalPathLen"`
	ScheduleRounds  int     `json:"scheduleRounds"`
	ReadImbalance   float64 `json:"readImbalance"`
	DynamicClaims   int     `json:"dynamicClaims"`
}

// FromSnapshot converts a plan snapshot into its document form. Nil inner
// slices are normalized to empty ones so the encoding is identical no matter
// how the snapshot was produced.
func FromSnapshot(name string, s *core.PlanSnapshot) *Doc {
	preds := make([][]int32, len(s.Preds))
	for i, ps := range s.Preds {
		preds[i] = emptyNotNil(ps)
	}
	d := &Doc{
		Schema:     SchemaVersion,
		Name:       name,
		Iterations: s.Iterations,
		Data:       s.Data,
		Workers:    s.Workers,
		Writer:     emptyNotNil(s.Writer),
		Preds:      preds,
		Levels: LevelsDoc{
			Members: emptyNotNil(s.Levels.Members),
			Off:     emptyNotNil(s.Levels.Off),
		},
		Stats: statsDoc(s.Stats),
	}
	if s.Schedule != nil {
		d.Schedule = scheduleDoc(s.Schedule)
	}
	return d
}

// emptyNotNil maps a nil slice to an empty one so it encodes as [] and not
// null.
func emptyNotNil(s []int32) []int32 {
	if s == nil {
		return []int32{}
	}
	return s
}

// InspectStats converts the document statistics back to their runtime form
// (CacheHit, a property of a live lookup, stays false).
func (s StatsDoc) InspectStats() core.InspectStats {
	return core.InspectStats{
		Iterations:      s.Iterations,
		Edges:           s.Edges,
		StallWeight:     s.StallWeight,
		Levels:          s.Levels,
		MaxLevelWidth:   s.MaxLevelWidth,
		MeanLevelWidth:  s.MeanLevelWidth,
		CriticalPathLen: s.CriticalPathLen,
		ScheduleRounds:  s.ScheduleRounds,
		ReadImbalance:   s.ReadImbalance,
		DynamicClaims:   s.DynamicClaims,
	}
}

func statsDoc(st core.InspectStats) StatsDoc {
	return StatsDoc{
		Iterations:      st.Iterations,
		Edges:           st.Edges,
		StallWeight:     st.StallWeight,
		Levels:          st.Levels,
		MaxLevelWidth:   st.MaxLevelWidth,
		MeanLevelWidth:  st.MeanLevelWidth,
		CriticalPathLen: st.CriticalPathLen,
		ScheduleRounds:  st.ScheduleRounds,
		ReadImbalance:   st.ReadImbalance,
		DynamicClaims:   st.DynamicClaims,
	}
}

func scheduleDoc(s *sched.LevelSchedule) *ScheduleDoc {
	items := make([][][]int32, s.Levels())
	for l := range items {
		items[l] = make([][]int32, s.Workers())
		for w := range items[l] {
			items[l][w] = append([]int32{}, s.Items(l, w)...)
		}
	}
	return &ScheduleDoc{
		Policy:  s.PolicyUsed.String(),
		Workers: s.Workers(),
		Items:   items,
	}
}

// EncodeJSON writes the document as indented JSON with a trailing newline.
// The output is byte-deterministic for structurally equal documents.
func EncodeJSON(w io.Writer, d *Doc) error {
	buf, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// DecodeJSON reads a plan document, rejecting unknown schema versions and
// structurally invalid documents.
func DecodeJSON(r io.Reader) (*Doc, error) {
	var d Doc
	dec := json.NewDecoder(r)
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("export: decoding plan document: %w", err)
	}
	if d.Schema != SchemaVersion {
		return nil, fmt.Errorf("export: plan document schema %d, this build reads schema %d", d.Schema, SchemaVersion)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Validate checks the document's structural invariants: dimensions agree,
// the writer index and predecessor lists stay in range, the level
// decomposition covers every iteration exactly once in monotone CSR form,
// and every dependency crosses levels forward. A document that validates can
// be rebuilt into a plan snapshot (see Snapshot).
func (d *Doc) Validate() error {
	if d.Iterations < 0 || d.Data < 0 {
		return fmt.Errorf("export: negative dimensions (iterations=%d data=%d)", d.Iterations, d.Data)
	}
	if len(d.Writer) != d.Data {
		return fmt.Errorf("export: writer index has %d entries for data length %d", len(d.Writer), d.Data)
	}
	for e, w := range d.Writer {
		if w < -1 || int(w) >= d.Iterations {
			return fmt.Errorf("export: writer[%d] = %d out of range [-1, %d)", e, w, d.Iterations)
		}
	}
	if len(d.Preds) != d.Iterations {
		return fmt.Errorf("export: %d predecessor lists for %d iterations", len(d.Preds), d.Iterations)
	}
	level, err := d.levelOf()
	if err != nil {
		return err
	}
	for i, ps := range d.Preds {
		for _, p := range ps {
			if p < 0 || int(p) >= i {
				return fmt.Errorf("export: iteration %d has predecessor %d outside [0, %d)", i, p, i)
			}
			if level[p] >= level[i] {
				return fmt.Errorf("export: dependency %d -> %d does not cross levels forward (%d >= %d)", p, i, level[p], level[i])
			}
		}
	}
	if d.Schedule != nil {
		if _, err := parsePolicy(d.Schedule.Policy); err != nil {
			return err
		}
		if d.Schedule.Workers < 1 {
			return fmt.Errorf("export: schedule worker count %d", d.Schedule.Workers)
		}
		if len(d.Schedule.Items) != len(d.Levels.Off)-1 {
			return fmt.Errorf("export: schedule has %d levels, decomposition %d", len(d.Schedule.Items), len(d.Levels.Off)-1)
		}
		for l, ws := range d.Schedule.Items {
			if len(ws) != d.Schedule.Workers {
				return fmt.Errorf("export: schedule level %d has %d worker lists for %d workers", l, len(ws), d.Schedule.Workers)
			}
		}
	}
	if d.Stats.Iterations != d.Iterations {
		return fmt.Errorf("export: stats cover %d iterations, document %d", d.Stats.Iterations, d.Iterations)
	}
	return nil
}

// levelOf validates the CSR decomposition and returns each iteration's level.
func (d *Doc) levelOf() ([]int32, error) {
	off := d.Levels.Off
	if len(off) < 1 || off[0] != 0 || int(off[len(off)-1]) != len(d.Levels.Members) {
		return nil, fmt.Errorf("export: level offsets do not span the member list")
	}
	if len(d.Levels.Members) != d.Iterations {
		return nil, fmt.Errorf("export: decomposition covers %d of %d iterations", len(d.Levels.Members), d.Iterations)
	}
	level := make([]int32, d.Iterations)
	for i := range level {
		level[i] = -1
	}
	for l := 0; l+1 < len(off); l++ {
		if off[l+1] < off[l] {
			return nil, fmt.Errorf("export: level offsets not monotone at level %d", l)
		}
		for _, m := range d.Levels.Members[off[l]:off[l+1]] {
			if m < 0 || int(m) >= d.Iterations {
				return nil, fmt.Errorf("export: level %d member %d out of range [0, %d)", l, m, d.Iterations)
			}
			if level[m] >= 0 {
				return nil, fmt.Errorf("export: iteration %d appears in levels %d and %d", m, level[m], l)
			}
			level[m] = int32(l)
		}
	}
	for i, l := range level {
		if l < 0 {
			return nil, fmt.Errorf("export: iteration %d missing from the decomposition", i)
		}
	}
	return level, nil
}

// parsePolicy inverts sched.Policy.String for the policies a static schedule
// can record.
func parsePolicy(s string) (sched.Policy, error) {
	switch s {
	case "block":
		return sched.Block, nil
	case "cyclic":
		return sched.Cyclic, nil
	case "dynamic":
		return sched.Dynamic, nil
	default:
		return 0, fmt.Errorf("export: unknown schedule policy %q", s)
	}
}

// Snapshot rebuilds the plan snapshot the document describes. The document
// is validated first; when it carries a schedule, the schedule is rebuilt
// from the decomposition under the recorded policy and checked item-for-item
// against the recorded assignments, so a document whose schedule was edited
// out of sync with its levels is rejected rather than silently replayed —
// the wire format is self-checking.
func (d *Doc) Snapshot() (*core.PlanSnapshot, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	level, err := d.levelOf()
	if err != nil {
		return nil, err
	}
	s := &core.PlanSnapshot{
		Iterations: d.Iterations,
		Data:       d.Data,
		Workers:    d.Workers,
		Writer:     append([]int32(nil), d.Writer...),
		Preds:      make([][]int32, len(d.Preds)),
		Levels: depgraph.LevelSet{
			Level:   level,
			Members: append([]int32(nil), d.Levels.Members...),
			Off:     append([]int32(nil), d.Levels.Off...),
		},
		Stats: d.Stats.InspectStats(),
	}
	for i, ps := range d.Preds {
		s.Preds[i] = append([]int32(nil), ps...)
	}
	if d.Schedule != nil {
		policy, err := parsePolicy(d.Schedule.Policy)
		if err != nil {
			return nil, err
		}
		s.Policy = policy
		rebuilt := sched.NewLevelSchedule(d.Levels.Members, d.Levels.Off, policy, d.Schedule.Workers)
		for l, ws := range d.Schedule.Items {
			for w, items := range ws {
				got := rebuilt.Items(l, w)
				if len(got) != len(items) {
					return nil, fmt.Errorf("export: schedule level %d worker %d records %d items, decomposition yields %d", l, w, len(items), len(got))
				}
				for k := range items {
					if got[k] != items[k] {
						return nil, fmt.Errorf("export: schedule level %d worker %d item %d is %d, decomposition yields %d", l, w, k, items[k], got[k])
					}
				}
			}
		}
		s.Schedule = rebuilt
	}
	return s, nil
}

// DOT renders the document's dependency graph in Graphviz DOT, iterations
// grouped by wavefront level in rank=same clusters — the shape of
// depgraph.Graph.DOT, derived from the exported decomposition instead of a
// live graph. Node and edge order is canonical (levels ascending, members
// ascending, consumers ascending then producers in recorded order), so the
// output is byte-deterministic and diffable. Intended for small graphs.
func (d *Doc) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=circle];\n", d.Name)
	for l := 0; l+1 < len(d.Levels.Off); l++ {
		fmt.Fprintf(&b, "  { rank=same;")
		for _, m := range d.Levels.Members[d.Levels.Off[l]:d.Levels.Off[l+1]] {
			fmt.Fprintf(&b, " i%d;", m)
		}
		fmt.Fprintf(&b, " } // level %d\n", l)
	}
	for i, ps := range d.Preds {
		for _, p := range ps {
			fmt.Fprintf(&b, "  i%d -> i%d;\n", p, i)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
