package export

import (
	"bytes"
	"math/rand"
	"testing"

	"doacross/internal/core"
)

// randomLoop builds a random DAG-shaped loop: iteration i writes element i
// and reads a random subset of earlier elements, so the true-dependency graph
// is a random DAG with edges pointing forward. The closures capture their own
// copy of the read lists, so two calls with the same seed build structurally
// identical but independent loops.
func randomLoop(seed int64, n int) *core.Loop {
	rng := rand.New(rand.NewSource(seed))
	reads := make([][]int, n)
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			if rng.Intn(4) == 0 {
				reads[i] = append(reads[i], j)
			}
		}
	}
	return &core.Loop{
		N:      n,
		Data:   n,
		Writes: func(i int) []int { return []int{i} },
		Reads:  func(i int) []int { return reads[i] },
		Body: func(i int, v *core.Values) {
			for _, j := range reads[i] {
				v.Load(j)
			}
			v.Store(i, float64(i))
		},
	}
}

// snapshot resolves the loop's plan through a throwaway wavefront runtime.
func snapshot(t *testing.T, l *core.Loop, workers int) *core.PlanSnapshot {
	t.Helper()
	rt := core.NewRuntime(l.Data, core.Options{Workers: workers, Executor: core.ExecWavefront})
	defer rt.Close()
	s, err := rt.PlanSnapshot(l)
	if err != nil {
		t.Fatalf("PlanSnapshot: %v", err)
	}
	return s
}

// equalSnapshots compares every structural field of two snapshots.
// Stats.CacheHit is excluded: it describes the lookup, not the plan, and the
// wire format deliberately does not carry it.
func equalSnapshots(t *testing.T, a, b *core.PlanSnapshot) {
	t.Helper()
	if a.Iterations != b.Iterations || a.Data != b.Data || a.Workers != b.Workers {
		t.Fatalf("dimensions differ: %d/%d/%d vs %d/%d/%d", a.Iterations, a.Data, a.Workers, b.Iterations, b.Data, b.Workers)
	}
	if !equalInt32(a.Writer, b.Writer) {
		t.Errorf("writer index differs")
	}
	if len(a.Preds) != len(b.Preds) {
		t.Fatalf("pred list counts differ: %d vs %d", len(a.Preds), len(b.Preds))
	}
	for i := range a.Preds {
		if !equalInt32(a.Preds[i], b.Preds[i]) {
			t.Errorf("preds[%d] differ: %v vs %v", i, a.Preds[i], b.Preds[i])
		}
	}
	if !equalInt32(a.Levels.Level, b.Levels.Level) || !equalInt32(a.Levels.Members, b.Levels.Members) || !equalInt32(a.Levels.Off, b.Levels.Off) {
		t.Errorf("level decompositions differ")
	}
	if (a.Schedule == nil) != (b.Schedule == nil) {
		t.Fatalf("one snapshot has a schedule, the other does not")
	}
	if a.Schedule != nil {
		if a.Schedule.Levels() != b.Schedule.Levels() || a.Schedule.Workers() != b.Schedule.Workers() {
			t.Fatalf("schedule shapes differ")
		}
		if a.Schedule.PolicyUsed != b.Schedule.PolicyUsed {
			t.Errorf("schedule policies differ: %v vs %v", a.Schedule.PolicyUsed, b.Schedule.PolicyUsed)
		}
		for l := 0; l < a.Schedule.Levels(); l++ {
			for w := 0; w < a.Schedule.Workers(); w++ {
				if !equalInt32(a.Schedule.Items(l, w), b.Schedule.Items(l, w)) {
					t.Errorf("schedule items differ at level %d worker %d", l, w)
				}
			}
		}
	}
	if a.Policy != b.Policy {
		t.Errorf("policies differ: %v vs %v", a.Policy, b.Policy)
	}
	sa, sb := a.Stats, b.Stats
	sa.CacheHit, sb.CacheHit = false, false
	if sa != sb {
		t.Errorf("stats differ: %+v vs %+v", sa, sb)
	}
}

func equalInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRoundTripRandomDAGs is the property test: a plan snapshot of a random
// DAG survives export → JSON → decode → Snapshot structurally unchanged, for
// a spread of sizes, densities and worker counts.
func TestRoundTripRandomDAGs(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		n := 5 + int(seed)*7
		workers := 1 + int(seed)%5
		l := randomLoop(seed, n)
		orig := snapshot(t, l, workers)
		doc := FromSnapshot("random", orig)

		var buf bytes.Buffer
		if err := EncodeJSON(&buf, doc); err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		decoded, err := DecodeJSON(&buf)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		back, err := decoded.Snapshot()
		if err != nil {
			t.Fatalf("seed %d: rebuild: %v", seed, err)
		}
		equalSnapshots(t, orig, back)
	}
}

// TestEncodeDeterministic demands identical bytes from (a) encoding the same
// document twice and (b) encoding snapshots taken from two independently
// built runtimes over structurally identical loops — the guarantee that makes
// exported plans diffable and committable as goldens.
func TestEncodeDeterministic(t *testing.T) {
	const seed, n, workers = 3, 40, 4
	encode := func() []byte {
		s := snapshot(t, randomLoop(seed, n), workers)
		var buf bytes.Buffer
		if err := EncodeJSON(&buf, FromSnapshot("det", s)); err != nil {
			t.Fatalf("encode: %v", err)
		}
		return buf.Bytes()
	}
	first := encode()

	var again bytes.Buffer
	s := snapshot(t, randomLoop(seed, n), workers)
	d := FromSnapshot("det", s)
	if err := EncodeJSON(&again, d); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var repeat bytes.Buffer
	if err := EncodeJSON(&repeat, d); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if !bytes.Equal(again.Bytes(), repeat.Bytes()) {
		t.Error("encoding the same document twice produced different bytes")
	}
	if !bytes.Equal(first, again.Bytes()) {
		t.Error("snapshots from two independently built runtimes encoded differently")
	}
}

// TestSnapshotIsolation verifies the snapshot is a deep copy: scribbling over
// every slice of a returned snapshot must not disturb a second snapshot of
// the same cached plan.
func TestSnapshotIsolation(t *testing.T) {
	l := randomLoop(5, 30)
	rt := core.NewRuntime(l.Data, core.Options{Workers: 3, Executor: core.ExecWavefront})
	defer rt.Close()
	first, err := rt.PlanSnapshot(l)
	if err != nil {
		t.Fatal(err)
	}
	var pristine bytes.Buffer
	if err := EncodeJSON(&pristine, FromSnapshot("iso", first)); err != nil {
		t.Fatal(err)
	}
	for i := range first.Writer {
		first.Writer[i] = -1
	}
	for _, ps := range first.Preds {
		for i := range ps {
			ps[i] = 0
		}
	}
	for i := range first.Levels.Members {
		first.Levels.Members[i] = 0
	}
	second, err := rt.PlanSnapshot(l)
	if err != nil {
		t.Fatal(err)
	}
	var after bytes.Buffer
	if err := EncodeJSON(&after, FromSnapshot("iso", second)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pristine.Bytes(), after.Bytes()) {
		t.Error("mutating a snapshot leaked into the cached plan")
	}
}

// TestDecodeRejects pins the defensive side of the wire format: schema
// mismatches and structural corruption fail loudly at decode, and a schedule
// edited out of sync with its decomposition fails at Snapshot (the
// self-checking property).
func TestDecodeRejects(t *testing.T) {
	base := func() *Doc { return FromSnapshot("bad", snapshot(t, randomLoop(7, 20), 3)) }

	reencode := func(d *Doc) ([]byte, error) {
		var buf bytes.Buffer
		err := EncodeJSON(&buf, d)
		return buf.Bytes(), err
	}

	t.Run("schema", func(t *testing.T) {
		d := base()
		d.Schema = SchemaVersion + 1
		raw, err := reencode(d)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeJSON(bytes.NewReader(raw)); err == nil {
			t.Error("future schema accepted")
		}
	})
	t.Run("garbage", func(t *testing.T) {
		if _, err := DecodeJSON(bytes.NewReader([]byte("%%MatrixMarket not json"))); err == nil {
			t.Error("non-JSON input accepted")
		}
	})
	t.Run("writer-range", func(t *testing.T) {
		d := base()
		d.Writer[0] = int32(d.Iterations)
		if err := d.Validate(); err == nil {
			t.Error("out-of-range writer accepted")
		}
	})
	t.Run("backward-pred", func(t *testing.T) {
		d := base()
		// Point some iteration at itself: never a valid predecessor.
		for i := range d.Preds {
			if len(d.Preds[i]) > 0 {
				d.Preds[i][0] = int32(i)
				break
			}
		}
		if err := d.Validate(); err == nil {
			t.Error("self-dependency accepted")
		}
	})
	t.Run("duplicate-member", func(t *testing.T) {
		d := base()
		if len(d.Levels.Members) < 2 {
			t.Skip("decomposition too small")
		}
		d.Levels.Members[1] = d.Levels.Members[0]
		if err := d.Validate(); err == nil {
			t.Error("duplicated level member accepted")
		}
	})
	t.Run("stats-mismatch", func(t *testing.T) {
		d := base()
		d.Stats.Iterations++
		if err := d.Validate(); err == nil {
			t.Error("stats/document iteration mismatch accepted")
		}
	})
	t.Run("bad-policy", func(t *testing.T) {
		d := base()
		if d.Schedule == nil {
			t.Fatal("expected a schedule")
		}
		d.Schedule.Policy = "guided"
		if err := d.Validate(); err == nil {
			t.Error("unknown policy accepted")
		}
	})
	t.Run("edited-schedule", func(t *testing.T) {
		d := base()
		if d.Schedule == nil {
			t.Fatal("expected a schedule")
		}
		// Swap two workers' assignments in the widest level: the document
		// still validates shape-wise, but Snapshot's rebuild-and-compare
		// must notice the schedule no longer matches the decomposition.
		swapped := false
		for l := range d.Schedule.Items {
			ws := d.Schedule.Items[l]
			for w := 1; w < len(ws); w++ {
				if len(ws[0]) != len(ws[w]) || !equalInt32(ws[0], ws[w]) {
					ws[0], ws[w] = ws[w], ws[0]
					swapped = true
					break
				}
			}
			if swapped {
				break
			}
		}
		if !swapped {
			t.Skip("no asymmetric level to swap")
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("shape validation should still pass: %v", err)
		}
		if _, err := d.Snapshot(); err == nil {
			t.Error("edited schedule replayed silently")
		}
	})
}

// TestDOTDeterministic pins that rendering the same document twice (and a
// document rebuilt from its own JSON) yields identical DOT bytes.
func TestDOTDeterministic(t *testing.T) {
	d := FromSnapshot("dot", snapshot(t, randomLoop(11, 25), 2))
	first := d.DOT()
	if second := d.DOT(); first != second {
		t.Error("two renders of one document differ")
	}
	var buf bytes.Buffer
	if err := EncodeJSON(&buf, d); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.DOT() != first {
		t.Error("DOT differs after a JSON round trip")
	}
}
