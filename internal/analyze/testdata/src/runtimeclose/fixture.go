// Fixtures for the runtimeclose analyzer: runtimes and solvers own a
// persistent worker pool and must be closed by whoever keeps them.
package fixture

import (
	"context"
	"time"

	"doacross"
)

// flaggedRuntime: created, used, never closed, never handed out.
func flaggedRuntime(y []float64) int {
	rt, err := doacross.New(len(y)) // want `result "rt" is never closed`
	if err != nil {
		return 0
	}
	return rt.Workers()
}

// flaggedSolver: solvers own a runtime too.
func flaggedSolver(t *doacross.Triangular, rhs []float64) ([]float64, error) {
	s, err := doacross.NewSolver(t) // want `result "s" is never closed`
	if err != nil {
		return nil, err
	}
	y, _, err := s.Solve(rhs, make([]float64, t.N))
	return y, err
}

// cleanErrorProbe: discarding the handle into the blank identifier is the
// idiomatic construction-error probe — there is nothing to close when the
// caller asserts the constructor failed.
func cleanErrorProbe() bool {
	_, err := doacross.New(-1)
	return err != nil
}

// cleanDefer: the canonical shape.
func cleanDefer(y []float64) int {
	rt, err := doacross.New(len(y))
	if err != nil {
		return 0
	}
	defer rt.Close()
	return rt.Workers()
}

// cleanClosureClose: Close inside a deferred closure still counts.
func cleanClosureClose(y []float64) int {
	rt, err := doacross.New(len(y))
	if err != nil {
		return 0
	}
	defer func() { rt.Close() }()
	return rt.Workers()
}

// cleanReturned: ownership moves to the caller.
func cleanReturned(n int) (*doacross.Runtime, error) {
	rt, err := doacross.New(n)
	if err != nil {
		return nil, err
	}
	return rt, nil
}

// cleanPassed: ownership handed to another function.
func cleanPassed(n int) {
	rt, err := doacross.New(n)
	if err != nil {
		return
	}
	closeLater(rt)
}

func closeLater(rt *doacross.Runtime) { rt.Close() }

type server struct{ rt *doacross.Runtime }

// cleanStored: stashed in a struct; lifetime belongs to the struct.
func cleanStored(n int) *server {
	rt, err := doacross.New(n)
	if err != nil {
		return nil
	}
	return &server{rt: rt}
}

// cleanReorderedSolverClosed: the reordered constructor follows the same
// contract.
func cleanReorderedSolverClosed(t *doacross.Triangular, rhs []float64) ([]float64, error) {
	s, err := doacross.NewReorderedSolver(t, doacross.ReorderLevel)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	y, _, err := s.Solve(rhs, make([]float64, t.N))
	return y, err
}

// flaggedService: a solve service owns a dispatcher goroutine on top of the
// solver's pool; leaking it is worse than leaking a runtime (no finalizer).
func flaggedService(s *doacross.Solver, rhs []float64) ([]float64, error) {
	svc, err := doacross.NewSolveService(s, doacross.ServeOptions{}) // want `result "svc" is never closed`
	if err != nil {
		return nil, err
	}
	return svc.Solve(context.Background(), rhs)
}

// cleanServiceDefer: the canonical serving shape.
func cleanServiceDefer(s *doacross.Solver, rhs []float64) ([]float64, error) {
	svc, err := doacross.NewSolveService(s, doacross.ServeOptions{})
	if err != nil {
		return nil, err
	}
	defer svc.Close()
	return svc.Solve(context.Background(), rhs)
}

// cleanServiceReturned: ownership of the front end moves to the caller.
func cleanServiceReturned(s *doacross.Solver) (*doacross.SolveService, error) {
	svc, err := doacross.NewSolveService(s, doacross.ServeOptions{Window: time.Millisecond})
	if err != nil {
		return nil, err
	}
	return svc, nil
}
