// Fixtures for the bodycapture analyzer: loop bodies must route every
// shared-state access through Values; writes to captured variables are
// flagged wherever the body closure reaches the runtime (builder call,
// composite literal, field assignment).
package fixture

import "doacross"

// flaggedAccumulator: the classic misuse — a reduction into a captured
// accumulator races between concurrent iterations.
func flaggedAccumulator(n int) float64 {
	sum := 0.0
	l, _ := doacross.NewLoop(n, n).
		Writes(func(i int) []int { return []int{i} }).
		Body(func(i int, v *doacross.Values) {
			sum += v.Load(i) // want `updates captured variable "sum"`
			v.Store(i, 1)
		}).
		Build()
	_ = l
	return sum
}

// flaggedSliceWrite: writing a captured slice element bypasses the renaming
// buffer entirely.
func flaggedSliceWrite(n int, out []float64) {
	l, _ := doacross.NewLoop(n, n).
		Writes(func(i int) []int { return []int{i} }).
		BodyErr(func(i int, v *doacross.Values) error {
			out[i] = v.Load(i) // want `writes captured variable "out"`
			return nil
		}).
		Build()
	_ = l
}

type state struct{ hits int }

// flaggedCompositeLit: Body supplied through a Loop literal, writing a field
// of a captured struct pointer.
func flaggedCompositeLit(n int, st *state) doacross.Loop {
	return doacross.Loop{
		N:      n,
		Data:   n,
		Writes: func(i int) []int { return []int{i} },
		Body: func(i int, v *doacross.Values) {
			st.hits++ // want `updates captured variable "st"`
			v.Store(i, 0)
		},
	}
}

// flaggedFieldAssign: Body installed by assigning the Loop field directly.
func flaggedFieldAssign(n int) doacross.Loop {
	var l doacross.Loop
	l.N = n
	l.Data = n
	l.Writes = func(i int) []int { return []int{i} }
	count := 0
	l.Body = func(i int, v *doacross.Values) {
		count++ // want `updates captured variable "count"`
		v.Store(i, float64(count))
	}
	return l
}

// cleanBody: all shared-state access goes through Values; locals and reads of
// captured slices are fine.
func cleanBody(n int, weights []float64) doacross.Loop {
	return doacross.Loop{
		N:      n,
		Data:   n,
		Writes: func(i int) []int { return []int{i} },
		Body: func(i int, v *doacross.Values) {
			acc := 0.0
			for k := 0; k < 3; k++ {
				acc += weights[k] * v.Load(i)
			}
			v.Store(i, acc)
		},
	}
}

// cleanNestedLocal: a nested closure writing a variable declared inside the
// body is not a capture of the enclosing scope.
func cleanNestedLocal(n int) doacross.Loop {
	return doacross.Loop{
		N:      n,
		Data:   n,
		Writes: func(i int) []int { return []int{i} },
		Body: func(i int, v *doacross.Values) {
			local := 0.0
			add := func(x float64) { local += x }
			add(v.Load(i))
			v.Store(i, local)
		},
	}
}

// suppressed: deliberate misuse acknowledged with //doavet:ignore (the shape
// the sanitizer's own negative tests use).
func suppressed(n int) float64 {
	total := 0.0
	l := doacross.Loop{
		N:      n,
		Data:   n,
		Writes: func(i int) []int { return []int{i} },
		Body: func(i int, v *doacross.Values) {
			total += v.Load(i) //doavet:ignore bodycapture -- sequential reduction by design
			v.Store(i, 0)
		},
	}
	_ = l
	return total
}
