// Fixtures for the staleplan analyzer: index slices captured by Writes/Reads
// feed the schedule cache's structural hash; mutating one in place without
// InvalidatePlans or RepairPlans replays a stale wavefront plan.
package fixture

import (
	"context"

	"doacross"
)

func buildLoop(col []int) (*doacross.Loop, error) {
	n := len(col)
	return doacross.NewLoop(n, n).
		Writes(func(i int) []int { return []int{col[i]} }).
		Reads(func(i int) []int { return nil }).
		Body(func(i int, v *doacross.Values) { v.Store(col[i], 0) }).
		Build()
}

// flaggedElementWrite: mutating the captured writer-index slice between runs
// without invalidating the plan.
func flaggedElementWrite(rt *doacross.Runtime, col []int, y []float64) error {
	n := len(col)
	l, err := doacross.NewLoop(n, n).
		Writes(func(i int) []int { return []int{col[i]} }).
		Body(func(i int, v *doacross.Values) { v.Store(col[i], 0) }).
		Build()
	if err != nil {
		return err
	}
	if _, err := rt.Run(context.Background(), l, y); err != nil {
		return err
	}
	col[0] = 3 // want `index slice "col" is captured by a loop's Writes/Reads and mutated here`
	_, err = rt.Run(context.Background(), l, y)
	return err
}

// flaggedCopy: bulk overwrite through copy is a mutation too.
func flaggedCopy(rt *doacross.Runtime, col, next []int, y []float64) error {
	n := len(col)
	l, err := doacross.NewLoop(n, n).
		Writes(func(i int) []int { return []int{col[i]} }).
		Body(func(i int, v *doacross.Values) { v.Store(col[i], 0) }).
		Build()
	if err != nil {
		return err
	}
	if _, err := rt.Run(context.Background(), l, y); err != nil {
		return err
	}
	copy(col, next) // want `index slice "col"`
	_, err = rt.Run(context.Background(), l, y)
	return err
}

// flaggedAppend: growth through append can mutate in place when capacity
// allows.
func flaggedAppend(rt *doacross.Runtime, reads []int, y []float64) {
	l := doacross.Loop{
		N:      len(y),
		Data:   len(y),
		Writes: func(i int) []int { return []int{i} },
		Reads:  func(i int) []int { return reads },
		Body:   func(i int, v *doacross.Values) { v.Store(i, 0) },
	}
	_, _ = rt.Run(context.Background(), &l, y)
	reads = append(reads, 7) // want `index slice "reads"`
	_, _ = rt.Run(context.Background(), &l, y)
}

// cleanInvalidated: the mutation is followed by InvalidatePlans, the
// documented discipline.
func cleanInvalidated(rt *doacross.Runtime, col []int, y []float64) error {
	l, err := buildLoop(col)
	if err != nil {
		return err
	}
	if _, err := rt.Run(context.Background(), l, y); err != nil {
		return err
	}
	col[0] = 3
	rt.InvalidatePlans()
	_, err = rt.Run(context.Background(), l, y)
	return err
}

// cleanRepaired: the mutation is followed by RepairPlans, the incremental
// discipline — the cache is patched in place, no diagnostic.
func cleanRepaired(rt *doacross.Runtime, col []int, y []float64) error {
	n := len(col)
	l, err := doacross.NewLoop(n, n).
		Writes(func(i int) []int { return []int{col[i]} }).
		Body(func(i int, v *doacross.Values) { v.Store(col[i], 0) }).
		Build()
	if err != nil {
		return err
	}
	if _, err := rt.Run(context.Background(), l, y); err != nil {
		return err
	}
	col[0] = 3
	if _, err := rt.RepairPlans(l, doacross.WithEdits(0)); err != nil {
		return err
	}
	_, err = rt.Run(context.Background(), l, y)
	return err
}

// flaggedRepairBeforeMutation: a RepairPlans call that precedes the mutation
// repairs against the old pattern and leaves the later edit unaccounted for.
func flaggedRepairBeforeMutation(rt *doacross.Runtime, col []int, y []float64) error {
	n := len(col)
	l, err := doacross.NewLoop(n, n).
		Writes(func(i int) []int { return []int{col[i]} }).
		Body(func(i int, v *doacross.Values) { v.Store(col[i], 0) }).
		Build()
	if err != nil {
		return err
	}
	if _, err := rt.Run(context.Background(), l, y); err != nil {
		return err
	}
	if _, err := rt.RepairPlans(l, doacross.WithEdits(0)); err != nil {
		return err
	}
	col[0] = 3 // want `index slice "col"`
	_, err = rt.Run(context.Background(), l, y)
	return err
}

// cleanLocalMutation: mutating a slice the closures never captured is fine.
func cleanLocalMutation(rt *doacross.Runtime, col []int, y []float64) error {
	l, err := buildLoop(col)
	if err != nil {
		return err
	}
	scratch := make([]int, len(col))
	scratch[0] = 1
	_, err = rt.Run(context.Background(), l, y)
	return err
}

// cleanMutationBeforeBuild: the slice is prepared before the closures
// capture it; only later mutations are stale.
func cleanMutationBeforeBuild(rt *doacross.Runtime, y []float64) error {
	col := make([]int, len(y))
	for i := range col {
		col[i] = i
	}
	l, err := buildLoop(col)
	if err != nil {
		return err
	}
	_, err = rt.Run(context.Background(), l, y)
	return err
}
