// Fixtures for the reportcheck analyzer: the Run/Solve family's error is the
// only report of an aborted or failed parallel run, and Contexts must be
// non-nil.
package fixture

import (
	"context"

	"doacross"
)

// flaggedDiscards: results dropped on the floor.
func flaggedDiscards(rt *doacross.Runtime, l *doacross.Loop, y []float64) {
	rt.Run(context.Background(), l, y)           // want `result of Run is discarded`
	rt.RunDoall(l, y)                            // want `result of RunDoall is discarded`
	doacross.RunSequential(l, y)                 // want `result of RunSequential is discarded`
	rep, _ := rt.Run(context.Background(), l, y) // want `error of Run is assigned to the blank identifier`
	_ = rep
}

// flaggedBlockedAndLinear: every Run variant reports through its error.
func flaggedBlockedAndLinear(rt *doacross.Runtime, l *doacross.Loop, y []float64) {
	rt.RunBlocked(context.Background(), l, y, 8)              // want `result of RunBlocked is discarded`
	_, _ = rt.RunLinear(l, y, doacross.LinearSubscript{C: 1}) // want `error of RunLinear is assigned to the blank identifier`
}

// flaggedSolve: the solver surface follows the same contract.
func flaggedSolve(s *doacross.Solver, t *doacross.Triangular, rhs, y []float64) {
	s.Solve(rhs, y)                                           // want `result of Solve is discarded`
	doacross.SolveTriangular(doacross.SolverDoacross, t, rhs) // want `result of SolveTriangular is discarded`
}

// flaggedNilContext: a nil Context panics in the runtime's watcher.
func flaggedNilContext(rt *doacross.Runtime, l *doacross.Loop, y []float64) error {
	_, err := rt.Run(nil, l, y) // want `nil Context passed to Run`
	return err
}

// cleanHandled: errors observed, context supplied.
func cleanHandled(rt *doacross.Runtime, l *doacross.Loop, y []float64) error {
	if _, err := rt.Run(context.Background(), l, y); err != nil {
		return err
	}
	rep, err := rt.RunDoall(l, y)
	_ = rep
	if err != nil {
		return err
	}
	// Discarding the Report while keeping the error is fine.
	_, err = rt.RunBlocked(context.Background(), l, y, 16)
	return err
}

// cleanSequentialChecked: the sequential reference's error matters too.
func cleanSequentialChecked(l *doacross.Loop, y []float64) error {
	return doacross.RunSequential(l, y)
}
