// Package analyze is doavet's static-analysis layer: a small, stdlib-only
// clone of the golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass,
// Diagnostic) plus the package loader and runner that drive it. It exists
// because the doacross contract — truthful Writes/Reads declarations, the
// Close contract, the InvalidatePlans discipline, checked Run errors — is a
// correctness contract the compiler cannot see: a loop body that writes a
// captured variable, or an index slice mutated under a cached plan, silently
// corrupts results under the pre-scheduled executors. The analyzers in this
// package catch those misuses at vet time; the runtime access sanitizer
// (core.Options.AccessCheck) catches the remainder at run time.
//
// The package deliberately depends only on the standard library (go/ast,
// go/types, go/importer and the go command itself), so the tooling builds in
// the same hermetic environment as the runtime. The API mirrors go/analysis
// closely enough that the analyzers could be rehosted on x/tools unchanged in
// spirit: an Analyzer owns a name, a doc string and a Run function over a
// Pass; diagnostics are reported through the Pass and carry positions.
//
// Suppression: a diagnostic is dropped when the flagged line, or the line
// directly above it, carries a comment of the form
//
//	//doavet:ignore            — suppress every analyzer on that line
//	//doavet:ignore bodycapture staleplan — suppress only the named ones
//	//doavet:ignore bodycapture -- reason — anything after "--" is commentary
//
// Tests that misuse the API on purpose (the sanitizer's own property tests)
// use this to keep the dogfood gate green without weakening the analyzers.
package analyze

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check: a name (as reported in diagnostics
// and used by //doavet:ignore), a doc string, and the function that runs the
// check over one package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// All returns doavet's analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{BodyCapture, StalePlan, RuntimeClose, ReportCheck}
}

// ByName resolves a comma- or space-separated list of analyzer names against
// the suite; an empty list means all of them.
func ByName(names string) ([]*Analyzer, error) {
	fields := strings.FieldsFunc(names, func(r rune) bool { return r == ',' || r == ' ' })
	if len(fields) == 0 {
		return All(), nil
	}
	var out []*Analyzer
	for _, f := range fields {
		found := false
		for _, a := range All() {
			if a.Name == f {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("analyze: unknown analyzer %q (have %s)", f, strings.Join(Names(), ", "))
		}
	}
	return out, nil
}

// Names lists the suite's analyzer names.
func Names() []string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return names
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, with its position resolved so diagnostics from
// different file sets can be merged and sorted.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the go vet style, with the analyzer name
// appended so a finding can be traced to (or suppressed for) its check.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// RunPackage runs the analyzers over one loaded package and returns the
// surviving (unsuppressed) diagnostics in position order.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyze: %s on %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	diags = filterSuppressed(pkg, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// filterSuppressed drops diagnostics whose line (or the line directly above)
// carries a //doavet:ignore comment naming the diagnostic's analyzer (or
// naming none, which suppresses all).
func filterSuppressed(pkg *Package, diags []Diagnostic) []Diagnostic {
	if len(diags) == 0 {
		return diags
	}
	// ignores maps filename -> line -> analyzer names ("" entry = all).
	ignores := make(map[string]map[int][]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(strings.TrimPrefix(c.Text, "//"), "doavet:ignore")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				m := ignores[pos.Filename]
				if m == nil {
					m = make(map[int][]string)
					ignores[pos.Filename] = m
				}
				// An optional " -- reason" suffix documents the suppression
				// without being parsed as analyzer names.
				rest, _, _ = strings.Cut(rest, "--")
				names := strings.Fields(rest)
				if len(names) == 0 {
					names = []string{""}
				}
				m[pos.Line] = append(m[pos.Line], names...)
			}
		}
	}
	if len(ignores) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if suppressed(ignores, d, d.Pos.Line) || suppressed(ignores, d, d.Pos.Line-1) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

func suppressed(ignores map[string]map[int][]string, d Diagnostic, line int) bool {
	for _, name := range ignores[d.Pos.Filename][line] {
		if name == "" || name == d.Analyzer {
			return true
		}
	}
	return false
}
