package analyze

import (
	"go/ast"
	"go/types"
	"strings"
)

// ReportCheck flags discarded results of the Run/Solve family and nil
// contexts handed to context-aware entry points. Every Run variant reports
// aborted, cancelled and failed executions through its error; a discarded
// error turns a failed parallel run into silently-unspecified output (the
// contract says the contents of y are unspecified after a failed run). A nil
// Context panics inside the runtime's watcher; context.Background() is the
// spelled-out way to opt out of cancellation.
var ReportCheck = &Analyzer{
	Name: "reportcheck",
	Doc: "flag discarded Run/Solve errors and nil Contexts\n\n" +
		"The error of Run, RunBlocked, RunLinear, RunDoall, Solve and friends is\n" +
		"the only signal that a run aborted (cancellation, body failure, panic) and\n" +
		"left the output unspecified; discarding it makes failures unobservable.\n" +
		"Context-taking entry points require a non-nil Context.",
	Run: runReportCheck,
}

func runReportCheck(pass *Pass) error {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					if fn := errorReturningRun(info, call); fn != nil {
						pass.Reportf(call.Pos(), "result of %s is discarded; its error is the only report of an aborted or failed run", fn.Name())
					}
				}
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 {
					break
				}
				call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
				if !ok {
					break
				}
				fn := errorReturningRun(info, call)
				if fn == nil {
					break
				}
				// The error is the last result; flag a blank in that slot.
				if last := n.Lhs[len(n.Lhs)-1]; isBlank(last) {
					pass.Reportf(last.Pos(), "error of %s is assigned to the blank identifier; it is the only report of an aborted or failed run", fn.Name())
				}
			case *ast.CallExpr:
				checkNilContext(pass, n)
			}
			return true
		})
	}
	return nil
}

// errorReturningRun returns the called doacross function when it belongs to
// the Run/Solve family (Run*, Solve*, Use*, RunSequential, ...) and its last
// result is an error; nil otherwise.
func errorReturningRun(info *types.Info, call *ast.CallExpr) *types.Func {
	fn := callee(info, call)
	if fn == nil || !isDoacrossPkg(fn.Pkg()) {
		return nil
	}
	name := fn.Name()
	if !strings.HasPrefix(name, "Run") && !strings.HasPrefix(name, "Solve") && !strings.HasPrefix(name, "Use") {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return nil
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named, ok := last.(*types.Named)
	if !ok || named.Obj().Pkg() != nil || named.Obj().Name() != "error" {
		return nil
	}
	return fn
}

// checkNilContext reports a literal nil passed as the context.Context
// parameter of a doacross entry point.
func checkNilContext(pass *Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	fn := callee(info, call)
	if fn == nil || !isDoacrossPkg(fn.Pkg()) || len(call.Args) == 0 {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return
	}
	first := sig.Params().At(0).Type()
	named, ok := first.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "context" || named.Obj().Name() != "Context" {
		return
	}
	if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && id.Name == "nil" {
		if _, isNil := info.Uses[id].(*types.Nil); isNil {
			pass.Reportf(call.Args[0].Pos(), "nil Context passed to %s; use context.Background() to opt out of cancellation", fn.Name())
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}
