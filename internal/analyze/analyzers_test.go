package analyze_test

import (
	"path/filepath"
	"testing"

	"doacross/internal/analyze"
	"doacross/internal/analyze/analyzetest"
)

func fixture(dir string) string { return filepath.Join("testdata", "src", dir) }

func TestBodyCapture(t *testing.T) {
	analyzetest.Run(t, analyze.BodyCapture, fixture("bodycapture"))
}

func TestStalePlan(t *testing.T) {
	analyzetest.Run(t, analyze.StalePlan, fixture("staleplan"))
}

func TestRuntimeClose(t *testing.T) {
	analyzetest.Run(t, analyze.RuntimeClose, fixture("runtimeclose"))
}

func TestReportCheck(t *testing.T) {
	analyzetest.Run(t, analyze.ReportCheck, fixture("reportcheck"))
}

func TestByName(t *testing.T) {
	all, err := analyze.ByName("")
	if err != nil || len(all) != 4 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want the full suite of 4", len(all), err)
	}
	two, err := analyze.ByName("bodycapture,reportcheck")
	if err != nil || len(two) != 2 {
		t.Fatalf("ByName(two) = %v, err %v", two, err)
	}
	if _, err := analyze.ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) should fail")
	}
}
