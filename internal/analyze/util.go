package analyze

import (
	"go/ast"
	"go/types"
	"strings"
)

// isDoacrossPkg reports whether pkg is the doacross module's facade or one of
// its internal packages — the API surface whose contract the analyzers
// enforce. A nil package (builtins, universe scope) is not.
func isDoacrossPkg(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	return p == "doacross" || strings.HasPrefix(p, "doacross/")
}

// callee returns the *types.Func a call statically resolves to (package
// functions and methods), or nil for indirect calls, conversions and
// builtins.
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isDoacrossFunc reports whether a call statically resolves to a doacross
// function or method with the given name.
func isDoacrossFunc(info *types.Info, call *ast.CallExpr, names ...string) bool {
	fn := callee(info, call)
	if fn == nil || !isDoacrossPkg(fn.Pkg()) {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// isDoacrossNamed reports whether t (after pointer indirection) is a named
// doacross type with the given name — matching through aliases, so the
// facade's `type Loop = core.Loop` and core.Loop itself both match "Loop".
func isDoacrossNamed(t types.Type, name string) bool {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && isDoacrossPkg(obj.Pkg())
}

// rootIdent returns the identifier at the base of an lvalue expression chain:
// x, x[i], *x, x.f, x.f[i].g all root at x. It returns nil when the chain
// roots at something other than an identifier (a call result, a literal).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// withStack walks every node of f, handing each visited node the stack of
// its ancestors (outermost first, not including the node itself).
func withStack(f *ast.File, visit func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		keep := visit(n, stack)
		if keep {
			stack = append(stack, n)
		}
		return keep
	})
}

// funcBodies visits every declared function body in the file. Function
// literals are visited as part of their enclosing declaration (their
// positions nest inside it), which is exactly what the statement-order
// reasoning of staleplan and runtimeclose wants.
func funcBodies(f *ast.File, visit func(name string, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		if d, ok := n.(*ast.FuncDecl); ok && d.Body != nil {
			visit(d.Name.Name, d.Body)
		}
		return true
	})
}
