package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RuntimeClose flags doacross.New / NewSolver / NewReorderedSolver /
// NewSolveService results that neither get closed nor escape the creating
// function — the lostcancel shape for this API. A Runtime (and a Solver,
// which owns one) holds a persistent worker pool, and a SolveService owns a
// dispatcher goroutine besides; the contract is to Close them when done. A
// finalizer eventually reclaims a forgotten pool, but a forgotten service's
// dispatcher has no finalizer at all, and a serving path that churns
// handles without Close keeps goroutine count hostage to GC timing, so the
// contract is enforced at vet time.
var RuntimeClose = &Analyzer{
	Name: "runtimeclose",
	Doc: "flag runtimes, solvers and solve services that go out of scope without Close on any path\n\n" +
		"doacross.New, NewSolver, NewReorderedSolver and NewSolveService return\n" +
		"handles owning a persistent worker pool or dispatcher goroutine; a handle\n" +
		"that is neither closed in its creating function nor handed outward relies\n" +
		"on GC finalizers (or nothing at all) for release.",
	Run: runRuntimeClose,
}

func runRuntimeClose(pass *Pass) error {
	for _, f := range pass.Files {
		funcBodies(f, func(name string, body *ast.BlockStmt) {
			checkRuntimeClose(pass, f, body)
		})
	}
	return nil
}

// checkRuntimeClose analyzes one function body: for every variable bound to a
// fresh runtime/solver, scan its uses — a .Close() selector anywhere (direct,
// deferred, or inside a nested closure) satisfies the contract; a use that
// lets the handle escape (argument, return, address, assignment, composite
// literal, channel send) transfers ownership outward and also silences the
// check; a handle with neither is reported at its creation site.
func checkRuntimeClose(pass *Pass, f *ast.File, body *ast.BlockStmt) {
	info := pass.TypesInfo

	// creations maps the variable object to the call that created it.
	creations := make(map[*types.Var]*ast.CallExpr)
	ast.Inspect(body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(asg.Rhs[0]).(*ast.CallExpr)
		if !ok || !isDoacrossFunc(info, call, "New", "NewSolver", "NewReorderedSolver", "NewSolveService") {
			return true
		}
		if len(asg.Lhs) == 0 {
			return true
		}
		id, ok := ast.Unparen(asg.Lhs[0]).(*ast.Ident)
		if !ok || id.Name == "_" {
			// `_, err := New(...)` is the idiomatic construction-error probe;
			// there is no handle to close when the caller asserts failure.
			return true
		}
		var v *types.Var
		if asg.Tok == token.DEFINE {
			v, _ = info.Defs[id].(*types.Var)
		} else {
			v, _ = info.Uses[id].(*types.Var)
		}
		if v != nil {
			creations[v] = call
		}
		return true
	})
	if len(creations) == 0 {
		return
	}

	closed := make(map[*types.Var]bool)
	escaped := make(map[*types.Var]bool)
	withStack(f, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if _, tracked := creations[v]; !tracked {
			return true
		}
		if len(stack) == 0 {
			return true
		}
		parent := stack[len(stack)-1]
		switch p := parent.(type) {
		case *ast.SelectorExpr:
			if p.X == id && p.Sel.Name == "Close" {
				closed[v] = true
			}
		case *ast.CallExpr:
			// The handle itself passed as an argument (not the callee).
			if p.Fun != id {
				escaped[v] = true
			}
		case *ast.ReturnStmt, *ast.UnaryExpr, *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt, *ast.IndexExpr:
			escaped[v] = true
		case *ast.AssignStmt:
			// Re-assignment of the handle to another variable (or field)
			// aliases it; treat any right-hand-side appearance as escape.
			for _, rhs := range p.Rhs {
				if rhs == id {
					escaped[v] = true
				}
			}
		}
		return true
	})

	for v, call := range creations {
		if closed[v] || escaped[v] {
			continue
		}
		fn := callee(info, call)
		pass.Reportf(call.Pos(), "%s result %q is never closed and never escapes this function; its worker pool is only reclaimed by a GC finalizer (a solve service's dispatcher not even then) — add defer %s.Close()", fn.Name(), v.Name(), v.Name())
	}
}
