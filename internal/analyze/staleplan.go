package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
)

// StalePlan flags index slices that are captured by a loop's Writes/Reads
// closures and then mutated in the same function without a following
// InvalidatePlans() or RepairPlans() call. The runtime's schedule cache
// assumes a Loop value's access pattern never changes: both cache tiers key
// on the Loop (by pointer identity and by structural hash), so mutating a
// captured index array in place makes the next Wavefront/Auto run silently
// replay a schedule that no longer matches the loop's true dependencies. The
// supported discipline is to call Runtime.RepairPlans(l, edits) (incremental,
// for a few changed iterations) or Runtime.InvalidatePlans() (wholesale)
// after the mutation, or build a fresh Loop.
var StalePlan = &Analyzer{
	Name: "staleplan",
	Doc: "flag in-place mutation of index slices captured by Writes/Reads without InvalidatePlans/RepairPlans\n\n" +
		"The schedule cache assumes a Loop's access pattern is stable; mutating a\n" +
		"captured index slice after the loop is built silently replays a stale\n" +
		"wavefront schedule unless Runtime.RepairPlans (incremental) or\n" +
		"Runtime.InvalidatePlans (wholesale) runs before the next Run.",
	Run: runStalePlan,
}

func runStalePlan(pass *Pass) error {
	for _, f := range pass.Files {
		funcBodies(f, func(name string, body *ast.BlockStmt) {
			checkStalePlan(pass, body)
		})
	}
	return nil
}

// checkStalePlan analyzes one function body: it collects the integer slices
// captured by Writes/Reads closures (with the position of the capture), the
// positions of InvalidatePlans and RepairPlans calls, and every later
// in-place mutation of a captured slice, reporting mutations not followed by
// an invalidation or repair. The
// reasoning is statement-order (token position) based — flow-insensitive, but
// exactly the shape of the real misuse: build the loop, run it, tweak the
// index array for the next system, forget the invalidation.
func checkStalePlan(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	captured := make(map[*types.Var]token.Pos) // index slice -> capture position
	var invalidations []token.Pos

	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// RepairPlans is the incremental counterpart of InvalidatePlans:
		// either brings the cache in line with the mutated pattern (the
		// repair itself falls back to an invalidation when it cannot patch).
		if isDoacrossFunc(info, call, "InvalidatePlans", "RepairPlans") {
			invalidations = append(invalidations, call.Pos())
			return true
		}
		if isDoacrossFunc(info, call, "Writes", "Reads") && len(call.Args) == 1 {
			if lit, ok := call.Args[0].(*ast.FuncLit); ok {
				collectCapturedIndexSlices(info, lit, captured)
			}
		}
		return true
	})
	// Composite-literal loops: doacross.Loop{Writes: func...}.
	ast.Inspect(body, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		if tv, ok := info.Types[cl]; !ok || !isDoacrossNamed(tv.Type, "Loop") {
			return true
		}
		for _, elt := range cl.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if key, ok := kv.Key.(*ast.Ident); !ok || (key.Name != "Writes" && key.Name != "Reads") {
				continue
			}
			if lit, ok := kv.Value.(*ast.FuncLit); ok {
				collectCapturedIndexSlices(info, lit, captured)
			}
		}
		return true
	})
	if len(captured) == 0 {
		return
	}

	invalidatedAfter := func(pos token.Pos) bool {
		for _, p := range invalidations {
			if p > pos {
				return true
			}
		}
		return false
	}
	report := func(pos token.Pos, v *types.Var) {
		if invalidatedAfter(pos) {
			return
		}
		pass.Reportf(pos, "index slice %q is captured by a loop's Writes/Reads and mutated here; the schedule cache would replay the stale plan — call RepairPlans (incremental) or InvalidatePlans on the runtime after the mutation, or build a fresh Loop", v.Name())
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				// s[i] = e — in-place element write.
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if v := capturedSlice(info, captured, idx.X, n.Pos()); v != nil {
						report(lhs.Pos(), v)
					}
					continue
				}
				// s = append(s, ...) — may mutate in place when capacity allows.
				if i < len(n.Rhs) {
					if call, ok := ast.Unparen(n.Rhs[i]).(*ast.CallExpr); ok && isBuiltin(info, call, "append") {
						if v := capturedSlice(info, captured, lhs, n.Pos()); v != nil {
							report(lhs.Pos(), v)
						}
					}
				}
			}
		case *ast.CallExpr:
			// copy(s, ...) — bulk in-place overwrite.
			if isBuiltin(info, n, "copy") && len(n.Args) == 2 {
				if v := capturedSlice(info, captured, n.Args[0], n.Pos()); v != nil {
					report(n.Pos(), v)
				}
			}
		}
		return true
	})
}

// collectCapturedIndexSlices records every integer-slice variable that lit
// references but does not declare.
func collectCapturedIndexSlices(info *types.Info, lit *ast.FuncLit, out map[*types.Var]token.Pos) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || !isIntSlice(v.Type()) {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // declared inside the closure
		}
		if _, seen := out[v]; !seen {
			out[v] = lit.Pos()
		}
		return true
	})
}

// capturedSlice resolves e to its root variable and returns it when it is one
// of the captured index slices and the use is after the capture.
func capturedSlice(info *types.Info, captured map[*types.Var]token.Pos, e ast.Expr, at token.Pos) *types.Var {
	id := rootIdent(e)
	if id == nil {
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	if pos, ok := captured[v]; ok && at > pos {
		return v
	}
	return nil
}

// isIntSlice reports whether t is a slice of (any) integer type — the shape
// of the index arrays Writes/Reads closures consult.
func isIntSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}
