// Package analyzetest is the fixture harness for doavet's analyzers,
// mirroring golang.org/x/tools/go/analysis/analysistest on the standard
// library: fixture files under testdata carry `// want "regexp"` comments on
// the lines where a diagnostic is expected, the harness type-checks the
// fixtures against the real doacross module (via compiled export data, so the
// fixtures exercise exactly the types users build against), runs one
// analyzer, and diffs reported diagnostics against the expectations in both
// directions.
package analyzetest

import (
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"go/ast"

	"doacross/internal/analyze"
)

// moduleRoot locates the doacross module root (the directory holding go.mod)
// by walking up from the working directory.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("analyzetest: no go.mod found above the working directory")
		}
		dir = parent
	}
}

var (
	importerOnce sync.Once
	importerErr  error
	sharedFset   *token.FileSet
	sharedImp    types.Importer
)

// fixtureImporter returns the process-wide importer that resolves the
// doacross module and the standard library from export data. It is built
// once: one `go list -export -deps` over the module and the stdlib packages
// fixtures may import.
func fixtureImporter(t *testing.T) (*token.FileSet, types.Importer) {
	t.Helper()
	importerOnce.Do(func() {
		sharedFset = token.NewFileSet()
		sharedImp, importerErr = analyze.NewExportImporter(moduleRoot(t), sharedFset,
			"doacross", "context", "errors", "fmt", "math/rand", "os", "sync", "time")
	})
	if importerErr != nil {
		t.Fatalf("analyzetest: building fixture importer: %v", importerErr)
	}
	return sharedFset, sharedImp
}

// expectation is one `// want` entry: a position and a regexp the diagnostic
// message must match.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// wantRe matches the quoted patterns of a `// want "..." "..."` comment.
var wantRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// Run type-checks the fixture directory and checks the analyzer's
// diagnostics against its `// want` comments.
func Run(t *testing.T, a *analyze.Analyzer, dir string) {
	t.Helper()
	fset, imp := fixtureImporter(t)

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("analyzetest: %v", err)
	}
	var files []*ast.File
	var expects []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("analyzetest: %v", err)
		}
		files = append(files, f)
		expects = append(expects, extractWants(t, fset, f)...)
	}
	if len(files) == 0 {
		t.Fatalf("analyzetest: no fixture files in %s", dir)
	}

	pkgName := files[0].Name.Name
	tpkg, info, err := analyze.CheckFiles(fset, pkgName, files, imp)
	if err != nil {
		t.Fatalf("analyzetest: type-checking fixtures in %s: %v", dir, err)
	}
	pkg := &analyze.Package{
		ImportPath: pkgName,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	diags, err := analyze.RunPackage(pkg, []*analyze.Analyzer{a})
	if err != nil {
		t.Fatalf("analyzetest: %v", err)
	}

	for _, d := range diags {
		matched := false
		for _, w := range expects {
			if w.hit || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range expects {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// extractWants parses the `// want` comments of one fixture file.
func extractWants(t *testing.T, fset *token.FileSet, f *ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			rest, ok := strings.CutPrefix(text, "want ")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			for _, q := range wantRe.FindAllString(rest, -1) {
				var pat string
				if q[0] == '`' {
					pat = q[1 : len(q)-1]
				} else {
					pat = q[1 : len(q)-1]
					pat = strings.ReplaceAll(pat, `\"`, `"`)
					pat = strings.ReplaceAll(pat, `\\`, `\`)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return out
}
