package analyze

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPackage mirrors the subset of `go list -json` output the loader
// consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	ForTest    string
	Name       string
	GoFiles    []string
	CgoFiles   []string
	ImportMap  map[string]string
}

// Load lists the packages matching patterns (relative to dir, or the current
// directory when dir is empty), builds export data for their dependency
// closure through the go command, and returns every non-dependency package
// parsed and type-checked. With tests set, each package's test variant (its
// _test.go files merged in, plus external _test packages) is analyzed instead
// of the bare package.
//
// The loader is the stdlib-only stand-in for go/packages: `go list -export
// -deps -json` supplies the file lists, the import maps and the compiled
// export data of every dependency, and go/importer's gc importer consumes the
// export files directly, so no network and no third-party module is ever
// needed.
func Load(dir string, tests bool, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := []string{"list", "-export", "-deps", "-json=ImportPath,Dir,Export,Standard,DepOnly,ForTest,Name,GoFiles,CgoFiles,ImportMap"}
	if tests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analyze: go list failed: %v\n%s", err, stderr.String())
	}

	var all []*listPackage
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("analyze: decoding go list output: %v", err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		all = append(all, lp)
	}

	// With -test, a package under test is listed twice: bare and as the
	// "p [p.test]" variant whose GoFiles include the _test.go files. Analyze
	// the variant only, plus external "p_test [p.test]" packages; skip the
	// synthesized test-main packages.
	hasVariant := make(map[string]bool)
	for _, lp := range all {
		if lp.ForTest != "" && !strings.HasSuffix(lp.ImportPath, ".test") {
			hasVariant[lp.ForTest] = true
		}
	}

	fset := token.NewFileSet()
	shared := newExportImporter(fset, exports)
	var pkgs []*Package
	for _, lp := range all {
		if lp.DepOnly || strings.HasSuffix(lp.ImportPath, ".test") {
			continue
		}
		if tests && lp.ForTest == "" && hasVariant[lp.ImportPath] {
			continue
		}
		if len(lp.CgoFiles) > 0 {
			// Cgo packages need the generated intermediate sources the
			// compiler sees; skip them rather than misreport.
			continue
		}
		pkg, err := typecheck(fset, lp, shared)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typecheck parses and type-checks one listed package against the shared
// export-data importer.
func typecheck(fset *token.FileSet, lp *listPackage, shared *exportImporter) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analyze: %v", err)
		}
		files = append(files, f)
	}
	// The type-checked path must not carry go list's " [p.test]" suffix.
	path := lp.ImportPath
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	pkg, info, err := CheckFiles(fset, path, files, shared.withImportMap(lp.ImportMap))
	if err != nil {
		return nil, fmt.Errorf("analyze: type-checking %s: %w", lp.ImportPath, err)
	}
	return &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Fset:       fset,
		Files:      files,
		Types:      pkg,
		Info:       info,
	}, nil
}

// CheckFiles type-checks the parsed files of one package with the standard
// configuration the analyzers expect (full use/def/selection maps). It is
// shared by the loader and the fixture test harness.
func CheckFiles(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	conf := &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
	info := &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Instances:    make(map[*ast.Ident]types.Instance),
		Scopes:       make(map[ast.Node]*types.Scope),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		FileVersions: make(map[*ast.File]string),
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// exportImporter resolves imports against compiled export-data files, the way
// a vet unit checker does: a path is mapped through the package's import map
// (vendoring, test variants), then its export file is opened and handed to
// the gc importer. One instance is shared across all packages of a Load so
// each dependency's export data is decoded once.
type exportImporter struct {
	compiler types.Importer
	exports  map[string]string
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	ei := &exportImporter{exports: exports}
	ei.compiler = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := ei.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return ei
}

// withImportMap returns a types.Importer view of the shared importer that
// first resolves import paths through one package's import map.
func (ei *exportImporter) withImportMap(m map[string]string) types.Importer {
	return importerFunc(func(importPath string) (*types.Package, error) {
		path := importPath
		if mapped, ok := m[importPath]; ok {
			path = mapped
		}
		return ei.compiler.Import(path)
	})
}

// NewExportImporter lists the given packages with `go list -export -deps`
// (run from dir) and returns an importer resolving any of them — and their
// whole dependency closure — from compiled export data. The fixture test
// harness uses it to type-check testdata files that import the real doacross
// module without those files being part of any listed package.
func NewExportImporter(dir string, fset *token.FileSet, pkgs ...string) (types.Importer, error) {
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analyze: go list failed: %v\n%s", err, stderr.String())
	}
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("analyze: decoding go list output: %v", err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	return newExportImporter(fset, exports).withImportMap(nil), nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
