package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BodyCapture flags loop-body closures that write variables captured from
// their enclosing scope. The doacross contract routes every access to shared
// state through Values (Load performs the execution-time dependency check,
// Store writes through the renaming buffer); a body that assigns to a
// captured variable — an accumulator, an element of a captured slice, a field
// of a captured struct — performs a side effect the inspector cannot see.
// Under the flag-based doacross that is a data race between concurrently
// running iterations; under the pre-scheduled wavefront executors it is a
// silent wrong answer, because the level placement was derived only from the
// declared Writes/Reads.
var BodyCapture = &Analyzer{
	Name: "bodycapture",
	Doc: "flag loop-body closures passed to Body/BodyErr that write captured variables\n\n" +
		"A doacross loop body must perform all shared-state accesses through its\n" +
		"*Values parameter; writes to captured outer variables are invisible to the\n" +
		"inspector and race (or silently corrupt results) under parallel execution.",
	Run: runBodyCapture,
}

func runBodyCapture(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			for _, lit := range bodyClosures(pass.TypesInfo, n) {
				checkCaptureWrites(pass, lit)
			}
			return true
		})
	}
	return nil
}

// bodyClosures returns the function literals node hands to the doacross
// runtime as loop bodies: arguments of LoopBuilder.Body/BodyErr calls, values
// of Body/BodyErr keys in Loop composite literals, and right-hand sides of
// assignments to a Loop's Body/BodyErr fields.
func bodyClosures(info *types.Info, n ast.Node) []*ast.FuncLit {
	switch n := n.(type) {
	case *ast.CallExpr:
		if isDoacrossFunc(info, n, "Body", "BodyErr") && len(n.Args) == 1 {
			if lit, ok := n.Args[0].(*ast.FuncLit); ok {
				return []*ast.FuncLit{lit}
			}
		}
	case *ast.CompositeLit:
		tv, ok := info.Types[n]
		if !ok || !isDoacrossNamed(tv.Type, "Loop") {
			return nil
		}
		var lits []*ast.FuncLit
		for _, elt := range n.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok || (key.Name != "Body" && key.Name != "BodyErr") {
				continue
			}
			if lit, ok := kv.Value.(*ast.FuncLit); ok {
				lits = append(lits, lit)
			}
		}
		return lits
	case *ast.AssignStmt:
		var lits []*ast.FuncLit
		for i, lhs := range n.Lhs {
			sel, ok := lhs.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Body" && sel.Sel.Name != "BodyErr") || i >= len(n.Rhs) {
				continue
			}
			if tv, ok := info.Types[sel.X]; !ok || !isDoacrossNamed(tv.Type, "Loop") {
				continue
			}
			if lit, ok := n.Rhs[i].(*ast.FuncLit); ok {
				lits = append(lits, lit)
			}
		}
		return lits
	}
	return nil
}

// checkCaptureWrites reports every write inside lit whose target roots at a
// variable declared outside lit.
func checkCaptureWrites(pass *Pass, lit *ast.FuncLit) {
	report := func(pos token.Pos, obj types.Object, how string) {
		pass.Reportf(pos, "loop body %s captured variable %q; shared-state accesses must go through Values (Load/Store) — side effects outside Values are invisible to the inspector and race under parallel executors", how, obj.Name())
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// A `:=` target always declares inside the literal (an outer
			// variable on a := left-hand side shadows rather than assigns),
			// so capturedTarget filters those out via Defs.
			for _, lhs := range n.Lhs {
				if obj := capturedTarget(pass.TypesInfo, lit, lhs); obj != nil {
					how := "writes"
					if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
						how = "updates"
					}
					report(lhs.Pos(), obj, how)
				}
			}
		case *ast.IncDecStmt:
			if obj := capturedTarget(pass.TypesInfo, lit, n.X); obj != nil {
				report(n.X.Pos(), obj, "updates")
			}
		case *ast.RangeStmt:
			for _, lhs := range []ast.Expr{n.Key, n.Value} {
				if lhs == nil || n.Tok == token.DEFINE {
					continue
				}
				if obj := capturedTarget(pass.TypesInfo, lit, lhs); obj != nil {
					report(lhs.Pos(), obj, "writes")
				}
			}
		}
		return true
	})
}

// capturedTarget resolves an assignment target to the variable it roots at
// and returns that variable when it is declared outside lit (a capture).
// Targets rooted at variables declared inside the literal — locals and the
// body's own parameters, including the *Values handle — return nil.
func capturedTarget(info *types.Info, lit *ast.FuncLit, lhs ast.Expr) types.Object {
	id := rootIdent(lhs)
	if id == nil || id.Name == "_" {
		return nil
	}
	obj := info.Uses[id]
	if obj == nil {
		// Defs: the identifier declares a new variable here (`:=`), so
		// nothing outside is written.
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return nil
	}
	if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
		return nil // declared inside the literal
	}
	return v
}
