// Package tune is the pure state machine behind the runtime's online
// self-tuning Auto selection: per-plan exponential-moving-average
// observations of measured executor-phase times, a back-solver that
// re-calibrates the cost-model coefficients (IterNs first, the dominant
// overhead coefficient when the work term bottoms out) against those
// observations, and a small epsilon-greedy bandit over the three executors
// that occasionally re-samples a non-picked executor so a wrong initial pick
// cannot lock in.
//
// The package is deliberately a leaf: it holds no clocks, no pools and no
// runtime state, only arithmetic over observations that callers feed in. Both
// the live runtime (internal/core) and the deterministic simulator
// (internal/machine, SimulateTuning) drive the same PlanState — which is what
// guarantees the simulated convergence trajectory is the one the real tuner
// follows, and the cost-model formula lives here (Predict) so the two sides
// cannot drift apart.
package tune

import (
	"math"

	"doacross/internal/sched"
)

// Executor indices of the bandit's three arms. They are the tuner's own
// compact indexing (the runtime's ExecutorKind interleaves Auto); core maps
// between the two.
const (
	// Doacross is the flag-based busy-wait doacross.
	Doacross = iota
	// Wavefront is the static barrier-separated wavefront.
	Wavefront
	// WavefrontDynamic is the within-level self-scheduling wavefront.
	WavefrontDynamic
	// NumExecutors is the number of bandit arms.
	NumExecutors
)

// ExecutorName returns the executor's report name for an arm index.
func ExecutorName(e int) string {
	switch e {
	case Doacross:
		return "doacross"
	case Wavefront:
		return "wavefront"
	case WavefrontDynamic:
		return "wavefront-dynamic"
	default:
		return "unknown"
	}
}

// Coeffs are the cost-model coefficients the tuner calibrates. The fields
// mirror core.AutoCosts exactly (the two types are directly convertible):
// the cost of one level-barrier rendezvous, one flag-table operation, one
// dynamic chunk claim (zero excludes the dynamic executor), and one
// iteration's useful work.
type Coeffs struct {
	BarrierNs   float64
	FlagCheckNs float64
	ClaimNs     float64
	IterNs      float64
}

// Stats are the inspection statistics the cost model consumes — the subset
// of core.InspectStats that Predict reads. See the core documentation for
// the meaning of each field.
type Stats struct {
	Iterations      int
	Edges           int
	StallWeight     float64
	Levels          int
	CriticalPathLen int
	ScheduleRounds  int
	ReadImbalance   float64
	DynamicClaims   int
}

// minCoeff is the floor kept under the calibrated BarrierNs/FlagCheckNs (and
// under a back-solved ClaimNs): the decision layer requires positive
// coefficients, and a coefficient driven to zero by a degenerate observation
// could never recover through multiplicative blending.
const minCoeff = 1e-3

// sane returns v when it is a usable coefficient value, else the fallback.
func sane(v, fallback float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return fallback
	}
	return v
}

// Sanitize clamps the coefficients into the tuner's invariant domain:
// BarrierNs and FlagCheckNs positive (at least minCoeff), ClaimNs and IterNs
// non-negative, everything finite. It is applied to every seed and every
// blended update, so a PlanState never carries NaN, infinite or negative
// coefficients whatever observations were fed in.
func Sanitize(c Coeffs) Coeffs {
	c.BarrierNs = sane(c.BarrierNs, minCoeff)
	c.FlagCheckNs = sane(c.FlagCheckNs, minCoeff)
	c.ClaimNs = sane(c.ClaimNs, 0)
	c.IterNs = sane(c.IterNs, 0)
	if c.BarrierNs < minCoeff {
		c.BarrierNs = minCoeff
	}
	if c.FlagCheckNs < minCoeff {
		c.FlagCheckNs = minCoeff
	}
	return c
}

// terms are the structural factors of the cost model, shared by Predict and
// the back-solver so a calibration inverts exactly the formula the
// prediction applies.
type terms struct {
	daRounds float64 // doacross rounds: max(ceil(N/P), critical path) + stalls/P
	wfRounds float64 // wavefront schedule rounds (barrier-rounded depth)
	levels   float64 // level count (barriers paid)
	r        float64 // mean true-dependency reads per iteration
	imb      float64 // static within-level read imbalance
	claims   float64 // dynamic chunk claims
}

// modelTerms derives the structural factors from the inspection statistics,
// normalizing degenerate inputs (a caller-constructed Stats with negative or
// non-finite fields) instead of poisoning the arithmetic. ok is false when
// the loop is empty — nothing to predict or calibrate.
func modelTerms(st Stats, workers, nrhs int) (t terms, ok bool) {
	p := workers
	if p < 1 {
		p = 1
	}
	n := st.Iterations
	if n <= 0 {
		return terms{}, false
	}
	workRounds := (n + p - 1) / p
	bound := workRounds
	if st.CriticalPathLen > bound {
		bound = st.CriticalPathLen
	}
	t.daRounds = float64(bound) + sane(st.StallWeight, 0)/float64(p)
	minWfRounds := workRounds
	if st.Levels > minWfRounds {
		minWfRounds = st.Levels
	}
	wfRounds := st.ScheduleRounds
	if wfRounds < minWfRounds {
		// Stats from a source that did not fill ScheduleRounds: the level
		// schedule can never be shallower than either bound.
		wfRounds = minWfRounds
	}
	t.wfRounds = float64(wfRounds)
	if st.Levels > 0 {
		t.levels = float64(st.Levels)
	}
	if st.Edges > 0 {
		t.r = float64(st.Edges) / float64(n)
	}
	t.imb = sane(st.ReadImbalance, 0)
	claims := st.DynamicClaims
	if claims <= 0 {
		claims = (n+sched.DefaultChunk-1)/sched.DefaultChunk + st.Levels*p
	}
	t.claims = float64(claims)
	return t, true
}

// Predict estimates the executor-phase time of all three strategies for a
// loop with the given inspection statistics on the given worker count,
// carrying nrhs right-hand-side columns, in the coefficients' time unit. It
// is the Auto cost model — core.AutoCosts.PredictN delegates here, and the
// back-solver inverts exactly this formula. tDynamic is zero ("not
// considered") when ClaimNs is zero. See the core.AutoCosts documentation
// for the model's derivation.
func Predict(c Coeffs, st Stats, workers, nrhs int) (tDoacross, tWavefront, tDynamic float64) {
	t, ok := modelTerms(st, workers, nrhs)
	if !ok {
		return 0, 0, 0
	}
	if nrhs < 1 {
		nrhs = 1
	}
	workNs := float64(nrhs) * c.IterNs
	perIter := workNs + t.r*c.FlagCheckNs
	tDoacross = t.daRounds * (workNs + (t.r+3)*c.FlagCheckNs)
	wfBase := t.wfRounds*perIter + t.levels*c.BarrierNs
	readTermNs := c.FlagCheckNs + workNs/(t.r+1)
	tWavefront = wfBase + t.imb*readTermNs
	if c.ClaimNs > 0 {
		tDynamic = wfBase + t.claims*c.ClaimNs
	}
	return tDoacross, tWavefront, tDynamic
}

// Options tunes the tuner itself. The zero value means defaults throughout;
// a negative Epsilon disables exploration entirely (pure greedy — wanted by
// tests that must be schedule-deterministic without filtering explored
// runs).
type Options struct {
	// Alpha is the exponential-moving-average smoothing factor applied to
	// each arm's observed executor-phase time, in (0, 1]; higher values
	// weight recent runs more. Zero means DefaultAlpha.
	Alpha float64
	// Epsilon is the exploration probability: on each decision, with
	// probability Epsilon the least-observed non-best executor runs instead
	// of the predicted-best one, so a wrong initial pick cannot lock in.
	// Zero means DefaultEpsilon; negative disables exploration.
	Epsilon float64
	// Blend is the rate at which back-solved coefficient proposals are
	// folded into the current coefficients, in (0, 1]: 1 jumps straight to
	// each proposal, smaller values smooth over observation noise. Zero
	// means DefaultBlend.
	Blend float64
	// Seed seeds the deterministic exploration RNG (splitmix64). Zero means
	// 1, so the zero value is still fully deterministic.
	Seed uint64
}

// Default Options values.
const (
	DefaultAlpha   = 0.25
	DefaultEpsilon = 0.125
	DefaultBlend   = 0.5
)

// WithDefaults resolves the zero fields to the package defaults and clamps
// out-of-range values into their documented domains.
func (o Options) WithDefaults() Options {
	if o.Alpha == 0 || math.IsNaN(o.Alpha) {
		o.Alpha = DefaultAlpha
	}
	if o.Alpha < 0 {
		o.Alpha = DefaultAlpha
	}
	if o.Alpha > 1 {
		o.Alpha = 1
	}
	if o.Epsilon == 0 || math.IsNaN(o.Epsilon) {
		o.Epsilon = DefaultEpsilon
	}
	if o.Epsilon < 0 {
		o.Epsilon = 0
	}
	if o.Epsilon > 1 {
		o.Epsilon = 1
	}
	if o.Blend == 0 || math.IsNaN(o.Blend) || o.Blend < 0 {
		o.Blend = DefaultBlend
	}
	if o.Blend > 1 {
		o.Blend = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// RNG is the tuner's deterministic exploration source: splitmix64, seeded
// once per runtime. Determinism is part of the contract — given the same
// seed and the same decision sequence, the same runs explore — so
// convergence tests and the machine-model replay see identical trajectories.
type RNG struct{ s uint64 }

// NewRNG returns a generator seeded with seed (zero is replaced by 1).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 1
	}
	return &RNG{s: seed}
}

// Uint64 returns the next value of the splitmix64 sequence.
func (r *RNG) Uint64() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns the next value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// PlanState is the tuner's per-plan state: the calibrated coefficients and
// one bandit arm per executor. It is keyed (by the caller) on the plan's
// structural fingerprint, so every loop shape calibrates independently — a
// heavy-bodied chain and an overhead-bound stencil sharing one runtime do
// not fight over IterNs. The zero value is not usable; construct with
// NewPlanState.
type PlanState struct {
	// Coeffs are the tuned coefficients: seeded from the runtime's base
	// (configured initial costs or the probe) and blended toward back-solved
	// observations after every completed run.
	Coeffs Coeffs
	// ObsNs is each arm's exponential moving average of observed
	// executor-phase nanoseconds; valid only where Obs is non-zero (the
	// first observation initializes the average rather than decaying from
	// zero).
	ObsNs [NumExecutors]float64
	// Obs counts the completed runs observed per arm.
	Obs [NumExecutors]uint64
	// Runs is the total observation count (the sum of Obs).
	Runs uint64
	// Explorations counts the decisions where the bandit deliberately ran a
	// non-best executor.
	Explorations uint64
}

// NewPlanState seeds a plan's tuner state with the base coefficients.
func NewPlanState(base Coeffs) PlanState {
	return PlanState{Coeffs: Sanitize(base)}
}

// Decide picks the executor for the next run: the arm with the lowest score
// — measured average where the arm has been observed, the tuned model's
// prediction where it has not — or, with probability Epsilon, the
// least-observed other arm (explored reports that case, so callers can mark
// the run and tests can filter it). The dynamic arm participates only when a
// claim coefficient is available or it has already been observed. rng may be
// nil, which disables exploration like a negative Epsilon.
func (s *PlanState) Decide(st Stats, workers, nrhs int, o Options, rng *RNG) (pick int, explored bool) {
	o = o.WithDefaults()
	tda, twf, tdyn := Predict(s.Coeffs, st, workers, nrhs)
	score := [NumExecutors]float64{tda, twf, tdyn}
	avail := [NumExecutors]bool{true, true, s.Coeffs.ClaimNs > 0 || s.Obs[WavefrontDynamic] > 0}
	for e := 0; e < NumExecutors; e++ {
		if s.Obs[e] > 0 {
			score[e] = s.ObsNs[e]
		}
	}
	pick = Doacross
	for e := Wavefront; e < NumExecutors; e++ {
		if avail[e] && score[e] < score[pick] {
			pick = e
		}
	}
	if o.Epsilon > 0 && rng != nil && rng.Float64() < o.Epsilon {
		cand := -1
		for e := 0; e < NumExecutors; e++ {
			if e != pick && avail[e] && (cand < 0 || s.Obs[e] < s.Obs[cand]) {
				cand = e
			}
		}
		if cand >= 0 {
			s.Explorations++
			return cand, true
		}
	}
	return pick, false
}

// Observe feeds one completed run back in: observedNs is the measured
// executor-phase time of the executor that ran (arm exec), for the loop
// shape st at the given worker count and block width. The arm's moving
// average absorbs the sample, and the coefficients are re-calibrated against
// the updated average (see calibrate). Non-finite or negative samples and
// out-of-range arms are ignored.
func (s *PlanState) Observe(exec int, st Stats, workers, nrhs int, observedNs float64, o Options) {
	if exec < 0 || exec >= NumExecutors {
		return
	}
	if math.IsNaN(observedNs) || math.IsInf(observedNs, 0) || observedNs < 0 {
		return
	}
	o = o.WithDefaults()
	if s.Obs[exec] == 0 {
		s.ObsNs[exec] = observedNs
	} else {
		s.ObsNs[exec] += o.Alpha * (observedNs - s.ObsNs[exec])
	}
	s.Obs[exec]++
	s.Runs++
	s.calibrate(exec, st, workers, nrhs, o)
}

// blendTo moves *field toward the proposal at the blend rate.
func blendTo(field *float64, proposal, rate float64) {
	*field += rate * (proposal - *field)
}

// calibrate back-solves the cost model against the observed arm's moving
// average and blends the coefficients toward the solution. The per-iteration
// work term IterNs — the coefficient the calibration probe cannot measure —
// is solved first, holding the overhead coefficients fixed; when the
// observation is cheaper than the pure overhead prediction (the back-solved
// IterNs clamps negative), the work term drops to zero and the arm's
// dominant overhead coefficient is solved instead (FlagCheckNs for the
// doacross, BarrierNs for the static wavefront, ClaimNs for the dynamic), so
// a grossly mispriced probe corrects in either direction. Every update is
// blended (Options.Blend) and sanitized, preserving the coefficient
// invariants whatever the sample.
func (s *PlanState) calibrate(exec int, st Stats, workers, nrhs int, o Options) {
	t, ok := modelTerms(st, workers, nrhs)
	if !ok {
		return
	}
	if nrhs < 1 {
		nrhs = 1
	}
	nf := float64(nrhs)
	obs := s.ObsNs[exec]
	c := s.Coeffs
	switch exec {
	case Doacross:
		denom := t.daRounds * nf
		if denom <= 0 {
			return
		}
		iter := (obs - t.daRounds*(t.r+3)*c.FlagCheckNs) / denom
		if iter >= 0 {
			blendTo(&c.IterNs, iter, o.Blend)
		} else {
			blendTo(&c.IterNs, 0, o.Blend)
			if fd := t.daRounds * (t.r + 3); fd > 0 {
				blendTo(&c.FlagCheckNs, obs/fd, o.Blend)
			}
		}
	case Wavefront:
		denom := nf * (t.wfRounds + t.imb/(t.r+1))
		if denom <= 0 {
			return
		}
		overhead := (t.wfRounds*t.r+t.imb)*c.FlagCheckNs + t.levels*c.BarrierNs
		iter := (obs - overhead) / denom
		if iter >= 0 {
			blendTo(&c.IterNs, iter, o.Blend)
		} else {
			blendTo(&c.IterNs, 0, o.Blend)
			if t.levels > 0 {
				blendTo(&c.BarrierNs, (obs-(t.wfRounds*t.r+t.imb)*c.FlagCheckNs)/t.levels, o.Blend)
			}
		}
	case WavefrontDynamic:
		denom := nf * t.wfRounds
		if denom <= 0 {
			return
		}
		overhead := t.wfRounds*t.r*c.FlagCheckNs + t.levels*c.BarrierNs + t.claims*c.ClaimNs
		iter := (obs - overhead) / denom
		if iter >= 0 {
			blendTo(&c.IterNs, iter, o.Blend)
		} else {
			blendTo(&c.IterNs, 0, o.Blend)
			if t.claims > 0 && c.ClaimNs > 0 {
				blendTo(&c.ClaimNs, (obs-t.wfRounds*t.r*c.FlagCheckNs-t.levels*c.BarrierNs)/t.claims, o.Blend)
				if c.ClaimNs < minCoeff {
					// A claim coefficient exists for this plan; keep it
					// positive so the dynamic arm stays comparable.
					c.ClaimNs = minCoeff
				}
			}
		}
	}
	s.Coeffs = Sanitize(c)
}
