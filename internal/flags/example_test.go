package flags_test

import (
	"fmt"

	"doacross/internal/flags"
)

// ExampleIterTable shows the execution-time dependency check of the paper's
// Figure 5: the inspector records which iteration writes each element, and
// the executor classifies every read against it.
func ExampleIterTable() {
	iter := flags.NewIterTable(8)
	// Inspector: iteration 3 writes element 6, iteration 5 writes element 2.
	iter.Record(6, 3)
	iter.Record(2, 5)

	classify := func(elem, reader int) {
		dep, writer := iter.Classify(elem, reader)
		if writer == flags.MaxInt {
			fmt.Printf("iteration %d reading element %d: %v (never written)\n", reader, elem, dep)
			return
		}
		fmt.Printf("iteration %d reading element %d: %v (writer %d)\n", reader, elem, dep, writer)
	}
	classify(6, 7) // written earlier -> wait, use new value
	classify(2, 5) // written by the same iteration -> use new value, no wait
	classify(2, 1) // written later -> anti-dependence, use old value
	classify(4, 2) // never written -> use old value
	// Output:
	// iteration 7 reading element 6: true (writer 3)
	// iteration 5 reading element 2: self (writer 5)
	// iteration 1 reading element 2: anti/none (writer 5)
	// iteration 2 reading element 4: anti/none (never written)
}

// ExampleEpochFlags shows the O(1) reset variant of the ready array: instead
// of clearing every flag in a postprocessing loop, the epoch is advanced.
func ExampleEpochFlags() {
	ready := flags.NewEpochFlags(4)
	ready.Set(1)
	fmt.Println("element 1 done:", ready.IsDone(1))
	ready.Advance() // next doacross loop: everything not-done again
	fmt.Println("element 1 done after Advance:", ready.IsDone(1))
	// Output:
	// element 1 done: true
	// element 1 done after Advance: false
}
