package flags

import (
	"runtime"
	"sync/atomic"
)

// EpochFlags is an alternative to ReadyFlags that never needs the
// postprocessing reset: instead of flipping a DONE bit that must later be
// cleared, each element stores the epoch (loop invocation number) in which it
// was last produced. A reader considers the element ready if its stored epoch
// equals the current epoch. Advancing the epoch between loops invalidates all
// flags in O(1).
//
// This is the design-choice ablation for the paper's postprocessing phase
// (Section 2.1 / Figure 3): the paper resets ready(a(i)) and iter(a(i)) per
// written element; EpochFlags removes that cost at the price of one extra
// comparison per check.
type EpochFlags struct {
	epoch atomic.Uint64
	slots []atomic.Uint64
	// notify support (only used with WaitNotify)
	notifier *notifier
}

// NewEpochFlags creates an epoch flag array of length n. The current epoch
// starts at 1 so that the zero value of a slot ("epoch 0") is never ready.
func NewEpochFlags(n int) *EpochFlags {
	e := &EpochFlags{slots: make([]atomic.Uint64, n)}
	e.epoch.Store(1)
	return e
}

// Len reports the number of elements covered.
func (e *EpochFlags) Len() int { return len(e.slots) }

// Epoch returns the current epoch number.
func (e *EpochFlags) Epoch() uint64 { return e.epoch.Load() }

// Advance begins a new loop invocation: every element becomes not-ready
// without touching the slot array.
func (e *EpochFlags) Advance() { e.epoch.Add(1) }

// EnableNotify attaches the sharded notifier needed by WaitNotify. It is a
// no-op if notification support is already enabled.
func (e *EpochFlags) EnableNotify() {
	if e.notifier == nil {
		e.notifier = newNotifier()
	}
}

// Set marks element i as produced in the current epoch.
func (e *EpochFlags) Set(i int) {
	e.slots[i].Store(e.epoch.Load())
	if e.notifier != nil {
		e.notifier.wake(i)
	}
}

// IsDone reports whether element i has been produced in the current epoch.
func (e *EpochFlags) IsDone(i int) bool { return e.slots[i].Load() == e.epoch.Load() }

// Wait blocks until element i is produced in the current epoch, using the
// given strategy, and returns the number of polls performed (0 if the
// element was already produced). It mirrors ReadyFlags.Wait so every
// WaitStrategy works with the epoch-table ablation: before this, the
// configured strategy was silently dropped and the wait always busy-spun,
// which can livelock under WaitSpin semantics when workers exceed
// GOMAXPROCS.
func (e *EpochFlags) Wait(i int, strategy WaitStrategy) int {
	polls, _ := e.WaitCancel(i, strategy, nil)
	return polls
}

// WaitCancel is Wait with a cancellation flag; see ReadyFlags.WaitCancel. A
// nil cancelled never cancels.
func (e *EpochFlags) WaitCancel(i int, strategy WaitStrategy, cancelled *atomic.Bool) (polls int, ok bool) {
	cur := e.epoch.Load()
	if e.slots[i].Load() == cur {
		return 0, true
	}
	switch strategy {
	case WaitSpin:
		for e.slots[i].Load() != cur {
			if cancelled != nil && cancelled.Load() {
				return polls, false
			}
			polls++
		}
		return polls, true
	case WaitNotify:
		if e.notifier == nil {
			// Fall back to yielding spin rather than panicking: the
			// semantics are identical, only the cost differs.
			return e.waitSpinYield(i, cur, cancelled)
		}
		polls = e.notifier.wait(i, func() bool {
			return e.slots[i].Load() == cur || (cancelled != nil && cancelled.Load())
		})
		return polls, e.slots[i].Load() == cur
	default:
		return e.waitSpinYield(i, cur, cancelled)
	}
}

func (e *EpochFlags) waitSpinYield(i int, cur uint64, cancelled *atomic.Bool) (polls int, ok bool) {
	for e.slots[i].Load() != cur {
		if cancelled != nil && cancelled.Load() {
			return polls, false
		}
		polls++
		if polls > spinBeforeYield {
			runtime.Gosched()
		}
	}
	return polls, true
}

// WakeAll releases every waiter parked by the WaitNotify strategy so it can
// re-check its predicate (and observe a cancellation). It is a no-op when
// notification support is not enabled.
func (e *EpochFlags) WakeAll() {
	if e.notifier != nil {
		e.notifier.wakeAll()
	}
}

// EpochIterTable is the epoch-versioned variant of IterTable: each slot packs
// the epoch in which it was recorded together with the writing iteration, so
// the postprocessing reset of iter(a(i)) to MAXINT becomes an O(1) epoch
// bump.
type EpochIterTable struct {
	epoch atomic.Uint64
	// Each slot holds epoch<<32 | iteration+1; 0 means "never recorded".
	slots []atomic.Uint64
}

// maxEpochIterN is the largest iteration index representable by the packed
// slot format.
const maxEpochIterN = 1<<31 - 2

// NewEpochIterTable creates an epoch-versioned iter table of length n.
func NewEpochIterTable(n int) *EpochIterTable {
	t := &EpochIterTable{slots: make([]atomic.Uint64, n)}
	t.epoch.Store(1)
	return t
}

// Len reports the number of elements covered.
func (t *EpochIterTable) Len() int { return len(t.slots) }

// Advance invalidates every recorded writer in O(1).
func (t *EpochIterTable) Advance() { t.epoch.Add(1) }

// Record stores that element e is written by iteration i in the current
// epoch. Iterations larger than maxEpochIterN are not representable; such
// loops should use the plain IterTable.
func (t *EpochIterTable) Record(e, i int) {
	t.slots[e].Store(t.epoch.Load()<<32 | uint64(i+1))
}

// Writer returns the iteration recorded for element e in the current epoch,
// or MaxInt if the element was not recorded this epoch.
func (t *EpochIterTable) Writer(e int) int64 {
	v := t.slots[e].Load()
	if v>>32 != t.epoch.Load() {
		return MaxInt
	}
	return int64(v&0xffffffff) - 1
}

// Classify applies the paper's dependence test using the epoch-versioned
// table.
func (t *EpochIterTable) Classify(e, i int) (Dependence, int64) {
	w := t.Writer(e)
	switch {
	case w < int64(i):
		return TrueDep, w
	case w == int64(i):
		return SelfDep, w
	default:
		return AntiOrNone, w
	}
}
