package flags

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestReadyFlagsInitialState(t *testing.T) {
	r := NewReadyFlags(8)
	if r.Len() != 8 {
		t.Fatalf("Len = %d, want 8", r.Len())
	}
	for i := 0; i < 8; i++ {
		if r.IsDone(i) {
			t.Errorf("element %d unexpectedly done at construction", i)
		}
	}
}

func TestReadyFlagsSetClear(t *testing.T) {
	r := NewReadyFlags(4)
	r.Set(2)
	if !r.IsDone(2) {
		t.Fatal("Set(2) not observed by IsDone")
	}
	if r.IsDone(1) {
		t.Fatal("Set(2) leaked into element 1")
	}
	r.Clear(2)
	if r.IsDone(2) {
		t.Fatal("Clear(2) not observed")
	}
}

func TestReadyFlagsClearAll(t *testing.T) {
	r := NewReadyFlags(16)
	for i := 0; i < 16; i++ {
		r.Set(i)
	}
	r.ClearAll()
	for i := 0; i < 16; i++ {
		if r.IsDone(i) {
			t.Fatalf("element %d still done after ClearAll", i)
		}
	}
}

func TestReadyFlagsWaitAlreadyDone(t *testing.T) {
	r := NewReadyFlags(4)
	r.Set(3)
	for _, s := range []WaitStrategy{WaitSpin, WaitSpinYield, WaitNotify} {
		if polls := r.Wait(3, s); polls != 0 {
			t.Errorf("strategy %v: Wait on done flag polled %d times, want 0", s, polls)
		}
	}
}

func TestReadyFlagsWaitBlocksUntilSet(t *testing.T) {
	for _, s := range []WaitStrategy{WaitSpinYield, WaitNotify} {
		r := NewReadyFlags(4)
		if s == WaitNotify {
			r.EnableNotify()
		}
		var wg sync.WaitGroup
		observed := false
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Wait(1, s)
			observed = r.IsDone(1)
		}()
		r.Set(1)
		wg.Wait()
		if !observed {
			t.Errorf("strategy %v: waiter returned before flag was done", s)
		}
	}
}

func TestReadyFlagsNotifyFallback(t *testing.T) {
	// WaitNotify without EnableNotify must still terminate (falls back to
	// yielding spin).
	r := NewReadyFlags(2)
	done := make(chan struct{})
	go func() {
		r.Wait(0, WaitNotify)
		close(done)
	}()
	r.Set(0)
	<-done
}

func TestReadyFlagsManyWaitersOneWriter(t *testing.T) {
	r := NewReadyFlags(1)
	r.EnableNotify()
	const waiters = 32
	var wg sync.WaitGroup
	for w := 0; w < waiters; w++ {
		wg.Add(1)
		strategy := WaitSpinYield
		if w%2 == 0 {
			strategy = WaitNotify
		}
		go func(s WaitStrategy) {
			defer wg.Done()
			r.Wait(0, s)
		}(strategy)
	}
	r.Set(0)
	wg.Wait() // must not hang
}

func TestWaitStrategyString(t *testing.T) {
	cases := map[WaitStrategy]string{
		WaitSpin:        "spin",
		WaitSpinYield:   "spin+yield",
		WaitNotify:      "notify",
		WaitStrategy(9): "unknown",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}

func TestIterTableInitialMaxInt(t *testing.T) {
	tab := NewIterTable(5)
	if tab.Len() != 5 {
		t.Fatalf("Len = %d, want 5", tab.Len())
	}
	for i := 0; i < 5; i++ {
		if w := tab.Writer(i); w != MaxInt {
			t.Errorf("Writer(%d) = %d, want MaxInt", i, w)
		}
	}
}

func TestIterTableRecordAndReset(t *testing.T) {
	tab := NewIterTable(10)
	tab.Record(4, 7)
	if w := tab.Writer(4); w != 7 {
		t.Fatalf("Writer(4) = %d, want 7", w)
	}
	tab.Reset(4)
	if w := tab.Writer(4); w != MaxInt {
		t.Fatalf("after Reset Writer(4) = %d, want MaxInt", w)
	}
	tab.Record(1, 3)
	tab.Record(2, 5)
	tab.ResetAll()
	for i := 0; i < 10; i++ {
		if tab.Writer(i) != MaxInt {
			t.Fatalf("ResetAll left element %d recorded", i)
		}
	}
}

func TestIterTableClassify(t *testing.T) {
	tab := NewIterTable(10)
	tab.Record(0, 3)

	if d, w := tab.Classify(0, 5); d != TrueDep || w != 3 {
		t.Errorf("Classify(written by 3, read by 5) = %v,%d; want TrueDep,3", d, w)
	}
	if d, _ := tab.Classify(0, 3); d != SelfDep {
		t.Errorf("Classify(written by 3, read by 3) = %v; want SelfDep", d)
	}
	if d, _ := tab.Classify(0, 2); d != AntiOrNone {
		t.Errorf("Classify(written by 3, read by 2) = %v; want AntiOrNone", d)
	}
	if d, _ := tab.Classify(7, 2); d != AntiOrNone {
		t.Errorf("Classify(never written) = %v; want AntiOrNone", d)
	}
}

func TestDependenceString(t *testing.T) {
	if TrueDep.String() != "true" || SelfDep.String() != "self" || AntiOrNone.String() != "anti/none" {
		t.Error("Dependence.String mismatch")
	}
	if Dependence(42).String() != "unknown" {
		t.Error("unexpected string for invalid Dependence")
	}
}

func TestClassifyPropertyMatchesDirectComparison(t *testing.T) {
	// Property: for any writer w and reader i, Classify agrees with the
	// paper's check = iter(offset) - i sign test.
	f := func(writer uint16, reader uint16) bool {
		tab := NewIterTable(1)
		tab.Record(0, int(writer))
		d, _ := tab.Classify(0, int(reader))
		switch {
		case int(writer) < int(reader):
			return d == TrueDep
		case int(writer) == int(reader):
			return d == SelfDep
		default:
			return d == AntiOrNone
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEpochFlagsBasic(t *testing.T) {
	e := NewEpochFlags(4)
	if e.Len() != 4 {
		t.Fatalf("Len = %d, want 4", e.Len())
	}
	if e.IsDone(0) {
		t.Fatal("element done before Set")
	}
	e.Set(0)
	if !e.IsDone(0) {
		t.Fatal("element not done after Set")
	}
	for _, s := range []WaitStrategy{WaitSpin, WaitSpinYield, WaitNotify} {
		if e.Wait(0, s) != 0 {
			t.Fatalf("Wait(%v) on done element polled", s)
		}
	}
}

func TestEpochFlagsAdvanceInvalidates(t *testing.T) {
	e := NewEpochFlags(4)
	for i := 0; i < 4; i++ {
		e.Set(i)
	}
	old := e.Epoch()
	e.Advance()
	if e.Epoch() != old+1 {
		t.Fatalf("Epoch after Advance = %d, want %d", e.Epoch(), old+1)
	}
	for i := 0; i < 4; i++ {
		if e.IsDone(i) {
			t.Fatalf("element %d still done after Advance", i)
		}
	}
	e.Set(2)
	if !e.IsDone(2) {
		t.Fatal("Set after Advance not observed")
	}
}

func TestEpochFlagsWaitBlocks(t *testing.T) {
	for _, s := range []WaitStrategy{WaitSpin, WaitSpinYield, WaitNotify} {
		e := NewEpochFlags(2)
		if s == WaitNotify {
			e.EnableNotify()
		}
		done := make(chan struct{})
		go func() {
			e.Wait(1, s)
			close(done)
		}()
		e.Set(1)
		<-done
	}
}

func TestEpochFlagsWaitNotifyWithoutEnable(t *testing.T) {
	// WaitNotify without EnableNotify must still terminate (falls back to a
	// yielding spin).
	e := NewEpochFlags(1)
	done := make(chan struct{})
	go func() {
		e.Wait(0, WaitNotify)
		close(done)
	}()
	e.Set(0)
	<-done
}

func TestEpochIterTableBasic(t *testing.T) {
	tab := NewEpochIterTable(8)
	if tab.Len() != 8 {
		t.Fatalf("Len = %d, want 8", tab.Len())
	}
	if tab.Writer(3) != MaxInt {
		t.Fatal("unrecorded element should report MaxInt")
	}
	tab.Record(3, 0) // iteration 0 must be representable
	if w := tab.Writer(3); w != 0 {
		t.Fatalf("Writer(3) = %d, want 0", w)
	}
	tab.Record(5, 41)
	if d, w := tab.Classify(5, 100); d != TrueDep || w != 41 {
		t.Fatalf("Classify = %v,%d; want TrueDep,41", d, w)
	}
	if d, _ := tab.Classify(5, 41); d != SelfDep {
		t.Fatal("Classify same iteration should be SelfDep")
	}
	if d, _ := tab.Classify(5, 7); d != AntiOrNone {
		t.Fatal("Classify earlier reader should be AntiOrNone")
	}
}

func TestEpochIterTableAdvanceInvalidates(t *testing.T) {
	tab := NewEpochIterTable(4)
	tab.Record(1, 10)
	tab.Advance()
	if tab.Writer(1) != MaxInt {
		t.Fatal("Advance did not invalidate recorded writer")
	}
	tab.Record(1, 20)
	if tab.Writer(1) != 20 {
		t.Fatal("Record after Advance not observed")
	}
}

func TestEpochAndPlainIterTablesAgree(t *testing.T) {
	// Property: on the same sequence of records, both table variants classify
	// reads identically.
	f := func(writers []uint8, reader uint8) bool {
		n := 16
		plain := NewIterTable(n)
		epoch := NewEpochIterTable(n)
		for e, w := range writers {
			if e >= n {
				break
			}
			plain.Record(e, int(w))
			epoch.Record(e, int(w))
		}
		for e := 0; e < n; e++ {
			d1, _ := plain.Classify(e, int(reader))
			d2, _ := epoch.Classify(e, int(reader))
			if d1 != d2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
