// Package flags provides the fine-grained synchronization substrate used by
// the preprocessed doacross runtime: per-element "ready" flags that iterations
// busy-wait on, and the "iter" table the inspector fills so that executors can
// distinguish true dependencies from anti-dependencies at run time.
//
// The package mirrors the arrays called ready and iter in Saltz &
// Mirchandaney, "The Preprocessed Doacross Loop" (ICASE Interim Report 11,
// 1990), and adds an epoch-versioned variant that removes the need for the
// postprocessing reset entirely (an ablation of the paper's design).
package flags

import (
	"math"
	"runtime"
	"sync/atomic"
)

// MaxInt is the sentinel stored in an iter table for elements that are never
// written inside the loop. It corresponds to MAXINT in the paper.
const MaxInt int64 = math.MaxInt64

// Flag states for ReadyFlags. They correspond to NOTDONE and DONE in the
// paper's Figure 2.
const (
	NotDone int32 = 0
	Done    int32 = 1
)

// WaitStrategy selects how an executor waits for a ready flag that has not
// been set yet. The paper uses a pure busy wait; the other strategies are
// provided so the cost of that choice can be measured.
type WaitStrategy int

const (
	// WaitSpin busy-waits on the flag, exactly as in the paper.
	WaitSpin WaitStrategy = iota
	// WaitSpinYield busy-waits but yields the processor to the Go scheduler
	// between polls. This is the default: it keeps the point-to-point
	// semantics of the paper while remaining safe when the number of workers
	// exceeds the number of hardware threads.
	WaitSpinYield
	// WaitNotify parks the waiter on a sharded condition variable and is
	// woken by the writer. It trades per-write broadcast cost for zero
	// spinning.
	WaitNotify
)

// String returns a short human-readable name for the strategy.
func (w WaitStrategy) String() string {
	switch w {
	case WaitSpin:
		return "spin"
	case WaitSpinYield:
		return "spin+yield"
	case WaitNotify:
		return "notify"
	default:
		return "unknown"
	}
}

// ReadyFlags is the shared array of per-element completion flags. Element e is
// set to Done once the value of the target array at index e has been produced
// by its writing iteration.
//
// The zero value is not usable; construct with NewReadyFlags.
type ReadyFlags struct {
	flags []atomic.Int32
	// notify support (only used with WaitNotify)
	notifier *notifier
}

// NewReadyFlags creates a flag array of the given length with every element in
// the NotDone state.
func NewReadyFlags(n int) *ReadyFlags {
	return &ReadyFlags{flags: make([]atomic.Int32, n)}
}

// Len reports the number of elements covered by the flag array.
func (r *ReadyFlags) Len() int { return len(r.flags) }

// EnableNotify attaches the sharded notifier needed by WaitNotify. It is a
// no-op if notification support is already enabled.
func (r *ReadyFlags) EnableNotify() {
	if r.notifier == nil {
		r.notifier = newNotifier()
	}
}

// Set marks element e as produced. The store uses release semantics, so a
// waiter that observes Done also observes the data written before the Set.
func (r *ReadyFlags) Set(e int) {
	r.flags[e].Store(Done)
	if r.notifier != nil {
		r.notifier.wake(e)
	}
}

// IsDone reports whether element e has been produced.
func (r *ReadyFlags) IsDone(e int) bool { return r.flags[e].Load() == Done }

// Clear resets element e to NotDone. It is used by the postprocessing phase so
// the flag array can be reused by the next doacross loop.
func (r *ReadyFlags) Clear(e int) { r.flags[e].Store(NotDone) }

// ClearAll resets every element to NotDone. Unlike the per-element Clear used
// by the paper's postprocessing loop, ClearAll touches the whole array and is
// intended for tests and single-use loops.
func (r *ReadyFlags) ClearAll() {
	for i := range r.flags {
		r.flags[i].Store(NotDone)
	}
}

// spinBeforeYield is the number of tight polls performed before the waiter
// starts yielding to the scheduler under WaitSpinYield.
const spinBeforeYield = 64

// Wait blocks until element e is Done, using the given strategy. It returns
// the number of polls that were required (0 if the flag was already set),
// which the tracing layer uses as a proxy for wait time.
func (r *ReadyFlags) Wait(e int, strategy WaitStrategy) int {
	polls, _ := r.WaitCancel(e, strategy, nil)
	return polls
}

// WaitCancel is Wait with a cancellation flag: it returns ok=false as soon as
// cancelled becomes true while the element is still unproduced, so an
// executor waiting on an iteration that will never run (because the run was
// aborted) does not wait forever. A nil cancelled never cancels. Callers
// that park waiters with WaitNotify must call WakeAll after setting
// cancelled, or parked waiters will not observe it.
func (r *ReadyFlags) WaitCancel(e int, strategy WaitStrategy, cancelled *atomic.Bool) (polls int, ok bool) {
	if r.flags[e].Load() == Done {
		return 0, true
	}
	switch strategy {
	case WaitSpin:
		for r.flags[e].Load() != Done {
			if cancelled != nil && cancelled.Load() {
				return polls, false
			}
			polls++
		}
		return polls, true
	case WaitNotify:
		if r.notifier == nil {
			// Fall back to yielding spin rather than panicking: the
			// semantics are identical, only the cost differs.
			return r.waitSpinYield(e, cancelled)
		}
		polls = r.notifier.wait(e, func() bool {
			return r.flags[e].Load() == Done || (cancelled != nil && cancelled.Load())
		})
		return polls, r.flags[e].Load() == Done
	default:
		return r.waitSpinYield(e, cancelled)
	}
}

func (r *ReadyFlags) waitSpinYield(e int, cancelled *atomic.Bool) (polls int, ok bool) {
	for r.flags[e].Load() != Done {
		if cancelled != nil && cancelled.Load() {
			return polls, false
		}
		polls++
		if polls > spinBeforeYield {
			runtime.Gosched()
		}
	}
	return polls, true
}

// WakeAll releases every waiter parked by the WaitNotify strategy so it can
// re-check its predicate (and observe a cancellation). It is a no-op when
// notification support is not enabled.
func (r *ReadyFlags) WakeAll() {
	if r.notifier != nil {
		r.notifier.wakeAll()
	}
}

// IterTable is the execution-time dependency table filled by the inspector:
// IterTable[e] holds the (original) index of the loop iteration that writes
// element e, or MaxInt if no iteration writes it.
//
// The zero value is not usable; construct with NewIterTable.
type IterTable struct {
	iter []atomic.Int64
}

// NewIterTable creates a table of the given length with every entry set to
// MaxInt ("never written").
func NewIterTable(n int) *IterTable {
	t := &IterTable{iter: make([]atomic.Int64, n)}
	for i := range t.iter {
		t.iter[i].Store(MaxInt)
	}
	return t
}

// Len reports the number of elements covered by the table.
func (t *IterTable) Len() int { return len(t.iter) }

// Record stores that element e is written by iteration i. The inspector calls
// Record concurrently from many workers; the paper assumes no output
// dependencies (each element is written by at most one iteration), so
// concurrent Records never target the same element.
func (t *IterTable) Record(e int, i int) { t.iter[e].Store(int64(i)) }

// Writer returns the iteration that writes element e, or MaxInt if none does.
func (t *IterTable) Writer(e int) int64 { return t.iter[e].Load() }

// Reset restores element e to MaxInt. Postprocessing calls Reset for every
// element the loop wrote so the table can be reused.
func (t *IterTable) Reset(e int) { t.iter[e].Store(MaxInt) }

// ResetAll restores every element to MaxInt.
func (t *IterTable) ResetAll() {
	for i := range t.iter {
		t.iter[i].Store(MaxInt)
	}
}

// Dependence classifies the relation between a read of element e performed by
// iteration i and the iteration that writes e, following Section 2.2 of the
// paper.
type Dependence int

const (
	// TrueDep means the element is written by an earlier iteration: the
	// reader must wait for it and then use the newly computed value.
	TrueDep Dependence = iota
	// SelfDep means the element is written by the same iteration: the reader
	// uses the newly computed value without waiting.
	SelfDep
	// AntiOrNone means the element is written by a later iteration (an
	// anti-dependence, satisfied by renaming) or not written at all: the
	// reader uses the old value without waiting.
	AntiOrNone
)

// String returns a short name for the dependence class.
func (d Dependence) String() string {
	switch d {
	case TrueDep:
		return "true"
	case SelfDep:
		return "self"
	case AntiOrNone:
		return "anti/none"
	default:
		return "unknown"
	}
}

// Classify applies the paper's check = iter(offset) - i test: it returns the
// dependence class of a read of element e by iteration i, together with the
// writing iteration (meaningful only for TrueDep and SelfDep).
func (t *IterTable) Classify(e int, i int) (Dependence, int64) {
	w := t.iter[e].Load()
	switch {
	case w < int64(i):
		return TrueDep, w
	case w == int64(i):
		return SelfDep, w
	default:
		return AntiOrNone, w
	}
}
